# Runs `zamc ${CMD}` (default: hot) on PROGRAM with ARGS (a ;-list),
# captures stdout (the deterministic projection; wall-clock rides stderr)
# into OUT, and diffs it against the committed GOLDEN byte for byte.
if(NOT DEFINED CMD)
  set(CMD hot)
endif()
execute_process(
  COMMAND ${ZAMC} ${CMD} ${PROGRAM} ${ARGS}
  OUTPUT_FILE ${OUT}
  ERROR_VARIABLE HOT_STDERR
  RESULT_VARIABLE HOT_RC)
if(NOT HOT_RC EQUAL 0)
  message(FATAL_ERROR "zamc ${CMD} failed (rc=${HOT_RC}): ${HOT_STDERR}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${OUT}
  RESULT_VARIABLE DIFF_RC)
if(NOT DIFF_RC EQUAL 0)
  message(FATAL_ERROR
          "zamc hot output drifted from ${GOLDEN}; inspect ${OUT} and "
          "regenerate the golden if the change is intended")
endif()
