//===- fig8_rsa_timing.cpp - Reproduces Fig. 8 ------------------------------===//
//
// Fig. 8: RSA decryption time for 100 encrypted messages under two
// different private keys. Upper plot: unmitigated — the two keys' series
// sit at different levels (decryption time leaks the private key). Lower
// plot: mitigated — the time is exactly one constant, independent of both
// key and message (the paper reports exactly 32,001,922 cycles for every
// decryption).
//
// Runs on the zam_exp harness: the four series (2 keys x 2 modes) are
// independent sessions and fan out over the worker pool.
//
//===----------------------------------------------------------------------===//

#include "apps/RsaApp.h"
#include "crypto/ToyRsa.h"
#include "exp/Harness.h"
#include "exp/Scenario.h"
#include "hw/HardwareModels.h"
#include "obs/CostLedger.h"
#include "obs/LeakAudit.h"
#include "obs/Telemetry.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

using namespace zam;

namespace {

constexpr unsigned Messages = 100;
constexpr unsigned BlocksPerMessage = 2;
constexpr unsigned ModulusBits = 53;

std::vector<std::vector<uint64_t>> makeCiphertexts(const RsaKey &Key, Rng &R) {
  std::vector<std::vector<uint64_t>> Out;
  for (unsigned I = 0; I != Messages; ++I) {
    std::vector<uint64_t> Msg;
    for (unsigned B = 0; B != BlocksPerMessage; ++B)
      Msg.push_back(rsaEncryptBlock(Key, R.nextBelow(Key.N)));
    Out.push_back(std::move(Msg));
  }
  return Out;
}

std::vector<uint64_t> runSeries(const SecurityLattice &Lat, const RsaKey &Key,
                                RsaMitigationMode Mode, int64_t Estimate,
                                const std::vector<std::vector<uint64_t>> &Msgs) {
  RsaProgramConfig Config;
  Config.Mode = Mode;
  Config.Estimate = Estimate;
  Config.MaxBlocks = BlocksPerMessage;
  auto Env = createMachineEnv(HwKind::Partitioned, Lat);
  RsaSession Session(Lat, Key, Config, *Env);
  Session.decrypt(Msgs[0]); // Warm-up.
  std::vector<uint64_t> Times;
  for (const std::vector<uint64_t> &Msg : Msgs)
    Times.push_back(Session.decrypt(Msg).Cycles);
  return Times;
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Harness = parseHarnessArgs(Argc, Argv);
  if (!Harness.Ok)
    return 2;
  ParallelRunner Runner(Harness.Threads);

  TwoPointLattice Lat;
  Rng KeyRng1(1001), KeyRng2(2002), MsgRng(3003), CalRng(4004);
  RsaKey KeyA = generateRsaKey(KeyRng1, ModulusBits);
  RsaKey KeyB = generateRsaKey(KeyRng2, ModulusBits);
  std::printf("key A: d has %u bits;  key B: d has %u bits\n",
              KeyA.privateExponentBits(), KeyB.privateExponentBits());

  auto MsgsA = makeCiphertexts(KeyA, MsgRng);
  auto MsgsB = makeCiphertexts(KeyB, MsgRng);

  // Calibrate once, taking the larger per-block estimate so the prediction
  // does not encode the key. The two calibrations share one machine
  // environment and Rng stream, so they stay serial.
  auto CalEnv = createMachineEnv(HwKind::Partitioned, Lat);
  int64_t Est = std::max(calibrateRsaEstimate(Lat, KeyA, *CalEnv, 6, CalRng,
                                              BlocksPerMessage),
                         calibrateRsaEstimate(Lat, KeyB, *CalEnv, 6, CalRng,
                                              BlocksPerMessage));
  std::printf("calibrated per-block initial prediction: %" PRId64 " cycles\n\n",
              Est);

  Report R("fig8_rsa_timing");
  runSeriesInto(
      R,
      {{"plain keyA",
        [&] {
          return runSeries(Lat, KeyA, RsaMitigationMode::Unmitigated, 1,
                           MsgsA);
        }},
       {"plain keyB",
        [&] {
          return runSeries(Lat, KeyB, RsaMitigationMode::Unmitigated, 1,
                           MsgsB);
        }},
       {"mitig keyA",
        [&] {
          return runSeries(Lat, KeyA, RsaMitigationMode::PerBlock, Est,
                           MsgsA);
        }},
       {"mitig keyB",
        [&] {
          return runSeries(Lat, KeyB, RsaMitigationMode::PerBlock, Est,
                           MsgsB);
        }}},
      Runner);
  R.setIndex("message", {});
  R.setScalar("calibrated_per_block_estimate", static_cast<double>(Est));

  // Telemetry of record: one mitigated keyA decryption on a fresh
  // environment (deterministic; appears as the report's "metrics" object).
  // The source profiler rides along, attributing the run into prof.* —
  // per-block mitigate sites show up as prof.site.m<η> sub-accounts.
  {
    RsaProgramConfig Config;
    Config.Mode = RsaMitigationMode::PerBlock;
    Config.Estimate = Est;
    Config.MaxBlocks = BlocksPerMessage;
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    Program P = buildRsaProgram(Lat, KeyA, Config);
    CostLedger Ledger;
    InterpreterOptions IOpts;
    IOpts.Provenance = &Ledger;
    RunResult Rep = runFull(
        P, *Env, [&](Memory &M) { setRsaMessage(M, MsgsA[0]); }, IOpts);
    collectRunMetrics(R.metrics(), Rep.T, Rep.Hw, Lat);
    LeakAudit Audit(Lat);
    Audit.ingest(Rep.T);
    Audit.exportMetrics(R.metrics());
    Ledger.applyLeakage(Audit);
    Ledger.exportMetrics(R.metrics());
    if (!emitBenchTrace(Rep.T, Lat, Harness))
      return 2;
  }

  // Interpreter throughput of record: repeated mitigated keyA decryptions,
  // single-threaded, no provenance — the raw engine speed the timing-IR
  // refactor targets. Wall-clock only (the "wall" JSON section), so the
  // deterministic metrics stay byte-stable across machines.
  // interp_wall_ms_seed is the same measurement taken at the pre-IR
  // tree-walking engines on the acceptance container.
  {
    constexpr double SeedInterpWallMs = 134.0;
    constexpr unsigned Reps = 20;
    RsaProgramConfig Config;
    Config.Mode = RsaMitigationMode::PerBlock;
    Config.Estimate = Est;
    Config.MaxBlocks = BlocksPerMessage;
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    Program P = buildRsaProgram(Lat, KeyA, Config);
    auto Start = std::chrono::steady_clock::now();
    for (unsigned I = 0; I != Reps; ++I)
      runFull(P, *Env, [&](Memory &M) { setRsaMessage(M, MsgsA[I]); });
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    R.setWallScalar("interp_runs", Reps);
    R.setWallScalar("interp_wall_ms", Ms);
    R.setWallScalar("interp_wall_ms_seed", SeedInterpWallMs);
    R.setWallScalar("interp_speedup_vs_seed", SeedInterpWallMs / Ms);
    std::printf("\ninterpreter throughput: %u mitigated decryptions in"
                " %.1f ms (seed engines: %.1f ms, speedup %.2fx)\n",
                Reps, Ms, SeedInterpWallMs, SeedInterpWallMs / Ms);
  }

  std::printf("=== Fig. 8: decryption time per message (cycles) ===\n");
  std::printf("%s", R.renderTable(/*Stride=*/5).c_str());

  std::printf("\n=== shape checks (paper's findings) ===\n");
  double AvgA = R.seriesAverage("plain keyA");
  double AvgB = R.seriesAverage("plain keyB");
  std::printf("unmitigated averages: keyA %.0f vs keyB %.0f -> keys"
              " distinguishable: %s\n",
              AvgA, AvgB, AvgA != AvgB ? "YES" : "no");

  // One constant across both keys and all messages: each mitigated series
  // is flat and the two series are identical.
  bool Constant = R.find("mitig keyA")->allEqual() &&
                  R.coincide("mitig keyA", "mitig keyB");
  std::printf("mitigated time is one constant for both keys and all"
              " messages: %s",
              Constant ? "YES" : "no");
  if (Constant)
    std::printf(" (exactly %.0f cycles; paper: exactly 32,001,922)",
                R.find("mitig keyA")->Values.front());
  std::printf("\n");

  R.setVerdict("keys_distinguishable_unmitigated", AvgA != AvgB);
  R.setVerdict("mitigated_time_constant", Constant);
  if (!emitReportJson(R, Harness))
    return 2;
  return Constant ? 0 : 1;
}
