//===- fig8_rsa_timing.cpp - Reproduces Fig. 8 ------------------------------===//
//
// Fig. 8: RSA decryption time for 100 encrypted messages under two
// different private keys. Upper plot: unmitigated — the two keys' series
// sit at different levels (decryption time leaks the private key). Lower
// plot: mitigated — the time is exactly one constant, independent of both
// key and message (the paper reports exactly 32,001,922 cycles for every
// decryption).
//
//===----------------------------------------------------------------------===//

#include "apps/RsaApp.h"
#include "crypto/ToyRsa.h"
#include "hw/HardwareModels.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <vector>

using namespace zam;

namespace {

constexpr unsigned Messages = 100;
constexpr unsigned BlocksPerMessage = 2;
constexpr unsigned ModulusBits = 53;

std::vector<std::vector<uint64_t>> makeCiphertexts(const RsaKey &Key, Rng &R) {
  std::vector<std::vector<uint64_t>> Out;
  for (unsigned I = 0; I != Messages; ++I) {
    std::vector<uint64_t> Msg;
    for (unsigned B = 0; B != BlocksPerMessage; ++B)
      Msg.push_back(rsaEncryptBlock(Key, R.nextBelow(Key.N)));
    Out.push_back(std::move(Msg));
  }
  return Out;
}

std::vector<uint64_t> runSeries(const SecurityLattice &Lat, const RsaKey &Key,
                                RsaMitigationMode Mode, int64_t Estimate,
                                const std::vector<std::vector<uint64_t>> &Msgs) {
  RsaProgramConfig Config;
  Config.Mode = Mode;
  Config.Estimate = Estimate;
  Config.MaxBlocks = BlocksPerMessage;
  auto Env = createMachineEnv(HwKind::Partitioned, Lat);
  RsaSession Session(Lat, Key, Config, *Env);
  Session.decrypt(Msgs[0]); // Warm-up.
  std::vector<uint64_t> Times;
  for (const std::vector<uint64_t> &Msg : Msgs)
    Times.push_back(Session.decrypt(Msg).Cycles);
  return Times;
}

double average(const std::vector<uint64_t> &V) {
  uint64_t Sum = 0;
  for (uint64_t X : V)
    Sum += X;
  return static_cast<double>(Sum) / V.size();
}

} // namespace

int main() {
  TwoPointLattice Lat;
  Rng KeyRng1(1001), KeyRng2(2002), MsgRng(3003), CalRng(4004);
  RsaKey KeyA = generateRsaKey(KeyRng1, ModulusBits);
  RsaKey KeyB = generateRsaKey(KeyRng2, ModulusBits);
  std::printf("key A: d has %u bits;  key B: d has %u bits\n",
              KeyA.privateExponentBits(), KeyB.privateExponentBits());

  auto MsgsA = makeCiphertexts(KeyA, MsgRng);
  auto MsgsB = makeCiphertexts(KeyB, MsgRng);

  // Calibrate once, taking the larger per-block estimate so the prediction
  // does not encode the key.
  auto CalEnv = createMachineEnv(HwKind::Partitioned, Lat);
  int64_t Est = std::max(calibrateRsaEstimate(Lat, KeyA, *CalEnv, 6, CalRng,
                                              BlocksPerMessage),
                         calibrateRsaEstimate(Lat, KeyB, *CalEnv, 6, CalRng,
                                              BlocksPerMessage));
  std::printf("calibrated per-block initial prediction: %" PRId64 " cycles\n\n",
              Est);

  auto PlainA =
      runSeries(Lat, KeyA, RsaMitigationMode::Unmitigated, 1, MsgsA);
  auto PlainB =
      runSeries(Lat, KeyB, RsaMitigationMode::Unmitigated, 1, MsgsB);
  auto PaddedA = runSeries(Lat, KeyA, RsaMitigationMode::PerBlock, Est, MsgsA);
  auto PaddedB = runSeries(Lat, KeyB, RsaMitigationMode::PerBlock, Est, MsgsB);

  std::printf("=== Fig. 8: decryption time per message (cycles) ===\n");
  std::printf("%-8s %12s %12s   %12s %12s\n", "message", "plain keyA",
              "plain keyB", "mitig keyA", "mitig keyB");
  for (unsigned I = 0; I < Messages; I += 5)
    std::printf("%-8u %12" PRIu64 " %12" PRIu64 "   %12" PRIu64 " %12" PRIu64
                "\n",
                I, PlainA[I], PlainB[I], PaddedA[I], PaddedB[I]);

  std::printf("\n=== shape checks (paper's findings) ===\n");
  std::printf("unmitigated averages: keyA %.0f vs keyB %.0f -> keys"
              " distinguishable: %s\n",
              average(PlainA), average(PlainB),
              average(PlainA) != average(PlainB) ? "YES" : "no");

  std::set<uint64_t> MitigatedTimes(PaddedA.begin(), PaddedA.end());
  MitigatedTimes.insert(PaddedB.begin(), PaddedB.end());
  bool Constant = MitigatedTimes.size() == 1;
  std::printf("mitigated time is one constant for both keys and all"
              " messages: %s",
              Constant ? "YES" : "no");
  if (Constant)
    std::printf(" (exactly %" PRIu64 " cycles; paper: exactly 32,001,922)",
                *MitigatedTimes.begin());
  std::printf("\n");
  return Constant ? 0 : 1;
}
