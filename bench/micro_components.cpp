//===- micro_components.cpp - Component microbenchmarks ----------------------===//
//
// google-benchmark microbenchmarks for the substrates: cache model,
// machine-environment access paths, the two interpreter engines, the
// parser, and the type checker. Not a paper experiment — these quantify
// the simulator itself (how many simulated cycles per host second).
//
//===----------------------------------------------------------------------===//

#include "analysis/RandomProgram.h"
#include "apps/LoginApp.h"
#include "hw/HardwareModels.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "sem/FullInterpreter.h"
#include "sem/StepInterpreter.h"
#include "types/LabelInference.h"
#include "types/TypeChecker.h"

#include "benchmark/benchmark.h"

using namespace zam;

namespace {

const TwoPointLattice &lat() {
  static const TwoPointLattice Lat;
  return Lat;
}

void BM_CacheLookupHit(benchmark::State &State) {
  Cache C(MachineEnvConfig().L1D);
  C.install(0x1000);
  for (auto _ : State)
    benchmark::DoNotOptimize(C.lookup(0x1000));
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheInstallEvict(benchmark::State &State) {
  Cache C(MachineEnvConfig().L1D);
  Addr A = 0;
  for (auto _ : State) {
    C.install(A);
    A += 4096; // March through sets and tags.
  }
}
BENCHMARK(BM_CacheInstallEvict);

void BM_DataAccess(benchmark::State &State) {
  auto Kind = static_cast<HwKind>(State.range(0));
  auto Env = createMachineEnv(Kind, lat());
  Addr A = 0x10000000;
  uint64_t Total = 0;
  for (auto _ : State) {
    Total += Env->dataAccess(A, false, lat().bottom(), lat().bottom());
    A += 64;
    if (A > 0x10100000)
      A = 0x10000000;
  }
  benchmark::DoNotOptimize(Total);
}
BENCHMARK(BM_DataAccess)
    ->Arg(static_cast<int>(HwKind::NoPartition))
    ->Arg(static_cast<int>(HwKind::NoFill))
    ->Arg(static_cast<int>(HwKind::Partitioned));

Program loopProgram() {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram("var i : L;\nvar acc : L;\n"
                                          "i := 0;\n"
                                          "while i < 1000 do {\n"
                                          "  acc := acc + i * 3;\n"
                                          "  i := i + 1\n"
                                          "}",
                                          lat(), Diags);
  inferTimingLabels(*P);
  return std::move(*P);
}

void BM_FullInterpreterLoop(benchmark::State &State) {
  Program P = loopProgram();
  for (auto _ : State) {
    auto Env = createMachineEnv(HwKind::Partitioned, lat());
    // The Prepare hook pokes the accumulator's start value before run().
    RunResult R =
        runFull(P, *Env, [](Memory &M) { M.store("acc", 1); });
    benchmark::DoNotOptimize(R.T.FinalTime);
  }
  State.SetItemsProcessed(State.iterations() * 3002); // Steps per run.
}
BENCHMARK(BM_FullInterpreterLoop);

void BM_StepInterpreterLoop(benchmark::State &State) {
  Program P = loopProgram();
  for (auto _ : State) {
    auto Env = createMachineEnv(HwKind::Partitioned, lat());
    StepInterpreter S(P, *Env);
    benchmark::DoNotOptimize(S.runToCompletion().FinalTime);
  }
  State.SetItemsProcessed(State.iterations() * 3002);
}
BENCHMARK(BM_StepInterpreterLoop);

void BM_ParseLoginProgram(benchmark::State &State) {
  Rng R(1);
  LoginTable T = makeLoginTable(100, 50, R);
  LoginProgramConfig Config;
  Program P = buildLoginProgram(lat(), T, Config);
  std::string Source = printProgram(P);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Parsed = parseProgram(Source, lat(), Diags);
    benchmark::DoNotOptimize(Parsed->numMitigates());
  }
}
BENCHMARK(BM_ParseLoginProgram);

void BM_TypeCheckLoginProgram(benchmark::State &State) {
  Rng R(1);
  LoginTable T = makeLoginTable(100, 50, R);
  LoginProgramConfig Config;
  Program P = buildLoginProgram(lat(), T, Config);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    benchmark::DoNotOptimize(typeCheck(P, Diags));
  }
}
BENCHMARK(BM_TypeCheckLoginProgram);

void BM_LoginAttempt(benchmark::State &State) {
  Rng R(1);
  LoginTable T = makeLoginTable(100, 50, R);
  LoginProgramConfig Config;
  Config.Mitigated = true;
  Config.Estimate1 = 1000;
  Config.Estimate2 = 1000;
  auto Env = createMachineEnv(HwKind::Partitioned, lat());
  LoginSession S(lat(), T, Config, *Env);
  unsigned I = 0;
  for (auto _ : State) {
    auto Res = S.attempt("user" + std::to_string(I++ % 100), "pw");
    benchmark::DoNotOptimize(Res.Cycles);
  }
}
BENCHMARK(BM_LoginAttempt);

} // namespace
