//===- adversary_gate.cpp - Empirical adversary vs analytic bounds ---------===//
//
// The observability gate for the Sec. 6 leakage story: a black-box
// statistical adversary (src/adv) attacks the two case-study workloads —
// the Fig. 7 login and the Fig. 8 RSA decryption — in mitigated and
// unmitigated form, on all three hardware designs.
//
// For every cell the gate samples N seeded executions with secrets drawn
// from two classes (login: requested user present/absent; RSA: two private
// exponents), runs the leak detector (Welch's t, Cohen's d, Miller–Madow
// mutual information) on the adversary-projected timings, and holds the
// results to the paper's claims:
//
//   - unmitigated variants must be DETECTED at overwhelming significance
//     (p <= 1e-9 and |t| >= 5): the timing attack works;
//   - mitigated variants must stay within the analytic Sec. 6 bound:
//     empirical mi_bits <= leak.total_bits_bound of the same runs.
//
// Every number is derived from deterministic cycle counts with fixed seeds
// and submission-order reduction, so the --json report is byte-identical
// at any --threads setting and diffable against the committed
// BENCH_adversary.json baseline in CI.
//
//===----------------------------------------------------------------------===//

#include "adv/Adversary.h"
#include "adv/LeakDetector.h"
#include "apps/LoginApp.h"
#include "apps/RsaApp.h"
#include "exp/Harness.h"
#include "hw/HardwareModels.h"
#include "obs/Telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace zam;

namespace {

constexpr uint64_t kDefaultSeed = 0xAD5EED;
constexpr unsigned kDefaultSamples = 64;

/// The significance bar for "the attack works": p <= 1e-9 (the detector
/// default) and an effect at least 5 pooled standard errors wide.
constexpr double kMinAbsT = 5.0;

struct CellResult {
  std::string Prefix; ///< "<design>.<workload>.<variant>."
  DetectorResult D;
  bool Pass = false;
};

void printCell(const CellResult &C, const char *Check) {
  std::printf("  %-28s t=%11.3f  log10(p)=%9.2f  d=%8.3f  "
              "mi=%.6f bits  bound=%.6f bits  [%s] %s\n",
              C.Prefix.c_str(), C.D.TStat, C.D.PValueLog10, C.D.CohensD,
              C.D.MiBits, C.D.AnalyticBoundBits, Check,
              C.Pass ? "ok" : "FAIL");
}

/// One attack cell: stream observations through the bounded-memory
/// collector (compact detector rows only; the full window lists are kept
/// solely for the representative cell a trace was requested for), run the
/// detector, export the prefixed adv.* metrics into the report.
CellResult runCell(Report &R, const std::string &Prefix, const Program &P,
                   const MachineEnv &Env,
                   const std::vector<SecretClassSpec> &Classes,
                   unsigned Samples, uint64_t Seed,
                   const ParallelRunner &Runner, ProgressMeter &Progress,
                   std::vector<Observation> *KeepObs = nullptr) {
  AttackOptions AOpts;
  AOpts.Samples = Samples;
  AOpts.Seed = Seed;
  InterpreterOptions IOpts;
  std::vector<CompactObservation> Compact;
  Compact.reserve(Samples);
  streamObservations(P, Env, Classes, AOpts, IOpts, Runner,
                     [&](const Observation &O, size_t) {
                       Compact.push_back({O.ClassIndex, O.EndToEnd,
                                          O.BoundBits});
                       if (KeepObs)
                         KeepObs->push_back(O);
                       Progress.tick();
                     });
  std::vector<std::string> Names;
  for (const SecretClassSpec &C : Classes)
    Names.push_back(C.Name);
  CellResult Cell;
  Cell.Prefix = Prefix;
  Cell.D = detectLeak(Compact, Names);
  exportDetectorMetrics(R.metrics(), Cell.D, Prefix);
  return Cell;
}

/// Maximum unpadded modexp body time over a spread of ciphertexts and both
/// candidate exponents. The RSA estimate must cover the worst body so the
/// mitigated run never mispredicts — a misprediction would re-open a
/// (bounded, but measurable) timing difference between the key classes,
/// and the gate wants the clean "mitigated carries ~0 empirical bits"
/// reproduction.
int64_t maxRsaBodyTime(const SecurityLattice &Lat, const RsaKey &Key,
                       const std::vector<int64_t> &Exponents,
                       const MachineEnv &EnvTemplate, unsigned Samples,
                       uint64_t Seed) {
  RsaProgramConfig Probe;
  Probe.Mode = RsaMitigationMode::PerBlock;
  Probe.Estimate = int64_t(1) << 40; // Never mispredicts; body time is exact.
  Probe.MaxBlocks = 1;
  Program P = buildRsaProgram(Lat, Key, Probe);
  int64_t MaxBody = 1;
  Rng R(Seed);
  for (unsigned I = 0; I != Samples; ++I) {
    for (int64_t D : Exponents) {
      std::unique_ptr<MachineEnv> Env = EnvTemplate.clone();
      uint64_t C = 2 + R.nextBelow(Key.N - 2);
      RunResult RR = runFull(P, *Env, [&](Memory &M) {
        M.store("d", D);
        setRsaMessage(M, {C});
      });
      for (const MitigateRecord &W : RR.T.Mitigations)
        MaxBody = std::max(MaxBody, static_cast<int64_t>(W.BodyTime));
    }
  }
  return MaxBody;
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Harness = parseHarnessArgs(Argc, Argv);
  if (!Harness.Ok)
    return 2;
  ParallelRunner Runner(Harness.Threads);
  const uint64_t Seed = Harness.Seed ? Harness.Seed : kDefaultSeed;
  const unsigned Samples = Harness.Samples ? Harness.Samples : kDefaultSamples;

  TwoPointLattice Lat;
  const HwKind Designs[3] = {HwKind::NoPartition, HwKind::NoFill,
                             HwKind::Partitioned};

  // --- Workload 1: the Fig. 7 login. Secret classes: the requested
  // username is present in (vs absent from) the credential table. The
  // table itself is fixed across samples; the per-sample Rng picks which
  // account (or which ghost name) the adversary-observed request probes.
  Rng TableRng(2254078);
  const unsigned NumValid = 10;
  LoginTable Table = makeLoginTable(100, NumValid, TableRng);

  std::vector<SecretClassSpec> LoginClasses(2);
  LoginClasses[0].Name = "present";
  LoginClasses[0].Prepare = [&Table, NumValid](Memory &M, Rng &R) {
    uint64_t J = R.nextBelow(NumValid);
    setLoginRequest(M, Table.ValidUsernames[J], "pass" + std::to_string(J));
  };
  LoginClasses[1].Name = "absent";
  LoginClasses[1].Prepare = [](Memory &M, Rng &R) {
    uint64_t J = R.nextBelow(1000000);
    setLoginRequest(M, "ghost" + std::to_string(J), "pw");
  };

  // --- Workload 2: the Fig. 8 RSA decryption, one block. Secret classes:
  // two candidate private exponents (a second generated key supplies the
  // alternative); the per-sample Rng draws the ciphertext.
  Rng KeyRng(Seed ^ 0x52534131);
  RsaKey KeyA = generateRsaKey(KeyRng, 31);
  RsaKey KeyB = generateRsaKey(KeyRng, 31);
  std::printf("rsa keys: n=%" PRIu64 " dA=%" PRIu64 " dB=%" PRIu64 "\n", KeyA.N,
              KeyA.D, KeyB.D);

  std::vector<SecretClassSpec> RsaClasses(2);
  RsaClasses[0].Name = "keyA";
  RsaClasses[0].Fixed = {{"d", static_cast<int64_t>(KeyA.D)}};
  RsaClasses[1].Name = "keyB";
  RsaClasses[1].Fixed = {{"d", static_cast<int64_t>(KeyB.D)}};
  for (SecretClassSpec &C : RsaClasses)
    C.Prepare = [&KeyA](Memory &M, Rng &R) {
      setRsaMessage(M, {2 + R.nextBelow(KeyA.N - 2)});
    };

  Report R("adversary_gate");
  R.setScalar("samples_per_cell", Samples);
  R.setScalar("seed", static_cast<double>(Seed));
  std::vector<Observation> RepresentativeObs; // partitioned/login/mit.

  bool AllPass = true;
  std::printf("\n=== empirical adversary vs analytic bounds "
              "(%u samples/cell, seed 0x%" PRIx64 ") ===\n",
              Samples, Seed);

  // 3 designs × 4 cells, one meter across the whole gate (stderr only).
  ProgressMeter Progress("adversary_gate", 12ull * Samples,
                         Harness.Progress);

  for (HwKind Kind : Designs) {
    const std::string Design = hwKindName(Kind);
    auto Env = createMachineEnv(Kind, Lat);
    std::printf("\n-- %s --\n", Design.c_str());

    // Login calibration is per-design: initial predictions at 110% of the
    // worst sampled body on THIS hardware, fixed before the secret request
    // is drawn (Sec. 8.2), so the schedule cannot encode the secret and
    // steady state never mispredicts.
    Rng CalibRng(7);
    auto [E1, E2] = calibrateLoginEstimates(Lat, Table, *Env, 30, CalibRng);
    LoginProgramConfig Mit;
    Mit.Mitigated = true;
    Mit.Estimate1 = E1;
    Mit.Estimate2 = E2;
    LoginProgramConfig Unmit;
    Unmit.Mitigated = false;
    Program LoginMit = buildLoginProgram(Lat, Table, Mit);
    Program LoginUnmit = buildLoginProgram(Lat, Table, Unmit);

    // RSA calibration likewise: the estimate covers the worst body over
    // both candidate exponents so the per-block mitigate never mispredicts.
    RsaProgramConfig RsaMitCfg;
    RsaMitCfg.Mode = RsaMitigationMode::PerBlock;
    RsaMitCfg.MaxBlocks = 1;
    RsaMitCfg.Estimate =
        (maxRsaBodyTime(Lat, KeyA,
                        {static_cast<int64_t>(KeyA.D),
                         static_cast<int64_t>(KeyB.D)},
                        *Env, 8, Seed ^ 0xCA11B) *
         5 + 3) / 4; // 125% of the worst sampled body.
    RsaProgramConfig RsaUnmitCfg;
    RsaUnmitCfg.Mode = RsaMitigationMode::Unmitigated;
    RsaUnmitCfg.MaxBlocks = 1;
    Program RsaMit = buildRsaProgram(Lat, KeyA, RsaMitCfg);
    Program RsaUnmit = buildRsaProgram(Lat, KeyA, RsaUnmitCfg);

    struct CellSpec {
      const char *Workload;
      const char *Variant;
      const Program *P;
      const std::vector<SecretClassSpec> *Classes;
      bool WantDetected;
    };
    const CellSpec Cells[4] = {
        {"login", "mit", &LoginMit, &LoginClasses, false},
        {"login", "unmit", &LoginUnmit, &LoginClasses, true},
        {"rsa", "mit", &RsaMit, &RsaClasses, false},
        {"rsa", "unmit", &RsaUnmit, &RsaClasses, true},
    };

    for (const CellSpec &Spec : Cells) {
      std::string Prefix =
          Design + "." + Spec.Workload + "." + Spec.Variant + ".";
      bool Keep = Kind == HwKind::Partitioned && !Spec.WantDetected &&
                  std::string(Spec.Workload) == "login";
      CellResult Cell =
          runCell(R, Prefix, *Spec.P, *Env, *Spec.Classes, Samples, Seed,
                  Runner, Progress, Keep ? &RepresentativeObs : nullptr);
      if (Spec.WantDetected) {
        // The attack must work: overwhelming significance, large effect.
        Cell.Pass = Cell.D.LeakDetected &&
                    std::abs(Cell.D.TStat) >= kMinAbsT &&
                    Cell.D.PValueLog10 <= kDetectPValueLog10;
        printCell(Cell, "unmit: detect");
      } else {
        // The mitigation must hold: what the adversary measured carries no
        // more bits than the Sec. 6 analysis promised.
        Cell.Pass = Cell.D.MiBits <= Cell.D.AnalyticBoundBits;
        printCell(Cell, "mit: mi<=bound");
      }
      R.setVerdict(Prefix + "pass", Cell.Pass);
      AllPass &= Cell.Pass;
    }
  }

  std::printf("\n=== adversary gate: %s ===\n",
              AllPass ? "all cells pass (unmitigated variants detected, "
                        "mitigated variants within their analytic bounds)"
                      : "FAILED — see cells marked FAIL above");

  // Representative observation trace (partitioned/login/mit) for offline
  // inspection: zamtrace report reruns the detector over it.
  if (!Harness.TraceOutPath.empty()) {
    std::optional<TraceFormat> Format = resolveBenchTraceFormat(Harness);
    if (!Format)
      return 2;
    std::FILE *F = std::fopen(Harness.TraceOutPath.c_str(), "wb");
    if (!F) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                   Harness.TraceOutPath.c_str());
      return 2;
    }
    FileByteSink Bytes(F);
    std::unique_ptr<TraceSink> Sink = makeTraceSink(*Format, Bytes);
    auto Args = provenanceArgs(resolveThreadCount(Harness.Threads));
    Args.emplace_back("attack_samples", std::to_string(Samples));
    Args.emplace_back("attack_seed", std::to_string(Seed));
    Args.emplace_back("attack_classes", "present,absent");
    Sink->header(Args);
    size_t Count = exportObservations(*Sink, RepresentativeObs,
                                      {"present", "absent"});
    Sink->close();
    if (!Sink->ok() || std::fclose(F) != 0) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                   Harness.TraceOutPath.c_str());
      return 2;
    }
    std::printf("wrote %zu observation records to %s\n", Count,
                Harness.TraceOutPath.c_str());
  }

  if (!emitReportJson(R, Harness))
    return 2;
  return AllPass ? 0 : 1;
}
