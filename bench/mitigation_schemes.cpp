//===- mitigation_schemes.cpp - Ablation: schemes and penalty policies -------===//
//
// Sec. 7 fixes one point in the predictive-mitigation design space: the
// fast-doubling scheme with the local (per-level) penalty policy, citing
// [5, 38] for alternatives. This ablation quantifies the trade-off the
// paper describes — schedule growth rate buys security (fewer
// distinguishable durations) at the cost of padding — and the effect of
// sharing one Miss counter across levels (the Global policy).
//
// Workload: a mitigated sleep(h) with secrets drawn from a wide range, so
// mispredictions actually occur; plus the login session for end-to-end
// overhead.
//
//===----------------------------------------------------------------------===//

#include "analysis/Leakage.h"
#include "apps/LoginApp.h"
#include "hw/HardwareModels.h"
#include "lang/Parser.h"
#include "types/LabelInference.h"

#include <cinttypes>
#include <cstdio>
#include <set>

using namespace zam;

namespace {

struct SchemeRow {
  const char *Name;
  const MitigationScheme *Scheme;
};

/// Runs the mitigated sleep program over a secret sweep and reports the
/// distinct-duration count (leakage) and total padded time (cost).
void sweepScheme(const SecurityLattice &Lat, const MitigationScheme &Scheme,
                 unsigned &DistinctDurations, uint64_t &TotalPadded,
                 uint64_t &TotalBody) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(
      "var h : H;\nvar l : L;\nmitigate (64, H) { sleep(h) @[H,H] };\nl := 1",
      Lat, Diags);
  inferTimingLabels(*P);

  std::set<uint64_t> Durations;
  TotalPadded = 0;
  TotalBody = 0;
  for (int64_t H = 0; H <= 40000; H += 997) {
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    InterpreterOptions Opts;
    Opts.Scheme = &Scheme;
    FullInterpreter Interp(*P, *Env, Opts);
    Interp.memory().store("h", H);
    RunResult R = Interp.run();
    Durations.insert(R.T.Mitigations[0].Duration);
    TotalPadded += R.T.Mitigations[0].Duration;
    TotalBody += R.T.Mitigations[0].BodyTime;
  }
  DistinctDurations = Durations.size();
}

} // namespace

int main() {
  TwoPointLattice Lat;

  std::printf("=== scheme ablation: distinguishable durations vs padding"
              " ===\n");
  std::printf("(mitigated sleep(h), 41 secrets in [0, 40000], fresh schedule"
              " per secret)\n\n");
  std::printf("  %-16s %22s %16s\n", "scheme", "distinct durations",
              "padding overhead");
  const SchemeRow Rows[] = {
      {"fast-doubling", &fastDoublingScheme()},
      {"linear", &linearScheme()},
  };
  for (const SchemeRow &Row : Rows) {
    unsigned Distinct;
    uint64_t Padded, Body;
    sweepScheme(Lat, *Row.Scheme, Distinct, Padded, Body);
    std::printf("  %-16s %22u %15.2fx\n", Row.Name, Distinct,
                static_cast<double>(Padded) / static_cast<double>(Body));
  }
  std::printf("\nfast doubling admits only log-many durations (low leakage)"
              " but pads\nup to 2x; the linear schedule pads tighter and"
              " leaks more values —\nthe Sec. 7 trade-off.\n");

  // --- Penalty policy on the login workload. ---
  std::printf("\n=== penalty-policy ablation (login, partitioned hw) ===\n");
  Rng R(777);
  LoginTable Table = makeLoginTable(100, 50, R);
  auto CalEnv = createMachineEnv(HwKind::Partitioned, Lat);
  auto [E1, E2] = calibrateLoginEstimates(Lat, Table, *CalEnv, 30, R);
  LoginProgramConfig Config;
  Config.Mitigated = true;
  // Deliberately under-predict the check mitigate so mispredictions occur
  // and the policies can differ.
  Config.Estimate1 = E1;
  Config.Estimate2 = E2 / 4;

  for (PenaltyPolicy Policy : {PenaltyPolicy::PerLevel, PenaltyPolicy::Global}) {
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    InterpreterOptions Opts;
    Opts.Penalty = Policy;
    LoginSession S(Lat, Table, Config, *Env, Opts);
    uint64_t Sum = 0;
    for (unsigned I = 0; I != 100; ++I)
      Sum += S.attempt("user" + std::to_string(I), "x").Cycles;
    std::printf("  %-10s avg attempt %8.0f cycles, H-level misses %u\n",
                Policy == PenaltyPolicy::PerLevel ? "per-level" : "global",
                Sum / 100.0, S.mitigationState().misses(Lat.top()));
  }
  std::printf("\n(on a two-point lattice both policies share one counter for"
              " H; they\ndiverge on deeper lattices, where per-level keeps"
              " an M misprediction\nfrom inflating H predictions — see"
              " tests/mitigation_test.cpp)\n");
  return 0;
}
