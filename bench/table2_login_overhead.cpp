//===- table2_login_overhead.cpp - Reproduces Table 2 ------------------------===//
//
// Table 2: "Login time with various usernames and options (in clock
// cycles)". Rows: average attempt time over valid and invalid usernames.
// Columns:
//   nopar — commodity (unpartitioned) hardware, no mitigation
//   moff  — secure partitioned hardware, mitigation off
//   mon   — secure partitioned hardware, mitigation on
// The paper reports overhead on valid usernames of 1 / 1.11 / 1.22: the
// partitioning costs ~11% (halved cache capacity) and mitigation adds
// another ~10%; with mitigation on, valid and invalid times coincide.
//
//===----------------------------------------------------------------------===//

#include "apps/LoginApp.h"
#include "hw/HardwareModels.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

using namespace zam;

namespace {

constexpr unsigned TableSize = 100;
constexpr unsigned NumValid = 50;
constexpr unsigned Rounds = 4; // Passes over the 100-username request mix.

/// A cache configuration scaled down so the login's working set exerts the
/// same relative pressure the paper's full web application exerted on the
/// Table 1 caches. With the full-size caches the toy workload fits in every
/// partition and the partitioning overhead vanishes; this configuration
/// reproduces the paper's ~11% "moff" cost.
MachineEnvConfig pressureConfig() {
  MachineEnvConfig C;
  C.L1D = {8, 2, 32, 1};
  C.L2D = {32, 4, 64, 6};
  C.L1I = {16, 1, 32, 1};
  C.L2I = {32, 4, 64, 6};
  C.DTlb = {4, 4, 4096, 30};
  C.ITlb = {4, 4, 4096, 30};
  return C;
}

struct Averages {
  double Valid = 0;
  double Invalid = 0;
  bool Coincide = false;
};

Averages measure(const SecurityLattice &Lat, const LoginTable &Table,
                 HwKind Hw, const LoginProgramConfig &Config) {
  auto Env = createMachineEnv(Hw, Lat, pressureConfig());
  LoginSession Session(Lat, Table, Config, *Env);
  // Warm-up pass so we measure steady-state behavior, as the paper's
  // long-running sessions do.
  for (unsigned I = 0; I != TableSize; ++I)
    Session.attempt("user" + std::to_string(I), "x");
  Session.resetMitigation();

  uint64_t ValidSum = 0, InvalidSum = 0;
  unsigned ValidCount = 0, InvalidCount = 0;
  std::vector<uint64_t> ValidTimes, InvalidTimes;
  for (unsigned Round = 0; Round != Rounds; ++Round)
    for (unsigned I = 0; I != TableSize; ++I) {
      uint64_t T =
          Session.attempt("user" + std::to_string(I), "pass" + std::to_string(I))
              .Cycles;
      if (I < NumValid) {
        ValidSum += T;
        ++ValidCount;
        ValidTimes.push_back(T);
      } else {
        InvalidSum += T;
        ++InvalidCount;
        InvalidTimes.push_back(T);
      }
    }
  Averages Out;
  Out.Valid = static_cast<double>(ValidSum) / ValidCount;
  Out.Invalid = static_cast<double>(InvalidSum) / InvalidCount;
  // "Coincide" when the averages differ by well under 1% (the paper's
  // mitigated row shows 86132 vs 86147 — a 0.02% gap).
  double Gap = Out.Valid > Out.Invalid ? Out.Valid - Out.Invalid
                                       : Out.Invalid - Out.Valid;
  Out.Coincide = Gap < 0.01 * Out.Valid;
  return Out;
}

} // namespace

int main() {
  TwoPointLattice Lat;
  Rng R(424242);
  LoginTable Table = makeLoginTable(TableSize, NumValid, R);

  LoginProgramConfig Plain;
  Plain.Mitigated = false;

  auto CalEnv = createMachineEnv(HwKind::Partitioned, Lat, pressureConfig());
  auto [E1, E2] = calibrateLoginEstimates(Lat, Table, *CalEnv, 40, R);
  LoginProgramConfig Padded;
  Padded.Mitigated = true;
  Padded.Estimate1 = E1;
  Padded.Estimate2 = E2;

  Averages Nopar = measure(Lat, Table, HwKind::NoPartition, Plain);
  Averages Moff = measure(Lat, Table, HwKind::Partitioned, Plain);
  Averages Mon = measure(Lat, Table, HwKind::Partitioned, Padded);

  std::printf("=== Table 2: login time with various usernames and options"
              " (clock cycles) ===\n\n");
  std::printf("  %-22s %10s %10s %10s\n", "", "nopar", "moff", "mon");
  std::printf("  %-22s %10.0f %10.0f %10.0f\n", "ave. time (valid)",
              Nopar.Valid, Moff.Valid, Mon.Valid);
  std::printf("  %-22s %10.0f %10.0f %10.0f\n", "ave. time (invalid)",
              Nopar.Invalid, Moff.Invalid, Mon.Invalid);
  std::printf("  %-22s %10.2f %10.2f %10.2f\n", "overhead (valid)", 1.0,
              Moff.Valid / Nopar.Valid, Mon.Valid / Nopar.Valid);

  std::printf("\n=== shape checks (paper: 1 / 1.11 / 1.22; mitigated"
              " valid==invalid) ===\n");
  std::printf("  partitioning slows the login down:        %s"
              "  (moff/nopar = %.2f)\n",
              Moff.Valid > Nopar.Valid ? "YES" : "no",
              Moff.Valid / Nopar.Valid);
  std::printf("  mitigation adds modest extra cost:        %s"
              "  (mon/moff  = %.2f)\n",
              Mon.Valid > Moff.Valid ? "YES" : "no", Mon.Valid / Moff.Valid);
  std::printf("  unmitigated valid/invalid distinguishable: %s"
              "  (%.0f vs %.0f)\n",
              !Nopar.Coincide ? "YES" : "no", Nopar.Valid, Nopar.Invalid);
  std::printf("  mitigated valid/invalid coincide:          %s"
              "  (%.0f vs %.0f)\n",
              Mon.Coincide ? "YES" : "no", Mon.Valid, Mon.Invalid);
  return Mon.Coincide ? 0 : 1;
}
