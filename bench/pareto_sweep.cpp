//===- pareto_sweep.cpp - Mitigation-policy Pareto frontier ------------------===//
//
// Sec. 7 fixes one point in the predictive-mitigation design space: the
// fast-doubling schedule with the local (per-level) penalty policy, citing
// [5, 38] for alternatives. This harness sweeps the registered policy
// family across that space and records, per policy point, the two axes of
// the trade-off the paper describes:
//
//   security — the priced Sec. 6 leakage bound (Σ log2 N_i(T_i) over the
//              counted windows, by the policy's own attainable-value count),
//   cost     — the padding overhead (Σ padded duration / Σ body time).
//
// Three workloads: the mitigated-sleep secret sweep (the classic ablation,
// fresh schedule per secret), a Fig. 7-style login session (persistent Miss
// table, deliberately under-predicted check estimate so mispredictions
// occur) and a Fig. 8-style per-block RSA decryption. A policy family whose
// schedule grows slower than doubling (bucketed) should land strictly
// between fast-doubling and linear on both axes — the non-trivial frontier
// the report's verdicts check.
//
// The old penalty-policy ablation (per-level vs global Miss sharing on the
// login workload) rides along at the end.
//
//===----------------------------------------------------------------------===//

#include "apps/LoginApp.h"
#include "apps/RsaApp.h"
#include "crypto/ToyRsa.h"
#include "exp/Harness.h"
#include "exp/ParallelRunner.h"
#include "hw/HardwareModels.h"
#include "lang/Parser.h"
#include "obs/LeakAudit.h"
#include "sem/FullInterpreter.h"
#include "support/Diagnostics.h"
#include "types/LabelInference.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace zam;

namespace {

/// One policy point of the sweep: the parsed policy plus its canonical
/// spec (the report's frontier index).
struct PolicyPoint {
  std::string Spec;
  MitigationPolicyPtr Policy;
};

/// Parses \p Specs, dying on any malformed entry (they are compiled in).
std::vector<PolicyPoint> makePoints(const std::vector<std::string> &Specs) {
  std::vector<PolicyPoint> Points;
  for (const std::string &Spec : Specs) {
    std::string Err;
    MitigationPolicyPtr P = parseMitigationPolicy(Spec, &Err);
    if (!P)
      reportFatalError(("pareto_sweep: bad policy spec: " + Err).c_str());
    Points.push_back({P->spec(), std::move(P)});
  }
  return Points;
}

/// One policy point's measurement on one workload.
struct FrontierRow {
  double BoundBits = 0;    ///< Σ log2 N_i(T_i), the policy's own account.
  double PadOverhead = 0;  ///< Σ padded duration / Σ body time.
  double Distinct = 0;     ///< Empirically distinguishable durations.
  double TotalCycles = 0;  ///< End-to-end cycles (for e2e overheads).
};

//===----------------------------------------------------------------------===//
// Workload 1: the mitigated-sleep secret sweep (fresh schedule per secret)
//===----------------------------------------------------------------------===//

FrontierRow sweepWorkload(const SecurityLattice &Lat,
                          const MitigationPolicy &Policy) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(
      "var h : H;\nvar l : L;\nmitigate (64, H) { sleep(h) @[H,H] };\nl := 1",
      Lat, Diags);
  inferTimingLabels(*P);

  PolicySelection Sel;
  Sel.Default = &Policy;
  LeakAudit Audit(Lat, std::nullopt, Sel);

  FrontierRow Row;
  std::set<uint64_t> Durations;
  uint64_t Padded = 0, Body = 0;
  for (int64_t H = 0; H <= 40000; H += 997) {
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    InterpreterOptions Opts;
    Opts.Mitigation = Sel;
    FullInterpreter Interp(*P, *Env, Opts);
    Interp.memory().store("h", H);
    RunResult R = Interp.run();
    Audit.ingest(R.T);
    Durations.insert(R.T.Mitigations[0].Duration);
    Padded += R.T.Mitigations[0].Duration;
    Body += R.T.Mitigations[0].BodyTime;
    Row.TotalCycles += static_cast<double>(R.T.FinalTime);
  }
  Row.BoundBits = Audit.totalBitsBound();
  Row.PadOverhead = static_cast<double>(Padded) / static_cast<double>(Body);
  Row.Distinct = static_cast<double>(Durations.size());
  return Row;
}

//===----------------------------------------------------------------------===//
// Workload 2: Fig. 7-style login session (persistent Miss table)
//===----------------------------------------------------------------------===//

constexpr unsigned LoginAttempts = 60;

FrontierRow loginWorkload(const SecurityLattice &Lat, const LoginTable &Table,
                          const LoginProgramConfig &Config,
                          const MitigationPolicy &Policy) {
  Program P = buildLoginProgram(Lat, Table, Config);
  auto Env = createMachineEnv(HwKind::Partitioned, Lat);

  PolicySelection Sel;
  Sel.Default = &Policy;
  InterpreterOptions Opts;
  Opts.Mitigation = Sel;
  // A server session: one machine environment and one Miss table across
  // the attempts, exactly like LoginSession.
  MitigationState St(Lat, Sel.base(), Opts.Penalty);
  Opts.SharedMitState = &St;
  LeakAudit Audit(Lat, std::nullopt, Sel);

  FrontierRow Row;
  std::set<uint64_t> Durations;
  uint64_t Padded = 0, Body = 0;
  for (unsigned I = 0; I != LoginAttempts; ++I) {
    RunResult R = runFull(
        P, *Env,
        [&](Memory &M) {
          setLoginRequest(M, "user" + std::to_string(I),
                          "pass" + std::to_string(I));
        },
        Opts);
    Audit.ingest(R.T);
    for (const MitigateRecord &M : R.T.Mitigations) {
      Durations.insert(M.Duration);
      Padded += M.Duration;
      Body += M.BodyTime;
    }
    Row.TotalCycles += static_cast<double>(R.T.FinalTime);
  }
  Row.BoundBits = Audit.totalBitsBound();
  Row.PadOverhead = static_cast<double>(Padded) / static_cast<double>(Body);
  Row.Distinct = static_cast<double>(Durations.size());
  return Row;
}

//===----------------------------------------------------------------------===//
// Workload 3: Fig. 8-style per-block RSA decryption
//===----------------------------------------------------------------------===//

constexpr unsigned RsaMessages = 6;
constexpr unsigned RsaBlocks = 2;
constexpr unsigned RsaModulusBits = 31;

FrontierRow rsaWorkload(const SecurityLattice &Lat, const RsaKey &Key,
                        int64_t Estimate,
                        const std::vector<std::vector<uint64_t>> &Msgs,
                        const MitigationPolicy &Policy) {
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::PerBlock;
  Config.Estimate = Estimate;
  Config.MaxBlocks = RsaBlocks;
  auto Env = createMachineEnv(HwKind::Partitioned, Lat);

  PolicySelection Sel;
  Sel.Default = &Policy;
  InterpreterOptions Opts;
  Opts.Mitigation = Sel;
  RsaSession Session(Lat, Key, Config, *Env, Opts);
  LeakAudit Audit(Lat, std::nullopt, Sel);

  FrontierRow Row;
  std::set<uint64_t> Durations;
  uint64_t Padded = 0, Body = 0;
  for (const std::vector<uint64_t> &Msg : Msgs) {
    RsaDecryptResult R = Session.decrypt(Msg);
    Audit.ingest(R.T);
    for (const MitigateRecord &M : R.T.Mitigations) {
      Durations.insert(M.Duration);
      Padded += M.Duration;
      Body += M.BodyTime;
    }
    Row.TotalCycles += static_cast<double>(R.Cycles);
  }
  Row.BoundBits = Audit.totalBitsBound();
  Row.PadOverhead = static_cast<double>(Padded) / static_cast<double>(Body);
  Row.Distinct = static_cast<double>(Durations.size());
  return Row;
}

//===----------------------------------------------------------------------===//
// Frontier shape check
//===----------------------------------------------------------------------===//

/// True when some bucketed point sits strictly between fast-doubling and
/// linear on BOTH axes: more bits bound than doubling but fewer than
/// linear, and less padding than doubling but more than linear.
bool frontierNontrivial(const std::vector<PolicyPoint> &Points,
                        const std::vector<FrontierRow> &Rows) {
  const FrontierRow *Doubling = nullptr, *Linear = nullptr;
  for (size_t I = 0; I != Points.size(); ++I) {
    if (Points[I].Spec == "fast-doubling")
      Doubling = &Rows[I];
    if (Points[I].Spec == "linear")
      Linear = &Rows[I];
  }
  if (!Doubling || !Linear)
    return false;
  for (size_t I = 0; I != Points.size(); ++I) {
    if (Points[I].Policy->name() != std::string("bucketed"))
      continue;
    const FrontierRow &B = Rows[I];
    if (B.BoundBits > Doubling->BoundBits && B.BoundBits < Linear->BoundBits &&
        B.PadOverhead < Doubling->PadOverhead &&
        B.PadOverhead > Linear->PadOverhead)
      return true;
  }
  return false;
}

void printFrontier(const char *Title, const std::vector<PolicyPoint> &Points,
                   const std::vector<FrontierRow> &Rows) {
  std::printf("\n-- %s --\n", Title);
  std::printf("  %-20s %12s %12s %10s\n", "policy", "bound bits",
              "pad overhead", "distinct");
  for (size_t I = 0; I != Points.size(); ++I)
    std::printf("  %-20s %12.3f %11.3fx %10.0f\n", Points[I].Spec.c_str(),
                Rows[I].BoundBits, Rows[I].PadOverhead, Rows[I].Distinct);
}

void addFrontierSeries(Report &R, const std::string &Prefix,
                       const std::vector<FrontierRow> &Rows) {
  std::vector<double> Bound, Overhead, Distinct;
  for (const FrontierRow &Row : Rows) {
    Bound.push_back(Row.BoundBits);
    Overhead.push_back(Row.PadOverhead);
    Distinct.push_back(Row.Distinct);
  }
  R.addSeries(Prefix + "/bound_bits", Bound);
  R.addSeries(Prefix + "/pad_overhead", Overhead);
  R.addSeries(Prefix + "/distinct_durations", Distinct);
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Harness = parseHarnessArgs(Argc, Argv);
  if (!Harness.Ok)
    return 2;
  ParallelRunner Runner(Harness.Threads);

  TwoPointLattice Lat;

  // --- Workload setup (deterministic; fixed seeds). ---
  Rng TableRng(2254078);
  LoginTable Table = makeLoginTable(100, 50, TableRng);
  Rng CalRng(7);
  auto CalEnv = createMachineEnv(HwKind::Partitioned, Lat);
  auto [E1, E2] = calibrateLoginEstimates(Lat, Table, *CalEnv, 30, CalRng);
  // Under-predict the check mitigate so mispredictions occur and the
  // schedules can actually differ (a perfectly calibrated session never
  // leaves the initial prediction and every policy coincides).
  LoginProgramConfig LoginConfig;
  LoginConfig.Mitigated = true;
  LoginConfig.Estimate1 = E1 / 2;
  LoginConfig.Estimate2 = E2 / 4;

  Rng KeyRng(1001), MsgRng(3003), RsaCalRng(4004);
  RsaKey Key = generateRsaKey(KeyRng, RsaModulusBits);
  std::vector<std::vector<uint64_t>> Msgs;
  for (unsigned I = 0; I != RsaMessages; ++I) {
    std::vector<uint64_t> Msg;
    for (unsigned B = 0; B != RsaBlocks; ++B)
      Msg.push_back(rsaEncryptBlock(Key, MsgRng.nextBelow(Key.N)));
    Msgs.push_back(std::move(Msg));
  }
  auto RsaCalEnv = createMachineEnv(HwKind::Partitioned, Lat);
  int64_t RsaEst = calibrateRsaEstimate(Lat, Key, *RsaCalEnv, 4, RsaCalRng,
                                        RsaBlocks);
  // The RSA sweep runs the *uncalibrated* configuration (initial estimate
  // 1, the language default): per-block modexp bodies are near-constant,
  // so a calibrated estimate settles every policy onto the same rung and
  // the frontier degenerates. From estimate 1 each schedule must climb its
  // own ladder to the body time, which separates the policies: doubling
  // overshoots to the next power of two, bucketed lands within 1+1/q, the
  // linear ladder tracks the body exactly. The calibrated estimate still
  // seeds the profile-seeded point.
  int64_t RsaUnder = 1;
  std::printf("login estimates (calibrated, then under-predicted): "
              "lookup=%" PRId64 " check=%" PRId64 "\n",
              LoginConfig.Estimate1, LoginConfig.Estimate2);
  std::printf("rsa per-block estimate: calibrated=%" PRId64
              " (seeded point), swept at %" PRId64 "\n",
              RsaEst, RsaUnder);

  // --- The policy points: ≥3 policies, the bucketed family at 3 quanta,
  // and a profile-seeded point per workload (the floor chosen from the
  // workload's own body-time scale, as `zamc profile --recommend` would).
  const std::vector<std::string> BaseSpecs = {
      "fast-doubling", "bucketed:q=2", "bucketed:q=4", "bucketed:q=8",
      "linear"};
  auto withSeeded = [&](int64_t Floor) {
    std::vector<std::string> Specs = BaseSpecs;
    Specs.push_back("seeded:est=" + std::to_string(Floor));
    return makePoints(Specs);
  };
  std::vector<PolicyPoint> SweepPoints = withSeeded(40001);
  std::vector<PolicyPoint> LoginPoints = withSeeded(E2);
  std::vector<PolicyPoint> RsaPoints = withSeeded(RsaEst);

  // --- The sweep proper: every policy point independent, fanned out.
  // The meter ticks from worker threads (stderr only; report bytes are
  // submission-order reduced and unaffected).
  ProgressMeter Progress(
      "pareto_sweep",
      SweepPoints.size() + LoginPoints.size() + RsaPoints.size(),
      Harness.Progress);
  std::vector<FrontierRow> SweepRows =
      Runner.map(SweepPoints.size(), [&](size_t I) {
        FrontierRow Row = sweepWorkload(Lat, *SweepPoints[I].Policy);
        Progress.tick();
        return Row;
      });
  std::vector<FrontierRow> LoginRows =
      Runner.map(LoginPoints.size(), [&](size_t I) {
        FrontierRow Row =
            loginWorkload(Lat, Table, LoginConfig, *LoginPoints[I].Policy);
        Progress.tick();
        return Row;
      });
  std::vector<FrontierRow> RsaRows =
      Runner.map(RsaPoints.size(), [&](size_t I) {
        FrontierRow Row =
            rsaWorkload(Lat, Key, RsaUnder, Msgs, *RsaPoints[I].Policy);
        Progress.tick();
        return Row;
      });

  std::printf("\n=== mitigation-policy Pareto sweep: leakage bound vs"
              " padding ===\n");
  printFrontier("mitigated sleep, 41 secrets, fresh schedule each",
                SweepPoints, SweepRows);
  printFrontier("fig7 login, 60 attempts, persistent schedule", LoginPoints,
                LoginRows);
  printFrontier("fig8 RSA, 6 messages x 2 blocks", RsaPoints, RsaRows);

  bool SweepFrontier = frontierNontrivial(SweepPoints, SweepRows);
  bool LoginFrontier = frontierNontrivial(LoginPoints, LoginRows);
  bool RsaFrontier = frontierNontrivial(RsaPoints, RsaRows);
  std::printf("\nnon-trivial frontier (a bucketed point strictly between"
              " doubling and linear\non both axes): sweep %s, login %s,"
              " rsa %s\n",
              SweepFrontier ? "YES" : "no", LoginFrontier ? "YES" : "no",
              RsaFrontier ? "YES" : "no");

  // --- Penalty-policy ablation (kept from the scheme-ablation bench). ---
  std::printf("\n=== penalty-policy ablation (login, partitioned hw) ===\n");
  double PenaltyAvg[2] = {0, 0};
  unsigned PenaltyMisses[2] = {0, 0};
  for (PenaltyPolicy Penalty :
       {PenaltyPolicy::PerLevel, PenaltyPolicy::Global}) {
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    InterpreterOptions Opts;
    Opts.Penalty = Penalty;
    LoginSession S(Lat, Table, LoginConfig, *Env, Opts);
    uint64_t Sum = 0;
    for (unsigned I = 0; I != LoginAttempts; ++I)
      Sum += S.attempt("user" + std::to_string(I), "x").Cycles;
    unsigned Idx = Penalty == PenaltyPolicy::PerLevel ? 0 : 1;
    PenaltyAvg[Idx] = static_cast<double>(Sum) / LoginAttempts;
    PenaltyMisses[Idx] = S.mitigationState().misses(Lat.top());
    std::printf("  %-10s avg attempt %8.0f cycles, H-level misses %u\n",
                Idx == 0 ? "per-level" : "global", PenaltyAvg[Idx],
                PenaltyMisses[Idx]);
  }
  std::printf("(on a two-point lattice both policies share one counter for"
              " H; they\ndiverge on deeper lattices — see"
              " tests/mitigation_test.cpp)\n");

  Report R("pareto_sweep");
  std::vector<double> PolicyIndex;
  for (size_t I = 0; I != SweepPoints.size(); ++I)
    PolicyIndex.push_back(static_cast<double>(I));
  R.setIndex("policy", PolicyIndex);
  for (size_t I = 0; I != SweepPoints.size(); ++I) {
    R.setText("policy/" + std::to_string(I), SweepPoints[I].Spec);
    R.setText("policy_login/" + std::to_string(I), LoginPoints[I].Spec);
    R.setText("policy_rsa/" + std::to_string(I), RsaPoints[I].Spec);
  }
  addFrontierSeries(R, "sweep", SweepRows);
  addFrontierSeries(R, "fig7_login", LoginRows);
  addFrontierSeries(R, "fig8_rsa", RsaRows);
  R.setScalar("login_estimate_lookup",
              static_cast<double>(LoginConfig.Estimate1));
  R.setScalar("login_estimate_check",
              static_cast<double>(LoginConfig.Estimate2));
  R.setScalar("rsa_estimate", static_cast<double>(RsaUnder));
  R.setScalar("penalty_per_level_avg_cycles", PenaltyAvg[0]);
  R.setScalar("penalty_global_avg_cycles", PenaltyAvg[1]);
  R.setVerdict("sweep_frontier_nontrivial", SweepFrontier);
  R.setVerdict("fig7_frontier_nontrivial", LoginFrontier);
  R.setVerdict("fig8_frontier_nontrivial", RsaFrontier);

  std::printf("\n%s", R.renderSummary().c_str());
  if (!emitReportJson(R, Harness))
    return 2;
  return (SweepFrontier && LoginFrontier && RsaFrontier) ? 0 : 1;
}
