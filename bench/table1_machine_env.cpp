//===- table1_machine_env.cpp - Reproduces Table 1 --------------------------===//
//
// Table 1 of the paper lists the machine-environment parameters of the
// simulated processor. This harness prints the configuration our simulator
// uses (identical to the paper's) and validates each structure's modeled
// latency with targeted accesses: hit latency, miss penalty, and the
// partitioned design's per-partition geometry.
//
//===----------------------------------------------------------------------===//

#include "hw/HardwareModels.h"

#include <cinttypes>
#include <cstdio>

using namespace zam;

namespace {

void printRow(const char *Name, const CacheConfig &C, const char *LatencyKind) {
  std::printf("  %-14s %5u sets  %u-way  %5u byte  %3" PRIu64 " cycles (%s)\n",
              Name, C.NumSets, C.Assoc, C.BlockBytes, C.Latency, LatencyKind);
}

/// Measures the latency of the first (cold) and second (warm) access.
std::pair<uint64_t, uint64_t> probeData(MachineEnv &Env, Addr A) {
  TwoPointLattice Lat;
  uint64_t Cold = Env.dataAccess(A, false, Lat.bottom(), Lat.bottom());
  uint64_t Warm = Env.dataAccess(A, false, Lat.bottom(), Lat.bottom());
  return {Cold, Warm};
}

} // namespace

int main() {
  MachineEnvConfig C;
  std::printf("=== Table 1: machine environment parameters ===\n");
  std::printf("(paper: name | # of sets | issue | block size | latency)\n\n");
  printRow("L1 Data Cache", C.L1D, "hit");
  printRow("L2 Data Cache", C.L2D, "hit");
  printRow("L1 Inst. Cache", C.L1I, "hit");
  printRow("L2 Inst. Cache", C.L2I, "hit");
  printRow("Data TLB", C.DTlb, "miss penalty");
  printRow("Instruction TLB", C.ITlb, "miss penalty");
  std::printf("  %-14s %*s %3" PRIu64 " cycles\n", "Main memory", 30, "",
              C.MemLatency);

  TwoPointLattice Lat;
  const uint64_t ExpectCold =
      C.DTlb.Latency + C.L1D.Latency + C.L2D.Latency + C.MemLatency;
  const uint64_t ExpectFetchCold =
      C.ITlb.Latency + C.L1I.Latency + C.L2I.Latency + C.MemLatency;

  std::printf("\n=== model validation (measured vs expected cycles) ===\n");
  std::printf("  %-12s %-22s %-22s\n", "design", "data cold/warm",
              "fetch cold/warm");
  for (HwKind Kind :
       {HwKind::NoPartition, HwKind::NoFill, HwKind::Partitioned}) {
    auto Env = createMachineEnv(Kind, Lat, C);
    auto [Cold, Warm] = probeData(*Env, 0x10000000);
    uint64_t FetchCold = Env->fetch(0x40000000, Lat.bottom(), Lat.bottom());
    uint64_t FetchWarm = Env->fetch(0x40000000, Lat.bottom(), Lat.bottom());
    std::printf("  %-12s %3" PRIu64 "/%-3" PRIu64 " (expect %3" PRIu64
                "/%-3" PRIu64 ")  %3" PRIu64 "/%-3" PRIu64 " (expect %3" PRIu64
                "/%-3" PRIu64 ")\n",
                hwKindName(Kind), Cold, Warm, ExpectCold, C.L1D.Latency,
                FetchCold, FetchWarm, ExpectFetchCold, C.L1I.Latency);
  }

  // Partition geometry of the Sec. 4.3 design.
  PartitionedHw Part(Lat, C);
  CacheConfig P1 = Part.partitionConfig(C.L1D);
  std::printf("\npartitioned design: each structure statically divided per"
              " level\n  e.g. L1D partition: %u sets x %u ways (of %u sets"
              " total)\n",
              P1.NumSets, P1.Assoc, C.L1D.NumSets);
  return 0;
}
