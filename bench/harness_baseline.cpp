//===- harness_baseline.cpp - Parallel-runner wall-clock baseline -----------===//
//
// Records the wall-clock trajectory of the experiment harness itself: the
// leakage Q/V enumeration and a Fig. 7-style batch of login sessions, each
// executed serially and fanned out over the worker pool, with the results
// cross-checked for bit-identical equality. The JSON report (--json) is the
// BENCH_harness.json baseline; it includes hardware_concurrency so that a
// 1-core container's "speedup" numbers read as what they are.
//
//===----------------------------------------------------------------------===//

#include "analysis/Leakage.h"
#include "apps/LoginApp.h"
#include "exp/Harness.h"
#include "exp/Scenario.h"
#include "hw/HardwareModels.h"
#include "ir/IrPrinter.h"
#include "lang/Parser.h"
#include "obs/ExecProfile.h"
#include "obs/Phase.h"
#include "sem/FullInterpreter.h"
#include "types/LabelInference.h"

#include <chrono>
#include <cstdio>
#include <thread>

using namespace zam;

namespace {

/// Wall-clock phase breakdown of the whole baseline, printed at the end.
/// Wall-clock never enters the report's deterministic members; the
/// trailing "wall" and "phases" sections carry the timings instead.
PhaseProfiler Phases;

/// Milliseconds of wall-clock spent in \p Fn, also accumulated into the
/// phase profiler under \p Phase.
template <typename Fn> double timeMs(const char *Phase, Fn &&Fn_) {
  auto Start = std::chrono::steady_clock::now();
  Fn_();
  auto End = std::chrono::steady_clock::now();
  double Ms = std::chrono::duration<double, std::milli>(End - Start).count();
  Phases.add(Phase, Ms);
  return Ms;
}

LeakageResult measureOnce(const Program &P, const SecurityLattice &Lat,
                          unsigned Threads) {
  auto Env = createMachineEnv(HwKind::Partitioned, Lat);
  LeakageSpec Spec;
  Spec.SourceLevels = LabelSet(Lat, {Lat.top()});
  Spec.Adversary = Lat.bottom();
  constexpr unsigned NumSecrets = 4096;
  for (unsigned I = 0; I != NumSecrets; ++I)
    Spec.Variations.push_back(
        SecretAssignment{{{"h", static_cast<int64_t>(1 + 61 * I)}}, {}});
  return measureLeakage(P, *Env, Spec, InterpreterOptions(), Threads);
}

bool sameLeakage(const LeakageResult &A, const LeakageResult &B) {
  return A.DistinctObservations == B.DistinctObservations &&
         A.QBits == B.QBits && A.ShannonBits == B.ShannonBits &&
         A.DistinctTimingVectors == B.DistinctTimingVectors &&
         A.VBits == B.VBits && A.TheoremTwoHolds == B.TheoremTwoHolds &&
         A.MitigatesLowDeterministic == B.MitigatesLowDeterministic &&
         A.MaxFinalTime == B.MaxFinalTime &&
         A.RelevantMitigates == B.RelevantMitigates &&
         A.ClosedFormBoundBits == B.ClosedFormBoundBits;
}

/// A Fig. 7-style batch: six independent login sessions (3 secret tables x
/// 2 modes), 100 measured attempts each.
std::string loginBatchJson(const SecurityLattice &Lat,
                           const LoginTable (&Tables)[3], unsigned Threads) {
  const unsigned ValidCounts[3] = {10, 50, 100};
  LoginProgramConfig Plain;
  Plain.Mitigated = false;
  LoginProgramConfig Padded;
  Padded.Mitigated = true;
  Padded.Estimate1 = 3000;
  Padded.Estimate2 = 3000;

  auto Session = [&](const LoginTable &Table,
                     const LoginProgramConfig &Config) {
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    LoginSession S(Lat, Table, Config, *Env);
    std::vector<uint64_t> Times;
    for (unsigned I = 0; I != 100; ++I)
      Times.push_back(
          S.attempt("user" + std::to_string(I), "pass" + std::to_string(I))
              .Cycles);
    return Times;
  };

  Report R("login_batch");
  std::vector<SeriesSpec> Specs;
  for (unsigned I = 0; I != 3; ++I)
    Specs.push_back({"unmit/" + std::to_string(ValidCounts[I]),
                     [&, I] { return Session(Tables[I], Plain); }});
  for (unsigned I = 0; I != 3; ++I)
    Specs.push_back({"mit/" + std::to_string(ValidCounts[I]),
                     [&, I] { return Session(Tables[I], Padded); }});
  runSeriesInto(R, Specs, ParallelRunner(Threads));
  return R.toJson().dump();
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Harness = parseHarnessArgs(Argc, Argv);
  if (!Harness.Ok)
    return 2;
  // The fan-out width to compare against serial: --threads, else 8 (the
  // acceptance configuration), regardless of the host's core count.
  const unsigned Wide = Harness.Threads ? Harness.Threads : 8;
  const unsigned Cores = std::thread::hardware_concurrency();

  TwoPointLattice Lat;
  DiagnosticEngine Diags;
  std::optional<Program> P =
      parseProgram("var h : H;\nvar l : L;\n"
                   "mitigate (64, H) { sleep(h) @[H,H] };\n"
                   "l := 1",
                   Lat, Diags);
  inferTimingLabels(*P);

  std::printf("host: hardware_concurrency=%u, comparing 1 vs %u threads\n\n",
              Cores, Wide);

  // Leakage enumeration: 4096 secret variations per measurement.
  LeakageResult L1, LN;
  double LeakMs1 =
      timeMs("leakage/1thread", [&] { L1 = measureOnce(*P, Lat, 1); });
  double LeakMsN =
      timeMs("leakage/wide", [&] { LN = measureOnce(*P, Lat, Wide); });
  bool LeakSame = sameLeakage(L1, LN);
  std::printf("leakage enumeration (4096 runs): %.1f ms at 1 thread, "
              "%.1f ms at %u threads (speedup %.2fx), identical: %s\n",
              LeakMs1, LeakMsN, Wide, LeakMs1 / LeakMsN,
              LeakSame ? "YES" : "NO");

  // Login batch: six independent sessions of 100 attempts.
  Rng TableRng(2254078);
  LoginTable Tables[3];
  const unsigned ValidCounts[3] = {10, 50, 100};
  for (unsigned I = 0; I != 3; ++I)
    Tables[I] = makeLoginTable(100, ValidCounts[I], TableRng);

  std::string Batch1, BatchN;
  double LoginMs1 =
      timeMs("login/1thread", [&] { Batch1 = loginBatchJson(Lat, Tables, 1); });
  double LoginMsN =
      timeMs("login/wide", [&] { BatchN = loginBatchJson(Lat, Tables, Wide); });
  bool LoginSame = Batch1 == BatchN;
  std::printf("login batch (6 sessions x 100 attempts): %.1f ms at 1 "
              "thread, %.1f ms at %u threads (speedup %.2fx), "
              "bit-identical JSON: %s\n",
              LoginMs1, LoginMsN, Wide, LoginMs1 / LoginMsN,
              LoginSame ? "YES" : "NO");

  // Interpreter throughput: many serial full-semantics runs of a
  // loop-heavy probe (~400 evaluation steps per run, so per-run setup is
  // amortized and the engine's step rate dominates) — the engine-speed
  // floor under every harness number above. interp_wall_ms_seed is the
  // same measurement taken at the pre-IR tree-walking engines on the
  // acceptance container.
  std::optional<Program> InterpP = parseProgram(
      "var h : H;\nvar l : L;\nvar a : L[16];\nvar i : L;\n"
      "i := 0;\n"
      "while i < 128 do { a[i] := a[i + 7] + i; i := i + 1 };\n"
      "mitigate (64, H) { sleep(h) @[H,H] };\n"
      "l := i",
      Lat, Diags);
  inferTimingLabels(*InterpP);
  constexpr double SeedInterpWallMs = 118.2;
  // The committed PR 5 BENCH_harness.json measurement of this same loop —
  // the baseline the LIR tier's speedup is gated against in CI.
  constexpr double Pr5InterpWallMs = 117.84163;
  constexpr unsigned InterpReps = 2000;
  // The execution observatory rides the measured loop: its per-dispatch
  // counters are part of the engine cost being benchmarked (the committed
  // baseline was recorded the same way), and its exec.* profile is the
  // dispatch mix the native-backend work targets.
  ExecProfile InterpProf;
  double InterpMs = timeMs("interp/serial", [&] {
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    InterpreterOptions IOpts;
    IOpts.Probe = &InterpProf;
    for (unsigned I = 0; I != InterpReps; ++I)
      runFull(
          *InterpP, *Env,
          [&](Memory &M) { M.store("h", static_cast<int64_t>(I % 97)); },
          IOpts);
  });
  std::printf("interpreter throughput: %u serial runs in %.1f ms (seed"
              " engines: %.1f ms, speedup %.2fx; IR tier at PR 5: %.1f ms,"
              " speedup %.2fx)\n",
              InterpReps, InterpMs, SeedInterpWallMs,
              SeedInterpWallMs / InterpMs, Pr5InterpWallMs,
              Pr5InterpWallMs / InterpMs);
  std::string ProfErr;
  if (!InterpProf.selfCheck(ProfErr)) {
    std::fprintf(stderr, "error: %s\n", ProfErr.c_str());
    return 2;
  }
  std::vector<ExecProfile::DigramRank> Digrams = InterpProf.rankedDigrams();
  std::printf("engine observatory: %llu dispatches (%llu in fused pairs)",
              static_cast<unsigned long long>(InterpProf.dispatches()),
              static_cast<unsigned long long>(2 *
                                              InterpProf.fusedDispatches()));
  if (!Digrams.empty())
    std::printf(", hottest digram %s;%s (%llu pairs)",
                irOpName(Digrams.front().A), irOpName(Digrams.front().B),
                static_cast<unsigned long long>(Digrams.front().Count));
  std::printf("; %.1f dispatches/us sampled\n",
              InterpProf.wall().dispatchesPerUs());

  Report R("harness_baseline");
  R.setScalar("hardware_concurrency", Cores);
  R.setScalar("threads_compared", Wide);
  R.setScalar("leakage_runs", 4096);
  R.setScalar("leakage_q_bits", L1.QBits);
  R.setScalar("leakage_v_bits", L1.VBits);
  R.setVerdict("leakage_identical", LeakSame);
  R.setVerdict("login_json_bit_identical", LoginSame);
  // Wall-clock trajectory: elapsed times and speedups vary per host and
  // per run, so they ride in the report's trailing "wall"/"phases"
  // sections, outside the deterministic projection that byte-stability
  // audits (and zamtrace diff) look at.
  R.setWallScalar("leakage_ms_1thread", LeakMs1);
  R.setWallScalar("leakage_ms_wide", LeakMsN);
  R.setWallScalar("leakage_speedup", LeakMs1 / LeakMsN);
  R.setWallScalar("login_ms_1thread", LoginMs1);
  R.setWallScalar("login_ms_wide", LoginMsN);
  R.setWallScalar("login_speedup", LoginMs1 / LoginMsN);
  R.setWallScalar("interp_runs", InterpReps);
  R.setWallScalar("interp_wall_ms", InterpMs);
  R.setWallScalar("interp_wall_ms_seed", SeedInterpWallMs);
  R.setWallScalar("interp_speedup_vs_seed", SeedInterpWallMs / InterpMs);
  R.setWallScalar("interp_wall_ms_pr5", Pr5InterpWallMs);
  R.setWallScalar("interp_speedup_vs_pr5", Pr5InterpWallMs / InterpMs);
  // The deterministic dispatch profile of the interp loop rides the
  // "metrics" object (exec.*); the epoch-sampled host throughput joins
  // the other wall numbers as wall.exec.* (outside the deterministic
  // projection, like every wall figure).
  InterpProf.exportMetrics(R.metrics());
  InterpProf.exportFusionMetrics(R.metrics());
  R.setWallScalar("exec.sample_epochs",
                  static_cast<double>(InterpProf.wall().Epochs));
  R.setWallScalar("exec.sampled_dispatches",
                  static_cast<double>(InterpProf.wall().SampledDispatches));
  R.setWallScalar("exec.elapsed_ms",
                  static_cast<double>(InterpProf.wall().ElapsedNs) / 1e6);
  R.setWallScalar("exec.dispatch_per_us",
                  InterpProf.wall().dispatchesPerUs());
  R.setPhases(Phases.toJson());

  std::printf("\n-- phases (wall clock) --\n%s", Phases.render().c_str());
  std::printf("\n%s", R.renderSummary().c_str());
  if (!emitReportJson(R, Harness))
    return 2;
  return (LeakSame && LoginSame) ? 0 : 1;
}
