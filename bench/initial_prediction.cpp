//===- initial_prediction.cpp - Ablation: choosing the initial estimate ------===//
//
// Sec. 8.2: "With the doubling policy, the slowdown of mitigation is at most
// twice the worst-case time. To improve performance, we can sample the
// running time of mitigated commands, setting the initial prediction to be a
// little higher than the average" — the paper uses 110% of the sampled time.
//
// This ablation sweeps the initial prediction of the login mitigates from
// far too small (1 cycle) to oversized (4x) and reports steady-state attempt
// latency and misprediction counts, quantifying the design choice.
//
//===----------------------------------------------------------------------===//

#include "apps/LoginApp.h"
#include "hw/HardwareModels.h"

#include <cinttypes>
#include <cstdio>

using namespace zam;

namespace {
constexpr unsigned TableSize = 100;
constexpr unsigned NumValid = 50;

struct Row {
  const char *Name;
  int64_t E1, E2;
};
} // namespace

int main() {
  TwoPointLattice Lat;
  Rng R(31415);
  LoginTable Table = makeLoginTable(TableSize, NumValid, R);

  auto CalEnv = createMachineEnv(HwKind::Partitioned, Lat);
  auto [E1, E2] = calibrateLoginEstimates(Lat, Table, *CalEnv, 40, R);

  // Unmitigated baseline for overhead.
  LoginProgramConfig Plain;
  Plain.Mitigated = false;
  uint64_t BaseSum = 0;
  {
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    LoginSession S(Lat, Table, Plain, *Env);
    for (unsigned I = 0; I != TableSize; ++I)
      S.attempt("user" + std::to_string(I), "x");
    for (unsigned I = 0; I != TableSize; ++I)
      BaseSum += S.attempt("user" + std::to_string(I), "x").Cycles;
  }
  double Base = static_cast<double>(BaseSum) / TableSize;

  const Row Rows[] = {
      {"1 cycle (worst case)", 1, 1},
      {"50% of calibrated", E1 / 2, E2 / 2},
      {"calibrated (110% max)", E1, E2},
      {"200% of calibrated", 2 * E1, 2 * E2},
      {"400% of calibrated", 4 * E1, 4 * E2},
  };

  std::printf("=== initial-prediction ablation (login, partitioned hw) ===\n");
  std::printf("unmitigated steady-state average: %.0f cycles\n\n", Base);
  std::printf("  %-24s %12s %12s %10s\n", "initial prediction", "avg cycles",
              "overhead", "misses");
  for (const Row &Cfg : Rows) {
    LoginProgramConfig Config;
    Config.Mitigated = true;
    Config.Estimate1 = Cfg.E1;
    Config.Estimate2 = Cfg.E2;
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    LoginSession S(Lat, Table, Config, *Env);
    // Warm the machine, then measure a fresh schedule in steady state.
    for (unsigned I = 0; I != TableSize; ++I)
      S.attempt("user" + std::to_string(I), "x");
    S.resetMitigation();
    uint64_t Sum = 0;
    for (unsigned I = 0; I != TableSize; ++I)
      Sum += S.attempt("user" + std::to_string(I), "x").Cycles;
    double Avg = static_cast<double>(Sum) / TableSize;
    unsigned Misses = S.mitigationState().misses(Lat.top());
    std::printf("  %-24s %12.0f %11.2fx %10u\n", Cfg.Name, Avg, Avg / Base,
                Misses);
  }

  std::printf("\n=== shape checks ===\n");
  std::printf("the doubling policy bounds the worst case at ~2x the body\n"
              "time even from a 1-cycle estimate; the 110%%-calibrated\n"
              "estimate minimizes overhead (paper: ~10%% on this workload).\n");
  return 0;
}
