//===- fig7_login_timing.cpp - Reproduces Fig. 7 ----------------------------===//
//
// Fig. 7: "Login time with various secrets". 100 login attempts
// (user0..user99) against a credential table whose secret contents vary in
// the number of valid usernames (10, 50, 100). Upper plot: unmitigated —
// the three curves separate and valid attempts are distinguishable from
// invalid ones. Lower plot: mitigated — all curves coincide and carry no
// information about the secret table.
//
// Runs on the zam_exp harness: the six sessions (3 secrets x 2 modes) are
// independent deterministic series and fan out over the worker pool;
// statistics, the attempt table and the optional --json report all come
// from exp::Report.
//
//===----------------------------------------------------------------------===//

#include "apps/LoginApp.h"
#include "exp/Harness.h"
#include "exp/Scenario.h"
#include "hw/HardwareModels.h"
#include "obs/CostLedger.h"
#include "obs/LeakAudit.h"
#include "obs/Telemetry.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

using namespace zam;

namespace {

constexpr unsigned Attempts = 100;
constexpr unsigned TableSize = 100;

std::vector<uint64_t> runSession(const SecurityLattice &Lat,
                                 const LoginTable &Table,
                                 const LoginProgramConfig &Config) {

  auto Env = createMachineEnv(HwKind::Partitioned, Lat);
  // A server session that has been up for a while: warm the machine with a
  // handful of requests before the measured sequence.
  LoginSession Session(Lat, Table, Config, *Env);
  for (unsigned I = 0; I != 8; ++I)
    Session.attempt("warmup" + std::to_string(I), "pw");
  if (!Table.ValidUsernames.empty())
    Session.attempt(Table.ValidUsernames[0], "pw");
  Session.resetMitigation(); // Fresh schedule for the measured run.

  std::vector<uint64_t> Times;
  for (unsigned I = 0; I != Attempts; ++I)
    Times.push_back(
        Session.attempt("user" + std::to_string(I), "pass" + std::to_string(I))
            .Cycles);
  return Times;
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Harness = parseHarnessArgs(Argc, Argv);
  if (!Harness.Ok)
    return 2;
  ParallelRunner Runner(Harness.Threads);

  TwoPointLattice Lat;
  Rng TableRng(2254078);

  const unsigned ValidCounts[3] = {10, 50, 100};
  LoginTable Tables[3];
  for (unsigned I = 0; I != 3; ++I)
    Tables[I] = makeLoginTable(TableSize, ValidCounts[I], TableRng);

  // Sec. 8.2 calibration, done once with "randomly generated secrets": the
  // initial predictions are fixed before the secret table is chosen, so the
  // prediction schedule itself cannot encode the secret. We take the
  // worst case over the candidate tables (110% of the max sampled body).
  // The three calibrations are independent (seeded Rng each) and fan out.
  auto Estimates =
      Runner.map(3, [&](size_t I) -> std::pair<int64_t, int64_t> {
        Rng CalibRng(7 + I);
        auto Env = createMachineEnv(HwKind::Partitioned, Lat);
        return calibrateLoginEstimates(Lat, Tables[I], *Env, 30, CalibRng);
      });
  int64_t E1 = 1, E2 = 1;
  for (const auto &[A, B] : Estimates) {
    E1 = std::max(E1, A);
    E2 = std::max(E2, B);
  }
  std::printf("calibrated initial predictions: lookup=%" PRId64
              " cycles, check=%" PRId64 " cycles\n\n",
              E1, E2);

  LoginProgramConfig Plain;
  Plain.Mitigated = false;
  LoginProgramConfig Padded;
  Padded.Mitigated = true;
  Padded.Estimate1 = E1;
  Padded.Estimate2 = E2;

  Report R("fig7_login_timing");
  std::vector<SeriesSpec> Specs;
  for (unsigned I = 0; I != 3; ++I)
    Specs.push_back({"unmit/" + std::to_string(ValidCounts[I]),
                     [&, I] { return runSession(Lat, Tables[I], Plain); }});
  for (unsigned I = 0; I != 3; ++I)
    Specs.push_back({"mit/" + std::to_string(ValidCounts[I]),
                     [&, I] { return runSession(Lat, Tables[I], Padded); }});
  runSeriesInto(R, Specs, Runner);
  R.setIndex("attempt", {});
  R.setScalar("calibrated_lookup_estimate", static_cast<double>(E1));
  R.setScalar("calibrated_check_estimate", static_cast<double>(E2));

  // Telemetry of record: one mitigated attempt against the first table on a
  // fresh environment — deterministic, so it is safe in byte-stable JSON.
  // The leakage accountant prices its mitigate windows into the leak.*
  // metrics, the source profiler attributes the run's costs into prof.*
  // (hot lines plus the per-mitigate-site sub-accounts), and --trace-out
  // exports the run for offline zamtrace checks.
  {
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    Program P = buildLoginProgram(Lat, Tables[0], Padded);
    CostLedger Ledger;
    InterpreterOptions IOpts;
    IOpts.Provenance = &Ledger;
    RunResult Rep = runFull(
        P, *Env, [&](Memory &M) { setLoginRequest(M, "user0", "pass0"); },
        IOpts);
    collectRunMetrics(R.metrics(), Rep.T, Rep.Hw, Lat);
    LeakAudit Audit(Lat);
    Audit.ingest(Rep.T);
    Audit.exportMetrics(R.metrics());
    Ledger.applyLeakage(Audit);
    Ledger.exportMetrics(R.metrics());
    if (!emitBenchTrace(Rep.T, Lat, Harness))
      return 2;
  }

  // Interpreter throughput of record: repeated mitigated attempts against
  // the first table, single-threaded, no provenance — the raw engine speed
  // the timing-IR refactor targets. Wall-clock only (the "wall" JSON
  // section), so the deterministic metrics stay byte-stable across
  // machines. interp_wall_ms_seed is the same measurement taken at the
  // pre-IR tree-walking engines on the acceptance container.
  {
    constexpr double SeedInterpWallMs = 12.1;
    constexpr unsigned Reps = 200;
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    Program P = buildLoginProgram(Lat, Tables[0], Padded);
    auto Start = std::chrono::steady_clock::now();
    for (unsigned I = 0; I != Reps; ++I)
      runFull(P, *Env, [&](Memory &M) {
        setLoginRequest(M, "user" + std::to_string(I % Attempts),
                        "pass" + std::to_string(I % Attempts));
      });
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
    R.setWallScalar("interp_runs", Reps);
    R.setWallScalar("interp_wall_ms", Ms);
    R.setWallScalar("interp_wall_ms_seed", SeedInterpWallMs);
    R.setWallScalar("interp_speedup_vs_seed", SeedInterpWallMs / Ms);
    std::printf("\ninterpreter throughput: %u mitigated attempts in %.1f ms"
                " (seed engines: %.1f ms, speedup %.2fx)\n",
                Reps, Ms, SeedInterpWallMs, SeedInterpWallMs / Ms);
  }

  std::printf("=== Fig. 7: login time per attempt (cycles; secrets = #valid"
              " usernames) ===\n");
  std::printf("%s", R.renderTable(/*Stride=*/5).c_str());

  std::printf("\n=== shape checks (paper's findings) ===\n");
  std::printf("unmitigated averages: %.0f / %.0f / %.0f cycles"
              " (curves separate by secret)\n",
              R.seriesAverage("unmit/10"), R.seriesAverage("unmit/50"),
              R.seriesAverage("unmit/100"));

  // Valid vs invalid distinguishable in the unmitigated 10-valid run.
  const Series &Unmit10 = *R.find("unmit/10");
  std::vector<double> Valid(Unmit10.Values.begin(),
                            Unmit10.Values.begin() + 10);
  std::vector<double> Invalid(Unmit10.Values.begin() + 10,
                              Unmit10.Values.end());
  bool Separates = average(Valid) > 1.2 * average(Invalid);
  std::printf("unmitigated (10 valid): avg valid %.0f vs avg invalid %.0f"
              " -> adversary separates them: %s\n",
              average(Valid), average(Invalid), Separates ? "YES" : "no");

  // Mitigated curves coincide: same series of times across secrets.
  bool Coincide =
      R.coincide("mit/10", "mit/50") && R.coincide("mit/50", "mit/100");
  std::printf("mitigated curves coincide across secrets: %s\n",
              Coincide ? "YES (execution time does not depend on secrets)"
                       : "no — INVESTIGATE");

  size_t Distinct = R.find("mit/10")->stats().Distinct;
  std::printf("distinct mitigated attempt times within a session: %zu\n",
              Distinct);

  R.setVerdict("valid_invalid_separate_unmitigated", Separates);
  R.setVerdict("mitigated_curves_coincide", Coincide);
  R.setScalar("distinct_mitigated_times", static_cast<double>(Distinct));
  if (!emitReportJson(R, Harness))
    return 2;
  return Coincide ? 0 : 1;
}
