//===- fig7_login_timing.cpp - Reproduces Fig. 7 ----------------------------===//
//
// Fig. 7: "Login time with various secrets". 100 login attempts
// (user0..user99) against a credential table whose secret contents vary in
// the number of valid usernames (10, 50, 100). Upper plot: unmitigated —
// the three curves separate and valid attempts are distinguishable from
// invalid ones. Lower plot: mitigated — all curves coincide and carry no
// information about the secret table.
//
// Output: one row per attempt with the six series (3 secrets x 2 modes),
// then the Fig. 7 verdicts.
//
//===----------------------------------------------------------------------===//

#include "apps/LoginApp.h"
#include "hw/HardwareModels.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <vector>

using namespace zam;

namespace {

constexpr unsigned Attempts = 100;
constexpr unsigned TableSize = 100;

std::vector<uint64_t> runSession(const SecurityLattice &Lat,
                                 const LoginTable &Table,
                                 const LoginProgramConfig &Config) {

  auto Env = createMachineEnv(HwKind::Partitioned, Lat);
  // A server session that has been up for a while: warm the machine with a
  // handful of requests before the measured sequence.
  LoginSession Session(Lat, Table, Config, *Env);
  for (unsigned I = 0; I != 8; ++I)
    Session.attempt("warmup" + std::to_string(I), "pw");
  if (!Table.ValidUsernames.empty())
    Session.attempt(Table.ValidUsernames[0], "pw");
  Session.resetMitigation(); // Fresh schedule for the measured run.

  std::vector<uint64_t> Times;
  for (unsigned I = 0; I != Attempts; ++I)
    Times.push_back(
        Session.attempt("user" + std::to_string(I), "pass" + std::to_string(I))
            .Cycles);
  return Times;
}

double average(const std::vector<uint64_t> &V) {
  uint64_t Sum = 0;
  for (uint64_t X : V)
    Sum += X;
  return V.empty() ? 0.0 : static_cast<double>(Sum) / V.size();
}

} // namespace

int main() {
  TwoPointLattice Lat;
  Rng TableRng(2254078);

  const unsigned ValidCounts[3] = {10, 50, 100};
  LoginTable Tables[3];
  for (unsigned I = 0; I != 3; ++I)
    Tables[I] = makeLoginTable(TableSize, ValidCounts[I], TableRng);

  // Sec. 8.2 calibration, done once with "randomly generated secrets": the
  // initial predictions are fixed before the secret table is chosen, so the
  // prediction schedule itself cannot encode the secret. We take the
  // worst case over the candidate tables (110% of the max sampled body).
  int64_t E1 = 1, E2 = 1;
  for (unsigned I = 0; I != 3; ++I) {
    Rng CalibRng(7 + I);
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    auto [A, B] = calibrateLoginEstimates(Lat, Tables[I], *Env, 30, CalibRng);
    E1 = std::max(E1, A);
    E2 = std::max(E2, B);
  }
  std::printf("calibrated initial predictions: lookup=%" PRId64
              " cycles, check=%" PRId64 " cycles\n\n",
              E1, E2);

  LoginProgramConfig Plain;
  Plain.Mitigated = false;
  LoginProgramConfig Padded;
  Padded.Mitigated = true;
  Padded.Estimate1 = E1;
  Padded.Estimate2 = E2;

  std::vector<uint64_t> Unmitigated[3], Mitigated[3];
  for (unsigned I = 0; I != 3; ++I) {
    Unmitigated[I] = runSession(Lat, Tables[I], Plain);
    Mitigated[I] = runSession(Lat, Tables[I], Padded);
  }

  std::printf("=== Fig. 7: login time per attempt (cycles) ===\n");
  std::printf("%-8s %-27s %-27s\n", "", "unmitigated (secrets: #valid)",
              "mitigated (secrets: #valid)");
  std::printf("%-8s %8s %8s %8s  %8s %8s %8s\n", "attempt", "10", "50", "100",
              "10", "50", "100");
  for (unsigned A = 0; A < Attempts; A += 5)
    std::printf("%-8u %8" PRIu64 " %8" PRIu64 " %8" PRIu64 "  %8" PRIu64
                " %8" PRIu64 " %8" PRIu64 "\n",
                A, Unmitigated[0][A], Unmitigated[1][A], Unmitigated[2][A],
                Mitigated[0][A], Mitigated[1][A], Mitigated[2][A]);

  std::printf("\n=== shape checks (paper's findings) ===\n");
  std::printf("unmitigated averages: %.0f / %.0f / %.0f cycles"
              " (curves separate by secret)\n",
              average(Unmitigated[0]), average(Unmitigated[1]),
              average(Unmitigated[2]));

  // Valid vs invalid distinguishable in the unmitigated 10-valid run.
  std::vector<uint64_t> Valid(Unmitigated[0].begin(),
                              Unmitigated[0].begin() + 10);
  std::vector<uint64_t> Invalid(Unmitigated[0].begin() + 10,
                                Unmitigated[0].end());
  std::printf("unmitigated (10 valid): avg valid %.0f vs avg invalid %.0f"
              " -> adversary separates them: %s\n",
              average(Valid), average(Invalid),
              average(Valid) > 1.2 * average(Invalid) ? "YES" : "no");

  // Mitigated curves coincide: same multiset of times across secrets.
  bool Coincide = Mitigated[0] == Mitigated[1] && Mitigated[1] == Mitigated[2];
  std::printf("mitigated curves coincide across secrets: %s\n",
              Coincide ? "YES (execution time does not depend on secrets)"
                       : "no — INVESTIGATE");

  std::set<uint64_t> Distinct(Mitigated[0].begin(), Mitigated[0].end());
  std::printf("distinct mitigated attempt times within a session: %zu\n",
              Distinct.size());
  return Coincide ? 0 : 1;
}
