//===- hw_ablation.cpp - Ablation: the cost of each secure design ------------===//
//
// Sec. 4 sketches two realizations of the hardware contract: the no-fill
// mode on stock hardware (Sec. 4.2) and the statically partitioned caches
// (Sec. 4.3), which the paper calls "more efficient". This ablation runs
// the login and RSA workloads on all three designs and quantifies the
// trade: no-fill makes every high-context access a full miss; partitioning
// halves capacity but keeps high contexts cached.
//
// Runs on the zam_exp harness: the six (design x workload) measurements
// are independent and fan out over the worker pool.
//
//===----------------------------------------------------------------------===//

#include "apps/LoginApp.h"
#include "apps/RsaApp.h"
#include "crypto/ToyRsa.h"
#include "exp/Harness.h"
#include "exp/Scenario.h"
#include "hw/HardwareModels.h"
#include "obs/LeakAudit.h"
#include "obs/Telemetry.h"

#include <cinttypes>
#include <cstdio>

using namespace zam;

namespace {

std::vector<uint64_t> loginTimes(const SecurityLattice &Lat,
                                 const LoginTable &Table, HwKind Hw) {
  LoginProgramConfig Config;
  Config.Mitigated = false; // Isolate the hardware cost.
  auto Env = createMachineEnv(Hw, Lat);
  LoginSession S(Lat, Table, Config, *Env);
  for (unsigned I = 0; I != 100; ++I)
    S.attempt("user" + std::to_string(I), "x");
  std::vector<uint64_t> Times;
  for (unsigned I = 0; I != 100; ++I)
    Times.push_back(S.attempt("user" + std::to_string(I), "x").Cycles);
  return Times;
}

std::vector<uint64_t> rsaTime(const SecurityLattice &Lat, const RsaKey &Key,
                              HwKind Hw) {
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::Unmitigated;
  Config.MaxBlocks = 2;
  auto Env = createMachineEnv(Hw, Lat);
  RsaSession S(Lat, Key, Config, *Env);
  std::vector<uint64_t> Msg = {rsaEncryptBlock(Key, 123456),
                               rsaEncryptBlock(Key, 654321)};
  S.decrypt(Msg); // Warm-up.
  return {S.decrypt(Msg).Cycles};
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Harness = parseHarnessArgs(Argc, Argv);
  if (!Harness.Ok)
    return 2;
  ParallelRunner Runner(Harness.Threads);

  TwoPointLattice Lat;
  Rng R(161803);
  LoginTable Table = makeLoginTable(100, 50, R);
  RsaKey Key = generateRsaKey(R, 53);

  const HwKind Kinds[] = {HwKind::NoPartition, HwKind::Partitioned,
                          HwKind::NoFill};

  Report Rep("hw_ablation");
  std::vector<SeriesSpec> Specs;
  for (HwKind Kind : Kinds)
    Specs.push_back({std::string("login/") + hwKindName(Kind),
                     [&, Kind] { return loginTimes(Lat, Table, Kind); }});
  for (HwKind Kind : Kinds)
    Specs.push_back({std::string("rsa/") + hwKindName(Kind),
                     [&, Kind] { return rsaTime(Lat, Key, Kind); }});
  runSeriesInto(Rep, Specs, Runner);

  std::printf("=== hardware ablation: workload time by design (cycles,"
              " unmitigated) ===\n\n");
  std::printf("  %-12s %14s %14s\n", "design", "login avg", "rsa 2-block");

  double LoginBase = 0, RsaBase = 0;
  for (HwKind Kind : Kinds) {
    double Login =
        Rep.seriesAverage(std::string("login/") + hwKindName(Kind));
    double Rsa = Rep.seriesAverage(std::string("rsa/") + hwKindName(Kind));
    if (Kind == HwKind::NoPartition) {
      LoginBase = Login;
      RsaBase = Rsa;
    }
    std::printf("  %-12s %14.0f %14.0f   (%.2fx / %.2fx)\n",
                hwKindName(Kind), Login, Rsa, Login / LoginBase,
                Rsa / RsaBase);
    Rep.setScalar(std::string("login_overhead_") + hwKindName(Kind),
                  Login / LoginBase);
    Rep.setScalar(std::string("rsa_overhead_") + hwKindName(Kind),
                  Rsa / RsaBase);
  }

  // Telemetry of record: one login attempt per design on fresh
  // environments, prefixed by design name — the hit/miss/line-fill split
  // is precisely what differs between the three realizations.
  for (HwKind Kind : Kinds) {
    LoginProgramConfig Config;
    Config.Mitigated = false;
    auto Env = createMachineEnv(Kind, Lat);
    Program P = buildLoginProgram(Lat, Table, Config);
    RunResult RepRun = runFull(P, *Env, [&](Memory &M) {
      setLoginRequest(M, "user0", "x");
    });
    const std::string Prefix = std::string(hwKindName(Kind)) + ".";
    collectRunMetrics(Rep.metrics(), RepRun.T, RepRun.Hw, Lat, Prefix);
    LeakAudit Audit(Lat);
    Audit.ingest(RepRun.T);
    Audit.exportMetrics(Rep.metrics(), Prefix);
  }

  std::printf("\n=== shape checks ===\n");
  std::printf("nopar is fastest but violates the contract (insecure);\n"
              "partitioned pays a modest capacity penalty (paper: ~11%%);\n"
              "no-fill pays most in high-context-heavy code (every \n"
              "high-context access bypasses the cache).\n");
  if (!emitReportJson(Rep, Harness))
    return 2;
  return 0;
}
