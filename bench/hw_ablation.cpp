//===- hw_ablation.cpp - Ablation: the cost of each secure design ------------===//
//
// Sec. 4 sketches two realizations of the hardware contract: the no-fill
// mode on stock hardware (Sec. 4.2) and the statically partitioned caches
// (Sec. 4.3), which the paper calls "more efficient". This ablation runs
// the login and RSA workloads on all three designs and quantifies the
// trade: no-fill makes every high-context access a full miss; partitioning
// halves capacity but keeps high contexts cached.
//
//===----------------------------------------------------------------------===//

#include "apps/LoginApp.h"
#include "apps/RsaApp.h"
#include "crypto/ToyRsa.h"
#include "hw/HardwareModels.h"

#include <cinttypes>
#include <cstdio>

using namespace zam;

namespace {

double loginAverage(const SecurityLattice &Lat, const LoginTable &Table,
                    HwKind Hw) {
  LoginProgramConfig Config;
  Config.Mitigated = false; // Isolate the hardware cost.
  auto Env = createMachineEnv(Hw, Lat);
  LoginSession S(Lat, Table, Config, *Env);
  for (unsigned I = 0; I != 100; ++I)
    S.attempt("user" + std::to_string(I), "x");
  uint64_t Sum = 0;
  for (unsigned I = 0; I != 100; ++I)
    Sum += S.attempt("user" + std::to_string(I), "x").Cycles;
  return Sum / 100.0;
}

double rsaTime(const SecurityLattice &Lat, const RsaKey &Key, HwKind Hw) {
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::Unmitigated;
  Config.MaxBlocks = 2;
  auto Env = createMachineEnv(Hw, Lat);
  RsaSession S(Lat, Key, Config, *Env);
  std::vector<uint64_t> Msg = {rsaEncryptBlock(Key, 123456),
                               rsaEncryptBlock(Key, 654321)};
  S.decrypt(Msg); // Warm-up.
  return static_cast<double>(S.decrypt(Msg).Cycles);
}

} // namespace

int main() {
  TwoPointLattice Lat;
  Rng R(161803);
  LoginTable Table = makeLoginTable(100, 50, R);
  RsaKey Key = generateRsaKey(R, 53);

  std::printf("=== hardware ablation: workload time by design (cycles,"
              " unmitigated) ===\n\n");
  std::printf("  %-12s %14s %14s\n", "design", "login avg", "rsa 2-block");

  double LoginBase = 0, RsaBase = 0;
  for (HwKind Kind :
       {HwKind::NoPartition, HwKind::Partitioned, HwKind::NoFill}) {
    double Login = loginAverage(Lat, Table, Kind);
    double Rsa = rsaTime(Lat, Key, Kind);
    if (Kind == HwKind::NoPartition) {
      LoginBase = Login;
      RsaBase = Rsa;
    }
    std::printf("  %-12s %14.0f %14.0f   (%.2fx / %.2fx)\n",
                hwKindName(Kind), Login, Rsa, Login / LoginBase,
                Rsa / RsaBase);
  }

  std::printf("\n=== shape checks ===\n");
  std::printf("nopar is fastest but violates the contract (insecure);\n"
              "partitioned pays a modest capacity penalty (paper: ~11%%);\n"
              "no-fill pays most in high-context-heavy code (every \n"
              "high-context access bypasses the cache).\n");
  return 0;
}
