//===- leakage_bound.cpp - The Sec. 7 polylogarithmic leakage bound ----------===//
//
// Validates the quantitative claim of Sec. 7: leakage through mitigated
// timing is at most |LeA↑| · log2(K+1) · (1 + log2 T) bits — polylogarithmic
// in elapsed time — while unmitigated timing leaks linearly many bits.
//
// The harness sweeps the secret range of a mitigated sleep(h) (so T grows),
// measuring the actual number of distinguishable adversary observations (Q)
// and timing vectors (|V|) against the closed-form bound, and compares with
// the unmitigated program, where Q tracks the number of secrets exactly.
//
// Runs on the zam_exp harness: each measureLeakage call fans its secret
// variations out over the worker pool (--threads / ZAM_THREADS), and the
// sweep is recorded via exp::Report (--json).
//
//===----------------------------------------------------------------------===//

#include "analysis/Leakage.h"
#include "exp/Harness.h"
#include "hw/HardwareModels.h"
#include "lang/Parser.h"
#include "obs/LeakAudit.h"
#include "obs/Telemetry.h"
#include "types/LabelInference.h"
#include "types/TypeChecker.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace zam;

namespace {

Program buildProgram(const SecurityLattice &Lat, bool Mitigated) {
  const char *MitigatedSrc = "var h : H;\nvar l : L;\n"
                             "mitigate (64, H) { sleep(h) @[H,H] };\n"
                             "l := 1";
  const char *PlainSrc = "var h : H;\nvar l : L;\nsleep(h); l := 1";
  DiagnosticEngine Diags;
  std::optional<Program> P =
      parseProgram(Mitigated ? MitigatedSrc : PlainSrc, Lat, Diags);
  inferTimingLabels(*P);
  return std::move(*P);
}

LeakageResult measure(const Program &P, const SecurityLattice &Lat,
                      int64_t MaxSecret, unsigned NumSecrets,
                      unsigned Threads) {
  auto Env =
      createMachineEnv(HwKind::Partitioned, Lat, MachineEnvConfig());
  LeakageSpec Spec;
  Spec.SourceLevels = LabelSet(Lat, {Lat.top()});
  Spec.Adversary = Lat.bottom();
  for (unsigned I = 0; I != NumSecrets; ++I)
    Spec.Variations.push_back(SecretAssignment{
        {{"h", static_cast<int64_t>(
                   (static_cast<uint64_t>(MaxSecret) * I) / NumSecrets)}},
        {}});
  return measureLeakage(P, *Env, Spec, InterpreterOptions(), Threads);
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Harness = parseHarnessArgs(Argc, Argv);
  if (!Harness.Ok)
    return 2;

  TwoPointLattice Lat;
  Program Mitigated = buildProgram(Lat, true);
  Program Plain = buildProgram(Lat, false);

  const int64_t MaxSecrets[] = {1000, 10'000, 100'000, 1'000'000,
                                10'000'000};
  std::vector<double> Index;
  std::vector<double> PlainQ, MitQ, MitV, Bound;
  bool BoundHolds = true;
  for (int64_t MaxSecret : MaxSecrets) {
    LeakageResult RPlain =
        measure(Plain, Lat, MaxSecret, 64, Harness.Threads);
    LeakageResult RMit =
        measure(Mitigated, Lat, MaxSecret, 64, Harness.Threads);
    if (RMit.VBits > RMit.ClosedFormBoundBits + 1e-9)
      BoundHolds = false;
    if (!RMit.TheoremTwoHolds)
      BoundHolds = false;
    Index.push_back(static_cast<double>(MaxSecret));
    PlainQ.push_back(RPlain.QBits);
    MitQ.push_back(RMit.QBits);
    MitV.push_back(RMit.VBits);
    Bound.push_back(RMit.ClosedFormBoundBits);
  }

  Report R("leakage_bound");
  R.setIndex("max secret", Index);
  R.addSeries("unmitigated Q bits", PlainQ);
  R.addSeries("mitigated Q bits", MitQ);
  R.addSeries("log2|V| bits", MitV);
  R.addSeries("Sec.7 bound", Bound);
  R.setVerdict("bound_holds", BoundHolds);

  // Telemetry of record: the mitigated program at the largest swept secret
  // on a fresh environment — the Miss-table snapshot records how far the
  // schedule doubled to absorb it.
  {
    auto Env = createMachineEnv(HwKind::Partitioned, Lat, MachineEnvConfig());
    RunResult Rep = runFull(Mitigated, *Env, [&](Memory &M) {
      M.store("h", MaxSecrets[std::size(MaxSecrets) - 1]);
    });
    collectRunMetrics(R.metrics(), Rep.T, Rep.Hw, Lat);
    LeakAudit Audit(Lat);
    Audit.ingest(Rep.T);
    Audit.exportMetrics(R.metrics());
  }

  std::printf("=== leakage vs elapsed time (64 secrets per row) ===\n");
  std::printf("%s", R.renderTable().c_str());

  std::printf("\n=== shape checks ===\n");
  std::printf("unmitigated leakage tracks log2(#secrets) = 6 bits per row\n");
  std::printf("mitigated leakage stays ~log2(log(T)) and under the\n"
              "|LeA^| * log2(K+1) * (1 + log2 T) bound everywhere: %s\n",
              BoundHolds ? "YES" : "no — INVESTIGATE");

  // Multilevel: the bound scales with |LeA↑|.
  TotalOrderLattice Lmh({"L", "M", "H"});
  std::printf("\n|LeA^| scaling on L⊑M⊑H (K=7, T=2^20):\n");
  for (unsigned Size = 1; Size <= 2; ++Size)
    std::printf("  |LeA^| = %u -> bound %.1f bits\n", Size,
                leakageBoundBits(Size, 7, 1 << 20));
  if (!emitReportJson(R, Harness))
    return 2;
  return BoundHolds ? 0 : 1;
}
