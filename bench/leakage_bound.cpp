//===- leakage_bound.cpp - The Sec. 7 polylogarithmic leakage bound ----------===//
//
// Validates the quantitative claim of Sec. 7: leakage through mitigated
// timing is at most |LeA↑| · log2(K+1) · (1 + log2 T) bits — polylogarithmic
// in elapsed time — while unmitigated timing leaks linearly many bits.
//
// The harness sweeps the secret range of a mitigated sleep(h) (so T grows),
// measuring the actual number of distinguishable adversary observations (Q)
// and timing vectors (|V|) against the closed-form bound, and compares with
// the unmitigated program, where Q tracks the number of secrets exactly.
//
//===----------------------------------------------------------------------===//

#include "analysis/Leakage.h"
#include "hw/HardwareModels.h"
#include "lang/Parser.h"
#include "types/LabelInference.h"
#include "types/TypeChecker.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace zam;

namespace {

Program buildProgram(const SecurityLattice &Lat, bool Mitigated) {
  const char *MitigatedSrc = "var h : H;\nvar l : L;\n"
                             "mitigate (64, H) { sleep(h) @[H,H] };\n"
                             "l := 1";
  const char *PlainSrc = "var h : H;\nvar l : L;\nsleep(h); l := 1";
  DiagnosticEngine Diags;
  std::optional<Program> P =
      parseProgram(Mitigated ? MitigatedSrc : PlainSrc, Lat, Diags);
  inferTimingLabels(*P);
  return std::move(*P);
}

LeakageResult measure(const Program &P, const SecurityLattice &Lat,
                      int64_t MaxSecret, unsigned NumSecrets) {
  auto Env =
      createMachineEnv(HwKind::Partitioned, Lat, MachineEnvConfig());
  LeakageSpec Spec;
  Spec.SourceLevels = LabelSet(Lat, {Lat.top()});
  Spec.Adversary = Lat.bottom();
  for (unsigned I = 0; I != NumSecrets; ++I)
    Spec.Variations.push_back(SecretAssignment{
        {{"h", static_cast<int64_t>(
                   (static_cast<uint64_t>(MaxSecret) * I) / NumSecrets)}},
        {}});
  return measureLeakage(P, *Env, Spec);
}

} // namespace

int main() {
  TwoPointLattice Lat;
  Program Mitigated = buildProgram(Lat, true);
  Program Plain = buildProgram(Lat, false);

  std::printf("=== leakage vs elapsed time (64 secrets per row) ===\n");
  std::printf("%-12s %18s %18s %14s %12s\n", "max secret",
              "unmitigated Q bits", "mitigated Q bits", "log2|V| bits",
              "Sec.7 bound");
  bool BoundHolds = true;
  for (int64_t MaxSecret : {1000ll, 10'000ll, 100'000ll, 1'000'000ll,
                            10'000'000ll}) {
    LeakageResult RPlain = measure(Plain, Lat, MaxSecret, 64);
    LeakageResult RMit = measure(Mitigated, Lat, MaxSecret, 64);
    if (RMit.VBits > RMit.ClosedFormBoundBits + 1e-9)
      BoundHolds = false;
    if (!RMit.TheoremTwoHolds)
      BoundHolds = false;
    std::printf("%-12" PRId64 " %18.2f %18.2f %14.2f %12.2f\n", MaxSecret,
                RPlain.QBits, RMit.QBits, RMit.VBits,
                RMit.ClosedFormBoundBits);
  }

  std::printf("\n=== shape checks ===\n");
  std::printf("unmitigated leakage tracks log2(#secrets) = 6 bits per row\n");
  std::printf("mitigated leakage stays ~log2(log(T)) and under the\n"
              "|LeA^| * log2(K+1) * (1 + log2 T) bound everywhere: %s\n",
              BoundHolds ? "YES" : "no — INVESTIGATE");

  // Multilevel: the bound scales with |LeA↑|.
  TotalOrderLattice Lmh({"L", "M", "H"});
  std::printf("\n|LeA^| scaling on L⊑M⊑H (K=7, T=2^20):\n");
  for (unsigned Size = 1; Size <= 2; ++Size)
    std::printf("  |LeA^| = %u -> bound %.1f bits\n", Size,
                leakageBoundBits(Size, 7, 1 << 20));
  return BoundHolds ? 0 : 1;
}
