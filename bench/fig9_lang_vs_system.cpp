//===- fig9_lang_vs_system.cpp - Reproduces Fig. 9 ---------------------------===//
//
// Fig. 9: "Language-level vs system-level mitigation". Decrypting messages
// of 1..10 blocks (the size is public):
//
//   - language-level mitigation (one mitigate per block) pays the padding
//     once per block, so total time grows linearly with the public size;
//   - system-level mitigation (the whole computation in one predictive
//     mitigator, as in black-box external mitigation [5]) must absorb the
//     *public* size variation into its prediction schedule, repeatedly
//     mispredicting and doubling — far slower on most sizes.
//
// The paper's finding: fine-grained language-based mitigation is faster
// because it does not mitigate timing variation due to the public number
// of blocks.
//
// Runs on the zam_exp harness: the two sessions are independent series and
// fan out over the worker pool.
//
//===----------------------------------------------------------------------===//

#include "apps/RsaApp.h"
#include "crypto/ToyRsa.h"
#include "exp/Harness.h"
#include "exp/Scenario.h"
#include "hw/HardwareModels.h"
#include "obs/LeakAudit.h"
#include "obs/Telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

using namespace zam;

namespace {
constexpr unsigned MaxBlocks = 10;
constexpr unsigned ModulusBits = 53;

/// One session decrypting the size sweep 1..10 blocks; mitigation state
/// persists across sizes, as in the paper's evaluation.
std::vector<uint64_t>
runSweep(const SecurityLattice &Lat, const RsaKey &Key,
         RsaMitigationMode Mode, int64_t Estimate,
         const std::vector<std::vector<uint64_t>> &Messages) {
  RsaProgramConfig Config;
  Config.Mode = Mode;
  Config.Estimate = Estimate;
  Config.MaxBlocks = MaxBlocks;
  auto Env = createMachineEnv(HwKind::Partitioned, Lat);
  RsaSession Session(Lat, Key, Config, *Env);
  Session.decrypt(Messages[0]); // Warm-up.
  std::vector<uint64_t> Times;
  for (const std::vector<uint64_t> &Msg : Messages)
    Times.push_back(Session.decrypt(Msg).Cycles);
  return Times;
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Harness = parseHarnessArgs(Argc, Argv);
  if (!Harness.Ok)
    return 2;
  ParallelRunner Runner(Harness.Threads);

  TwoPointLattice Lat;
  Rng KeyRng(55), MsgRng(66), CalRng(77);
  RsaKey Key = generateRsaKey(KeyRng, ModulusBits);

  // Messages of 1..10 blocks.
  std::vector<std::vector<uint64_t>> Messages;
  for (unsigned Size = 1; Size <= MaxBlocks; ++Size) {
    std::vector<uint64_t> Msg;
    for (unsigned B = 0; B != Size; ++B)
      Msg.push_back(rsaEncryptBlock(Key, MsgRng.nextBelow(Key.N)));
    Messages.push_back(std::move(Msg));
  }

  auto CalEnv = createMachineEnv(HwKind::Partitioned, Lat);
  int64_t PerBlockEst =
      calibrateRsaEstimate(Lat, Key, *CalEnv, 6, CalRng, MaxBlocks);

  // Language-level: per-block mitigate. System-level: a single mitigate
  // around the entire run with the same per-block initial estimate (the
  // external mitigator knows no more than "about one block's worth of
  // work").
  Report R("fig9_lang_vs_system");
  runSeriesInto(R,
                {{"language-level",
                  [&] {
                    return runSweep(Lat, Key, RsaMitigationMode::PerBlock,
                                    PerBlockEst, Messages);
                  }},
                 {"system-level",
                  [&] {
                    return runSweep(Lat, Key, RsaMitigationMode::WholeRun,
                                    PerBlockEst, Messages);
                  }}},
                Runner);
  std::vector<double> Sizes;
  for (unsigned Size = 1; Size <= MaxBlocks; ++Size)
    Sizes.push_back(Size);
  R.setIndex("blocks", Sizes);

  const Series &LangS = *R.find("language-level");
  const Series &SysS = *R.find("system-level");
  std::printf("=== Fig. 9: decryption time vs message size (cycles) ===\n");
  std::printf("%-8s %14s %14s %8s\n", "blocks", "language-level",
              "system-level", "ratio");
  uint64_t LangTotal = 0, SysTotal = 0;
  bool NeverMeaningfullySlower = true;
  for (unsigned I = 0; I != MaxBlocks; ++I) {
    uint64_t TL = static_cast<uint64_t>(LangS.Values[I]);
    uint64_t TS = static_cast<uint64_t>(SysS.Values[I]);
    LangTotal += TL;
    SysTotal += TS;
    // On exact schedule boundaries (1, 2, 4, 8 blocks with a doubling
    // schedule) the two coincide up to per-block bookkeeping; the
    // system-level mitigator wins only within that noise.
    if (TL > TS + TS / 100)
      NeverMeaningfullySlower = false;
    std::printf("%-8u %14" PRIu64 " %14" PRIu64 " %7.2fx\n", I + 1, TL, TS,
                static_cast<double>(TS) / static_cast<double>(TL));
  }

  std::printf("\n=== shape checks (paper's findings) ===\n");
  std::printf("language-level grows ~linearly in the public size: "
              "t(10)/t(1) = %.1f (expect ~10)\n",
              LangS.Values.back() / LangS.Values.front());
  std::printf("system-level pays a doubling staircase for the *public* size"
              " variation;\nlanguage-level does not mitigate it at all"
              " (Sec. 8.4's point).\n");
  bool Faster = SysTotal > LangTotal;
  std::printf("language-level faster over the size sweep: %s "
              "(total %.2fx; never meaningfully slower: %s)\n",
              Faster ? "YES" : "no",
              static_cast<double>(SysTotal) / static_cast<double>(LangTotal),
              NeverMeaningfullySlower ? "yes" : "no");

  R.setScalar("language_total_cycles", static_cast<double>(LangTotal));
  R.setScalar("system_total_cycles", static_cast<double>(SysTotal));

  // Telemetry of record: the 10-block message decrypted once under each
  // mode on fresh environments, counters side by side under lang./sys.
  // prefixes (mispredictions and padding show the doubling staircase).
  for (auto [Prefix, Mode] :
       {std::pair<const char *, RsaMitigationMode>{
            "lang.", RsaMitigationMode::PerBlock},
        {"sys.", RsaMitigationMode::WholeRun}}) {
    RsaProgramConfig Config;
    Config.Mode = Mode;
    Config.Estimate = PerBlockEst;
    Config.MaxBlocks = MaxBlocks;
    auto Env = createMachineEnv(HwKind::Partitioned, Lat);
    Program P = buildRsaProgram(Lat, Key, Config);
    RunResult Rep = runFull(
        P, *Env, [&](Memory &M) { setRsaMessage(M, Messages.back()); });
    collectRunMetrics(R.metrics(), Rep.T, Rep.Hw, Lat, Prefix);
    LeakAudit Audit(Lat);
    Audit.ingest(Rep.T);
    Audit.exportMetrics(R.metrics(), Prefix);
  }
  R.setVerdict("language_level_faster", Faster);
  R.setVerdict("never_meaningfully_slower", NeverMeaningfullySlower);
  if (!emitReportJson(R, Harness))
    return 2;
  return Faster && NeverMeaningfullySlower ? 0 : 1;
}
