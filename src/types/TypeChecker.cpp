//===- TypeChecker.cpp ----------------------------------------------------===//

#include "types/TypeChecker.h"

#include "lang/StaticLabels.h"
#include "support/Casting.h"

using namespace zam;

TypeChecker::TypeChecker(const Program &P, DiagnosticEngine &Diags,
                         TypeCheckOptions Opts)
    : P(P), Diags(Diags), Opts(Opts), Lat(P.lattice()) {}

void TypeChecker::error(const Cmd &C, const std::string &Message, bool Quiet) {
  Failed = true;
  if (!Quiet)
    Diags.error(C.loc(), Message);
}

//===----------------------------------------------------------------------===//
// Declarations and expression shapes
//===----------------------------------------------------------------------===//

bool TypeChecker::checkExprShape(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return true;
  case Expr::Kind::Var: {
    const VarDecl *D = P.findVar(cast<VarExpr>(E).name());
    if (!D) {
      Diags.error(E.loc(),
                  "use of undeclared variable '" + cast<VarExpr>(E).name() +
                      "'");
      return false;
    }
    if (D->IsArray) {
      Diags.error(E.loc(), "array '" + D->Name + "' used without an index");
      return false;
    }
    return true;
  }
  case Expr::Kind::ArrayRead: {
    const auto &AR = cast<ArrayReadExpr>(E);
    const VarDecl *D = P.findVar(AR.array());
    bool Ok = true;
    if (!D) {
      Diags.error(E.loc(), "use of undeclared array '" + AR.array() + "'");
      Ok = false;
    } else if (!D->IsArray) {
      Diags.error(E.loc(), "scalar '" + D->Name + "' indexed like an array");
      Ok = false;
    }
    return checkExprShape(AR.index()) && Ok;
  }
  case Expr::Kind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    bool L = checkExprShape(BO.lhs());
    bool R = checkExprShape(BO.rhs());
    return L && R;
  }
  case Expr::Kind::UnOp:
    return checkExprShape(cast<UnOpExpr>(E).sub());
  }
  return false;
}

namespace {
/// Walks every expression of every command through a callback.
template <typename Fn> bool forEachCmdExpr(const Cmd &C, Fn &&Visit) {
  switch (C.kind()) {
  case Cmd::Kind::Skip:
    return true;
  case Cmd::Kind::Assign:
    return Visit(cast<AssignCmd>(C).value());
  case Cmd::Kind::ArrayAssign: {
    const auto &A = cast<ArrayAssignCmd>(C);
    bool I = Visit(A.index());
    bool V = Visit(A.value());
    return I && V;
  }
  case Cmd::Kind::Seq: {
    const auto &S = cast<SeqCmd>(C);
    bool A = forEachCmdExpr(S.first(), Visit);
    bool B = forEachCmdExpr(S.second(), Visit);
    return A && B;
  }
  case Cmd::Kind::If: {
    const auto &I = cast<IfCmd>(C);
    bool G = Visit(I.cond());
    bool A = forEachCmdExpr(I.thenCmd(), Visit);
    bool B = forEachCmdExpr(I.elseCmd(), Visit);
    return G && A && B;
  }
  case Cmd::Kind::While: {
    const auto &W = cast<WhileCmd>(C);
    bool G = Visit(W.cond());
    bool B = forEachCmdExpr(W.body(), Visit);
    return G && B;
  }
  case Cmd::Kind::Mitigate: {
    const auto &M = cast<MitigateCmd>(C);
    bool E = Visit(M.initialEstimate());
    bool B = forEachCmdExpr(M.body(), Visit);
    return E && B;
  }
  case Cmd::Kind::Sleep:
    return Visit(cast<SleepCmd>(C).duration());
  }
  return false;
}

/// Collects assignment targets so their declarations can be validated.
void checkAssignTargets(const Cmd &C, const Program &P,
                        DiagnosticEngine &Diags, bool &Ok) {
  switch (C.kind()) {
  case Cmd::Kind::Assign: {
    const auto &A = cast<AssignCmd>(C);
    const VarDecl *D = P.findVar(A.var());
    if (!D) {
      Diags.error(C.loc(), "assignment to undeclared variable '" + A.var() +
                               "'");
      Ok = false;
    } else if (D->IsArray) {
      Diags.error(C.loc(),
                  "assignment to array '" + A.var() + "' without an index");
      Ok = false;
    }
    return;
  }
  case Cmd::Kind::ArrayAssign: {
    const auto &A = cast<ArrayAssignCmd>(C);
    const VarDecl *D = P.findVar(A.array());
    if (!D) {
      Diags.error(C.loc(),
                  "assignment to undeclared array '" + A.array() + "'");
      Ok = false;
    } else if (!D->IsArray) {
      Diags.error(C.loc(), "scalar '" + A.array() + "' assigned like an array");
      Ok = false;
    }
    return;
  }
  case Cmd::Kind::Seq: {
    const auto &S = cast<SeqCmd>(C);
    checkAssignTargets(S.first(), P, Diags, Ok);
    checkAssignTargets(S.second(), P, Diags, Ok);
    return;
  }
  case Cmd::Kind::If: {
    const auto &I = cast<IfCmd>(C);
    checkAssignTargets(I.thenCmd(), P, Diags, Ok);
    checkAssignTargets(I.elseCmd(), P, Diags, Ok);
    return;
  }
  case Cmd::Kind::While:
    checkAssignTargets(cast<WhileCmd>(C).body(), P, Diags, Ok);
    return;
  case Cmd::Kind::Mitigate:
    checkAssignTargets(cast<MitigateCmd>(C).body(), P, Diags, Ok);
    return;
  default:
    return;
  }
}
} // namespace

bool TypeChecker::checkDeclarations() {
  if (!P.hasBody()) {
    Diags.error(SourceLoc(), "program has no body");
    return false;
  }
  bool Ok = forEachCmdExpr(P.body(),
                           [this](const Expr &E) { return checkExprShape(E); });
  checkAssignTargets(P.body(), P, Diags, Ok);
  return Ok;
}

//===----------------------------------------------------------------------===//
// Expression labels
//===----------------------------------------------------------------------===//

Label TypeChecker::exprType(const Expr &E) { return exprLabel(E, P); }

Label TypeChecker::addressLabel(const Expr &E) {
  return addressDependenceLabel(E, P);
}

//===----------------------------------------------------------------------===//
// The command judgment
//===----------------------------------------------------------------------===//

Label TypeChecker::checkCmd(const Cmd &C, Label Pc, Label Tau, bool Quiet) {
  if (C.kind() == Cmd::Kind::Seq) {
    // T-SEQ: Γ,pc,τ ⊢ c1 : τ1 and Γ,pc,τ1 ⊢ c2 : τ2.
    const auto &S = cast<SeqCmd>(C);
    Label Tau1 = checkCmd(S.first(), Pc, Tau, Quiet);
    return checkCmd(S.second(), Pc, Tau1, Quiet);
  }

  if (!C.labels().complete()) {
    error(C, "command lacks timing labels; run label inference first", Quiet);
    if (!Quiet)
      EndLabels.emplace(C.nodeId(), Tau);
    return Tau;
  }

  const Label Er = *C.labels().Read;
  const Label Ew = *C.labels().Write;

  // Premise shared by every rule: pc ⊑ ew. Together with Property 5 this
  // keeps control-flow secrets out of low machine-environment state.
  if (!Lat.flowsTo(Pc, Ew))
    error(C,
          "program-counter label " + Lat.name(Pc) +
              " does not flow to write label " + Lat.name(Ew),
          Quiet);

  if (Opts.RequireEqualTimingLabels && Er != Ew)
    error(C,
          "commodity hardware requires equal timing labels, got read " +
              Lat.name(Er) + " and write " + Lat.name(Ew),
          Quiet);

  // Array extension: data-dependent addresses may be installed into
  // ew-level machine state, so every index label must flow to ew.
  auto CheckAddress = [&](const Expr &E) {
    Label AddrL = addressLabel(E);
    if (!Lat.flowsTo(AddrL, Ew))
      error(C,
            "array index label " + Lat.name(AddrL) +
                " does not flow to write label " + Lat.name(Ew),
            Quiet);
  };

  Label Result = Tau;
  switch (C.kind()) {
  case Cmd::Kind::Skip:
    // T-SKIP: τ′ = τ ⊔ er.
    Result = Lat.join(Tau, Er);
    break;

  case Cmd::Kind::Assign: {
    // T-ASGN: ℓe ⊔ pc ⊔ τ ⊔ er ⊑ Γ(x); τ′ = Γ(x).
    const auto &A = cast<AssignCmd>(C);
    const VarDecl *D = P.findVar(A.var());
    if (!D) {
      Result = Tau;
      break;
    }
    CheckAddress(A.value());
    Label Le = exprType(A.value());
    Label Bound = Lat.join(Lat.join(Le, Pc), Lat.join(Tau, Er));
    if (!Lat.flowsTo(Bound, D->SecLabel))
      error(C,
            "assignment to '" + A.var() + "' leaks " + Lat.name(Bound) +
                " information into a " + Lat.name(D->SecLabel) + " variable",
            Quiet);
    Result = D->SecLabel;
    break;
  }

  case Cmd::Kind::ArrayAssign: {
    // Array form of T-ASGN: the index label joins into the flow premise.
    const auto &A = cast<ArrayAssignCmd>(C);
    const VarDecl *D = P.findVar(A.array());
    if (!D) {
      Result = Tau;
      break;
    }
    CheckAddress(A.index());
    CheckAddress(A.value());
    Label LIdx = exprType(A.index());
    if (!Lat.flowsTo(LIdx, Ew))
      error(C,
            "array store index label " + Lat.name(LIdx) +
                " does not flow to write label " + Lat.name(Ew),
            Quiet);
    Label Le = Lat.join(exprType(A.value()), LIdx);
    Label Bound = Lat.join(Lat.join(Le, Pc), Lat.join(Tau, Er));
    if (!Lat.flowsTo(Bound, D->SecLabel))
      error(C,
            "assignment to '" + A.array() + "' leaks " + Lat.name(Bound) +
                " information into a " + Lat.name(D->SecLabel) + " array",
            Quiet);
    Result = D->SecLabel;
    break;
  }

  case Cmd::Kind::Sleep: {
    // T-SLEEP: τ′ = τ ⊔ ℓe ⊔ er.
    const auto &S = cast<SleepCmd>(C);
    CheckAddress(S.duration());
    Result = Lat.join(Tau, Lat.join(exprType(S.duration()), Er));
    break;
  }

  case Cmd::Kind::If: {
    // T-IF: branches under pc ⊔ ℓe with start ℓe ⊔ τ ⊔ er; τ′ = τ1 ⊔ τ2.
    const auto &I = cast<IfCmd>(C);
    CheckAddress(I.cond());
    Label Le = exprType(I.cond());
    Label BranchPc = Lat.join(Le, Pc);
    Label BranchTau = Lat.join(Le, Lat.join(Tau, Er));
    Label Tau1 = checkCmd(I.thenCmd(), BranchPc, BranchTau, Quiet);
    Label Tau2 = checkCmd(I.elseCmd(), BranchPc, BranchTau, Quiet);
    Result = Lat.join(Tau1, Tau2);
    break;
  }

  case Cmd::Kind::While: {
    // T-WHILE: the least τ′ with ℓe ⊔ τ ⊔ er ⊑ τ′ that is closed under the
    // body: Γ, ℓe ⊔ pc, τ′ ⊢ c : τ′. Computed by fixpoint iteration (the
    // lattice is finite); intermediate iterations are quiet so each real
    // violation is reported once.
    const auto &W = cast<WhileCmd>(C);
    CheckAddress(W.cond());
    Label Le = exprType(W.cond());
    Label BodyPc = Lat.join(Le, Pc);
    Label TauPrime = Lat.join(Le, Lat.join(Tau, Er));
    for (unsigned Iter = 0; Iter <= Lat.size(); ++Iter) {
      Label Next = checkCmd(W.body(), BodyPc, TauPrime, /*Quiet=*/true);
      Label Joined = Lat.join(TauPrime, Next);
      if (Joined == TauPrime)
        break;
      TauPrime = Joined;
    }
    // Final pass with reporting enabled.
    checkCmd(W.body(), BodyPc, TauPrime, Quiet);
    Result = TauPrime;
    break;
  }

  case Cmd::Kind::Mitigate: {
    // T-MTG: body under the same pc with start τ ⊔ ℓe ⊔ er; its end label
    // must flow to the mitigation level ℓ′; the mitigate's own end label
    // accounts only for evaluating e: τ′ = ℓe ⊔ τ ⊔ er.
    const auto &Mit = cast<MitigateCmd>(C);
    CheckAddress(Mit.initialEstimate());
    Label Le = exprType(Mit.initialEstimate());
    Label BodyTau = Lat.join(Tau, Lat.join(Le, Er));
    Label BodyEnd = checkCmd(Mit.body(), Pc, BodyTau, Quiet);
    if (!Lat.flowsTo(BodyEnd, Mit.mitLevel()))
      error(C,
            "mitigated body's timing label " + Lat.name(BodyEnd) +
                " exceeds the mitigation level " + Lat.name(Mit.mitLevel()),
            Quiet);
    Result = Lat.join(Le, Lat.join(Tau, Er));
    break;
  }

  case Cmd::Kind::Seq:
    break; // Handled above.
  }

  if (!Quiet)
    EndLabels[C.nodeId()] = Result;
  return Result;
}

bool TypeChecker::check() {
  Failed = false;
  if (!checkDeclarations())
    return false;
  Label End = checkCmd(P.body(), Lat.bottom(), Lat.bottom(), /*Quiet=*/false);
  if (!Failed)
    ProgramEnd = End;
  return !Failed;
}

std::optional<Label> TypeChecker::endLabelOf(unsigned NodeId) const {
  auto It = EndLabels.find(NodeId);
  if (It == EndLabels.end())
    return std::nullopt;
  return It->second;
}

bool zam::typeCheck(const Program &P, DiagnosticEngine &Diags,
                    TypeCheckOptions Opts) {
  TypeChecker Checker(P, Diags, Opts);
  return Checker.check();
}
