//===- TypeChecker.h - The Fig. 4 security type system ----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The security type system of Sec. 5 (Fig. 4). Judgments have the form
/// Γ, pc, τ ⊢ c : τ′ where pc is the program-counter label and τ/τ′ are the
/// timing start- and end-labels bounding the information that has flowed
/// into timing before and after c. The implemented rules:
///
///   T-SKIP   pc ⊑ ew                          τ′ = τ ⊔ er
///   T-ASGN   pc ⊑ ew,  ℓe ⊔ pc ⊔ τ ⊔ er ⊑ Γ(x)   τ′ = Γ(x)
///   T-SLEEP  pc ⊑ ew                          τ′ = τ ⊔ ℓe ⊔ er
///   T-SEQ    thread τ through c1 then c2
///   T-IF     branches under pc⊔ℓe, start ℓe ⊔ τ ⊔ er; τ′ = τ1 ⊔ τ2
///   T-WHILE  least τ′ ⊒ ℓe ⊔ τ ⊔ er closed under the body (fixpoint)
///   T-MTG    body under pc, start τ ⊔ ℓe ⊔ er, end ⊑ ℓ′; τ′ = ℓe ⊔ τ ⊔ er
///
/// Array extension (beyond the paper, needed by the case studies): an array
/// access's address depends on the index expression, and the hardware may
/// install that address into machine-environment state at level ew, so
/// every command additionally requires label(index) ⊑ ew for each array
/// access it evaluates; array assignment joins the index label into the
/// ℓe ⊑ Γ(x) premise. This preserves Property 7 in the presence of
/// data-dependent addresses.
///
/// The optional er = ew side condition models commodity cache designs
/// (Secs. 5.1, 8.1), where a read updates replacement state.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_TYPES_TYPECHECKER_H
#define ZAM_TYPES_TYPECHECKER_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <optional>
#include <unordered_map>

namespace zam {

struct TypeCheckOptions {
  /// Require er = ew on every command (commodity-hardware side condition;
  /// the paper's implementation enforces this, Sec. 8.1).
  bool RequireEqualTimingLabels = false;
};

/// Checks Γ ⊢ c for a whole program. All commands must carry complete
/// timing labels (run inferTimingLabels first for unannotated programs).
class TypeChecker {
public:
  TypeChecker(const Program &P, DiagnosticEngine &Diags,
              TypeCheckOptions Opts = TypeCheckOptions());

  /// Runs the judgment Γ, ⊥, ⊥ ⊢ body : τ′. \returns true when the program
  /// is well-typed; diagnostics (one per violated premise) otherwise.
  bool check();

  /// Timing end-label computed for a command node (valid after check()).
  std::optional<Label> endLabelOf(unsigned NodeId) const;

  /// The whole program's timing end-label (valid after a successful check).
  std::optional<Label> programEndLabel() const { return ProgramEnd; }

private:
  bool checkDeclarations();
  bool checkExprShape(const Expr &E);
  /// Join of index labels over all array reads in \p E (⊥ when none):
  /// the address-dependence label that must flow to ew.
  Label addressLabel(const Expr &E);
  Label exprType(const Expr &E);
  /// The judgment; returns the end label τ′ (a sound label even after
  /// reported errors, so checking continues).
  Label checkCmd(const Cmd &C, Label Pc, Label Tau, bool Quiet);

  void error(const Cmd &C, const std::string &Message, bool Quiet);

  const Program &P;
  DiagnosticEngine &Diags;
  TypeCheckOptions Opts;
  const SecurityLattice &Lat;
  std::unordered_map<unsigned, Label> EndLabels;
  std::optional<Label> ProgramEnd;
  bool Failed = false;
};

/// Convenience wrapper.
bool typeCheck(const Program &P, DiagnosticEngine &Diags,
               TypeCheckOptions Opts = TypeCheckOptions());

} // namespace zam

#endif // ZAM_TYPES_TYPECHECKER_H
