//===- LabelInference.h - Inference of timing labels ------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fills in missing [er, ew] annotations with the least restrictive labels
/// satisfying the typing rules, "reducing the burden on programmers"
/// (Sec. 2.2). The least write label satisfying the universal premise
/// pc ⊑ ew is ew = pc, and the paper notes er = ew is the best-performance
/// choice on cache-based hardware (Sec. 5.1), so inference chooses
/// er = ew = pc(c). Annotations already present are preserved.
///
/// Inference is syntactic and always succeeds; whether the completed
/// program is secure is then decided by the TypeChecker.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_TYPES_LABELINFERENCE_H
#define ZAM_TYPES_LABELINFERENCE_H

#include "lang/Ast.h"

namespace zam {

/// Fills missing timing labels in place with er = ew = pc(c).
void inferTimingLabels(Program &P);

} // namespace zam

#endif // ZAM_TYPES_LABELINFERENCE_H
