//===- LabelInference.cpp -------------------------------------------------===//

#include "types/LabelInference.h"

#include "lang/StaticLabels.h"
#include "support/Casting.h"

using namespace zam;

static void fill(Cmd &C, Label Pc, const Program &P) {
  const SecurityLattice &Lat = P.lattice();
  if (!C.isSeq()) {
    TimingLabels &L = C.labels();
    // The least write label satisfies pc ⊑ ew and the array extension's
    // address-dependence constraint (the step's data-dependent addresses
    // may be installed into ew-level machine state).
    if (!L.Write)
      L.Write = Lat.join(Pc, stepAddressLabel(C, P));
    if (!L.Read)
      L.Read = *L.Write;
  }
  switch (C.kind()) {
  case Cmd::Kind::Skip:
  case Cmd::Kind::Assign:
  case Cmd::Kind::ArrayAssign:
  case Cmd::Kind::Sleep:
    return;
  case Cmd::Kind::Seq: {
    auto &S = cast<SeqCmd>(C);
    fill(S.first(), Pc, P);
    fill(S.second(), Pc, P);
    return;
  }
  case Cmd::Kind::If: {
    auto &I = cast<IfCmd>(C);
    Label BranchPc = Lat.join(Pc, exprLabel(I.cond(), P));
    fill(I.thenCmd(), BranchPc, P);
    fill(I.elseCmd(), BranchPc, P);
    return;
  }
  case Cmd::Kind::While: {
    auto &W = cast<WhileCmd>(C);
    fill(W.body(), Lat.join(Pc, exprLabel(W.cond(), P)), P);
    return;
  }
  case Cmd::Kind::Mitigate:
    fill(cast<MitigateCmd>(C).body(), Pc, P);
    return;
  }
}

void zam::inferTimingLabels(Program &P) {
  if (P.hasBody())
    fill(P.body(), P.lattice().bottom(), P);
}
