//===- Metrics.cpp --------------------------------------------------------===//

#include "obs/Metrics.h"

#include <cstdio>

using namespace zam;

MetricsRegistry::Entry &MetricsRegistry::slot(const std::string &Name,
                                              bool IsGauge) {
  for (Entry &E : Entries)
    if (E.Name == Name) {
      E.IsGauge = IsGauge;
      return E;
    }
  Entries.push_back(Entry{Name, IsGauge, 0, 0});
  return Entries.back();
}

uint64_t &MetricsRegistry::counter(const std::string &Name) {
  return slot(Name, /*IsGauge=*/false).Counter;
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name && !E.IsGauge)
      return E.Counter;
  return 0;
}

void MetricsRegistry::setGauge(const std::string &Name, double Value) {
  slot(Name, /*IsGauge=*/true).Gauge = Value;
}

double MetricsRegistry::gaugeValue(const std::string &Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name && E.IsGauge)
      return E.Gauge;
  return 0;
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  for (const Entry &E : Other.Entries) {
    if (E.IsGauge)
      setGauge(E.Name, E.Gauge);
    else
      counter(E.Name) += E.Counter;
  }
}

JsonValue MetricsRegistry::toJson() const {
  JsonValue Doc = JsonValue::object();
  for (const Entry &E : Entries)
    Doc[E.Name] = E.IsGauge ? JsonValue(E.Gauge) : JsonValue(E.Counter);
  return Doc;
}

std::string MetricsRegistry::render() const {
  std::string Out;
  char Buf[192];
  for (const Entry &E : Entries) {
    if (E.IsGauge)
      std::snprintf(Buf, sizeof(Buf), "  %-32s %.3f\n", E.Name.c_str(),
                    E.Gauge);
    else
      std::snprintf(Buf, sizeof(Buf), "  %-32s %llu\n", E.Name.c_str(),
                    static_cast<unsigned long long>(E.Counter));
    Out += Buf;
  }
  return Out;
}
