//===- Phase.h - Wall-clock phase profiler ----------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small wall-clock profiler for the pipeline phases of the zamc driver
/// and the bench harnesses (lex/parse, label inference, typecheck, run).
/// Phase times are host wall-clock, so they are reported separately from
/// the deterministic simulated-cycle metrics and never enter `exp::Report`
/// JSON that must be byte-stable across machines or thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_PHASE_H
#define ZAM_OBS_PHASE_H

#include "obs/Json.h"

#include <chrono>
#include <string>
#include <vector>

namespace zam {

/// Accumulates named wall-clock phases in insertion order. Re-entering a
/// phase name adds to its total (and bumps its entry count), so loops may
/// profile each iteration under one name.
class PhaseProfiler {
public:
  struct Phase {
    std::string Name;
    double Ms = 0;
    uint64_t Count = 0;
  };

  /// RAII scope: measures from construction to destruction (or close()).
  class ScopedPhase {
  public:
    ScopedPhase(PhaseProfiler &Prof, std::string Name)
        : Prof(&Prof), Name(std::move(Name)),
          Start(std::chrono::steady_clock::now()) {}
    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;
    ~ScopedPhase() { close(); }

    /// Ends the phase early; the destructor becomes a no-op.
    void close();

  private:
    PhaseProfiler *Prof;
    std::string Name;
    std::chrono::steady_clock::time_point Start;
  };

  ScopedPhase scope(std::string Name) { return {*this, std::move(Name)}; }

  /// Records \p Ms directly against \p Name.
  void add(const std::string &Name, double Ms);

  const std::vector<Phase> &phases() const { return Phases; }
  bool empty() const { return Phases.empty(); }
  double totalMs() const;

  /// `{"parse_ms": 0.42, ...}` in insertion order.
  JsonValue toJson() const;

  /// Aligned `phase  ms  (share)` lines for terminal output.
  std::string render() const;

private:
  std::vector<Phase> Phases;
};

} // namespace zam

#endif // ZAM_OBS_PHASE_H
