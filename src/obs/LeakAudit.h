//===- LeakAudit.h - Online leakage-budget accountant -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The leakage-observability side of the telemetry subsystem: a running
/// account of the Sec. 6 information bound, maintained per mitigate window
/// as the interpreters execute (via InterpreterOptions::OnMitigateWindow)
/// or replayed from a finished Trace.
///
/// The accounting model is the paper's Sec. 6.2/7 argument specialized to
/// the fast-doubling scheme: window i with initial estimate n settles on
/// one of the schedule values max(n,1)·2^k, and by global time T at most
///
///   N_i(T) = |{ k ≥ 0 : max(n,1)·2^k ≤ T }|   (at least 1)
///
/// of those are attainable, so the window can transmit at most log2 N_i(T)
/// bits. The per-level running bound is Σ_i log2 N_i(T_i) with T_i the
/// window's own completion time; the classic |LeA↑|·log2(K+1)·(1+log2 T)
/// closed form (leakageBoundBits) stays available as the coarser summary.
///
/// Sec. 6.1 adversary projection: when an adversary level ℓA is set, a
/// window is *counted* iff it runs in an ℓA-visible context
/// (pc(M_η) ⊑ ℓA) and mitigates information above the adversary
/// (lev(M_η) ⋢ ℓA) — the same windows whose durations enter the
/// Definition 2 timing vectors. Without an adversary every window counts
/// (the conservative any-observer account).
///
/// Everything here derives from deterministic run data (cycle counts),
/// never wall clock, so leak.* metrics may ride in byte-stable report JSON
/// and traces; tools/zamtrace recomputes the same sums offline and demands
/// bit-for-bit agreement.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_LEAKAUDIT_H
#define ZAM_OBS_LEAKAUDIT_H

#include "lattice/SecurityLattice.h"
#include "obs/Metrics.h"
#include "sem/Event.h"
#include "sem/Mitigation.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace zam {

class TraceReader;

/// N(T) for one window of the fast-doubling scheme: how many schedule
/// values max(Estimate,1)·2^k fit within global time \p ElapsedTime.
/// Always at least 1 (the window did settle on something). Delegates to
/// fastDoublingPolicy(); kept for the paper-default call sites — policy-
/// aware code goes through MitigationPolicy::attainableValues instead.
uint64_t attainableScheduleValues(int64_t Estimate, uint64_t ElapsedTime);

/// log2 N(T) — the bits one settled window can transmit by time
/// \p ElapsedTime (fast-doubling; see attainableScheduleValues).
double windowBoundBits(int64_t Estimate, uint64_t ElapsedTime);

/// log2(Miss[ℓ]+1): the bits revealed by the level's misprediction count
/// itself (each miss doubles the schedule, so the count is the exponent an
/// observer of any single window learns).
double mispredictPenaltyBits(unsigned Misses);

/// The Sec. 7 closed-form leakage bound in bits:
/// |LeA↑| · log2(K+1) · (1 + log2 T), zero when K = 0.
double leakageBoundBits(unsigned UpwardClosureSize, uint64_t RelevantMitigates,
                        uint64_t ElapsedTime);

/// One counted mitigate window, priced.
struct LeakWindow {
  unsigned Eta = 0;          ///< Source identifier η.
  Label Level;               ///< lev(M_η).
  Label Pc;                  ///< pc(M_η).
  uint64_t Start = 0;        ///< Cycle the mitigated body began.
  uint64_t Duration = 0;     ///< Padded duration (public schedule value).
  int64_t Estimate = 0;      ///< Initial estimate n at entry.
  unsigned MissesAfter = 0;  ///< Miss[lev] after this window settled.
  bool Mispredicted = false;
  uint64_t Attainable = 0;   ///< N_i(T_i) at the window's completion time.
  double WindowBits = 0;     ///< log2 N_i(T_i).
  double CumLevelBits = 0;   ///< Running Σ log2 N over this window's level.
  uint32_t Line = 0;         ///< Source line of the mitigate (0: unknown).
  /// The policy that scheduled (and priced) this window — resolved from
  /// the audit's PolicySelection by η. Never null on a counted window.
  const MitigationPolicy *Policy = nullptr;
};

/// Maintains per-security-level running leakage bounds. Feed it windows
/// online (onWindow, from the interpreter hook) or replay a finished trace
/// (ingest) — both orders of arrival are the trace order, so the double
/// sums are bit-identical either way.
class LeakAudit {
public:
  /// Per-level running account.
  struct LevelAccount {
    uint64_t Windows = 0;  ///< Counted windows at this level.
    unsigned Misses = 0;   ///< Miss[ℓ] after the latest counted window.
    double BitsBound = 0;  ///< Σ log2 N_i(T_i) over counted windows.
  };

  /// \p Policies must mirror the run's InterpreterOptions::Mitigation so
  /// every window is priced by the schedule that actually produced it;
  /// defaulting it keeps the paper's fast-doubling account.
  explicit LeakAudit(const SecurityLattice &Lat,
                     std::optional<Label> Adversary = std::nullopt,
                     PolicySelection Policies = PolicySelection());

  /// Whether the Sec. 6.1 projection counts \p R (see file comment).
  bool counts(const MitigateRecord &R) const;

  /// Accounts one settled window (no-op when the projection drops it).
  void onWindow(const MitigateRecord &R);

  /// Replays every mitigate record of \p T through onWindow.
  void ingest(const Trace &T);

  /// Replays mitigate spans (cat "mit") pulled from \p Reader through
  /// onWindow — single-pass and O(1) memory (with retention off), over any
  /// on-disk trace format. The per-level Miss table is rebuilt from the
  /// spans' mispredicted flags, so the resulting accounts are bit-identical
  /// to the online run's. \returns false with \p Err set on a malformed
  /// span or a stream decode error.
  bool replay(TraceReader &Reader, std::string &Err);

  /// When \p Keep is false, counted windows still update the per-level
  /// accounts but are not retained in windows() — required for
  /// million-window replays under a fixed memory cap. Default: retain.
  void setRetainWindows(bool Keep) { RetainWindows = Keep; }

  /// Drops all accumulated state; the lattice and adversary stay.
  void reset();

  const std::vector<LeakWindow> &windows() const { return Counted; }

  /// Counted windows across all levels (valid whether or not the
  /// LeakWindow rows themselves were retained).
  uint64_t countedWindows() const { return CountedWindows; }
  const LevelAccount &account(Label L) const { return Accounts[L.index()]; }

  /// Σ over all levels of the per-level bits bound, summed in lattice
  /// level order (the order exportMetrics emits).
  double totalBitsBound() const;

  /// Emits the leak.* namespace into \p Reg: for every lattice level
  ///   [Prefix]leak.<level>.windows                (counter)
  ///   [Prefix]leak.<level>.bits_bound             (gauge)
  ///   [Prefix]leak.<level>.mispredict_penalty_bits (gauge)
  /// then the totals [Prefix]leak.windows and
  /// [Prefix]leak.total_bits_bound. The shape is fixed (every level always
  /// appears), so reports stay byte-comparable across runs.
  void exportMetrics(MetricsRegistry &Reg,
                     const std::string &Prefix = "") const;

  const SecurityLattice &lattice() const { return Lat; }
  std::optional<Label> adversary() const { return Adversary; }
  const PolicySelection &policies() const { return Policies; }

private:
  const SecurityLattice &Lat;
  std::optional<Label> Adversary;
  PolicySelection Policies;
  bool RetainWindows = true;
  uint64_t CountedWindows = 0;
  std::vector<LeakWindow> Counted;
  std::vector<LevelAccount> Accounts; ///< Indexed by label index.
};

} // namespace zam

#endif // ZAM_OBS_LEAKAUDIT_H
