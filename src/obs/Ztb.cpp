//===- Ztb.cpp ------------------------------------------------------------===//

#include "obs/Ztb.h"

#include <cstring>

using namespace zam;

void ztb::appendVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out += static_cast<char>((V & 0x7F) | 0x80);
    V >>= 7;
  }
  Out += static_cast<char>(V);
}

void ztb::appendString(std::string &Out, const std::string &S) {
  appendVarint(Out, S.size());
  Out += S;
}

void ZtbTraceSink::ensurePreamble() {
  if (WrotePreamble)
    return;
  WrotePreamble = true;
  Scratch.clear();
  Scratch.append(ztb::Magic, sizeof(ztb::Magic));
  Scratch += static_cast<char>(ztb::Version);
  ztb::appendVarint(Scratch, 0);
  emit(Scratch);
}

void ZtbTraceSink::header(
    const std::vector<std::pair<std::string, std::string>> &Meta) {
  if (WrotePreamble)
    return; // The preamble is the only place provenance can live.
  WrotePreamble = true;
  Scratch.clear();
  Scratch.append(ztb::Magic, sizeof(ztb::Magic));
  Scratch += static_cast<char>(ztb::Version);
  ztb::appendVarint(Scratch, Meta.size());
  for (const auto &[Key, Value] : Meta) {
    ztb::appendString(Scratch, Key);
    ztb::appendString(Scratch, Value);
  }
  emit(Scratch);
}

void ZtbTraceSink::record(const TraceRecord &R) {
  ensurePreamble();
  Scratch.clear();
  if (RecordCount != 0 && RecordCount % ztb::RecordsPerFrame == 0)
    Scratch.append(reinterpret_cast<const char *>(ztb::FrameMarker),
                   sizeof(ztb::FrameMarker));
  ++RecordCount;

  // Serialize the payload, then prefix its length.
  std::string Payload;
  switch (R.RecordKind) {
  case TraceRecord::Kind::Instant:
    Payload += static_cast<char>(ztb::KindInstant);
    break;
  case TraceRecord::Kind::Span:
    Payload += static_cast<char>(ztb::KindSpan);
    break;
  case TraceRecord::Kind::Counter:
    Payload += static_cast<char>(ztb::KindCounter);
    break;
  case TraceRecord::Kind::Meta:
    Payload += static_cast<char>(ztb::KindMeta);
    break;
  }
  ztb::appendString(Payload, R.Name);
  ztb::appendString(Payload, R.Category);
  ztb::appendVarint(Payload, R.Ts);
  if (R.RecordKind == TraceRecord::Kind::Span)
    ztb::appendVarint(Payload, R.Dur);
  if (R.RecordKind == TraceRecord::Kind::Counter) {
    uint64_t Bits = 0;
    static_assert(sizeof(Bits) == sizeof(R.Value));
    std::memcpy(&Bits, &R.Value, sizeof(Bits));
    for (int I = 0; I != 8; ++I)
      Payload += static_cast<char>((Bits >> (8 * I)) & 0xFF);
  }
  ztb::appendVarint(Payload, R.Args.size());
  for (const auto &[Key, Value] : R.Args) {
    ztb::appendString(Payload, Key);
    ztb::appendString(Payload, Value);
  }

  ztb::appendVarint(Scratch, Payload.size());
  Scratch += Payload;
  emit(Scratch);
}
