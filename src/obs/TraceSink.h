//===- TraceSink.h - Structured trace output backends -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured-tracing side of the telemetry subsystem: a small record
/// model (instants, spans, counters on the simulated cycle clock) and two
/// serialization backends —
///
///   - JsonlTraceSink: one JSON object per line, schema documented in
///     docs/OBSERVABILITY.md; grep/jq-friendly.
///   - ChromeTraceSink: the Chrome trace-event JSON array format
///     (`chrome://tracing` / Perfetto-loadable). Spans map to complete
///     "X" events, instants to "i" events, counters to "C" events.
///     Timestamps are simulated cycles reported in the format's µs field
///     (1 cycle = 1 µs); both viewers treat ts as unitless.
///
/// Sinks buffer into a string; callers decide where bytes go. Producers
/// (obs/Telemetry.h) emit records in nondecreasing Ts order so the Chrome
/// backend needs no sorting pass.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_TRACESINK_H
#define ZAM_OBS_TRACESINK_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace zam {

/// One structured trace record on the simulated cycle clock.
struct TraceRecord {
  enum class Kind {
    Instant, ///< A point event (assignment, cache miss).
    Span,    ///< An interval [Ts, Ts + Dur] (mitigate window, step).
    Counter, ///< A sampled counter value at Ts.
  };

  Kind RecordKind = Kind::Instant;
  std::string Name;     ///< Event name, e.g. "mitigate#0" or "assign l".
  std::string Category; ///< Stream, e.g. "interp", "mit", "hw".
  uint64_t Ts = 0;      ///< Start time in cycles.
  uint64_t Dur = 0;     ///< Span length in cycles (Span only).
  double Value = 0;     ///< Counter sample (Counter only).
  /// Extra key/value detail; strings that parse as their own JSON scalars
  /// are the producer's responsibility to pre-quote — sinks emit values
  /// that read as JSON number literals (integer or decimal/exponent form)
  /// bare and quote everything else.
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Abstract consumer of trace records.
class TraceSink {
public:
  virtual ~TraceSink();

  /// Optional provenance preamble (build hash, compiler, ...). Must be
  /// called before the first record; the default drops it. JSONL emits a
  /// kind:"meta" first line, Chrome a ph:"M" metadata event — offline
  /// readers (tools/zamtrace) skip both when aggregating.
  virtual void header(
      const std::vector<std::pair<std::string, std::string>> &Meta);

  /// Consumes one record. Records must arrive in nondecreasing Ts order.
  virtual void record(const TraceRecord &R) = 0;

  /// Finalizes the serialized form (idempotent) and returns the buffer.
  virtual const std::string &finish() = 0;
};

/// JSON-Lines backend: one object per record, keys in a fixed order
/// (kind, name, cat, ts, then dur/value/args as applicable).
class JsonlTraceSink final : public TraceSink {
public:
  void header(
      const std::vector<std::pair<std::string, std::string>> &Meta) override;
  void record(const TraceRecord &R) override;
  const std::string &finish() override { return Out; }

private:
  std::string Out;
};

/// Chrome trace-event backend: a JSON array of events with ph "X" (complete
/// span), "i" (thread-scoped instant) or "C" (counter). pid is always 1;
/// tid encodes the category so viewers lay streams out as separate rows.
class ChromeTraceSink final : public TraceSink {
public:
  void header(
      const std::vector<std::pair<std::string, std::string>> &Meta) override;
  void record(const TraceRecord &R) override;
  const std::string &finish() override;

private:
  /// Stable row id for a category (registration order, starting at 1).
  unsigned tidFor(const std::string &Category);

  std::vector<std::string> Categories;
  std::string Out;
  bool First = true;
  bool Finished = false;
};

} // namespace zam

#endif // ZAM_OBS_TRACESINK_H
