//===- TraceSink.h - Structured trace output backends -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured-tracing side of the telemetry subsystem: a small record
/// model (instants, spans, counters on the simulated cycle clock) and the
/// serialization backends —
///
///   - JsonlTraceSink: one JSON object per line, schema documented in
///     docs/OBSERVABILITY.md; grep/jq-friendly.
///   - ChromeTraceSink: the Chrome trace-event JSON array format
///     (`chrome://tracing` / Perfetto-loadable). Spans map to complete
///     "X" events, instants to "i" events, counters to "C" events.
///     Timestamps are simulated cycles reported in the format's µs field
///     (1 cycle = 1 µs); both viewers treat ts as unitless.
///   - ZtbTraceSink (obs/Ztb.h): the compact binary format for
///     million-window runs.
///
/// Sinks serialize records incrementally through a caller-supplied
/// ByteSink, so a trace is never buffered whole: pass a FileByteSink to
/// stream to disk in O(1) memory, or a StringByteSink (the default) to
/// capture bytes for tests and golden comparisons. Producers
/// (obs/Telemetry.h) emit records in nondecreasing Ts order so the Chrome
/// backend needs no sorting pass.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_TRACESINK_H
#define ZAM_OBS_TRACESINK_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace zam {

/// One structured trace record on the simulated cycle clock.
struct TraceRecord {
  enum class Kind {
    Instant, ///< A point event (assignment, cache miss).
    Span,    ///< An interval [Ts, Ts + Dur] (mitigate window, step).
    Counter, ///< A sampled counter value at Ts.
    Meta,    ///< A mid-stream metadata row (periodic metrics snapshot).
  };

  Kind RecordKind = Kind::Instant;
  std::string Name;     ///< Event name, e.g. "mitigate#0" or "assign l".
  std::string Category; ///< Stream, e.g. "interp", "mit", "hw".
  uint64_t Ts = 0;      ///< Start time in cycles.
  uint64_t Dur = 0;     ///< Span length in cycles (Span only).
  double Value = 0;     ///< Counter sample (Counter only).
  /// Extra key/value detail; strings that parse as their own JSON scalars
  /// are the producer's responsibility to pre-quote — sinks emit values
  /// that read as JSON number literals (integer or decimal/exponent form)
  /// bare and quote everything else.
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Whether a record arg value reads as a bare JSON number literal (an
/// optional sign, digits, optional fraction/exponent). Text sinks emit
/// such values unquoted; readers use the same predicate to round-trip
/// args without a type side-channel.
bool traceArgIsNumberLiteral(const std::string &S);

/// Abstract destination for serialized trace bytes. Implementations must
/// accept writes in order; there is no seek.
class ByteSink {
public:
  virtual ~ByteSink();

  virtual void write(const char *Data, size_t Size) = 0;
  void write(const std::string &S) { write(S.data(), S.size()); }

  /// False once any write failed (short write, I/O error).
  virtual bool ok() const { return true; }
};

/// Buffers everything in memory; the pre-streaming behavior, still used by
/// tests and the byte-stability audits.
class StringByteSink final : public ByteSink {
public:
  void write(const char *Data, size_t Size) override {
    Out.append(Data, Size);
  }
  const std::string &str() const { return Out; }

private:
  std::string Out;
};

/// Streams to an open stdio FILE (not owned); the caller opens in binary
/// mode and closes after TraceSink::close(). O(1) memory.
class FileByteSink final : public ByteSink {
public:
  explicit FileByteSink(std::FILE *F) : F(F) {}

  void write(const char *Data, size_t Size) override {
    if (std::fwrite(Data, 1, Size, F) != Size)
      Ok = false;
  }
  bool ok() const override { return Ok; }

private:
  std::FILE *F;
  bool Ok = true;
};

/// Abstract consumer of trace records. Default-constructed sinks buffer
/// into an internal StringByteSink retrievable via finish(); sinks built
/// over an external ByteSink emit incrementally and are finalized with
/// close().
class TraceSink {
public:
  /// Buffers into an owned StringByteSink (finish() returns it).
  TraceSink();
  /// Streams through \p Sink (not owned); call close() when done.
  explicit TraceSink(ByteSink &Sink);
  virtual ~TraceSink();

  /// Optional provenance preamble (build hash, compiler, ...). Must be
  /// called before the first record; the default drops it. JSONL emits a
  /// kind:"meta" first line, Chrome a ph:"M" metadata event — offline
  /// readers (obs/TraceReader.h, tools/zamtrace) skip both when
  /// aggregating.
  virtual void header(
      const std::vector<std::pair<std::string, std::string>> &Meta);

  /// Consumes one record. Records must arrive in nondecreasing Ts order.
  virtual void record(const TraceRecord &R) = 0;

  /// Emits any format trailer (idempotent). The byte stream is complete —
  /// and FileByteSink contents valid — only after close().
  virtual void close() {}

  /// close(), then the full buffered serialization. Only meaningful for
  /// default-constructed (string-buffered) sinks; external-sink instances
  /// return an empty string because their bytes already left the process.
  const std::string &finish();

  /// Whether every write so far succeeded.
  bool ok() const { return Sink->ok(); }

protected:
  /// Writes \p Bytes through the destination sink.
  void emit(const std::string &Bytes) { Sink->write(Bytes); }

  /// Per-record scratch buffer: records are serialized here, then emitted
  /// as one write. Derived sinks clear it at the top of each record.
  std::string Scratch;

private:
  std::unique_ptr<StringByteSink> Owned;
  ByteSink *Sink;
};

/// JSON-Lines backend: one object per record, keys in a fixed order
/// (kind, name, cat, ts, then dur/value/args as applicable).
class JsonlTraceSink final : public TraceSink {
public:
  using TraceSink::TraceSink;

  void header(
      const std::vector<std::pair<std::string, std::string>> &Meta) override;
  void record(const TraceRecord &R) override;
};

/// Chrome trace-event backend: a JSON array of events with ph "X" (complete
/// span), "i" (thread-scoped instant), "C" (counter) or "M" (metadata).
/// pid is always 1; tid encodes the category so viewers lay streams out as
/// separate rows.
class ChromeTraceSink final : public TraceSink {
public:
  using TraceSink::TraceSink;

  void header(
      const std::vector<std::pair<std::string, std::string>> &Meta) override;
  void record(const TraceRecord &R) override;
  void close() override;

private:
  /// Stable row id for a category (registration order, starting at 1).
  unsigned tidFor(const std::string &Category);

  std::vector<std::string> Categories;
  bool First = true;
  bool Closed = false;
};

} // namespace zam

#endif // ZAM_OBS_TRACESINK_H
