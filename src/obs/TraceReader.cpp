//===- TraceReader.cpp ----------------------------------------------------===//

#include "obs/TraceReader.h"

#include "obs/Json.h"
#include "obs/Ztb.h"

#include <cmath>
#include <cstring>

using namespace zam;

TraceReader::~TraceReader() = default;

namespace {

/// Reads one '\n'-terminated line (terminator stripped); false at EOF.
bool readLine(std::FILE *F, std::string &Out) {
  Out.clear();
  char Buf[4096];
  bool Any = false;
  while (std::fgets(Buf, sizeof(Buf), F)) {
    Any = true;
    Out += Buf;
    if (!Out.empty() && Out.back() == '\n') {
      Out.pop_back();
      return true;
    }
  }
  return Any;
}

/// Flattens a JSON args object back to the producer's key/value strings:
/// integer-valued numbers in the producers' decimal form (std::to_string
/// — "1024", never the "%g" scientific "1.024e+03", so strtoull consumers
/// round-trip), other numbers through jsonNumberString (bit-identical
/// strtod round-trip), strings verbatim, bools as their literals.
void argsFromJson(const JsonValue *Args,
                  std::vector<std::pair<std::string, std::string>> &Out) {
  Out.clear();
  if (!Args || Args->kind() != JsonValue::Kind::Object)
    return;
  for (const auto &[Key, Val] : Args->members()) {
    switch (Val.kind()) {
    case JsonValue::Kind::Number: {
      const double V = Val.asNumber();
      if (std::nearbyint(V) == V && std::fabs(V) < 9.2e18)
        Out.emplace_back(Key,
                         std::to_string(static_cast<long long>(V)));
      else
        Out.emplace_back(Key, jsonNumberString(V));
      break;
    }
    case JsonValue::Kind::String:
      Out.emplace_back(Key, Val.asString());
      break;
    case JsonValue::Kind::Bool:
      Out.emplace_back(Key, Val.asBool() ? "true" : "false");
      break;
    default:
      break; // Producers never emit nested args.
    }
  }
}

uint64_t numOr0(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = Obj.find(Key);
  return V && V->kind() == JsonValue::Kind::Number
             ? static_cast<uint64_t>(V->asNumber())
             : 0;
}

std::string strOrEmpty(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = Obj.find(Key);
  return V && V->kind() == JsonValue::Kind::String ? V->asString()
                                                   : std::string();
}

/// Decodes one JSONL record object; false when the shape is wrong.
bool decodeJsonlObject(const JsonValue &Obj, TraceRecord &R) {
  const std::string Kind = strOrEmpty(Obj, "kind");
  R = TraceRecord();
  if (Kind == "meta") {
    R.RecordKind = TraceRecord::Kind::Meta;
    // The nameless header line carries only args; snapshot rows are full
    // records.
    R.Name = strOrEmpty(Obj, "name");
    R.Category = strOrEmpty(Obj, "cat");
    R.Ts = numOr0(Obj, "ts");
    argsFromJson(Obj.find("args"), R.Args);
    return true;
  }
  if (Kind == "instant")
    R.RecordKind = TraceRecord::Kind::Instant;
  else if (Kind == "span")
    R.RecordKind = TraceRecord::Kind::Span;
  else if (Kind == "counter")
    R.RecordKind = TraceRecord::Kind::Counter;
  else
    return false;
  R.Name = strOrEmpty(Obj, "name");
  R.Category = strOrEmpty(Obj, "cat");
  R.Ts = numOr0(Obj, "ts");
  if (R.RecordKind == TraceRecord::Kind::Span)
    R.Dur = numOr0(Obj, "dur");
  if (R.RecordKind == TraceRecord::Kind::Counter) {
    const JsonValue *V = Obj.find("value");
    R.Value = V && V->kind() == JsonValue::Kind::Number ? V->asNumber() : 0;
  }
  argsFromJson(Obj.find("args"), R.Args);
  return true;
}

/// Decodes one Chrome trace-event object; false when the shape is wrong.
bool decodeChromeObject(const JsonValue &Obj, TraceRecord &R) {
  const std::string Ph = strOrEmpty(Obj, "ph");
  R = TraceRecord();
  R.Name = strOrEmpty(Obj, "name");
  R.Category = strOrEmpty(Obj, "cat");
  R.Ts = numOr0(Obj, "ts");
  if (Ph == "M") {
    R.RecordKind = TraceRecord::Kind::Meta;
    // The provenance header is the conventional "zam_build" metadata
    // event; readers surface it as the nameless header record.
    if (R.Name == "zam_build") {
      R.Name.clear();
      R.Category.clear();
      R.Ts = 0;
    }
    argsFromJson(Obj.find("args"), R.Args);
    return true;
  }
  if (Ph == "X") {
    R.RecordKind = TraceRecord::Kind::Span;
    R.Dur = numOr0(Obj, "dur");
    argsFromJson(Obj.find("args"), R.Args);
    return true;
  }
  if (Ph == "C") {
    R.RecordKind = TraceRecord::Kind::Counter;
    const JsonValue *Args = Obj.find("args");
    const JsonValue *V = Args ? Args->find("value") : nullptr;
    R.Value = V && V->kind() == JsonValue::Kind::Number ? V->asNumber() : 0;
    return true;
  }
  if (Ph == "i") {
    R.RecordKind = TraceRecord::Kind::Instant;
    argsFromJson(Obj.find("args"), R.Args);
    return true;
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// JSONL
//===----------------------------------------------------------------------===//

JsonlTraceReader::JsonlTraceReader(std::FILE *F, bool TakeOwnership)
    : F(F), Owns(TakeOwnership) {}

JsonlTraceReader::~JsonlTraceReader() {
  if (Owns && F)
    std::fclose(F);
}

bool JsonlTraceReader::next(TraceRecord &R) {
  if (!ok())
    return false;
  while (readLine(F, Line)) {
    if (Line.empty())
      continue;
    std::optional<JsonValue> Obj = JsonValue::parse(Line);
    if (!Obj || Obj->kind() != JsonValue::Kind::Object ||
        !decodeJsonlObject(*Obj, R)) {
      fail("malformed JSONL record: " +
           (Line.size() > 80 ? Line.substr(0, 80) + "..." : Line));
      return false;
    }
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Chrome trace-event array
//===----------------------------------------------------------------------===//

ChromeTraceReader::ChromeTraceReader(std::FILE *F, bool TakeOwnership)
    : F(F), Owns(TakeOwnership) {}

ChromeTraceReader::~ChromeTraceReader() {
  if (Owns && F)
    std::fclose(F);
}

bool ChromeTraceReader::next(TraceRecord &R) {
  if (Done || !ok())
    return false;
  if (!SawOpen) {
    if (!readLine(F, Line)) {
      fail("empty Chrome trace");
      return false;
    }
    if (Line == "[]") {
      Done = true;
      return false;
    }
    if (Line != "[") {
      fail("expected '[' opening the Chrome trace array");
      return false;
    }
    SawOpen = true;
  }
  while (readLine(F, Line)) {
    if (Line == "]") {
      Done = true;
      return false;
    }
    std::string Text = Line;
    if (!Text.empty() && Text.back() == ',')
      Text.pop_back();
    if (Text.empty())
      continue;
    std::optional<JsonValue> Obj = JsonValue::parse(Text);
    if (!Obj || Obj->kind() != JsonValue::Kind::Object ||
        !decodeChromeObject(*Obj, R)) {
      fail("malformed Chrome trace event: " +
           (Text.size() > 80 ? Text.substr(0, 80) + "..." : Text));
      return false;
    }
    return true;
  }
  fail("unterminated Chrome trace array");
  return false;
}

//===----------------------------------------------------------------------===//
// ZTB binary
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t kMaxRecordBytes = uint64_t(1) << 24;
constexpr uint64_t kMaxHeaderPairs = 4096;
constexpr uint64_t kMaxHeaderStringBytes = uint64_t(1) << 16;
constexpr uint64_t kMaxArgs = 4096;

bool pVarint(const char *&P, const char *E, uint64_t &V) {
  V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    if (P == E)
      return false;
    const unsigned char B = static_cast<unsigned char>(*P++);
    V |= uint64_t(B & 0x7F) << Shift;
    if (!(B & 0x80))
      return true;
  }
  return false;
}

bool pString(const char *&P, const char *E, std::string &S) {
  uint64_t Len = 0;
  if (!pVarint(P, E, Len) || Len > static_cast<uint64_t>(E - P))
    return false;
  S.assign(P, static_cast<size_t>(Len));
  P += Len;
  return true;
}

/// Decodes one record payload; false on any malformed field.
bool decodeZtbPayload(const std::string &Payload, TraceRecord &R) {
  const char *P = Payload.data();
  const char *E = P + Payload.size();
  if (P == E)
    return false;
  R = TraceRecord();
  switch (static_cast<unsigned char>(*P++)) {
  case ztb::KindInstant:
    R.RecordKind = TraceRecord::Kind::Instant;
    break;
  case ztb::KindSpan:
    R.RecordKind = TraceRecord::Kind::Span;
    break;
  case ztb::KindCounter:
    R.RecordKind = TraceRecord::Kind::Counter;
    break;
  case ztb::KindMeta:
    R.RecordKind = TraceRecord::Kind::Meta;
    break;
  default:
    return false;
  }
  if (!pString(P, E, R.Name) || !pString(P, E, R.Category) ||
      !pVarint(P, E, R.Ts))
    return false;
  if (R.RecordKind == TraceRecord::Kind::Span && !pVarint(P, E, R.Dur))
    return false;
  if (R.RecordKind == TraceRecord::Kind::Counter) {
    if (E - P < 8)
      return false;
    uint64_t Bits = 0;
    for (int I = 0; I != 8; ++I)
      Bits |= uint64_t(static_cast<unsigned char>(P[I])) << (8 * I);
    P += 8;
    std::memcpy(&R.Value, &Bits, sizeof(R.Value));
  }
  uint64_t ArgCount = 0;
  if (!pVarint(P, E, ArgCount) || ArgCount > kMaxArgs)
    return false;
  R.Args.reserve(static_cast<size_t>(ArgCount));
  for (uint64_t I = 0; I != ArgCount; ++I) {
    std::string Key, Value;
    if (!pString(P, E, Key) || !pString(P, E, Value))
      return false;
    R.Args.emplace_back(std::move(Key), std::move(Value));
  }
  return P == E;
}

} // namespace

ZtbTraceReader::ZtbTraceReader(std::FILE *F, bool TakeOwnership)
    : F(F), Owns(TakeOwnership), Buf(1 << 16) {}

ZtbTraceReader::~ZtbTraceReader() {
  if (Owns && F)
    std::fclose(F);
}

bool ZtbTraceReader::refill() {
  Pos = 0;
  End = std::fread(Buf.data(), 1, Buf.size(), F);
  return End != 0;
}

int ZtbTraceReader::getByte() {
  if (Pos == End && !refill())
    return -1;
  return static_cast<unsigned char>(Buf[Pos++]);
}

int ZtbTraceReader::peekByte() {
  if (Pos == End && !refill())
    return -1;
  return static_cast<unsigned char>(Buf[Pos]);
}

bool ZtbTraceReader::readVarint(uint64_t &V) {
  V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    const int B = getByte();
    if (B < 0)
      return false;
    V |= uint64_t(B & 0x7F) << Shift;
    if (!(B & 0x80))
      return true;
  }
  return false;
}

bool ZtbTraceReader::readHeaderVarint(uint64_t &V) {
  if (readVarint(V))
    return true;
  // readVarint fails either at EOF mid-varint (a truncated stream) or on
  // a 10-byte runaway (corrupt framing); tell the two apart so truncation
  // never masquerades as corruption.
  fail(peekByte() < 0 ? "truncated ZTB header (unterminated varint)"
                      : "malformed ZTB header varint");
  return false;
}

bool ZtbTraceReader::readPreamble() {
  SawPreamble = true;
  char Magic[4];
  for (char &C : Magic) {
    const int B = getByte();
    if (B < 0) {
      fail("truncated ZTB preamble");
      return false;
    }
    C = static_cast<char>(B);
  }
  if (std::memcmp(Magic, ztb::Magic, sizeof(Magic)) != 0) {
    fail("not a ZTB stream (bad magic)");
    return false;
  }
  const int Ver = getByte();
  if (Ver < 0) {
    // EOF right after the magic: a truncation, not a version mismatch.
    fail("truncated ZTB preamble (missing version byte)");
    return false;
  }
  if (Ver > ztb::Version) {
    fail("unsupported ZTB version " + std::to_string(Ver));
    return false;
  }
  uint64_t Pairs = 0;
  if (!readHeaderVarint(Pairs))
    return false;
  if (Pairs > kMaxHeaderPairs) {
    fail("malformed ZTB header (implausible pair count)");
    return false;
  }
  Header = TraceRecord();
  Header.RecordKind = TraceRecord::Kind::Meta;
  for (uint64_t I = 0; I != Pairs; ++I) {
    uint64_t KeyLen = 0, ValLen = 0;
    std::string Key, Value;
    if (!readHeaderVarint(KeyLen))
      return false;
    // Cap strings well below the record limit so a corrupt length can't
    // preallocate megabytes before the EOF check fires.
    if (KeyLen > kMaxHeaderStringBytes) {
      fail("malformed ZTB header (implausible string length)");
      return false;
    }
    Key.resize(static_cast<size_t>(KeyLen));
    for (char &C : Key) {
      const int B = getByte();
      if (B < 0) {
        fail("truncated ZTB header");
        return false;
      }
      C = static_cast<char>(B);
    }
    if (!readHeaderVarint(ValLen))
      return false;
    if (ValLen > kMaxHeaderStringBytes) {
      fail("malformed ZTB header (implausible string length)");
      return false;
    }
    Value.resize(static_cast<size_t>(ValLen));
    for (char &C : Value) {
      const int B = getByte();
      if (B < 0) {
        fail("truncated ZTB header");
        return false;
      }
      C = static_cast<char>(B);
    }
    Header.Args.emplace_back(std::move(Key), std::move(Value));
  }
  HeaderPending = !Header.Args.empty();
  return true;
}

bool ZtbTraceReader::resync() {
  size_t Matched = 0;
  for (;;) {
    const int C = getByte();
    if (C < 0)
      return false;
    if (static_cast<unsigned char>(C) == ztb::FrameMarker[Matched]) {
      if (++Matched == sizeof(ztb::FrameMarker))
        return true;
    } else {
      Matched =
          static_cast<unsigned char>(C) == ztb::FrameMarker[0] ? 1 : 0;
    }
  }
}

bool ZtbTraceReader::next(TraceRecord &R) {
  if (!SawPreamble) {
    if (!readPreamble()) {
      Dead = true;
      return false;
    }
  }
  if (Dead)
    return false;
  if (HeaderPending) {
    HeaderPending = false;
    R = Header;
    return true;
  }
  for (;;) {
    const int Lead = peekByte();
    if (Lead < 0)
      return false; // Clean EOF at a record boundary.
    if (Lead == 0x00) {
      // A frame marker; verify all 8 bytes.
      bool Good = true;
      for (size_t I = 0; I != sizeof(ztb::FrameMarker); ++I) {
        const int C = getByte();
        if (C < 0) {
          fail("truncated frame marker");
          return false;
        }
        if (static_cast<unsigned char>(C) != ztb::FrameMarker[I]) {
          Good = false;
          break;
        }
      }
      if (!Good) {
        fail("bad frame marker; resynchronizing");
        if (!resync())
          return false;
      }
      continue;
    }
    uint64_t Len = 0;
    if (!readVarint(Len)) {
      fail("truncated record length");
      return false;
    }
    if (Len == 0 || Len > kMaxRecordBytes) {
      fail("implausible record length; resynchronizing");
      if (!resync())
        return false;
      continue;
    }
    Payload.resize(static_cast<size_t>(Len));
    size_t Got = 0;
    while (Got != Len) {
      if (Pos == End && !refill()) {
        fail("truncated record");
        return false;
      }
      const size_t N =
          std::min(static_cast<size_t>(Len) - Got, End - Pos);
      std::memcpy(&Payload[Got], Buf.data() + Pos, N);
      Pos += N;
      Got += N;
    }
    if (decodeZtbPayload(Payload, R))
      return true;
    fail("malformed record payload; resynchronizing");
    if (!resync())
      return false;
  }
}

//===----------------------------------------------------------------------===//
// Format sniffing
//===----------------------------------------------------------------------===//

std::unique_ptr<TraceReader> zam::openTraceReader(const std::string &Path,
                                                  std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open '" + Path + "'";
    return nullptr;
  }
  char Magic[4] = {0, 0, 0, 0};
  const size_t N = std::fread(Magic, 1, sizeof(Magic), F);
  std::rewind(F);
  if (N == sizeof(Magic) &&
      std::memcmp(Magic, ztb::Magic, sizeof(Magic)) == 0)
    return std::make_unique<ZtbTraceReader>(F, /*TakeOwnership=*/true);
  // Text: the first non-whitespace byte decides array vs. lines.
  int C;
  while ((C = std::fgetc(F)) != EOF &&
         (C == ' ' || C == '\t' || C == '\r' || C == '\n'))
    ;
  std::rewind(F);
  if (C == '[')
    return std::make_unique<ChromeTraceReader>(F, /*TakeOwnership=*/true);
  return std::make_unique<JsonlTraceReader>(F, /*TakeOwnership=*/true);
}
