//===- TraceSink.cpp ------------------------------------------------------===//

#include "obs/TraceSink.h"

#include <cctype>
#include <cstdio>

using namespace zam;

ByteSink::~ByteSink() = default;

TraceSink::TraceSink()
    : Owned(std::make_unique<StringByteSink>()), Sink(Owned.get()) {}

TraceSink::TraceSink(ByteSink &Sink) : Sink(&Sink) {}

TraceSink::~TraceSink() = default;

void TraceSink::header(
    const std::vector<std::pair<std::string, std::string>> &Meta) {
  (void)Meta; // Sinks without a preamble representation drop it.
}

const std::string &TraceSink::finish() {
  close();
  static const std::string Empty;
  return Owned ? Owned->str() : Empty;
}

namespace {

/// Appends \p S to \p Out as a quoted JSON string.
void appendQuoted(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendArgs(std::string &Out,
                const std::vector<std::pair<std::string, std::string>> &Args) {
  Out += '{';
  bool First = true;
  for (const auto &[Key, Value] : Args) {
    if (!First)
      Out += ',';
    First = false;
    appendQuoted(Out, Key);
    Out += ':';
    if (traceArgIsNumberLiteral(Value))
      Out += Value;
    else
      appendQuoted(Out, Value);
  }
  Out += '}';
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  Out += Buf;
}

void appendDouble(std::string &Out, double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

} // namespace

/// Args values that read as JSON number literals — an optional sign,
/// digits, then optional fraction and exponent parts — are emitted bare;
/// everything else is quoted. Covers the integers the producers printf and
/// the doubles they format via jsonNumberString ("3.5849625007211563",
/// "1e+20"); "inf"/"nan" fail the test and stay quoted strings.
bool zam::traceArgIsNumberLiteral(const std::string &S) {
  size_t I = !S.empty() && S[0] == '-' ? 1 : 0;
  size_t Digits = 0;
  while (I != S.size() && std::isdigit(static_cast<unsigned char>(S[I]))) {
    ++I;
    ++Digits;
  }
  if (Digits == 0)
    return false;
  if (I != S.size() && S[I] == '.') {
    ++I;
    Digits = 0;
    while (I != S.size() && std::isdigit(static_cast<unsigned char>(S[I]))) {
      ++I;
      ++Digits;
    }
    if (Digits == 0)
      return false;
  }
  if (I != S.size() && (S[I] == 'e' || S[I] == 'E')) {
    ++I;
    if (I != S.size() && (S[I] == '+' || S[I] == '-'))
      ++I;
    Digits = 0;
    while (I != S.size() && std::isdigit(static_cast<unsigned char>(S[I]))) {
      ++I;
      ++Digits;
    }
    if (Digits == 0)
      return false;
  }
  return I == S.size();
}

void JsonlTraceSink::header(
    const std::vector<std::pair<std::string, std::string>> &Meta) {
  Scratch.clear();
  Scratch += "{\"kind\":\"meta\",\"args\":";
  appendArgs(Scratch, Meta);
  Scratch += "}\n";
  emit(Scratch);
}

void JsonlTraceSink::record(const TraceRecord &R) {
  Scratch.clear();
  Scratch += "{\"kind\":";
  switch (R.RecordKind) {
  case TraceRecord::Kind::Instant:
    Scratch += "\"instant\"";
    break;
  case TraceRecord::Kind::Span:
    Scratch += "\"span\"";
    break;
  case TraceRecord::Kind::Counter:
    Scratch += "\"counter\"";
    break;
  case TraceRecord::Kind::Meta:
    // Mid-stream metadata (metrics snapshots). Distinguished from the
    // nameless header line by the presence of "name".
    Scratch += "\"meta\"";
    break;
  }
  Scratch += ",\"name\":";
  appendQuoted(Scratch, R.Name);
  Scratch += ",\"cat\":";
  appendQuoted(Scratch, R.Category);
  Scratch += ",\"ts\":";
  appendU64(Scratch, R.Ts);
  if (R.RecordKind == TraceRecord::Kind::Span) {
    Scratch += ",\"dur\":";
    appendU64(Scratch, R.Dur);
  }
  if (R.RecordKind == TraceRecord::Kind::Counter) {
    Scratch += ",\"value\":";
    appendDouble(Scratch, R.Value);
  }
  if (!R.Args.empty()) {
    Scratch += ",\"args\":";
    appendArgs(Scratch, R.Args);
  }
  Scratch += "}\n";
  emit(Scratch);
}

unsigned ChromeTraceSink::tidFor(const std::string &Category) {
  for (unsigned I = 0; I != Categories.size(); ++I)
    if (Categories[I] == Category)
      return I + 1;
  Categories.push_back(Category);
  return Categories.size();
}

void ChromeTraceSink::header(
    const std::vector<std::pair<std::string, std::string>> &Meta) {
  // A trace-event metadata record: ph "M" carries no timeline semantics,
  // so viewers show the provenance without perturbing the rows.
  Scratch.clear();
  Scratch += First ? "[\n" : ",\n";
  First = false;
  Scratch += "{\"name\":\"zam_build\",\"cat\":\"meta\",\"ph\":\"M\",\"pid\":1,"
             "\"tid\":0,\"ts\":0,\"args\":";
  appendArgs(Scratch, Meta);
  Scratch += '}';
  emit(Scratch);
}

void ChromeTraceSink::record(const TraceRecord &R) {
  Scratch.clear();
  Scratch += First ? "[\n" : ",\n";
  First = false;
  Scratch += "{\"name\":";
  appendQuoted(Scratch, R.Name);
  Scratch += ",\"cat\":";
  appendQuoted(Scratch, R.Category);
  switch (R.RecordKind) {
  case TraceRecord::Kind::Instant:
    Scratch += ",\"ph\":\"i\",\"s\":\"t\"";
    break;
  case TraceRecord::Kind::Span:
    Scratch += ",\"ph\":\"X\"";
    break;
  case TraceRecord::Kind::Counter:
    Scratch += ",\"ph\":\"C\"";
    break;
  case TraceRecord::Kind::Meta:
    Scratch += ",\"ph\":\"M\"";
    break;
  }
  Scratch += ",\"pid\":1,\"tid\":";
  // Metadata rows carry no timeline semantics, so they stay off the
  // category rows (tid 0, like the provenance header).
  appendU64(Scratch,
            R.RecordKind == TraceRecord::Kind::Meta ? 0 : tidFor(R.Category));
  Scratch += ",\"ts\":";
  appendU64(Scratch, R.Ts);
  if (R.RecordKind == TraceRecord::Kind::Span) {
    Scratch += ",\"dur\":";
    appendU64(Scratch, R.Dur);
  }
  if (R.RecordKind == TraceRecord::Kind::Counter) {
    Scratch += ",\"args\":{\"value\":";
    appendDouble(Scratch, R.Value);
    Scratch += '}';
  } else if (!R.Args.empty()) {
    Scratch += ",\"args\":";
    appendArgs(Scratch, R.Args);
  }
  Scratch += '}';
  emit(Scratch);
}

void ChromeTraceSink::close() {
  if (Closed)
    return;
  Closed = true;
  Scratch.clear();
  Scratch += First ? "[]\n" : "\n]\n";
  emit(Scratch);
}
