//===- TraceSink.cpp ------------------------------------------------------===//

#include "obs/TraceSink.h"

#include <cctype>
#include <cstdio>

using namespace zam;

TraceSink::~TraceSink() = default;

void TraceSink::header(
    const std::vector<std::pair<std::string, std::string>> &Meta) {
  (void)Meta; // Sinks without a preamble representation drop it.
}

namespace {

/// Appends \p S to \p Out as a quoted JSON string.
void appendQuoted(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

/// Args values that read as JSON number literals — an optional sign,
/// digits, then optional fraction and exponent parts — are emitted bare;
/// everything else is quoted. Covers the integers the producers printf and
/// the doubles they format via jsonNumberString ("3.5849625007211563",
/// "1e+20"); "inf"/"nan" fail the test and stay quoted strings.
bool isNumberLiteral(const std::string &S) {
  size_t I = !S.empty() && S[0] == '-' ? 1 : 0;
  size_t Digits = 0;
  while (I != S.size() && std::isdigit(static_cast<unsigned char>(S[I]))) {
    ++I;
    ++Digits;
  }
  if (Digits == 0)
    return false;
  if (I != S.size() && S[I] == '.') {
    ++I;
    Digits = 0;
    while (I != S.size() && std::isdigit(static_cast<unsigned char>(S[I]))) {
      ++I;
      ++Digits;
    }
    if (Digits == 0)
      return false;
  }
  if (I != S.size() && (S[I] == 'e' || S[I] == 'E')) {
    ++I;
    if (I != S.size() && (S[I] == '+' || S[I] == '-'))
      ++I;
    Digits = 0;
    while (I != S.size() && std::isdigit(static_cast<unsigned char>(S[I]))) {
      ++I;
      ++Digits;
    }
    if (Digits == 0)
      return false;
  }
  return I == S.size();
}

void appendArgs(std::string &Out,
                const std::vector<std::pair<std::string, std::string>> &Args) {
  Out += '{';
  bool First = true;
  for (const auto &[Key, Value] : Args) {
    if (!First)
      Out += ',';
    First = false;
    appendQuoted(Out, Key);
    Out += ':';
    if (isNumberLiteral(Value))
      Out += Value;
    else
      appendQuoted(Out, Value);
  }
  Out += '}';
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  Out += Buf;
}

void appendDouble(std::string &Out, double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

} // namespace

void JsonlTraceSink::header(
    const std::vector<std::pair<std::string, std::string>> &Meta) {
  Out += "{\"kind\":\"meta\",\"args\":";
  appendArgs(Out, Meta);
  Out += "}\n";
}

void JsonlTraceSink::record(const TraceRecord &R) {
  Out += "{\"kind\":";
  switch (R.RecordKind) {
  case TraceRecord::Kind::Instant:
    Out += "\"instant\"";
    break;
  case TraceRecord::Kind::Span:
    Out += "\"span\"";
    break;
  case TraceRecord::Kind::Counter:
    Out += "\"counter\"";
    break;
  }
  Out += ",\"name\":";
  appendQuoted(Out, R.Name);
  Out += ",\"cat\":";
  appendQuoted(Out, R.Category);
  Out += ",\"ts\":";
  appendU64(Out, R.Ts);
  if (R.RecordKind == TraceRecord::Kind::Span) {
    Out += ",\"dur\":";
    appendU64(Out, R.Dur);
  }
  if (R.RecordKind == TraceRecord::Kind::Counter) {
    Out += ",\"value\":";
    appendDouble(Out, R.Value);
  }
  if (!R.Args.empty()) {
    Out += ",\"args\":";
    appendArgs(Out, R.Args);
  }
  Out += "}\n";
}

unsigned ChromeTraceSink::tidFor(const std::string &Category) {
  for (unsigned I = 0; I != Categories.size(); ++I)
    if (Categories[I] == Category)
      return I + 1;
  Categories.push_back(Category);
  return Categories.size();
}

void ChromeTraceSink::header(
    const std::vector<std::pair<std::string, std::string>> &Meta) {
  // A trace-event metadata record: ph "M" carries no timeline semantics,
  // so viewers show the provenance without perturbing the rows.
  Out += First ? "[\n" : ",\n";
  First = false;
  Out += "{\"name\":\"zam_build\",\"cat\":\"meta\",\"ph\":\"M\",\"pid\":1,"
         "\"tid\":0,\"ts\":0,\"args\":";
  appendArgs(Out, Meta);
  Out += '}';
}

void ChromeTraceSink::record(const TraceRecord &R) {
  Out += First ? "[\n" : ",\n";
  First = false;
  Out += "{\"name\":";
  appendQuoted(Out, R.Name);
  Out += ",\"cat\":";
  appendQuoted(Out, R.Category);
  switch (R.RecordKind) {
  case TraceRecord::Kind::Instant:
    Out += ",\"ph\":\"i\",\"s\":\"t\"";
    break;
  case TraceRecord::Kind::Span:
    Out += ",\"ph\":\"X\"";
    break;
  case TraceRecord::Kind::Counter:
    Out += ",\"ph\":\"C\"";
    break;
  }
  Out += ",\"pid\":1,\"tid\":";
  appendU64(Out, tidFor(R.Category));
  Out += ",\"ts\":";
  appendU64(Out, R.Ts);
  if (R.RecordKind == TraceRecord::Kind::Span) {
    Out += ",\"dur\":";
    appendU64(Out, R.Dur);
  }
  if (R.RecordKind == TraceRecord::Kind::Counter) {
    Out += ",\"args\":{\"value\":";
    appendDouble(Out, R.Value);
    Out += '}';
  } else if (!R.Args.empty()) {
    Out += ",\"args\":";
    appendArgs(Out, R.Args);
  }
  Out += '}';
}

const std::string &ChromeTraceSink::finish() {
  if (!Finished) {
    Out += First ? "[]\n" : "\n]\n";
    Finished = true;
  }
  return Out;
}
