//===- Json.cpp -----------------------------------------------------------===//

#include "obs/Json.h"

#include "support/Diagnostics.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace zam;

void JsonValue::push(JsonValue V) {
  if (K == Kind::Null)
    K = Kind::Array;
  if (K != Kind::Array)
    reportFatalError("push() on a non-array JSON value");
  Items.push_back(std::move(V));
}

JsonValue &JsonValue::operator[](const std::string &Key) {
  if (K == Kind::Null)
    K = Kind::Object;
  if (K != Kind::Object)
    reportFatalError("operator[] on a non-object JSON value");
  for (auto &[Name, Value] : Members)
    if (Name == Key)
      return Value;
  Members.emplace_back(Key, JsonValue());
  return Members.back().second;
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

bool JsonValue::operator==(const JsonValue &Other) const {
  if (K != Other.K)
    return false;
  switch (K) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return BoolV == Other.BoolV;
  case Kind::Number:
    return NumV == Other.NumV;
  case Kind::String:
    return StrV == Other.StrV;
  case Kind::Array:
    return Items == Other.Items;
  case Kind::Object:
    return Members == Other.Members;
  }
  return false;
}

static void escapeString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

static void formatNumber(std::string &Out, double V, bool IsInt) {
  char Buf[40];
  if (IsInt && std::nearbyint(V) == V && std::fabs(V) < 9.2e18) {
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    Out += Buf;
    return;
  }
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  // Trim to the shortest representation that round-trips.
  for (int Prec = 1; Prec < 17; ++Prec) {
    char Short[40];
    std::snprintf(Short, sizeof(Short), "%.*g", Prec, V);
    if (std::strtod(Short, nullptr) == V) {
      Out += Short;
      return;
    }
  }
  Out += Buf;
}

std::string zam::jsonNumberString(double V) {
  std::string Out;
  formatNumber(Out, V, /*IsInt=*/false);
  return Out;
}

void JsonValue::dumpTo(std::string &Out, unsigned Depth) const {
  const std::string Pad(2 * (Depth + 1), ' ');
  const std::string Close(2 * Depth, ' ');
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Number:
    formatNumber(Out, NumV, IsInt);
    break;
  case Kind::String:
    escapeString(Out, StrV);
    break;
  case Kind::Array: {
    if (Items.empty()) {
      Out += "[]";
      break;
    }
    // Scalar-only arrays (series values) stay on one line for readability.
    bool Nested = false;
    for (const JsonValue &V : Items)
      Nested |= V.K == Kind::Array || V.K == Kind::Object;
    Out += '[';
    for (size_t I = 0; I != Items.size(); ++I) {
      if (Nested) {
        Out += '\n';
        Out += Pad;
      } else if (I) {
        Out += ' ';
      }
      Items[I].dumpTo(Out, Depth + 1);
      if (I + 1 != Items.size())
        Out += ',';
    }
    if (Nested) {
      Out += '\n';
      Out += Close;
    }
    Out += ']';
    break;
  }
  case Kind::Object: {
    if (Members.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t I = 0; I != Members.size(); ++I) {
      Out += '\n';
      Out += Pad;
      escapeString(Out, Members[I].first);
      Out += ": ";
      Members[I].second.dumpTo(Out, Depth + 1);
      if (I + 1 != Members.size())
        Out += ',';
    }
    Out += '\n';
    Out += Close;
    Out += '}';
    break;
  }
  }
}

std::string JsonValue::dump() const {
  std::string Out;
  dumpTo(Out, 0);
  Out += '\n';
  return Out;
}

namespace {

/// Recursive-descent parser over the grammar dump() emits (which is all of
/// JSON except exotic escapes).
class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text.c_str()) {}

  std::optional<JsonValue> parse() {
    std::optional<JsonValue> V = value();
    skipWs();
    if (!V || *S != '\0')
      return std::nullopt;
    return V;
  }

private:
  void skipWs() {
    while (*S == ' ' || *S == '\n' || *S == '\t' || *S == '\r')
      ++S;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (std::strncmp(S, Word, Len) != 0)
      return false;
    S += Len;
    return true;
  }

  std::optional<std::string> string() {
    if (*S != '"')
      return std::nullopt;
    ++S;
    std::string Out;
    while (*S && *S != '"') {
      if (*S == '\\') {
        ++S;
        switch (*S) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            ++S;
            if (!std::isxdigit(static_cast<unsigned char>(*S)))
              return std::nullopt;
            Code = Code * 16 + (std::isdigit(static_cast<unsigned char>(*S))
                                    ? *S - '0'
                                    : (std::tolower(*S) - 'a' + 10));
          }
          // Only the BMP-in-ASCII escapes we emit.
          Out += static_cast<char>(Code);
          break;
        }
        default:
          return std::nullopt;
        }
        ++S;
      } else {
        Out += *S++;
      }
    }
    if (*S != '"')
      return std::nullopt;
    ++S;
    return Out;
  }

  std::optional<JsonValue> value() {
    skipWs();
    if (literal("null"))
      return JsonValue();
    if (literal("true"))
      return JsonValue(true);
    if (literal("false"))
      return JsonValue(false);
    if (*S == '"') {
      std::optional<std::string> Str = string();
      if (!Str)
        return std::nullopt;
      return JsonValue(std::move(*Str));
    }
    if (*S == '[') {
      ++S;
      JsonValue Arr = JsonValue::array();
      skipWs();
      if (*S == ']') {
        ++S;
        return Arr;
      }
      while (true) {
        std::optional<JsonValue> Elem = value();
        if (!Elem)
          return std::nullopt;
        Arr.push(std::move(*Elem));
        skipWs();
        if (*S == ',') {
          ++S;
          continue;
        }
        if (*S == ']') {
          ++S;
          return Arr;
        }
        return std::nullopt;
      }
    }
    if (*S == '{') {
      ++S;
      JsonValue Obj = JsonValue::object();
      skipWs();
      if (*S == '}') {
        ++S;
        return Obj;
      }
      while (true) {
        skipWs();
        std::optional<std::string> Key = string();
        if (!Key)
          return std::nullopt;
        skipWs();
        if (*S != ':')
          return std::nullopt;
        ++S;
        std::optional<JsonValue> Member = value();
        if (!Member)
          return std::nullopt;
        Obj[*Key] = std::move(*Member);
        skipWs();
        if (*S == ',') {
          ++S;
          continue;
        }
        if (*S == '}') {
          ++S;
          return Obj;
        }
        return std::nullopt;
      }
    }
    // Number.
    char *End = nullptr;
    double V = std::strtod(S, &End);
    if (End == S)
      return std::nullopt;
    bool IsInt = true;
    for (const char *P = S; P != End; ++P)
      if (*P == '.' || *P == 'e' || *P == 'E')
        IsInt = false;
    S = End;
    if (IsInt && std::fabs(V) < 9.2e18)
      return JsonValue(static_cast<int64_t>(V));
    return JsonValue(V);
  }

  const char *S;
};

} // namespace

std::optional<JsonValue> JsonValue::parse(const std::string &Text) {
  return Parser(Text).parse();
}
