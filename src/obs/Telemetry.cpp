//===- Telemetry.cpp ------------------------------------------------------===//

#include "obs/Telemetry.h"

#include "obs/CostLedger.h"
#include "obs/LeakAudit.h"
#include "obs/Ztb.h"
#include "support/BuildInfo.h"

#include <algorithm>
#include <cstdio>

using namespace zam;

static void collectLevel(MetricsRegistry &Reg, const std::string &Prefix,
                         const char *Name, const CacheLevelStats &S) {
  const std::string Base = Prefix + "hw." + Name + ".";
  Reg.setCounter(Base + "hits", S.Hits);
  Reg.setCounter(Base + "misses", S.Misses);
  Reg.setCounter(Base + "evictions", S.Evictions);
  Reg.setCounter(Base + "writebacks", S.Writebacks);
  Reg.setCounter(Base + "line_fills", S.LineFills);
}

void zam::collectHwMetrics(MetricsRegistry &Reg, const HwStats &Hw,
                           const std::string &Prefix) {
  collectLevel(Reg, Prefix, "l1d", Hw.L1D);
  collectLevel(Reg, Prefix, "l2d", Hw.L2D);
  collectLevel(Reg, Prefix, "l1i", Hw.L1I);
  collectLevel(Reg, Prefix, "l2i", Hw.L2I);
  collectLevel(Reg, Prefix, "dtlb", Hw.DTlb);
  collectLevel(Reg, Prefix, "itlb", Hw.ITlb);
}

void zam::collectTraceMetrics(MetricsRegistry &Reg, const Trace &T,
                              const SecurityLattice &Lat,
                              const std::string &Prefix) {
  Reg.setCounter(Prefix + "interp.steps", T.Steps);
  Reg.setCounter(Prefix + "interp.assignments", T.Ops.Assignments);
  Reg.setCounter(Prefix + "interp.branches", T.Ops.Branches);
  Reg.setCounter(Prefix + "interp.mitigate_entries", T.Ops.MitigateEntries);
  Reg.setCounter(Prefix + "interp.events", T.Events.size());
  Reg.setCounter(Prefix + "interp.final_time_cycles", T.FinalTime);

  uint64_t Mispredictions = 0, PaddedIdle = 0;
  for (const MitigateRecord &R : T.Mitigations) {
    if (R.Mispredicted)
      ++Mispredictions;
    if (R.Duration > R.BodyTime)
      PaddedIdle += R.Duration - R.BodyTime;
  }
  Reg.setCounter(Prefix + "mit.predictions", T.Mitigations.size());
  Reg.setCounter(Prefix + "mit.mispredictions", Mispredictions);
  Reg.setCounter(Prefix + "mit.padded_idle_cycles", PaddedIdle);
  for (size_t I = 0; I != T.FinalMissTable.size(); ++I)
    Reg.setCounter(Prefix + "mit.miss_table." +
                       Lat.name(Label::fromIndex(static_cast<unsigned>(I))),
                   T.FinalMissTable[I]);
}

void zam::collectRunMetrics(MetricsRegistry &Reg, const Trace &T,
                            const HwStats &Hw, const SecurityLattice &Lat,
                            const std::string &Prefix) {
  collectTraceMetrics(Reg, T, Lat, Prefix);
  collectHwMetrics(Reg, Hw, Prefix);
}

std::optional<TraceFormat> zam::parseTraceFormat(const std::string &Name) {
  if (Name == "jsonl")
    return TraceFormat::Jsonl;
  if (Name == "chrome")
    return TraceFormat::Chrome;
  if (Name == "ztb")
    return TraceFormat::Ztb;
  return std::nullopt;
}

std::optional<TraceFormat> zam::inferTraceFormat(const std::string &Path) {
  const size_t Dot = Path.rfind('.');
  if (Dot == std::string::npos)
    return std::nullopt;
  const std::string Ext = Path.substr(Dot);
  if (Ext == ".jsonl")
    return TraceFormat::Jsonl;
  if (Ext == ".json")
    return TraceFormat::Chrome;
  if (Ext == ".ztb")
    return TraceFormat::Ztb;
  return std::nullopt;
}

const char *zam::traceFormatName(TraceFormat Format) {
  switch (Format) {
  case TraceFormat::Jsonl:
    return "jsonl";
  case TraceFormat::Chrome:
    return "chrome";
  case TraceFormat::Ztb:
    return "ztb";
  }
  return "?";
}

std::unique_ptr<TraceSink> zam::makeTraceSink(TraceFormat Format) {
  switch (Format) {
  case TraceFormat::Jsonl:
    return std::make_unique<JsonlTraceSink>();
  case TraceFormat::Chrome:
    return std::make_unique<ChromeTraceSink>();
  case TraceFormat::Ztb:
    return std::make_unique<ZtbTraceSink>();
  }
  return nullptr;
}

std::unique_ptr<TraceSink> zam::makeTraceSink(TraceFormat Format,
                                              ByteSink &Out) {
  switch (Format) {
  case TraceFormat::Jsonl:
    return std::make_unique<JsonlTraceSink>(Out);
  case TraceFormat::Chrome:
    return std::make_unique<ChromeTraceSink>(Out);
  case TraceFormat::Ztb:
    return std::make_unique<ZtbTraceSink>(Out);
  }
  return nullptr;
}

static std::string hexAddr(Addr A) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "0x%llx", static_cast<unsigned long long>(A));
  return Buf;
}

size_t zam::exportTrace(TraceSink &Sink, const Trace &T,
                        const SecurityLattice &Lat,
                        const TraceExportOptions &Opts) {
  std::vector<TraceRecord> Records;

  if (Opts.IncludeEvents)
    for (const AssignEvent &E : T.Events) {
      // The Sec. 6.1 projection: an adversary at ℓA sees (x, v, t) iff
      // Γ(x) ⊑ ℓA.
      if (Opts.Adversary && !Lat.flowsTo(E.VarLabel, *Opts.Adversary))
        continue;
      TraceRecord R;
      R.RecordKind = TraceRecord::Kind::Instant;
      R.Name = "assign " + E.Var;
      if (E.IsArrayStore)
        R.Name += "[" + std::to_string(E.ElemIndex) + "]";
      R.Category = "interp";
      R.Ts = E.Time;
      R.Args.emplace_back("value", std::to_string(E.Value));
      R.Args.emplace_back("label", Lat.name(E.VarLabel));
      Records.push_back(std::move(R));
    }

  if (Opts.IncludeMitigations)
    for (const MitigateRecord &M : T.Mitigations) {
      // Mitigate spans are kept under any adversary: the padded duration is
      // a schedule value the mitigator makes public by construction.
      TraceRecord R;
      R.RecordKind = TraceRecord::Kind::Span;
      R.Name = "mitigate#" + std::to_string(M.Eta);
      R.Category = "mit";
      R.Ts = M.Start;
      R.Dur = M.Duration;
      R.Args.emplace_back("level", Lat.name(M.Level));
      R.Args.emplace_back("pc", Lat.name(M.PcLabel));
      R.Args.emplace_back("estimate", std::to_string(M.Estimate));
      R.Args.emplace_back("predicted", std::to_string(M.Duration));
      R.Args.emplace_back("consumed", std::to_string(M.BodyTime));
      R.Args.emplace_back(
          "padded", std::to_string(M.Duration > M.BodyTime
                                       ? M.Duration - M.BodyTime
                                       : 0));
      R.Args.emplace_back("mispredicted", M.Mispredicted ? "true" : "false");
      if (M.Line != 0)
        R.Args.emplace_back("loc", std::to_string(M.Line));
      Records.push_back(std::move(R));
    }

  if (Opts.IncludeLeakBudget) {
    // One priced span per *counted* window (the online accountant's exact
    // projection), so the double sums recomputed offline from these spans
    // are bit-identical to the leak.* metrics — the zamtrace cross-check.
    LeakAudit Audit(Lat, Opts.Adversary, Opts.Mitigation);
    Audit.ingest(T);
    const MitigationPolicy &RunDefault = Opts.Mitigation.base();
    uint64_t SnapWindows = 0;
    double SnapBits = 0;
    for (const LeakWindow &W : Audit.windows()) {
      TraceRecord R;
      R.RecordKind = TraceRecord::Kind::Span;
      R.Name = "leak_budget#" + std::to_string(W.Eta);
      R.Category = "leak";
      R.Ts = W.Start;
      R.Dur = W.Duration;
      R.Args.emplace_back("level", Lat.name(W.Level));
      R.Args.emplace_back("estimate", std::to_string(W.Estimate));
      R.Args.emplace_back("misses_after", std::to_string(W.MissesAfter));
      R.Args.emplace_back("attainable", std::to_string(W.Attainable));
      R.Args.emplace_back("window_bits", jsonNumberString(W.WindowBits));
      R.Args.emplace_back("cum_level_bits",
                          jsonNumberString(W.CumLevelBits));
      R.Args.emplace_back("mispredicted", W.Mispredicted ? "true" : "false");
      // Only sites diverging from the run default name their policy, so
      // default-policy traces keep the historical byte layout.
      if (W.Policy && W.Policy != &RunDefault)
        R.Args.emplace_back("policy", W.Policy->spec());
      if (W.Line != 0)
        R.Args.emplace_back("loc", std::to_string(W.Line));
      Records.push_back(std::move(R));

      // Periodic metrics snapshots: a deterministic running time series of
      // the Sec. 6 account, stamped at the window's completion time.
      ++SnapWindows;
      SnapBits += W.WindowBits;
      if (Opts.SnapshotEveryWindows != 0 &&
          SnapWindows % Opts.SnapshotEveryWindows == 0) {
        TraceRecord S;
        S.RecordKind = TraceRecord::Kind::Meta;
        S.Name = "snapshot";
        S.Category = "obs";
        S.Ts = W.Start + W.Duration;
        S.Args.emplace_back("windows", std::to_string(SnapWindows));
        S.Args.emplace_back("total_bits_bound", jsonNumberString(SnapBits));
        Records.push_back(std::move(S));
      }
    }
  }

  // Cache misses are machine-internal: invisible to a language-level
  // adversary, so an adversary projection drops them wholesale.
  if (Opts.IncludeMisses && !Opts.Adversary)
    for (const AccessSample &S : T.Misses) {
      TraceRecord R;
      R.RecordKind = TraceRecord::Kind::Instant;
      R.Name = S.IsData ? "dmiss" : "imiss";
      R.Category = "hw";
      R.Ts = S.Time;
      R.Args.emplace_back("addr", hexAddr(S.A));
      R.Args.emplace_back("cycles", std::to_string(S.Cycles));
      if (S.TlbMiss)
        R.Args.emplace_back("tlb_miss", "true");
      if (S.L1Miss)
        R.Args.emplace_back("l1_miss", "true");
      if (S.L2Miss)
        R.Args.emplace_back("memory", "true");
      if (S.Line != 0)
        R.Args.emplace_back("loc", std::to_string(S.Line));
      Records.push_back(std::move(R));
    }

  if (Opts.Ledger && !Opts.Adversary) {
    // The embedded profile: the per-line and per-site ledger rows, stamped
    // at the run's final time. Cycle attribution is not reconstructible
    // from the event stream (hits are never sampled), so these rows are the
    // offline reader's ground truth; everything it *can* rebuild — windows,
    // padding, leak bits, sampled misses — it checks against them.
    for (const auto &[Line, C] : Opts.Ledger->lines()) {
      TraceRecord R;
      R.RecordKind = TraceRecord::Kind::Instant;
      R.Name = "prof_line#" + std::to_string(Line);
      R.Category = "prof";
      R.Ts = T.FinalTime;
      R.Args.emplace_back("cycles", std::to_string(C.totalCycles()));
      R.Args.emplace_back("step_cycles", std::to_string(C.StepCycles));
      R.Args.emplace_back("sleep_cycles", std::to_string(C.SleepCycles));
      R.Args.emplace_back("pad_cycles", std::to_string(C.PadCycles));
      R.Args.emplace_back("accesses", std::to_string(C.Accesses));
      R.Args.emplace_back("misses", std::to_string(C.misses()));
      R.Args.emplace_back("windows", std::to_string(C.Windows));
      R.Args.emplace_back("leak_bits", jsonNumberString(C.LeakBits));
      Records.push_back(std::move(R));
    }
    for (const auto &[Eta, S] : Opts.Ledger->sites()) {
      TraceRecord R;
      R.RecordKind = TraceRecord::Kind::Instant;
      R.Name = "prof_site#" + std::to_string(Eta);
      R.Category = "prof";
      R.Ts = T.FinalTime;
      R.Args.emplace_back("loc", std::to_string(S.Line));
      R.Args.emplace_back("windows", std::to_string(S.Windows));
      R.Args.emplace_back("pad_cycles", std::to_string(S.PadCycles));
      R.Args.emplace_back("leak_bits", jsonNumberString(S.LeakBits));
      Records.push_back(std::move(R));
    }
  }

  // One merged, time-ordered stream. stable_sort keeps the within-category
  // emission order for simultaneous records, so output is deterministic.
  std::stable_sort(Records.begin(), Records.end(),
                   [](const TraceRecord &A, const TraceRecord &B) {
                     return A.Ts < B.Ts;
                   });
  for (const TraceRecord &R : Records)
    Sink.record(R);
  return Records.size();
}

std::vector<std::pair<std::string, std::string>>
zam::provenanceArgs(unsigned Threads) {
  return {{"tool", "zam"},
          {"version", buildVersion()},
          {"git", buildGitHash()},
          {"compiler", buildCompiler()},
          {"build_type", buildType()},
          {"threads", std::to_string(Threads)}};
}

std::vector<std::pair<std::string, std::string>>
zam::provenanceArgs(unsigned Threads, const PolicySelection &Mitigation) {
  auto Args = provenanceArgs(Threads);
  if (Mitigation.isDefaultOnly())
    return Args; // Paper default: keep the historical byte layout.
  Args.emplace_back("mitigation", Mitigation.base().spec());
  if (!Mitigation.PerSite.empty()) {
    std::string Sites;
    for (const auto &[Eta, P] : Mitigation.PerSite) {
      if (!Sites.empty())
        Sites += ",";
      Sites += std::to_string(Eta) + "=" + P->spec();
    }
    Args.emplace_back("mitigation_sites", Sites);
  }
  return Args;
}

JsonValue zam::provenanceJson(unsigned Threads) {
  JsonValue Meta = JsonValue::object();
  Meta["tool"] = "zam";
  Meta["version"] = buildVersion();
  Meta["git"] = buildGitHash();
  Meta["compiler"] = buildCompiler();
  Meta["build_type"] = buildType();
  Meta["threads"] = Threads;
  return Meta;
}

JsonValue zam::provenanceJson(unsigned Threads,
                              const PolicySelection &Mitigation) {
  JsonValue Meta = provenanceJson(Threads);
  for (const auto &[Key, Value] : provenanceArgs(Threads, Mitigation))
    if (Key == "mitigation" || Key == "mitigation_sites")
      Meta[Key] = Value;
  return Meta;
}
