//===- Histogram.h - Deterministic log-linear histograms --------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded-memory online sketch for cycle-valued distributions (window
/// durations, end-to-end times, per-line costs): an HDR-style log-linear
/// fixed-bucket histogram with exact integer counts. Scaling a run to 10^6
/// observations costs the same few kilobytes as 10^2.
///
/// Determinism contract (docs/OBSERVABILITY.md): bucket boundaries are a
/// pure function of the value (no rescaling, no sampling), counts are
/// exact integers, and merge() is a bucket-wise integer sum — so any
/// submission-order merge sequence (ParallelRunner) yields the same state,
/// and every exported dist.* figure is bit-identical at any thread count.
/// Quantiles are derived deterministically from bucket upper bounds
/// (clamped to the exact observed min/max), never interpolated from
/// floating-point estimates.
///
/// Layout: values below 2^SubBits occupy exact unit buckets; above that,
/// each power-of-two octave splits into 2^SubBits sub-buckets, giving a
/// worst-case relative quantile error of 2^-SubBits (~3% at SubBits=5)
/// over the full uint64 range with at most 1920 buckets.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_HISTOGRAM_H
#define ZAM_OBS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace zam {

class MetricsRegistry;

class LogLinearHistogram {
public:
  /// Sub-bucket resolution: 2^SubBits sub-buckets per octave.
  static constexpr unsigned SubBits = 5;

  /// Index of the bucket holding \p V (pure function of V).
  static unsigned bucketIndex(uint64_t V);

  /// Largest value mapping to bucket \p Index (its representative).
  static uint64_t bucketUpper(unsigned Index);

  /// Records \p Count observations of \p V.
  void add(uint64_t V, uint64_t Count = 1);

  /// Bucket-wise integer sum; order-free, so submission-order merges are
  /// bit-identical to any other order.
  void merge(const LogLinearHistogram &Other);

  uint64_t total() const { return Total; }
  bool empty() const { return Total == 0; }
  /// Exact observed extrema (0 when empty).
  uint64_t min() const { return Total ? Min : 0; }
  uint64_t max() const { return Total ? Max : 0; }

  /// The deterministic \p Q-quantile: the representative (upper bound) of
  /// the bucket containing the ceil(Q·Total)-th observation, clamped to
  /// [min, max]. 0 when empty.
  uint64_t quantile(double Q) const;

  /// Emits the fixed-shape `dist.<Name>.*` namespace into \p Reg:
  ///   [Prefix]dist.<Name>.{count,min,max,p50,p90,p99,p999}
  /// All entries are integer counters so documents stay byte-stable.
  void exportMetrics(MetricsRegistry &Reg, const std::string &Name,
                     const std::string &Prefix = "") const;

private:
  std::vector<uint64_t> Buckets; ///< Grown on demand, indexed by bucket.
  uint64_t Total = 0;
  uint64_t Min = UINT64_MAX;
  uint64_t Max = 0;
};

} // namespace zam

#endif // ZAM_OBS_HISTOGRAM_H
