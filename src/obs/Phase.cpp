//===- Phase.cpp ----------------------------------------------------------===//

#include "obs/Phase.h"

#include <cstdio>

using namespace zam;

void PhaseProfiler::ScopedPhase::close() {
  if (!Prof)
    return;
  auto End = std::chrono::steady_clock::now();
  Prof->add(Name,
            std::chrono::duration<double, std::milli>(End - Start).count());
  Prof = nullptr;
}

void PhaseProfiler::add(const std::string &Name, double Ms) {
  for (Phase &P : Phases)
    if (P.Name == Name) {
      P.Ms += Ms;
      ++P.Count;
      return;
    }
  Phases.push_back(Phase{Name, Ms, 1});
}

double PhaseProfiler::totalMs() const {
  double Total = 0;
  for (const Phase &P : Phases)
    Total += P.Ms;
  return Total;
}

JsonValue PhaseProfiler::toJson() const {
  JsonValue Doc = JsonValue::object();
  for (const Phase &P : Phases)
    Doc[P.Name + "_ms"] = JsonValue(P.Ms);
  return Doc;
}

std::string PhaseProfiler::render() const {
  const double Total = totalMs();
  std::string Out;
  char Buf[160];
  for (const Phase &P : Phases) {
    std::snprintf(Buf, sizeof(Buf), "  %-12s %9.3f ms  (%5.1f%%)\n",
                  P.Name.c_str(), P.Ms, Total > 0 ? 100.0 * P.Ms / Total : 0.0);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "  %-12s %9.3f ms\n", "total", Total);
  Out += Buf;
  return Out;
}
