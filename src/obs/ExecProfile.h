//===- ExecProfile.h - ExecCore self-profiler -------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution observatory: a deterministic self-profiler for the shared
/// execution core (sem/ExecCore.h), implementing the ExecProbe interface
/// declared in sem/Provenance.h. Where CostLedger attributes *simulated*
/// cycles to source constructs, ExecProfile profiles the *engine itself* —
/// exact per-pc execution counts, per-opcode dispatch totals, the dynamic
/// opcode-digram (consecutive-pair) table that ranks superinstruction-fusion
/// candidates for the future native backend, per-Branch taken/not-taken
/// counts, and per-mitigate-site settle-epoch histograms.
///
/// Everything above is pure control-flow data, so it is bit-identical
/// across the Full and Step engines, any thread partitioning of a run set
/// (profiles merge like metrics registries), and every hardware design —
/// the engines execute the same IR through the same core, and dispatch
/// order does not depend on cache state. The one deliberate exception:
/// settle-epoch histograms count scheduler misprediction epochs, which
/// depend on elapsed body cycles and therefore on the hardware design.
/// They stay inside exec.* because they are still deterministic for a
/// fixed (program, inputs, design, policy) tuple.
///
/// Host wall-clock throughput rides on top via epoch sampling — one
/// steady_clock read every kWallEpoch dispatches — and is exported under
/// the separate wall.exec.* namespace, excluded from deterministic
/// content exactly like the BENCH "wall" section.
///
/// The conservation self-check ties the books together:
///   Σ per-pc counts = dispatches = Σ per-opcode counts
///   Σ digram counts + run-head dispatches = dispatches
///   taken + not-taken = Branch dispatches
///   Σ settle-histogram totals = MitEnd dispatches
/// and Halt never counts anywhere (the core stops when the program counter
/// reaches it; it is never dispatched).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_EXECPROFILE_H
#define ZAM_OBS_EXECPROFILE_H

#include "ir/Ir.h"
#include "obs/Histogram.h"
#include "sem/Provenance.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace zam {

class MetricsRegistry;

/// Deterministic ExecCore self-profiler; attach via InterpreterOptions::
/// Probe. One instance may observe any number of sequential runs of the
/// same program (counts accumulate); concurrent runs each get their own
/// instance, merged afterwards.
class ExecProfile final : public ExecProbe {
public:
  /// Number of IrInstr opcodes (the digram table is kNumOps x kNumOps).
  static constexpr unsigned kNumOps = 8;

  /// Default dispatches between host wall-clock samples.
  static constexpr uint64_t kDefaultWallEpoch = 1u << 16;

  /// Per-pc profile: the static descriptor captured from the IR at
  /// onProgram, plus this pc's dynamic counters.
  struct PcStat {
    IrInstr::Op K = IrInstr::Op::Skip;
    uint32_t Line = 0;    ///< Source line (0 = unknown).
    unsigned Eta = 0;     ///< MitEnter/MitEnd: the mitigate site id.
    uint64_t Count = 0;   ///< Dispatches of this pc.
    uint64_t Taken = 0;   ///< Branch only: guard was non-zero.
    uint64_t NotTaken = 0; ///< Branch only: fall-through.
  };

  /// Per-mitigate-site settle profile. One entry per static site (from
  /// the program's MitEnter instructions), present even when the site
  /// never executes, so the exported shape is a function of the program.
  struct SiteStat {
    unsigned Eta = 0;
    LogLinearHistogram SettleEpochs; ///< Misprediction epochs per settle.
  };

  /// One ranked fusion candidate: the opcode pair and how many times it
  /// occurred consecutively. Count is an upper bound on the dispatches a
  /// plan fusing A;B can save — overlapping occurrences in a chain share
  /// pcs, and greedy planning claims each pc once; fusedDigram(A, B)
  /// reports what a run actually realized.
  struct DigramRank {
    IrInstr::Op A = IrInstr::Op::Skip;
    IrInstr::Op B = IrInstr::Op::Skip;
    uint64_t Count = 0;
  };

  /// Host wall-clock throughput from epoch sampling. Non-deterministic by
  /// nature; never part of exec.* content.
  struct WallStats {
    uint64_t Epochs = 0;             ///< Completed sampling epochs.
    uint64_t SampledDispatches = 0;  ///< Dispatches those epochs cover.
    uint64_t ElapsedNs = 0;          ///< steady_clock time across them.

    /// Mean dispatch throughput in dispatches per microsecond (0 when no
    /// epoch completed).
    double dispatchesPerUs() const {
      return ElapsedNs ? 1e3 * static_cast<double>(SampledDispatches) /
                             static_cast<double>(ElapsedNs)
                       : 0.0;
    }
  };

  explicit ExecProfile(uint64_t WallEpoch = kDefaultWallEpoch)
      : WallEpoch(WallEpoch ? WallEpoch : kDefaultWallEpoch),
        WallCountdown(this->WallEpoch) {}

  // ExecProbe implementation (called by the core on its own thread).
  void onProgram(const IrProgram &IR) override;
  void onDispatch(uint32_t Pc) override;
  void onBranch(uint32_t Pc, bool Taken) override;
  void onFused(uint32_t FirstPc, uint32_t SecondPc) override;
  void onSettle(unsigned Eta, unsigned Epochs) override;

  uint64_t runs() const { return Runs; }
  uint64_t dispatches() const { return Dispatches; }
  /// First dispatches of a run (no predecessor): the digram table's
  /// conservation remainder.
  uint64_t heads() const { return Heads; }
  const std::vector<PcStat> &pcs() const { return Pcs; }
  const std::vector<SiteStat> &sites() const { return Sites; }
  uint64_t opCount(IrInstr::Op K) const {
    return OpCounts[static_cast<unsigned>(K)];
  }
  uint64_t digram(IrInstr::Op A, IrInstr::Op B) const {
    return Digrams[static_cast<unsigned>(A)][static_cast<unsigned>(B)];
  }
  uint64_t branchTaken() const;
  uint64_t branchNotTaken() const;
  /// Realized superinstruction dispatches (one per fused pair executed).
  uint64_t fusedDispatches() const { return FusedDispatches; }
  uint64_t fusedDigram(IrInstr::Op A, IrInstr::Op B) const {
    return FusedDigrams[static_cast<unsigned>(A)][static_cast<unsigned>(B)];
  }
  const WallStats &wall() const { return Wall; }

  /// All non-zero digrams, highest count first (ties broken row-major, so
  /// the ranking is deterministic).
  std::vector<DigramRank> rankedDigrams() const;

  /// Verifies the conservation equations (see file comment). Returns false
  /// and fills \p Err with the first violated equation.
  bool selfCheck(std::string &Err) const;

  /// Folds another profile of the same program into this one (order-free,
  /// like MetricsRegistry::merge) — the thread-aggregation path.
  void merge(const ExecProfile &Other);

  /// Exports the deterministic exec.* namespace into \p Reg: run and
  /// dispatch totals, all kNumOps per-opcode counters (fixed shape, zeros
  /// included), branch direction totals, non-zero digrams in row-major
  /// order, every per-pc counter (with taken/not-taken for Branch pcs),
  /// and one settle-epoch histogram per static mitigate site.
  void exportMetrics(MetricsRegistry &Reg) const;

  /// Exports the additive exec.fused.* namespace: realized-fusion totals
  /// and per-digram counts. Deliberately separate from exportMetrics —
  /// realization depends on how a run was driven (run() realizes the
  /// plan, step()-driven execution never does, fusion may be off), so
  /// folding it into exec.* would break the byte-equality contract that
  /// holds across {Full, Step} × {fusion on/off} × dispatch modes.
  void exportFusionMetrics(MetricsRegistry &Reg) const;

  /// Exports wall.exec.* host-throughput numbers into \p Reg — callers
  /// keep this registry out of deterministic content (the BENCH "wall"
  /// precedent).
  void exportWallMetrics(MetricsRegistry &Reg) const;

  /// Collapsed-stack export for flamegraph.pl / speedscope: one
  /// "Root;line L;op count" line per (source line, opcode) pair with a
  /// non-zero dispatch count, ordered by line then opcode.
  std::string foldedStacks(const std::string &Root) const;

private:
  void sampleWall();

  std::vector<PcStat> Pcs;
  uint32_t HaltIndex = 0;
  uint64_t Runs = 0;
  uint64_t Heads = 0;
  uint64_t Dispatches = 0;
  uint64_t OpCounts[kNumOps] = {};
  uint64_t Digrams[kNumOps][kNumOps] = {};
  std::vector<SiteStat> Sites; ///< Sorted by Eta.
  bool PrevValid = false;
  IrInstr::Op PrevOp = IrInstr::Op::Skip;
  uint64_t FusedDispatches = 0;
  uint64_t FusedDigrams[kNumOps][kNumOps] = {};

  uint64_t WallEpoch;
  /// Dispatches until the next wall sample. A countdown instead of
  /// `Dispatches % WallEpoch` keeps the hot dispatch path division-free;
  /// the sample points are identical.
  uint64_t WallCountdown;
  bool WallArmed = false;
  std::chrono::steady_clock::time_point WallStart;
  WallStats Wall;
};

} // namespace zam

#endif // ZAM_OBS_EXECPROFILE_H
