//===- CostLedger.h - Source-attributed cost ledger -------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data side of the source-level timing-provenance profiler: a CostSink
/// (sem/Provenance.h) that both interpreters feed while running with
/// InterpreterOptions::Provenance installed. Every cost event — step
/// cycles, sleep cycles, mitigation padding, and each cache/TLB access with
/// its hit/miss/eviction outcome — is charged to the source line under the
/// attribution cursor, and padding/leakage additionally to the mitigate
/// site (η) whose window produced it.
///
/// Invariants the profiler's self-check relies on (zamc profile aborts when
/// they fail):
///
///   totalCycles()      == Trace::FinalTime        (every cycle attributed)
///   totalPadCycles()   == mit.padded_idle_cycles
///   structureTotals(i) == the machine's HwStats for that structure
///   totalLeakBits()    == LeakAudit::totalBitsBound()  (bit-for-bit)
///
/// Leak bits arrive after the run via applyLeakage(): the ledger replays
/// the audit's counted windows, accumulating per-level partial sums in the
/// audit's own arrival order so the double total is bit-identical to the
/// online account — the same discipline tools/zamtrace applies offline.
///
/// Everything here derives from deterministic run data, so ledger JSON and
/// the prof.* metric namespace ride under the existing byte-stability
/// audits (identical across harness thread counts).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_COSTLEDGER_H
#define ZAM_OBS_COSTLEDGER_H

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "sem/Provenance.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zam {

class LeakAudit;

/// Per-line tallies for one hardware structure (a cache level or TLB).
struct LineHwStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Writebacks = 0;
  uint64_t LineFills = 0;
};

/// Everything charged to one source line.
struct LineCost {
  uint32_t Line = 0;
  uint64_t StepCycles = 0;  ///< Fetch + ALU + access latencies of steps.
  uint64_t SleepCycles = 0; ///< Calibrated sleep n durations.
  uint64_t PadCycles = 0;   ///< Mitigation padding settled at this line.
  uint64_t Accesses = 0;    ///< Hardware accesses issued by this line.
  /// Indexed by CostLedger::Structure (l1d, l2d, l1i, l2i, dtlb, itlb).
  LineHwStats S[6];
  uint64_t Windows = 0; ///< Mitigate windows that closed at this line.
  double LeakBits = 0;  ///< Σ window bits of those windows.

  uint64_t totalCycles() const { return StepCycles + SleepCycles + PadCycles; }
  uint64_t misses() const {
    uint64_t N = 0;
    for (const LineHwStats &St : S)
      N += St.Misses;
    return N;
  }
};

/// Per-mitigate-site sub-account: what one η cost across all its windows.
/// Deliberately no cycle total — a site's self cycles are not offline
/// reconstructible from the event stream, so they are not claimed here.
struct SiteCost {
  unsigned Eta = 0;
  uint32_t Line = 0;      ///< The mitigate command's source line.
  uint64_t Windows = 0;   ///< Settled windows of this site.
  uint64_t PadCycles = 0; ///< Padding across those windows.
  double LeakBits = 0;    ///< Σ window bits (adversary-projected).
};

/// Source-attribution ledger: implements the interpreter-facing CostSink
/// and renders/exports the result. Lines and sites are keyed maps, so
/// iteration order (and hence JSON/metric order) is deterministic.
class CostLedger : public CostSink {
public:
  /// Index space of LineCost::S and structureTotals(). The order is the
  /// canonical rendering order: data before instruction, caches before
  /// TLBs at each side.
  enum Structure { L1D = 0, L2D = 1, L1I = 2, L2I = 3, DTlb = 4, ITlb = 5 };
  static constexpr unsigned kStructures = 6;
  static const char *structureName(unsigned I);

  // CostSink implementation (called by the interpreters).
  void chargeCycles(const CostCursor &Cur, CycleKind K, uint64_t N) override;
  void chargeAccess(const CostCursor &Cur, const HwAccess &Access) override;
  void closeWindow(const CostCursor &Cur, const MitigateRecord &R) override;

  /// Replays \p Audit's counted windows into per-line / per-site leak bits.
  /// Call once, after the run settles; arrival order is the audit's own, so
  /// totalLeakBits() == Audit.totalBitsBound() bit-for-bit.
  void applyLeakage(const LeakAudit &Audit);

  const std::map<uint32_t, LineCost> &lines() const { return Lines; }
  const std::map<unsigned, SiteCost> &sites() const { return Sites; }

  uint64_t totalCycles() const;      ///< Step + sleep + pad, all lines.
  uint64_t totalSleepCycles() const;
  uint64_t totalPadCycles() const;
  uint64_t totalAccesses() const;
  uint64_t totalWindows() const;
  /// Aggregated per-structure tallies (index: Structure).
  LineHwStats structureTotals(unsigned I) const;
  /// Σ of the per-level partial sums in label-index order — matches
  /// LeakAudit::totalBitsBound() exactly.
  double totalLeakBits() const;

  /// Canonical JSON: {"lines": [...], "sites": [...], "totals": {...}}.
  /// Doubles go through the registry's shortest-round-trip printer, so the
  /// document is byte-stable and offline-comparable.
  JsonValue toJson() const;

  /// Emits the prof.* namespace into \p Reg: whole-run totals, then the
  /// top-\p TopK lines by total cycles as prof.line.L<line>.* and every
  /// mitigate site as prof.site.m<eta>.*. Ties in the ranking break toward
  /// the smaller line number, so the export is deterministic.
  void exportMetrics(MetricsRegistry &Reg, size_t TopK = 5,
                     const std::string &Prefix = "") const;

  /// Renders \p Source annotated with per-line cycles / misses / pad /
  /// leak-bit columns, followed by a hot-line ranking and the mitigate-site
  /// table. \p Color enables ANSI highlighting of hot lines.
  std::string renderAnnotated(const std::string &Source, bool Color) const;

private:
  LineCost &line(uint32_t L);
  SiteCost &site(unsigned Eta);

  std::map<uint32_t, LineCost> Lines;
  std::map<unsigned, SiteCost> Sites;
  /// Per-level leak-bit partial sums (index: label index), replayed from
  /// the audit so the total reproduces its summation order.
  std::vector<double> LevelBits;
};

} // namespace zam

#endif // ZAM_OBS_COSTLEDGER_H
