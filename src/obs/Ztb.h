//===- Ztb.h - Compact binary trace format ----------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ZTB ("zam trace, binary") — the length-prefixed binary trace format for
/// million-window runs, where the JSONL text encoding is too large to
/// buffer or re-parse. Wire layout (documented in docs/OBSERVABILITY.md):
///
///   preamble:  magic "ZTB1" · version byte (currently 1) ·
///              varint pair-count · pairs of length-prefixed key/value
///              strings (the BuildInfo provenance header)
///   record:    varint payload-length · payload
///   payload:   kind byte (1 instant, 2 span, 3 counter, 4 meta) ·
///              string name · string cat · varint ts ·
///              [span: varint dur] [counter: 8-byte LE IEEE-754 value] ·
///              varint arg-count · pairs of strings
///   marker:    an 8-byte frame marker before every 4096th record; its
///              lead byte 0x00 can never start a record (payloads are
///              nonempty, so the length prefix is nonzero), which makes
///              the stream self-synchronizing: a reader that loses
///              framing scans forward to the next marker and resumes.
///
/// Varints are unsigned LEB128; strings are varint length + raw bytes.
/// Everything is deterministic — same records in, same bytes out — so ZTB
/// files participate in the byte-stability audits like the text formats.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_ZTB_H
#define ZAM_OBS_ZTB_H

#include "obs/TraceSink.h"

#include <cstdint>
#include <string>

namespace zam {
namespace ztb {

/// The 4-byte file magic ("ZTB1").
inline constexpr char Magic[4] = {'Z', 'T', 'B', '1'};

/// Current wire version; readers reject anything newer.
inline constexpr uint8_t Version = 1;

/// A frame marker precedes every RecordsPerFrame-th record.
inline constexpr size_t RecordsPerFrame = 4096;

/// The 8-byte self-synchronization marker. Lead byte 0x00 is unambiguous
/// at a record boundary (a record's length prefix is never zero).
inline constexpr unsigned char FrameMarker[8] = {0x00, 0xA5, 'Z', 'T',
                                                 'B',  'M',  0x5A, 0xFF};

/// Record kind bytes on the wire.
enum KindByte : uint8_t {
  KindInstant = 1,
  KindSpan = 2,
  KindCounter = 3,
  KindMeta = 4,
};

/// Appends \p V as an unsigned LEB128 varint.
void appendVarint(std::string &Out, uint64_t V);

/// Appends \p S as varint length + raw bytes.
void appendString(std::string &Out, const std::string &S);

} // namespace ztb

/// Binary backend: varint-encoded records behind a versioned provenance
/// preamble, with periodic frame markers. Intended for FileByteSink
/// streaming; a default-constructed instance buffers like the text sinks.
class ZtbTraceSink final : public TraceSink {
public:
  using TraceSink::TraceSink;

  void header(
      const std::vector<std::pair<std::string, std::string>> &Meta) override;
  void record(const TraceRecord &R) override;

private:
  /// Writes the magic/version/empty-header preamble if header() never ran.
  void ensurePreamble();

  bool WrotePreamble = false;
  uint64_t RecordCount = 0;
};

} // namespace zam

#endif // ZAM_OBS_ZTB_H
