//===- ExecProfile.cpp - ExecCore self-profiler ---------------------------===//

#include "obs/ExecProfile.h"

#include "ir/IrPrinter.h"
#include "obs/Metrics.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <map>

using namespace zam;

void ExecProfile::onProgram(const IrProgram &IR) {
  if (Pcs.empty()) {
    Pcs.resize(IR.Instrs.size());
    HaltIndex = IR.haltIndex();
    for (uint32_t I = 0; I != IR.Instrs.size(); ++I) {
      const IrInstr &In = IR.Instrs[I];
      Pcs[I].K = In.K;
      Pcs[I].Line = In.Loc.Line;
      Pcs[I].Eta = In.Eta;
      if (In.K == IrInstr::Op::MitEnter &&
          std::none_of(Sites.begin(), Sites.end(), [&](const SiteStat &S) {
            return S.Eta == In.Eta;
          }))
        Sites.push_back({In.Eta, LogLinearHistogram()});
    }
    std::sort(Sites.begin(), Sites.end(),
              [](const SiteStat &A, const SiteStat &B) {
                return A.Eta < B.Eta;
              });
  } else if (Pcs.size() != IR.Instrs.size()) {
    reportFatalError("ExecProfile reattached to a different program");
  }
  ++Runs;
  // A new run has no predecessor instruction: the digram chain restarts.
  PrevValid = false;
}

void ExecProfile::onDispatch(uint32_t Pc) {
  PcStat &S = Pcs[Pc];
  ++S.Count;
  const unsigned Op = static_cast<unsigned>(S.K);
  ++OpCounts[Op];
  if (PrevValid)
    ++Digrams[static_cast<unsigned>(PrevOp)][Op];
  else
    ++Heads;
  PrevValid = true;
  PrevOp = S.K;
  ++Dispatches;
  if (--WallCountdown == 0) {
    sampleWall();
    WallCountdown = WallEpoch;
  }
}

void ExecProfile::onBranch(uint32_t Pc, bool Taken) {
  if (Taken)
    ++Pcs[Pc].Taken;
  else
    ++Pcs[Pc].NotTaken;
}

void ExecProfile::onFused(uint32_t FirstPc, uint32_t SecondPc) {
  ++FusedDispatches;
  ++FusedDigrams[static_cast<unsigned>(Pcs[FirstPc].K)]
                [static_cast<unsigned>(Pcs[SecondPc].K)];
}

void ExecProfile::onSettle(unsigned Eta, unsigned Epochs) {
  for (SiteStat &S : Sites)
    if (S.Eta == Eta) {
      S.SettleEpochs.add(Epochs);
      return;
    }
  reportFatalError("ExecProfile: settle at unknown mitigate site");
}

void ExecProfile::sampleWall() {
  const auto Now = std::chrono::steady_clock::now();
  if (WallArmed) {
    ++Wall.Epochs;
    Wall.SampledDispatches += WallEpoch;
    Wall.ElapsedNs += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Now - WallStart)
            .count());
  }
  WallStart = Now;
  WallArmed = true;
}

uint64_t ExecProfile::branchTaken() const {
  uint64_t N = 0;
  for (const PcStat &S : Pcs)
    N += S.Taken;
  return N;
}

uint64_t ExecProfile::branchNotTaken() const {
  uint64_t N = 0;
  for (const PcStat &S : Pcs)
    N += S.NotTaken;
  return N;
}

std::vector<ExecProfile::DigramRank> ExecProfile::rankedDigrams() const {
  std::vector<DigramRank> Ranked;
  for (unsigned A = 0; A != kNumOps; ++A)
    for (unsigned B = 0; B != kNumOps; ++B)
      if (Digrams[A][B])
        Ranked.push_back({static_cast<IrInstr::Op>(A),
                          static_cast<IrInstr::Op>(B), Digrams[A][B]});
  std::stable_sort(Ranked.begin(), Ranked.end(),
                   [](const DigramRank &X, const DigramRank &Y) {
                     return X.Count > Y.Count;
                   });
  return Ranked;
}

bool ExecProfile::selfCheck(std::string &Err) const {
  auto Fail = [&](const std::string &What) {
    Err = "exec profile conservation violated: " + What;
    return false;
  };
  uint64_t PcSum = 0;
  for (const PcStat &S : Pcs)
    PcSum += S.Count;
  if (PcSum != Dispatches)
    return Fail("per-pc counts sum to " + std::to_string(PcSum) + ", not " +
                std::to_string(Dispatches) + " dispatches");
  uint64_t OpSum = 0;
  for (unsigned I = 0; I != kNumOps; ++I)
    OpSum += OpCounts[I];
  if (OpSum != Dispatches)
    return Fail("per-opcode counts sum to " + std::to_string(OpSum) +
                ", not " + std::to_string(Dispatches) + " dispatches");
  if (opCount(IrInstr::Op::Halt) != 0)
    return Fail("Halt was dispatched");
  if (!Pcs.empty() && Pcs[HaltIndex].Count != 0)
    return Fail("the halt pc has a non-zero count");
  uint64_t DigramSum = 0;
  for (unsigned A = 0; A != kNumOps; ++A)
    for (unsigned B = 0; B != kNumOps; ++B)
      DigramSum += Digrams[A][B];
  if (DigramSum + Heads != Dispatches)
    return Fail("digrams (" + std::to_string(DigramSum) + ") + run heads (" +
                std::to_string(Heads) + ") != dispatches (" +
                std::to_string(Dispatches) + ")");
  if (branchTaken() + branchNotTaken() != opCount(IrInstr::Op::Branch))
    return Fail("taken + not-taken != Branch dispatches");
  uint64_t Settles = 0;
  for (const SiteStat &S : Sites)
    Settles += S.SettleEpochs.total();
  if (Settles != opCount(IrInstr::Op::MitEnd))
    return Fail("settle-histogram totals (" + std::to_string(Settles) +
                ") != MitEnd dispatches (" +
                std::to_string(opCount(IrInstr::Op::MitEnd)) + ")");
  uint64_t FusedSum = 0;
  for (unsigned A = 0; A != kNumOps; ++A)
    for (unsigned B = 0; B != kNumOps; ++B)
      FusedSum += FusedDigrams[A][B];
  if (FusedSum != FusedDispatches)
    return Fail("fused digram counts sum to " + std::to_string(FusedSum) +
                ", not " + std::to_string(FusedDispatches) +
                " fused dispatches");
  if (2 * FusedDispatches > Dispatches)
    return Fail("more fused constituents than dispatches");
  return true;
}

void ExecProfile::merge(const ExecProfile &Other) {
  if (Pcs.empty()) {
    Pcs = Other.Pcs;
    HaltIndex = Other.HaltIndex;
    Sites = Other.Sites;
  } else {
    if (Pcs.size() != Other.Pcs.size() || Sites.size() != Other.Sites.size())
      reportFatalError("ExecProfile::merge: profiles of different programs");
    for (size_t I = 0; I != Pcs.size(); ++I) {
      Pcs[I].Count += Other.Pcs[I].Count;
      Pcs[I].Taken += Other.Pcs[I].Taken;
      Pcs[I].NotTaken += Other.Pcs[I].NotTaken;
    }
    for (size_t I = 0; I != Sites.size(); ++I)
      Sites[I].SettleEpochs.merge(Other.Sites[I].SettleEpochs);
  }
  Runs += Other.Runs;
  Heads += Other.Heads;
  Dispatches += Other.Dispatches;
  FusedDispatches += Other.FusedDispatches;
  for (unsigned A = 0; A != kNumOps; ++A) {
    OpCounts[A] += Other.OpCounts[A];
    for (unsigned B = 0; B != kNumOps; ++B) {
      Digrams[A][B] += Other.Digrams[A][B];
      FusedDigrams[A][B] += Other.FusedDigrams[A][B];
    }
  }
  Wall.Epochs += Other.Wall.Epochs;
  Wall.SampledDispatches += Other.Wall.SampledDispatches;
  Wall.ElapsedNs += Other.Wall.ElapsedNs;
}

void ExecProfile::exportMetrics(MetricsRegistry &Reg) const {
  Reg.setCounter("exec.runs", Runs);
  Reg.setCounter("exec.dispatches", Dispatches);
  Reg.setCounter("exec.heads", Heads);
  uint64_t DigramSum = 0;
  for (unsigned A = 0; A != kNumOps; ++A)
    for (unsigned B = 0; B != kNumOps; ++B)
      DigramSum += Digrams[A][B];
  Reg.setCounter("exec.digrams", DigramSum);
  for (unsigned I = 0; I != kNumOps; ++I)
    Reg.setCounter(std::string("exec.op.") +
                       irOpName(static_cast<IrInstr::Op>(I)),
                   OpCounts[I]);
  Reg.setCounter("exec.branch.taken", branchTaken());
  Reg.setCounter("exec.branch.not_taken", branchNotTaken());
  for (unsigned A = 0; A != kNumOps; ++A)
    for (unsigned B = 0; B != kNumOps; ++B)
      if (Digrams[A][B])
        Reg.setCounter(std::string("exec.digram.") +
                           irOpName(static_cast<IrInstr::Op>(A)) + "_" +
                           irOpName(static_cast<IrInstr::Op>(B)),
                       Digrams[A][B]);
  for (uint32_t I = 0; I != Pcs.size(); ++I) {
    const std::string Key = "exec.pc." + std::to_string(I);
    Reg.setCounter(Key, Pcs[I].Count);
    if (Pcs[I].K == IrInstr::Op::Branch) {
      Reg.setCounter(Key + ".taken", Pcs[I].Taken);
      Reg.setCounter(Key + ".not_taken", Pcs[I].NotTaken);
    }
  }
  Reg.setCounter("exec.sites", Sites.size());
  for (const SiteStat &S : Sites)
    S.SettleEpochs.exportMetrics(Reg, "settle_epochs",
                                 "exec.site.m" + std::to_string(S.Eta) + ".");
}

void ExecProfile::exportFusionMetrics(MetricsRegistry &Reg) const {
  Reg.setCounter("exec.fused.dispatches", FusedDispatches);
  for (unsigned A = 0; A != kNumOps; ++A)
    for (unsigned B = 0; B != kNumOps; ++B)
      if (FusedDigrams[A][B])
        Reg.setCounter(std::string("exec.fused.digram.") +
                           irOpName(static_cast<IrInstr::Op>(A)) + "_" +
                           irOpName(static_cast<IrInstr::Op>(B)),
                       FusedDigrams[A][B]);
}

void ExecProfile::exportWallMetrics(MetricsRegistry &Reg) const {
  Reg.setCounter("wall.exec.sample_epochs", Wall.Epochs);
  Reg.setCounter("wall.exec.sampled_dispatches", Wall.SampledDispatches);
  Reg.setGauge("wall.exec.elapsed_ms",
               static_cast<double>(Wall.ElapsedNs) / 1e6);
  Reg.setGauge("wall.exec.dispatch_per_us", Wall.dispatchesPerUs());
}

std::string ExecProfile::foldedStacks(const std::string &Root) const {
  // (line, opcode) -> dispatches; std::map gives the deterministic order.
  std::map<std::pair<uint32_t, unsigned>, uint64_t> Folded;
  for (const PcStat &S : Pcs)
    if (S.Count)
      Folded[{S.Line, static_cast<unsigned>(S.K)}] += S.Count;
  std::string Out;
  for (const auto &[Key, Count] : Folded) {
    Out += Root + ";line " +
           (Key.first ? std::to_string(Key.first) : std::string("?")) + ";" +
           irOpName(static_cast<IrInstr::Op>(Key.second)) + " " +
           std::to_string(Count) + "\n";
  }
  return Out;
}
