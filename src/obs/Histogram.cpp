//===- Histogram.cpp ------------------------------------------------------===//

#include "obs/Histogram.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>

using namespace zam;

namespace {

/// floor(log2 V) for V > 0.
unsigned floorLog2(uint64_t V) {
  unsigned E = 0;
  while (V >>= 1)
    ++E;
  return E;
}

} // namespace

unsigned LogLinearHistogram::bucketIndex(uint64_t V) {
  constexpr uint64_t Sub = uint64_t(1) << SubBits;
  if (V < Sub)
    return static_cast<unsigned>(V); // Exact unit buckets.
  const unsigned E = floorLog2(V); // >= SubBits
  const unsigned SubIdx =
      static_cast<unsigned>((V >> (E - SubBits)) - Sub); // in [0, Sub)
  return static_cast<unsigned>(Sub + (E - SubBits) * Sub + SubIdx);
}

uint64_t LogLinearHistogram::bucketUpper(unsigned Index) {
  constexpr uint64_t Sub = uint64_t(1) << SubBits;
  if (Index < Sub)
    return Index;
  const unsigned E = (Index - Sub) / Sub + SubBits;
  const unsigned SubIdx = (Index - Sub) % Sub;
  const uint64_t Lower = (Sub + SubIdx) << (E - SubBits);
  const uint64_t Width = uint64_t(1) << (E - SubBits);
  return Lower + (Width - 1);
}

void LogLinearHistogram::add(uint64_t V, uint64_t Count) {
  if (Count == 0)
    return;
  const unsigned Index = bucketIndex(V);
  if (Index >= Buckets.size())
    Buckets.resize(Index + 1, 0);
  Buckets[Index] += Count;
  Total += Count;
  Min = std::min(Min, V);
  Max = std::max(Max, V);
}

void LogLinearHistogram::merge(const LogLinearHistogram &Other) {
  if (Other.Total == 0)
    return;
  if (Other.Buckets.size() > Buckets.size())
    Buckets.resize(Other.Buckets.size(), 0);
  for (size_t I = 0; I != Other.Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  Total += Other.Total;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

uint64_t LogLinearHistogram::quantile(double Q) const {
  if (Total == 0)
    return 0;
  // Rank of the target observation, 1-based; ceil avoids floating-point
  // rank interpolation so the result is always a real bucket bound.
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Q * double(Total)));
  Rank = std::max<uint64_t>(1, std::min(Rank, Total));
  uint64_t Seen = 0;
  for (size_t I = 0; I != Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank)
      return std::max(Min, std::min(Max, bucketUpper(static_cast<unsigned>(I))));
  }
  return Max;
}

void LogLinearHistogram::exportMetrics(MetricsRegistry &Reg,
                                       const std::string &Name,
                                       const std::string &Prefix) const {
  const std::string Base = Prefix + "dist." + Name + ".";
  Reg.setCounter(Base + "count", Total);
  Reg.setCounter(Base + "min", min());
  Reg.setCounter(Base + "max", max());
  Reg.setCounter(Base + "p50", quantile(0.50));
  Reg.setCounter(Base + "p90", quantile(0.90));
  Reg.setCounter(Base + "p99", quantile(0.99));
  Reg.setCounter(Base + "p999", quantile(0.999));
}
