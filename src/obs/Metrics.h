//===- Metrics.h - Named counter/gauge registry -----------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics side of the telemetry subsystem: a registry of named
/// monotonic counters and point-in-time gauges with insertion-ordered,
/// byte-stable serialization.
///
/// Design note: the simulator's hot paths (cache accesses, interpreter
/// steps) do NOT consult a registry — they bump fixed-layout structs
/// (`HwStats`, `Trace::Ops`) whose increments cost one add each. The
/// registry is the *edge* representation: `obs/Telemetry.h` folds those
/// structs into named counters after a run, and `exp::Report`, `zamc
/// --stats` and the bench harnesses serialize the registry. The ZAM_METRIC_*
/// macros below are for ad-hoc recording outside the hot paths; they
/// compile to nothing when ZAM_DISABLE_TELEMETRY is defined and to a single
/// null check when the registry pointer is not set.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_METRICS_H
#define ZAM_OBS_METRICS_H

#include "obs/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace zam {

/// An insertion-ordered registry of named monotonic counters (uint64) and
/// gauges (double). Lookups are linear: registries hold tens of entries and
/// are touched at run boundaries, not per event.
class MetricsRegistry {
public:
  struct Entry {
    std::string Name;
    bool IsGauge = false;
    uint64_t Counter = 0;
    double Gauge = 0;
  };

  /// Find-or-create the counter slot \p Name (created at zero).
  uint64_t &counter(const std::string &Name);
  /// Counter value; 0 when absent (or when \p Name is a gauge).
  uint64_t counterValue(const std::string &Name) const;
  void setCounter(const std::string &Name, uint64_t Value) {
    counter(Name) = Value;
  }

  /// Sets the gauge \p Name (created on first use).
  void setGauge(const std::string &Name, double Value);
  /// Gauge value; 0 when absent.
  double gaugeValue(const std::string &Name) const;

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  void clear() { Entries.clear(); }
  const std::vector<Entry> &entries() const { return Entries; }

  /// Folds \p Other in: counters are summed, gauges overwritten. New names
  /// append in \p Other's order, so merging is deterministic.
  void merge(const MetricsRegistry &Other);

  /// One flat JSON object in insertion order; counters emit as integers,
  /// gauges as doubles.
  JsonValue toJson() const;

  /// Aligned `name value` lines for the human-readable `--stats` output.
  std::string render() const;

private:
  Entry &slot(const std::string &Name, bool IsGauge);

  std::vector<Entry> Entries;
};

} // namespace zam

/// Ad-hoc recording macros. \p Reg is a `MetricsRegistry *` (may be null);
/// when ZAM_DISABLE_TELEMETRY is defined the expansion is empty, so the
/// expression arguments are not evaluated at all.
#ifdef ZAM_DISABLE_TELEMETRY
#define ZAM_METRIC_ADD(Reg, Name, Delta) ((void)0)
#define ZAM_METRIC_GAUGE(Reg, Name, Value) ((void)0)
#else
#define ZAM_METRIC_ADD(Reg, Name, Delta)                                       \
  do {                                                                         \
    if (::zam::MetricsRegistry *ZamMetricReg_ = (Reg))                         \
      ZamMetricReg_->counter(Name) += (Delta);                                 \
  } while (false)
#define ZAM_METRIC_GAUGE(Reg, Name, Value)                                     \
  do {                                                                         \
    if (::zam::MetricsRegistry *ZamMetricReg_ = (Reg))                         \
      ZamMetricReg_->setGauge(Name, Value);                                    \
  } while (false)
#endif

#endif // ZAM_OBS_METRICS_H
