//===- CostLedger.cpp -----------------------------------------------------===//

#include "obs/CostLedger.h"

#include "obs/LeakAudit.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

using namespace zam;

const char *CostLedger::structureName(unsigned I) {
  switch (I) {
  case L1D:
    return "l1d";
  case L2D:
    return "l2d";
  case L1I:
    return "l1i";
  case L2I:
    return "l2i";
  case DTlb:
    return "dtlb";
  case ITlb:
    return "itlb";
  }
  return "?";
}

LineCost &CostLedger::line(uint32_t L) {
  LineCost &C = Lines[L];
  C.Line = L;
  return C;
}

SiteCost &CostLedger::site(unsigned Eta) {
  SiteCost &S = Sites[Eta];
  S.Eta = Eta;
  return S;
}

void CostLedger::chargeCycles(const CostCursor &Cur, CycleKind K, uint64_t N) {
  LineCost &C = line(Cur.Loc.Line);
  switch (K) {
  case CycleKind::Step:
    C.StepCycles += N;
    break;
  case CycleKind::Sleep:
    C.SleepCycles += N;
    break;
  case CycleKind::Pad:
    C.PadCycles += N;
    if (Cur.Site != CostCursor::kNoSite)
      site(Cur.Site).PadCycles += N;
    break;
  }
}

void CostLedger::chargeAccess(const CostCursor &Cur, const HwAccess &Access) {
  LineCost &C = line(Cur.Loc.Line);
  ++C.Accesses;

  // The TLB and L1 are consulted on every access; L2 only past an L1 miss.
  // Event deltas (evictions/writebacks/fills) are added unconditionally —
  // they are zero for structures the access never touched.
  auto AddEvents = [](LineHwStats &S, const HwEventDelta &D) {
    S.Evictions += D.Evictions;
    S.Writebacks += D.Writebacks;
    S.LineFills += D.LineFills;
  };

  LineHwStats &Tlb = C.S[Access.IsData ? DTlb : ITlb];
  ++(Access.TlbMiss ? Tlb.Misses : Tlb.Hits);
  AddEvents(Tlb, Access.TlbEvents);

  LineHwStats &L1 = C.S[Access.IsData ? L1D : L1I];
  ++(Access.L1Miss ? L1.Misses : L1.Hits);
  AddEvents(L1, Access.L1Events);

  LineHwStats &L2 = C.S[Access.IsData ? L2D : L2I];
  if (Access.L1Miss)
    ++(Access.L2Miss ? L2.Misses : L2.Hits);
  AddEvents(L2, Access.L2Events);
}

void CostLedger::closeWindow(const CostCursor &Cur, const MitigateRecord &R) {
  ++line(Cur.Loc.Line).Windows;
  SiteCost &S = site(R.Eta);
  S.Line = R.Line;
  ++S.Windows;
}

void CostLedger::applyLeakage(const LeakAudit &Audit) {
  // Replay in the audit's own arrival order: the per-level partial sums
  // then reproduce its running accounts exactly, so the double totals are
  // bit-identical.
  for (const LeakWindow &W : Audit.windows()) {
    line(W.Line).LeakBits += W.WindowBits;
    SiteCost &S = site(W.Eta);
    S.Line = W.Line;
    S.LeakBits += W.WindowBits;
    if (LevelBits.size() <= W.Level.index())
      LevelBits.resize(W.Level.index() + 1, 0.0);
    LevelBits[W.Level.index()] += W.WindowBits;
  }
}

uint64_t CostLedger::totalCycles() const {
  uint64_t N = 0;
  for (const auto &[L, C] : Lines)
    N += C.totalCycles();
  return N;
}

uint64_t CostLedger::totalSleepCycles() const {
  uint64_t N = 0;
  for (const auto &[L, C] : Lines)
    N += C.SleepCycles;
  return N;
}

uint64_t CostLedger::totalPadCycles() const {
  uint64_t N = 0;
  for (const auto &[L, C] : Lines)
    N += C.PadCycles;
  return N;
}

uint64_t CostLedger::totalAccesses() const {
  uint64_t N = 0;
  for (const auto &[L, C] : Lines)
    N += C.Accesses;
  return N;
}

uint64_t CostLedger::totalWindows() const {
  uint64_t N = 0;
  for (const auto &[L, C] : Lines)
    N += C.Windows;
  return N;
}

LineHwStats CostLedger::structureTotals(unsigned I) const {
  LineHwStats T;
  for (const auto &[L, C] : Lines) {
    const LineHwStats &S = C.S[I];
    T.Hits += S.Hits;
    T.Misses += S.Misses;
    T.Evictions += S.Evictions;
    T.Writebacks += S.Writebacks;
    T.LineFills += S.LineFills;
  }
  return T;
}

double CostLedger::totalLeakBits() const {
  // Label-index order: the same summation LeakAudit::totalBitsBound runs.
  double Total = 0;
  for (double B : LevelBits)
    Total += B;
  return Total;
}

JsonValue CostLedger::toJson() const {
  JsonValue Doc = JsonValue::object();

  JsonValue LineArr = JsonValue::array();
  for (const auto &[L, C] : Lines) {
    JsonValue O = JsonValue::object();
    O["line"] = JsonValue(static_cast<uint64_t>(C.Line));
    O["cycles"] = JsonValue(C.totalCycles());
    O["step_cycles"] = JsonValue(C.StepCycles);
    O["sleep_cycles"] = JsonValue(C.SleepCycles);
    O["pad_cycles"] = JsonValue(C.PadCycles);
    O["accesses"] = JsonValue(C.Accesses);
    O["windows"] = JsonValue(C.Windows);
    O["leak_bits"] = JsonValue(C.LeakBits);
    JsonValue Hw = JsonValue::object();
    for (unsigned I = 0; I != kStructures; ++I) {
      const LineHwStats &S = C.S[I];
      JsonValue St = JsonValue::object();
      St["hits"] = JsonValue(S.Hits);
      St["misses"] = JsonValue(S.Misses);
      St["evictions"] = JsonValue(S.Evictions);
      St["writebacks"] = JsonValue(S.Writebacks);
      St["line_fills"] = JsonValue(S.LineFills);
      Hw[structureName(I)] = std::move(St);
    }
    O["hw"] = std::move(Hw);
    LineArr.push(std::move(O));
  }
  Doc["lines"] = std::move(LineArr);

  JsonValue SiteArr = JsonValue::array();
  for (const auto &[Eta, S] : Sites) {
    JsonValue O = JsonValue::object();
    O["eta"] = JsonValue(static_cast<uint64_t>(S.Eta));
    O["line"] = JsonValue(static_cast<uint64_t>(S.Line));
    O["windows"] = JsonValue(S.Windows);
    O["pad_cycles"] = JsonValue(S.PadCycles);
    O["leak_bits"] = JsonValue(S.LeakBits);
    SiteArr.push(std::move(O));
  }
  Doc["sites"] = std::move(SiteArr);

  JsonValue Totals = JsonValue::object();
  Totals["cycles"] = JsonValue(totalCycles());
  Totals["sleep_cycles"] = JsonValue(totalSleepCycles());
  Totals["pad_cycles"] = JsonValue(totalPadCycles());
  Totals["accesses"] = JsonValue(totalAccesses());
  Totals["windows"] = JsonValue(totalWindows());
  Totals["leak_bits"] = JsonValue(totalLeakBits());
  Doc["totals"] = std::move(Totals);
  return Doc;
}

/// Lines ranked by total cycles, hottest first; ties toward the smaller
/// line number so the ranking (and everything derived from it) is stable.
static std::vector<const LineCost *>
rankedLines(const std::map<uint32_t, LineCost> &Lines) {
  std::vector<const LineCost *> R;
  R.reserve(Lines.size());
  for (const auto &[L, C] : Lines)
    R.push_back(&C);
  std::stable_sort(R.begin(), R.end(),
                   [](const LineCost *A, const LineCost *B) {
                     if (A->totalCycles() != B->totalCycles())
                       return A->totalCycles() > B->totalCycles();
                     return A->Line < B->Line;
                   });
  return R;
}

void CostLedger::exportMetrics(MetricsRegistry &Reg, size_t TopK,
                               const std::string &Prefix) const {
  Reg.setCounter(Prefix + "prof.cycles", totalCycles());
  Reg.setCounter(Prefix + "prof.sleep_cycles", totalSleepCycles());
  Reg.setCounter(Prefix + "prof.pad_cycles", totalPadCycles());
  Reg.setCounter(Prefix + "prof.accesses", totalAccesses());
  Reg.setCounter(Prefix + "prof.windows", totalWindows());
  Reg.setCounter(Prefix + "prof.lines", Lines.size());
  Reg.setCounter(Prefix + "prof.sites", Sites.size());
  Reg.setGauge(Prefix + "prof.leak_bits", totalLeakBits());

  std::vector<const LineCost *> Ranked = rankedLines(Lines);
  for (size_t I = 0; I != Ranked.size() && I != TopK; ++I) {
    const LineCost &C = *Ranked[I];
    const std::string Base =
        Prefix + "prof.line.L" + std::to_string(C.Line) + ".";
    Reg.setCounter(Base + "cycles", C.totalCycles());
    Reg.setCounter(Base + "misses", C.misses());
    Reg.setCounter(Base + "pad_cycles", C.PadCycles);
    Reg.setGauge(Base + "leak_bits", C.LeakBits);
  }

  for (const auto &[Eta, S] : Sites) {
    const std::string Base =
        Prefix + "prof.site.m" + std::to_string(S.Eta) + ".";
    Reg.setCounter(Base + "windows", S.Windows);
    Reg.setCounter(Base + "pad_cycles", S.PadCycles);
    Reg.setGauge(Base + "leak_bits", S.LeakBits);
  }
}

std::string CostLedger::renderAnnotated(const std::string &Source,
                                        bool Color) const {
  // The three hottest lines get highlighted: red for the hottest, yellow
  // for the next two. Any cost attributed to line 0 (constructs without a
  // source location) is reported separately below the listing.
  std::vector<const LineCost *> Ranked = rankedLines(Lines);
  uint32_t Hot1 = 0, Hot2 = 0, Hot3 = 0;
  size_t Shown = 0;
  for (const LineCost *C : Ranked) {
    if (C->Line == 0 || C->totalCycles() == 0)
      continue;
    if (Shown == 0)
      Hot1 = C->Line;
    else if (Shown == 1)
      Hot2 = C->Line;
    else if (Shown == 2)
      Hot3 = C->Line;
    ++Shown;
    if (Shown == 3)
      break;
  }

  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "%12s %8s %8s %10s  %4s  %s\n", "cycles",
                "misses", "pad", "leak-bits", "line", "source");
  Out += Buf;

  std::stringstream In(Source);
  std::string Text;
  uint32_t N = 0;
  while (std::getline(In, Text)) {
    ++N;
    auto It = Lines.find(N);
    const char *Pre = "";
    const char *Post = "";
    if (Color && It != Lines.end()) {
      if (N == Hot1)
        Pre = "\x1b[31;1m", Post = "\x1b[0m";
      else if (N == Hot2 || N == Hot3)
        Pre = "\x1b[33m", Post = "\x1b[0m";
    }
    if (It == Lines.end()) {
      std::snprintf(Buf, sizeof(Buf), "%12s %8s %8s %10s  %4u  ", ".", ".",
                    ".", ".", N);
    } else {
      const LineCost &C = It->second;
      std::snprintf(Buf, sizeof(Buf),
                    "%s%12" PRIu64 " %8" PRIu64 " %8" PRIu64 " %10.3f%s  %4u  ",
                    Pre, C.totalCycles(), C.misses(), C.PadCycles, C.LeakBits,
                    Post, N);
    }
    Out += Buf;
    Out += Pre;
    Out += Text;
    Out += Post;
    Out += '\n';
  }

  auto NoLoc = Lines.find(0);
  if (NoLoc != Lines.end() && NoLoc->second.totalCycles() != 0) {
    std::snprintf(Buf, sizeof(Buf),
                  "%12" PRIu64 " %8" PRIu64 " %8" PRIu64
                  " %10.3f     .  (no source location)\n",
                  NoLoc->second.totalCycles(), NoLoc->second.misses(),
                  NoLoc->second.PadCycles, NoLoc->second.LeakBits);
    Out += Buf;
  }

  Out += "\n-- hot lines --\n";
  size_t Rank = 0;
  for (const LineCost *C : Ranked) {
    if (C->totalCycles() == 0)
      continue;
    if (++Rank > 5)
      break;
    std::snprintf(Buf, sizeof(Buf),
                  "  #%zu line %-4u %12" PRIu64 " cycles  %8" PRIu64
                  " misses  %8" PRIu64 " pad  %10.3f leak-bits\n",
                  Rank, C->Line, C->totalCycles(), C->misses(), C->PadCycles,
                  C->LeakBits);
    Out += Buf;
  }

  if (!Sites.empty()) {
    Out += "\n-- mitigate sites --\n";
    for (const auto &[Eta, S] : Sites) {
      std::snprintf(Buf, sizeof(Buf),
                    "  m%-3u line %-4u %8" PRIu64 " windows  %10" PRIu64
                    " pad-cycles  %10.3f leak-bits\n",
                    S.Eta, S.Line, S.Windows, S.PadCycles, S.LeakBits);
      Out += Buf;
    }
  }
  return Out;
}
