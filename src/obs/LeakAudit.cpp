//===- LeakAudit.cpp ------------------------------------------------------===//

#include "obs/LeakAudit.h"

#include "obs/TraceReader.h"

#include <cmath>
#include <cstdlib>

using namespace zam;

// The paper-default free functions delegate to the fast-doubling policy
// object, so the doubling math has exactly one home (sem/Mitigation.cpp)
// and these stay bit-identical to the historical implementations.

uint64_t zam::attainableScheduleValues(int64_t Estimate, uint64_t ElapsedTime) {
  return fastDoublingPolicy().attainableValues(Estimate, ElapsedTime);
}

double zam::windowBoundBits(int64_t Estimate, uint64_t ElapsedTime) {
  return fastDoublingPolicy().windowBoundBits(Estimate, ElapsedTime);
}

double zam::mispredictPenaltyBits(unsigned Misses) {
  return fastDoublingPolicy().penaltyBits(Misses);
}

double zam::leakageBoundBits(unsigned UpwardClosureSize,
                             uint64_t RelevantMitigates, uint64_t ElapsedTime) {
  return fastDoublingPolicy().closedFormBoundBits(
      UpwardClosureSize, RelevantMitigates, ElapsedTime);
}

LeakAudit::LeakAudit(const SecurityLattice &Lat, std::optional<Label> Adversary,
                     PolicySelection Policies)
    : Lat(Lat), Adversary(Adversary), Policies(std::move(Policies)),
      Accounts(Lat.size()) {}

bool LeakAudit::counts(const MitigateRecord &R) const {
  if (!Adversary)
    return true;
  // Sec. 6.1: the window is an ℓA-observation iff its context is visible
  // (pc ⊑ ℓA) and its duration carries above-ℓA information (lev ⋢ ℓA) —
  // the Definition 2 projection under the conservative all-sources L.
  return Lat.flowsTo(R.PcLabel, *Adversary) &&
         !Lat.flowsTo(R.Level, *Adversary);
}

void LeakAudit::onWindow(const MitigateRecord &R) {
  if (!counts(R))
    return;
  LeakWindow W;
  W.Eta = R.Eta;
  W.Level = R.Level;
  W.Pc = R.PcLabel;
  W.Start = R.Start;
  W.Duration = R.Duration;
  W.Estimate = R.Estimate;
  W.MissesAfter = R.MissesAfter;
  W.Mispredicted = R.Mispredicted;
  W.Line = R.Line;
  // T_i is the window's own completion time on the global clock: every
  // schedule value attainable by then was a possible public duration —
  // counted under the policy that actually scheduled this site.
  W.Policy = &Policies.forSite(R.Eta);
  W.Attainable = W.Policy->attainableValues(R.Estimate, R.Start + R.Duration);
  W.WindowBits = std::log2(static_cast<double>(W.Attainable));

  LevelAccount &A = Accounts[R.Level.index()];
  ++A.Windows;
  A.Misses = R.MissesAfter;
  A.BitsBound += W.WindowBits;
  W.CumLevelBits = A.BitsBound;
  ++CountedWindows;
  if (RetainWindows)
    Counted.push_back(W);
}

void LeakAudit::ingest(const Trace &T) {
  for (const MitigateRecord &R : T.Mitigations)
    onWindow(R);
}

bool LeakAudit::replay(TraceReader &Reader, std::string &Err) {
  // Miss[ℓ] rebuilt from the stream by re-running the Fig. 6 update loop:
  // one window can bump Miss[ℓ] several times (each doubling epoch the
  // body outran), so the span's boolean mispredicted flag is not enough —
  // settle() on the recorded estimate and consumed time reproduces the
  // exact increment count. exportTrace always emits every mitigate span,
  // so replay order reproduces the online table; the recomputed padded
  // duration is checked against the recorded one to catch a policy or
  // penalty-granularity mismatch.
  MitigationState State(Lat, Policies.base(), PenaltyPolicy::PerLevel);
  TraceRecord R;
  while (Reader.next(R)) {
    if (R.RecordKind != TraceRecord::Kind::Span || R.Category != "mit")
      continue;
    MitigateRecord M;
    const size_t Hash = R.Name.rfind('#');
    if (Hash != std::string::npos)
      M.Eta = static_cast<unsigned>(
          std::strtoul(R.Name.c_str() + Hash + 1, nullptr, 10));
    std::string LevelName, PcName;
    for (const auto &[Key, Value] : R.Args) {
      if (Key == "level")
        LevelName = Value;
      else if (Key == "pc")
        PcName = Value;
      else if (Key == "estimate")
        M.Estimate = std::strtoll(Value.c_str(), nullptr, 10);
      else if (Key == "consumed")
        M.BodyTime = std::strtoull(Value.c_str(), nullptr, 10);
      else if (Key == "mispredicted")
        M.Mispredicted = Value == "true";
      else if (Key == "loc")
        M.Line = static_cast<uint32_t>(
            std::strtoul(Value.c_str(), nullptr, 10));
    }
    const std::optional<Label> Level = Lat.byName(LevelName);
    const std::optional<Label> Pc = Lat.byName(PcName);
    if (!Level || !Pc) {
      Err = "mitigate span '" + R.Name + "' names an unknown level";
      return false;
    }
    M.Level = *Level;
    M.PcLabel = *Pc;
    M.Start = R.Ts;
    M.Duration = R.Dur;
    const MitigationState::Outcome Out =
        State.settle(M.Estimate, M.Level, M.BodyTime, Policies.forSite(M.Eta));
    if (Out.Duration != M.Duration || Out.Mispredicted != M.Mispredicted) {
      Err = "mitigate span '" + R.Name +
            "' diverges from the replayed schedule (policy or penalty "
            "mismatch)";
      return false;
    }
    M.MissesAfter = State.misses(M.Level);
    onWindow(M);
  }
  if (!Reader.ok()) {
    Err = Reader.error();
    return false;
  }
  return true;
}

void LeakAudit::reset() {
  Counted.clear();
  CountedWindows = 0;
  Accounts.assign(Lat.size(), LevelAccount());
}

double LeakAudit::totalBitsBound() const {
  double Total = 0;
  for (const LevelAccount &A : Accounts)
    Total += A.BitsBound;
  return Total;
}

void LeakAudit::exportMetrics(MetricsRegistry &Reg,
                              const std::string &Prefix) const {
  for (Label L : Lat.allLabels()) {
    const LevelAccount &A = Accounts[L.index()];
    const std::string Base = Prefix + "leak." + Lat.name(L) + ".";
    Reg.setCounter(Base + "windows", A.Windows);
    Reg.setGauge(Base + "bits_bound", A.BitsBound);
    Reg.setGauge(Base + "mispredict_penalty_bits",
                 Policies.base().penaltyBits(A.Misses));
  }
  Reg.setCounter(Prefix + "leak.windows", CountedWindows);
  Reg.setGauge(Prefix + "leak.total_bits_bound", totalBitsBound());
}
