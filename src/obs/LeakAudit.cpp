//===- LeakAudit.cpp ------------------------------------------------------===//

#include "obs/LeakAudit.h"

#include <cmath>

using namespace zam;

// The paper-default free functions delegate to the fast-doubling policy
// object, so the doubling math has exactly one home (sem/Mitigation.cpp)
// and these stay bit-identical to the historical implementations.

uint64_t zam::attainableScheduleValues(int64_t Estimate, uint64_t ElapsedTime) {
  return fastDoublingPolicy().attainableValues(Estimate, ElapsedTime);
}

double zam::windowBoundBits(int64_t Estimate, uint64_t ElapsedTime) {
  return fastDoublingPolicy().windowBoundBits(Estimate, ElapsedTime);
}

double zam::mispredictPenaltyBits(unsigned Misses) {
  return fastDoublingPolicy().penaltyBits(Misses);
}

double zam::leakageBoundBits(unsigned UpwardClosureSize,
                             uint64_t RelevantMitigates, uint64_t ElapsedTime) {
  return fastDoublingPolicy().closedFormBoundBits(
      UpwardClosureSize, RelevantMitigates, ElapsedTime);
}

LeakAudit::LeakAudit(const SecurityLattice &Lat, std::optional<Label> Adversary,
                     PolicySelection Policies)
    : Lat(Lat), Adversary(Adversary), Policies(std::move(Policies)),
      Accounts(Lat.size()) {}

bool LeakAudit::counts(const MitigateRecord &R) const {
  if (!Adversary)
    return true;
  // Sec. 6.1: the window is an ℓA-observation iff its context is visible
  // (pc ⊑ ℓA) and its duration carries above-ℓA information (lev ⋢ ℓA) —
  // the Definition 2 projection under the conservative all-sources L.
  return Lat.flowsTo(R.PcLabel, *Adversary) &&
         !Lat.flowsTo(R.Level, *Adversary);
}

void LeakAudit::onWindow(const MitigateRecord &R) {
  if (!counts(R))
    return;
  LeakWindow W;
  W.Eta = R.Eta;
  W.Level = R.Level;
  W.Pc = R.PcLabel;
  W.Start = R.Start;
  W.Duration = R.Duration;
  W.Estimate = R.Estimate;
  W.MissesAfter = R.MissesAfter;
  W.Mispredicted = R.Mispredicted;
  W.Line = R.Line;
  // T_i is the window's own completion time on the global clock: every
  // schedule value attainable by then was a possible public duration —
  // counted under the policy that actually scheduled this site.
  W.Policy = &Policies.forSite(R.Eta);
  W.Attainable = W.Policy->attainableValues(R.Estimate, R.Start + R.Duration);
  W.WindowBits = std::log2(static_cast<double>(W.Attainable));

  LevelAccount &A = Accounts[R.Level.index()];
  ++A.Windows;
  A.Misses = R.MissesAfter;
  A.BitsBound += W.WindowBits;
  W.CumLevelBits = A.BitsBound;
  Counted.push_back(W);
}

void LeakAudit::ingest(const Trace &T) {
  for (const MitigateRecord &R : T.Mitigations)
    onWindow(R);
}

void LeakAudit::reset() {
  Counted.clear();
  Accounts.assign(Lat.size(), LevelAccount());
}

double LeakAudit::totalBitsBound() const {
  double Total = 0;
  for (const LevelAccount &A : Accounts)
    Total += A.BitsBound;
  return Total;
}

void LeakAudit::exportMetrics(MetricsRegistry &Reg,
                              const std::string &Prefix) const {
  for (Label L : Lat.allLabels()) {
    const LevelAccount &A = Accounts[L.index()];
    const std::string Base = Prefix + "leak." + Lat.name(L) + ".";
    Reg.setCounter(Base + "windows", A.Windows);
    Reg.setGauge(Base + "bits_bound", A.BitsBound);
    Reg.setGauge(Base + "mispredict_penalty_bits",
                 Policies.base().penaltyBits(A.Misses));
  }
  Reg.setCounter(Prefix + "leak.windows", Counted.size());
  Reg.setGauge(Prefix + "leak.total_bits_bound", totalBitsBound());
}
