//===- LeakAudit.cpp ------------------------------------------------------===//

#include "obs/LeakAudit.h"

#include <cmath>

using namespace zam;

uint64_t zam::attainableScheduleValues(int64_t Estimate, uint64_t ElapsedTime) {
  const uint64_t N = Estimate > 0 ? static_cast<uint64_t>(Estimate) : 1;
  if (ElapsedTime <= N)
    return 1;
  uint64_t Count = 1;
  // v ≤ T/2 (integer division) ⟺ 2v ≤ T without overflow.
  for (uint64_t V = N; V <= ElapsedTime / 2; V <<= 1)
    ++Count;
  return Count;
}

double zam::windowBoundBits(int64_t Estimate, uint64_t ElapsedTime) {
  return std::log2(
      static_cast<double>(attainableScheduleValues(Estimate, ElapsedTime)));
}

double zam::mispredictPenaltyBits(unsigned Misses) {
  return std::log2(static_cast<double>(Misses) + 1.0);
}

double zam::leakageBoundBits(unsigned UpwardClosureSize,
                             uint64_t RelevantMitigates, uint64_t ElapsedTime) {
  if (RelevantMitigates == 0)
    return 0;
  double LogK = std::log2(static_cast<double>(RelevantMitigates) + 1.0);
  double LogT =
      ElapsedTime > 0 ? std::log2(static_cast<double>(ElapsedTime)) : 0.0;
  return static_cast<double>(UpwardClosureSize) * LogK * (1.0 + LogT);
}

LeakAudit::LeakAudit(const SecurityLattice &Lat, std::optional<Label> Adversary)
    : Lat(Lat), Adversary(Adversary), Accounts(Lat.size()) {}

bool LeakAudit::counts(const MitigateRecord &R) const {
  if (!Adversary)
    return true;
  // Sec. 6.1: the window is an ℓA-observation iff its context is visible
  // (pc ⊑ ℓA) and its duration carries above-ℓA information (lev ⋢ ℓA) —
  // the Definition 2 projection under the conservative all-sources L.
  return Lat.flowsTo(R.PcLabel, *Adversary) &&
         !Lat.flowsTo(R.Level, *Adversary);
}

void LeakAudit::onWindow(const MitigateRecord &R) {
  if (!counts(R))
    return;
  LeakWindow W;
  W.Eta = R.Eta;
  W.Level = R.Level;
  W.Pc = R.PcLabel;
  W.Start = R.Start;
  W.Duration = R.Duration;
  W.Estimate = R.Estimate;
  W.MissesAfter = R.MissesAfter;
  W.Mispredicted = R.Mispredicted;
  W.Line = R.Line;
  // T_i is the window's own completion time on the global clock: every
  // schedule value attainable by then was a possible public duration.
  W.Attainable = attainableScheduleValues(R.Estimate, R.Start + R.Duration);
  W.WindowBits = std::log2(static_cast<double>(W.Attainable));

  LevelAccount &A = Accounts[R.Level.index()];
  ++A.Windows;
  A.Misses = R.MissesAfter;
  A.BitsBound += W.WindowBits;
  W.CumLevelBits = A.BitsBound;
  Counted.push_back(W);
}

void LeakAudit::ingest(const Trace &T) {
  for (const MitigateRecord &R : T.Mitigations)
    onWindow(R);
}

void LeakAudit::reset() {
  Counted.clear();
  Accounts.assign(Lat.size(), LevelAccount());
}

double LeakAudit::totalBitsBound() const {
  double Total = 0;
  for (const LevelAccount &A : Accounts)
    Total += A.BitsBound;
  return Total;
}

void LeakAudit::exportMetrics(MetricsRegistry &Reg,
                              const std::string &Prefix) const {
  for (Label L : Lat.allLabels()) {
    const LevelAccount &A = Accounts[L.index()];
    const std::string Base = Prefix + "leak." + Lat.name(L) + ".";
    Reg.setCounter(Base + "windows", A.Windows);
    Reg.setGauge(Base + "bits_bound", A.BitsBound);
    Reg.setGauge(Base + "mispredict_penalty_bits",
                 mispredictPenaltyBits(A.Misses));
  }
  Reg.setCounter(Prefix + "leak.windows", Counted.size());
  Reg.setGauge(Prefix + "leak.total_bits_bound", totalBitsBound());
}
