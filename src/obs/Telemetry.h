//===- Telemetry.h - Metric collectors and trace export ---------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the deterministic run artifacts (sem::Trace, hw::HwStats)
/// and the telemetry representations (MetricsRegistry, TraceSink). This is
/// where the counter namespace lives:
///
///   hw.<structure>.{hits,misses,evictions,writebacks,line_fills}
///     for structure in l1d, l2d, l1i, l2i, dtlb, itlb
///   interp.{steps,assignments,branches,mitigate_entries,events,
///           final_time_cycles}
///   mit.{predictions,mispredictions,padded_idle_cycles}
///   mit.miss_table.<level>   — the per-level Miss table at completion
///   leak.<level>.{windows,bits_bound,mispredict_penalty_bits} and
///   leak.{windows,total_bits_bound} — the running Sec. 6 bounds
///     (emitted by obs/LeakAudit.h, not the collectors below)
///   prof.{cycles,sleep_cycles,pad_cycles,accesses,windows,lines,sites,
///         leak_bits}, prof.line.L<line>.* (top-K hot lines) and
///   prof.site.m<eta>.* — the source-attribution profile
///     (emitted by obs/CostLedger.h)
///
/// and where the adversary projection of Sec. 6.1 is applied to exported
/// timelines: with an adversary level ℓA set, assignment events survive iff
/// Γ(x) ⊑ ℓA (the same test TraceDump uses) and cache-miss instants are
/// dropped entirely (machine-internal state, invisible to a language-level
/// observer). Mitigate spans are always kept: their padded durations are
/// exactly the public schedule values the mitigator releases.
///
/// All collected metrics derive from deterministic run data only — no
/// wall-clock — so they may appear in byte-stable report JSON.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_TELEMETRY_H
#define ZAM_OBS_TELEMETRY_H

#include "hw/CacheConfig.h"
#include "lattice/SecurityLattice.h"
#include "obs/Metrics.h"
#include "obs/TraceSink.h"
#include "sem/Event.h"
#include "sem/Mitigation.h"

#include <memory>
#include <optional>

namespace zam {

class CostLedger;

/// Folds \p Hw into \p Reg under `[Prefix]hw.<structure>.<counter>` names.
void collectHwMetrics(MetricsRegistry &Reg, const HwStats &Hw,
                      const std::string &Prefix = "");

/// Folds the interpreter and mitigator counters of \p T into \p Reg under
/// `[Prefix]interp.*` and `[Prefix]mit.*` names. \p Lat supplies the level
/// names for the Miss-table snapshot.
void collectTraceMetrics(MetricsRegistry &Reg, const Trace &T,
                         const SecurityLattice &Lat,
                         const std::string &Prefix = "");

/// collectTraceMetrics + collectHwMetrics in the canonical order
/// (interpreter, mitigator, hardware).
void collectRunMetrics(MetricsRegistry &Reg, const Trace &T, const HwStats &Hw,
                       const SecurityLattice &Lat,
                       const std::string &Prefix = "");

/// Serialization format for exported traces.
enum class TraceFormat {
  Jsonl,  ///< One JSON object per line.
  Chrome, ///< Chrome trace-event array (chrome://tracing, Perfetto).
  Ztb,    ///< Compact binary (obs/Ztb.h) for million-window runs.
};

/// Parses "jsonl"/"chrome"/"ztb"; std::nullopt otherwise.
std::optional<TraceFormat> parseTraceFormat(const std::string &Name);

/// Infers the format from \p Path's extension: .jsonl → Jsonl,
/// .json → Chrome, .ztb → Ztb; std::nullopt for anything else (callers
/// report an unknown-extension error unless --trace-format overrides).
std::optional<TraceFormat> inferTraceFormat(const std::string &Path);

/// The canonical CLI name of \p Format ("jsonl"/"chrome"/"ztb").
const char *traceFormatName(TraceFormat Format);

/// Builds a buffering sink for \p Format (finish() returns the bytes).
std::unique_ptr<TraceSink> makeTraceSink(TraceFormat Format);

/// Builds a streaming sink for \p Format that emits incrementally through
/// \p Out (call close() when done); O(1) memory with a FileByteSink.
std::unique_ptr<TraceSink> makeTraceSink(TraceFormat Format, ByteSink &Out);

/// What exportTrace() emits.
struct TraceExportOptions {
  /// When set, project to this adversary level: assignment events are
  /// filtered by Γ(x) ⊑ ℓA and cache-miss instants are dropped.
  std::optional<Label> Adversary;
  bool IncludeEvents = true;
  bool IncludeMitigations = true;
  bool IncludeMisses = true;
  /// Emit a leak_budget span (cat "leak") per mitigate window the leakage
  /// accountant counts under the same adversary projection, carrying the
  /// priced Sec. 6 terms (obs/LeakAudit.h). tools/zamtrace recomputes the
  /// bound from these spans and cross-checks it against leak.* metrics.
  bool IncludeLeakBudget = true;
  /// When set (and no adversary projection is active), embed the source
  /// profile: one prof_line#/prof_site# instant (cat "prof") per ledger row
  /// at the run's final time. tools/zamtrace rebuilds what it can from the
  /// event stream and demands bit-for-bit agreement with these rows.
  const CostLedger *Ledger = nullptr;
  /// The run's mitigation-policy selection; must mirror the interpreter's
  /// so leak_budget spans are priced by the schedule that produced them.
  /// Sites whose policy differs from the run default additionally carry a
  /// per-span "policy" arg, so offline readers reconstruct the selection
  /// from the trace alone.
  PolicySelection Mitigation;
  /// When nonzero (and leak_budget spans are on), emit a metrics-snapshot
  /// meta row (name "snapshot", cat "obs") after every Nth counted window,
  /// carrying the running window count and Sec. 6 bits bound — a
  /// deterministic time series zamtrace report renders as a sparkline.
  /// Off by default so existing trace bytes are unchanged.
  uint64_t SnapshotEveryWindows = 0;
};

/// Streams \p T into \p Sink as one merged, time-ordered record sequence:
/// assignment instants (cat "interp"), mitigate spans (cat "mit"),
/// leak_budget spans (cat "leak"), cache-miss instants (cat "hw") and —
/// when a ledger is attached — source-profile rows (cat "prof").
/// \returns the number of records emitted.
size_t exportTrace(TraceSink &Sink, const Trace &T, const SecurityLattice &Lat,
                   const TraceExportOptions &Opts = TraceExportOptions());

/// Build provenance as trace-header key/value pairs: tool version, git
/// hash, compiler, build type and \p Threads (the configured worker count;
/// 0 = auto). Pass to TraceSink::header before exporting.
std::vector<std::pair<std::string, std::string>> provenanceArgs(
    unsigned Threads);

/// provenanceArgs plus the mitigation-policy record: when \p Mitigation is
/// anything but default fast-doubling, appends "mitigation" (the default
/// policy's canonical spec) and, with per-site overrides,
/// "mitigation_sites" ("eta=spec,..."). The paper-default configuration
/// adds no keys, so default-run artifacts stay byte-identical to the
/// pre-policy format; offline readers treat the absent key as
/// fast-doubling.
std::vector<std::pair<std::string, std::string>> provenanceArgs(
    unsigned Threads, const PolicySelection &Mitigation);

/// The same provenance as a JSON object — the `meta` block of `--stats`
/// and bench report documents.
JsonValue provenanceJson(unsigned Threads);

/// provenanceJson with the conditional mitigation-policy record (see the
/// provenanceArgs overload).
JsonValue provenanceJson(unsigned Threads, const PolicySelection &Mitigation);

} // namespace zam

#endif // ZAM_OBS_TELEMETRY_H
