//===- TraceReader.h - Pull-based trace decoding ----------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read side of the structured-tracing subsystem: pull-based,
/// single-pass decoders that stream TraceRecords out of any of the three
/// on-disk formats (JSONL, Chrome trace-event array, ZTB binary) without
/// loading the file into memory. Consumers (tools/zamtrace,
/// LeakAudit::replay) see one uniform record model:
///
///   - The provenance header surfaces as a leading Kind::Meta record with
///     an empty Name; mid-stream metadata rows (metrics snapshots) are
///     Kind::Meta records with their name set.
///   - Arg values are the producer's strings: number-literal args
///     round-trip through jsonNumberString, so a double re-parsed with
///     strtod is bit-identical to the one the producer held.
///
/// Decode errors set error() and, where the format allows (ZTB frame
/// markers), the reader resynchronizes and keeps yielding records; text
/// readers stop at the first malformed line.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_TRACEREADER_H
#define ZAM_OBS_TRACEREADER_H

#include "obs/TraceSink.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace zam {

/// Abstract pull-based source of trace records.
class TraceReader {
public:
  virtual ~TraceReader();

  /// Pulls the next record into \p R; false at end of stream.
  virtual bool next(TraceRecord &R) = 0;

  /// Empty while the stream decodes cleanly; else the first error seen.
  const std::string &error() const { return Err; }
  bool ok() const { return Err.empty(); }

protected:
  /// Records the first decode error (later ones are dropped).
  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
  }

  std::string Err;
};

/// Streams one JSON object per line. Blank lines are skipped; the first
/// malformed line stops the stream with error() set.
class JsonlTraceReader final : public TraceReader {
public:
  /// Reads from \p F (binary mode); closes it on destruction when
  /// \p TakeOwnership.
  JsonlTraceReader(std::FILE *F, bool TakeOwnership);
  ~JsonlTraceReader() override;

  bool next(TraceRecord &R) override;

private:
  std::FILE *F;
  bool Owns;
  std::string Line;
};

/// Streams a Chrome trace-event array written by ChromeTraceSink: one
/// event object per line between the "[" and "]" lines. (Arbitrary
/// hand-reflowed Chrome JSON is out of scope — re-export or reflow to one
/// event per line.)
class ChromeTraceReader final : public TraceReader {
public:
  ChromeTraceReader(std::FILE *F, bool TakeOwnership);
  ~ChromeTraceReader() override;

  bool next(TraceRecord &R) override;

private:
  std::FILE *F;
  bool Owns;
  bool SawOpen = false;
  bool Done = false;
  std::string Line;
};

/// Streams the ZTB binary format (obs/Ztb.h). On a framing error the
/// reader scans forward to the next frame marker and resumes, so a
/// corrupted or truncated file still yields every decodable record;
/// error() reports the first problem.
class ZtbTraceReader final : public TraceReader {
public:
  ZtbTraceReader(std::FILE *F, bool TakeOwnership);
  ~ZtbTraceReader() override;

  bool next(TraceRecord &R) override;

private:
  bool readPreamble();
  bool refill();
  int getByte();
  int peekByte();
  bool readVarint(uint64_t &V);
  /// readVarint inside the preamble, with fail() set to a message that
  /// distinguishes truncation (EOF mid-varint) from corrupt framing.
  bool readHeaderVarint(uint64_t &V);
  bool resync();

  std::FILE *F;
  bool Owns;
  std::vector<char> Buf;
  size_t Pos = 0, End = 0;
  bool SawPreamble = false;
  bool Dead = false;
  bool HeaderPending = false;
  TraceRecord Header;
  std::string Payload;
};

/// Opens \p Path and sniffs the format: the ZTB magic selects the binary
/// reader, a leading '[' the Chrome reader, anything else JSONL. Returns
/// nullptr with \p Err set when the file cannot be opened.
std::unique_ptr<TraceReader> openTraceReader(const std::string &Path,
                                             std::string &Err);

} // namespace zam

#endif // ZAM_OBS_TRACEREADER_H
