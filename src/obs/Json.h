//===- Json.h - Minimal JSON document model ---------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON value type shared by the telemetry layer
/// (metrics registries, trace sinks) and the experiment harness, which uses
/// it to emit machine-readable reports (`--json`) and to round-trip them in
/// tests. Object keys keep insertion order so that emitted documents are
/// byte-stable across runs and thread counts — a requirement for the
/// harness's bit-identical-output guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_OBS_JSON_H
#define ZAM_OBS_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace zam {

/// A JSON document node: null, bool, number, string, array or object.
/// Numbers remember whether they were integral so cycle counts print
/// without a spurious fraction.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool B) : K(Kind::Bool), BoolV(B) {}
  JsonValue(double D) : K(Kind::Number), NumV(D) {}
  JsonValue(int64_t I)
      : K(Kind::Number), NumV(static_cast<double>(I)), IsInt(true) {}
  JsonValue(uint64_t U)
      : K(Kind::Number), NumV(static_cast<double>(U)), IsInt(true) {}
  JsonValue(int I) : JsonValue(static_cast<int64_t>(I)) {}
  JsonValue(unsigned U) : JsonValue(static_cast<uint64_t>(U)) {}
  JsonValue(std::string S) : K(Kind::String), StrV(std::move(S)) {}
  JsonValue(const char *S) : K(Kind::String), StrV(S) {}

  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }

  bool asBool() const { return BoolV; }
  double asNumber() const { return NumV; }
  const std::string &asString() const { return StrV; }

  /// Array access. push() asserts the value is (or becomes) an array.
  void push(JsonValue V);
  size_t size() const { return Items.size(); }
  const JsonValue &at(size_t I) const { return Items[I]; }

  /// Object access: insert-or-get by key, preserving insertion order.
  JsonValue &operator[](const std::string &Key);
  /// Lookup without insertion; nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Structural equality. Numbers compare by value (an integral 2 equals a
  /// parsed 2), so dump/parse round-trips compare equal.
  bool operator==(const JsonValue &Other) const;
  bool operator!=(const JsonValue &Other) const { return !(*this == Other); }

  /// Serializes with two-space indentation and a trailing newline at the
  /// top level. Key and element order is preserved.
  std::string dump() const;

  /// Parses a JSON document; std::nullopt on malformed input.
  static std::optional<JsonValue> parse(const std::string &Text);

private:
  void dumpTo(std::string &Out, unsigned Depth) const;

  Kind K;
  bool BoolV = false;
  double NumV = 0;
  bool IsInt = false;
  std::string StrV;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// The shortest decimal representation of \p V that parses back to exactly
/// the same double — the formatting JsonValue::dump uses. Producers that
/// hand-serialize doubles (trace args) use this so a parse-back yields the
/// bit-identical value.
std::string jsonNumberString(double V);

} // namespace zam

#endif // ZAM_OBS_JSON_H
