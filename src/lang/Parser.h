//===- Parser.h - Recursive-descent parser ----------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the concrete syntax of the Fig. 1 language:
///
///   program := decl* cmd
///   decl    := "var" ident ":" label ("[" int "]")? ("=" init)? ";"
///   init    := intlit | "{" intlit ("," intlit)* "}"
///   cmd     := simple (";" cmd)?
///   simple  := "skip" ann?
///            | ident ":=" expr ann?
///            | ident "[" expr "]" ":=" expr ann?
///            | "if" expr "then" block "else" block ann?
///            | "while" expr "do" block ann?
///            | "mitigate" "(" expr "," label ")" block ann?
///            | "sleep" "(" expr ")" ann?
///            | block
///   block   := "{" cmd "}"
///   ann     := "@[" label "," label "]"        -- the [er, ew] pair
///   label   := ident                            -- resolved via the lattice
///
/// Expressions use C-like precedence. Label names are resolved against the
/// SecurityLattice supplied at construction; unknown names are diagnosed.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_LANG_PARSER_H
#define ZAM_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"
#include "support/Diagnostics.h"

#include <optional>

namespace zam {

/// Recursive-descent parser. On error the parser reports into the
/// DiagnosticEngine and returns std::nullopt; there is no exception use.
class Parser {
public:
  Parser(std::string Source, const SecurityLattice &Lat,
         DiagnosticEngine &Diags);

  /// Parses a full program (declarations + body) and numbers its nodes.
  std::optional<Program> parseProgram();

  /// Parses a single command (no declarations); used by tests.
  CmdPtr parseCommandOnly();

  /// Parses a single expression; used by tests.
  ExprPtr parseExprOnly();

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokKind Kind) const { return peek().Kind == Kind; }
  bool accept(TokKind Kind);
  bool expect(TokKind Kind, const char *Context);

  std::optional<Label> parseLabelName();
  void parseAnnotation(Cmd &C);
  bool parseDecl(Program &P);
  CmdPtr parseCmd();
  CmdPtr parseSimpleCmd();
  CmdPtr parseBlock();
  ExprPtr parseExpr() { return parseBinary(0); }
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  const SecurityLattice &Lat;
  DiagnosticEngine &Diags;
  std::vector<Token> Toks;
  size_t Pos = 0;
};

/// Convenience wrapper: lex+parse \p Source, returning the program or
/// std::nullopt with diagnostics in \p Diags.
std::optional<Program> parseProgram(const std::string &Source,
                                    const SecurityLattice &Lat,
                                    DiagnosticEngine &Diags);

} // namespace zam

#endif // ZAM_LANG_PARSER_H
