//===- PrettyPrinter.cpp --------------------------------------------------===//

#include "lang/PrettyPrinter.h"

#include "support/Casting.h"

#include <cinttypes>
#include <cstdio>

using namespace zam;

std::string zam::printExpr(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::IntLit: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, cast<IntLitExpr>(E).value());
    return Buf;
  }
  case Expr::Kind::Var:
    return cast<VarExpr>(E).name();
  case Expr::Kind::ArrayRead: {
    const auto &AR = cast<ArrayReadExpr>(E);
    return AR.array() + "[" + printExpr(AR.index()) + "]";
  }
  case Expr::Kind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    return "(" + printExpr(BO.lhs()) + " " + binOpSpelling(BO.op()) + " " +
           printExpr(BO.rhs()) + ")";
  }
  case Expr::Kind::UnOp: {
    const auto &UO = cast<UnOpExpr>(E);
    return std::string(unOpSpelling(UO.op())) + "(" + printExpr(UO.sub()) + ")";
  }
  }
  return "<?>";
}

static std::string annotation(const Cmd &C, const SecurityLattice &Lat) {
  if (C.isSeq())
    return "";
  const TimingLabels &L = C.labels();
  if (!L.Read && !L.Write)
    return "";
  std::string Out = " @[";
  Out += L.Read ? Lat.name(*L.Read) : "?";
  Out += ",";
  Out += L.Write ? Lat.name(*L.Write) : "?";
  Out += "]";
  return Out;
}

static std::string indentStr(unsigned Indent) {
  return std::string(Indent * 2, ' ');
}

std::string zam::printCmd(const Cmd &C, const SecurityLattice &Lat,
                          unsigned Indent) {
  const std::string Pad = indentStr(Indent);
  switch (C.kind()) {
  case Cmd::Kind::Skip:
    return Pad + "skip" + annotation(C, Lat);
  case Cmd::Kind::Assign: {
    const auto &A = cast<AssignCmd>(C);
    return Pad + A.var() + " := " + printExpr(A.value()) + annotation(C, Lat);
  }
  case Cmd::Kind::ArrayAssign: {
    const auto &A = cast<ArrayAssignCmd>(C);
    return Pad + A.array() + "[" + printExpr(A.index()) +
           "] := " + printExpr(A.value()) + annotation(C, Lat);
  }
  case Cmd::Kind::Seq: {
    const auto &S = cast<SeqCmd>(C);
    return printCmd(S.first(), Lat, Indent) + ";\n" +
           printCmd(S.second(), Lat, Indent);
  }
  case Cmd::Kind::If: {
    const auto &I = cast<IfCmd>(C);
    return Pad + "if " + printExpr(I.cond()) + " then {\n" +
           printCmd(I.thenCmd(), Lat, Indent + 1) + "\n" + Pad + "} else {\n" +
           printCmd(I.elseCmd(), Lat, Indent + 1) + "\n" + Pad + "}" +
           annotation(C, Lat);
  }
  case Cmd::Kind::While: {
    const auto &W = cast<WhileCmd>(C);
    return Pad + "while " + printExpr(W.cond()) + " do {\n" +
           printCmd(W.body(), Lat, Indent + 1) + "\n" + Pad + "}" +
           annotation(C, Lat);
  }
  case Cmd::Kind::Mitigate: {
    const auto &M = cast<MitigateCmd>(C);
    return Pad + "mitigate (" + printExpr(M.initialEstimate()) + ", " +
           Lat.name(M.mitLevel()) + ") {\n" +
           printCmd(M.body(), Lat, Indent + 1) + "\n" + Pad + "}" +
           annotation(C, Lat);
  }
  case Cmd::Kind::Sleep: {
    const auto &S = cast<SleepCmd>(C);
    return Pad + "sleep (" + printExpr(S.duration()) + ")" + annotation(C, Lat);
  }
  }
  return Pad + "<?>";
}

std::string zam::printProgram(const Program &P) {
  std::string Out;
  const SecurityLattice &Lat = P.lattice();
  for (const VarDecl &D : P.vars()) {
    Out += "var " + D.Name + " : " + Lat.name(D.SecLabel);
    if (D.IsArray) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "[%" PRIu64 "]", D.Size);
      Out += Buf;
    }
    if (!D.Init.empty()) {
      Out += " = ";
      if (D.IsArray) {
        Out += "{";
        for (size_t I = 0; I != D.Init.size(); ++I) {
          if (I)
            Out += ", ";
          char Buf[32];
          std::snprintf(Buf, sizeof(Buf), "%" PRId64, D.Init[I]);
          Out += Buf;
        }
        Out += "}";
      } else {
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%" PRId64, D.Init[0]);
        Out += Buf;
      }
    }
    Out += ";\n";
  }
  if (P.hasBody()) {
    Out += printCmd(P.body(), Lat);
    Out += "\n";
  }
  return Out;
}
