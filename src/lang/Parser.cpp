//===- Parser.cpp ---------------------------------------------------------===//

#include "lang/Parser.h"

using namespace zam;

Parser::Parser(std::string Source, const SecurityLattice &Lat,
               DiagnosticEngine &Diags)
    : Lat(Lat), Diags(Diags) {
  Lexer Lex(std::move(Source), Diags);
  Toks = Lex.lexAll();
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t Index = Pos + Ahead;
  if (Index >= Toks.size())
    Index = Toks.size() - 1; // Eof token.
  return Toks[Index];
}

const Token &Parser::advance() {
  const Token &Tok = Toks[Pos];
  if (Pos + 1 < Toks.size())
    ++Pos;
  return Tok;
}

bool Parser::accept(TokKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(peek().Loc, std::string("expected ") + tokKindName(Kind) +
                              " " + Context + ", found " +
                              tokKindName(peek().Kind));
  return false;
}

std::optional<Label> Parser::parseLabelName() {
  // Powerset-lattice labels are written as principal sets: {A,B} or {}.
  if (accept(TokKind::LBrace)) {
    std::string Name = "{";
    SourceLoc Loc = peek().Loc;
    bool First = true;
    while (!check(TokKind::RBrace)) {
      if (!First && !expect(TokKind::Comma, "between principals"))
        return std::nullopt;
      if (!check(TokKind::Ident)) {
        Diags.error(peek().Loc, "expected principal name in label set");
        return std::nullopt;
      }
      if (!First)
        Name += ",";
      Name += advance().Text;
      First = false;
    }
    expect(TokKind::RBrace, "to close the label set");
    Name += "}";
    std::optional<Label> L = Lat.byName(Name);
    if (!L)
      Diags.error(Loc, "unknown security label '" + Name + "'");
    return L;
  }

  if (!check(TokKind::Ident)) {
    Diags.error(peek().Loc, std::string("expected security label name, found ") +
                                tokKindName(peek().Kind));
    return std::nullopt;
  }
  Token Tok = advance();
  std::optional<Label> L = Lat.byName(Tok.Text);
  if (!L)
    Diags.error(Tok.Loc, "unknown security label '" + Tok.Text + "'");
  return L;
}

void Parser::parseAnnotation(Cmd &C) {
  if (!accept(TokKind::AtBracket))
    return; // Annotation is optional; inference will fill the labels.
  std::optional<Label> Read = parseLabelName();
  expect(TokKind::Comma, "between read and write labels");
  std::optional<Label> Write = parseLabelName();
  expect(TokKind::RBracket, "to close the timing-label annotation");
  C.labels().Read = Read;
  C.labels().Write = Write;
}

bool Parser::parseDecl(Program &P) {
  SourceLoc Loc = peek().Loc;
  if (!expect(TokKind::KwVar, "to begin a declaration"))
    return false;
  if (!check(TokKind::Ident)) {
    Diags.error(peek().Loc, "expected variable name in declaration");
    return false;
  }
  VarDecl D;
  D.Name = advance().Text;
  if (!expect(TokKind::Colon, "after variable name"))
    return false;
  std::optional<Label> L = parseLabelName();
  if (!L)
    return false;
  D.SecLabel = *L;

  if (accept(TokKind::LBracket)) {
    if (!check(TokKind::IntLit)) {
      Diags.error(peek().Loc, "expected array size");
      return false;
    }
    int64_t Size = advance().IntValue;
    if (Size <= 0) {
      Diags.error(Loc, "array size must be positive");
      return false;
    }
    D.IsArray = true;
    D.Size = static_cast<uint64_t>(Size);
    if (!expect(TokKind::RBracket, "to close the array size"))
      return false;
  }

  auto ParseSignedLit = [&]() -> std::optional<int64_t> {
    bool Negative = accept(TokKind::Minus);
    if (!check(TokKind::IntLit)) {
      Diags.error(peek().Loc, "expected integer initializer");
      return std::nullopt;
    }
    int64_t V = advance().IntValue;
    return Negative ? -V : V;
  };

  if (accept(TokKind::EqAssign)) {
    if (accept(TokKind::LBrace)) {
      if (!D.IsArray) {
        Diags.error(Loc, "brace initializer on a scalar variable");
        return false;
      }
      if (!check(TokKind::RBrace)) {
        do {
          std::optional<int64_t> V = ParseSignedLit();
          if (!V)
            return false;
          D.Init.push_back(*V);
        } while (accept(TokKind::Comma));
      }
      if (!expect(TokKind::RBrace, "to close the initializer list"))
        return false;
      if (D.Init.size() > D.Size) {
        Diags.error(Loc, "initializer has more elements than the array");
        return false;
      }
    } else {
      std::optional<int64_t> V = ParseSignedLit();
      if (!V)
        return false;
      D.Init.push_back(*V);
    }
  }

  if (!expect(TokKind::Semi, "after declaration"))
    return false;
  if (P.findVar(D.Name)) {
    Diags.error(Loc, "redeclaration of variable '" + D.Name + "'");
    return false;
  }
  P.addVar(std::move(D));
  return true;
}

CmdPtr Parser::parseBlock() {
  if (!expect(TokKind::LBrace, "to open a block"))
    return nullptr;
  CmdPtr C = parseCmd();
  if (!C)
    return nullptr;
  if (!expect(TokKind::RBrace, "to close a block"))
    return nullptr;
  return C;
}

CmdPtr Parser::parseSimpleCmd() {
  SourceLoc Loc = peek().Loc;

  if (accept(TokKind::KwSkip)) {
    auto C = std::make_unique<SkipCmd>(Loc);
    parseAnnotation(*C);
    return C;
  }

  if (accept(TokKind::KwSleep)) {
    if (!expect(TokKind::LParen, "after 'sleep'"))
      return nullptr;
    ExprPtr Duration = parseExpr();
    if (!Duration)
      return nullptr;
    if (!expect(TokKind::RParen, "to close 'sleep'"))
      return nullptr;
    auto C = std::make_unique<SleepCmd>(std::move(Duration), Loc);
    parseAnnotation(*C);
    return C;
  }

  if (accept(TokKind::KwMitigate)) {
    if (!expect(TokKind::LParen, "after 'mitigate'"))
      return nullptr;
    ExprPtr Estimate = parseExpr();
    if (!Estimate)
      return nullptr;
    if (!expect(TokKind::Comma, "between mitigate estimate and level"))
      return nullptr;
    std::optional<Label> Level = parseLabelName();
    if (!Level)
      return nullptr;
    if (!expect(TokKind::RParen, "to close the mitigate header"))
      return nullptr;
    CmdPtr Body = parseBlock();
    if (!Body)
      return nullptr;
    auto C = std::make_unique<MitigateCmd>(/*MitigateId=*/0,
                                           std::move(Estimate), *Level,
                                           std::move(Body), Loc);
    parseAnnotation(*C);
    return C;
  }

  if (accept(TokKind::KwIf)) {
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokKind::KwThen, "after the if condition"))
      return nullptr;
    CmdPtr Then = parseBlock();
    if (!Then)
      return nullptr;
    if (!expect(TokKind::KwElse, "after the then-branch"))
      return nullptr;
    CmdPtr Else = parseBlock();
    if (!Else)
      return nullptr;
    auto C = std::make_unique<IfCmd>(std::move(Cond), std::move(Then),
                                     std::move(Else), Loc);
    parseAnnotation(*C);
    return C;
  }

  if (accept(TokKind::KwWhile)) {
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokKind::KwDo, "after the while condition"))
      return nullptr;
    CmdPtr Body = parseBlock();
    if (!Body)
      return nullptr;
    auto C = std::make_unique<WhileCmd>(std::move(Cond), std::move(Body), Loc);
    parseAnnotation(*C);
    return C;
  }

  if (check(TokKind::LBrace))
    return parseBlock();

  if (check(TokKind::Ident)) {
    std::string Name = advance().Text;
    if (accept(TokKind::LBracket)) {
      ExprPtr Index = parseExpr();
      if (!Index)
        return nullptr;
      if (!expect(TokKind::RBracket, "to close the array index"))
        return nullptr;
      if (!expect(TokKind::Assign, "in array assignment"))
        return nullptr;
      ExprPtr Value = parseExpr();
      if (!Value)
        return nullptr;
      auto C = std::make_unique<ArrayAssignCmd>(std::move(Name),
                                                std::move(Index),
                                                std::move(Value), Loc);
      parseAnnotation(*C);
      return C;
    }
    if (!expect(TokKind::Assign, "in assignment"))
      return nullptr;
    ExprPtr Value = parseExpr();
    if (!Value)
      return nullptr;
    auto C =
        std::make_unique<AssignCmd>(std::move(Name), std::move(Value), Loc);
    parseAnnotation(*C);
    return C;
  }

  Diags.error(Loc, std::string("expected a command, found ") +
                       tokKindName(peek().Kind));
  return nullptr;
}

CmdPtr Parser::parseCmd() {
  CmdPtr First = parseSimpleCmd();
  if (!First)
    return nullptr;
  if (!accept(TokKind::Semi))
    return First;
  // Allow a trailing semicolon before '}' or end of input.
  if (check(TokKind::RBrace) || check(TokKind::Eof))
    return First;
  SourceLoc Loc = First->loc();
  CmdPtr Rest = parseCmd();
  if (!Rest)
    return nullptr;
  return std::make_unique<SeqCmd>(std::move(First), std::move(Rest), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions (precedence climbing)
//===----------------------------------------------------------------------===//

namespace {
struct BinOpInfo {
  TokKind Tok;
  BinOpKind Op;
  int Prec;
};
} // namespace

static const BinOpInfo BinOps[] = {
    {TokKind::PipePipe, BinOpKind::LogicalOr, 1},
    {TokKind::AmpAmp, BinOpKind::LogicalAnd, 2},
    {TokKind::Pipe, BinOpKind::BitOr, 3},
    {TokKind::Caret, BinOpKind::BitXor, 4},
    {TokKind::Amp, BinOpKind::BitAnd, 5},
    {TokKind::EqEq, BinOpKind::Eq, 6},
    {TokKind::NotEq, BinOpKind::Ne, 6},
    {TokKind::Less, BinOpKind::Lt, 7},
    {TokKind::LessEq, BinOpKind::Le, 7},
    {TokKind::Greater, BinOpKind::Gt, 7},
    {TokKind::GreaterEq, BinOpKind::Ge, 7},
    {TokKind::Shl, BinOpKind::Shl, 8},
    {TokKind::Shr, BinOpKind::Shr, 8},
    {TokKind::Plus, BinOpKind::Add, 9},
    {TokKind::Minus, BinOpKind::Sub, 9},
    {TokKind::Star, BinOpKind::Mul, 10},
    {TokKind::Slash, BinOpKind::Div, 10},
    {TokKind::Percent, BinOpKind::Mod, 10},
};

static const BinOpInfo *findBinOp(TokKind Kind) {
  for (const BinOpInfo &Info : BinOps)
    if (Info.Tok == Kind)
      return &Info;
  return nullptr;
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr LHS = parseUnary();
  if (!LHS)
    return nullptr;
  for (;;) {
    const BinOpInfo *Info = findBinOp(peek().Kind);
    if (!Info || Info->Prec < MinPrec)
      return LHS;
    SourceLoc Loc = advance().Loc;
    ExprPtr RHS = parseBinary(Info->Prec + 1); // Left-associative.
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinOpExpr>(Info->Op, std::move(LHS), std::move(RHS),
                                      Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = peek().Loc;
  if (accept(TokKind::Minus)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnOpExpr>(UnOpKind::Neg, std::move(Sub), Loc);
  }
  if (accept(TokKind::Bang)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnOpExpr>(UnOpKind::LogicalNot, std::move(Sub),
                                      Loc);
  }
  if (accept(TokKind::Tilde)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnOpExpr>(UnOpKind::BitNot, std::move(Sub), Loc);
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokKind::IntLit)) {
    int64_t V = advance().IntValue;
    return std::make_unique<IntLitExpr>(V, Loc);
  }
  if (check(TokKind::Ident)) {
    std::string Name = advance().Text;
    if (accept(TokKind::LBracket)) {
      ExprPtr Index = parseExpr();
      if (!Index)
        return nullptr;
      if (!expect(TokKind::RBracket, "to close the array index"))
        return nullptr;
      return std::make_unique<ArrayReadExpr>(std::move(Name), std::move(Index),
                                             Loc);
    }
    return std::make_unique<VarExpr>(std::move(Name), Loc);
  }
  if (accept(TokKind::LParen)) {
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokKind::RParen, "to close the parenthesized expression"))
      return nullptr;
    return E;
  }
  Diags.error(Loc, std::string("expected an expression, found ") +
                       tokKindName(peek().Kind));
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

std::optional<Program> Parser::parseProgram() {
  Program P(Lat);
  while (check(TokKind::KwVar))
    if (!parseDecl(P))
      return std::nullopt;
  CmdPtr Body = parseCmd();
  if (!Body)
    return std::nullopt;
  if (!check(TokKind::Eof)) {
    Diags.error(peek().Loc, std::string("unexpected ") +
                                tokKindName(peek().Kind) +
                                " after the program body");
    return std::nullopt;
  }
  P.setBody(std::move(Body));
  P.number();
  return P;
}

CmdPtr Parser::parseCommandOnly() {
  CmdPtr C = parseCmd();
  if (C && !check(TokKind::Eof)) {
    Diags.error(peek().Loc, "unexpected trailing input after command");
    return nullptr;
  }
  return C;
}

ExprPtr Parser::parseExprOnly() {
  ExprPtr E = parseExpr();
  if (E && !check(TokKind::Eof)) {
    Diags.error(peek().Loc, "unexpected trailing input after expression");
    return nullptr;
  }
  return E;
}

std::optional<Program> zam::parseProgram(const std::string &Source,
                                         const SecurityLattice &Lat,
                                         DiagnosticEngine &Diags) {
  Parser P(Source, Lat, Diags);
  return P.parseProgram();
}
