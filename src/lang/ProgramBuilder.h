//===- ProgramBuilder.h - Fluent AST construction ---------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent C++ DSL for building programs in the Fig. 1 language without
/// going through the parser. The case-study applications (apps/) and the
/// random program generator use this to assemble ASTs; the timing labels may
/// be left unset and filled in by inference.
///
/// Example (the insecure branching example of Sec. 2.1):
/// \code
///   ProgramBuilder B(Lat);
///   B.var("h", H);
///   B.var("l", L);
///   B.body(B.ifc(B.v("h"),
///                B.sleep(B.lit(1), L, L),
///                B.sleep(B.lit(10), L, L), L, L));
///   Program P = B.take();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_LANG_PROGRAMBUILDER_H
#define ZAM_LANG_PROGRAMBUILDER_H

#include "lang/Ast.h"

#include <initializer_list>

namespace zam {

/// Builds a Program incrementally. The builder also offers free-standing
/// node factories so command trees can be composed before being attached.
///
/// Every command factory stamps its node with a synthetic source location:
/// a builder-wide sequence number as the "line" (creation order) and
/// column 0 to mark it as synthetic. C++-built applications therefore
/// profile cleanly — `zamc profile`'s ledger and the prof.* metrics
/// attribute costs to these stable pseudo-lines instead of lumping
/// everything at the unknown line 0.
class ProgramBuilder {
public:
  explicit ProgramBuilder(const SecurityLattice &Lat) : P(Lat) {}

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  /// Declares a scalar with optional initial value.
  ProgramBuilder &var(const std::string &Name, Label SecLabel,
                      int64_t Init = 0);

  /// Declares an array of \p Size elements, optionally initialized (short
  /// initializers are zero-extended).
  ProgramBuilder &array(const std::string &Name, Label SecLabel, uint64_t Size,
                        std::vector<int64_t> Init = {});

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  ExprPtr lit(int64_t Value) const;
  ExprPtr v(const std::string &Name) const;
  ExprPtr idx(const std::string &Array, ExprPtr Index) const;
  ExprPtr bin(BinOpKind Op, ExprPtr LHS, ExprPtr RHS) const;
  ExprPtr un(UnOpKind Op, ExprPtr Sub) const;

  // Common shorthands.
  ExprPtr add(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::Add, std::move(L), std::move(R));
  }
  ExprPtr sub(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::Sub, std::move(L), std::move(R));
  }
  ExprPtr mul(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::Mul, std::move(L), std::move(R));
  }
  ExprPtr mod(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::Mod, std::move(L), std::move(R));
  }
  ExprPtr eq(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::Eq, std::move(L), std::move(R));
  }
  ExprPtr ne(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::Ne, std::move(L), std::move(R));
  }
  ExprPtr lt(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::Lt, std::move(L), std::move(R));
  }
  ExprPtr land(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::LogicalAnd, std::move(L), std::move(R));
  }
  ExprPtr band(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::BitAnd, std::move(L), std::move(R));
  }
  ExprPtr shr(ExprPtr L, ExprPtr R) const {
    return bin(BinOpKind::Shr, std::move(L), std::move(R));
  }

  //===--------------------------------------------------------------------===//
  // Commands. Labels are optional; pass std::nullopt to defer to inference.
  //===--------------------------------------------------------------------===//

  using OptLabel = std::optional<Label>;

  CmdPtr skip(OptLabel Read = {}, OptLabel Write = {}) const;
  CmdPtr assign(const std::string &Var, ExprPtr Value, OptLabel Read = {},
                OptLabel Write = {}) const;
  CmdPtr arrAssign(const std::string &Array, ExprPtr Index, ExprPtr Value,
                   OptLabel Read = {}, OptLabel Write = {}) const;
  CmdPtr seq(CmdPtr First, CmdPtr Second) const;
  /// Right-nested sequence of ≥1 commands.
  CmdPtr seq(std::vector<CmdPtr> Cmds) const;
  /// Variadic convenience: seq(a, b, c, ...) — right-nested.
  template <typename... Cs>
  CmdPtr seq(CmdPtr First, CmdPtr Second, CmdPtr Third, Cs... Rest) const {
    std::vector<CmdPtr> Cmds;
    Cmds.push_back(std::move(First));
    Cmds.push_back(std::move(Second));
    Cmds.push_back(std::move(Third));
    (Cmds.push_back(std::move(Rest)), ...);
    return seq(std::move(Cmds));
  }
  CmdPtr ifc(ExprPtr Cond, CmdPtr Then, CmdPtr Else, OptLabel Read = {},
             OptLabel Write = {}) const;
  CmdPtr whilec(ExprPtr Cond, CmdPtr Body, OptLabel Read = {},
                OptLabel Write = {}) const;
  CmdPtr mitigate(ExprPtr InitialEstimate, Label MitLevel, CmdPtr Body,
                  OptLabel Read = {}, OptLabel Write = {}) const;
  CmdPtr sleep(ExprPtr Duration, OptLabel Read = {}, OptLabel Write = {}) const;

  //===--------------------------------------------------------------------===//
  // Finalization
  //===--------------------------------------------------------------------===//

  /// Attaches the body command.
  ProgramBuilder &body(CmdPtr C) {
    P.setBody(std::move(C));
    return *this;
  }

  /// Numbers the program and moves it out of the builder.
  Program take() {
    P.number();
    return std::move(P);
  }

  const SecurityLattice &lattice() const { return P.lattice(); }

private:
  static void setLabels(Cmd &C, OptLabel Read, OptLabel Write) {
    C.labels().Read = Read;
    C.labels().Write = Write;
  }

  /// The next synthetic location (column 0 marks it builder-made).
  SourceLoc nextLoc() const { return SourceLoc(++NextLoc, 0); }

  Program P;
  mutable uint32_t NextLoc = 0; ///< Pseudo-line sequence for nextLoc().
};

} // namespace zam

#endif // ZAM_LANG_PROGRAMBUILDER_H
