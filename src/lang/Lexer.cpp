//===- Lexer.cpp ----------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>

using namespace zam;

const char *zam::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwSkip:
    return "'skip'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwThen:
    return "'then'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::KwMitigate:
    return "'mitigate'";
  case TokKind::KwSleep:
    return "'sleep'";
  case TokKind::Assign:
    return "':='";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Colon:
    return "':'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::AtBracket:
    return "'@['";
  case TokKind::EqAssign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Tilde:
    return "'~'";
  }
  return "unknown token";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

static TokKind keywordKind(const std::string &Text) {
  if (Text == "var")
    return TokKind::KwVar;
  if (Text == "skip")
    return TokKind::KwSkip;
  if (Text == "if")
    return TokKind::KwIf;
  if (Text == "then")
    return TokKind::KwThen;
  if (Text == "else")
    return TokKind::KwElse;
  if (Text == "while")
    return TokKind::KwWhile;
  if (Text == "do")
    return TokKind::KwDo;
  if (Text == "mitigate")
    return TokKind::KwMitigate;
  if (Text == "sleep")
    return TokKind::KwSleep;
  return TokKind::Ident;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  Token Tok;
  Tok.Loc = here();
  if (Pos >= Source.size()) {
    Tok.Kind = TokKind::Eof;
    return Tok;
  }

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    Tok.Kind = keywordKind(Text);
    if (Tok.Kind == TokKind::Ident)
      Tok.Text = std::move(Text);
    return Tok;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = 0;
    bool Hex = false;
    if (C == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      Hex = true;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char D = advance();
        int Digit = std::isdigit(static_cast<unsigned char>(D))
                        ? D - '0'
                        : std::tolower(D) - 'a' + 10;
        Value = Value * 16 + Digit;
      }
    } else {
      Value = C - '0';
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Value = Value * 10 + (advance() - '0');
    }
    (void)Hex;
    Tok.Kind = TokKind::IntLit;
    Tok.IntValue = Value;
    return Tok;
  }

  switch (C) {
  case ':':
    Tok.Kind = match('=') ? TokKind::Assign : TokKind::Colon;
    return Tok;
  case ';':
    Tok.Kind = TokKind::Semi;
    return Tok;
  case ',':
    Tok.Kind = TokKind::Comma;
    return Tok;
  case '(':
    Tok.Kind = TokKind::LParen;
    return Tok;
  case ')':
    Tok.Kind = TokKind::RParen;
    return Tok;
  case '{':
    Tok.Kind = TokKind::LBrace;
    return Tok;
  case '}':
    Tok.Kind = TokKind::RBrace;
    return Tok;
  case '[':
    Tok.Kind = TokKind::LBracket;
    return Tok;
  case ']':
    Tok.Kind = TokKind::RBracket;
    return Tok;
  case '@':
    if (match('[')) {
      Tok.Kind = TokKind::AtBracket;
      return Tok;
    }
    Diags.error(Tok.Loc, "expected '[' after '@'");
    return next();
  case '=':
    Tok.Kind = match('=') ? TokKind::EqEq : TokKind::EqAssign;
    return Tok;
  case '+':
    Tok.Kind = TokKind::Plus;
    return Tok;
  case '-':
    Tok.Kind = TokKind::Minus;
    return Tok;
  case '*':
    Tok.Kind = TokKind::Star;
    return Tok;
  case '/':
    Tok.Kind = TokKind::Slash;
    return Tok;
  case '%':
    Tok.Kind = TokKind::Percent;
    return Tok;
  case '!':
    Tok.Kind = match('=') ? TokKind::NotEq : TokKind::Bang;
    return Tok;
  case '<':
    if (match('='))
      Tok.Kind = TokKind::LessEq;
    else if (match('<'))
      Tok.Kind = TokKind::Shl;
    else
      Tok.Kind = TokKind::Less;
    return Tok;
  case '>':
    if (match('='))
      Tok.Kind = TokKind::GreaterEq;
    else if (match('>'))
      Tok.Kind = TokKind::Shr;
    else
      Tok.Kind = TokKind::Greater;
    return Tok;
  case '&':
    Tok.Kind = match('&') ? TokKind::AmpAmp : TokKind::Amp;
    return Tok;
  case '|':
    Tok.Kind = match('|') ? TokKind::PipePipe : TokKind::Pipe;
    return Tok;
  case '^':
    Tok.Kind = TokKind::Caret;
    return Tok;
  case '~':
    Tok.Kind = TokKind::Tilde;
    return Tok;
  default:
    Diags.error(Tok.Loc, std::string("unexpected character '") + C + "'");
    return next();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Toks;
  for (;;) {
    Toks.push_back(next());
    if (Toks.back().Kind == TokKind::Eof)
      return Toks;
  }
}
