//===- Ast.cpp ------------------------------------------------------------===//

#include "lang/Ast.h"

#include "support/Casting.h"

using namespace zam;

const char *zam::binOpSpelling(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  case BinOpKind::Mod:
    return "%";
  case BinOpKind::Eq:
    return "==";
  case BinOpKind::Ne:
    return "!=";
  case BinOpKind::Lt:
    return "<";
  case BinOpKind::Le:
    return "<=";
  case BinOpKind::Gt:
    return ">";
  case BinOpKind::Ge:
    return ">=";
  case BinOpKind::LogicalAnd:
    return "&&";
  case BinOpKind::LogicalOr:
    return "||";
  case BinOpKind::BitAnd:
    return "&";
  case BinOpKind::BitOr:
    return "|";
  case BinOpKind::BitXor:
    return "^";
  case BinOpKind::Shl:
    return "<<";
  case BinOpKind::Shr:
    return ">>";
  }
  return "?";
}

const char *zam::unOpSpelling(UnOpKind Op) {
  switch (Op) {
  case UnOpKind::Neg:
    return "-";
  case UnOpKind::LogicalNot:
    return "!";
  case UnOpKind::BitNot:
    return "~";
  }
  return "?";
}

Expr::~Expr() = default;
Cmd::~Cmd() = default;

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

ExprPtr IntLitExpr::clone() const {
  return std::make_unique<IntLitExpr>(Value, loc());
}

ExprPtr VarExpr::clone() const {
  return std::make_unique<VarExpr>(Name, loc());
}

ExprPtr ArrayReadExpr::clone() const {
  return std::make_unique<ArrayReadExpr>(Array, Index->clone(), loc());
}

ExprPtr BinOpExpr::clone() const {
  return std::make_unique<BinOpExpr>(Op, LHS->clone(), RHS->clone(), loc());
}

ExprPtr UnOpExpr::clone() const {
  return std::make_unique<UnOpExpr>(Op, Sub->clone(), loc());
}

/// Copies NodeId and timing labels from \p From onto \p To.
static CmdPtr withAttrs(CmdPtr To, const Cmd &From) {
  To->setNodeId(From.nodeId());
  if (!From.isSeq())
    To->labels() = From.labels();
  return To;
}

CmdPtr SkipCmd::clone() const {
  return withAttrs(std::make_unique<SkipCmd>(loc()), *this);
}

CmdPtr AssignCmd::clone() const {
  return withAttrs(std::make_unique<AssignCmd>(Var, Value->clone(), loc()),
                   *this);
}

CmdPtr ArrayAssignCmd::clone() const {
  return withAttrs(std::make_unique<ArrayAssignCmd>(Array, Index->clone(),
                                                    Value->clone(), loc()),
                   *this);
}

CmdPtr SeqCmd::clone() const {
  auto C = std::make_unique<SeqCmd>(First->clone(), Second->clone(), loc());
  C->setNodeId(nodeId());
  return C;
}

CmdPtr IfCmd::clone() const {
  return withAttrs(std::make_unique<IfCmd>(Cond->clone(), Then->clone(),
                                           Else->clone(), loc()),
                   *this);
}

CmdPtr WhileCmd::clone() const {
  return withAttrs(
      std::make_unique<WhileCmd>(Cond->clone(), Body->clone(), loc()), *this);
}

CmdPtr MitigateCmd::clone() const {
  return withAttrs(std::make_unique<MitigateCmd>(MitigateId,
                                                 InitialEstimate->clone(),
                                                 MitLevel, Body->clone(), loc()),
                   *this);
}

CmdPtr SleepCmd::clone() const {
  return withAttrs(std::make_unique<SleepCmd>(Duration->clone(), loc()), *this);
}

//===----------------------------------------------------------------------===//
// vars1 and expression variable collection
//===----------------------------------------------------------------------===//

void zam::collectExprVars(const Expr &E, std::vector<std::string> &Out) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return;
  case Expr::Kind::Var:
    Out.push_back(cast<VarExpr>(E).name());
    return;
  case Expr::Kind::ArrayRead: {
    const auto &AR = cast<ArrayReadExpr>(E);
    Out.push_back(AR.array());
    collectExprVars(AR.index(), Out);
    return;
  }
  case Expr::Kind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    collectExprVars(BO.lhs(), Out);
    collectExprVars(BO.rhs(), Out);
    return;
  }
  case Expr::Kind::UnOp:
    collectExprVars(cast<UnOpExpr>(E).sub(), Out);
    return;
  }
}

std::vector<std::string> zam::vars1(const Cmd &C) {
  std::vector<std::string> Out;
  switch (C.kind()) {
  case Cmd::Kind::Skip:
    break; // Empty set.
  case Cmd::Kind::Assign: {
    const auto &A = cast<AssignCmd>(C);
    Out.push_back(A.var());
    collectExprVars(A.value(), Out);
    break;
  }
  case Cmd::Kind::ArrayAssign: {
    const auto &A = cast<ArrayAssignCmd>(C);
    Out.push_back(A.array());
    collectExprVars(A.index(), Out);
    collectExprVars(A.value(), Out);
    break;
  }
  case Cmd::Kind::Seq:
    // The next step of c1;c2 is a step of c1.
    return vars1(cast<SeqCmd>(C).first());
  case Cmd::Kind::If:
    // Only the guard is evaluated in the next step; branches are excluded.
    collectExprVars(cast<IfCmd>(C).cond(), Out);
    break;
  case Cmd::Kind::While:
    collectExprVars(cast<WhileCmd>(C).cond(), Out);
    break;
  case Cmd::Kind::Mitigate:
    collectExprVars(cast<MitigateCmd>(C).initialEstimate(), Out);
    break;
  case Cmd::Kind::Sleep:
    collectExprVars(cast<SleepCmd>(C).duration(), Out);
    break;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

const VarDecl *Program::findVar(const std::string &Name) const {
  for (const VarDecl &D : Vars)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

VarDecl *Program::findVar(const std::string &Name) {
  for (VarDecl &D : Vars)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

namespace {
/// Assigns preorder ids to primitive commands only; Seq spine nodes are
/// collected and numbered afterwards. Seq nodes take no evaluation step and
/// have no code address, so keeping them out of the primitive id range
/// makes a program's timing invariant under re-association of `;` (the
/// printer/parser round trip rebuilds sequences right-nested).
void numberCmd(Cmd &C, unsigned &NextNode, unsigned &NextMitigate,
               std::vector<Cmd *> &Seqs) {
  if (C.kind() == Cmd::Kind::Seq) {
    auto &S = cast<SeqCmd>(C);
    Seqs.push_back(&C);
    numberCmd(S.first(), NextNode, NextMitigate, Seqs);
    numberCmd(S.second(), NextNode, NextMitigate, Seqs);
    return;
  }
  C.setNodeId(NextNode++);
  switch (C.kind()) {
  case Cmd::Kind::Skip:
  case Cmd::Kind::Assign:
  case Cmd::Kind::ArrayAssign:
  case Cmd::Kind::Sleep:
  case Cmd::Kind::Seq:
    break;
  case Cmd::Kind::If: {
    auto &I = cast<IfCmd>(C);
    numberCmd(I.thenCmd(), NextNode, NextMitigate, Seqs);
    numberCmd(I.elseCmd(), NextNode, NextMitigate, Seqs);
    break;
  }
  case Cmd::Kind::While:
    numberCmd(cast<WhileCmd>(C).body(), NextNode, NextMitigate, Seqs);
    break;
  case Cmd::Kind::Mitigate: {
    auto &M = cast<MitigateCmd>(C);
    M.setMitigateId(NextMitigate++);
    numberCmd(M.body(), NextNode, NextMitigate, Seqs);
    break;
  }
  }
}
} // namespace

unsigned Program::number() {
  unsigned NextNode = 0, NextMitigate = 0;
  std::vector<Cmd *> Seqs;
  if (Body)
    numberCmd(*Body, NextNode, NextMitigate, Seqs);
  unsigned NumPrimitives = NextNode;
  for (Cmd *S : Seqs)
    S->setNodeId(NextNode++);
  NumMitigates = NextMitigate;
  return NumPrimitives;
}

Program Program::clone() const {
  Program P(*Lat);
  P.Vars = Vars;
  if (Body)
    P.Body = Body->clone();
  P.NumMitigates = NumMitigates;
  return P;
}
