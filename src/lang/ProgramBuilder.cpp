//===- ProgramBuilder.cpp -------------------------------------------------===//

#include "lang/ProgramBuilder.h"

using namespace zam;

ProgramBuilder &ProgramBuilder::var(const std::string &Name, Label SecLabel,
                                    int64_t Init) {
  assert(!P.findVar(Name) && "variable already declared");
  VarDecl D;
  D.Name = Name;
  D.SecLabel = SecLabel;
  D.Init.push_back(Init);
  P.addVar(std::move(D));
  return *this;
}

ProgramBuilder &ProgramBuilder::array(const std::string &Name, Label SecLabel,
                                      uint64_t Size,
                                      std::vector<int64_t> Init) {
  assert(!P.findVar(Name) && "variable already declared");
  assert(Init.size() <= Size && "initializer longer than the array");
  VarDecl D;
  D.Name = Name;
  D.SecLabel = SecLabel;
  D.IsArray = true;
  D.Size = Size;
  D.Init = std::move(Init);
  P.addVar(std::move(D));
  return *this;
}

ExprPtr ProgramBuilder::lit(int64_t Value) const {
  return std::make_unique<IntLitExpr>(Value);
}

ExprPtr ProgramBuilder::v(const std::string &Name) const {
  return std::make_unique<VarExpr>(Name);
}

ExprPtr ProgramBuilder::idx(const std::string &Array, ExprPtr Index) const {
  return std::make_unique<ArrayReadExpr>(Array, std::move(Index));
}

ExprPtr ProgramBuilder::bin(BinOpKind Op, ExprPtr LHS, ExprPtr RHS) const {
  return std::make_unique<BinOpExpr>(Op, std::move(LHS), std::move(RHS));
}

ExprPtr ProgramBuilder::un(UnOpKind Op, ExprPtr Sub) const {
  return std::make_unique<UnOpExpr>(Op, std::move(Sub));
}

CmdPtr ProgramBuilder::skip(OptLabel Read, OptLabel Write) const {
  auto C = std::make_unique<SkipCmd>(nextLoc());
  setLabels(*C, Read, Write);
  return C;
}

CmdPtr ProgramBuilder::assign(const std::string &Var, ExprPtr Value,
                              OptLabel Read, OptLabel Write) const {
  auto C = std::make_unique<AssignCmd>(Var, std::move(Value), nextLoc());
  setLabels(*C, Read, Write);
  return C;
}

CmdPtr ProgramBuilder::arrAssign(const std::string &Array, ExprPtr Index,
                                 ExprPtr Value, OptLabel Read,
                                 OptLabel Write) const {
  auto C = std::make_unique<ArrayAssignCmd>(Array, std::move(Index),
                                            std::move(Value), nextLoc());
  setLabels(*C, Read, Write);
  return C;
}

CmdPtr ProgramBuilder::seq(CmdPtr First, CmdPtr Second) const {
  return std::make_unique<SeqCmd>(std::move(First), std::move(Second));
}

CmdPtr ProgramBuilder::seq(std::vector<CmdPtr> Cmds) const {
  assert(!Cmds.empty() && "empty sequence");
  CmdPtr Out = std::move(Cmds.back());
  Cmds.pop_back();
  while (!Cmds.empty()) {
    Out = std::make_unique<SeqCmd>(std::move(Cmds.back()), std::move(Out));
    Cmds.pop_back();
  }
  return Out;
}

CmdPtr ProgramBuilder::ifc(ExprPtr Cond, CmdPtr Then, CmdPtr Else,
                           OptLabel Read, OptLabel Write) const {
  auto C = std::make_unique<IfCmd>(std::move(Cond), std::move(Then),
                                   std::move(Else), nextLoc());
  setLabels(*C, Read, Write);
  return C;
}

CmdPtr ProgramBuilder::whilec(ExprPtr Cond, CmdPtr Body, OptLabel Read,
                              OptLabel Write) const {
  auto C = std::make_unique<WhileCmd>(std::move(Cond), std::move(Body),
                                      nextLoc());
  setLabels(*C, Read, Write);
  return C;
}

CmdPtr ProgramBuilder::mitigate(ExprPtr InitialEstimate, Label MitLevel,
                                CmdPtr Body, OptLabel Read,
                                OptLabel Write) const {
  auto C = std::make_unique<MitigateCmd>(/*MitigateId=*/0,
                                         std::move(InitialEstimate), MitLevel,
                                         std::move(Body), nextLoc());
  setLabels(*C, Read, Write);
  return C;
}

CmdPtr ProgramBuilder::sleep(ExprPtr Duration, OptLabel Read,
                             OptLabel Write) const {
  auto C = std::make_unique<SleepCmd>(std::move(Duration), nextLoc());
  setLabels(*C, Read, Write);
  return C;
}
