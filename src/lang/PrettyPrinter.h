//===- PrettyPrinter.h - AST -> concrete syntax -----------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders ASTs back into the concrete syntax accepted by the Parser.
/// Printing then re-parsing yields a structurally identical AST (round-trip
/// property, checked by tests/lang).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_LANG_PRETTYPRINTER_H
#define ZAM_LANG_PRETTYPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace zam {

/// Renders \p E as an expression string (fully parenthesized composites).
std::string printExpr(const Expr &E);

/// Renders \p C with the given indentation. Timing labels are printed as
/// `@[er,ew]` when present, using the lattice's level names.
std::string printCmd(const Cmd &C, const SecurityLattice &Lat,
                     unsigned Indent = 0);

/// Renders a full program: declarations then body.
std::string printProgram(const Program &P);

} // namespace zam

#endif // ZAM_LANG_PRETTYPRINTER_H
