//===- Lexer.h - Tokenizer for the zam surface syntax -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the concrete syntax of the Fig. 1 language. Timing-label
/// annotations are written `@[er,ew]` (the paper typesets them `[er,ew]`;
/// the `@` disambiguates annotations from array subscripts).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_LANG_LEXER_H
#define ZAM_LANG_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace zam {

enum class TokKind {
  Eof,
  Ident,
  IntLit,
  // Keywords.
  KwVar,
  KwSkip,
  KwIf,
  KwThen,
  KwElse,
  KwWhile,
  KwDo,
  KwMitigate,
  KwSleep,
  // Punctuation.
  Assign,    // :=
  Semi,      // ;
  Comma,     // ,
  Colon,     // :
  LParen,    // (
  RParen,    // )
  LBrace,    // {
  RBrace,    // }
  LBracket,  // [
  RBracket,  // ]
  AtBracket, // @[  (start of a timing-label annotation)
  EqAssign,  // =   (initializer in declarations)
  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Amp,
  Pipe,
  Caret,
  Shl,
  Shr,
  Bang,
  Tilde,
};

/// Spelled name of a token kind, for diagnostics.
const char *tokKindName(TokKind Kind);

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;    ///< Identifier spelling (Ident only).
  int64_t IntValue = 0; ///< Literal value (IntLit only).
};

/// Converts a source buffer into a token stream. Lexical errors are
/// reported to the DiagnosticEngine; the lexer recovers by skipping the
/// offending character.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the entire buffer, ending with an Eof token.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLoc here() const { return SourceLoc(Line, Col); }

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;
};

} // namespace zam

#endif // ZAM_LANG_LEXER_H
