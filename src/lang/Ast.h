//===- Ast.h - Abstract syntax for the timing-channel language --*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax of Fig. 1:
///
///   e ::= n | x | e op e
///   c ::= skip[er,ew] | (x := e)[er,ew] | c;c
///       | (while e do c)[er,ew] | (if e then c1 else c2)[er,ew]
///       | (mitigate_η (e,ℓ) c)[er,ew] | (sleep e)[er,ew]
///
/// extended with element-labeled arrays (x[e] reads, (x[e1] := e2) writes),
/// which the paper's case studies need (hashmap scans, message blocks) and
/// which type like scalar accesses joined with the index label.
///
/// Every command except sequential composition carries the pair of timing
/// labels [er, ew]: the read label bounds the machine-environment state that
/// may influence the command's duration; the write label lower-bounds the
/// machine-environment state the command may modify (Sec. 2.2). Labels may
/// be absent in the surface program, in which case the inference pass
/// (types/LabelInference.h) fills in the least restrictive choices.
///
/// Nodes use LLVM-style kind tags with isa/cast-style accessors instead of
/// RTTI. Ownership is by unique_ptr from parent to child; a Program owns the
/// root command and the variable declarations (the security environment Γ).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_LANG_AST_H
#define ZAM_LANG_AST_H

#include "lattice/Label.h"
#include "lattice/SecurityLattice.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace zam {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class BinOpKind {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LogicalAnd,
  LogicalOr,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
};

enum class UnOpKind { Neg, LogicalNot, BitNot };

/// Spelled operator, e.g. "+" or "<=".
const char *binOpSpelling(BinOpKind Op);
const char *unOpSpelling(UnOpKind Op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of all expressions.
class Expr {
public:
  enum class Kind { IntLit, Var, ArrayRead, BinOp, UnOp };

  virtual ~Expr();

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// Deep copy (used when programs are specialized per experiment).
  virtual ExprPtr clone() const = 0;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  const Kind K;
  SourceLoc Loc;
};

/// An integer literal n. Values are 64-bit signed, as in the interpreter.
class IntLitExpr final : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc = SourceLoc())
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  int64_t value() const { return Value; }
  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

/// A scalar variable reference x.
class VarExpr final : public Expr {
public:
  explicit VarExpr(std::string Name, SourceLoc Loc = SourceLoc())
      : Expr(Kind::Var, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::Var; }

private:
  std::string Name;
};

/// An array element read x[e].
class ArrayReadExpr final : public Expr {
public:
  ArrayReadExpr(std::string Array, ExprPtr Index, SourceLoc Loc = SourceLoc())
      : Expr(Kind::ArrayRead, Loc), Array(std::move(Array)),
        Index(std::move(Index)) {}

  const std::string &array() const { return Array; }
  const Expr &index() const { return *Index; }
  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayRead; }

private:
  std::string Array;
  ExprPtr Index;
};

/// A binary operation e1 op e2.
class BinOpExpr final : public Expr {
public:
  BinOpExpr(BinOpKind Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc = SourceLoc())
      : Expr(Kind::BinOp, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinOpKind op() const { return Op; }
  const Expr &lhs() const { return *LHS; }
  const Expr &rhs() const { return *RHS; }
  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::BinOp; }

private:
  BinOpKind Op;
  ExprPtr LHS, RHS;
};

/// A unary operation op e.
class UnOpExpr final : public Expr {
public:
  UnOpExpr(UnOpKind Op, ExprPtr Sub, SourceLoc Loc = SourceLoc())
      : Expr(Kind::UnOp, Loc), Op(Op), Sub(std::move(Sub)) {}

  UnOpKind op() const { return Op; }
  const Expr &sub() const { return *Sub; }
  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->kind() == Kind::UnOp; }

private:
  UnOpKind Op;
  ExprPtr Sub;
};

/// Collects the names of all variables/arrays read by \p E into \p Out.
/// This is the expression part of the vars1 function of Property 6.
void collectExprVars(const Expr &E, std::vector<std::string> &Out);

//===----------------------------------------------------------------------===//
// Commands
//===----------------------------------------------------------------------===//

/// The [er, ew] annotation pair. Either may be absent in surface syntax;
/// type checking requires both (inference supplies them).
struct TimingLabels {
  std::optional<Label> Read;
  std::optional<Label> Write;

  bool complete() const { return Read.has_value() && Write.has_value(); }
};

class Cmd;
using CmdPtr = std::unique_ptr<Cmd>;

/// Base class of all commands.
///
/// Every command carries a NodeId, assigned by Program::number(), which the
/// full semantics uses as the command's code address for instruction-cache
/// simulation and which analyses use as a stable identifier.
class Cmd {
public:
  enum class Kind {
    Skip,
    Assign,
    ArrayAssign,
    Seq,
    If,
    While,
    Mitigate,
    Sleep,
  };

  virtual ~Cmd();

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  bool isSeq() const { return K == Kind::Seq; }

  /// The [er,ew] pair. Meaningless (and asserted against) for Seq, which the
  /// paper gives no timing labels.
  TimingLabels &labels() {
    assert(!isSeq() && "sequential composition carries no timing labels");
    return Labels;
  }
  const TimingLabels &labels() const {
    assert(!isSeq() && "sequential composition carries no timing labels");
    return Labels;
  }

  unsigned nodeId() const { return NodeId; }
  void setNodeId(unsigned Id) { NodeId = Id; }

  virtual CmdPtr clone() const = 0;

protected:
  Cmd(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  const Kind K;
  SourceLoc Loc;
  TimingLabels Labels;
  unsigned NodeId = 0;
};

/// skip[er,ew] — consumes real time (instruction fetch) but has no effect.
class SkipCmd final : public Cmd {
public:
  explicit SkipCmd(SourceLoc Loc = SourceLoc()) : Cmd(Kind::Skip, Loc) {}

  CmdPtr clone() const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Skip; }
};

/// (x := e)[er,ew]
class AssignCmd final : public Cmd {
public:
  AssignCmd(std::string Var, ExprPtr Value, SourceLoc Loc = SourceLoc())
      : Cmd(Kind::Assign, Loc), Var(std::move(Var)), Value(std::move(Value)) {}

  const std::string &var() const { return Var; }
  const Expr &value() const { return *Value; }
  CmdPtr clone() const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Assign; }

private:
  std::string Var;
  ExprPtr Value;
};

/// (x[e1] := e2)[er,ew] — array extension.
class ArrayAssignCmd final : public Cmd {
public:
  ArrayAssignCmd(std::string Array, ExprPtr Index, ExprPtr Value,
                 SourceLoc Loc = SourceLoc())
      : Cmd(Kind::ArrayAssign, Loc), Array(std::move(Array)),
        Index(std::move(Index)), Value(std::move(Value)) {}

  const std::string &array() const { return Array; }
  const Expr &index() const { return *Index; }
  const Expr &value() const { return *Value; }
  CmdPtr clone() const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::ArrayAssign; }

private:
  std::string Array;
  ExprPtr Index, Value;
};

/// c1; c2 — no timing labels of its own (Sec. 3).
class SeqCmd final : public Cmd {
public:
  SeqCmd(CmdPtr First, CmdPtr Second, SourceLoc Loc = SourceLoc())
      : Cmd(Kind::Seq, Loc), First(std::move(First)),
        Second(std::move(Second)) {}

  const Cmd &first() const { return *First; }
  const Cmd &second() const { return *Second; }
  Cmd &first() { return *First; }
  Cmd &second() { return *Second; }

  /// Releases ownership of the components (used by the small-step engine to
  /// restructure continuations without copying).
  CmdPtr takeFirst() { return std::move(First); }
  CmdPtr takeSecond() { return std::move(Second); }

  CmdPtr clone() const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Seq; }

private:
  CmdPtr First, Second;
};

/// (if e then c1 else c2)[er,ew]
class IfCmd final : public Cmd {
public:
  IfCmd(ExprPtr Cond, CmdPtr Then, CmdPtr Else, SourceLoc Loc = SourceLoc())
      : Cmd(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr &cond() const { return *Cond; }
  const Cmd &thenCmd() const { return *Then; }
  const Cmd &elseCmd() const { return *Else; }
  Cmd &thenCmd() { return *Then; }
  Cmd &elseCmd() { return *Else; }

  /// Release a branch (small-step engine: the executing copy is disposable).
  CmdPtr takeThen() { return std::move(Then); }
  CmdPtr takeElse() { return std::move(Else); }

  CmdPtr clone() const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::If; }

private:
  ExprPtr Cond;
  CmdPtr Then, Else;
};

/// (while e do c)[er,ew] — the guard may be high: the language permits loops
/// on confidential data, unlike transformation-based approaches (Sec. 1).
class WhileCmd final : public Cmd {
public:
  WhileCmd(ExprPtr Cond, CmdPtr Body, SourceLoc Loc = SourceLoc())
      : Cmd(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  const Expr &cond() const { return *Cond; }
  const Cmd &body() const { return *Body; }
  Cmd &body() { return *Body; }

  CmdPtr clone() const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::While; }

private:
  ExprPtr Cond;
  CmdPtr Body;
};

/// (mitigate_η (e, ℓ) c)[er,ew] — executes c, padding its duration to the
/// predictive-mitigation schedule so at most a bounded amount of information
/// at levels up to the mitigation level ℓ leaks through timing (Secs. 2.3, 7).
class MitigateCmd final : public Cmd {
public:
  MitigateCmd(unsigned MitigateId, ExprPtr InitialEstimate, Label MitLevel,
              CmdPtr Body, SourceLoc Loc = SourceLoc())
      : Cmd(Kind::Mitigate, Loc), MitigateId(MitigateId),
        InitialEstimate(std::move(InitialEstimate)), MitLevel(MitLevel),
        Body(std::move(Body)) {}

  /// The unique identifier η of this mitigate in the program source.
  unsigned mitigateId() const { return MitigateId; }
  void setMitigateId(unsigned Id) { MitigateId = Id; }

  const Expr &initialEstimate() const { return *InitialEstimate; }

  /// The mitigation level ℓ: lev(M_η) in Sec. 6.3.
  Label mitLevel() const { return MitLevel; }

  const Cmd &body() const { return *Body; }
  Cmd &body() { return *Body; }

  /// Release the body (small-step engine: mitigate bodies execute once).
  CmdPtr takeBody() { return std::move(Body); }

  CmdPtr clone() const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Mitigate; }

private:
  unsigned MitigateId;
  ExprPtr InitialEstimate;
  Label MitLevel;
  CmdPtr Body;
};

/// (sleep e)[er,ew] — suspends for max(e, 0) cycles (Property 4).
class SleepCmd final : public Cmd {
public:
  explicit SleepCmd(ExprPtr Duration, SourceLoc Loc = SourceLoc())
      : Cmd(Kind::Sleep, Loc), Duration(std::move(Duration)) {}

  const Expr &duration() const { return *Duration; }
  CmdPtr clone() const override;

  static bool classof(const Cmd *C) { return C->kind() == Kind::Sleep; }

private:
  ExprPtr Duration;
};

/// vars1(c[er,ew]): the variables whose values may affect the timing of the
/// *single next* evaluation step of c (Property 6, Sec. 3.6). For compound
/// commands only the guard expression counts; subcommands are excluded.
std::vector<std::string> vars1(const Cmd &C);

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

/// A declared variable: the security environment Γ plus storage metadata.
struct VarDecl {
  std::string Name;
  Label SecLabel;      ///< Γ(x); for arrays, the label of every element.
  bool IsArray = false;
  uint64_t Size = 1;   ///< Element count (1 for scalars).
  std::vector<int64_t> Init; ///< Initial contents; zero-filled when shorter.
};

/// A complete program: declarations (Γ) plus the root command.
class Program {
public:
  explicit Program(const SecurityLattice &Lat) : Lat(&Lat) {}

  const SecurityLattice &lattice() const { return *Lat; }

  void addVar(VarDecl Decl) { Vars.push_back(std::move(Decl)); }
  const std::vector<VarDecl> &vars() const { return Vars; }
  std::vector<VarDecl> &vars() { return Vars; }

  /// Looks a declaration up by name; nullptr when absent.
  const VarDecl *findVar(const std::string &Name) const;
  VarDecl *findVar(const std::string &Name);

  void setBody(CmdPtr C) { Body = std::move(C); }
  const Cmd &body() const {
    assert(Body && "program has no body");
    return *Body;
  }
  Cmd &body() {
    assert(Body && "program has no body");
    return *Body;
  }
  bool hasBody() const { return Body != nullptr; }

  /// Assigns dense NodeIds (preorder) to every command and fresh η ids (in
  /// source order) to every mitigate. Returns the number of commands.
  unsigned number();

  unsigned numMitigates() const { return NumMitigates; }

  /// Deep copy sharing the same lattice.
  Program clone() const;

private:
  const SecurityLattice *Lat;
  std::vector<VarDecl> Vars;
  CmdPtr Body;
  unsigned NumMitigates = 0;
};

} // namespace zam

#endif // ZAM_LANG_AST_H
