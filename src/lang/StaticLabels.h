//===- StaticLabels.h - Expression labels and pc labels ---------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static label computations shared by the interpreters, the type checker
/// and the analyses:
///
///   - exprLabel: the standard expression label — the join of Γ(x) over all
///     variables read (array reads join the element label with the index
///     label).
///   - computePcLabels: pc(c) for every command node — the join of the
///     guard labels of the enclosing ifs/whiles. This is pc(M_η) in the
///     Sec. 6.3 projections (mitigate bodies do not raise pc).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_LANG_STATICLABELS_H
#define ZAM_LANG_STATICLABELS_H

#include "lang/Ast.h"

#include <unordered_map>

namespace zam {

/// Γ ⊢ e : ℓ for the expression typing of Sec. 5.1.
Label exprLabel(const Expr &E, const Program &P);

/// Maps every command NodeId to its static program-counter label.
/// Requires the program to be numbered (Program::number()).
std::unordered_map<unsigned, Label> computePcLabels(const Program &P);

/// As above but over a detached command (the property checkers execute bare
/// commands against a program's declarations); the walk starts at pc = ⊥.
std::unordered_map<unsigned, Label> computePcLabels(const Cmd &C,
                                                    const Program &P);

/// The address-dependence label of \p E: the join of the index labels of
/// every array read in it (⊥ when there are none). An access's simulated
/// address — and hence the machine-environment lines it may touch — depends
/// on exactly this information, so the array extension requires it to flow
/// to the command's write label (see TypeChecker and DESIGN.md).
Label addressDependenceLabel(const Expr &E, const Program &P);

/// The address-dependence label of the expressions evaluated by the *next*
/// evaluation step of \p C (the guard for compound commands; index and
/// value for assignments). This is the side condition under which
/// Property 7 holds in the presence of arrays.
Label stepAddressLabel(const Cmd &C, const Program &P);

} // namespace zam

#endif // ZAM_LANG_STATICLABELS_H
