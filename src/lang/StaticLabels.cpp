//===- StaticLabels.cpp ---------------------------------------------------===//

#include "lang/StaticLabels.h"

#include "support/Casting.h"
#include "support/Diagnostics.h"

using namespace zam;

Label zam::exprLabel(const Expr &E, const Program &P) {
  const SecurityLattice &Lat = P.lattice();
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return Lat.bottom();
  case Expr::Kind::Var: {
    const VarDecl *D = P.findVar(cast<VarExpr>(E).name());
    if (!D)
      reportFatalError("expression references an undeclared variable");
    return D->SecLabel;
  }
  case Expr::Kind::ArrayRead: {
    const auto &AR = cast<ArrayReadExpr>(E);
    const VarDecl *D = P.findVar(AR.array());
    if (!D)
      reportFatalError("expression references an undeclared array");
    return Lat.join(D->SecLabel, exprLabel(AR.index(), P));
  }
  case Expr::Kind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    return Lat.join(exprLabel(BO.lhs(), P), exprLabel(BO.rhs(), P));
  }
  case Expr::Kind::UnOp:
    return exprLabel(cast<UnOpExpr>(E).sub(), P);
  }
  return Lat.bottom();
}

Label zam::addressDependenceLabel(const Expr &E, const Program &P) {
  const SecurityLattice &Lat = P.lattice();
  switch (E.kind()) {
  case Expr::Kind::IntLit:
  case Expr::Kind::Var:
    return Lat.bottom();
  case Expr::Kind::ArrayRead: {
    const auto &AR = cast<ArrayReadExpr>(E);
    return Lat.join(exprLabel(AR.index(), P),
                    addressDependenceLabel(AR.index(), P));
  }
  case Expr::Kind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    return Lat.join(addressDependenceLabel(BO.lhs(), P),
                    addressDependenceLabel(BO.rhs(), P));
  }
  case Expr::Kind::UnOp:
    return addressDependenceLabel(cast<UnOpExpr>(E).sub(), P);
  }
  return Lat.bottom();
}

Label zam::stepAddressLabel(const Cmd &C, const Program &P) {
  const SecurityLattice &Lat = P.lattice();
  switch (C.kind()) {
  case Cmd::Kind::Skip:
    return Lat.bottom();
  case Cmd::Kind::Assign:
    return addressDependenceLabel(cast<AssignCmd>(C).value(), P);
  case Cmd::Kind::ArrayAssign: {
    const auto &A = cast<ArrayAssignCmd>(C);
    // The store's own address depends on the index expression's value.
    Label IdxL = Lat.join(exprLabel(A.index(), P),
                          addressDependenceLabel(A.index(), P));
    return Lat.join(IdxL, addressDependenceLabel(A.value(), P));
  }
  case Cmd::Kind::Seq:
    return stepAddressLabel(cast<SeqCmd>(C).first(), P);
  case Cmd::Kind::If:
    return addressDependenceLabel(cast<IfCmd>(C).cond(), P);
  case Cmd::Kind::While:
    return addressDependenceLabel(cast<WhileCmd>(C).cond(), P);
  case Cmd::Kind::Mitigate:
    return addressDependenceLabel(cast<MitigateCmd>(C).initialEstimate(), P);
  case Cmd::Kind::Sleep:
    return addressDependenceLabel(cast<SleepCmd>(C).duration(), P);
  }
  return Lat.bottom();
}

static void walkPc(const Cmd &C, Label Pc, const Program &P,
                   std::unordered_map<unsigned, Label> &Out) {
  Out[C.nodeId()] = Pc;
  const SecurityLattice &Lat = P.lattice();
  switch (C.kind()) {
  case Cmd::Kind::Skip:
  case Cmd::Kind::Assign:
  case Cmd::Kind::ArrayAssign:
  case Cmd::Kind::Sleep:
    break;
  case Cmd::Kind::Seq: {
    const auto &S = cast<SeqCmd>(C);
    walkPc(S.first(), Pc, P, Out);
    walkPc(S.second(), Pc, P, Out);
    break;
  }
  case Cmd::Kind::If: {
    const auto &I = cast<IfCmd>(C);
    Label BranchPc = Lat.join(Pc, exprLabel(I.cond(), P));
    walkPc(I.thenCmd(), BranchPc, P, Out);
    walkPc(I.elseCmd(), BranchPc, P, Out);
    break;
  }
  case Cmd::Kind::While: {
    const auto &W = cast<WhileCmd>(C);
    walkPc(W.body(), Lat.join(Pc, exprLabel(W.cond(), P)), P, Out);
    break;
  }
  case Cmd::Kind::Mitigate:
    // T-MTG type-checks the body under the same pc.
    walkPc(cast<MitigateCmd>(C).body(), Pc, P, Out);
    break;
  }
}

std::unordered_map<unsigned, Label> zam::computePcLabels(const Program &P) {
  std::unordered_map<unsigned, Label> Out;
  if (P.hasBody())
    walkPc(P.body(), P.lattice().bottom(), P, Out);
  return Out;
}

std::unordered_map<unsigned, Label> zam::computePcLabels(const Cmd &C,
                                                         const Program &P) {
  std::unordered_map<unsigned, Label> Out;
  walkPc(C, P.lattice().bottom(), P, Out);
  return Out;
}
