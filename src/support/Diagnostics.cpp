//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>

using namespace zam;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out = kindName(Kind);
  Out += ": ";
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

void zam::reportFatalError(const char *Message) {
  std::fprintf(stderr, "zam fatal error: %s\n", Message);
  std::abort();
}
