//===- BuildInfo.cpp ------------------------------------------------------===//

#include "support/BuildInfo.h"

// Fallbacks keep the file compilable outside the CMake build (tooling,
// editors); the real build always defines all three.
#ifndef ZAM_GIT_HASH
#define ZAM_GIT_HASH "unknown"
#endif
#ifndef ZAM_COMPILER
#define ZAM_COMPILER "unknown"
#endif
#ifndef ZAM_BUILD_TYPE
#define ZAM_BUILD_TYPE "unknown"
#endif

using namespace zam;

const char *zam::buildVersion() { return "0.3.0"; }

const char *zam::buildGitHash() { return ZAM_GIT_HASH; }

const char *zam::buildCompiler() { return ZAM_COMPILER; }

const char *zam::buildType() { return ZAM_BUILD_TYPE; }

std::string zam::buildSummary() {
  return std::string("zam ") + buildVersion() + " (git " + buildGitHash() +
         ", " + buildCompiler() + ", " + buildType() + ")";
}
