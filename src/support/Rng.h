//===- Rng.h - Deterministic random number generation -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded xoshiro256** generator. All randomness in zam (workload
/// generation, property-based test inputs, random program generation) flows
/// through this class so that every experiment is reproducible from a seed —
/// a requirement for the deterministic-execution Property 2 checks.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SUPPORT_RNG_H
#define ZAM_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace zam {

/// xoshiro256** 1.0 (public-domain algorithm by Blackman & Vigna), seeded via
/// splitmix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x2254064) { reseed(Seed); }

  void reseed(uint64_t Seed);

  /// Uniform 64-bit value.
  uint64_t next();

  /// Uniform value in [0, Bound) using rejection sampling; Bound must be > 0.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform value in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Bernoulli trial; \p Percent in [0,100].
  bool chance(unsigned Percent);

  /// Uniform double in [0, 1).
  double nextDouble();

private:
  uint64_t State[4];
};

} // namespace zam

#endif // ZAM_SUPPORT_RNG_H
