//===- Rng.cpp ------------------------------------------------------------===//

#include "support/Rng.h"

using namespace zam;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  for (uint64_t &S : State)
    S = splitmix64(Seed);
}

uint64_t Rng::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound > 0 && "nextBelow requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t V = next();
    if (V >= Threshold)
      return V % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

bool Rng::chance(unsigned Percent) {
  assert(Percent <= 100 && "percentage out of range");
  return nextBelow(100) < Percent;
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}
