//===- BuildInfo.h - Build provenance ---------------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configure-time provenance baked into the binaries so every emitted
/// artifact (stats JSON, traces, bench reports) is attributable to a
/// specific source revision and toolchain. The values are injected as
/// compile definitions on BuildInfo.cpp by src/support/CMakeLists.txt.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SUPPORT_BUILDINFO_H
#define ZAM_SUPPORT_BUILDINFO_H

#include <string>

namespace zam {

/// Semantic version of the zam tools, bumped per milestone.
const char *buildVersion();

/// Short git revision the tree was configured from; "unknown" outside a
/// checkout.
const char *buildGitHash();

/// Compiler id and version, e.g. "GNU 13.2.0".
const char *buildCompiler();

/// CMake build type, e.g. "Release".
const char *buildType();

/// One line for --version output:
/// "zam <version> (git <hash>, <compiler>, <type>)".
std::string buildSummary();

} // namespace zam

#endif // ZAM_SUPPORT_BUILDINFO_H
