//===- SourceLoc.cpp ------------------------------------------------------===//

#include "support/SourceLoc.h"

#include <cstdio>

using namespace zam;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%u:%u", Line, Col);
  return Buf;
}
