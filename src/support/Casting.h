//===- Casting.h - LLVM-style isa/cast/dyn_cast -----------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal hand-rolled RTTI in the LLVM style, driven by each class's
/// static classof(). Works with the Expr and Cmd hierarchies without
/// enabling compiler RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SUPPORT_CASTING_H
#define ZAM_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace zam {

template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
const To &cast(const From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
To &cast(From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace zam

#endif // ZAM_SUPPORT_CASTING_H
