//===- Diagnostics.h - Error reporting for zam ------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Library code never throws; fallible phases
/// (lexing, parsing, type checking) report into a DiagnosticEngine and the
/// caller inspects it. Messages follow the LLVM style: start lowercase, no
/// trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SUPPORT_DIAGNOSTICS_H
#define ZAM_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace zam {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// A single reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "error: 3:7: message" (location omitted when unknown).
  std::string str() const;
};

/// Collects diagnostics produced by one compilation phase.
///
/// The engine is append-only; phases report via error()/warning()/note() and
/// callers test hasErrors() afterwards.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }

  /// All diagnostics joined by newlines; convenient for test assertions and
  /// tool output.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

/// Aborts the process after printing \p Message to stderr. Used for
/// violations of internal invariants that must be caught even in release
/// builds (e.g. a hardware model breaking the software/hardware contract).
[[noreturn]] void reportFatalError(const char *Message);

} // namespace zam

#endif // ZAM_SUPPORT_DIAGNOSTICS_H
