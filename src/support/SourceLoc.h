//===- SourceLoc.h - Source locations for the zam language -----*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column source locations used by the lexer, parser, and
/// diagnostics. A default-constructed location is "unknown" (line 0).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SUPPORT_SOURCELOC_H
#define ZAM_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace zam {

/// A position in a source buffer. Lines and columns are 1-based; a value of
/// zero means "unknown" (e.g. for programmatically built ASTs).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Other) const = default;

  /// Renders as "line:col", or "<unknown>" for invalid locations.
  std::string str() const;
};

} // namespace zam

#endif // ZAM_SUPPORT_SOURCELOC_H
