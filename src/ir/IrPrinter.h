//===- IrPrinter.h - Textual dump of the timing-IR --------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, human-readable dump of a lowered program: the slot
/// layout, then one line per instruction with its successors, timing
/// labels, code address and postfix expression(s). `zamc ir` prints this,
/// and CI diffs it against a committed golden file — the format is part of
/// the repository's regression surface, so change it deliberately.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_IR_IRPRINTER_H
#define ZAM_IR_IRPRINTER_H

#include "ir/Ir.h"

#include <string>

namespace zam {

class SecurityLattice;

/// Renders one lowered expression in postfix, e.g.
/// "load %1:x; const 3; add".
std::string printIrExpr(const IrExpr &E);

/// Renders the whole program (slots, then instructions).
std::string printIr(const IrProgram &IR, const SecurityLattice &Lat);

} // namespace zam

#endif // ZAM_IR_IRPRINTER_H
