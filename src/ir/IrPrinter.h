//===- IrPrinter.h - Textual dump of the timing-IR --------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, human-readable dump of a lowered program: the slot
/// layout, then one line per instruction with its successors, timing
/// labels, code address and postfix expression(s). `zamc ir` prints this,
/// and CI diffs it against a committed golden file — the format is part of
/// the repository's regression surface, so change it deliberately.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_IR_IRPRINTER_H
#define ZAM_IR_IRPRINTER_H

#include "ir/Ir.h"

#include <string>

namespace zam {

class SecurityLattice;

/// Renders one lowered expression in postfix, e.g.
/// "load %1:x; const 3; add".
std::string printIrExpr(const IrExpr &E);

/// The stable lower-case mnemonic for an opcode ("skip", "assign", "store",
/// "branch", "sleep", "mitenter", "mitend", "halt") — the spelling used by
/// the instruction dump, the exec.* metrics namespace and the folded-stack
/// export, so profiles and IR listings name opcodes identically.
const char *irOpName(IrInstr::Op K);

/// Renders instruction \p I exactly as one `printIr` listing line, without
/// the leading "  %3u: " pc prefix — so annotated dumps (`zamc hot`) reuse
/// the byte-identical instruction text.
std::string printIrInstr(const IrProgram &IR, uint32_t I,
                         const SecurityLattice &Lat);

/// Renders the whole program (slots, then instructions).
std::string printIr(const IrProgram &IR, const SecurityLattice &Lat);

} // namespace zam

#endif // ZAM_IR_IRPRINTER_H
