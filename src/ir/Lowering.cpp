//===- Lowering.cpp - AST → timing-IR lowering ----------------------------===//

#include "ir/Lowering.h"

#include "lang/StaticLabels.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <unordered_map>

using namespace zam;

namespace {

/// A forward reference: instruction \p Instr's fall-through (or taken)
/// successor is the first instruction of whatever block gets emitted next.
struct PatchRef {
  uint32_t Instr;
  bool Taken = false;
};

class Lowerer {
public:
  Lowerer(const Program &P, const CostModel &Costs,
          const PolicySelection &Policies)
      : P(P), Costs(Costs), Policies(Policies) {
    // Identical layout to Memory::fromProgram: declaration order,
    // contiguous 8-byte words from DataBase.
    Addr Next = Costs.DataBase;
    for (const VarDecl &D : P.vars()) {
      Map.emplace(D.Name, static_cast<uint32_t>(Out.Slots.size()));
      Out.Slots.push_back({D.Name, D.SecLabel, D.IsArray, D.Size, Next});
      Next += D.Size * 8;
    }
  }

  IrProgram take(const Cmd &Root,
                 const std::unordered_map<unsigned, Label> &PcLabels) {
    Pc = &PcLabels;
    std::vector<PatchRef> Exits;
    lowerCmd(Root, 0, Exits);
    IrInstr Halt;
    Halt.K = IrInstr::Op::Halt;
    Halt.Read = P.lattice().bottom();
    Halt.Write = P.lattice().bottom();
    uint32_t HaltIdx = emit(std::move(Halt));
    Out.Instrs[HaltIdx].Next = HaltIdx;
    patch(Exits, HaltIdx);
    return std::move(Out);
  }

  IrExpr lowerExprOnly(const Expr &E, SourceLoc CmdLoc) {
    IrExpr Ex;
    uint32_t Depth = 0;
    lowerExprInto(E, CmdLoc, Ex, Depth);
    return Ex;
  }

private:
  const Program &P;
  const CostModel &Costs;
  const PolicySelection &Policies;
  const std::unordered_map<unsigned, Label> *Pc = nullptr;
  std::unordered_map<std::string, uint32_t> Map;
  IrProgram Out;
  unsigned MitDepth = 0;

  uint32_t emit(IrInstr I) {
    Out.Instrs.push_back(std::move(I));
    return static_cast<uint32_t>(Out.Instrs.size()) - 1;
  }

  void patch(std::vector<PatchRef> &Refs, uint32_t To) {
    for (PatchRef R : Refs) {
      IrInstr &I = Out.Instrs[R.Instr];
      (R.Taken ? I.Target : I.Next) = To;
    }
    Refs.clear();
  }

  const IrSlotInfo &resolve(const std::string &Name, uint32_t &SlotIdx) {
    auto It = Map.find(Name);
    if (It == Map.end())
      reportFatalError("access to undeclared variable");
    SlotIdx = It->second;
    return Out.Slots[It->second];
  }

  void lowerExprInto(const Expr &E, SourceLoc Inherited, IrExpr &Ex,
                     uint32_t &Depth) {
    // The effective attribution location: the innermost valid source
    // location on the path from the command — exactly the tree engines'
    // LocScope narrowing.
    SourceLoc L = E.loc().isValid() ? E.loc() : Inherited;
    ExprOp Op;
    Op.Loc = L;
    switch (E.kind()) {
    case Expr::Kind::IntLit:
      Op.K = ExprOp::Kind::PushConst;
      Op.Const = cast<IntLitExpr>(E).value();
      push(Ex, Op, Depth);
      return;
    case Expr::Kind::Var: {
      Op.K = ExprOp::Kind::LoadVar;
      const IrSlotInfo &S = resolve(cast<VarExpr>(E).name(), Op.Slot);
      Op.Base = S.Base;
      push(Ex, Op, Depth);
      return;
    }
    case Expr::Kind::ArrayRead: {
      const auto &AR = cast<ArrayReadExpr>(E);
      lowerExprInto(AR.index(), L, Ex, Depth);
      Op.K = ExprOp::Kind::LoadElem;
      const IrSlotInfo &S = resolve(AR.array(), Op.Slot);
      Op.Base = S.Base;
      Op.ElemCount = S.Size;
      Ex.Ops.push_back(Op); // Pops the index, pushes the element.
      return;
    }
    case Expr::Kind::BinOp: {
      const auto &BO = cast<BinOpExpr>(E);
      lowerExprInto(BO.lhs(), L, Ex, Depth);
      lowerExprInto(BO.rhs(), L, Ex, Depth);
      Op.K = ExprOp::Kind::Bin;
      Op.BinOp = BO.op();
      Ex.Ops.push_back(Op);
      --Depth; // Pops two, pushes one.
      return;
    }
    case Expr::Kind::UnOp: {
      const auto &UO = cast<UnOpExpr>(E);
      lowerExprInto(UO.sub(), L, Ex, Depth);
      Op.K = ExprOp::Kind::Un;
      Op.UnOp = UO.op();
      Ex.Ops.push_back(Op);
      return;
    }
    }
  }

  void push(IrExpr &Ex, const ExprOp &Op, uint32_t &Depth) {
    Ex.Ops.push_back(Op);
    ++Depth;
    Ex.MaxDepth = std::max(Ex.MaxDepth, Depth);
    Out.MaxEvalDepth = std::max(Out.MaxEvalDepth, Ex.MaxDepth);
  }

  IrExpr lowerExprFor(const Expr &E, const Cmd &C) {
    IrExpr Ex;
    uint32_t Depth = 0;
    lowerExprInto(E, C.loc(), Ex, Depth);
    return Ex;
  }

  /// The static skeleton shared by every instruction lowered from \p C.
  IrInstr base(const Cmd &C) {
    IrInstr I;
    I.Read = *C.labels().Read;
    I.Write = *C.labels().Write;
    I.CodeAddr = Costs.codeAddr(C.nodeId());
    I.Loc = C.loc();
    I.Origin = &C;
    return I;
  }

  void lowerCmd(const Cmd &C, unsigned Depth, std::vector<PatchRef> &Exits) {
    // Sequential composition takes no evaluation step: it vanishes here,
    // leaving only its components' instructions.
    if (C.kind() == Cmd::Kind::Seq) {
      const auto &S = cast<SeqCmd>(C);
      std::vector<PatchRef> FirstExits;
      lowerCmd(S.first(), Depth, FirstExits);
      patch(FirstExits, static_cast<uint32_t>(Out.Instrs.size()));
      lowerCmd(S.second(), Depth, Exits);
      return;
    }

    if (!C.labels().complete())
      reportFatalError("command lacks timing labels; run label inference");

    switch (C.kind()) {
    case Cmd::Kind::Skip: {
      IrInstr I = base(C);
      I.K = IrInstr::Op::Skip;
      Exits.push_back({emit(std::move(I))});
      return;
    }

    case Cmd::Kind::Assign: {
      const auto &A = cast<AssignCmd>(C);
      IrInstr I = base(C);
      I.K = IrInstr::Op::Assign;
      const IrSlotInfo &S = resolve(A.var(), I.Slot);
      I.SlotBase = S.Base;
      I.E0 = lowerExprFor(A.value(), C);
      Exits.push_back({emit(std::move(I))});
      return;
    }

    case Cmd::Kind::ArrayAssign: {
      const auto &A = cast<ArrayAssignCmd>(C);
      IrInstr I = base(C);
      I.K = IrInstr::Op::ArrayAssign;
      const IrSlotInfo &S = resolve(A.array(), I.Slot);
      I.SlotBase = S.Base;
      I.ElemCount = S.Size;
      I.E0 = lowerExprFor(A.index(), C);
      I.E1 = lowerExprFor(A.value(), C);
      Exits.push_back({emit(std::move(I))});
      return;
    }

    case Cmd::Kind::If: {
      const auto &If = cast<IfCmd>(C);
      IrInstr I = base(C);
      I.K = IrInstr::Op::Branch;
      I.E0 = lowerExprFor(If.cond(), C);
      uint32_t B = emit(std::move(I));
      Out.Instrs[B].Target = B + 1; // Then-block follows immediately.
      lowerCmd(If.thenCmd(), Depth, Exits);
      std::vector<PatchRef> FalseRef{{B, /*Taken=*/false}};
      patch(FalseRef, static_cast<uint32_t>(Out.Instrs.size()));
      lowerCmd(If.elseCmd(), Depth, Exits);
      return;
    }

    case Cmd::Kind::While: {
      const auto &W = cast<WhileCmd>(C);
      IrInstr I = base(C);
      I.K = IrInstr::Op::Branch;
      I.IsLoop = true;
      I.E0 = lowerExprFor(W.cond(), C);
      uint32_t B = emit(std::move(I));
      Out.Instrs[B].Target = B + 1; // Body follows immediately.
      std::vector<PatchRef> BodyExits;
      lowerCmd(W.body(), Depth, BodyExits);
      patch(BodyExits, B); // Back edge: re-evaluate the guard.
      Exits.push_back({B, /*Taken=*/false});
      return;
    }

    case Cmd::Kind::Sleep: {
      const auto &S = cast<SleepCmd>(C);
      IrInstr I = base(C);
      I.K = IrInstr::Op::Sleep;
      I.E0 = lowerExprFor(S.duration(), C);
      Exits.push_back({emit(std::move(I))});
      return;
    }

    case Cmd::Kind::Mitigate: {
      const auto &M = cast<MitigateCmd>(C);
      Out.MaxMitDepth = std::max(Out.MaxMitDepth, Depth + 1);

      IrInstr Enter = base(C);
      Enter.K = IrInstr::Op::MitEnter;
      Enter.Eta = M.mitigateId();
      Enter.MitLevel = M.mitLevel();
      Enter.Policy = &Policies.forSite(M.mitigateId());
      auto PcIt = Pc->find(C.nodeId());
      Enter.PcLabel = PcIt != Pc->end() ? PcIt->second : P.lattice().bottom();
      Enter.E0 = lowerExprFor(M.initialEstimate(), C);
      uint32_t E = emit(std::move(Enter));
      Out.Instrs[E].Next = E + 1; // Body follows immediately.

      std::vector<PatchRef> BodyExits;
      lowerCmd(M.body(), Depth + 1, BodyExits);

      // The window settlement (the paper's MitigateEnd continuation): no
      // instruction fetch, [⊥,⊥] — the update/pad tail leaks no
      // machine-environment information. It inherits the mitigate's
      // source location so padding attributes to the mitigate line.
      IrInstr End;
      End.K = IrInstr::Op::MitEnd;
      End.Read = P.lattice().bottom();
      End.Write = P.lattice().bottom();
      End.Loc = C.loc();
      End.Origin = &C;
      End.Eta = M.mitigateId();
      End.MitLevel = M.mitLevel();
      End.Policy = &Policies.forSite(M.mitigateId());
      uint32_t EndIdx = emit(std::move(End));
      patch(BodyExits, EndIdx);
      Exits.push_back({EndIdx});
      return;
    }

    case Cmd::Kind::Seq:
      break; // Handled above.
    }
    reportFatalError("unexpected command kind in IR lowering");
  }
};

} // namespace

IrProgram zam::lowerProgram(const Program &P, const CostModel &Costs,
                            const PolicySelection &Policies) {
  if (!P.hasBody())
    reportFatalError("program has no body");
  return Lowerer(P, Costs, Policies).take(P.body(), computePcLabels(P));
}

IrProgram zam::lowerCommand(const Program &P, const Cmd &C,
                            const CostModel &Costs,
                            const PolicySelection &Policies) {
  return Lowerer(P, Costs, Policies).take(C, computePcLabels(C, P));
}

IrExpr zam::lowerExpr(const Expr &E, const Program &P, const CostModel &Costs,
                      SourceLoc CmdLoc) {
  return Lowerer(P, Costs, PolicySelection()).lowerExprOnly(E, CmdLoc);
}
