//===- Ir.h - The flat timing-IR ---------------------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, linearized form of the type-checked Fig. 1 AST (plus arrays and
/// `mitigate`). One IrInstr corresponds to exactly one evaluation step of
/// the paper's small-step semantics (Fig. 2 + Fig. 6): `skip`, assignments,
/// `sleep`, one guard evaluation of an `if`/`while`, one `mitigate` entry,
/// and one window settlement (the MitigateEnd continuation of S-MTGPRED).
/// Sequential composition disappears entirely — it takes no evaluation step
/// and has no timing labels — so the step count of an IR execution equals
/// the number of primitive transitions of the source program.
///
/// Everything an engine would otherwise recompute per transition is
/// resolved once at lowering time:
///
///   - variables become dense memory-slot indices with precomputed
///     simulated base addresses (identical to Memory::fromProgram layout);
///   - the per-command code address for the instruction fetch;
///   - the [er, ew] timing labels and the static pc label at mitigate
///     sites (from lang/StaticLabels);
///   - the SourceLoc attribution cursor for every instruction and for
///     every expression operation that can touch the data hierarchy;
///   - expressions in evaluation-order postfix, executed on a flat value
///     stack whose maximum depth is known statically.
///
/// The IR is purely static data: executing it never mutates it, so any
/// number of engines (and any number of resumable cursors) can share one
/// lowered program.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_IR_IR_H
#define ZAM_IR_IR_H

#include "hw/CacheConfig.h"
#include "lang/Ast.h"
#include "lattice/SecurityLattice.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace zam {

class MitigationPolicy;

/// One postfix expression operation. Operations execute left-to-right on a
/// value stack, reproducing the AST evaluation order exactly: an array
/// read's index is computed before the element access, a binary operator's
/// left operand before its right.
struct ExprOp {
  enum class Kind : uint8_t {
    PushConst, ///< Push Const.
    LoadVar,   ///< Data access at Base, push the scalar's value.
    LoadElem,  ///< Pop index, wrap mod ElemCount, access, push element.
    Bin,       ///< Pop rhs then lhs, push applyBinOp(BinOp, lhs, rhs).
    Un,        ///< Pop operand, push applyUnOp(UnOp, v).
  };

  Kind K = Kind::PushConst;
  BinOpKind BinOp = BinOpKind::Add; ///< Valid when K == Bin.
  UnOpKind UnOp = UnOpKind::Neg;    ///< Valid when K == Un.
  uint32_t Slot = 0;                ///< LoadVar/LoadElem: memory slot index.
  Addr Base = 0;                    ///< LoadVar/LoadElem: slot base address.
  uint64_t ElemCount = 1;           ///< LoadElem: wrap modulus (array size).
  int64_t Const = 0;                ///< PushConst: the literal value.

  /// The effective attribution location: the nearest enclosing AST node
  /// with a valid location (the operation's own node if it has one, else
  /// the innermost valid ancestor, falling back to the command). Hardware
  /// accesses made by LoadVar/LoadElem are charged at this location —
  /// byte-for-byte the cursor-narrowing discipline of the tree engines.
  SourceLoc Loc;
};

/// A lowered expression: postfix operations plus the value-stack depth the
/// sequence needs. Never empty.
struct IrExpr {
  std::vector<ExprOp> Ops;
  uint32_t MaxDepth = 0;
};

/// One instruction — one small-step transition. Control flow is explicit:
/// every instruction names its successor(s) by index, so engines advance a
/// plain program counter instead of rewriting command trees.
struct IrInstr {
  enum class Op : uint8_t {
    Skip,        ///< Fetch + base cost only.
    Assign,      ///< x := E0.
    ArrayAssign, ///< a[E0] := E1.
    Branch,      ///< if/while guard: eval E0, go to Target (≠0) or Next (=0).
    Sleep,       ///< sleep(E0): no fetch; costs eval + max(n, 0) cycles.
    MitEnter,    ///< mitigate entry: eval estimate E0, open a window.
    MitEnd,      ///< window settlement: no fetch; settle, pad, close.
    Halt,        ///< Terminal. Never executed; reaching it ends the run.
  };

  Op K = Op::Skip;

  // Successors.
  uint32_t Next = 0;   ///< Fall-through successor.
  uint32_t Target = 0; ///< Branch: successor when the guard is non-zero.
  bool IsLoop = false; ///< Branch lowered from a `while` (printer only).

  // Precomputed static data.
  Label Read;          ///< er — upper bound on state read by this step.
  Label Write;         ///< ew — lower bound on state written by this step.
  Addr CodeAddr = 0;   ///< I-fetch address (CostModel::codeAddr of node id).
  SourceLoc Loc;       ///< The command's own source location.
  const Cmd *Origin = nullptr; ///< The source command this step came from.

  // Assign / ArrayAssign.
  uint32_t Slot = 0;      ///< Target memory slot.
  Addr SlotBase = 0;      ///< Its base address.
  uint64_t ElemCount = 1; ///< ArrayAssign: wrap modulus.

  // MitEnter / MitEnd.
  unsigned Eta = 0; ///< Mitigate site id η.
  Label MitLevel;   ///< The window's mitigation level ℓ.
  Label PcLabel;    ///< pc(M_η): static pc at the mitigate (Sec. 6.3).
  /// The site's prediction schedule, resolved once at lowering from the
  /// run's PolicySelection (per-site overrides land here). Borrowed — the
  /// policy objects outlive the IR. Null only in hand-built IR; engines
  /// fall back to the run default.
  const MitigationPolicy *Policy = nullptr;

  IrExpr E0; ///< Value / index / guard / duration / estimate.
  IrExpr E1; ///< ArrayAssign: the stored value.
};

/// Slot metadata mirrored from the declarations, for printing and for
/// cross-checking the layout against Memory::fromProgram.
struct IrSlotInfo {
  std::string Name;
  Label SecLabel;
  bool IsArray = false;
  uint64_t Size = 1;
  Addr Base = 0;
};

/// A lowered program: static instruction array plus layout metadata.
/// Instruction 0 is the entry point; the last instruction is always Halt.
struct IrProgram {
  std::vector<IrInstr> Instrs;
  std::vector<IrSlotInfo> Slots;
  uint32_t MaxEvalDepth = 0; ///< Max value-stack depth over all exprs.
  uint32_t MaxMitDepth = 0;  ///< Max static nesting of mitigate windows.

  uint32_t haltIndex() const {
    return static_cast<uint32_t>(Instrs.size()) - 1;
  }
};

} // namespace zam

#endif // ZAM_IR_IR_H
