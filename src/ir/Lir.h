//===- Lir.h - The low-level register-transfer tier (LIR) -------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third (lowest) tier of the execution pipeline, below the flat
/// timing-IR of Ir.h: an RTL-like register-transfer form built for the
/// threaded-code dispatch loop in sem/ExecCore. Where the IR evaluates
/// postfix expressions on a value stack, the LIR flattens every expression
/// into micro-ops over a statically-allocated register file: each postfix
/// operation's stack position is known at lowering time, so it becomes a
/// fixed register index, and every load's operand address is precomputed.
///
/// Layout invariants:
///
///   - LirInst is 1:1 with IrInstr — Insts[pc] lowers Instrs[pc], so the
///     program counter, exec.* per-pc metrics and branch targets carry over
///     unchanged between tiers. This array doubles as the *de-fused side
///     table*: every logical pc stays individually dispatchable, which is
///     what lets the Step engine resume in the middle of a fused pair.
///   - All micro-ops live in one shared pool; each LirInst names its
///     expression work as [U0, U0+N0) (and [U1, U1+N1) for the stored
///     value of an array assignment, lowered with registers offset by one
///     so the index in r0 survives).
///   - The LIR is purely static data, shareable by any number of cores;
///     per-run state (the register file, the slot-data pointer table)
///     lives in the execution core.
///
/// Superinstruction fusion (ir/Fusion.h) is an overlay, not a rewrite:
/// FusedWith[pc] names the second constituent of a fused pair headed at
/// pc (or kNoFuse). The run loop dispatches the pair as one
/// superinstruction; observability replays both constituents, so the
/// logical dispatch stream — and with it every exec.* metric — is
/// bit-identical to unfused execution.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_IR_LIR_H
#define ZAM_IR_LIR_H

#include "ir/Ir.h"

#include <cstdint>
#include <string>
#include <vector>

namespace zam {

/// One register-transfer micro-op of an expression. Register indices are
/// assigned from static postfix stack depths, so a binary operator's
/// operands are always (Dst, Dst+1) and every op writes its result to Dst.
struct LirUop {
  enum class K : uint8_t {
    Const, ///< r[Dst] = Imm (immediate operand: free).
    Var,   ///< Data access at Base; r[Dst] = scalar slot value.
    Elem,  ///< Wrap r[Dst] mod Mod, access Base + 8w, r[Dst] = element w.
    Bin,   ///< r[Dst] = applyBinOp(Op2, r[Dst], r[Dst+1]).
    Un,    ///< r[Dst] = applyUnOp(Op2, r[Dst]).
  };

  K Kind = K::Const;
  uint8_t Op2 = 0;   ///< Raw BinOpKind (Bin) / UnOpKind (Un).
  uint16_t Dst = 0;  ///< Destination (and first-operand) register.
  uint32_t Slot = 0; ///< Var/Elem: memory slot index.
  Addr Base = 0;     ///< Var/Elem: precomputed operand base address.
  union {
    int64_t Imm = 0; ///< Const: the literal value.
    uint64_t Mod;    ///< Elem: wrap modulus (array size).
  };
  /// Var/Elem: attribution location for the load's own hardware access
  /// (the cursor-narrowing discipline of Provenance.h).
  SourceLoc Loc;
};

/// One logical instruction in register-transfer form: the static data of
/// its IrInstr with the expression vectors replaced by micro-op spans.
/// Everything the dispatch loop touches is flat — no nested vectors.
struct LirInst {
  IrInstr::Op K = IrInstr::Op::Skip;

  // Successors (same pc space as the IR tier).
  uint32_t Next = 0;
  uint32_t Target = 0;

  // Micro-op spans into LirProgram::Uops.
  uint32_t U0 = 0, N0 = 0; ///< E0: value / index / guard / duration.
  uint32_t U1 = 0, N1 = 0; ///< E1: ArrayAssign stored value (regs + 1).

  // Precomputed static data (see IrInstr for field semantics).
  Label Read;
  Label Write;
  Addr CodeAddr = 0;
  uint32_t Slot = 0;
  Addr SlotBase = 0;
  uint64_t ElemCount = 1;
  SourceLoc Loc;
  unsigned Eta = 0;
  Label MitLevel;
  Label PcLabel;
  const MitigationPolicy *Policy = nullptr;
  const Cmd *Origin = nullptr;
};

/// A lowered LIR program: the de-fused logical instruction array, the
/// shared micro-op pool, and the fusion plan overlay.
struct LirProgram {
  /// FusedWith[pc] value meaning "pc heads no fused pair".
  static constexpr uint32_t kNoFuse = ~0u;

  /// Logical instructions, 1:1 with (and indexed like) IR.Instrs. This is
  /// the de-fused side table: fused execution never removes an entry, so
  /// branch targets into a pair's second constituent — and Step-engine
  /// resume mid-superinstruction — dispatch it standalone.
  std::vector<LirInst> Insts;
  /// The shared micro-op pool all instruction spans point into.
  std::vector<LirUop> Uops;
  /// Fusion plan: the second constituent of the pair headed at each pc, or
  /// kNoFuse. Filled by planFusion (ir/Fusion.h); all-kNoFuse when fusion
  /// is disabled.
  std::vector<uint32_t> FusedWith;
  /// Number of statically planned pairs (Σ FusedWith[pc] != kNoFuse).
  uint32_t FusedPairs = 0;
  /// Register-file size the micro-ops require (≥ 1).
  uint32_t NumRegs = 1;
  /// The tier above (borrowed; must outlive this program). Carries the
  /// slot table and is what probes receive in onProgram.
  const IrProgram *IR = nullptr;

  uint32_t haltIndex() const {
    return static_cast<uint32_t>(Insts.size()) - 1;
  }
  bool fusedAt(uint32_t Pc) const { return FusedWith[Pc] != kNoFuse; }
};

/// Flattens \p IR into register-transfer form. The result borrows \p IR
/// (which must outlive it) and carries an empty fusion plan; run
/// planFusion to overlay one.
LirProgram lowerToLir(const IrProgram &IR);

class SecurityLattice;

/// Renders the LIR tier: each logical instruction line byte-identical to
/// the `printIr` listing, followed by its micro-ops, then the fused-pair
/// plan. `zamc ir --tier=lir` prints this; CI pins it as a golden file.
std::string printLir(const LirProgram &L, const SecurityLattice &Lat);

/// Checks every structural invariant of a lowered (and possibly
/// fusion-planned) program: 1:1 correspondence with the IR tier, span and
/// register bounds, and plan soundness (partners are fall-through
/// successors, heads are straightline, pairs never chain). Returns false
/// and fills \p Err on the first violation.
bool verifyLir(const LirProgram &L, std::string &Err);

} // namespace zam

#endif // ZAM_IR_LIR_H
