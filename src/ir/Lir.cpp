//===- Lir.cpp - LIR printing and structural verification -----------------===//

#include "ir/Lir.h"

#include "ir/Fusion.h"
#include "ir/IrPrinter.h"
#include "lattice/SecurityLattice.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace zam;

namespace {

std::string fmt(const char *Format, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Args);
  va_end(Args);
  return Buf;
}

std::string slotRef(const LirProgram &L, uint32_t Slot) {
  std::string S = "%" + std::to_string(Slot);
  if (L.IR && Slot < L.IR->Slots.size())
    S += ":" + L.IR->Slots[Slot].Name;
  return S;
}

std::string uopText(const LirProgram &L, const LirUop &U) {
  std::string S;
  switch (U.Kind) {
  case LirUop::K::Const:
    S = fmt("const %" PRId64, U.Imm);
    break;
  case LirUop::K::Var:
    S = "load " + slotRef(L, U.Slot) +
        fmt(" @0x%" PRIx64, static_cast<uint64_t>(U.Base));
    break;
  case LirUop::K::Elem:
    S = "elem " + slotRef(L, U.Slot) +
        fmt("[r%u mod %" PRIu64 "] @0x%" PRIx64, U.Dst, U.Mod,
            static_cast<uint64_t>(U.Base));
    break;
  case LirUop::K::Bin:
    S = fmt("bin '%s' r%u r%u",
            binOpSpelling(static_cast<BinOpKind>(U.Op2)), U.Dst, U.Dst + 1);
    break;
  case LirUop::K::Un:
    S = fmt("un '%s' r%u", unOpSpelling(static_cast<UnOpKind>(U.Op2)), U.Dst);
    break;
  }
  S += fmt(" -> r%u", U.Dst);
  if ((U.Kind == LirUop::K::Var || U.Kind == LirUop::K::Elem) &&
      U.Loc.isValid())
    S += fmt(" line=%u", U.Loc.Line);
  return S;
}

} // namespace

std::string zam::printLir(const LirProgram &L, const SecurityLattice &Lat) {
  std::string Out =
      fmt("lir: %zu instructions, %zu uops, %u regs, %u fused pairs\n",
          L.Insts.size(), L.Uops.size(), L.NumRegs, L.FusedPairs);
  if (L.IR)
    for (const IrSlotInfo &S : L.IR->Slots)
      Out += fmt("  slot %%%u: %s : %s %s[%" PRIu64 "] @0x%" PRIx64 "\n",
                 static_cast<unsigned>(&S - L.IR->Slots.data()),
                 S.Name.c_str(), Lat.name(S.SecLabel).c_str(),
                 S.IsArray ? "array" : "scalar", S.Size,
                 static_cast<uint64_t>(S.Base));
  for (uint32_t I = 0; I != L.Insts.size(); ++I) {
    Out += fmt("  %3u: ", I);
    if (L.IR)
      Out += printIrInstr(*L.IR, I, Lat);
    else
      Out += irOpName(L.Insts[I].K);
    if (L.fusedAt(I))
      Out += fmt("  ; fused +%u", L.FusedWith[I]);
    Out += "\n";
    const LirInst &In = L.Insts[I];
    for (uint32_t U = In.U0; U != In.U0 + In.N0; ++U)
      Out += fmt("       u%-3u ", U) + uopText(L, L.Uops[U]) + "\n";
    for (uint32_t U = In.U1; U != In.U1 + In.N1; ++U)
      Out += fmt("       u%-3u ", U) + uopText(L, L.Uops[U]) + "\n";
  }
  Out += "  fused pairs:";
  if (!L.FusedPairs)
    Out += " none\n";
  else {
    Out += "\n";
    for (uint32_t I = 0; I != L.Insts.size(); ++I)
      if (L.fusedAt(I))
        Out += fmt("    %u+%u: %s;%s\n", I, L.FusedWith[I],
                   irOpName(L.Insts[I].K),
                   irOpName(L.Insts[L.FusedWith[I]].K));
  }
  return Out;
}

bool zam::verifyLir(const LirProgram &L, std::string &Err) {
  auto Fail = [&](std::string Msg) {
    Err = std::move(Msg);
    return false;
  };
  if (!L.IR)
    return Fail("LIR has no IR tier attached");
  const IrProgram &IR = *L.IR;
  if (L.Insts.size() != IR.Instrs.size())
    return Fail("LIR/IR instruction counts differ");
  if (L.FusedWith.size() != L.Insts.size())
    return Fail("fusion plan size mismatch");
  if (L.NumRegs < 1)
    return Fail("register file must hold at least one register");
  const uint32_t N = static_cast<uint32_t>(L.Insts.size());
  uint32_t Pairs = 0;
  for (uint32_t I = 0; I != N; ++I) {
    const LirInst &In = L.Insts[I];
    const IrInstr &Ir = IR.Instrs[I];
    const std::string At = "inst " + std::to_string(I) + ": ";
    if (In.K != Ir.K)
      return Fail(At + "opcode differs from IR tier");
    if (In.Next != Ir.Next || In.Target != Ir.Target)
      return Fail(At + "successors differ from IR tier");
    if (In.K != IrInstr::Op::Halt && In.Next >= N)
      return Fail(At + "fall-through successor out of range");
    if (In.K == IrInstr::Op::Branch && In.Target >= N)
      return Fail(At + "branch target out of range");
    if (In.N0 != Ir.E0.Ops.size() || In.N1 != Ir.E1.Ops.size())
      return Fail(At + "micro-op span length differs from postfix length");
    if (static_cast<size_t>(In.U0) + In.N0 > L.Uops.size() ||
        static_cast<size_t>(In.U1) + In.N1 > L.Uops.size())
      return Fail(At + "micro-op span out of range");
    if (In.N1 && In.K != IrInstr::Op::ArrayAssign)
      return Fail(At + "only array stores carry a second expression");
    for (uint32_t U = In.U0; U != In.U0 + In.N0; ++U)
      if (L.Uops[U].Dst >= L.NumRegs)
        return Fail(At + "micro-op register out of range");
    for (uint32_t U = In.U1; U != In.U1 + In.N1; ++U)
      if (L.Uops[U].Dst >= L.NumRegs)
        return Fail(At + "micro-op register out of range");
    // Plan soundness.
    const uint32_t Partner = L.FusedWith[I];
    if (Partner == LirProgram::kNoFuse)
      continue;
    ++Pairs;
    if (!fusibleFirst(In.K))
      return Fail(At + "unfusible opcode heads a pair");
    if (Partner != In.Next)
      return Fail(At + "fused partner is not the fall-through successor");
    if (Partner >= N || Partner == L.haltIndex())
      return Fail(At + "fused partner out of range");
    if (!fusibleSecond(L.Insts[Partner].K))
      return Fail(At + "unfusible opcode closes a pair");
    // Note a partner may itself head a pair (reachable when a later pc's
    // backward Next claims an earlier head as its second); that is sound
    // because the run loop executes second constituents standalone, so
    // superinstructions never chain within one dispatch.
  }
  if (Pairs != L.FusedPairs)
    return Fail("FusedPairs count disagrees with the plan");
  return true;
}
