//===- IrPrinter.cpp - Textual dump of the timing-IR ----------------------===//

#include "ir/IrPrinter.h"

#include "lattice/SecurityLattice.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace zam;

namespace {

std::string fmt(const char *Format, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Args);
  va_end(Args);
  return Buf;
}

std::string opText(const ExprOp &Op, const IrProgram *IR) {
  auto SlotRef = [&](uint32_t Slot) {
    std::string S = "%" + std::to_string(Slot);
    if (IR && Slot < IR->Slots.size())
      S += ":" + IR->Slots[Slot].Name;
    return S;
  };
  switch (Op.K) {
  case ExprOp::Kind::PushConst:
    return fmt("const %" PRId64, Op.Const);
  case ExprOp::Kind::LoadVar:
    return "load " + SlotRef(Op.Slot);
  case ExprOp::Kind::LoadElem:
    return "elem " + SlotRef(Op.Slot) +
           fmt("[mod %" PRIu64 "]", Op.ElemCount);
  case ExprOp::Kind::Bin:
    return fmt("bin '%s'", binOpSpelling(Op.BinOp));
  case ExprOp::Kind::Un:
    return fmt("un '%s'", unOpSpelling(Op.UnOp));
  }
  return "?";
}

std::string exprText(const IrExpr &E, const IrProgram *IR) {
  std::string S;
  for (const ExprOp &Op : E.Ops) {
    if (!S.empty())
      S += "; ";
    S += opText(Op, IR);
  }
  return S;
}

} // namespace

std::string zam::printIrExpr(const IrExpr &E) { return exprText(E, nullptr); }

const char *zam::irOpName(IrInstr::Op K) {
  switch (K) {
  case IrInstr::Op::Skip:
    return "skip";
  case IrInstr::Op::Assign:
    return "assign";
  case IrInstr::Op::ArrayAssign:
    return "store";
  case IrInstr::Op::Branch:
    return "branch";
  case IrInstr::Op::Sleep:
    return "sleep";
  case IrInstr::Op::MitEnter:
    return "mitenter";
  case IrInstr::Op::MitEnd:
    return "mitend";
  case IrInstr::Op::Halt:
    return "halt";
  }
  return "?";
}

std::string zam::printIrInstr(const IrProgram &IR, uint32_t I,
                              const SecurityLattice &Lat) {
  const IrInstr &In = IR.Instrs[I];
  std::string Line;
  auto Labels = [&] {
    return " [" + Lat.name(In.Read) + "," + Lat.name(In.Write) + "]";
  };
  auto Common = [&] {
    std::string S = Labels() + fmt(" code=0x%" PRIx64,
                                   static_cast<uint64_t>(In.CodeAddr));
    if (In.Loc.isValid())
      S += fmt(" line=%u", In.Loc.Line);
    return S;
  };
  switch (In.K) {
  case IrInstr::Op::Skip:
    Line += "skip" + Common() + fmt(" -> %u", In.Next);
    break;
  case IrInstr::Op::Assign:
    Line += fmt("assign %%%u", In.Slot);
    if (In.Slot < IR.Slots.size())
      Line += ":" + IR.Slots[In.Slot].Name;
    Line += " <- {" + exprText(In.E0, &IR) + "}" + Common() +
            fmt(" -> %u", In.Next);
    break;
  case IrInstr::Op::ArrayAssign:
    Line += fmt("store %%%u", In.Slot);
    if (In.Slot < IR.Slots.size())
      Line += ":" + IR.Slots[In.Slot].Name;
    Line += "[{" + exprText(In.E0, &IR) + "}] <- {" + exprText(In.E1, &IR) +
            "}" + Common() + fmt(" -> %u", In.Next);
    break;
  case IrInstr::Op::Branch:
    Line += std::string(In.IsLoop ? "loop" : "branch") + " {" +
            exprText(In.E0, &IR) + "}" + Common() +
            fmt(" true->%u false->%u", In.Target, In.Next);
    break;
  case IrInstr::Op::Sleep:
    Line += "sleep {" + exprText(In.E0, &IR) + "}" + Labels() +
            (In.Loc.isValid() ? fmt(" line=%u", In.Loc.Line) : "") +
            fmt(" -> %u", In.Next);
    break;
  case IrInstr::Op::MitEnter:
    Line += fmt("mitenter eta=%u level=%s pc=%s est={", In.Eta,
                Lat.name(In.MitLevel).c_str(),
                Lat.name(In.PcLabel).c_str()) +
            exprText(In.E0, &IR) + "}" + Common() + fmt(" -> %u", In.Next);
    break;
  case IrInstr::Op::MitEnd:
    Line += fmt("mitend eta=%u", In.Eta) + Labels() +
            (In.Loc.isValid() ? fmt(" line=%u", In.Loc.Line) : "") +
            fmt(" -> %u", In.Next);
    break;
  case IrInstr::Op::Halt:
    Line += "halt";
    break;
  }
  return Line;
}

std::string zam::printIr(const IrProgram &IR, const SecurityLattice &Lat) {
  std::string Out = fmt("ir: %zu instructions, %zu slots, max eval depth %u, "
                        "max mitigate depth %u\n",
                        IR.Instrs.size(), IR.Slots.size(), IR.MaxEvalDepth,
                        IR.MaxMitDepth);
  for (const IrSlotInfo &S : IR.Slots)
    Out += fmt("  slot %%%u: %s : %s %s[%" PRIu64 "] @0x%" PRIx64 "\n",
               static_cast<unsigned>(&S - IR.Slots.data()), S.Name.c_str(),
               Lat.name(S.SecLabel).c_str(), S.IsArray ? "array" : "scalar",
               S.Size, static_cast<uint64_t>(S.Base));
  for (uint32_t I = 0; I != IR.Instrs.size(); ++I)
    Out += fmt("  %3u: ", I) + printIrInstr(IR, I, Lat) + "\n";
  return Out;
}
