//===- Lowering.h - AST → timing-IR lowering --------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a type-checked, label-complete program (or a detached labeled
/// command) into the flat timing-IR of Ir.h. Lowering resolves everything
/// static once: variable names become dense slot indices with the exact
/// Memory::fromProgram address layout, each command's code address and
/// [er, ew] labels are baked into its instruction, mitigate sites carry
/// their static pc label, and every expression becomes an evaluation-order
/// postfix sequence with per-operation attribution locations.
///
/// Lowering fails fatally on a program without a body or on a command
/// missing timing labels — the same eager contract the engines enforced.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_IR_LOWERING_H
#define ZAM_IR_LOWERING_H

#include "ir/Ir.h"
#include "sem/CostModel.h"
#include "sem/Mitigation.h"

namespace zam {

/// Lowers \p P's body. Instruction origins point into \p P, which must
/// outlive the IrProgram. Every mitigate instruction resolves its
/// prediction schedule from \p Policies once, here — per-site overrides
/// are a lowering-time concern, not a per-transition lookup. The policy
/// objects the selection points at must outlive the IrProgram.
IrProgram lowerProgram(const Program &P, const CostModel &Costs = CostModel(),
                       const PolicySelection &Policies = PolicySelection());

/// Lowers the detached command \p C against \p P's declarations (the
/// property checkers drive arbitrary labeled commands). \p C and \p P must
/// outlive the IrProgram.
IrProgram lowerCommand(const Program &P, const Cmd &C,
                       const CostModel &Costs = CostModel(),
                       const PolicySelection &Policies = PolicySelection());

/// Lowers a single expression against \p P's declarations, inheriting
/// \p CmdLoc as the fallback attribution location (unit tests and tools).
IrExpr lowerExpr(const Expr &E, const Program &P, const CostModel &Costs,
                 SourceLoc CmdLoc = SourceLoc());

} // namespace zam

#endif // ZAM_IR_LOWERING_H
