//===- LirLowering.cpp - Flattening the timing-IR into the LIR ------------===//
//
// The second lowering stage: postfix value-stack expressions become
// register-transfer micro-ops. The register allocator is the postfix
// evaluator run at compile time over stack *positions* instead of values —
// the depth of the stack before each operation is static, so each
// operation's operand/result slots become fixed register indices and the
// run-time stack disappears entirely.
//
//===----------------------------------------------------------------------===//

#include "ir/Lir.h"

#include <algorithm>
#include <cassert>

using namespace zam;

LirProgram zam::lowerToLir(const IrProgram &IR) {
  LirProgram L;
  L.IR = &IR;
  L.Insts.reserve(IR.Instrs.size());
  size_t TotalUops = 0;
  for (const IrInstr &I : IR.Instrs)
    TotalUops += I.E0.Ops.size() + I.E1.Ops.size();
  L.Uops.reserve(TotalUops);

  uint32_t MaxRegs = 1;
  // Emits \p E's micro-ops with registers based at \p BaseReg, recording
  // the span in (U, N). The result lands in r[BaseReg].
  auto emitExpr = [&](const IrExpr &E, uint32_t BaseReg, uint32_t &U,
                      uint32_t &N) {
    U = static_cast<uint32_t>(L.Uops.size());
    N = static_cast<uint32_t>(E.Ops.size());
    uint32_t Depth = 0; // Static stack depth before the current op.
    for (const ExprOp &Op : E.Ops) {
      LirUop M;
      switch (Op.K) {
      case ExprOp::Kind::PushConst:
        M.Kind = LirUop::K::Const;
        M.Dst = static_cast<uint16_t>(BaseReg + Depth);
        M.Imm = Op.Const;
        ++Depth;
        break;
      case ExprOp::Kind::LoadVar:
        M.Kind = LirUop::K::Var;
        M.Dst = static_cast<uint16_t>(BaseReg + Depth);
        M.Slot = Op.Slot;
        M.Base = Op.Base;
        M.Loc = Op.Loc;
        ++Depth;
        break;
      case ExprOp::Kind::LoadElem:
        assert(Depth >= 1 && "elem needs its index on the stack");
        M.Kind = LirUop::K::Elem;
        M.Dst = static_cast<uint16_t>(BaseReg + Depth - 1);
        M.Slot = Op.Slot;
        M.Base = Op.Base;
        M.Mod = Op.ElemCount;
        M.Loc = Op.Loc;
        break;
      case ExprOp::Kind::Bin:
        assert(Depth >= 2 && "binary op needs two operands");
        M.Kind = LirUop::K::Bin;
        M.Dst = static_cast<uint16_t>(BaseReg + Depth - 2);
        M.Op2 = static_cast<uint8_t>(Op.BinOp);
        --Depth;
        break;
      case ExprOp::Kind::Un:
        assert(Depth >= 1 && "unary op needs its operand");
        M.Kind = LirUop::K::Un;
        M.Dst = static_cast<uint16_t>(BaseReg + Depth - 1);
        M.Op2 = static_cast<uint8_t>(Op.UnOp);
        break;
      }
      MaxRegs = std::max(MaxRegs, BaseReg + Depth);
      L.Uops.push_back(M);
    }
    assert((E.Ops.empty() || Depth == 1) &&
           "postfix expression must net exactly one value");
  };

  for (const IrInstr &I : IR.Instrs) {
    LirInst Out;
    Out.K = I.K;
    Out.Next = I.Next;
    Out.Target = I.Target;
    Out.Read = I.Read;
    Out.Write = I.Write;
    Out.CodeAddr = I.CodeAddr;
    Out.Slot = I.Slot;
    Out.SlotBase = I.SlotBase;
    Out.ElemCount = I.ElemCount;
    Out.Loc = I.Loc;
    Out.Eta = I.Eta;
    Out.MitLevel = I.MitLevel;
    Out.PcLabel = I.PcLabel;
    Out.Policy = I.Policy;
    Out.Origin = I.Origin;
    emitExpr(I.E0, /*BaseReg=*/0, Out.U0, Out.N0);
    // The stored value of a[E0] := E1 evaluates with the index still live
    // in r0, so its registers are based one higher; its result is r1.
    emitExpr(I.E1, /*BaseReg=*/1, Out.U1, Out.N1);
    L.Insts.push_back(Out);
  }

  L.NumRegs = MaxRegs;
  L.FusedWith.assign(L.Insts.size(), LirProgram::kNoFuse);
  return L;
}
