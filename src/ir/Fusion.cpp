//===- Fusion.cpp - Data-driven superinstruction fusion -------------------===//

#include "ir/Fusion.h"

#include "ir/IrPrinter.h"
#include "ir/Lir.h"

#include <fstream>
#include <sstream>

using namespace zam;

bool zam::fusibleFirst(IrInstr::Op K) {
  switch (K) {
  case IrInstr::Op::Skip:
  case IrInstr::Op::Assign:
  case IrInstr::Op::ArrayAssign:
  case IrInstr::Op::Sleep:
    return true;
  case IrInstr::Op::Branch:
  case IrInstr::Op::MitEnter:
  case IrInstr::Op::MitEnd:
  case IrInstr::Op::Halt:
    return false;
  }
  return false;
}

bool zam::fusibleSecond(IrInstr::Op K) {
  return fusibleFirst(K) || K == IrInstr::Op::Branch;
}

bool FusionProfile::add(IrInstr::Op A, IrInstr::Op B) {
  if (!fusibleFirst(A) || !fusibleSecond(B))
    return false;
  const uint64_t Bit = uint64_t(1) << (static_cast<unsigned>(A) * 8 +
                                       static_cast<unsigned>(B));
  if (!(Bits & Bit)) {
    Bits |= Bit;
    Digrams.emplace_back(A, B);
  }
  return true;
}

const FusionProfile &FusionProfile::defaultProfile() {
  // Ranked by the committed exec.digram.* tables: assign;branch and
  // store;assign dominate the harness loop (~258k/~256k dispatches each),
  // assign;assign / skip;assign / assign;store lead the fig7/fig8 program
  // profiles. (branch-first digrams rank high too but are structurally
  // unfusible — a branch cannot head a pair.)
  static const FusionProfile Def = [] {
    FusionProfile P;
    P.add(IrInstr::Op::Assign, IrInstr::Op::Branch);
    P.add(IrInstr::Op::ArrayAssign, IrInstr::Op::Assign);
    P.add(IrInstr::Op::Assign, IrInstr::Op::Assign);
    P.add(IrInstr::Op::Skip, IrInstr::Op::Assign);
    P.add(IrInstr::Op::Assign, IrInstr::Op::ArrayAssign);
    P.add(IrInstr::Op::ArrayAssign, IrInstr::Op::Branch);
    return P;
  }();
  return Def;
}

FusionProfile FusionProfile::all() {
  FusionProfile P;
  for (unsigned A = 0; A != 8; ++A)
    for (unsigned B = 0; B != 8; ++B)
      P.add(static_cast<IrInstr::Op>(A), static_cast<IrInstr::Op>(B));
  return P;
}

namespace {

bool opFromName(const std::string &Name, IrInstr::Op &Out) {
  for (unsigned K = 0; K != 8; ++K) {
    IrInstr::Op Op = static_cast<IrInstr::Op>(K);
    if (Name == irOpName(Op)) {
      Out = Op;
      return true;
    }
  }
  return false;
}

} // namespace

std::optional<FusionProfile> FusionProfile::parse(const std::string &Text,
                                                  std::string &Err) {
  FusionProfile P;
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (size_t Hash = Line.find('#'); Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream Fields(Line);
    std::string A, B, Extra;
    if (!(Fields >> A))
      continue; // Blank or comment-only line.
    if (!(Fields >> B) || (Fields >> Extra)) {
      Err = "line " + std::to_string(LineNo) +
            ": expected 'first second' opcode digram";
      return std::nullopt;
    }
    IrInstr::Op OpA, OpB;
    if (!opFromName(A, OpA) || !opFromName(B, OpB)) {
      Err = "line " + std::to_string(LineNo) + ": unknown opcode '" +
            (opFromName(A, OpA) ? B : A) + "'";
      return std::nullopt;
    }
    if (!P.add(OpA, OpB)) {
      Err = "line " + std::to_string(LineNo) + ": digram '" + A + " " + B +
            "' is not structurally fusible";
      return std::nullopt;
    }
  }
  return P;
}

std::optional<FusionProfile> FusionProfile::load(const std::string &Path,
                                                 std::string &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err = "cannot open fusion profile '" + Path + "'";
    return std::nullopt;
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  return parse(Text.str(), Err);
}

std::string FusionProfile::render() const {
  std::string Out =
      "# zam fusion profile: ranked opcode digrams, one 'first second' "
      "per line\n";
  for (const auto &[A, B] : Digrams)
    Out += std::string(irOpName(A)) + " " + irOpName(B) + "\n";
  return Out;
}

void zam::planFusion(LirProgram &L, const FusionProfile &Prof) {
  L.FusedWith.assign(L.Insts.size(), LirProgram::kNoFuse);
  L.FusedPairs = 0;
  if (L.Insts.empty())
    return;
  const uint32_t Halt = L.haltIndex();
  // A pc claimed as a second constituent never also heads a pair — pairs
  // must not chain into longer superinstructions.
  std::vector<uint8_t> IsSecond(L.Insts.size(), 0);
  for (uint32_t Pc = 0; Pc != L.Insts.size(); ++Pc) {
    const LirInst &I = L.Insts[Pc];
    if (!fusibleFirst(I.K) || IsSecond[Pc])
      continue;
    const uint32_t Pc2 = I.Next;
    if (Pc2 == Pc || Pc2 == Halt || Pc2 >= L.Insts.size())
      continue;
    if (!Prof.contains(I.K, L.Insts[Pc2].K))
      continue;
    L.FusedWith[Pc] = Pc2;
    IsSecond[Pc2] = 1;
    ++L.FusedPairs;
  }
}
