//===- Fusion.h - Data-driven superinstruction fusion -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The superinstruction fusion pass over the LIR tier, driven by the
/// opcode-digram ranking the execution observatory (obs/ExecProfile)
/// measures: `zamc hot` exports a profile of the hottest digrams, and
/// planFusion overlays a static plan that collapses each profiled pair of
/// adjacent instructions into one dispatch.
///
/// Fusion is a pure dispatch-count optimization; it must never change what
/// a run observes. Three structural rules keep the plan sound:
///
///   - The first constituent must be a straightline op (skip / assign /
///     store / sleep): it has exactly one successor, so after it executes
///     the pc provably sits on the second constituent. Branches may only
///     be second constituents.
///   - Mitigation ops and Halt never fuse. MitEnter/MitEnd manipulate the
///     window stack and the padded clock; Halt is never dispatched at all.
///   - Pairs never chain or overlap as superinstructions: planning is
///     greedy in ascending pc order, and a pc already claimed as a second
///     constituent is skipped as a head. (A pc may still be *entered*
///     directly — by a branch target or a Step-engine resume — in which
///     case it dispatches standalone via the de-fused table.)
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_IR_FUSION_H
#define ZAM_IR_FUSION_H

#include "ir/Ir.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace zam {

struct LirProgram;

/// Whether \p K may head a fused pair: straightline ops with a single
/// static successor and no window-stack effects.
bool fusibleFirst(IrInstr::Op K);

/// Whether \p K may close a fused pair: any fusible head, plus Branch
/// (branches end the pair, so their two successors are unproblematic).
bool fusibleSecond(IrInstr::Op K);

/// An ordered list of opcode digrams worth fusing — the data that drives
/// planFusion. The default profile is seeded statically from the committed
/// fig7/fig8/harness `exec.digram.*` rankings; `zamc hot
/// --emit-fuse-profile` regenerates one from any workload, and `zamc
/// --fuse-profile FILE` feeds it back in.
///
/// Text format: one digram per line, "first second" in irOpName spellings
/// ("assign branch"); blank lines and '#' comments ignored. Digrams that
/// violate the structural fusibility rules are rejected at parse time.
class FusionProfile {
public:
  /// The ranked digram list (insertion order, duplicates dropped).
  const std::vector<std::pair<IrInstr::Op, IrInstr::Op>> &digrams() const {
    return Digrams;
  }

  bool contains(IrInstr::Op A, IrInstr::Op B) const {
    return (Bits >> (static_cast<unsigned>(A) * 8 + static_cast<unsigned>(B))) &
           1;
  }
  bool empty() const { return Digrams.empty(); }

  /// Appends a digram. Returns false (leaving the profile unchanged) when
  /// the digram violates the structural fusibility rules; duplicates are
  /// dropped silently and return true.
  bool add(IrInstr::Op A, IrInstr::Op B);

  /// The statically committed default: the structurally fusible digrams
  /// that dominate the committed fig7/fig8/harness exec profiles.
  static const FusionProfile &defaultProfile();

  /// Every structurally fusible digram — the upper bound realizable plans
  /// are measured against (`zamc hot`).
  static FusionProfile all();

  /// Parses the text format. Returns std::nullopt and sets \p Err on the
  /// first malformed or unfusible line.
  static std::optional<FusionProfile> parse(const std::string &Text,
                                            std::string &Err);
  /// Reads and parses \p Path.
  static std::optional<FusionProfile> load(const std::string &Path,
                                           std::string &Err);

  /// Renders the profile in the text format parse() accepts.
  std::string render() const;

private:
  std::vector<std::pair<IrInstr::Op, IrInstr::Op>> Digrams;
  /// Membership bitset indexed (first * 8 + second) — 8 opcodes, so the
  /// whole digram space fits in one word.
  uint64_t Bits = 0;
};

/// Overlays a fusion plan on \p L: for each pc whose opcode digram
/// (pc, Next) is in \p Prof and passes the structural rules, records
/// FusedWith[pc] = Next. Greedy in ascending pc order; re-planning
/// replaces any existing plan.
void planFusion(LirProgram &L, const FusionProfile &Prof);

} // namespace zam

#endif // ZAM_IR_FUSION_H
