//===- Label.h - Security labels --------------------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A security label is a dense index into a SecurityLattice. Labels are only
/// meaningful relative to the lattice that minted them; mixing labels from
/// different lattices is a programming error caught by assertions in the
/// lattice operations.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_LATTICE_LABEL_H
#define ZAM_LATTICE_LABEL_H

#include <cstdint>
#include <functional>

namespace zam {

/// An opaque security level. The paper writes these as \f$\ell\f$ with the
/// ordering \f$\ell_1 \sqsubseteq \ell_2\f$; the ordering lives in
/// SecurityLattice.
class Label {
public:
  Label() = default;

  static Label fromIndex(uint32_t Index) { return Label(Index); }

  uint32_t index() const { return Index; }

  bool operator==(const Label &Other) const = default;

private:
  explicit Label(uint32_t Index) : Index(Index) {}

  uint32_t Index = 0;
};

} // namespace zam

template <> struct std::hash<zam::Label> {
  size_t operator()(const zam::Label &L) const noexcept {
    return std::hash<uint32_t>()(L.index());
  }
};

#endif // ZAM_LATTICE_LABEL_H
