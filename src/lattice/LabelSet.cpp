//===- LabelSet.cpp -------------------------------------------------------===//

#include "lattice/LabelSet.h"

using namespace zam;

unsigned LabelSet::count() const {
  unsigned N = 0;
  for (bool B : Bits)
    N += B;
  return N;
}

std::vector<Label> LabelSet::members() const {
  std::vector<Label> Out;
  for (unsigned I = 0; I != Bits.size(); ++I)
    if (Bits[I])
      Out.push_back(Label::fromIndex(I));
  return Out;
}

std::string LabelSet::str(const SecurityLattice &Lat) const {
  std::string Out = "{";
  bool First = true;
  for (Label L : members()) {
    if (!First)
      Out += ", ";
    Out += Lat.name(L);
    First = false;
  }
  Out += "}";
  return Out;
}

LabelSet zam::excludeObservable(const SecurityLattice &Lat, const LabelSet &L,
                                Label AdversaryLevel) {
  LabelSet Out(Lat);
  for (Label Lv : L.members())
    if (!Lat.flowsTo(Lv, AdversaryLevel))
      Out.insert(Lv);
  return Out;
}

LabelSet zam::upwardClosure(const SecurityLattice &Lat, const LabelSet &L) {
  LabelSet Out(Lat);
  for (Label Candidate : Lat.allLabels())
    for (Label Lv : L.members())
      if (Lat.flowsTo(Lv, Candidate)) {
        Out.insert(Candidate);
        break;
      }
  return Out;
}

LabelSet zam::unobservableUpwardClosure(const SecurityLattice &Lat,
                                        const LabelSet &L,
                                        Label AdversaryLevel) {
  return upwardClosure(Lat, excludeObservable(Lat, L, AdversaryLevel));
}
