//===- SecurityLattice.h - Lattices of security labels ----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The security lattice interface (Sec. 2.2 of the paper) and three concrete
/// lattices:
///
///   - TwoPointLattice:  L ⊑ H (the lattice used throughout Secs. 4 and 8)
///   - TotalOrderLattice: L ⊑ M ⊑ H ⊑ ... (used in the Sec. 6 examples)
///   - PowersetLattice:  subsets of a set of principals ordered by inclusion
///                       (a genuinely non-total multilevel lattice)
///
/// Every lattice is bounded: ⊥ (least restrictive) and ⊤ (most restrictive)
/// always exist, as the paper assumes.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_LATTICE_SECURITYLATTICE_H
#define ZAM_LATTICE_SECURITYLATTICE_H

#include "lattice/Label.h"

#include <cassert>
#include <optional>
#include <string>
#include <vector>

namespace zam {

/// A finite bounded lattice of security levels.
///
/// Labels are dense indices in [0, size()). Implementations must guarantee
/// the lattice axioms; verify() checks them exhaustively and is used by the
/// property-based tests.
class SecurityLattice {
public:
  virtual ~SecurityLattice();

  /// Number of levels in the lattice.
  virtual unsigned size() const = 0;

  /// The ordering ℓ1 ⊑ ℓ2: information may flow from ℓ1 to ℓ2.
  virtual bool flowsTo(Label L1, Label L2) const = 0;

  /// Least upper bound ℓ1 ⊔ ℓ2.
  virtual Label join(Label L1, Label L2) const = 0;

  /// Greatest lower bound ℓ1 ⊓ ℓ2.
  virtual Label meet(Label L1, Label L2) const = 0;

  /// The least restrictive level ⊥.
  virtual Label bottom() const = 0;

  /// The most restrictive level ⊤.
  virtual Label top() const = 0;

  /// Human-readable name of a level (e.g. "L", "H", "{Alice,Bob}").
  virtual std::string name(Label L) const = 0;

  /// Looks a level up by name; std::nullopt if no such level exists.
  virtual std::optional<Label> byName(const std::string &Name) const;

  /// Strict ordering: ℓ1 ⊑ ℓ2 and ℓ1 ≠ ℓ2.
  bool strictlyBelow(Label L1, Label L2) const {
    return flowsTo(L1, L2) && L1 != L2;
  }

  /// True iff the two labels are incomparable.
  bool incomparable(Label L1, Label L2) const {
    return !flowsTo(L1, L2) && !flowsTo(L2, L1);
  }

  /// Exhaustively checks the lattice axioms (partial order; join/meet are
  /// least upper / greatest lower bounds; ⊥/⊤ are extremal). O(size³);
  /// intended for tests. \returns true when all axioms hold.
  bool verify() const;

  /// All labels, in index order. Convenient for iteration in analyses.
  std::vector<Label> allLabels() const;

  bool contains(Label L) const { return L.index() < size(); }
};

/// The two-point lattice L ⊑ H used in most of the paper.
class TwoPointLattice final : public SecurityLattice {
public:
  static Label low() { return Label::fromIndex(0); }
  static Label high() { return Label::fromIndex(1); }

  unsigned size() const override { return 2; }
  bool flowsTo(Label L1, Label L2) const override {
    return L1.index() <= L2.index();
  }
  Label join(Label L1, Label L2) const override {
    return Label::fromIndex(std::max(L1.index(), L2.index()));
  }
  Label meet(Label L1, Label L2) const override {
    return Label::fromIndex(std::min(L1.index(), L2.index()));
  }
  Label bottom() const override { return low(); }
  Label top() const override { return high(); }
  std::string name(Label L) const override;
};

/// A total order ⊥ = ℓ0 ⊑ ℓ1 ⊑ ... ⊑ ℓn-1 = ⊤ with caller-supplied names,
/// e.g. {"L","M","H"} for the three-level lattice of Sec. 6.
class TotalOrderLattice final : public SecurityLattice {
public:
  explicit TotalOrderLattice(std::vector<std::string> Names);

  unsigned size() const override { return Names.size(); }
  bool flowsTo(Label L1, Label L2) const override {
    assert(contains(L1) && contains(L2) && "label from another lattice");
    return L1.index() <= L2.index();
  }
  Label join(Label L1, Label L2) const override {
    assert(contains(L1) && contains(L2) && "label from another lattice");
    return Label::fromIndex(std::max(L1.index(), L2.index()));
  }
  Label meet(Label L1, Label L2) const override {
    assert(contains(L1) && contains(L2) && "label from another lattice");
    return Label::fromIndex(std::min(L1.index(), L2.index()));
  }
  Label bottom() const override { return Label::fromIndex(0); }
  Label top() const override { return Label::fromIndex(Names.size() - 1); }
  std::string name(Label L) const override;

private:
  std::vector<std::string> Names;
};

/// The powerset of a set of principals ordered by inclusion: a label is the
/// set of principals whose secrets it may contain. ⊥ = {} (public),
/// ⊤ = all principals. Labels for distinct singleton sets are incomparable,
/// making this the canonical non-total test lattice.
class PowersetLattice final : public SecurityLattice {
public:
  /// \p Principals must contain at most 20 names (2^20 levels).
  explicit PowersetLattice(std::vector<std::string> Principals);

  unsigned size() const override { return 1u << Principals.size(); }
  bool flowsTo(Label L1, Label L2) const override {
    assert(contains(L1) && contains(L2) && "label from another lattice");
    return (L1.index() & ~L2.index()) == 0;
  }
  Label join(Label L1, Label L2) const override {
    assert(contains(L1) && contains(L2) && "label from another lattice");
    return Label::fromIndex(L1.index() | L2.index());
  }
  Label meet(Label L1, Label L2) const override {
    assert(contains(L1) && contains(L2) && "label from another lattice");
    return Label::fromIndex(L1.index() & L2.index());
  }
  Label bottom() const override { return Label::fromIndex(0); }
  Label top() const override { return Label::fromIndex(size() - 1); }
  std::string name(Label L) const override;

  /// The label {P} for a single principal index.
  Label singleton(unsigned PrincipalIndex) const {
    assert(PrincipalIndex < Principals.size() && "no such principal");
    return Label::fromIndex(1u << PrincipalIndex);
  }

private:
  std::vector<std::string> Principals;
};

} // namespace zam

#endif // ZAM_LATTICE_SECURITYLATTICE_H
