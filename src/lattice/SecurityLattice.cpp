//===- SecurityLattice.cpp ------------------------------------------------===//

#include "lattice/SecurityLattice.h"

using namespace zam;

SecurityLattice::~SecurityLattice() = default;

std::optional<Label> SecurityLattice::byName(const std::string &Name) const {
  for (unsigned I = 0, E = size(); I != E; ++I) {
    Label L = Label::fromIndex(I);
    if (name(L) == Name)
      return L;
  }
  return std::nullopt;
}

std::vector<Label> SecurityLattice::allLabels() const {
  std::vector<Label> Out;
  Out.reserve(size());
  for (unsigned I = 0, E = size(); I != E; ++I)
    Out.push_back(Label::fromIndex(I));
  return Out;
}

bool SecurityLattice::verify() const {
  const std::vector<Label> Ls = allLabels();
  // Partial order axioms.
  for (Label A : Ls) {
    if (!flowsTo(A, A))
      return false;
    if (!flowsTo(bottom(), A) || !flowsTo(A, top()))
      return false;
  }
  for (Label A : Ls)
    for (Label B : Ls) {
      if (flowsTo(A, B) && flowsTo(B, A) && A != B)
        return false; // Antisymmetry.
      // Join is an upper bound; meet is a lower bound.
      Label J = join(A, B);
      Label M = meet(A, B);
      if (!flowsTo(A, J) || !flowsTo(B, J))
        return false;
      if (!flowsTo(M, A) || !flowsTo(M, B))
        return false;
      // Commutativity.
      if (join(B, A) != J || meet(B, A) != M)
        return false;
    }
  for (Label A : Ls)
    for (Label B : Ls)
      for (Label C : Ls) {
        if (flowsTo(A, B) && flowsTo(B, C) && !flowsTo(A, C))
          return false; // Transitivity.
        // Join is the *least* upper bound, meet the *greatest* lower bound.
        if (flowsTo(A, C) && flowsTo(B, C) && !flowsTo(join(A, B), C))
          return false;
        if (flowsTo(C, A) && flowsTo(C, B) && !flowsTo(C, meet(A, B)))
          return false;
      }
  return true;
}

std::string TwoPointLattice::name(Label L) const {
  assert(contains(L) && "label from another lattice");
  return L.index() == 0 ? "L" : "H";
}

TotalOrderLattice::TotalOrderLattice(std::vector<std::string> Names)
    : Names(std::move(Names)) {
  assert(!this->Names.empty() && "lattice must be nonempty");
}

std::string TotalOrderLattice::name(Label L) const {
  assert(contains(L) && "label from another lattice");
  return Names[L.index()];
}

PowersetLattice::PowersetLattice(std::vector<std::string> Principals)
    : Principals(std::move(Principals)) {
  assert(this->Principals.size() <= 20 && "too many principals");
}

std::string PowersetLattice::name(Label L) const {
  assert(contains(L) && "label from another lattice");
  if (L.index() == 0)
    return "{}";
  std::string Out = "{";
  bool First = true;
  for (unsigned I = 0; I != Principals.size(); ++I) {
    if (!(L.index() & (1u << I)))
      continue;
    if (!First)
      Out += ",";
    Out += Principals[I];
    First = false;
  }
  Out += "}";
  return Out;
}
