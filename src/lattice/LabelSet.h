//===- LabelSet.h - Sets of security labels ---------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sets of labels and the constructions of Sec. 6:
///
///   - LeA        = { ℓ ∈ L | ℓ ⋢ ℓA }          (levels not observable to
///                                               the adversary, Fig. 5a)
///   - L↑ (upward closure)
///                = { ℓ' | ∃ℓ ∈ L . ℓ ⊑ ℓ' }     (Fig. 5b)
///
/// These drive the quantitative leakage definitions (Defs. 1 and 2) and the
/// Sec. 7 leakage bound, which is proportional to |LeA↑|.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_LATTICE_LABELSET_H
#define ZAM_LATTICE_LABELSET_H

#include "lattice/SecurityLattice.h"

#include <string>
#include <vector>

namespace zam {

/// A subset of the levels of one SecurityLattice, stored as a bit vector
/// indexed by label index.
class LabelSet {
public:
  LabelSet() = default;
  explicit LabelSet(const SecurityLattice &Lat) : Bits(Lat.size(), false) {}
  LabelSet(const SecurityLattice &Lat, std::initializer_list<Label> Labels)
      : Bits(Lat.size(), false) {
    for (Label L : Labels)
      insert(L);
  }

  bool contains(Label L) const {
    return L.index() < Bits.size() && Bits[L.index()];
  }

  void insert(Label L) {
    assert(L.index() < Bits.size() && "label out of range for this lattice");
    Bits[L.index()] = true;
  }

  void erase(Label L) {
    assert(L.index() < Bits.size() && "label out of range for this lattice");
    Bits[L.index()] = false;
  }

  unsigned count() const;
  bool empty() const { return count() == 0; }
  unsigned universeSize() const { return Bits.size(); }

  bool operator==(const LabelSet &Other) const = default;

  /// Labels present in the set, in index order.
  std::vector<Label> members() const;

  /// Renders as "{L, H}" using the lattice's level names.
  std::string str(const SecurityLattice &Lat) const;

private:
  std::vector<bool> Bits;
};

/// LeA: the subset of \p L whose levels do NOT flow to the adversary level
/// \p AdversaryLevel (Sec. 6.2). These are the levels that can still give
/// the adversary new information.
LabelSet excludeObservable(const SecurityLattice &Lat, const LabelSet &L,
                           Label AdversaryLevel);

/// The upward closure L↑ = { ℓ' | ∃ℓ ∈ L . ℓ ⊑ ℓ' } (Sec. 6.3).
LabelSet upwardClosure(const SecurityLattice &Lat, const LabelSet &L);

/// Convenience composition: (LeA)↑ for the given L and adversary, which is
/// the set that Definition 2 and the Sec. 7 bound quantify over.
LabelSet unobservableUpwardClosure(const SecurityLattice &Lat,
                                   const LabelSet &L, Label AdversaryLevel);

} // namespace zam

#endif // ZAM_LATTICE_LABELSET_H
