//===- RandomProgram.cpp --------------------------------------------------===//

#include "analysis/RandomProgram.h"

#include "sem/Memory.h"
#include "support/Casting.h"
#include "types/LabelInference.h"
#include "types/TypeChecker.h"

#include <string>

using namespace zam;

namespace {
/// Internal generator state.
struct Gen {
  const Program &P;
  Rng &R;
  const RandomProgramOptions &O;
  /// When false, commands are emitted without timing labels (inference
  /// fills them) and flows are steered toward well-typedness.
  bool Arbitrary;
  unsigned LoopDepth = 0;

  const SecurityLattice &lat() const { return P.lattice(); }

  Label randomLabel() {
    return Label::fromIndex(
        static_cast<uint32_t>(R.nextBelow(lat().size())));
  }

  void setLabels(Cmd &C) {
    if (!Arbitrary)
      return; // Leave unset; inference will complete them.
    Label Write = randomLabel();
    Label Read = O.EqualTimingLabels ? Write : randomLabel();
    C.labels().Read = Read;
    C.labels().Write = Write;
  }

  /// Names of scalars whose label flows to \p Bound (steering well-typed
  /// assignments); all scalars when Arbitrary.
  std::vector<std::string> scalarsBelow(Label Bound) {
    std::vector<std::string> Out;
    for (const VarDecl &D : P.vars()) {
      if (D.IsArray || D.Name[0] == 'c')
        continue; // Loop counters are reserved.
      if (Arbitrary || lat().flowsTo(D.SecLabel, Bound))
        Out.push_back(D.Name);
    }
    return Out;
  }

  std::vector<std::string> arraysBelow(Label Bound) {
    std::vector<std::string> Out;
    for (const VarDecl &D : P.vars())
      if (D.IsArray && (Arbitrary || lat().flowsTo(D.SecLabel, Bound)))
        Out.push_back(D.Name);
    return Out;
  }

  ExprPtr smallLit() {
    return std::make_unique<IntLitExpr>(R.nextInRange(0, 16));
  }

  /// A random expression reading only variables with labels ⊑ Bound (any
  /// label when Arbitrary).
  ExprPtr expr(Label Bound, unsigned Depth) {
    std::vector<std::string> Scalars = scalarsBelow(Bound);
    if (Depth == 0 || R.chance(35)) {
      if (!Scalars.empty() && R.chance(70)) {
        const std::string &Name = Scalars[R.nextBelow(Scalars.size())];
        return std::make_unique<VarExpr>(Name);
      }
      return smallLit();
    }
    if (R.chance(15)) {
      std::vector<std::string> Arrays = arraysBelow(Bound);
      if (!Arrays.empty()) {
        const std::string &Name = Arrays[R.nextBelow(Arrays.size())];
        // Keep the index label ⊑ the array label so the address-dependence
        // constraint (index ⊑ ew) is satisfiable.
        Label ArrL = P.findVar(Name)->SecLabel;
        return std::make_unique<ArrayReadExpr>(Name, expr(ArrL, Depth - 1));
      }
    }
    if (R.chance(20))
      return std::make_unique<UnOpExpr>(
          static_cast<UnOpKind>(R.nextBelow(3)), expr(Bound, Depth - 1));
    static const BinOpKind Ops[] = {BinOpKind::Add,    BinOpKind::Sub,
                                    BinOpKind::Mul,    BinOpKind::BitAnd,
                                    BinOpKind::BitXor, BinOpKind::Lt,
                                    BinOpKind::Eq,     BinOpKind::Mod};
    BinOpKind Op = Ops[R.nextBelow(std::size(Ops))];
    return std::make_unique<BinOpExpr>(Op, expr(Bound, Depth - 1),
                                       expr(Bound, Depth - 1));
  }

  /// A bounded expression suitable as a sleep duration (masked to [0,15]).
  ExprPtr boundedExpr(Label Bound) {
    return std::make_unique<BinOpExpr>(BinOpKind::BitAnd, expr(Bound, 1),
                                       std::make_unique<IntLitExpr>(15));
  }

  CmdPtr assign(unsigned Depth) {
    std::vector<std::string> Targets = scalarsBelow(lat().top());
    if (Targets.empty())
      return skip();
    const std::string &Name = Targets[R.nextBelow(Targets.size())];
    Label Bound = Arbitrary ? lat().top() : P.findVar(Name)->SecLabel;
    auto C = std::make_unique<AssignCmd>(Name, expr(Bound, Depth));
    setLabels(*C);
    return C;
  }

  CmdPtr arrayAssign(unsigned Depth) {
    std::vector<std::string> Targets = arraysBelow(lat().top());
    if (Targets.empty())
      return assign(Depth);
    const std::string &Name = Targets[R.nextBelow(Targets.size())];
    Label Bound = Arbitrary ? lat().top() : P.findVar(Name)->SecLabel;
    // Index from ⊥ so the store's address-dependence label stays low.
    auto C = std::make_unique<ArrayAssignCmd>(
        Name, expr(lat().bottom(), 1), expr(Bound, Depth));
    setLabels(*C);
    return C;
  }

  CmdPtr skip() {
    auto C = std::make_unique<SkipCmd>();
    setLabels(*C);
    return C;
  }

  CmdPtr sleep() {
    auto C = std::make_unique<SleepCmd>(boundedExpr(lat().top()));
    setLabels(*C);
    return C;
  }

  CmdPtr mitigate(unsigned Depth) {
    Label Level = Arbitrary ? randomLabel() : lat().top();
    auto C = std::make_unique<MitigateCmd>(
        0, std::make_unique<IntLitExpr>(R.nextInRange(1, 64)), Level,
        block(Depth - 1));
    setLabels(*C);
    return C;
  }

  CmdPtr ifCmd(unsigned Depth) {
    auto C = std::make_unique<IfCmd>(expr(lat().top(), 1), block(Depth - 1),
                                     block(Depth - 1));
    setLabels(*C);
    return C;
  }

  /// A bounded counting loop over a reserved counter variable:
  ///   cK := trips ; while cK > 0 do { body ; cK := cK - 1 }
  CmdPtr boundedLoop(unsigned Depth) {
    std::string Counter = "c" + std::to_string(LoopDepth);
    if (!P.findVar(Counter))
      return ifCmd(Depth);
    ++LoopDepth;
    CmdPtr Body = block(Depth - 1);
    --LoopDepth;

    auto Init = std::make_unique<AssignCmd>(
        Counter,
        std::make_unique<IntLitExpr>(R.nextInRange(0, O.MaxLoopTrips)));
    setLabels(*Init);
    auto Dec = std::make_unique<AssignCmd>(
        Counter,
        std::make_unique<BinOpExpr>(BinOpKind::Sub,
                                    std::make_unique<VarExpr>(Counter),
                                    std::make_unique<IntLitExpr>(1)));
    setLabels(*Dec);
    auto Guard = std::make_unique<BinOpExpr>(
        BinOpKind::Gt, std::make_unique<VarExpr>(Counter),
        std::make_unique<IntLitExpr>(0));
    auto Loop = std::make_unique<WhileCmd>(
        std::move(Guard),
        std::make_unique<SeqCmd>(std::move(Body), std::move(Dec)));
    setLabels(*Loop);
    return std::make_unique<SeqCmd>(std::move(Init), std::move(Loop));
  }

  CmdPtr command(unsigned Depth) {
    unsigned Pick = R.nextBelow(100);
    if (Depth == 0 || Pick < 40)
      return assign(Depth == 0 ? 1 : Depth);
    if (Pick < 50)
      return arrayAssign(Depth);
    if (Pick < 55)
      return skip();
    if (Pick < 65 && O.AllowSleep)
      return sleep();
    if (Pick < 80)
      return ifCmd(Depth);
    if (Pick < 90 && LoopDepth < 3)
      return boundedLoop(Depth);
    if (O.AllowMitigate)
      return mitigate(Depth);
    return ifCmd(Depth);
  }

  CmdPtr block(unsigned Depth) {
    unsigned Len = 1 + R.nextBelow(O.MaxSeqLength);
    CmdPtr Out = command(Depth);
    for (unsigned I = 1; I < Len; ++I)
      Out = std::make_unique<SeqCmd>(std::move(Out), command(Depth));
    return Out;
  }
};
} // namespace

void zam::addRandomDeclarations(Program &P, Rng &R,
                                const RandomProgramOptions &O) {
  const SecurityLattice &Lat = P.lattice();
  auto RandomLabel = [&] {
    return Label::fromIndex(static_cast<uint32_t>(R.nextBelow(Lat.size())));
  };
  for (unsigned I = 0; I != O.NumScalars; ++I) {
    VarDecl D;
    D.Name = "v" + std::to_string(I);
    D.SecLabel = RandomLabel();
    D.Init.push_back(R.nextInRange(0, 32));
    P.addVar(std::move(D));
  }
  for (unsigned I = 0; I != O.NumArrays; ++I) {
    VarDecl D;
    D.Name = "a" + std::to_string(I);
    D.SecLabel = RandomLabel();
    D.IsArray = true;
    D.Size = O.ArraySize;
    for (unsigned J = 0; J != O.ArraySize; ++J)
      D.Init.push_back(R.nextInRange(0, 32));
    P.addVar(std::move(D));
  }
  // Reserved loop counters c0..c2 (assigned only by generated loop
  // scaffolding). Their label is ⊤-avoiding ⊥ keeps guards typeable in any
  // context... use ⊥ so loops in low contexts stay low; high-context loops
  // will simply fail the filter and be regenerated.
  for (unsigned I = 0; I != 3; ++I) {
    VarDecl D;
    D.Name = "c" + std::to_string(I);
    D.SecLabel = Lat.bottom();
    D.Init.push_back(0);
    P.addVar(std::move(D));
  }
}

CmdPtr zam::randomCommand(const Program &P, Rng &R,
                          const RandomProgramOptions &O) {
  Gen G{P, R, O, /*Arbitrary=*/true};
  return G.block(O.MaxDepth);
}

void zam::randomizeMemoryValues(Memory &M, Rng &R, int64_t MaxAbs) {
  for (const MemorySlot &S : M.slots()) {
    MemorySlot &Slot = M.slot(S.Name);
    for (int64_t &V : Slot.Data)
      V = R.nextInRange(-MaxAbs, MaxAbs);
  }
}

std::optional<Program>
zam::randomWellTypedProgram(const SecurityLattice &Lat, Rng &R,
                            const RandomProgramOptions &O,
                            unsigned MaxAttempts) {
  for (unsigned Attempt = 0; Attempt != MaxAttempts; ++Attempt) {
    Program P(Lat);
    addRandomDeclarations(P, R, O);
    Gen G{P, R, O, /*Arbitrary=*/false};
    P.setBody(G.block(O.MaxDepth));
    P.number();
    inferTimingLabels(P);
    DiagnosticEngine Diags;
    TypeCheckOptions TOpts;
    TOpts.RequireEqualTimingLabels = O.EqualTimingLabels;
    if (typeCheck(P, Diags, TOpts))
      return P;
  }
  return std::nullopt;
}
