//===- PropertyCheckers.h - Dynamic checks of Properties 1-7 ----*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable checkers for the software/hardware contract: the faithfulness
/// properties (1: adequacy, 2: determinism, 3: sequential composition,
/// 4: accurate sleep) and the security properties (5: write label, 6: read
/// label, 7: single-step machine-environment noninterference) of Sec. 3,
/// plus end-to-end checkers for Theorem 1 (memory and machine-environment
/// noninterference of well-typed programs).
///
/// These are the instruments a hardware designer would run against a new
/// MachineEnv implementation to validate it against the contract; the
/// property-based tests drive them with randomized commands, memories and
/// environments. Checkers return true when the property held on the given
/// instance.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_ANALYSIS_PROPERTYCHECKERS_H
#define ZAM_ANALYSIS_PROPERTYCHECKERS_H

#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "sem/FullInterpreter.h"
#include "sem/Memory.h"

#include <string>

namespace zam {

/// Failure details from a checker, for test diagnostics.
struct PropertyReport {
  bool Holds = true;
  std::string Detail;

  static PropertyReport ok() { return PropertyReport(); }
  static PropertyReport fail(std::string Detail) {
    return PropertyReport{false, std::move(Detail)};
  }
};

/// Property 1 (adequacy): the full semantics computes exactly the core
/// semantics' final memory and assignment-event sequence (values in order;
/// the core semantics has no times).
PropertyReport checkAdequacy(const Program &P, const MachineEnv &EnvTemplate,
                             InterpreterOptions Opts = InterpreterOptions());

/// Property 2 (deterministic execution): two runs from equal configurations
/// produce equal memories, machine environments, and clocks.
PropertyReport checkDeterminism(const Program &P,
                                const MachineEnv &EnvTemplate,
                                InterpreterOptions Opts = InterpreterOptions());

/// Property 3 (sequential composition): running c1;c2 equals running c1 to
/// stop and then c2 from the resulting configuration.
PropertyReport
checkSequentialComposition(const Program &P, const Cmd &C1, const Cmd &C2,
                           const Memory &InitialMemory,
                           const MachineEnv &EnvTemplate,
                           InterpreterOptions Opts = InterpreterOptions());

/// Property 4 (accurate sleep): (sleep n)[er,ew] with a literal n consumes
/// exactly max(n, 0) cycles.
PropertyReport checkSleepDuration(const Program &P, int64_t N, Label Read,
                                  Label Write, const MachineEnv &EnvTemplate,
                                  InterpreterOptions Opts = InterpreterOptions());

/// Property 5 (write label): a single evaluation step of \p C cannot modify
/// machine-environment state at any level ℓ with ew ⋢ ℓ.
PropertyReport checkWriteLabel(const Program &P, const Cmd &C,
                               const Memory &InitialMemory,
                               const MachineEnv &EnvTemplate,
                               InterpreterOptions Opts = InterpreterOptions());

/// Property 6 (read label): a single step of \p C takes the same time in
/// (m1, E1) and (m2, E2) whenever the memories agree on vars1(C) and
/// E1 ~er E2. The memories must cover the same Γ.
PropertyReport checkReadLabel(const Program &P, const Cmd &C, const Memory &M1,
                              const Memory &M2, const MachineEnv &E1,
                              const MachineEnv &E2,
                              InterpreterOptions Opts = InterpreterOptions());

/// Property 7 (single-step machine-environment noninterference): for every
/// level ℓ, if m1 ~ℓ m2 and E1 ~ℓ E2 then the post-step environments remain
/// ~ℓ-equivalent.
PropertyReport checkSingleStepNI(const Program &P, const Cmd &C,
                                 const Memory &M1, const Memory &M2,
                                 const MachineEnv &E1, const MachineEnv &E2,
                                 Label Level,
                                 InterpreterOptions Opts = InterpreterOptions());

/// The labeled command whose [er,ew] govern the next transition of \p C:
/// descends the Seq spine (a step of c1;c2 is a step of c1, Property 3).
const Cmd &activeCommand(const Cmd &C);

/// Theorem 1 (memory and machine-environment noninterference): for a
/// well-typed program, executions from ℓ-equivalent memories and
/// environments end in ℓ-equivalent memories and environments.
PropertyReport checkNoninterference(const Program &P, const Memory &M1,
                                    const Memory &M2, const MachineEnv &E1,
                                    const MachineEnv &E2, Label Level,
                                    InterpreterOptions Opts = InterpreterOptions());

} // namespace zam

#endif // ZAM_ANALYSIS_PROPERTYCHECKERS_H
