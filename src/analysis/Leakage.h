//===- Leakage.h - Quantitative leakage measurement (Sec. 6) ----*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multilevel quantitative security machinery of Secs. 6 and 7:
///
///   - Q(L, ℓA, c, m, E) (Definition 1): log2 of the number of
///     distinguishable ℓA-observations over variations of the LeA parts of
///     memory. Measured here by enumerating caller-supplied secret
///     variations and counting distinct (x, v, t) observation sequences.
///
///   - V(L, ℓA, c, m, E) (Definition 2): the set of timing vectors of the
///     projected mitigate commands (those in low contexts, pc(M_η) ∉ LeA↑,
///     when some mitigation level lies in LeA↑).
///
///   - Theorem 2:  Q ≤ log2 |V|  — checked empirically.
///   - Lemma 1: the projected mitigate-command *identities* are
///     low-deterministic — checked empirically.
///   - The Sec. 7 closed-form bound |LeA↑| · log2(K+1) · (1 + log2 T).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_ANALYSIS_LEAKAGE_H
#define ZAM_ANALYSIS_LEAKAGE_H

#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "lattice/LabelSet.h"
#include "obs/LeakAudit.h"
#include "sem/FullInterpreter.h"

#include <cstdint>
#include <string>
#include <vector>

namespace zam {

/// One secret variation: scalar overrides applied to the initial memory.
struct SecretAssignment {
  std::vector<std::pair<std::string, int64_t>> Scalars;
  std::vector<std::pair<std::string, std::vector<int64_t>>> Arrays;

  void applyTo(Memory &M) const;
};

/// Inputs to the leakage measurement.
struct LeakageSpec {
  LabelSet SourceLevels; ///< L in Q(L, ℓA, ...).
  Label Adversary;       ///< ℓA.
  /// The memory variations to enumerate. Every variation must differ from
  /// the base memory only in variables whose level lies in LeA↑ (validated;
  /// violations abort the measurement).
  std::vector<SecretAssignment> Variations;
};

/// Results of one measurement.
struct LeakageResult {
  unsigned DistinctObservations = 0; ///< |{(x,v,t) sequences}|.
  double QBits = 0;                  ///< log2(DistinctObservations).
  /// Shannon-entropy leakage I(S;O) under a uniform prior on the supplied
  /// variations. The system is deterministic, so this is H(O) ≤ Q — the
  /// "bounds those of Shannon entropy" remark under Definition 1.
  double ShannonBits = 0;
  /// Min-entropy leakage under the uniform prior. For a deterministic
  /// system this equals log2(#distinct observations) = Q exactly.
  double MinEntropyBits = 0;
  unsigned DistinctTimingVectors = 0; ///< |V|.
  double VBits = 0;                   ///< log2 |V|.
  bool TheoremTwoHolds = false;       ///< Q ≤ log |V|.
  bool MitigatesLowDeterministic = false; ///< Lemma 1.
  uint64_t MaxFinalTime = 0;          ///< T, for the closed-form bound.
  uint64_t RelevantMitigates = 0;     ///< K, for the closed-form bound.
  double ClosedFormBoundBits = 0;     ///< |LeA↑|·log2(K+1)·(1+log2 T).
};

/// Runs \p P once per variation (each run on a fresh clone of \p EnvTemplate
/// with the same initial machine environment) and measures Q, V and the
/// Sec. 7 bound. The program must be well-typed for the theorems to apply;
/// this function measures regardless (benches use it to demonstrate leakage
/// of *insecure* configurations too).
///
/// The variations are independent deterministic runs and fan out over a
/// ParallelRunner with \p Threads workers (0 = auto via ZAM_THREADS /
/// hardware_concurrency); per-run records are reduced in submission order,
/// so the result is bit-identical for any thread count.
LeakageResult measureLeakage(const Program &P, const MachineEnv &EnvTemplate,
                             const LeakageSpec &Spec,
                             InterpreterOptions Opts = InterpreterOptions(),
                             unsigned Threads = 0);

// The Sec. 7 closed-form bound leakageBoundBits() and the per-window
// accounting now live in obs/LeakAudit.h (included above): the online
// accountant and this batch analysis share one bound core, so the numbers
// they report can never drift apart.

/// Canonical encoding of the Definition 2 projection of a trace's mitigate
/// vector: the duration components of mitigates that execute in low
/// contexts with high mitigation levels — pc(M_η) ∉ LeA↑ and
/// lev(M_η) ∈ LeA↑.
std::string timingVectorKey(const Trace &T, const SecurityLattice &Lat,
                            const LabelSet &UnobsUpward);

/// The mitigate-identity projection used by Lemma 1: the η sequence of
/// mitigates with pc(M_η) ∉ LeA↑. For well-typed programs this sequence is
/// identical across all LeA↑-variations.
std::vector<unsigned> mitigateIdentityProjection(const Trace &T,
                                                 const LabelSet &UnobsUpward);

} // namespace zam

#endif // ZAM_ANALYSIS_LEAKAGE_H
