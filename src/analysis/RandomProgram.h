//===- RandomProgram.h - Random programs for property testing ---*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for property-based testing:
///
///   - randomDeclarations / randomCommand: arbitrary labeled commands over
///     a random Γ. The hardware security properties (5-7) are quantified
///     over ALL labeled commands, not just well-typed ones, so these
///     deliberately include ill-typed programs.
///
///   - randomWellTypedProgram: generate-and-filter through label inference
///     and the type checker, producing well-typed programs for the
///     Theorem 1/2 and adequacy/determinism properties. Loops are bounded
///     by construction so generated programs terminate.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_ANALYSIS_RANDOMPROGRAM_H
#define ZAM_ANALYSIS_RANDOMPROGRAM_H

#include "lang/Ast.h"
#include "support/Rng.h"

#include <optional>

namespace zam {

struct RandomProgramOptions {
  unsigned NumScalars = 6;
  unsigned NumArrays = 2;
  unsigned ArraySize = 8;
  unsigned MaxDepth = 4;
  unsigned MaxSeqLength = 4;
  /// Maximum iterations of generated counting loops.
  unsigned MaxLoopTrips = 4;
  bool AllowMitigate = true;
  bool AllowSleep = true;
  /// When set, generated labels satisfy er == ew (commodity hardware).
  bool EqualTimingLabels = true;
};

/// Populates \p P with randomly labeled scalar and array declarations named
/// v0..vN / a0..aM with random initial values.
void addRandomDeclarations(Program &P, Rng &R, const RandomProgramOptions &O);

/// A random (possibly ill-typed) labeled command over \p P's declarations.
/// Every non-Seq command carries complete, randomly chosen timing labels.
CmdPtr randomCommand(const Program &P, Rng &R, const RandomProgramOptions &O);

/// A random memory for \p P's declarations (uniform small values).
void randomizeMemoryValues(class Memory &M, Rng &R, int64_t MaxAbs = 64);

/// Generates programs until one passes label inference + type checking, up
/// to \p MaxAttempts. Programs come out numbered and fully labeled.
std::optional<Program>
randomWellTypedProgram(const SecurityLattice &Lat, Rng &R,
                       const RandomProgramOptions &O = RandomProgramOptions(),
                       unsigned MaxAttempts = 50);

} // namespace zam

#endif // ZAM_ANALYSIS_RANDOMPROGRAM_H
