//===- Leakage.cpp --------------------------------------------------------===//

#include "analysis/Leakage.h"

#include "exp/ParallelRunner.h"
#include "exp/Scenario.h"
#include "support/Diagnostics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

using namespace zam;

void SecretAssignment::applyTo(Memory &M) const {
  for (const auto &[Name, Value] : Scalars)
    M.store(Name, Value);
  for (const auto &[Name, Values] : Arrays) {
    MemorySlot &S = M.slot(Name);
    if (!S.IsArray)
      reportFatalError("array override applied to a scalar");
    for (size_t I = 0; I != Values.size() && I != S.Data.size(); ++I)
      S.Data[I] = Values[I];
  }
}

std::string zam::timingVectorKey(const Trace &T, const SecurityLattice &Lat,
                                 const LabelSet &UnobsUpward) {
  std::string Key;
  char Buf[64];
  for (const MitigateRecord &R : T.Mitigations) {
    if (UnobsUpward.contains(R.PcLabel))
      continue; // High-context mitigate: excluded by the projection.
    if (!UnobsUpward.contains(R.Level))
      continue; // Mitigation level carries no LeA↑ information.
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64 ";", R.Duration);
    Key += Buf;
  }
  return Key;
}

std::vector<unsigned>
zam::mitigateIdentityProjection(const Trace &T, const LabelSet &UnobsUpward) {
  std::vector<unsigned> Out;
  for (const MitigateRecord &R : T.Mitigations)
    if (!UnobsUpward.contains(R.PcLabel))
      Out.push_back(R.Eta);
  return Out;
}

namespace {

/// Everything one variation's run contributes to the measurement; computed
/// in a worker, reduced serially in submission order.
struct VariationRecord {
  std::string ObservationKey;
  std::string TimingKey;
  std::vector<unsigned> Identity;
  uint64_t FinalTime = 0;
  uint64_t Relevant = 0;
};

} // namespace

LeakageResult zam::measureLeakage(const Program &P,
                                  const MachineEnv &EnvTemplate,
                                  const LeakageSpec &Spec,
                                  InterpreterOptions Opts, unsigned Threads) {
  const SecurityLattice &Lat = P.lattice();
  const LabelSet UnobsUpward =
      unobservableUpwardClosure(Lat, Spec.SourceLevels, Spec.Adversary);

  const Memory Base = Memory::fromProgram(P, Opts.Costs.DataBase);
  const Scenario Scn(P, EnvTemplate, Opts);
  const ParallelRunner Runner(Threads);

  // The enumeration over secret variations is the hottest loop of the
  // quantitative analysis: every run is deterministic and independent, so
  // it fans out over the worker pool. Workers share only the immutable
  // program, lattice, base memory and environment template.
  std::vector<VariationRecord> Records =
      Runner.map(Spec.Variations.size(), [&](size_t Index) {
        const SecretAssignment &Variation = Spec.Variations[Index];
        RunSpec RS;
        RS.Prepare = [&](Memory &M) {
          Variation.applyTo(M);
          // Validate that the variation only touches LeA↑ variables;
          // anything else would measure flows Definition 1 does not
          // quantify over.
          for (const MemorySlot &S : M.slots()) {
            const MemorySlot &B = Base.slot(S.Name);
            if (S.Data != B.Data && !UnobsUpward.contains(S.SecLabel))
              reportFatalError(
                  "secret variation modifies a variable outside LeA-upward");
          }
        };
        RunResult R = Scn.run(RS);

        VariationRecord Rec;
        Rec.ObservationKey = R.T.observationKey(Spec.Adversary, Lat);
        Rec.TimingKey = timingVectorKey(R.T, Lat, UnobsUpward);
        Rec.Identity = mitigateIdentityProjection(R.T, UnobsUpward);
        Rec.FinalTime = R.T.FinalTime;
        for (const MitigateRecord &M : R.T.Mitigations)
          if (!UnobsUpward.contains(M.PcLabel) &&
              UnobsUpward.contains(M.Level))
            ++Rec.Relevant;
        return Rec;
      });

  LeakageResult Result;
  std::map<std::string, unsigned> Observations;
  std::set<std::string> TimingVectors;
  Result.MitigatesLowDeterministic = true;

  for (const VariationRecord &Rec : Records) {
    ++Observations[Rec.ObservationKey];
    TimingVectors.insert(Rec.TimingKey);
    if (&Rec != &Records.front() && Rec.Identity != Records.front().Identity)
      Result.MitigatesLowDeterministic = false;
    Result.MaxFinalTime = std::max(Result.MaxFinalTime, Rec.FinalTime);
    Result.RelevantMitigates =
        std::max(Result.RelevantMitigates, Rec.Relevant);
  }

  Result.DistinctObservations = Observations.size();
  Result.QBits = Observations.empty()
                     ? 0.0
                     : std::log2(static_cast<double>(Observations.size()));
  // Under a uniform prior on the variations, the run is a deterministic
  // channel S → O: Shannon leakage I(S;O) = H(O); min-entropy leakage is
  // log2 of the number of observation classes (= Q).
  const double N = static_cast<double>(Spec.Variations.size());
  for (const auto &[Key, Count] : Observations) {
    double Prob = static_cast<double>(Count) / N;
    Result.ShannonBits -= Prob * std::log2(Prob);
  }
  Result.MinEntropyBits = Result.QBits;
  Result.DistinctTimingVectors = TimingVectors.size();
  Result.VBits = TimingVectors.empty()
                     ? 0.0
                     : std::log2(static_cast<double>(TimingVectors.size()));
  Result.TheoremTwoHolds =
      Result.DistinctObservations <=
      std::max<unsigned>(Result.DistinctTimingVectors, 1);
  // The summary bound is the run-default policy's closed form (per-site
  // overrides refine the per-window account, not this coarse global one);
  // under the default selection this is the paper's
  // |LeA↑|·log2(K+1)·(1+log2 T) bit for bit.
  Result.ClosedFormBoundBits = Opts.Mitigation.base().closedFormBoundBits(
      UnobsUpward.count(), Result.RelevantMitigates, Result.MaxFinalTime);
  return Result;
}
