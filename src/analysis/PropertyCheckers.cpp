//===- PropertyCheckers.cpp -----------------------------------------------===//

#include "analysis/PropertyCheckers.h"

#include "sem/CoreInterpreter.h"
#include "lang/StaticLabels.h"
#include "sem/StepInterpreter.h"
#include "support/Casting.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace zam;

static std::string fmt(const char *Format, ...)
    __attribute__((format(printf, 1, 2)));

static std::string fmt(const char *Format, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Args);
  va_end(Args);
  return Buf;
}

PropertyReport zam::checkAdequacy(const Program &P,
                                  const MachineEnv &EnvTemplate,
                                  InterpreterOptions Opts) {
  CoreResult Core = runCore(P);
  std::unique_ptr<MachineEnv> Env = EnvTemplate.clone();
  RunResult Full = runFull(P, *Env, Opts);

  if (Core.HitStepLimit || Full.T.HitStepLimit)
    return PropertyReport::fail("execution hit the step limit");

  if (!(Core.FinalMemory == Full.FinalMemory))
    return PropertyReport::fail("final memories differ");

  if (Core.Events.size() != Full.T.Events.size())
    return PropertyReport::fail(
        fmt("event counts differ: core %zu vs full %zu", Core.Events.size(),
            Full.T.Events.size()));

  for (size_t I = 0; I != Core.Events.size(); ++I) {
    const AssignEvent &A = Core.Events[I];
    const AssignEvent &B = Full.T.Events[I];
    if (A.Var != B.Var || A.Value != B.Value ||
        A.IsArrayStore != B.IsArrayStore || A.ElemIndex != B.ElemIndex)
      return PropertyReport::fail(fmt("event %zu differs", I));
  }
  return PropertyReport::ok();
}

PropertyReport zam::checkDeterminism(const Program &P,
                                     const MachineEnv &EnvTemplate,
                                     InterpreterOptions Opts) {
  std::unique_ptr<MachineEnv> E1 = EnvTemplate.clone();
  std::unique_ptr<MachineEnv> E2 = EnvTemplate.clone();
  RunResult R1 = runFull(P, *E1, Opts);
  RunResult R2 = runFull(P, *E2, Opts);

  if (R1.T.FinalTime != R2.T.FinalTime)
    return PropertyReport::fail(
        fmt("final clocks differ: %" PRIu64 " vs %" PRIu64, R1.T.FinalTime,
            R2.T.FinalTime));
  if (!(R1.FinalMemory == R2.FinalMemory))
    return PropertyReport::fail("final memories differ");
  if (!E1->stateEquals(*E2))
    return PropertyReport::fail("final machine environments differ");
  if (!(R1.T.Events == R2.T.Events))
    return PropertyReport::fail("event traces differ");
  return PropertyReport::ok();
}

PropertyReport zam::checkSequentialComposition(const Program &P, const Cmd &C1,
                                               const Cmd &C2,
                                               const Memory &InitialMemory,
                                               const MachineEnv &EnvTemplate,
                                               InterpreterOptions Opts) {
  // Combined run: (c1; c2).
  std::unique_ptr<MachineEnv> EnvSeq = EnvTemplate.clone();
  auto Seq = std::make_unique<SeqCmd>(C1.clone(), C2.clone());
  StepInterpreter Combined(P, std::move(Seq), InitialMemory, *EnvSeq, Opts);
  Combined.runToCompletion();

  // Split run: c1 to stop, then c2 from the resulting configuration. The
  // mitigation Miss table is part of the carried configuration, so the two
  // halves share one.
  std::unique_ptr<MachineEnv> EnvSplit = EnvTemplate.clone();
  MitigationState SplitState(P.lattice(), Opts.Mitigation.base(),
                             Opts.Penalty);
  InterpreterOptions SplitOpts = Opts;
  SplitOpts.SharedMitState = &SplitState;
  StepInterpreter First(P, C1.clone(), InitialMemory, *EnvSplit, SplitOpts);
  First.runToCompletion();
  StepInterpreter Second(P, C2.clone(), First.memory(), *EnvSplit, SplitOpts);
  Second.runToCompletion();

  uint64_t SplitTime = First.clock() + Second.clock();
  if (Combined.clock() != SplitTime)
    return PropertyReport::fail(
        fmt("clocks differ: combined %" PRIu64 " vs split %" PRIu64,
            Combined.clock(), SplitTime));
  if (!(Combined.memory() == Second.memory()))
    return PropertyReport::fail("final memories differ");
  if (!EnvSeq->stateEquals(*EnvSplit))
    return PropertyReport::fail("final machine environments differ");
  return PropertyReport::ok();
}

PropertyReport zam::checkSleepDuration(const Program &P, int64_t N, Label Read,
                                       Label Write,
                                       const MachineEnv &EnvTemplate,
                                       InterpreterOptions Opts) {
  std::unique_ptr<MachineEnv> Env = EnvTemplate.clone();
  auto Sleep = std::make_unique<SleepCmd>(std::make_unique<IntLitExpr>(N));
  Sleep->labels().Read = Read;
  Sleep->labels().Write = Write;
  StepInterpreter Interp(P, std::move(Sleep),
                         Memory::fromProgram(P, Opts.Costs.DataBase), *Env,
                         Opts);
  Interp.runToCompletion();
  uint64_t Expected = N > 0 ? static_cast<uint64_t>(N) : 0;
  if (Interp.clock() != Expected)
    return PropertyReport::fail(fmt("sleep(%" PRId64 ") took %" PRIu64
                                    " cycles, expected %" PRIu64,
                                    N, Interp.clock(), Expected));
  return PropertyReport::ok();
}

/// Performs exactly one transition of \p C and returns the interpreter.
static StepInterpreter oneStep(const Program &P, const Cmd &C, Memory M,
                               MachineEnv &Env, InterpreterOptions Opts) {
  StepInterpreter Interp(P, C.clone(), std::move(M), Env, Opts);
  Interp.step();
  return Interp;
}

const Cmd &zam::activeCommand(const Cmd &C) {
  const Cmd *Cur = &C;
  while (const auto *S = dyn_cast<SeqCmd>(Cur))
    Cur = &S->first();
  return *Cur;
}

/// Local alias for readability.
static const Cmd &firstPrimitive(const Cmd &C) { return activeCommand(C); }

PropertyReport zam::checkWriteLabel(const Program &P, const Cmd &C,
                                    const Memory &InitialMemory,
                                    const MachineEnv &EnvTemplate,
                                    InterpreterOptions Opts) {
  const SecurityLattice &Lat = P.lattice();
  const Cmd &Active = firstPrimitive(C);
  if (!Active.labels().complete())
    return PropertyReport::fail("checker requires a labeled command");
  Label Ew = *Active.labels().Write;

  std::unique_ptr<MachineEnv> Pre = EnvTemplate.clone();
  std::unique_ptr<MachineEnv> Env = EnvTemplate.clone();
  oneStep(P, C, InitialMemory, *Env, Opts);

  for (Label L : Lat.allLabels()) {
    if (Lat.flowsTo(Ew, L))
      continue; // Modification permitted at this level.
    if (!Env->projectionEquals(*Pre, L))
      return PropertyReport::fail(
          fmt("step with write label %s modified level-%s state",
              Lat.name(Ew).c_str(), Lat.name(L).c_str()));
  }
  return PropertyReport::ok();
}

PropertyReport zam::checkReadLabel(const Program &P, const Cmd &C,
                                   const Memory &M1, const Memory &M2,
                                   const MachineEnv &E1, const MachineEnv &E2,
                                   InterpreterOptions Opts) {
  const SecurityLattice &Lat = P.lattice();
  const Cmd &Active = firstPrimitive(C);
  if (!Active.labels().complete())
    return PropertyReport::fail("checker requires a labeled command");
  Label Er = *Active.labels().Read;

  // Premises: agreement on vars1(C) and er-equivalent environments.
  for (const std::string &Var : vars1(C)) {
    if (M1.slot(Var).Data != M2.slot(Var).Data)
      return PropertyReport::fail("premise violated: vars1 values differ");
  }
  if (!E1.equivalentUpTo(E2, Er))
    return PropertyReport::fail("premise violated: environments not ~er");

  std::unique_ptr<MachineEnv> Env1 = E1.clone();
  std::unique_ptr<MachineEnv> Env2 = E2.clone();
  StepInterpreter S1 = oneStep(P, C, M1, *Env1, Opts);
  StepInterpreter S2 = oneStep(P, C, M2, *Env2, Opts);

  if (S1.clock() != S2.clock())
    return PropertyReport::fail(
        fmt("single-step times differ: %" PRIu64 " vs %" PRIu64
            " (read label %s)",
            S1.clock(), S2.clock(), Lat.name(Er).c_str()));
  return PropertyReport::ok();
}

PropertyReport zam::checkSingleStepNI(const Program &P, const Cmd &C,
                                      const Memory &M1, const Memory &M2,
                                      const MachineEnv &E1,
                                      const MachineEnv &E2, Label Level,
                                      InterpreterOptions Opts) {
  const SecurityLattice &Lat = P.lattice();
  const Cmd &Active = firstPrimitive(C);
  if (!Active.labels().complete())
    return PropertyReport::fail("checker requires a labeled command");

  // Array extension side condition: Property 7 is only claimed for steps
  // whose data-dependent address labels flow to ew (the type system
  // enforces this; hardware alone cannot). Vacuously true otherwise.
  if (!Lat.flowsTo(stepAddressLabel(Active, P), *Active.labels().Write)) {
    PropertyReport Rep = PropertyReport::ok();
    Rep.Detail = "inapplicable: step address label exceeds the write label";
    return Rep;
  }

  if (!M1.equivalentUpTo(M2, Level, Lat))
    return PropertyReport::fail("premise violated: memories not ~ℓ");
  if (!E1.equivalentUpTo(E2, Level))
    return PropertyReport::fail("premise violated: environments not ~ℓ");

  std::unique_ptr<MachineEnv> Env1 = E1.clone();
  std::unique_ptr<MachineEnv> Env2 = E2.clone();
  oneStep(P, C, M1, *Env1, Opts);
  oneStep(P, C, M2, *Env2, Opts);

  if (!Env1->equivalentUpTo(*Env2, Level))
    return PropertyReport::fail(
        fmt("post-step environments not ~%s", Lat.name(Level).c_str()));
  return PropertyReport::ok();
}

PropertyReport zam::checkNoninterference(const Program &P, const Memory &M1,
                                         const Memory &M2,
                                         const MachineEnv &E1,
                                         const MachineEnv &E2, Label Level,
                                         InterpreterOptions Opts) {
  const SecurityLattice &Lat = P.lattice();
  if (!M1.equivalentUpTo(M2, Level, Lat))
    return PropertyReport::fail("premise violated: memories not ~ℓ");
  if (!E1.equivalentUpTo(E2, Level))
    return PropertyReport::fail("premise violated: environments not ~ℓ");

  std::unique_ptr<MachineEnv> Env1 = E1.clone();
  std::unique_ptr<MachineEnv> Env2 = E2.clone();

  FullInterpreter I1(P, *Env1, Opts);
  I1.memory() = M1;
  RunResult R1 = I1.run();

  FullInterpreter I2(P, *Env2, Opts);
  I2.memory() = M2;
  RunResult R2 = I2.run();

  if (R1.T.HitStepLimit || R2.T.HitStepLimit)
    return PropertyReport::fail("execution hit the step limit");

  if (!R1.FinalMemory.equivalentUpTo(R2.FinalMemory, Level, Lat))
    return PropertyReport::fail(
        fmt("final memories not ~%s", Lat.name(Level).c_str()));
  if (!Env1->equivalentUpTo(*Env2, Level))
    return PropertyReport::fail(
        fmt("final machine environments not ~%s", Lat.name(Level).c_str()));
  return PropertyReport::ok();
}
