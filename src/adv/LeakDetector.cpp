//===- LeakDetector.cpp - Statistical timing-leak detector ----------------===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "adv/LeakDetector.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace zam;

double zam::advLgamma(double X) {
  // Lanczos approximation, g = 7 with 9 coefficients (Godfrey's classic
  // set). Only +,*,log are used, so the result is reproducible wherever
  // glibc's log is correctly rounded. Callers never need the reflection
  // branch: every argument is a half-integer >= 0.5.
  assert(X >= 0.5 && "advLgamma: argument below the supported range");
  static const double Coef[9] = {
      0.99999999999980993,     676.5203681218851,     -1259.1392167224028,
      771.32342877765313,      -176.61502916214059,   12.507343278686905,
      -0.13857109526572012,    9.9843695780195716e-6, 1.5056327351493116e-7};
  const double Z = X - 1.0;
  double Sum = Coef[0];
  for (int I = 1; I < 9; ++I)
    Sum += Coef[I] / (Z + I);
  const double T = Z + 7.5;
  // 0.5 * ln(2*pi)
  const double HalfLog2Pi = 0.91893853320467274178;
  return HalfLog2Pi + (Z + 0.5) * std::log(T) - T + std::log(Sum);
}

namespace {

/// The continued fraction for the incomplete beta function (modified
/// Lentz's method). Converges in a handful of iterations for the
/// detector's arguments; the iteration cap is a safety net.
double betaContinuedFraction(double A, double B, double X) {
  const double Eps = 3e-16;
  const double FpMin = 1e-300;
  const double Qab = A + B;
  const double Qap = A + 1.0;
  const double Qam = A - 1.0;
  double C = 1.0;
  double D = 1.0 - Qab * X / Qap;
  if (std::fabs(D) < FpMin)
    D = FpMin;
  D = 1.0 / D;
  double H = D;
  for (int M = 1; M <= 300; ++M) {
    const int M2 = 2 * M;
    double Aa = M * (B - M) * X / ((Qam + M2) * (A + M2));
    D = 1.0 + Aa * D;
    if (std::fabs(D) < FpMin)
      D = FpMin;
    C = 1.0 + Aa / C;
    if (std::fabs(C) < FpMin)
      C = FpMin;
    D = 1.0 / D;
    H *= D * C;
    Aa = -(A + M) * (Qab + M) * X / ((A + M2) * (Qap + M2));
    D = 1.0 + Aa * D;
    if (std::fabs(D) < FpMin)
      D = FpMin;
    C = 1.0 + Aa / C;
    if (std::fabs(C) < FpMin)
      C = FpMin;
    D = 1.0 / D;
    const double Del = D * C;
    H *= Del;
    if (std::fabs(Del - 1.0) <= Eps)
      break;
  }
  return H;
}

constexpr double kLn10 = 2.30258509299404568402;

} // namespace

double zam::regularizedIncompleteBetaLog10(double A, double B, double X) {
  assert(A >= 0.5 && B >= 0.5 && X >= 0.0 && X <= 1.0);
  if (X <= 0.0)
    return -HUGE_VAL; // log10(0); callers clamp.
  if (X >= 1.0)
    return 0.0; // log10(1)
  // ln of the prefactor x^a (1-x)^b / (a B(a,b)) without forming it, so a
  // far tail keeps its exponent instead of underflowing.
  const double LnBt = advLgamma(A + B) - advLgamma(A) - advLgamma(B) +
                      A * std::log(X) + B * std::log(1.0 - X);
  if (X < (A + 1.0) / (A + B + 2.0))
    return (LnBt + std::log(betaContinuedFraction(A, B, X) / A)) / kLn10;
  // Symmetric branch: I_x(a,b) = 1 - I_{1-x}(b,a). Here I_x is not tiny,
  // so the direct subtraction is safe.
  const double Tail =
      std::exp(LnBt) * betaContinuedFraction(B, A, 1.0 - X) / B;
  return std::log(1.0 - Tail) / kLn10;
}

double zam::welchPValueLog10(double T, double Df) {
  if (Df <= 0)
    return 0.0;
  // Two-sided p = I_x(df/2, 1/2) with x = df / (df + t^2).
  const double X = Df / (Df + T * T);
  const double L = regularizedIncompleteBetaLog10(Df / 2.0, 0.5, X);
  if (!(L > kDegeneratePValueLog10)) // also catches -inf / NaN
    return kDegeneratePValueLog10;
  return L < 0.0 ? L : 0.0;
}

DetectorResult zam::detectLeak(const std::vector<Observation> &Obs,
                               const std::vector<std::string> &ClassNames,
                               double PValueLog10Threshold) {
  std::vector<CompactObservation> Compact;
  Compact.reserve(Obs.size());
  for (const Observation &O : Obs)
    Compact.push_back({O.ClassIndex, O.EndToEnd, O.BoundBits});
  return detectLeak(Compact, ClassNames, PValueLog10Threshold);
}

DetectorResult zam::detectLeak(const std::vector<CompactObservation> &Obs,
                               const std::vector<std::string> &ClassNames,
                               double PValueLog10Threshold) {
  const size_t K = ClassNames.size();
  if (K < 2) {
    std::fprintf(stderr, "detectLeak: need at least two secret classes\n");
    std::abort();
  }

  DetectorResult R;
  R.Samples = Obs.size();
  R.Classes.resize(K);
  for (size_t C = 0; C < K; ++C)
    R.Classes[C].Name = ClassNames[C];

  // Per-class sums in observation order (the collector's submission
  // order), so the floating-point results are byte-stable.
  std::vector<double> Sum(K, 0.0);
  for (const CompactObservation &O : Obs) {
    if (O.ClassIndex >= K) {
      std::fprintf(stderr, "detectLeak: class index %u out of range\n",
                   O.ClassIndex);
      std::abort();
    }
    ClassSummary &S = R.Classes[O.ClassIndex];
    if (S.Count == 0) {
      S.Min = S.Max = O.EndToEnd;
    } else {
      S.Min = std::min(S.Min, O.EndToEnd);
      S.Max = std::max(S.Max, O.EndToEnd);
    }
    ++S.Count;
    Sum[O.ClassIndex] += static_cast<double>(O.EndToEnd);
    if (O.BoundBits > R.AnalyticBoundBits)
      R.AnalyticBoundBits = O.BoundBits;
  }
  for (size_t C = 0; C < K; ++C)
    if (R.Classes[C].Count > 0)
      R.Classes[C].Mean = Sum[C] / static_cast<double>(R.Classes[C].Count);
  // Second pass for the (n-1) variances, again in observation order.
  std::vector<double> SqSum(K, 0.0);
  for (const CompactObservation &O : Obs) {
    const double D =
        static_cast<double>(O.EndToEnd) - R.Classes[O.ClassIndex].Mean;
    SqSum[O.ClassIndex] += D * D;
  }
  for (size_t C = 0; C < K; ++C)
    if (R.Classes[C].Count > 1)
      R.Classes[C].Variance =
          SqSum[C] / static_cast<double>(R.Classes[C].Count - 1);

  // Welch's t over every class pair; keep the first pair of maximal |t|.
  // Degenerate zero-variance pairs get the documented sentinels.
  auto WelchPair = [&](size_t A, size_t B, double &T, double &Df,
                       double &D) -> bool {
    const ClassSummary &Sa = R.Classes[A];
    const ClassSummary &Sb = R.Classes[B];
    if (Sa.Count < 2 || Sb.Count < 2)
      return false;
    const double Na = static_cast<double>(Sa.Count);
    const double Nb = static_cast<double>(Sb.Count);
    const double Va = Sa.Variance / Na;
    const double Vb = Sb.Variance / Nb;
    const double Diff = Sa.Mean - Sb.Mean;
    const double Pooled =
        std::sqrt(((Na - 1.0) * Sa.Variance + (Nb - 1.0) * Sb.Variance) /
                  (Na + Nb - 2.0));
    if (Va + Vb == 0.0) {
      if (Diff == 0.0) {
        T = 0.0;
        Df = Na + Nb - 2.0;
        D = 0.0;
      } else {
        // Two disjoint constants: perfect separation.
        T = Diff > 0 ? kDegenerateTStat : -kDegenerateTStat;
        Df = Na + Nb - 2.0;
        D = T;
      }
      return true;
    }
    T = Diff / std::sqrt(Va + Vb);
    Df = (Va + Vb) * (Va + Vb) /
         (Va * Va / (Na - 1.0) + Vb * Vb / (Nb - 1.0));
    D = Pooled > 0.0 ? Diff / Pooled : (Diff > 0    ? kDegenerateTStat
                                        : Diff < 0 ? -kDegenerateTStat
                                                   : 0.0);
    return true;
  };
  bool HavePair = false;
  for (size_t A = 0; A < K; ++A) {
    for (size_t B = A + 1; B < K; ++B) {
      double T, Df, D;
      if (!WelchPair(A, B, T, Df, D))
        continue;
      if (!HavePair || std::fabs(T) > std::fabs(R.TStat)) {
        HavePair = true;
        R.PairA = static_cast<unsigned>(A);
        R.PairB = static_cast<unsigned>(B);
        R.TStat = T;
        R.Df = Df;
        R.CohensD = D;
      }
    }
  }
  if (HavePair) {
    R.PValueLog10 = std::fabs(R.TStat) >= kDegenerateTStat
                        ? kDegeneratePValueLog10
                        : welchPValueLog10(R.TStat, R.Df);
  }

  // Plug-in mutual information over the exact discrete cycle counts.
  // std::map iteration gives a fixed (class, value) summation order.
  std::map<uint64_t, uint64_t> ValueCounts;
  std::map<std::pair<uint32_t, uint64_t>, uint64_t> JointCounts;
  for (const CompactObservation &O : Obs) {
    ++ValueCounts[O.EndToEnd];
    ++JointCounts[{O.ClassIndex, O.EndToEnd}];
  }
  R.DistinctTimings = ValueCounts.size();
  const double N = static_cast<double>(Obs.size());
  double Mi = 0.0;
  if (!Obs.empty()) {
    for (const auto &[Key, Ncv] : JointCounts) {
      const double Nc = static_cast<double>(R.Classes[Key.first].Count);
      const double Nv = static_cast<double>(ValueCounts.at(Key.second));
      const double Joint = static_cast<double>(Ncv);
      Mi += (Joint / N) * std::log2(Joint * N / (Nc * Nv));
    }
  }
  R.MiPluginBits = Mi;
  // Miller–Madow: apply the (m-1)/(2N) entropy bias correction to each of
  // H(T), H(C), H(T,C); in bits the net correction on I is
  // (K_T + K_C - K_joint - 1) / (2 N ln 2). Clamp to [0, H(C)]: mutual
  // information cannot exceed the class entropy, and the plug-in class
  // entropy is the natural deterministic cap.
  size_t NonemptyClasses = 0;
  double ClassEntropy = 0.0;
  for (const ClassSummary &S : R.Classes) {
    if (S.Count == 0)
      continue;
    ++NonemptyClasses;
    const double P = static_cast<double>(S.Count) / N;
    ClassEntropy -= P * std::log2(P);
  }
  if (!Obs.empty()) {
    const double Ln2 = 0.69314718055994530942;
    const double Corr =
        (static_cast<double>(R.DistinctTimings) +
         static_cast<double>(NonemptyClasses) -
         static_cast<double>(JointCounts.size()) - 1.0) /
        (2.0 * N * Ln2);
    Mi += Corr;
  }
  if (Mi < 0.0)
    Mi = 0.0;
  if (Mi > ClassEntropy)
    Mi = ClassEntropy;
  R.MiBits = Mi;

  R.LeakDetected = HavePair && R.PValueLog10 <= PValueLog10Threshold;
  return R;
}

void zam::exportDetectorMetrics(MetricsRegistry &Reg, const DetectorResult &R,
                                const std::string &Prefix) {
  const std::string P = Prefix + "adv.";
  Reg.setCounter(P + "samples", R.Samples);
  Reg.setCounter(P + "classes", R.Classes.size());
  Reg.setCounter(P + "distinct_timings", R.DistinctTimings);
  Reg.setGauge(P + "t_stat", R.TStat);
  Reg.setGauge(P + "cohens_d", R.CohensD);
  Reg.setGauge(P + "p_value_log10", R.PValueLog10);
  Reg.setGauge(P + "mi_bits", R.MiBits);
  Reg.setGauge(P + "mi_plugin_bits", R.MiPluginBits);
  Reg.setGauge(P + "analytic_bound_bits", R.AnalyticBoundBits);
  Reg.setGauge(P + "verdict", R.LeakDetected ? 1.0 : 0.0);
}
