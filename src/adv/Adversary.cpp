//===- Adversary.cpp - Secret sampler / observation collector -------------===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "adv/Adversary.h"

#include "obs/Json.h"
#include "obs/LeakAudit.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace zam;

size_t zam::streamObservations(
    const Program &P, const MachineEnv &EnvTemplate,
    const std::vector<SecretClassSpec> &Classes, const AttackOptions &Opts,
    const InterpreterOptions &IOpts, const ParallelRunner &Runner,
    const std::function<void(const Observation &, size_t)> &OnObservation) {
  if (Classes.empty()) {
    std::fprintf(stderr, "streamObservations: no secret classes\n");
    std::abort();
  }
  const size_t K = Classes.size();
  const size_t Total = Opts.Samples;
  for (size_t Base = 0; Base < Total; Base += kObservationChunk) {
    const size_t ChunkLen = std::min(kObservationChunk, Total - Base);
    std::vector<Observation> Chunk =
        Runner.map(ChunkLen, [&](size_t Offset) {
          const size_t I = Base + Offset;
          const SecretClassSpec &Spec = Classes[I % K];
          Rng R(sampleSeed(Opts.Seed, I));
          std::unique_ptr<MachineEnv> Env = EnvTemplate.clone();
          // No hooks: the audit replays the finished trace, which onWindow
          // matches bit-for-bit (LeakAudit's documented equivalence).
          InterpreterOptions RunOpts = IOpts;
          RunResult RR = runFull(
              P, *Env,
              [&](Memory &M) {
                for (const auto &[Var, Value] : Spec.Fixed)
                  M.store(Var, Value);
                for (const SecretClassSpec::Range &Rg : Spec.Ranges)
                  M.store(Rg.Var, R.nextInRange(Rg.Lo, Rg.Hi));
                if (Spec.Prepare)
                  Spec.Prepare(M, R);
              },
              RunOpts);
          LeakAudit Audit(P.lattice(), Opts.Adversary, IOpts.Mitigation);
          Audit.ingest(RR.T);
          Observation O;
          O.ClassIndex = static_cast<uint32_t>(I % K);
          O.EndToEnd = RR.T.FinalTime;
          for (const LeakWindow &W : Audit.windows())
            O.Windows.push_back(W.Duration);
          O.BoundBits = Audit.totalBitsBound();
          return O;
        });
    for (size_t Offset = 0; Offset < Chunk.size(); ++Offset)
      OnObservation(Chunk[Offset], Base + Offset);
  }
  return Total;
}

std::vector<Observation> zam::collectObservations(
    const Program &P, const MachineEnv &EnvTemplate,
    const std::vector<SecretClassSpec> &Classes, const AttackOptions &Opts,
    const InterpreterOptions &IOpts, const ParallelRunner &Runner) {
  std::vector<Observation> Obs;
  Obs.reserve(Opts.Samples);
  streamObservations(P, EnvTemplate, Classes, Opts, IOpts, Runner,
                     [&](const Observation &O, size_t) { Obs.push_back(O); });
  return Obs;
}

size_t zam::exportObservation(TraceSink &Sink, const Observation &O,
                              size_t Index,
                              const std::vector<std::string> &ClassNames) {
  TraceRecord R;
  R.RecordKind = TraceRecord::Kind::Instant;
  R.Name = "sample#" + std::to_string(Index);
  R.Category = "adv";
  R.Ts = Index;
  if (O.ClassIndex < ClassNames.size())
    R.Args.emplace_back("class", ClassNames[O.ClassIndex]);
  R.Args.emplace_back("class_index", std::to_string(O.ClassIndex));
  R.Args.emplace_back("end_to_end", std::to_string(O.EndToEnd));
  std::string Windows;
  for (size_t W = 0; W < O.Windows.size(); ++W) {
    if (W)
      Windows += ',';
    Windows += std::to_string(O.Windows[W]);
  }
  // A one-element list like "256" emits as a bare number (sink rule);
  // offline readers treat the arg as display-only either way.
  R.Args.emplace_back("windows", Windows);
  R.Args.emplace_back("bound_bits", jsonNumberString(O.BoundBits));
  Sink.record(R);
  return 1;
}

size_t zam::exportObservations(TraceSink &Sink,
                               const std::vector<Observation> &Obs,
                               const std::vector<std::string> &ClassNames) {
  for (size_t I = 0; I < Obs.size(); ++I)
    exportObservation(Sink, Obs[I], I, ClassNames);
  return Obs.size();
}
