//===- Adversary.cpp - Secret sampler / observation collector -------------===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "adv/Adversary.h"

#include "obs/Json.h"
#include "obs/LeakAudit.h"

#include <cstdio>
#include <cstdlib>

using namespace zam;

std::vector<Observation> zam::collectObservations(
    const Program &P, const MachineEnv &EnvTemplate,
    const std::vector<SecretClassSpec> &Classes, const AttackOptions &Opts,
    const InterpreterOptions &IOpts, const ParallelRunner &Runner) {
  if (Classes.empty()) {
    std::fprintf(stderr, "collectObservations: no secret classes\n");
    std::abort();
  }
  const size_t K = Classes.size();
  return Runner.map(Opts.Samples, [&](size_t I) {
    const SecretClassSpec &Spec = Classes[I % K];
    Rng R(sampleSeed(Opts.Seed, I));
    std::unique_ptr<MachineEnv> Env = EnvTemplate.clone();
    // No hooks: the audit replays the finished trace, which onWindow
    // matches bit-for-bit (LeakAudit's documented equivalence).
    InterpreterOptions RunOpts = IOpts;
    RunResult RR = runFull(
        P, *Env,
        [&](Memory &M) {
          for (const auto &[Var, Value] : Spec.Fixed)
            M.store(Var, Value);
          for (const SecretClassSpec::Range &Rg : Spec.Ranges)
            M.store(Rg.Var, R.nextInRange(Rg.Lo, Rg.Hi));
          if (Spec.Prepare)
            Spec.Prepare(M, R);
        },
        RunOpts);
    LeakAudit Audit(P.lattice(), Opts.Adversary, IOpts.Mitigation);
    Audit.ingest(RR.T);
    Observation O;
    O.ClassIndex = static_cast<uint32_t>(I % K);
    O.EndToEnd = RR.T.FinalTime;
    for (const LeakWindow &W : Audit.windows())
      O.Windows.push_back(W.Duration);
    O.BoundBits = Audit.totalBitsBound();
    return O;
  });
}

size_t zam::exportObservations(TraceSink &Sink,
                               const std::vector<Observation> &Obs,
                               const std::vector<std::string> &ClassNames) {
  for (size_t I = 0; I < Obs.size(); ++I) {
    const Observation &O = Obs[I];
    TraceRecord R;
    R.RecordKind = TraceRecord::Kind::Instant;
    R.Name = "sample#" + std::to_string(I);
    R.Category = "adv";
    R.Ts = I;
    if (O.ClassIndex < ClassNames.size())
      R.Args.emplace_back("class", ClassNames[O.ClassIndex]);
    R.Args.emplace_back("class_index", std::to_string(O.ClassIndex));
    R.Args.emplace_back("end_to_end", std::to_string(O.EndToEnd));
    std::string Windows;
    for (size_t W = 0; W < O.Windows.size(); ++W) {
      if (W)
        Windows += ',';
      Windows += std::to_string(O.Windows[W]);
    }
    // A one-element list like "256" emits as a bare number (sink rule);
    // offline readers treat the arg as display-only either way.
    R.Args.emplace_back("windows", Windows);
    R.Args.emplace_back("bound_bits", jsonNumberString(O.BoundBits));
    Sink.record(R);
  }
  return Obs.size();
}
