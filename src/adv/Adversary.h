//===- Adversary.h - Secret sampler / observation collector -----*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sampling half of the empirical adversary: run N executions of a
/// program with secrets drawn from named classes, and record for each run
/// exactly what a Sec. 6.1 adversary at level ℓA can see — the end-to-end
/// time and the durations of the ℓA-counted mitigate windows — plus the
/// run's own analytic leakage bound for the empirical-vs-analytic
/// cross-check.
///
/// Determinism contract: sample i always executes with Rng(mix(Seed, i))
/// and classes are assigned round-robin (i mod K), so the observation
/// vector is a pure function of (program, hw design, classes, samples,
/// seed). Execution fans out over exp::ParallelRunner, which returns
/// results in submission order — the bag is byte-identical at any thread
/// count, and downstream detector sums consume it in that fixed order.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_ADV_ADVERSARY_H
#define ZAM_ADV_ADVERSARY_H

#include "adv/LeakDetector.h"
#include "exp/ParallelRunner.h"
#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "obs/TraceSink.h"
#include "sem/FullInterpreter.h"
#include "support/Rng.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace zam {

/// How to draw one secret class's inputs before a sample runs. All three
/// mechanisms compose: Fixed stores land first, then Ranges (drawn from
/// the sample's Rng in declaration order), then the Prepare hook.
struct SecretClassSpec {
  struct Range {
    std::string Var;
    int64_t Lo = 0;
    int64_t Hi = 0; ///< Inclusive.
  };

  std::string Name;
  /// var := value, the same every sample of this class.
  std::vector<std::pair<std::string, int64_t>> Fixed;
  /// var := uniform draw from [Lo, Hi] per sample.
  std::vector<Range> Ranges;
  /// Arbitrary C++ preparation (bench workloads: login requests, RSA
  /// ciphertexts). Must be thread-safe and draw randomness only from the
  /// supplied Rng.
  std::function<void(Memory &, Rng &)> Prepare;
};

/// Knobs for one attack experiment.
struct AttackOptions {
  unsigned Samples = 256; ///< Total, spread round-robin over the classes.
  uint64_t Seed = 0x5EED; ///< Base seed; sample i runs with mix(Seed, i).
  /// Sec. 6.1 adversary level for window counting and the analytic bound;
  /// nullopt is the conservative any-observer account.
  std::optional<Label> Adversary;
};

/// The per-sample seed: a splitmix-style mix so consecutive indices land
/// in unrelated Rng streams. Exposed so offline tooling can restate which
/// stream a sample used.
inline uint64_t sampleSeed(uint64_t Seed, size_t Index) {
  return Seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(Index) + 1));
}

/// Fixed fan-out chunk of the streaming collector. Chunking is a function
/// of the sample index only — never the thread count — so the drain order
/// (and with it every downstream double sum and trace byte) is identical
/// at any parallelism.
inline constexpr size_t kObservationChunk = 2048;

/// Streams Opts.Samples executions of \p P (sample i: class i mod K) on
/// clones of \p EnvTemplate under \p IOpts, fanning out over \p Runner in
/// fixed kObservationChunk batches and invoking \p OnObservation(O, i) in
/// strict sample order as each batch drains. At most one chunk of full
/// observations is alive at a time, so collecting 10^6 samples needs
/// O(chunk) memory; the callback owns all retention (compact rows, online
/// histograms, trace records). Aborts on an unknown Fixed/Ranges variable
/// (callers validate for graceful errors). \returns the sample count.
size_t streamObservations(
    const Program &P, const MachineEnv &EnvTemplate,
    const std::vector<SecretClassSpec> &Classes, const AttackOptions &Opts,
    const InterpreterOptions &IOpts, const ParallelRunner &Runner,
    const std::function<void(const Observation &, size_t)> &OnObservation);

/// Runs Opts.Samples executions of \p P (sample i: class i mod K) on
/// clones of \p EnvTemplate under \p IOpts, fanning out over \p Runner.
/// Each observation carries the adversary-projected window durations and
/// the run's analytic bound from a per-run LeakAudit replay. Aborts on an
/// unknown Fixed/Ranges variable (callers validate for graceful errors).
/// Retains every observation — prefer streamObservations at scale.
std::vector<Observation>
collectObservations(const Program &P, const MachineEnv &EnvTemplate,
                    const std::vector<SecretClassSpec> &Classes,
                    const AttackOptions &Opts, const InterpreterOptions &IOpts,
                    const ParallelRunner &Runner);

/// Serializes one observation through \p Sink as a cat "adv" instant
/// record, Ts = \p Index (trace time axes must be nondecreasing; the real
/// timing rides in the args). Args: class, class_index, end_to_end,
/// windows ("a,b,c"), bound_bits (shortest round-trip decimal, so offline
/// recomputation is bit-for-bit). Returns the record count (1).
size_t exportObservation(TraceSink &Sink, const Observation &O, size_t Index,
                         const std::vector<std::string> &ClassNames);

/// Serializes \p Obs through \p Sink via exportObservation, one record per
/// sample in bag order. Returns the record count.
size_t exportObservations(TraceSink &Sink, const std::vector<Observation> &Obs,
                          const std::vector<std::string> &ClassNames);

} // namespace zam

#endif // ZAM_ADV_ADVERSARY_H
