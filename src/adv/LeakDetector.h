//===- LeakDetector.h - Statistical timing-leak detector --------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measuring half of the empirical adversary: given a bag of sampled
/// executions labelled with their secret class, decide — the way a real
/// attacker armed with a stopwatch would — whether the adversary-projected
/// timings distinguish the classes, and estimate how many bits they carry.
///
/// Three statistics over the end-to-end timing distributions:
///  - Welch's t-test (unequal variances, Welch–Satterthwaite df) with a
///    two-sided p-value reported as log10(p) so "overwhelming significance"
///    stays representable far past double underflow;
///  - Cohen's d (pooled-SD standardized effect size);
///  - a plug-in mutual-information estimate I(class; timing) over the exact
///    discrete cycle counts, with the Miller–Madow bias correction, clamped
///    to [0, H(class)] — directly comparable against the analytic Sec. 6
///    `leak.total_bits_bound` carried by each observation.
///
/// Everything is computed from deterministic cycle counts with fixed
/// summation orders, and the special functions (lgamma via a Lanczos
/// approximation, the regularized incomplete beta via a Lentz continued
/// fraction) are implemented here on top of +,*,log,exp only — which glibc
/// rounds correctly — so committed detector baselines are byte-stable
/// across machines where std::lgamma would not be.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_ADV_LEAKDETECTOR_H
#define ZAM_ADV_LEAKDETECTOR_H

#include "obs/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace zam {

/// One sampled execution, as the black-box adversary records it.
struct Observation {
  uint32_t ClassIndex = 0;       ///< Which secret class was sampled.
  uint64_t EndToEnd = 0;         ///< End-to-end time (cycles).
  std::vector<uint64_t> Windows; ///< Adversary-counted window durations.
  double BoundBits = 0;          ///< This run's analytic Sec. 6 bound.
};

/// The detector's working representation: everything the statistics read,
/// nothing they don't. Fixed-size (no per-sample window vector), so a
/// million-sample bag costs ~24 MB instead of retaining every window list;
/// window durations stream into online histograms instead (obs/Histogram.h).
struct CompactObservation {
  uint32_t ClassIndex = 0; ///< Which secret class was sampled.
  uint64_t EndToEnd = 0;   ///< End-to-end time (cycles).
  double BoundBits = 0;    ///< This run's analytic Sec. 6 bound.
};

/// Per-class summary of the end-to-end timing distribution.
struct ClassSummary {
  std::string Name;
  uint64_t Count = 0;
  double Mean = 0;
  double Variance = 0; ///< Unbiased (n-1) sample variance.
  uint64_t Min = 0;
  uint64_t Max = 0;
};

/// Everything the detector concluded from one bag of observations.
struct DetectorResult {
  uint64_t Samples = 0;
  std::vector<ClassSummary> Classes;
  /// The class pair the t statistics below refer to: with two classes the
  /// only pair, with more the pair of maximal |t| (scanned in index order,
  /// first maximum wins — deterministic).
  unsigned PairA = 0;
  unsigned PairB = 1;
  double TStat = 0;       ///< Welch's t for (PairA, PairB).
  double Df = 0;          ///< Welch–Satterthwaite degrees of freedom.
  double CohensD = 0;     ///< Pooled-SD effect size for the same pair.
  double PValueLog10 = 0; ///< log10 of the two-sided p-value (<= 0).
  double MiPluginBits = 0;      ///< Raw plug-in I(class; timing).
  double MiBits = 0;            ///< Miller–Madow corrected, clamped.
  uint64_t DistinctTimings = 0; ///< Support size of the timing histogram.
  double AnalyticBoundBits = 0; ///< max over observations of BoundBits.
  bool LeakDetected = false;    ///< PValueLog10 <= threshold.
};

/// Default detection threshold: p <= 1e-9, the "overwhelming significance"
/// bar the adversary gate holds unmitigated variants to.
inline constexpr double kDetectPValueLog10 = -9.0;

/// Sentinels for the degenerate zero-variance-different-means case (two
/// disjoint constants): the separation is perfect, the textbook t is
/// infinite, and we report these fixed finite stand-ins so JSON stays
/// well-formed and byte-stable.
inline constexpr double kDegenerateTStat = 1e12;
inline constexpr double kDegeneratePValueLog10 = -350.0;

/// Runs the full detector over \p Obs. \p ClassNames maps ClassIndex to a
/// display name and fixes the class count (indices out of range abort).
/// Requires at least two classes with at least two samples each for the
/// t-test; classes with fewer samples still enter the MI histogram.
DetectorResult detectLeak(const std::vector<CompactObservation> &Obs,
                          const std::vector<std::string> &ClassNames,
                          double PValueLog10Threshold = kDetectPValueLog10);

/// Convenience overload over full observations: projects each to its
/// compact form (the detector never reads the window lists) and delegates
/// — the statistics are bit-identical either way.
DetectorResult detectLeak(const std::vector<Observation> &Obs,
                          const std::vector<std::string> &ClassNames,
                          double PValueLog10Threshold = kDetectPValueLog10);

/// Emits the fixed-shape `adv.*` namespace into \p Reg under \p Prefix
/// (counters adv.samples/adv.classes/adv.distinct_timings; gauges
/// adv.t_stat/adv.cohens_d/adv.p_value_log10/adv.mi_bits/
/// adv.mi_plugin_bits/adv.analytic_bound_bits/adv.verdict).
void exportDetectorMetrics(MetricsRegistry &Reg, const DetectorResult &R,
                           const std::string &Prefix = "");

/// ln Γ(x) for x >= 0.5 via the Lanczos approximation (g = 7, 9 terms).
/// Deterministic across machines; |error| < 1e-13 over the detector's
/// argument range. Exposed for the unit tests.
double advLgamma(double X);

/// log10 of the regularized incomplete beta I_x(a, b), computed in log
/// space so far-tail values don't underflow to -inf. Requires a,b >= 0.5
/// and 0 <= x <= 1.
double regularizedIncompleteBetaLog10(double A, double B, double X);

/// log10 of the two-sided p-value of Student/Welch t with \p Df degrees of
/// freedom, clamped at kDegeneratePValueLog10.
double welchPValueLog10(double T, double Df);

} // namespace zam

#endif // ZAM_ADV_LEAKDETECTOR_H
