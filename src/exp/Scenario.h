//===- Scenario.h - Uniform description of deterministic runs ---*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-description layer of the experiment harness. A Scenario bundles
/// everything one deterministic execution needs — the program, a machine
/// environment template (lattice + HwKind + cache geometry), and the
/// interpreter options — and a RunSpec describes one run's inputs (scalar
/// and array overrides plus an arbitrary memory-preparation hook).
///
/// Scenarios are shared read-only across worker threads; every run clones
/// the environment template, so concurrent runs never touch shared mutable
/// state. Session-style workloads (persistent mitigation state across
/// requests) fan out at series granularity instead, via SeriesSpec.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_EXP_SCENARIO_H
#define ZAM_EXP_SCENARIO_H

#include "exp/ParallelRunner.h"
#include "exp/Report.h"
#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "sem/FullInterpreter.h"

#include <functional>
#include <string>
#include <vector>

namespace zam {

/// One deterministic run's inputs, applied to the interpreter's initial
/// memory before execution: scalar overrides, array overrides, then the
/// optional Prepare hook (in that order).
struct RunSpec {
  std::vector<std::pair<std::string, int64_t>> Scalars;
  std::vector<std::pair<std::string, std::vector<int64_t>>> Arrays;
  std::function<void(Memory &)> Prepare;

  void applyTo(Memory &M) const;
};

/// A shared experiment context: program + environment template + options.
/// Immutable after construction; safe to use from any number of worker
/// threads concurrently (each run clones the template).
class Scenario {
public:
  /// Builds the machine environment from a design kind and configuration.
  Scenario(const Program &P, HwKind Hw,
           MachineEnvConfig Config = MachineEnvConfig(),
           InterpreterOptions Opts = InterpreterOptions());

  /// Clones an existing environment template (e.g. a pre-warmed machine).
  Scenario(const Program &P, const MachineEnv &EnvTemplate,
           InterpreterOptions Opts = InterpreterOptions());

  const Program &program() const { return *P; }
  const MachineEnv &envTemplate() const { return *EnvTemplate; }
  const InterpreterOptions &options() const { return Opts; }
  std::unique_ptr<MachineEnv> cloneEnv() const {
    return EnvTemplate->clone();
  }

  /// Executes one run on a fresh clone of the environment template.
  RunResult run(const RunSpec &Spec) const;

  /// Executes every spec (fanned out over \p Runner) and returns results in
  /// submission order.
  std::vector<RunResult> runAll(const std::vector<RunSpec> &Specs,
                                const ParallelRunner &Runner) const;

private:
  const Program *P;
  InterpreterOptions Opts;
  std::unique_ptr<MachineEnv> EnvTemplate;
};

/// One independent measurement series of a session-style workload: a name
/// plus a thunk producing the series values. The thunk must build its own
/// session and machine environment (so concurrent thunks share nothing) and
/// be deterministic.
struct SeriesSpec {
  std::string Name;
  std::function<std::vector<uint64_t>()> Run;
};

/// Runs every series (concurrently when \p Runner has multiple threads) and
/// adds them to \p R in declaration order, so the report is identical for
/// any thread count.
void runSeriesInto(Report &R, const std::vector<SeriesSpec> &Specs,
                   const ParallelRunner &Runner);

} // namespace zam

#endif // ZAM_EXP_SCENARIO_H
