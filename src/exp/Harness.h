//===- Harness.h - Shared bench command-line handling -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The options every harness binary shares: `--threads N` (0 = auto via
/// ZAM_THREADS / hardware_concurrency) and `--json <file>` (write the
/// Report as machine-readable JSON next to the human-readable tables).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_EXP_HARNESS_H
#define ZAM_EXP_HARNESS_H

#include "exp/Report.h"

#include <string>

namespace zam {

/// Parsed harness options.
struct HarnessOptions {
  unsigned Threads = 0;  ///< 0: resolve from ZAM_THREADS / hardware.
  std::string JsonPath;  ///< Empty: no JSON output.
  bool Ok = true;        ///< False on malformed arguments.
};

/// Parses `--threads N` and `--json FILE` from a bench's argv; unknown
/// arguments set Ok = false (benches exit 2 with a usage line).
HarnessOptions parseHarnessArgs(int Argc, char **Argv);

/// Writes \p R to Opts.JsonPath when requested, reporting failures on
/// stderr. \returns false on write failure.
bool emitReportJson(const Report &R, const HarnessOptions &Opts);

} // namespace zam

#endif // ZAM_EXP_HARNESS_H
