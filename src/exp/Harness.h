//===- Harness.h - Shared bench command-line handling -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The options every harness binary shares: `--threads N` (0 = auto via
/// ZAM_THREADS / hardware_concurrency), `--json <file>` (write the Report
/// as machine-readable JSON next to the human-readable tables) and
/// `--trace-out <file>` / `--trace-format jsonl|chrome` (export the
/// bench's representative run as a telemetry trace with a provenance
/// header). Benches that sample randomized inputs also honour
/// `--seed S` (base Rng seed; 0 keeps the bench default) and
/// `--samples N` (per-cell sample budget; 0 keeps the bench default) so
/// that report content is a pure function of (program, seed, samples)
/// and byte-identical at any `--threads` / ZAM_THREADS setting. Emitted
/// reports carry a `meta` provenance block (obs/Telemetry.h
/// provenanceJson).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_EXP_HARNESS_H
#define ZAM_EXP_HARNESS_H

#include "exp/Report.h"
#include "sem/Event.h"

#include <cstdint>
#include <string>

namespace zam {

class SecurityLattice;

/// Parsed harness options.
struct HarnessOptions {
  unsigned Threads = 0;        ///< 0: resolve from ZAM_THREADS / hardware.
  std::string JsonPath;        ///< Empty: no JSON output.
  std::string TraceOutPath;    ///< Empty: no trace export.
  std::string TraceFormatName = "jsonl"; ///< "jsonl" or "chrome".
  uint64_t Seed = 0;           ///< --seed: base Rng seed (0 = bench default).
  unsigned Samples = 0;        ///< --samples: sample budget (0 = default).
  bool Ok = true;              ///< False on malformed arguments.
};

/// Parses `--threads N`, `--json FILE`, `--trace-out FILE`,
/// `--trace-format jsonl|chrome`, `--seed S` and `--samples N` from a
/// bench's argv; unknown arguments set Ok = false (benches exit 2 with a
/// usage line).
HarnessOptions parseHarnessArgs(int Argc, char **Argv);

/// Writes \p R to Opts.JsonPath when requested, with the provenance `meta`
/// block appended, reporting failures on stderr. \returns false on write
/// failure.
bool emitReportJson(const Report &R, const HarnessOptions &Opts);

/// Exports \p T (a bench's representative telemetry run) to
/// Opts.TraceOutPath in Opts.TraceFormatName, prefixed with the provenance
/// header. No-op when no trace path was requested. \returns false on
/// failure.
bool emitBenchTrace(const Trace &T, const SecurityLattice &Lat,
                    const HarnessOptions &Opts);

} // namespace zam

#endif // ZAM_EXP_HARNESS_H
