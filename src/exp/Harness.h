//===- Harness.h - Shared bench command-line handling -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The options every harness binary shares: `--threads N` (0 = auto via
/// ZAM_THREADS / hardware_concurrency), `--json <file>` (write the Report
/// as machine-readable JSON next to the human-readable tables) and
/// `--trace-out <file>` / `--trace-format jsonl|chrome|ztb` (export the
/// bench's representative run as a telemetry trace with a provenance
/// header; without an explicit --trace-format the path's extension decides
/// — .jsonl, .json or .ztb — and any other extension is an error).
/// Benches that sample randomized inputs also honour `--seed S` (base Rng
/// seed; 0 keeps the bench default) and `--samples N` (per-cell sample
/// budget; 0 keeps the bench default) so that report content is a pure
/// function of (program, seed, samples) and byte-identical at any
/// `--threads` / ZAM_THREADS setting. `--progress` turns on a stderr-only
/// progress meter (ProgressMeter below) that never touches stdout, JSON
/// reports or trace bytes. Emitted reports carry a `meta` provenance block
/// (obs/Telemetry.h provenanceJson).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_EXP_HARNESS_H
#define ZAM_EXP_HARNESS_H

#include "exp/Report.h"
#include "sem/Event.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace zam {

class SecurityLattice;
enum class TraceFormat;

/// Parsed harness options.
struct HarnessOptions {
  unsigned Threads = 0;        ///< 0: resolve from ZAM_THREADS / hardware.
  std::string JsonPath;        ///< Empty: no JSON output.
  std::string TraceOutPath;    ///< Empty: no trace export.
  /// "jsonl", "chrome" or "ztb"; empty means infer from the --trace-out
  /// extension (unknown extensions are an error at emission time).
  std::string TraceFormatName;
  uint64_t Seed = 0;           ///< --seed: base Rng seed (0 = bench default).
  unsigned Samples = 0;        ///< --samples: sample budget (0 = default).
  bool Progress = false;       ///< --progress: stderr-only meter.
  bool Ok = true;              ///< False on malformed arguments.
};

/// Parses `--threads N`, `--json FILE`, `--trace-out FILE`,
/// `--trace-format jsonl|chrome|ztb`, `--seed S`, `--samples N` and
/// `--progress` from a bench's argv; unknown arguments set Ok = false
/// (benches exit 2 with a usage line).
HarnessOptions parseHarnessArgs(int Argc, char **Argv);

/// Resolves the bench trace format: the explicit --trace-format when
/// given, else the --trace-out extension (.jsonl/.json/.ztb). Prints a
/// diagnostic and returns nullopt on an uninferable extension. Requires a
/// nonempty TraceOutPath.
std::optional<TraceFormat> resolveBenchTraceFormat(const HarnessOptions &Opts);

/// Writes \p R to Opts.JsonPath when requested, with the provenance `meta`
/// block appended, reporting failures on stderr. \returns false on write
/// failure.
bool emitReportJson(const Report &R, const HarnessOptions &Opts);

/// Exports \p T (a bench's representative telemetry run) to
/// Opts.TraceOutPath, streamed straight to disk in the resolved format and
/// prefixed with the provenance header. No-op when no trace path was
/// requested. \returns false on failure.
bool emitBenchTrace(const Trace &T, const SecurityLattice &Lat,
                    const HarnessOptions &Opts);

/// A stderr-only progress meter: `what: done/total (pct%) eta Ns`,
/// carriage-return refreshed at most ~10×/s and finished with a newline.
/// Disabled instances are free; enabled ones write only to stderr, so
/// stdout tables, --json documents and trace bytes are byte-identical
/// whether or not a meter runs. tick() is thread-safe (workers may call it
/// directly from a ParallelRunner lambda).
/// A `Total` of 0 renders as an indeterminate `what: N/?` counter (no
/// percentage, no per-paint newline). Completion — or destruction of a
/// meter that painted anything — always terminates the stderr line with a
/// newline, so a redirected stderr never ends mid-repaint.
class ProgressMeter {
public:
  ProgressMeter(const char *What, uint64_t Total, bool Enabled);
  ~ProgressMeter();

  /// Advances the counter by one and maybe repaints (thread-safe).
  void tick();

  /// Sets the absolute count and maybe repaints (single-writer use).
  void update(uint64_t Done);

  /// Ends the meter's stderr line: emits the trailing newline if any
  /// repaint was painted and the line is still open. Idempotent; called
  /// by the destructor, so abandoned meters (early error paths,
  /// indeterminate totals) still leave stderr clean.
  void finish();

private:
  void paint(uint64_t Done);

  const char *What;
  uint64_t Total;
  bool Enabled;
  std::atomic<uint64_t> Count{0};
  std::chrono::steady_clock::time_point Start;
  std::chrono::steady_clock::time_point Last;
  std::mutex Mu; ///< Serializes repaints from worker threads.
  bool Painted = false;        ///< Any repaint reached stderr (under Mu).
  bool NewlineEmitted = false; ///< The line was terminated (under Mu).
};

} // namespace zam

#endif // ZAM_EXP_HARNESS_H
