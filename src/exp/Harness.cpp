//===- Harness.cpp --------------------------------------------------------===//

#include "exp/Harness.h"

#include "exp/ParallelRunner.h"
#include "obs/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace zam;

HarnessOptions zam::parseHarnessArgs(int Argc, char **Argv) {
  HarnessOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--threads") && I + 1 < Argc) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || V > 1024) {
        Opts.Ok = false;
        return Opts;
      }
      Opts.Threads = static_cast<unsigned>(V);
    } else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc) {
      Opts.JsonPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--trace-out") && I + 1 < Argc) {
      Opts.TraceOutPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--seed") && I + 1 < Argc) {
      char *End = nullptr;
      Opts.Seed = std::strtoull(Argv[++I], &End, 0);
      if (End == Argv[I] || *End != '\0') {
        Opts.Ok = false;
        return Opts;
      }
    } else if (!std::strcmp(Argv[I], "--samples") && I + 1 < Argc) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || V < 1 || V > 10000000) {
        Opts.Ok = false;
        return Opts;
      }
      Opts.Samples = static_cast<unsigned>(V);
    } else if (!std::strcmp(Argv[I], "--trace-format") && I + 1 < Argc) {
      Opts.TraceFormatName = Argv[++I];
      if (!parseTraceFormat(Opts.TraceFormatName)) {
        std::fprintf(stderr, "unknown trace format '%s'; expected "
                             "jsonl or chrome\n",
                     Opts.TraceFormatName.c_str());
        Opts.Ok = false;
        return Opts;
      }
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'; expected [--threads N] "
                   "[--json FILE] [--trace-out FILE] "
                   "[--trace-format jsonl|chrome] [--seed S] "
                   "[--samples N]\n",
                   Argv[I]);
      Opts.Ok = false;
      return Opts;
    }
  }
  return Opts;
}

bool zam::emitReportJson(const Report &R, const HarnessOptions &Opts) {
  if (Opts.JsonPath.empty())
    return true;
  JsonValue Doc = R.toJson();
  Doc["meta"] = provenanceJson(resolveThreadCount(Opts.Threads));
  std::FILE *F = std::fopen(Opts.JsonPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write JSON report to '%s'\n",
                 Opts.JsonPath.c_str());
    return false;
  }
  std::string Text = Doc.dump();
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok) {
    std::fprintf(stderr, "error: cannot write JSON report to '%s'\n",
                 Opts.JsonPath.c_str());
    return false;
  }
  std::printf("\nJSON report written to %s\n", Opts.JsonPath.c_str());
  return true;
}

bool zam::emitBenchTrace(const Trace &T, const SecurityLattice &Lat,
                         const HarnessOptions &Opts) {
  if (Opts.TraceOutPath.empty())
    return true;
  std::optional<TraceFormat> Format = parseTraceFormat(Opts.TraceFormatName);
  if (!Format) {
    std::fprintf(stderr, "error: unknown trace format '%s'\n",
                 Opts.TraceFormatName.c_str());
    return false;
  }
  std::unique_ptr<TraceSink> Sink = makeTraceSink(*Format);
  Sink->header(provenanceArgs(resolveThreadCount(Opts.Threads)));
  size_t Count = exportTrace(*Sink, T, Lat);
  const std::string &Bytes = Sink->finish();
  std::FILE *F = std::fopen(Opts.TraceOutPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 Opts.TraceOutPath.c_str());
    return false;
  }
  bool Ok = std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 Opts.TraceOutPath.c_str());
    return false;
  }
  std::printf("wrote %zu trace records to %s\n", Count,
              Opts.TraceOutPath.c_str());
  return true;
}
