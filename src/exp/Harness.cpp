//===- Harness.cpp --------------------------------------------------------===//

#include "exp/Harness.h"

#include "exp/ParallelRunner.h"
#include "obs/Telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace zam;

HarnessOptions zam::parseHarnessArgs(int Argc, char **Argv) {
  HarnessOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--threads") && I + 1 < Argc) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || V > 1024) {
        Opts.Ok = false;
        return Opts;
      }
      Opts.Threads = static_cast<unsigned>(V);
    } else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc) {
      Opts.JsonPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--trace-out") && I + 1 < Argc) {
      Opts.TraceOutPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--seed") && I + 1 < Argc) {
      char *End = nullptr;
      Opts.Seed = std::strtoull(Argv[++I], &End, 0);
      if (End == Argv[I] || *End != '\0') {
        Opts.Ok = false;
        return Opts;
      }
    } else if (!std::strcmp(Argv[I], "--samples") && I + 1 < Argc) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || V < 1 || V > 10000000) {
        Opts.Ok = false;
        return Opts;
      }
      Opts.Samples = static_cast<unsigned>(V);
    } else if (!std::strcmp(Argv[I], "--progress")) {
      Opts.Progress = true;
    } else if (!std::strcmp(Argv[I], "--trace-format") && I + 1 < Argc) {
      Opts.TraceFormatName = Argv[++I];
      if (!parseTraceFormat(Opts.TraceFormatName)) {
        std::fprintf(stderr, "unknown trace format '%s'; expected "
                             "jsonl, chrome or ztb\n",
                     Opts.TraceFormatName.c_str());
        Opts.Ok = false;
        return Opts;
      }
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'; expected [--threads N] "
                   "[--json FILE] [--trace-out FILE] "
                   "[--trace-format jsonl|chrome|ztb] [--seed S] "
                   "[--samples N] [--progress]\n",
                   Argv[I]);
      Opts.Ok = false;
      return Opts;
    }
  }
  return Opts;
}

std::optional<TraceFormat>
zam::resolveBenchTraceFormat(const HarnessOptions &Opts) {
  if (!Opts.TraceFormatName.empty())
    return parseTraceFormat(Opts.TraceFormatName);
  std::optional<TraceFormat> F = inferTraceFormat(Opts.TraceOutPath);
  if (!F)
    std::fprintf(stderr,
                 "error: cannot infer a trace format from '%s' (expected a "
                 ".jsonl, .json or .ztb extension); pass --trace-format\n",
                 Opts.TraceOutPath.c_str());
  return F;
}

bool zam::emitReportJson(const Report &R, const HarnessOptions &Opts) {
  if (Opts.JsonPath.empty())
    return true;
  JsonValue Doc = R.toJson();
  Doc["meta"] = provenanceJson(resolveThreadCount(Opts.Threads));
  std::FILE *F = std::fopen(Opts.JsonPath.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write JSON report to '%s'\n",
                 Opts.JsonPath.c_str());
    return false;
  }
  std::string Text = Doc.dump();
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok) {
    std::fprintf(stderr, "error: cannot write JSON report to '%s'\n",
                 Opts.JsonPath.c_str());
    return false;
  }
  std::printf("\nJSON report written to %s\n", Opts.JsonPath.c_str());
  return true;
}

bool zam::emitBenchTrace(const Trace &T, const SecurityLattice &Lat,
                         const HarnessOptions &Opts) {
  if (Opts.TraceOutPath.empty())
    return true;
  std::optional<TraceFormat> Format = resolveBenchTraceFormat(Opts);
  if (!Format)
    return false;
  // Stream straight to disk: the trace is never buffered whole.
  std::FILE *F = std::fopen(Opts.TraceOutPath.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 Opts.TraceOutPath.c_str());
    return false;
  }
  FileByteSink Bytes(F);
  std::unique_ptr<TraceSink> Sink = makeTraceSink(*Format, Bytes);
  Sink->header(provenanceArgs(resolveThreadCount(Opts.Threads)));
  size_t Count = exportTrace(*Sink, T, Lat);
  Sink->close();
  bool Ok = Sink->ok();
  Ok &= std::fclose(F) == 0;
  if (!Ok) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 Opts.TraceOutPath.c_str());
    return false;
  }
  std::printf("wrote %zu trace records to %s\n", Count,
              Opts.TraceOutPath.c_str());
  return true;
}

ProgressMeter::ProgressMeter(const char *What, uint64_t Total, bool Enabled)
    : What(What), Total(Total), Enabled(Enabled),
      Start(std::chrono::steady_clock::now()), Last(Start) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::finish() {
  if (!Enabled)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Painted || NewlineEmitted)
    return;
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  NewlineEmitted = true;
}

void ProgressMeter::tick() {
  const uint64_t Done = Count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Enabled)
    paint(Done);
}

void ProgressMeter::update(uint64_t Done) {
  Count.store(Done, std::memory_order_relaxed);
  if (Enabled)
    paint(Done);
}

void ProgressMeter::paint(uint64_t Done) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (NewlineEmitted) // Already completed; nothing left to repaint.
    return;
  // Total == 0 is indeterminate, not "100% done": it never completes on
  // its own (finish()/the destructor close the line) and must not divide
  // by the total.
  const bool Complete = Total != 0 && Done >= Total;
  const auto Now = std::chrono::steady_clock::now();
  if (!Complete && Now - Last < std::chrono::milliseconds(100))
    return;
  Last = Now;
  if (Total == 0) {
    std::fprintf(stderr, "\r%s: %" PRIu64 "/?", What, Done);
  } else {
    const double Sec = std::chrono::duration<double>(Now - Start).count();
    char Eta[48] = "";
    if (Done > 0 && Done < Total && Sec > 0.5)
      std::snprintf(Eta, sizeof(Eta), " eta %.0fs",
                    Sec * static_cast<double>(Total - Done) /
                        static_cast<double>(Done));
    std::fprintf(stderr, "\r%s: %" PRIu64 "/%" PRIu64 " (%d%%)%s%s", What,
                 Done, Total, static_cast<int>(100 * Done / Total), Eta,
                 Complete ? "\n" : "");
  }
  Painted = true;
  NewlineEmitted = Complete;
  std::fflush(stderr);
}
