//===- Harness.cpp --------------------------------------------------------===//

#include "exp/Harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace zam;

HarnessOptions zam::parseHarnessArgs(int Argc, char **Argv) {
  HarnessOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--threads") && I + 1 < Argc) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Argv[++I], &End, 10);
      if (End == Argv[I] || *End != '\0' || V > 1024) {
        Opts.Ok = false;
        return Opts;
      }
      Opts.Threads = static_cast<unsigned>(V);
    } else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc) {
      Opts.JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "unknown argument '%s'; expected "
                           "[--threads N] [--json FILE]\n",
                   Argv[I]);
      Opts.Ok = false;
      return Opts;
    }
  }
  return Opts;
}

bool zam::emitReportJson(const Report &R, const HarnessOptions &Opts) {
  if (Opts.JsonPath.empty())
    return true;
  if (!R.writeJsonFile(Opts.JsonPath)) {
    std::fprintf(stderr, "error: cannot write JSON report to '%s'\n",
                 Opts.JsonPath.c_str());
    return false;
  }
  std::printf("\nJSON report written to %s\n", Opts.JsonPath.c_str());
  return true;
}
