//===- Scenario.cpp -------------------------------------------------------===//

#include "exp/Scenario.h"

#include "support/Diagnostics.h"

using namespace zam;

void RunSpec::applyTo(Memory &M) const {
  for (const auto &[Name, Value] : Scalars)
    M.store(Name, Value);
  for (const auto &[Name, Values] : Arrays) {
    MemorySlot &S = M.slot(Name);
    if (!S.IsArray)
      reportFatalError("array override applied to a scalar");
    for (size_t I = 0; I != Values.size() && I != S.Data.size(); ++I)
      S.Data[I] = Values[I];
  }
  if (Prepare)
    Prepare(M);
}

Scenario::Scenario(const Program &P, HwKind Hw, MachineEnvConfig Config,
                   InterpreterOptions Opts)
    : P(&P), Opts(Opts),
      EnvTemplate(createMachineEnv(Hw, P.lattice(), Config)) {}

Scenario::Scenario(const Program &P, const MachineEnv &EnvTemplate,
                   InterpreterOptions Opts)
    : P(&P), Opts(Opts), EnvTemplate(EnvTemplate.clone()) {}

RunResult Scenario::run(const RunSpec &Spec) const {
  std::unique_ptr<MachineEnv> Env = EnvTemplate->clone();
  return runFull(*P, *Env, [&](Memory &M) { Spec.applyTo(M); }, Opts);
}

std::vector<RunResult> Scenario::runAll(const std::vector<RunSpec> &Specs,
                                        const ParallelRunner &Runner) const {
  return Runner.map(Specs.size(),
                    [&](size_t I) { return run(Specs[I]); });
}

void zam::runSeriesInto(Report &R, const std::vector<SeriesSpec> &Specs,
                        const ParallelRunner &Runner) {
  std::vector<std::vector<uint64_t>> Values =
      Runner.map(Specs.size(), [&](size_t I) { return Specs[I].Run(); });
  for (size_t I = 0; I != Specs.size(); ++I)
    R.addSeries(Specs[I].Name, Values[I]);
}
