//===- ParallelRunner.h - Deterministic parallel fan-out --------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size std::thread fan-out for independent deterministic runs.
/// Every simulated execution in zam is deterministic (Property 2), so a
/// batch of runs over distinct MachineEnv clones can be spread over worker
/// threads freely: the runner only reorders *wall-clock* execution, while
/// results are always collected in submission order. Harness output is
/// therefore bit-identical for any thread count.
///
/// The thread count resolves, in priority order: an explicit request, the
/// ZAM_THREADS environment variable, std::thread::hardware_concurrency().
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_EXP_PARALLELRUNNER_H
#define ZAM_EXP_PARALLELRUNNER_H

#include <cstddef>
#include <functional>
#include <vector>

namespace zam {

/// Resolves a thread-count request: \p Requested when > 0, else the
/// ZAM_THREADS environment variable, else hardware_concurrency (min 1).
unsigned resolveThreadCount(unsigned Requested = 0);

/// Fans independent index-addressed tasks out over a fixed-size worker
/// pool. Stateless between calls; cheap to construct.
class ParallelRunner {
public:
  /// \p Threads = 0 resolves from ZAM_THREADS / hardware_concurrency.
  explicit ParallelRunner(unsigned Threads = 0)
      : NumThreads(resolveThreadCount(Threads)) {}

  unsigned threadCount() const { return NumThreads; }

  /// Invokes F(I) for every I in [0, N). With one thread this is a plain
  /// serial loop (no thread is spawned); otherwise min(threads, N) workers
  /// drain a shared index counter. If any F throws, the exception from the
  /// lowest-numbered failing index is rethrown after all workers finish.
  void forEach(size_t N, const std::function<void(size_t)> &F) const;

  /// Maps F over [0, N) and returns the results indexed by I — identical
  /// to a serial loop for any thread count, only wall-clock changes. F must
  /// not touch shared mutable state (give each run its own MachineEnv
  /// clone; the shared Program and lattice are read-only).
  template <typename Fn> auto map(size_t N, Fn &&F) const {
    std::vector<decltype(F(size_t(0)))> Results(N);
    forEach(N, [&](size_t I) { Results[I] = F(I); });
    return Results;
  }

private:
  unsigned NumThreads;
};

} // namespace zam

#endif // ZAM_EXP_PARALLELRUNNER_H
