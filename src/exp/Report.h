//===- Report.h - Series/table aggregation for experiments ------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform result container of the experiment harness. A Report holds
/// named series of measurements plus report-level scalars/verdicts, computes
/// the statistics every bench used to hand-roll (average, min/max,
/// distinct-count, coincidence), renders the familiar human-readable column
/// tables, and serializes to JSON (`--json <file>`) so bench trajectories
/// can be recorded as `BENCH_*.json` files and diffed across PRs.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_EXP_REPORT_H
#define ZAM_EXP_REPORT_H

#include "obs/Json.h"
#include "obs/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace zam {

/// Statistics over one series.
struct SeriesStats {
  size_t Count = 0;
  size_t Distinct = 0; ///< Number of distinct values.
  double Avg = 0;
  double Min = 0;
  double Max = 0;
};

/// Arithmetic mean; 0 for an empty vector. The single shared replacement
/// for the `average()` helpers the benches used to copy around.
double average(const std::vector<double> &V);
double average(const std::vector<uint64_t> &V);

/// One named measurement series.
struct Series {
  std::string Name;
  std::vector<double> Values;

  SeriesStats stats() const;
  /// True when every value is identical (the Fig. 7/8 "curves coincide"
  /// check within one series).
  bool allEqual() const { return stats().Distinct <= 1; }
};

/// A titled collection of series plus report-level facts.
class Report {
public:
  explicit Report(std::string Title) : Title(std::move(Title)) {}

  const std::string &title() const { return Title; }

  Series &addSeries(std::string Name, std::vector<double> Values);
  Series &addSeries(std::string Name, const std::vector<uint64_t> &Values);

  const std::vector<Series> &series() const { return AllSeries; }
  /// Lookup by name; nullptr when absent.
  const Series *find(const std::string &Name) const;
  /// Average of a named series; 0 when absent.
  double seriesAverage(const std::string &Name) const;
  /// True when two named series exist and are element-wise identical (the
  /// cross-secret coincidence check of Fig. 7).
  bool coincide(const std::string &A, const std::string &B) const;

  /// Optional labels for the table's index column (e.g. "max secret"
  /// values); defaults to the ordinal index named \p Header.
  void setIndex(std::string Header, std::vector<double> Values);

  /// Report-level facts, kept in insertion order for stable output.
  void setScalar(std::string Key, double Value);
  void setVerdict(std::string Key, bool Value);
  void setText(std::string Key, std::string Value);
  /// The verdict value; \p Default when unset.
  bool verdict(const std::string &Key, bool Default = false) const;

  /// The report's telemetry counters (see obs/Telemetry.h for the naming
  /// scheme). Benches fill this from representative deterministic runs;
  /// serialized as the "metrics" JSON object when non-empty. Only
  /// deterministic, machine-independent values belong here — the bench
  /// byte-stability audits cover this object too.
  MetricsRegistry &metrics() { return Metrics; }
  const MetricsRegistry &metrics() const { return Metrics; }

  /// Wall-clock facts (elapsed milliseconds, speedups). Kept apart from
  /// setScalar so the timing noise never enters the deterministic
  /// projection the byte-stability audits compare; serialized as the
  /// trailing "wall" object.
  void setWallScalar(std::string Key, double Value);

  /// Attaches a PhaseProfiler::toJson() wall-clock breakdown, serialized
  /// as the trailing "phases" object (excluded from deterministicJson like
  /// the wall scalars).
  void setPhases(JsonValue PhasesJson);

  /// Renders all series as aligned columns, one row per index, emitting
  /// every \p Stride-th row (benches print every 5th attempt).
  std::string renderTable(size_t Stride = 1) const;
  /// Renders one "name: count/avg/min/max/distinct" line per series plus
  /// the recorded scalars and verdicts.
  std::string renderSummary() const;

  /// The machine-readable form:
  /// { "title", "scalars": {...}, "verdicts": {...}, "text": {...},
  ///   "metrics": {...},
  ///   "series": [ { "name", "values": [...], "stats": {...} } ],
  ///   "wall": {...}, "phases": {...} }
  /// The wall-clock tail rides along only when \p IncludeWallClock is set.
  JsonValue toJson(bool IncludeWallClock = true) const;

  /// The deterministic projection — toJson without the wall-clock tail.
  /// This is what the 1/2/8-thread identity checks compare: every field is
  /// derived from cycle-accurate run data, so the bytes cannot vary with
  /// timing noise.
  JsonValue deterministicJson() const { return toJson(false); }

  /// Writes toJson().dump() to \p Path; false on I/O failure.
  bool writeJsonFile(const std::string &Path) const;

private:
  std::string Title;
  std::string IndexHeader = "index";
  std::vector<double> IndexValues;
  std::vector<Series> AllSeries;
  std::vector<std::pair<std::string, double>> Scalars;
  std::vector<std::pair<std::string, bool>> Verdicts;
  std::vector<std::pair<std::string, std::string>> Texts;
  std::vector<std::pair<std::string, double>> WallScalars;
  JsonValue Phases; ///< Null until setPhases.
  MetricsRegistry Metrics;
};

} // namespace zam

#endif // ZAM_EXP_REPORT_H
