//===- ParallelRunner.cpp -------------------------------------------------===//

#include "exp/ParallelRunner.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

using namespace zam;

unsigned zam::resolveThreadCount(unsigned Requested) {
  if (Requested > 0)
    return Requested;
  if (const char *Env = std::getenv("ZAM_THREADS")) {
    char *End = nullptr;
    unsigned long V = std::strtoul(Env, &End, 10);
    if (End != Env && *End == '\0' && V > 0 && V <= 1024)
      return static_cast<unsigned>(V);
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw ? Hw : 1;
}

void ParallelRunner::forEach(size_t N,
                             const std::function<void(size_t)> &F) const {
  if (N == 0)
    return;
  const unsigned Workers =
      static_cast<unsigned>(std::min<size_t>(NumThreads, N));
  if (Workers <= 1) {
    for (size_t I = 0; I != N; ++I)
      F(I);
    return;
  }

  std::atomic<size_t> Next{0};
  std::mutex ErrMutex;
  size_t ErrIndex = std::numeric_limits<size_t>::max();
  std::exception_ptr Err;

  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
         I = Next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        F(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(ErrMutex);
        if (I < ErrIndex) {
          ErrIndex = I;
          Err = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  for (unsigned T = 0; T != Workers; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &Th : Pool)
    Th.join();
  if (Err)
    std::rethrow_exception(Err);
}
