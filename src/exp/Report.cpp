//===- Report.cpp ---------------------------------------------------------===//

#include "exp/Report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

using namespace zam;

double zam::average(const std::vector<double> &V) {
  if (V.empty())
    return 0.0;
  double Sum = 0;
  for (double X : V)
    Sum += X;
  return Sum / static_cast<double>(V.size());
}

double zam::average(const std::vector<uint64_t> &V) {
  if (V.empty())
    return 0.0;
  uint64_t Sum = 0;
  for (uint64_t X : V)
    Sum += X;
  return static_cast<double>(Sum) / static_cast<double>(V.size());
}

SeriesStats Series::stats() const {
  SeriesStats S;
  S.Count = Values.size();
  if (Values.empty())
    return S;
  S.Min = S.Max = Values.front();
  for (double V : Values) {
    S.Min = std::min(S.Min, V);
    S.Max = std::max(S.Max, V);
  }
  S.Avg = average(Values);
  S.Distinct = std::set<double>(Values.begin(), Values.end()).size();
  return S;
}

Series &Report::addSeries(std::string Name, std::vector<double> Values) {
  AllSeries.push_back(Series{std::move(Name), std::move(Values)});
  return AllSeries.back();
}

Series &Report::addSeries(std::string Name,
                          const std::vector<uint64_t> &Values) {
  std::vector<double> D(Values.begin(), Values.end());
  return addSeries(std::move(Name), std::move(D));
}

const Series *Report::find(const std::string &Name) const {
  for (const Series &S : AllSeries)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

double Report::seriesAverage(const std::string &Name) const {
  const Series *S = find(Name);
  return S ? average(S->Values) : 0.0;
}

bool Report::coincide(const std::string &A, const std::string &B) const {
  const Series *SA = find(A), *SB = find(B);
  return SA && SB && SA->Values == SB->Values;
}

void Report::setIndex(std::string Header, std::vector<double> Values) {
  IndexHeader = std::move(Header);
  IndexValues = std::move(Values);
}

void Report::setScalar(std::string Key, double Value) {
  for (auto &[K, V] : Scalars)
    if (K == Key) {
      V = Value;
      return;
    }
  Scalars.emplace_back(std::move(Key), Value);
}

void Report::setVerdict(std::string Key, bool Value) {
  for (auto &[K, V] : Verdicts)
    if (K == Key) {
      V = Value;
      return;
    }
  Verdicts.emplace_back(std::move(Key), Value);
}

void Report::setText(std::string Key, std::string Value) {
  for (auto &[K, V] : Texts)
    if (K == Key) {
      V = std::move(Value);
      return;
    }
  Texts.emplace_back(std::move(Key), std::move(Value));
}

void Report::setWallScalar(std::string Key, double Value) {
  for (auto &[K, V] : WallScalars)
    if (K == Key) {
      V = Value;
      return;
    }
  WallScalars.emplace_back(std::move(Key), Value);
}

void Report::setPhases(JsonValue PhasesJson) { Phases = std::move(PhasesJson); }

bool Report::verdict(const std::string &Key, bool Default) const {
  for (const auto &[K, V] : Verdicts)
    if (K == Key)
      return V;
  return Default;
}

/// Prints integral values without a fraction, everything else with two
/// decimals — matching what the hand-written printf tables did.
static std::string formatCell(double V) {
  char Buf[40];
  if (std::nearbyint(V) == V && std::fabs(V) < 9.2e18)
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

std::string Report::renderTable(size_t Stride) const {
  if (Stride == 0)
    Stride = 1;
  size_t Rows = 0;
  for (const Series &S : AllSeries)
    Rows = std::max(Rows, S.Values.size());

  std::vector<size_t> Widths;
  Widths.push_back(std::max<size_t>(IndexHeader.size(), 8));
  for (const Series &S : AllSeries) {
    size_t W = S.Name.size();
    for (double V : S.Values)
      W = std::max(W, formatCell(V).size());
    Widths.push_back(W + 2);
  }

  std::string Out;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%-*s", static_cast<int>(Widths[0]),
                IndexHeader.c_str());
  Out += Buf;
  for (size_t C = 0; C != AllSeries.size(); ++C) {
    std::snprintf(Buf, sizeof(Buf), "%*s", static_cast<int>(Widths[C + 1]),
                  AllSeries[C].Name.c_str());
    Out += Buf;
  }
  Out += '\n';
  for (size_t R = 0; R < Rows; R += Stride) {
    std::string Index = R < IndexValues.size()
                            ? formatCell(IndexValues[R])
                            : std::to_string(R);
    std::snprintf(Buf, sizeof(Buf), "%-*s", static_cast<int>(Widths[0]),
                  Index.c_str());
    Out += Buf;
    for (size_t C = 0; C != AllSeries.size(); ++C) {
      std::string Cell = R < AllSeries[C].Values.size()
                             ? formatCell(AllSeries[C].Values[R])
                             : "-";
      std::snprintf(Buf, sizeof(Buf), "%*s", static_cast<int>(Widths[C + 1]),
                    Cell.c_str());
      Out += Buf;
    }
    Out += '\n';
  }
  return Out;
}

std::string Report::renderSummary() const {
  std::string Out;
  char Buf[256];
  for (const Series &S : AllSeries) {
    SeriesStats St = S.stats();
    std::snprintf(Buf, sizeof(Buf),
                  "%-28s n=%-5zu avg=%-12s min=%-12s max=%-12s distinct=%zu\n",
                  S.Name.c_str(), St.Count, formatCell(St.Avg).c_str(),
                  formatCell(St.Min).c_str(), formatCell(St.Max).c_str(),
                  St.Distinct);
    Out += Buf;
  }
  for (const auto &[K, V] : Scalars) {
    std::snprintf(Buf, sizeof(Buf), "%-28s %s\n", K.c_str(),
                  formatCell(V).c_str());
    Out += Buf;
  }
  for (const auto &[K, V] : Verdicts) {
    std::snprintf(Buf, sizeof(Buf), "%-28s %s\n", K.c_str(),
                  V ? "YES" : "no");
    Out += Buf;
  }
  for (const auto &[K, V] : Texts) {
    std::snprintf(Buf, sizeof(Buf), "%-28s %s\n", K.c_str(), V.c_str());
    Out += Buf;
  }
  for (const auto &[K, V] : WallScalars) {
    std::snprintf(Buf, sizeof(Buf), "%-28s %s (wall)\n", K.c_str(),
                  formatCell(V).c_str());
    Out += Buf;
  }
  return Out;
}

JsonValue Report::toJson(bool IncludeWallClock) const {
  JsonValue Doc = JsonValue::object();
  Doc["title"] = JsonValue(Title);
  if (!IndexValues.empty()) {
    JsonValue Index = JsonValue::object();
    Index["name"] = JsonValue(IndexHeader);
    JsonValue Values = JsonValue::array();
    for (double V : IndexValues)
      Values.push(JsonValue(V));
    Index["values"] = std::move(Values);
    Doc["index"] = std::move(Index);
  }
  if (!Scalars.empty()) {
    JsonValue Obj = JsonValue::object();
    for (const auto &[K, V] : Scalars)
      Obj[K] = JsonValue(V);
    Doc["scalars"] = std::move(Obj);
  }
  if (!Verdicts.empty()) {
    JsonValue Obj = JsonValue::object();
    for (const auto &[K, V] : Verdicts)
      Obj[K] = JsonValue(V);
    Doc["verdicts"] = std::move(Obj);
  }
  if (!Texts.empty()) {
    JsonValue Obj = JsonValue::object();
    for (const auto &[K, V] : Texts)
      Obj[K] = JsonValue(V);
    Doc["text"] = std::move(Obj);
  }
  if (!Metrics.empty())
    Doc["metrics"] = Metrics.toJson();
  JsonValue SeriesArr = JsonValue::array();
  for (const Series &S : AllSeries) {
    JsonValue Obj = JsonValue::object();
    Obj["name"] = JsonValue(S.Name);
    JsonValue Values = JsonValue::array();
    for (double V : S.Values)
      Values.push(JsonValue(V));
    Obj["values"] = std::move(Values);
    SeriesStats St = S.stats();
    JsonValue Stats = JsonValue::object();
    Stats["count"] = JsonValue(St.Count);
    Stats["avg"] = JsonValue(St.Avg);
    Stats["min"] = JsonValue(St.Min);
    Stats["max"] = JsonValue(St.Max);
    Stats["distinct"] = JsonValue(St.Distinct);
    Obj["stats"] = std::move(Stats);
    SeriesArr.push(std::move(Obj));
  }
  Doc["series"] = std::move(SeriesArr);
  // The wall-clock tail always comes last, after every deterministic
  // member, so diffs of two reports line up until the timings start.
  if (IncludeWallClock && !WallScalars.empty()) {
    JsonValue Obj = JsonValue::object();
    for (const auto &[K, V] : WallScalars)
      Obj[K] = JsonValue(V);
    Doc["wall"] = std::move(Obj);
  }
  if (IncludeWallClock && !Phases.isNull())
    Doc["phases"] = Phases;
  return Doc;
}

bool Report::writeJsonFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Text = toJson().dump();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}
