//===- Memory.h - Program memory m with simulated addresses -----*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory component m of configurations ⟨c, m, E, G⟩. Memory maps
/// variables to 64-bit values (scalars) or value vectors (arrays) and also
/// fixes the simulated address layout, so data accesses exercise the
/// machine environment's D-TLB and data caches the way a compiled program
/// would.
///
/// Memory and machine environment are deliberately separate (Sec. 3.3):
/// only memory affects control flow; both affect timing.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_MEMORY_H
#define ZAM_SEM_MEMORY_H

#include "hw/CacheConfig.h"
#include "lang/Ast.h"
#include "lattice/SecurityLattice.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace zam {

/// Runtime storage for one declared variable.
struct MemorySlot {
  std::string Name;
  Label SecLabel; ///< Γ(x).
  bool IsArray = false;
  Addr Base = 0; ///< Simulated address of element 0.
  std::vector<int64_t> Data;

  bool operator==(const MemorySlot &Other) const = default;
};

/// The memory m. Array indices wrap modulo the array size (the semantics is
/// total: no trap states), and this is deterministic, so Property 2 holds.
class Memory {
public:
  Memory() = default;

  /// Builds memory from a program's declarations, laying variables out
  /// contiguously (8-byte words) from \p DataBase.
  static Memory fromProgram(const Program &P, Addr DataBase = 0x10000000);

  bool hasVar(const std::string &Name) const {
    return Index.count(Name) != 0;
  }

  const MemorySlot &slot(const std::string &Name) const;
  MemorySlot &slot(const std::string &Name);
  const std::vector<MemorySlot> &slots() const { return Slots; }

  /// Dense slot-index fast path used by the IR execution core. Indices
  /// follow declaration order — the same numbering the lowering pass bakes
  /// into LoadVar/LoadElem/Assign operands — so no name resolution happens
  /// on the execution path. Unchecked in production (the lowering pass is
  /// the sole producer of indices and LIR operands are precomputed from
  /// it); sanitizer builds verify the contract on every access.
  size_t slotCount() const { return Slots.size(); }
  const MemorySlot &slotAt(size_t I) const {
    checkSlotIndex(I, Slots.size());
    return Slots[I];
  }
  MemorySlot &slotAt(size_t I) {
    checkSlotIndex(I, Slots.size());
    return Slots[I];
  }

  /// Declaration-order index of \p Name, or npos when undeclared.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t slotIndexOf(const std::string &Name) const {
    auto It = Index.find(Name);
    return It == Index.end() ? npos : It->second;
  }

  /// Index wrapping, exposed statically so callers holding a raw element
  /// count (the IR engines) wrap exactly like wrapIndex does. A zero size
  /// would be a lowering bug (declarations guarantee ≥ 1 element) and is a
  /// division fault here; sanitizer builds turn it into a diagnosed abort.
  static uint64_t wrapRaw(int64_t RawIndex, uint64_t Size) {
    checkWrapSize(Size);
    int64_t N = static_cast<int64_t>(Size);
    int64_t I = RawIndex % N;
    if (I < 0)
      I += N;
    return static_cast<uint64_t>(I);
  }

  /// Scalar load/store.
  int64_t load(const std::string &Name) const;
  void store(const std::string &Name, int64_t Value);

  /// Array element load/store; \p RawIndex wraps modulo the array size.
  int64_t loadElem(const std::string &Name, int64_t RawIndex) const;
  void storeElem(const std::string &Name, int64_t RawIndex, int64_t Value);

  /// Wrapped (in-bounds) index for an array access.
  uint64_t wrapIndex(const std::string &Name, int64_t RawIndex) const;

  /// Simulated address of a scalar / of an array element.
  Addr addrOf(const std::string &Name) const;
  Addr addrOfElem(const std::string &Name, int64_t RawIndex) const;

  Label labelOf(const std::string &Name) const;

  /// m1 ~ℓ m2 (Sec. 3.4): agreement on every variable whose label flows to
  /// ℓ. Arrays compare element-wise. Slot layouts must match.
  bool equivalentUpTo(const Memory &Other, Label L,
                      const SecurityLattice &Lat) const;

  /// m1 ≈ℓ m2: agreement on variables labeled exactly ℓ.
  bool projectionEquals(const Memory &Other, Label L) const;

  bool operator==(const Memory &Other) const = default;

private:
  /// Contract checks for the dense addressing fast path. Zero-cost in
  /// production; ZAM_SANITIZE builds (which define ZAM_SANITIZE_CHECKS)
  /// turn violations into diagnosed aborts instead of undefined behavior.
  static void checkSlotIndex(size_t I, size_t Count) {
#ifdef ZAM_SANITIZE_CHECKS
    if (I >= Count)
      reportFatalError("memory slot index out of range");
#endif
    (void)I;
    (void)Count;
  }
  static void checkWrapSize(uint64_t Size) {
#ifdef ZAM_SANITIZE_CHECKS
    if (Size == 0)
      reportFatalError("array index wrap modulus is zero");
#endif
    (void)Size;
  }

  std::vector<MemorySlot> Slots;
  std::unordered_map<std::string, size_t> Index;
};

} // namespace zam

#endif // ZAM_SEM_MEMORY_H
