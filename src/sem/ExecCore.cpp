//===- ExecCore.cpp - The shared timing-IR execution core -----------------===//

#include "sem/ExecCore.h"

#include "support/Diagnostics.h"

using namespace zam;

int64_t zam::evalIrExpr(const IrExpr &E, const Memory &M, MachineEnv &Env,
                        Label Read, Label Write, const CostModel &Costs,
                        uint64_t &Cycles, CostCursor *Cur, int64_t *Stack) {
  std::vector<int64_t> Local;
  if (!Stack) {
    Local.resize(E.MaxDepth ? E.MaxDepth : 1);
    Stack = Local.data();
  }
  // The cursor narrows to each operation's effective location only for its
  // own hardware access; the caller's location is restored on return (the
  // LocScope discipline of the old AST walker).
  SourceLoc Saved;
  if (Cur)
    Saved = Cur->Loc;

  int64_t *SP = Stack;
  for (const ExprOp &Op : E.Ops) {
    switch (Op.K) {
    case ExprOp::Kind::PushConst: // Immediate operand: free.
      *SP++ = Op.Const;
      break;
    case ExprOp::Kind::LoadVar:
      if (Cur)
        Cur->Loc = Op.Loc;
      Cycles += Env.dataAccess(Op.Base, /*IsStore=*/false, Read, Write);
      *SP++ = M.slotAt(Op.Slot).Data[0];
      break;
    case ExprOp::Kind::LoadElem: {
      uint64_t W = Memory::wrapRaw(SP[-1], Op.ElemCount);
      if (Cur)
        Cur->Loc = Op.Loc;
      Cycles += Env.dataAccess(Op.Base + W * 8, /*IsStore=*/false, Read,
                               Write);
      Cycles += Costs.AluOp; // Address computation.
      SP[-1] = M.slotAt(Op.Slot).Data[W];
      break;
    }
    case ExprOp::Kind::Bin: {
      int64_t R = *--SP;
      SP[-1] = applyBinOp(Op.BinOp, SP[-1], R);
      Cycles += Costs.AluOp;
      break;
    }
    case ExprOp::Kind::Un:
      SP[-1] = applyUnOp(Op.UnOp, SP[-1]);
      Cycles += Costs.AluOp;
      break;
    }
  }
  if (Cur)
    Cur->Loc = Saved;
  return SP[-1];
}

ExecCore::ExecCore(const IrProgram &IR, const Program &P, Memory InitM,
                   MachineEnv &Env, const InterpreterOptions &Opts)
    : P(P), Env(Env), Opts(Opts), M(std::move(InitM)),
      OwnMitState(P.lattice(), this->Opts.Mitigation.base(), Opts.Penalty),
      MitState(Opts.SharedMitState ? *Opts.SharedMitState : OwnMitState),
      Code(IR.Instrs.data()),
      TrackCursor(Opts.RecordMisses || Opts.Provenance != nullptr) {
  Stack.resize(IR.MaxEvalDepth ? IR.MaxEvalDepth : 1);
  Frames.reserve(IR.MaxMitDepth);
  if (Opts.Probe)
    Opts.Probe->onProgram(IR);
  if (Code[PC].K == IrInstr::Op::Halt) {
    Halted = true;
    finalize();
  }
}

void ExecCore::onAccess(const HwAccess &Access) {
  if (Opts.Provenance)
    Opts.Provenance->chargeAccess(Cur, Access);
  if (!Opts.RecordMisses || (!Access.TlbMiss && !Access.L1Miss))
    return;
  AccessSample S;
  S.A = Access.A;
  S.Time = G; // Clock at the start of the enclosing step.
  S.Cycles = Access.Cycles;
  S.IsData = Access.IsData;
  S.IsStore = Access.IsStore;
  S.TlbMiss = Access.TlbMiss;
  S.L1Miss = Access.L1Miss;
  S.L2Miss = Access.L2Miss;
  S.Line = Cur.Loc.Line;
  T.Misses.push_back(S);
}

void ExecCore::record(const MemorySlot &S, bool IsArray, uint64_t Index,
                      int64_t Value) {
  AssignEvent E;
  E.Var = S.Name;
  E.VarLabel = S.SecLabel;
  E.IsArrayStore = IsArray;
  E.ElemIndex = Index;
  E.Value = Value;
  E.Time = G;
  T.Events.push_back(std::move(E));
}

void ExecCore::execInstr(const IrInstr &I) {
  // Attribution: every transition moves the cursor to its instruction's
  // source location before any of its costs (including the I-fetch).
  if (TrackCursor)
    Cur.Loc = I.Loc;
  if (Opts.Probe)
    Opts.Probe->onDispatch(PC);

  switch (I.K) {
  case IrInstr::Op::Skip: {
    uint64_t Cycles = stepBase(I);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    PC = I.Next;
    return;
  }

  case IrInstr::Op::Assign: {
    ++T.Ops.Assignments;
    uint64_t Cycles = stepBase(I);
    int64_t V = eval(I.E0, I, Cycles);
    Cycles += Env.dataAccess(I.SlotBase, /*IsStore=*/true, I.Read, I.Write);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    MemorySlot &S = M.slotAt(I.Slot);
    S.Data[0] = V;
    record(S, false, 0, V);
    PC = I.Next;
    return;
  }

  case IrInstr::Op::ArrayAssign: {
    ++T.Ops.Assignments;
    uint64_t Cycles = stepBase(I);
    int64_t Index = eval(I.E0, I, Cycles);
    int64_t V = eval(I.E1, I, Cycles);
    Cycles += Opts.Costs.AluOp; // Address computation.
    uint64_t W = Memory::wrapRaw(Index, I.ElemCount);
    Cycles += Env.dataAccess(I.SlotBase + W * 8, /*IsStore=*/true, I.Read,
                             I.Write);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    MemorySlot &S = M.slotAt(I.Slot);
    S.Data[W] = V;
    record(S, true, W, V);
    PC = I.Next;
    return;
  }

  case IrInstr::Op::Branch: {
    ++T.Ops.Branches;
    uint64_t Cycles = stepBase(I) + Opts.Costs.Branch;
    int64_t Guard = eval(I.E0, I, Cycles);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    if (Opts.Probe)
      Opts.Probe->onBranch(PC, Guard != 0);
    PC = Guard != 0 ? I.Target : I.Next;
    return;
  }

  case IrInstr::Op::Sleep: {
    // Sleep is a calibrated timer, not a fetched instruction: with a
    // literal argument it consumes exactly max(n, 0) cycles (Property 4).
    uint64_t Cycles = 0;
    int64_t N = eval(I.E0, I, Cycles);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    if (N > 0) {
      charge(CycleKind::Sleep, static_cast<uint64_t>(N));
      G += static_cast<uint64_t>(N);
    }
    PC = I.Next;
    return;
  }

  case IrInstr::Op::MitEnter: {
    ++T.Ops.MitigateEntries;
    uint64_t Cycles = stepBase(I);
    int64_t N = eval(I.E0, I, Cycles);
    // The entry step belongs to the enclosing window; the site opens with
    // the body.
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    Frames.push_back({I.Eta, N, I.MitLevel, I.PcLabel, G,
                      I.Policy ? I.Policy : &Opts.Mitigation.base()});
    Cur.Site = I.Eta;
    PC = I.Next;
    return;
  }

  case IrInstr::Op::MitEnd: {
    // The paper's MitigateEnd continuation: no fetch, no base cost — only
    // the update rule and the padding to the final prediction.
    const MitFrame &F = Frames.back();
    const uint64_t Elapsed = G - F.Start;
    const unsigned MissesBefore = Opts.Probe ? MitState.misses(F.Level) : 0;
    MitigationState::Outcome Out =
        MitState.settle(F.Estimate, F.Level, Elapsed, *F.Policy);
    G = F.Start + Out.Duration;
    if (Opts.Probe)
      Opts.Probe->onSettle(F.Eta, MitState.misses(F.Level) - MissesBefore);

    MitigateRecord R;
    R.Eta = F.Eta;
    R.PcLabel = F.Pc;
    R.Level = F.Level;
    R.Estimate = F.Estimate;
    R.Start = F.Start;
    R.Duration = Out.Duration;
    R.BodyTime = Elapsed;
    R.Mispredicted = Out.Mispredicted;
    R.MissesAfter = MitState.misses(R.Level);
    R.Line = I.Loc.Line;
    T.Mitigations.push_back(R);
    if (Opts.OnMitigateWindow)
      Opts.OnMitigateWindow(T.Mitigations.back());
    // Padding attributes to the window's own site at the mitigate line,
    // then the window closes and the site pops.
    Cur.Site = F.Eta;
    if (Out.Duration > Elapsed)
      charge(CycleKind::Pad, Out.Duration - Elapsed);
    if (Opts.Provenance)
      Opts.Provenance->closeWindow(Cur, T.Mitigations.back());
    Frames.pop_back();
    Cur.Site = Frames.empty() ? CostCursor::kNoSite : Frames.back().Eta;
    PC = I.Next;
    return;
  }

  case IrInstr::Op::Halt:
    return; // Unreachable: step() never executes Halt.
  }
  reportFatalError("unexpected instruction in IR execution");
}

void ExecCore::step() {
  if (Halted)
    return;
  if (++T.Steps > Opts.StepLimit) {
    T.HitStepLimit = true;
    Halted = true;
    finalize();
    return;
  }
  execInstr(Code[PC]);
  if (Code[PC].K == IrInstr::Op::Halt) {
    Halted = true;
    finalize();
  }
}

void ExecCore::run() {
  while (!Halted)
    step();
}

void ExecCore::finalize() {
  T.FinalTime = G;
  T.FinalMissTable.clear();
  for (Label L : P.lattice().allLabels())
    T.FinalMissTable.push_back(MitState.misses(L));
}
