//===- ExecCore.cpp - The shared LIR execution core -----------------------===//

#include "sem/ExecCore.h"

#include "ir/Fusion.h"
#include "support/Diagnostics.h"

using namespace zam;

// Computed-goto dispatch needs the GNU labels-as-values extension; MSVC
// (and any build configured with -DZAM_THREADED_DISPATCH=OFF) uses the
// portable switch loop. Both loops are always compiled and behave
// identically; this only selects what run() can pick.
#if defined(ZAM_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define ZAM_HAVE_THREADED 1
#else
#define ZAM_HAVE_THREADED 0
#endif

bool zam::threadedDispatchAvailable() { return ZAM_HAVE_THREADED != 0; }

int64_t zam::evalIrExpr(const IrExpr &E, const Memory &M, MachineEnv &Env,
                        Label Read, Label Write, const CostModel &Costs,
                        uint64_t &Cycles, CostCursor *Cur, int64_t *Stack) {
  std::vector<int64_t> Local;
  if (!Stack) {
    Local.resize(E.MaxDepth ? E.MaxDepth : 1);
    Stack = Local.data();
  }
  // The cursor narrows to each operation's effective location only for its
  // own hardware access; the caller's location is restored on return (the
  // LocScope discipline of the old AST walker).
  SourceLoc Saved;
  if (Cur)
    Saved = Cur->Loc;

  int64_t *SP = Stack;
  for (const ExprOp &Op : E.Ops) {
    switch (Op.K) {
    case ExprOp::Kind::PushConst: // Immediate operand: free.
      *SP++ = Op.Const;
      break;
    case ExprOp::Kind::LoadVar:
      if (Cur)
        Cur->Loc = Op.Loc;
      Cycles += Env.dataAccess(Op.Base, /*IsStore=*/false, Read, Write);
      *SP++ = M.slotAt(Op.Slot).Data[0];
      break;
    case ExprOp::Kind::LoadElem: {
      uint64_t W = Memory::wrapRaw(SP[-1], Op.ElemCount);
      if (Cur)
        Cur->Loc = Op.Loc;
      Cycles += Env.dataAccess(Op.Base + W * 8, /*IsStore=*/false, Read,
                               Write);
      Cycles += Costs.AluOp; // Address computation.
      SP[-1] = M.slotAt(Op.Slot).Data[W];
      break;
    }
    case ExprOp::Kind::Bin: {
      int64_t R = *--SP;
      SP[-1] = applyBinOp(Op.BinOp, SP[-1], R);
      Cycles += Costs.AluOp;
      break;
    }
    case ExprOp::Kind::Un:
      SP[-1] = applyUnOp(Op.UnOp, SP[-1]);
      Cycles += Costs.AluOp;
      break;
    }
  }
  if (Cur)
    Cur->Loc = Saved;
  return SP[-1];
}

std::unique_ptr<LirProgram> zam::compileLir(const IrProgram &IR,
                                            const InterpreterOptions &Opts) {
  auto L = std::make_unique<LirProgram>(lowerToLir(IR));
  if (Opts.Fusion)
    planFusion(*L, Opts.FuseProfile ? *Opts.FuseProfile
                                    : FusionProfile::defaultProfile());
  return L;
}

ExecCore::ExecCore(const LirProgram &L, const Program &P, Memory InitM,
                   MachineEnv &Env, const InterpreterOptions &Opts)
    : P(P), Env(Env), Opts(Opts), Probe(this->Opts.Probe),
      Prov(this->Opts.Provenance), BaseStepCost(this->Opts.Costs.BaseStep),
      AluCost(this->Opts.Costs.AluOp), StepLimit(this->Opts.StepLimit),
      M(std::move(InitM)),
      OwnMitState(P.lattice(), this->Opts.Mitigation.base(), Opts.Penalty),
      MitState(Opts.SharedMitState ? *Opts.SharedMitState : OwnMitState),
      Code(L.Insts.data()), Uops(L.Uops.data()), Fused(L.FusedWith.data()),
      TrackCursor(Opts.RecordMisses || Opts.Provenance != nullptr),
      UseThreaded(ZAM_HAVE_THREADED != 0 &&
                  Opts.Dispatch != DispatchMode::Switch) {
  Regs.resize(L.NumRegs ? L.NumRegs : 1);
  SlotData.resize(M.slotCount());
  for (size_t I = 0; I != SlotData.size(); ++I)
    SlotData[I] = M.slotAt(I).Data.data();
  if (L.IR) {
    Frames.reserve(L.IR->MaxMitDepth);
    if (Probe)
      Probe->onProgram(*L.IR);
  }
  if (Code[PC].K == IrInstr::Op::Halt) {
    Halted = true;
    finalize();
  }
}

void ExecCore::onAccess(const HwAccess &Access) {
  if (Prov)
    Prov->chargeAccess(Cur, Access);
  if (!Opts.RecordMisses || (!Access.TlbMiss && !Access.L1Miss))
    return;
  AccessSample S;
  S.A = Access.A;
  S.Time = G; // Clock at the start of the enclosing step.
  S.Cycles = Access.Cycles;
  S.IsData = Access.IsData;
  S.IsStore = Access.IsStore;
  S.TlbMiss = Access.TlbMiss;
  S.L1Miss = Access.L1Miss;
  S.L2Miss = Access.L2Miss;
  S.Line = Cur.Loc.Line;
  T.Misses.push_back(S);
}

void ExecCore::record(const MemorySlot &S, bool IsArray, uint64_t Index,
                      int64_t Value) {
  // AssignEvent carries a string, so vector growth moves elements one by
  // one; seeding the capacity keeps loop-heavy runs from paying ~2N moves
  // across the doubling schedule.
  if (T.Events.size() == T.Events.capacity())
    T.Events.reserve(T.Events.capacity() < 512 ? 512
                                               : T.Events.capacity() * 2);
  AssignEvent &E = T.Events.emplace_back();
  E.Var = S.Name;
  E.VarLabel = S.SecLabel;
  E.IsArrayStore = IsArray;
  E.ElemIndex = Index;
  E.Value = Value;
  E.Time = G;
}

int64_t ExecCore::evalSpan(const LirInst &I, uint32_t U, uint32_t N,
                           uint64_t &Cycles) {
  int64_t *R = Regs.data();
  const LirUop *Op = Uops + U;
  const LirUop *const End = Op + N;
  uint16_t Result = 0;
  for (; Op != End; ++Op) {
    switch (Op->Kind) {
    case LirUop::K::Const: // Immediate operand: free.
      R[Op->Dst] = Op->Imm;
      break;
    case LirUop::K::Var:
      if (TrackCursor)
        Cur.Loc = Op->Loc;
      Cycles += Env.dataAccess(Op->Base, /*IsStore=*/false, I.Read, I.Write);
      R[Op->Dst] = SlotData[Op->Slot][0];
      break;
    case LirUop::K::Elem: {
      const uint64_t W = Memory::wrapRaw(R[Op->Dst], Op->Mod);
      if (TrackCursor)
        Cur.Loc = Op->Loc;
      Cycles += Env.dataAccess(Op->Base + W * 8, /*IsStore=*/false, I.Read,
                               I.Write);
      Cycles += AluCost; // Address computation.
      R[Op->Dst] = SlotData[Op->Slot][W];
      break;
    }
    case LirUop::K::Bin:
      R[Op->Dst] = applyBinOp(static_cast<BinOpKind>(Op->Op2), R[Op->Dst],
                              R[Op->Dst + 1]);
      Cycles += AluCost;
      break;
    case LirUop::K::Un:
      R[Op->Dst] = applyUnOp(static_cast<UnOpKind>(Op->Op2), R[Op->Dst]);
      Cycles += AluCost;
      break;
    }
    Result = Op->Dst;
  }
  // Restore the cursor to the command before any post-evaluation costs
  // (store access, step charge) — the LocScope discipline of evalIrExpr.
  if (TrackCursor)
    Cur.Loc = I.Loc;
  return R[Result];
}

void ExecCore::execSkip(const LirInst &I) {
  head(I);
  const uint64_t Cycles = stepBase(I);
  charge(CycleKind::Step, Cycles);
  G += Cycles;
  PC = I.Next;
}

void ExecCore::execAssign(const LirInst &I) {
  head(I);
  ++T.Ops.Assignments;
  uint64_t Cycles = stepBase(I);
  const int64_t V = evalSpan(I, I.U0, I.N0, Cycles);
  Cycles += Env.dataAccess(I.SlotBase, /*IsStore=*/true, I.Read, I.Write);
  charge(CycleKind::Step, Cycles);
  G += Cycles;
  MemorySlot &S = M.slotAt(I.Slot);
  S.Data[0] = V;
  record(S, false, 0, V);
  PC = I.Next;
}

void ExecCore::execStore(const LirInst &I) {
  head(I);
  ++T.Ops.Assignments;
  uint64_t Cycles = stepBase(I);
  const int64_t Index = evalSpan(I, I.U0, I.N0, Cycles);
  const int64_t V = evalSpan(I, I.U1, I.N1, Cycles);
  Cycles += AluCost; // Address computation.
  const uint64_t W = Memory::wrapRaw(Index, I.ElemCount);
  Cycles += Env.dataAccess(I.SlotBase + W * 8, /*IsStore=*/true, I.Read,
                           I.Write);
  charge(CycleKind::Step, Cycles);
  G += Cycles;
  MemorySlot &S = M.slotAt(I.Slot);
  S.Data[W] = V;
  record(S, true, W, V);
  PC = I.Next;
}

void ExecCore::execBranch(const LirInst &I) {
  head(I);
  ++T.Ops.Branches;
  uint64_t Cycles = stepBase(I) + Opts.Costs.Branch;
  const int64_t Guard = evalSpan(I, I.U0, I.N0, Cycles);
  charge(CycleKind::Step, Cycles);
  G += Cycles;
  if (Probe)
    Probe->onBranch(PC, Guard != 0);
  PC = Guard != 0 ? I.Target : I.Next;
}

void ExecCore::execSleep(const LirInst &I) {
  head(I);
  // Sleep is a calibrated timer, not a fetched instruction: with a
  // literal argument it consumes exactly max(n, 0) cycles (Property 4).
  uint64_t Cycles = 0;
  const int64_t N = evalSpan(I, I.U0, I.N0, Cycles);
  charge(CycleKind::Step, Cycles);
  G += Cycles;
  if (N > 0) {
    charge(CycleKind::Sleep, static_cast<uint64_t>(N));
    G += static_cast<uint64_t>(N);
  }
  PC = I.Next;
}

void ExecCore::execMitEnter(const LirInst &I) {
  head(I);
  ++T.Ops.MitigateEntries;
  uint64_t Cycles = stepBase(I);
  const int64_t N = evalSpan(I, I.U0, I.N0, Cycles);
  // The entry step belongs to the enclosing window; the site opens with
  // the body.
  charge(CycleKind::Step, Cycles);
  G += Cycles;
  Frames.push_back({I.Eta, N, I.MitLevel, I.PcLabel, G,
                    I.Policy ? I.Policy : &Opts.Mitigation.base()});
  Cur.Site = I.Eta;
  PC = I.Next;
}

void ExecCore::execMitEnd(const LirInst &I) {
  head(I);
  // The paper's MitigateEnd continuation: no fetch, no base cost — only
  // the update rule and the padding to the final prediction.
  const MitFrame &F = Frames.back();
  const uint64_t Elapsed = G - F.Start;
  const unsigned MissesBefore = Probe ? MitState.misses(F.Level) : 0;
  MitigationState::Outcome Out =
      MitState.settle(F.Estimate, F.Level, Elapsed, *F.Policy);
  G = F.Start + Out.Duration;
  if (Probe)
    Probe->onSettle(F.Eta, MitState.misses(F.Level) - MissesBefore);

  MitigateRecord R;
  R.Eta = F.Eta;
  R.PcLabel = F.Pc;
  R.Level = F.Level;
  R.Estimate = F.Estimate;
  R.Start = F.Start;
  R.Duration = Out.Duration;
  R.BodyTime = Elapsed;
  R.Mispredicted = Out.Mispredicted;
  R.MissesAfter = MitState.misses(R.Level);
  R.Line = I.Loc.Line;
  T.Mitigations.push_back(R);
  if (Opts.OnMitigateWindow)
    Opts.OnMitigateWindow(T.Mitigations.back());
  // Padding attributes to the window's own site at the mitigate line,
  // then the window closes and the site pops.
  Cur.Site = F.Eta;
  if (Out.Duration > Elapsed)
    charge(CycleKind::Pad, Out.Duration - Elapsed);
  if (Prov)
    Prov->closeWindow(Cur, T.Mitigations.back());
  Frames.pop_back();
  Cur.Site = Frames.empty() ? CostCursor::kNoSite : Frames.back().Eta;
  PC = I.Next;
}

void ExecCore::execInstr(const LirInst &I) {
  switch (I.K) {
  case IrInstr::Op::Skip:
    execSkip(I);
    return;
  case IrInstr::Op::Assign:
    execAssign(I);
    return;
  case IrInstr::Op::ArrayAssign:
    execStore(I);
    return;
  case IrInstr::Op::Branch:
    execBranch(I);
    return;
  case IrInstr::Op::Sleep:
    execSleep(I);
    return;
  case IrInstr::Op::MitEnter:
    execMitEnter(I);
    return;
  case IrInstr::Op::MitEnd:
    execMitEnd(I);
    return;
  case IrInstr::Op::Halt:
    return; // Unreachable: step()/run() never execute Halt.
  }
  reportFatalError("unexpected instruction in LIR execution");
}

void ExecCore::step() {
  if (Halted)
    return;
  if (++T.Steps > StepLimit) {
    T.HitStepLimit = true;
    Halted = true;
    finalize();
    return;
  }
  execInstr(Code[PC]);
  if (Code[PC].K == IrInstr::Op::Halt) {
    Halted = true;
    finalize();
  }
}

void ExecCore::run() {
  if (UseThreaded)
    runThreaded();
  else
    runSwitch();
}

// Both loops follow the exact transition discipline of step(): increment
// and check the step counter, execute one logical instruction, stop when
// the pc lands on Halt — with two additions that change no observable:
// fused heads fire one onFused callback and execute both constituents in
// one loop iteration (the limit check still sits between them), and the
// loop exits once instead of re-checking Halted per transition.

void ExecCore::runSwitch() {
  if (Halted)
    return;
  for (;;) {
    if (++T.Steps > StepLimit) {
      T.HitStepLimit = true;
      break;
    }
    const uint32_t Second = Fused[PC];
    if (Second != LirProgram::kNoFuse) {
      if (Probe)
        Probe->onFused(PC, Second);
      // The head is straightline (planFusion guarantees it), so after it
      // executes the pc sits exactly on Second.
      execInstr(Code[PC]);
      if (++T.Steps > StepLimit) {
        T.HitStepLimit = true;
        break;
      }
      execInstr(Code[PC]);
    } else {
      execInstr(Code[PC]);
    }
    if (Code[PC].K == IrInstr::Op::Halt)
      break;
  }
  Halted = true;
  finalize();
}

void ExecCore::runThreaded() {
#if ZAM_HAVE_THREADED
  if (Halted)
    return;
  // Indexed by IrInstr::Op. Halt's slot is the exit path, though the
  // dispatch macro peels it off before indexing (a fused head can never
  // be followed by Halt, so only the macro needs the test).
  static const void *const Handlers[] = {
      &&L_Skip, &&L_Assign, &&L_Store,    &&L_Branch,
      &&L_Sleep, &&L_MitEnter, &&L_MitEnd, &&L_Halt};
#define ZAM_DISPATCH()                                                         \
  do {                                                                         \
    if (Code[PC].K == IrInstr::Op::Halt)                                       \
      goto L_Halt;                                                             \
    if (++T.Steps > StepLimit)                                            \
      goto L_Limit;                                                            \
    if (Fused[PC] != LirProgram::kNoFuse)                                      \
      goto L_Fused;                                                            \
    goto *Handlers[static_cast<uint8_t>(Code[PC].K)];                          \
  } while (0)
  ZAM_DISPATCH();
L_Skip:
  execSkip(Code[PC]);
  ZAM_DISPATCH();
L_Assign:
  execAssign(Code[PC]);
  ZAM_DISPATCH();
L_Store:
  execStore(Code[PC]);
  ZAM_DISPATCH();
L_Branch:
  execBranch(Code[PC]);
  ZAM_DISPATCH();
L_Sleep:
  execSleep(Code[PC]);
  ZAM_DISPATCH();
L_MitEnter:
  execMitEnter(Code[PC]);
  ZAM_DISPATCH();
L_MitEnd:
  execMitEnd(Code[PC]);
  ZAM_DISPATCH();
L_Fused:
  if (Probe)
    Probe->onFused(PC, Fused[PC]);
  execInstr(Code[PC]);
  if (++T.Steps > StepLimit)
    goto L_Limit;
  execInstr(Code[PC]);
  ZAM_DISPATCH();
L_Limit:
  T.HitStepLimit = true;
L_Halt:
  Halted = true;
  finalize();
#undef ZAM_DISPATCH
#else
  runSwitch();
#endif
}

void ExecCore::finalize() {
  T.FinalTime = G;
  T.FinalMissTable.clear();
  for (Label L : P.lattice().allLabels())
    T.FinalMissTable.push_back(MitState.misses(L));
}
