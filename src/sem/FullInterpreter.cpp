//===- FullInterpreter.cpp ------------------------------------------------===//

#include "sem/FullInterpreter.h"

#include "sem/Eval.h"
#include "sem/StaticLabels.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

using namespace zam;

/// Verifies that every non-Seq command carries complete timing labels.
static void checkLabelsComplete(const Cmd &C) {
  switch (C.kind()) {
  case Cmd::Kind::Seq: {
    const auto &S = cast<SeqCmd>(C);
    checkLabelsComplete(S.first());
    checkLabelsComplete(S.second());
    return;
  }
  case Cmd::Kind::If: {
    if (!C.labels().complete())
      reportFatalError("command lacks timing labels; run label inference");
    const auto &I = cast<IfCmd>(C);
    checkLabelsComplete(I.thenCmd());
    checkLabelsComplete(I.elseCmd());
    return;
  }
  case Cmd::Kind::While:
    if (!C.labels().complete())
      reportFatalError("command lacks timing labels; run label inference");
    checkLabelsComplete(cast<WhileCmd>(C).body());
    return;
  case Cmd::Kind::Mitigate:
    if (!C.labels().complete())
      reportFatalError("command lacks timing labels; run label inference");
    checkLabelsComplete(cast<MitigateCmd>(C).body());
    return;
  case Cmd::Kind::MitigateEnd:
    reportFatalError("MitigateEnd must not appear in a source program");
  default:
    if (!C.labels().complete())
      reportFatalError("command lacks timing labels; run label inference");
    return;
  }
}

FullInterpreter::FullInterpreter(const Program &P, MachineEnv &Env,
                                 InterpreterOptions Opts)
    : P(P), Env(Env), Opts(Opts),
      Scheme(Opts.Scheme ? *Opts.Scheme : fastDoublingScheme()),
      M(Memory::fromProgram(P, Opts.Costs.DataBase)),
      OwnMitState(P.lattice(), Scheme, Opts.Penalty),
      MitState(Opts.SharedMitState ? *Opts.SharedMitState : OwnMitState),
      PcLabels(computePcLabels(P)) {
  if (!P.hasBody())
    reportFatalError("program has no body");
  checkLabelsComplete(P.body());
}

bool FullInterpreter::budget() {
  if (Stopped)
    return false;
  if (++T.Steps > Opts.StepLimit) {
    Stopped = true;
    T.HitStepLimit = true;
    return false;
  }
  return true;
}

uint64_t FullInterpreter::stepBase(const Cmd &C, Label Read, Label Write) {
  return Opts.Costs.BaseStep +
         Env.fetch(Opts.Costs.codeAddr(C.nodeId()), Read, Write);
}

void FullInterpreter::record(const std::string &Var, bool IsArray,
                             uint64_t Index, int64_t Value) {
  AssignEvent E;
  E.Var = Var;
  E.VarLabel = M.labelOf(Var);
  E.IsArrayStore = IsArray;
  E.ElemIndex = Index;
  E.Value = Value;
  E.Time = G;
  T.Events.push_back(std::move(E));
}

void FullInterpreter::charge(CycleKind K, uint64_t N) {
  if (Opts.Provenance)
    Opts.Provenance->chargeCycles(Cur, K, N);
}

void FullInterpreter::onAccess(const HwAccess &Access) {
  if (Opts.Provenance)
    Opts.Provenance->chargeAccess(Cur, Access);
  if (!Opts.RecordMisses || (!Access.TlbMiss && !Access.L1Miss))
    return;
  AccessSample S;
  S.A = Access.A;
  S.Time = G; // Clock at the start of the enclosing step.
  S.Cycles = Access.Cycles;
  S.IsData = Access.IsData;
  S.IsStore = Access.IsStore;
  S.TlbMiss = Access.TlbMiss;
  S.L1Miss = Access.L1Miss;
  S.L2Miss = Access.L2Miss;
  S.Line = Cur.Loc.Line;
  T.Misses.push_back(S);
}

void FullInterpreter::exec(const Cmd &C) {
  if (Stopped)
    return;

  if (C.kind() == Cmd::Kind::Seq) {
    const auto &S = cast<SeqCmd>(C);
    exec(S.first());
    exec(S.second());
    return;
  }

  if (!budget())
    return;

  // Attribution: every non-Seq command moves the cursor to its own source
  // location before any of its costs (including the fetch inside stepBase)
  // are incurred.
  Cur.Loc = C.loc();

  const Label Er = *C.labels().Read;
  const Label Ew = *C.labels().Write;
  const CostModel &Costs = Opts.Costs;

  switch (C.kind()) {
  case Cmd::Kind::Skip: {
    uint64_t Cycles = stepBase(C, Er, Ew);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    return;
  }

  case Cmd::Kind::Assign: {
    const auto &A = cast<AssignCmd>(C);
    ++T.Ops.Assignments;
    uint64_t Cycles = stepBase(C, Er, Ew);
    int64_t V = evalExprTimed(A.value(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    Cycles += Env.dataAccess(M.addrOf(A.var()), /*IsStore=*/true, Er, Ew);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    M.store(A.var(), V);
    record(A.var(), false, 0, V);
    return;
  }

  case Cmd::Kind::ArrayAssign: {
    const auto &A = cast<ArrayAssignCmd>(C);
    ++T.Ops.Assignments;
    uint64_t Cycles = stepBase(C, Er, Ew);
    int64_t Index =
        evalExprTimed(A.index(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    int64_t V = evalExprTimed(A.value(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    Cycles += Costs.AluOp; // Address computation.
    Cycles += Env.dataAccess(M.addrOfElem(A.array(), Index), /*IsStore=*/true,
                             Er, Ew);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    uint64_t Wrapped = M.wrapIndex(A.array(), Index);
    M.storeElem(A.array(), Index, V);
    record(A.array(), true, Wrapped, V);
    return;
  }

  case Cmd::Kind::If: {
    const auto &I = cast<IfCmd>(C);
    ++T.Ops.Branches;
    uint64_t Cycles = stepBase(C, Er, Ew) + Costs.Branch;
    int64_t Guard =
        evalExprTimed(I.cond(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    exec(Guard != 0 ? I.thenCmd() : I.elseCmd());
    return;
  }

  case Cmd::Kind::While: {
    const auto &W = cast<WhileCmd>(C);
    for (;;) {
      ++T.Ops.Branches;
      uint64_t Cycles = stepBase(C, Er, Ew) + Costs.Branch;
      int64_t Guard =
          evalExprTimed(W.cond(), M, Env, Er, Ew, Costs, Cycles, &Cur);
      charge(CycleKind::Step, Cycles);
      G += Cycles;
      if (Guard == 0)
        return;
      exec(W.body());
      if (Stopped || !budget())
        return;
      Cur.Loc = C.loc(); // Back at the guard for the next iteration.
    }
  }

  case Cmd::Kind::Sleep: {
    // Sleep is a calibrated timer, not a fetched instruction: with a
    // literal argument it consumes exactly max(n, 0) cycles (Property 4).
    // Only the argument's own evaluation (variable loads) costs extra.
    const auto &S = cast<SleepCmd>(C);
    uint64_t Cycles = 0;
    int64_t N =
        evalExprTimed(S.duration(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    if (N > 0) { // Property 4: sleep n consumes exactly max(n, 0) cycles.
      charge(CycleKind::Sleep, static_cast<uint64_t>(N));
      G += static_cast<uint64_t>(N);
    }
    return;
  }

  case Cmd::Kind::Mitigate: {
    const auto &Mit = cast<MitigateCmd>(C);
    ++T.Ops.MitigateEntries;
    uint64_t Cycles = stepBase(C, Er, Ew);
    int64_t N = evalExprTimed(Mit.initialEstimate(), M, Env, Er, Ew, Costs,
                              Cycles, &Cur);
    // The entry step belongs to the enclosing window (the site stack is
    // pushed only for the body).
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    const uint64_t Start = G;

    const unsigned SavedSite = Cur.Site;
    Cur.Site = Mit.mitigateId();
    exec(Mit.body());
    if (Stopped || !budget()) { // budget(): the MitigateEnd padding step.
      Cur.Site = SavedSite;
      return;
    }

    const uint64_t Elapsed = G - Start;
    MitigationState::Outcome Out = MitState.settle(N, Mit.mitLevel(), Elapsed);
    G = Start + Out.Duration;

    MitigateRecord R;
    R.Eta = Mit.mitigateId();
    auto PcIt = PcLabels.find(C.nodeId());
    R.PcLabel = PcIt != PcLabels.end() ? PcIt->second : P.lattice().bottom();
    R.Level = Mit.mitLevel();
    R.Estimate = N;
    R.Start = Start;
    R.Duration = Out.Duration;
    R.BodyTime = Elapsed;
    R.Mispredicted = Out.Mispredicted;
    R.MissesAfter = MitState.misses(R.Level);
    R.Line = C.loc().Line;
    T.Mitigations.push_back(R);
    if (Opts.OnMitigateWindow)
      Opts.OnMitigateWindow(T.Mitigations.back());
    // Padding is charged at the mitigate command itself, inside its own
    // window (Cur.Site == η), then the window closes and the site pops.
    Cur.Loc = C.loc();
    if (Out.Duration > Elapsed)
      charge(CycleKind::Pad, Out.Duration - Elapsed);
    if (Opts.Provenance)
      Opts.Provenance->closeWindow(Cur, T.Mitigations.back());
    Cur.Site = SavedSite;
    return;
  }

  case Cmd::Kind::Seq:
  case Cmd::Kind::MitigateEnd:
    reportFatalError("unexpected command kind in big-step execution");
  }
}

RunResult FullInterpreter::run() {
  if (Consumed)
    reportFatalError("FullInterpreter::run() called twice");
  Consumed = true;
  HwObserver *Prior = nullptr;
  const bool Observe = Opts.RecordMisses || Opts.Provenance;
  if (Observe) {
    Prior = Env.observer();
    Env.setObserver(this);
  }
  exec(P.body());
  if (Observe)
    Env.setObserver(Prior);
  T.FinalTime = G;
  for (Label L : P.lattice().allLabels())
    T.FinalMissTable.push_back(MitState.misses(L));
  RunResult R;
  R.FinalMemory = std::move(M);
  R.T = std::move(T);
  R.Hw = Env.stats();
  return R;
}

RunResult zam::runFull(const Program &P, MachineEnv &Env,
                       InterpreterOptions Opts) {
  FullInterpreter I(P, Env, Opts);
  return I.run();
}

RunResult zam::runFull(const Program &P, MachineEnv &Env,
                       const std::function<void(Memory &)> &Prepare,
                       InterpreterOptions Opts) {
  FullInterpreter I(P, Env, Opts);
  if (Prepare)
    Prepare(I.memory());
  return I.run();
}
