//===- FullInterpreter.cpp - Run-to-completion IR driver ------------------===//

#include "sem/FullInterpreter.h"

#include "ir/Lowering.h"
#include "sem/ExecCore.h"
#include "support/Diagnostics.h"

using namespace zam;

FullInterpreter::FullInterpreter(const Program &P, MachineEnv &Env,
                                 InterpreterOptions Opts)
    : Env(Env), Opts(Opts),
      IR(std::make_unique<IrProgram>(
          lowerProgram(P, Opts.Costs, Opts.Mitigation))),
      LIR(compileLir(*IR, Opts)),
      Core(std::make_unique<ExecCore>(
          *LIR, P, Memory::fromProgram(P, Opts.Costs.DataBase), Env, Opts)) {}

FullInterpreter::~FullInterpreter() = default;

Memory &FullInterpreter::memory() { return Core->memory(); }

uint64_t FullInterpreter::clock() const { return Core->clock(); }

RunResult FullInterpreter::run() {
  if (Consumed)
    reportFatalError("FullInterpreter::run() called twice");
  Consumed = true;

  // The core doubles as the hardware observer, but installing it costs a
  // virtual call per access — only pay when someone listens.
  const bool Observe = Opts.RecordMisses || Opts.Provenance != nullptr;
  HwObserver *Prior = nullptr;
  if (Observe) {
    Prior = Env.observer();
    Env.setObserver(Core.get());
  }
  Core->run();
  if (Observe)
    Env.setObserver(Prior);

  RunResult R;
  R.FinalMemory = std::move(Core->memory());
  R.T = std::move(Core->trace());
  R.Hw = Env.stats();
  return R;
}

RunResult zam::runFull(const Program &P, MachineEnv &Env,
                       InterpreterOptions Opts) {
  FullInterpreter I(P, Env, Opts);
  return I.run();
}

RunResult zam::runFull(const Program &P, MachineEnv &Env,
                       const std::function<void(Memory &)> &Prepare,
                       InterpreterOptions Opts) {
  FullInterpreter I(P, Env, Opts);
  if (Prepare)
    Prepare(I.memory());
  return I.run();
}
