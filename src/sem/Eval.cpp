//===- Eval.cpp -----------------------------------------------------------===//

#include "sem/Eval.h"

#include "support/Casting.h"

using namespace zam;

int64_t zam::evalExprPure(const Expr &E, const Memory &M) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(E).value();
  case Expr::Kind::Var:
    return M.load(cast<VarExpr>(E).name());
  case Expr::Kind::ArrayRead: {
    const auto &AR = cast<ArrayReadExpr>(E);
    return M.loadElem(AR.array(), evalExprPure(AR.index(), M));
  }
  case Expr::Kind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    // Both operands are always evaluated: expression timing must not depend
    // on operand *values* beyond what vars1 exposes, so the logical
    // operators do not short-circuit.
    int64_t L = evalExprPure(BO.lhs(), M);
    int64_t R = evalExprPure(BO.rhs(), M);
    return applyBinOp(BO.op(), L, R);
  }
  case Expr::Kind::UnOp: {
    const auto &UO = cast<UnOpExpr>(E);
    return applyUnOp(UO.op(), evalExprPure(UO.sub(), M));
  }
  }
  return 0;
}

