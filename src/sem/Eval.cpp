//===- Eval.cpp -----------------------------------------------------------===//

#include "sem/Eval.h"

#include "support/Casting.h"

using namespace zam;

int64_t zam::applyBinOp(BinOpKind Op, int64_t L, int64_t R) {
  // Arithmetic is performed on the unsigned representations so that
  // overflow wraps (deterministic, no UB).
  uint64_t UL = static_cast<uint64_t>(L);
  uint64_t UR = static_cast<uint64_t>(R);
  switch (Op) {
  case BinOpKind::Add:
    return static_cast<int64_t>(UL + UR);
  case BinOpKind::Sub:
    return static_cast<int64_t>(UL - UR);
  case BinOpKind::Mul:
    return static_cast<int64_t>(UL * UR);
  case BinOpKind::Div:
    if (R == 0)
      return 0;
    if (L == INT64_MIN && R == -1)
      return INT64_MIN; // Wraps.
    return L / R;
  case BinOpKind::Mod:
    if (R == 0)
      return 0;
    if (L == INT64_MIN && R == -1)
      return 0;
    return L % R;
  case BinOpKind::Eq:
    return L == R;
  case BinOpKind::Ne:
    return L != R;
  case BinOpKind::Lt:
    return L < R;
  case BinOpKind::Le:
    return L <= R;
  case BinOpKind::Gt:
    return L > R;
  case BinOpKind::Ge:
    return L >= R;
  case BinOpKind::LogicalAnd:
    return (L != 0) && (R != 0);
  case BinOpKind::LogicalOr:
    return (L != 0) || (R != 0);
  case BinOpKind::BitAnd:
    return static_cast<int64_t>(UL & UR);
  case BinOpKind::BitOr:
    return static_cast<int64_t>(UL | UR);
  case BinOpKind::BitXor:
    return static_cast<int64_t>(UL ^ UR);
  case BinOpKind::Shl:
    return static_cast<int64_t>(UL << (UR & 63));
  case BinOpKind::Shr:
    return static_cast<int64_t>(UL >> (UR & 63));
  }
  return 0;
}

int64_t zam::applyUnOp(UnOpKind Op, int64_t V) {
  switch (Op) {
  case UnOpKind::Neg:
    return static_cast<int64_t>(-static_cast<uint64_t>(V));
  case UnOpKind::LogicalNot:
    return V == 0;
  case UnOpKind::BitNot:
    return ~V;
  }
  return 0;
}

int64_t zam::evalExprPure(const Expr &E, const Memory &M) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(E).value();
  case Expr::Kind::Var:
    return M.load(cast<VarExpr>(E).name());
  case Expr::Kind::ArrayRead: {
    const auto &AR = cast<ArrayReadExpr>(E);
    return M.loadElem(AR.array(), evalExprPure(AR.index(), M));
  }
  case Expr::Kind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    // Both operands are always evaluated: expression timing must not depend
    // on operand *values* beyond what vars1 exposes, so the logical
    // operators do not short-circuit.
    int64_t L = evalExprPure(BO.lhs(), M);
    int64_t R = evalExprPure(BO.rhs(), M);
    return applyBinOp(BO.op(), L, R);
  }
  case Expr::Kind::UnOp: {
    const auto &UO = cast<UnOpExpr>(E);
    return applyUnOp(UO.op(), evalExprPure(UO.sub(), M));
  }
  }
  return 0;
}

namespace {
/// Narrows an attribution cursor to \p E's location (when valid) for one
/// expression node's scope, restoring the enclosing location on exit.
class LocScope {
public:
  LocScope(CostCursor *Cur, const Expr &E) : Cur(Cur) {
    if (Cur) {
      Saved = Cur->Loc;
      if (E.loc().isValid())
        Cur->Loc = E.loc();
    }
  }
  ~LocScope() {
    if (Cur)
      Cur->Loc = Saved;
  }

private:
  CostCursor *Cur;
  SourceLoc Saved;
};
} // namespace

int64_t zam::evalExprTimed(const Expr &E, const Memory &M, MachineEnv &Env,
                           Label Read, Label Write, const CostModel &Costs,
                           uint64_t &Cycles, CostCursor *Cur) {
  LocScope Scope(Cur, E);
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(E).value(); // Immediate operand: free.
  case Expr::Kind::Var: {
    const auto &V = cast<VarExpr>(E);
    Cycles += Env.dataAccess(M.addrOf(V.name()), /*IsStore=*/false, Read, Write);
    return M.load(V.name());
  }
  case Expr::Kind::ArrayRead: {
    const auto &AR = cast<ArrayReadExpr>(E);
    int64_t Index =
        evalExprTimed(AR.index(), M, Env, Read, Write, Costs, Cycles, Cur);
    Cycles += Env.dataAccess(M.addrOfElem(AR.array(), Index), /*IsStore=*/false,
                             Read, Write);
    Cycles += Costs.AluOp; // Address computation.
    return M.loadElem(AR.array(), Index);
  }
  case Expr::Kind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    int64_t L =
        evalExprTimed(BO.lhs(), M, Env, Read, Write, Costs, Cycles, Cur);
    int64_t R =
        evalExprTimed(BO.rhs(), M, Env, Read, Write, Costs, Cycles, Cur);
    Cycles += Costs.AluOp;
    return applyBinOp(BO.op(), L, R);
  }
  case Expr::Kind::UnOp: {
    const auto &UO = cast<UnOpExpr>(E);
    int64_t V =
        evalExprTimed(UO.sub(), M, Env, Read, Write, Costs, Cycles, Cur);
    Cycles += Costs.AluOp;
    return applyUnOp(UO.op(), V);
  }
  }
  return 0;
}
