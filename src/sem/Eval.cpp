//===- Eval.cpp -----------------------------------------------------------===//

#include "sem/Eval.h"

#include "support/Casting.h"

using namespace zam;

int64_t zam::applyBinOp(BinOpKind Op, int64_t L, int64_t R) {
  // Arithmetic is performed on the unsigned representations so that
  // overflow wraps (deterministic, no UB).
  uint64_t UL = static_cast<uint64_t>(L);
  uint64_t UR = static_cast<uint64_t>(R);
  switch (Op) {
  case BinOpKind::Add:
    return static_cast<int64_t>(UL + UR);
  case BinOpKind::Sub:
    return static_cast<int64_t>(UL - UR);
  case BinOpKind::Mul:
    return static_cast<int64_t>(UL * UR);
  case BinOpKind::Div:
    if (R == 0)
      return 0;
    if (L == INT64_MIN && R == -1)
      return INT64_MIN; // Wraps.
    return L / R;
  case BinOpKind::Mod:
    if (R == 0)
      return 0;
    if (L == INT64_MIN && R == -1)
      return 0;
    return L % R;
  case BinOpKind::Eq:
    return L == R;
  case BinOpKind::Ne:
    return L != R;
  case BinOpKind::Lt:
    return L < R;
  case BinOpKind::Le:
    return L <= R;
  case BinOpKind::Gt:
    return L > R;
  case BinOpKind::Ge:
    return L >= R;
  case BinOpKind::LogicalAnd:
    return (L != 0) && (R != 0);
  case BinOpKind::LogicalOr:
    return (L != 0) || (R != 0);
  case BinOpKind::BitAnd:
    return static_cast<int64_t>(UL & UR);
  case BinOpKind::BitOr:
    return static_cast<int64_t>(UL | UR);
  case BinOpKind::BitXor:
    return static_cast<int64_t>(UL ^ UR);
  case BinOpKind::Shl:
    return static_cast<int64_t>(UL << (UR & 63));
  case BinOpKind::Shr:
    return static_cast<int64_t>(UL >> (UR & 63));
  }
  return 0;
}

int64_t zam::applyUnOp(UnOpKind Op, int64_t V) {
  switch (Op) {
  case UnOpKind::Neg:
    return static_cast<int64_t>(-static_cast<uint64_t>(V));
  case UnOpKind::LogicalNot:
    return V == 0;
  case UnOpKind::BitNot:
    return ~V;
  }
  return 0;
}

int64_t zam::evalExprPure(const Expr &E, const Memory &M) {
  switch (E.kind()) {
  case Expr::Kind::IntLit:
    return cast<IntLitExpr>(E).value();
  case Expr::Kind::Var:
    return M.load(cast<VarExpr>(E).name());
  case Expr::Kind::ArrayRead: {
    const auto &AR = cast<ArrayReadExpr>(E);
    return M.loadElem(AR.array(), evalExprPure(AR.index(), M));
  }
  case Expr::Kind::BinOp: {
    const auto &BO = cast<BinOpExpr>(E);
    // Both operands are always evaluated: expression timing must not depend
    // on operand *values* beyond what vars1 exposes, so the logical
    // operators do not short-circuit.
    int64_t L = evalExprPure(BO.lhs(), M);
    int64_t R = evalExprPure(BO.rhs(), M);
    return applyBinOp(BO.op(), L, R);
  }
  case Expr::Kind::UnOp: {
    const auto &UO = cast<UnOpExpr>(E);
    return applyUnOp(UO.op(), evalExprPure(UO.sub(), M));
  }
  }
  return 0;
}

