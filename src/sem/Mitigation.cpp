//===- Mitigation.cpp -----------------------------------------------------===//

#include "sem/Mitigation.h"

#include <algorithm>
#include <cassert>

using namespace zam;

MitigationScheme::~MitigationScheme() = default;

/// Cap on the doubling exponent so predictions cannot overflow: with
/// estimates below 2^20 the prediction stays below 2^60.
static constexpr unsigned MaxDoublings = 40;

uint64_t FastDoublingScheme::predict(uint64_t InitialEstimate,
                                     unsigned Misses) const {
  uint64_t Base = std::max<uint64_t>(InitialEstimate, 1);
  return Base << std::min(Misses, MaxDoublings);
}

uint64_t LinearScheme::predict(uint64_t InitialEstimate,
                               unsigned Misses) const {
  uint64_t Base = std::max<uint64_t>(InitialEstimate, 1);
  return Base * (static_cast<uint64_t>(Misses) + 1);
}

const MitigationScheme &zam::fastDoublingScheme() {
  static const FastDoublingScheme Scheme;
  return Scheme;
}

const MitigationScheme &zam::linearScheme() {
  static const LinearScheme Scheme;
  return Scheme;
}

MitigationState::MitigationState(const SecurityLattice &Lat,
                                 const MitigationScheme &Scheme,
                                 PenaltyPolicy Policy)
    : Lat(&Lat), Scheme(&Scheme), Policy(Policy) {
  Miss.assign(Policy == PenaltyPolicy::PerLevel ? Lat.size() : 1, 0);
}

unsigned &MitigationState::missSlot(Label Level) {
  assert(Lat->contains(Level) && "label from another lattice");
  return Miss[Policy == PenaltyPolicy::PerLevel ? Level.index() : 0];
}

unsigned MitigationState::missSlotValue(Label Level) const {
  assert(Lat->contains(Level) && "label from another lattice");
  return Miss[Policy == PenaltyPolicy::PerLevel ? Level.index() : 0];
}

uint64_t MitigationState::predict(int64_t Estimate, Label Level) const {
  uint64_t N = Estimate > 0 ? static_cast<uint64_t>(Estimate) : 1;
  return Scheme->predict(N, missSlotValue(Level));
}

unsigned MitigationState::misses(Label Level) const {
  return missSlotValue(Level);
}

MitigationState::Outcome MitigationState::settle(int64_t Estimate, Label Level,
                                                 uint64_t Elapsed) {
  Outcome Out;
  unsigned &Count = missSlot(Level);
  // The Fig. 6 update loop: while (time - s_η >= predict(n,ℓ)) Miss[ℓ]++.
  while (Elapsed >= predict(Estimate, Level)) {
    ++Count;
    Out.Mispredicted = true;
    if (Count >= 2 * MaxDoublings)
      break; // Schedule saturated; duration below still covers Elapsed.
  }
  Out.Duration = std::max(predict(Estimate, Level), Elapsed + 1);
  return Out;
}

void MitigationState::reset() {
  std::fill(Miss.begin(), Miss.end(), 0u);
}
