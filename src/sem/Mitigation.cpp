//===- Mitigation.cpp -----------------------------------------------------===//

#include "sem/Mitigation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

using namespace zam;

MitigationPolicy::~MitigationPolicy() = default;

/// Cap on the doubling exponent so predictions cannot overflow: with
/// estimates below 2^20 the prediction stays below 2^60.
static constexpr unsigned MaxDoublings = 40;

uint64_t MitigationPolicy::saturatingMul(uint64_t Base, uint64_t Mult) {
  if (Mult != 0 && Base > kPredictionCap / Mult)
    return kPredictionCap;
  return Base * Mult;
}

uint64_t MitigationPolicy::doublingPredict(uint64_t Base, unsigned Misses) {
  Base = std::max<uint64_t>(Base, 1);
  const unsigned Shift = std::min(Misses, MaxDoublings);
  if (Base >= (kPredictionCap >> Shift))
    return kPredictionCap;
  return Base << Shift;
}

/// The N(T) ladder count for doubling from a resolved base value \p N.
static uint64_t attainableDoublingFrom(uint64_t N, uint64_t ElapsedTime) {
  if (ElapsedTime <= N)
    return 1;
  uint64_t Count = 1;
  // v ≤ T/2 (integer division) ⟺ 2v ≤ T without overflow.
  for (uint64_t V = N; V <= ElapsedTime / 2; V <<= 1)
    ++Count;
  return Count;
}

uint64_t MitigationPolicy::doublingAttainable(int64_t Estimate,
                                              uint64_t ElapsedTime) {
  const uint64_t N = Estimate > 0 ? static_cast<uint64_t>(Estimate) : 1;
  return attainableDoublingFrom(N, ElapsedTime);
}

double MitigationPolicy::windowBoundBits(int64_t Estimate,
                                         uint64_t ElapsedTime) const {
  return std::log2(
      static_cast<double>(attainableValues(Estimate, ElapsedTime)));
}

double MitigationPolicy::penaltyBits(unsigned Misses) const {
  return std::log2(static_cast<double>(Misses) + 1.0);
}

/// The paper's |LeA↑| · log2(K+1) · (1 + log2 T) — the default summary for
/// any doubling-shaped ladder, zero when no relevant window ran.
static double doublingClosedForm(unsigned UpwardClosureSize,
                                 uint64_t RelevantMitigates,
                                 uint64_t ElapsedTime) {
  if (RelevantMitigates == 0)
    return 0;
  double LogK = std::log2(static_cast<double>(RelevantMitigates) + 1.0);
  double LogT =
      ElapsedTime > 0 ? std::log2(static_cast<double>(ElapsedTime)) : 0.0;
  return static_cast<double>(UpwardClosureSize) * LogK * (1.0 + LogT);
}

double MitigationPolicy::closedFormBoundBits(unsigned UpwardClosureSize,
                                             uint64_t RelevantMitigates,
                                             uint64_t ElapsedTime) const {
  return doublingClosedForm(UpwardClosureSize, RelevantMitigates, ElapsedTime);
}

//===----------------------------------------------------------------------===//
// fast-doubling
//===----------------------------------------------------------------------===//

uint64_t FastDoublingPolicy::predict(uint64_t InitialEstimate,
                                     unsigned Misses) const {
  return doublingPredict(InitialEstimate, Misses);
}

uint64_t FastDoublingPolicy::attainableValues(int64_t Estimate,
                                              uint64_t ElapsedTime) const {
  return doublingAttainable(Estimate, ElapsedTime);
}

double FastDoublingPolicy::closedFormBoundBits(unsigned UpwardClosureSize,
                                               uint64_t RelevantMitigates,
                                               uint64_t ElapsedTime) const {
  return doublingClosedForm(UpwardClosureSize, RelevantMitigates, ElapsedTime);
}

//===----------------------------------------------------------------------===//
// linear
//===----------------------------------------------------------------------===//

uint64_t LinearPolicy::predict(uint64_t InitialEstimate,
                               unsigned Misses) const {
  uint64_t Base = std::max<uint64_t>(InitialEstimate, 1);
  return saturatingMul(Base, static_cast<uint64_t>(Misses) + 1);
}

uint64_t LinearPolicy::attainableValues(int64_t Estimate,
                                        uint64_t ElapsedTime) const {
  const uint64_t N = Estimate > 0 ? static_cast<uint64_t>(Estimate) : 1;
  // Values n, 2n, 3n, … ≤ T: exactly ⌊T/n⌋ of them (at least 1).
  if (ElapsedTime <= N)
    return 1;
  return ElapsedTime / N;
}

double LinearPolicy::closedFormBoundBits(unsigned UpwardClosureSize,
                                         uint64_t RelevantMitigates,
                                         uint64_t ElapsedTime) const {
  // A linear ladder admits up to T distinct values by time T (the estimate
  // is unknown to the summary bound), so L(T) = T: the guarantee collapses
  // to |LeA↑|·log2(K+1)·T — the closed form is honest about how little a
  // linear schedule promises, even when the per-window account is modest.
  if (RelevantMitigates == 0)
    return 0;
  double LogK = std::log2(static_cast<double>(RelevantMitigates) + 1.0);
  return static_cast<double>(UpwardClosureSize) * LogK *
         static_cast<double>(ElapsedTime);
}

//===----------------------------------------------------------------------===//
// bucketed
//===----------------------------------------------------------------------===//

BucketedPolicy::BucketedPolicy(unsigned Q) : Q(std::max(Q, 1u)) {}

uint64_t BucketedPolicy::predict(uint64_t InitialEstimate,
                                 unsigned Misses) const {
  const uint64_t Octave = doublingPredict(InitialEstimate, Misses / Q);
  const uint64_t Step = Octave / Q;
  // Octave ≤ kPredictionCap and Step·(Q-1) < Octave, so the sum stays well
  // below 2^63; clamp back to the cap for uniform saturation.
  const uint64_t V = Octave + Step * (Misses % Q);
  return std::min(V, kPredictionCap);
}

uint64_t BucketedPolicy::attainableValues(int64_t Estimate,
                                          uint64_t ElapsedTime) const {
  const uint64_t N = Estimate > 0 ? static_cast<uint64_t>(Estimate) : 1;
  // Bounded enumeration counting *distinct* values: integer division can
  // plateau consecutive sub-steps (Step = 0 for small octaves), so "stop at
  // the first repeat" would undercount — walk the whole capped ladder.
  uint64_t Count = 0, Prev = 0;
  const unsigned MaxSteps = (MaxDoublings + 2) * Q;
  for (unsigned K = 0; K <= MaxSteps; ++K) {
    const uint64_t V = predict(N, K);
    if (V > ElapsedTime)
      break;
    if (Count == 0 || V != Prev) {
      ++Count;
      Prev = V;
    }
    if (V >= kPredictionCap)
      break;
  }
  return std::max<uint64_t>(Count, 1);
}

double BucketedPolicy::closedFormBoundBits(unsigned UpwardClosureSize,
                                           uint64_t RelevantMitigates,
                                           uint64_t ElapsedTime) const {
  // Q sub-steps per octave multiply the ladder size by at most Q:
  // L(T) = Q·(1+log2 T), so the bound degrades linearly in the quantum —
  // strictly between doubling (Q=1) and linear for every finite Q.
  if (RelevantMitigates == 0)
    return 0;
  double LogK = std::log2(static_cast<double>(RelevantMitigates) + 1.0);
  double LogT =
      ElapsedTime > 0 ? std::log2(static_cast<double>(ElapsedTime)) : 0.0;
  return static_cast<double>(UpwardClosureSize) * LogK *
         static_cast<double>(Q) * (1.0 + LogT);
}

std::string BucketedPolicy::spec() const {
  return "bucketed:q=" + std::to_string(Q);
}

//===----------------------------------------------------------------------===//
// seeded
//===----------------------------------------------------------------------===//

SeededPolicy::SeededPolicy(uint64_t EstimateFloor)
    : Floor(std::max<uint64_t>(EstimateFloor, 1)) {}

uint64_t SeededPolicy::predict(uint64_t InitialEstimate,
                               unsigned Misses) const {
  return doublingPredict(std::max(InitialEstimate, Floor), Misses);
}

uint64_t SeededPolicy::attainableValues(int64_t Estimate,
                                        uint64_t ElapsedTime) const {
  const uint64_t N = std::max<uint64_t>(
      Estimate > 0 ? static_cast<uint64_t>(Estimate) : 1, Floor);
  return attainableDoublingFrom(N, ElapsedTime);
}

double SeededPolicy::closedFormBoundBits(unsigned UpwardClosureSize,
                                         uint64_t RelevantMitigates,
                                         uint64_t ElapsedTime) const {
  return doublingClosedForm(UpwardClosureSize, RelevantMitigates, ElapsedTime);
}

std::string SeededPolicy::spec() const {
  return "seeded:est=" + std::to_string(Floor);
}

//===----------------------------------------------------------------------===//
// Registry / parsing / selection
//===----------------------------------------------------------------------===//

const MitigationPolicy &zam::fastDoublingPolicy() {
  static const FastDoublingPolicy P;
  return P;
}

const MitigationPolicy &zam::linearPolicy() {
  static const LinearPolicy P;
  return P;
}

const std::vector<MitigationPolicyInfo> &zam::mitigationPolicyRegistry() {
  static const std::vector<MitigationPolicyInfo> Registry = {
      {"fast-doubling", "fast-doubling",
       "the paper's schedule max(n,1)*2^k: minimal leakage, up to 2x "
       "padding per window"},
      {"bucketed", "bucketed:q=<Q>",
       "doubling split into Q linear sub-steps per octave: ~(1+1/Q)x "
       "padding, ~Q*log T attainable values"},
      {"linear", "linear",
       "max(n,1)*(k+1): tightest padding, ~T/n attainable values (leaks "
       "the most per unit time)"},
      {"seeded", "seeded:est=<N>",
       "fast-doubling with the initial estimate floored at a calibrated N "
       "(e.g. from `zamc profile --recommend`)"},
  };
  return Registry;
}

static bool parseUint(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

MitigationPolicyPtr zam::parseMitigationPolicy(const std::string &Spec,
                                               std::string *Error) {
  const auto Fail = [&](const std::string &Why) -> MitigationPolicyPtr {
    if (Error)
      *Error = Why;
    return nullptr;
  };
  const auto Singleton = [](const MitigationPolicy &P) {
    return MitigationPolicyPtr(&P, [](const MitigationPolicy *) {});
  };

  const size_t Colon = Spec.find(':');
  const std::string Name = Spec.substr(0, Colon);
  const std::string Params =
      Colon == std::string::npos ? std::string() : Spec.substr(Colon + 1);

  if (Name == "fast-doubling" || Name == "linear") {
    if (!Params.empty())
      return Fail("policy '" + Name + "' takes no parameters");
    return Singleton(Name == "linear" ? linearPolicy() : fastDoublingPolicy());
  }
  if (Name == "bucketed") {
    uint64_t Q = 4; // Default quantum: quarter-octave steps.
    if (!Params.empty()) {
      if (Params.rfind("q=", 0) != 0 || !parseUint(Params.substr(2), Q) ||
          Q == 0 || Q > 4096)
        return Fail("bucketed wants q=<1..4096>, got '" + Params + "'");
    }
    return std::make_shared<BucketedPolicy>(static_cast<unsigned>(Q));
  }
  if (Name == "seeded") {
    uint64_t Est = 0;
    if (Params.rfind("est=", 0) != 0 || !parseUint(Params.substr(4), Est) ||
        Est == 0)
      return Fail("seeded wants est=<positive cycles>, got '" + Params + "'");
    return std::make_shared<SeededPolicy>(Est);
  }
  return Fail("unknown mitigation policy '" + Name +
              "' (see `zamc policies`)");
}

const MitigationPolicy &PolicySelection::forSite(unsigned Eta) const {
  for (const auto &[Site, P] : PerSite)
    if (Site == Eta)
      return *P;
  return base();
}

void PolicySelection::overrideSite(unsigned Eta, const MitigationPolicy &P) {
  for (auto &[Site, Existing] : PerSite)
    if (Site == Eta) {
      Existing = &P;
      return;
    }
  auto It = std::lower_bound(
      PerSite.begin(), PerSite.end(), Eta,
      [](const auto &Entry, unsigned E) { return Entry.first < E; });
  PerSite.insert(It, {Eta, &P});
}

bool PolicySelection::isDefaultOnly() const {
  return PerSite.empty() && &base() == &fastDoublingPolicy();
}

//===----------------------------------------------------------------------===//
// MitigationState
//===----------------------------------------------------------------------===//

MitigationState::MitigationState(const SecurityLattice &Lat,
                                 const MitigationPolicy &Policy,
                                 PenaltyPolicy Penalty)
    : Lat(&Lat), Policy(&Policy), Penalty(Penalty) {
  Miss.assign(Penalty == PenaltyPolicy::PerLevel ? Lat.size() : 1, 0);
}

unsigned &MitigationState::missSlot(Label Level) {
  assert(Lat->contains(Level) && "label from another lattice");
  return Miss[Penalty == PenaltyPolicy::PerLevel ? Level.index() : 0];
}

unsigned MitigationState::missSlotValue(Label Level) const {
  assert(Lat->contains(Level) && "label from another lattice");
  return Miss[Penalty == PenaltyPolicy::PerLevel ? Level.index() : 0];
}

uint64_t MitigationState::predict(int64_t Estimate, Label Level) const {
  return predict(Estimate, Level, *Policy);
}

uint64_t MitigationState::predict(int64_t Estimate, Label Level,
                                  const MitigationPolicy &P) const {
  uint64_t N = Estimate > 0 ? static_cast<uint64_t>(Estimate) : 1;
  return P.predict(N, missSlotValue(Level));
}

unsigned MitigationState::misses(Label Level) const {
  return missSlotValue(Level);
}

MitigationState::Outcome MitigationState::settle(int64_t Estimate, Label Level,
                                                 uint64_t Elapsed) {
  return settle(Estimate, Level, Elapsed, *Policy);
}

MitigationState::Outcome MitigationState::settle(int64_t Estimate, Label Level,
                                                 uint64_t Elapsed,
                                                 const MitigationPolicy &P) {
  Outcome Out;
  unsigned &Count = missSlot(Level);
  // The Fig. 6 update loop: while (time - s_η >= predict(n,ℓ)) Miss[ℓ]++.
  while (Elapsed >= predict(Estimate, Level, P)) {
    ++Count;
    Out.Mispredicted = true;
    if (Count >= 2 * MaxDoublings)
      break; // Schedule saturated; duration below still covers Elapsed.
  }
  Out.Duration = std::max(predict(Estimate, Level, P), Elapsed + 1);
  return Out;
}

void MitigationState::reset() {
  std::fill(Miss.begin(), Miss.end(), 0u);
}
