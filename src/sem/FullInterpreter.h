//===- FullInterpreter.h - Run-to-completion IR driver ----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production engine for the full semantics: configurations
/// ⟨c, m, E, G⟩ executed over the flat timing-IR (ir/Ir.h) by the shared
/// execution core (sem/ExecCore.h). Construction lowers the program once —
/// resolving variables to memory slots, code addresses, timing labels and
/// attribution locations — and run() drives the core to completion in a
/// tight program-counter loop. It charges exactly the same costs as the
/// resumable small-step cursor (sem/StepInterpreter.h) — both execute the
/// same IR through the same core, and the agreement is additionally
/// checked cycle-for-cycle by the property-based tests.
///
/// Timing of one evaluation step:
///   BaseStep + instruction fetch at the command's code address
///            + data accesses and ALU costs of the expressions evaluated
///            + Branch for if/while, + max(n,0) for sleep.
/// Mitigate commands implement the predictive semantics of Fig. 6: the
/// padded duration of the mitigated body (measured from the completion of
/// the entry step) always equals the schedule's final prediction.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_FULLINTERPRETER_H
#define ZAM_SEM_FULLINTERPRETER_H

#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "sem/CostModel.h"
#include "sem/Event.h"
#include "sem/Limits.h"
#include "sem/Memory.h"
#include "sem/Mitigation.h"
#include "sem/Provenance.h"

#include <functional>
#include <memory>

namespace zam {

class ExecCore;
class FusionProfile;
struct IrProgram;
struct LirProgram;

/// How the execution core dispatches LIR instructions. Purely a
/// wall-clock knob: every mode produces bit-identical traces, ledgers and
/// exec.* profiles (the differential tests enforce this).
enum class DispatchMode : uint8_t {
  Auto,     ///< Threaded when the build carries it, else switch.
  Threaded, ///< Computed-goto loop (falls back to switch when unavailable).
  Switch,   ///< The portable switch loop.
};

/// Whether this build carries the computed-goto threaded dispatch loop
/// (ZAM_THREADED_DISPATCH on a compiler with labels-as-values). When
/// false, DispatchMode::Threaded silently degrades to the switch loop.
bool threadedDispatchAvailable();

/// Knobs shared by both full-semantics engines.
struct InterpreterOptions {
  CostModel Costs;
  /// Which mitigation policy governs each mitigate site: a run-wide default
  /// (fast-doubling when unset) plus optional per-η overrides. Lowering
  /// resolves each mitigate instruction's policy from this selection, and
  /// the same selection must be handed to the leakage accountant / trace
  /// exporter so windows are priced by the policy that scheduled them.
  PolicySelection Mitigation;
  PenaltyPolicy Penalty = PenaltyPolicy::PerLevel;
  /// Bound on primitive evaluation steps (diverging-program safety net;
  /// rationale at the constant's definition).
  uint64_t StepLimit = kDefaultStepLimit;
  /// When set, the interpreter uses (and mutates) this external Miss table
  /// instead of a fresh one, so predictive-mitigation state persists across
  /// runs — e.g. over the requests of one login session (Sec. 8.3). The
  /// state must be over the program's lattice; Penalty (and the selection's
  /// default policy) are ignored in favor of the shared state's own.
  MitigationState *SharedMitState = nullptr;
  /// Record a per-access miss timeline into Trace::Misses (big-step engine
  /// only; costs an observer callback per hardware access, so it is off by
  /// default and enabled by the trace exporters).
  bool RecordMisses = false;
  /// Invoked by both engines right after a mitigate window settles and its
  /// record is appended to the trace. This is how the online leakage
  /// accountant (obs/LeakAudit.h) observes windows without sem depending on
  /// obs. Must be deterministic; called on the interpreter's thread.
  std::function<void(const MitigateRecord &)> OnMitigateWindow;
  /// When set, both engines charge every cost event (step cycles, hardware
  /// accesses, sleep and mitigation padding) to this sink tagged with the
  /// current attribution cursor — the source profiler's data feed
  /// (obs/CostLedger.h implements it). Installs the hardware observer for
  /// the run like RecordMisses does. Not owned.
  CostSink *Provenance = nullptr;
  /// When set, both engines report every instruction dispatch, branch
  /// direction, and mitigate-window settle to this probe — the engine
  /// self-profiler's data feed (obs/ExecProfile.h implements it). Purely
  /// observational: attaching a probe never changes costs, the trace, or
  /// the leakage ledger. Not owned.
  ExecProbe *Probe = nullptr;
  /// Superinstruction fusion over the LIR tier (ir/Fusion.h). A dispatch
  /// optimization only — fused runs observe exactly what unfused runs do;
  /// off mainly for differential testing and debugging.
  bool Fusion = true;
  /// The digram profile driving fusion; null uses
  /// FusionProfile::defaultProfile(). Borrowed, must outlive the engine.
  const FusionProfile *FuseProfile = nullptr;
  /// Which dispatch loop run() uses. Step-driven execution is unaffected
  /// (single transitions always dispatch through the de-fused table).
  DispatchMode Dispatch = DispatchMode::Auto;
};

/// Outcome of a full-semantics run.
struct RunResult {
  Memory FinalMemory;
  Trace T;
  /// The machine environment's counters at completion. Cumulative for the
  /// borrowed environment: callers wanting per-run numbers reset the env's
  /// stats (or use a fresh clone) before running.
  HwStats Hw;
};

/// Run-to-completion driver over the shared execution core. The machine
/// environment is borrowed and mutated in place (callers snapshot via
/// MachineEnv::clone()).
///
/// Every non-Seq command in the program must carry complete [er,ew] labels
/// (run type checking / label inference first); violations abort at
/// construction, when the program is lowered.
class FullInterpreter {
public:
  FullInterpreter(const Program &P, MachineEnv &Env,
                  InterpreterOptions Opts = InterpreterOptions());
  ~FullInterpreter();
  FullInterpreter(FullInterpreter &&) = delete;

  /// The pre-run memory (initialized from declarations); callers may poke
  /// experiment-specific inputs before run().
  Memory &memory();

  /// Runs the program body to completion and returns the final memory and
  /// trace. The interpreter is single-shot: run() may be called once.
  RunResult run();

  uint64_t clock() const;

private:
  MachineEnv &Env;
  InterpreterOptions Opts;
  /// The lowered tiers; immutable and owned so the core's instruction
  /// pointers stay valid for the interpreter's lifetime. The LIR borrows
  /// the IR, so declaration order matters.
  std::unique_ptr<IrProgram> IR;
  std::unique_ptr<LirProgram> LIR;
  std::unique_ptr<ExecCore> Core;
  bool Consumed = false;
};

/// Convenience wrapper: construct, run, and return the result.
RunResult runFull(const Program &P, MachineEnv &Env,
                  InterpreterOptions Opts = InterpreterOptions());

/// Convenience wrapper: construct, poke experiment-specific inputs into the
/// initial memory via \p Prepare (may be null), run, and return the result.
RunResult runFull(const Program &P, MachineEnv &Env,
                  const std::function<void(Memory &)> &Prepare,
                  InterpreterOptions Opts = InterpreterOptions());

} // namespace zam

#endif // ZAM_SEM_FULLINTERPRETER_H
