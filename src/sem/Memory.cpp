//===- Memory.cpp ---------------------------------------------------------===//

#include "sem/Memory.h"

#include "support/Diagnostics.h"

#include <cassert>

using namespace zam;

Memory Memory::fromProgram(const Program &P, Addr DataBase) {
  Memory M;
  Addr Next = DataBase;
  for (const VarDecl &D : P.vars()) {
    MemorySlot S;
    S.Name = D.Name;
    S.SecLabel = D.SecLabel;
    S.IsArray = D.IsArray;
    S.Base = Next;
    S.Data.assign(D.Size, 0);
    for (size_t I = 0; I != D.Init.size() && I != S.Data.size(); ++I)
      S.Data[I] = D.Init[I];
    Next += D.Size * 8;
    M.Index.emplace(S.Name, M.Slots.size());
    M.Slots.push_back(std::move(S));
  }
  return M;
}

const MemorySlot &Memory::slot(const std::string &Name) const {
  auto It = Index.find(Name);
  if (It == Index.end())
    reportFatalError("access to undeclared variable");
  return Slots[It->second];
}

MemorySlot &Memory::slot(const std::string &Name) {
  return const_cast<MemorySlot &>(
      static_cast<const Memory *>(this)->slot(Name));
}

int64_t Memory::load(const std::string &Name) const {
  const MemorySlot &S = slot(Name);
  assert(!S.IsArray && "scalar load from an array");
  return S.Data[0];
}

void Memory::store(const std::string &Name, int64_t Value) {
  MemorySlot &S = slot(Name);
  assert(!S.IsArray && "scalar store to an array");
  S.Data[0] = Value;
}

uint64_t Memory::wrapIndex(const std::string &Name, int64_t RawIndex) const {
  const MemorySlot &S = slot(Name);
  assert(S.IsArray && "indexing a scalar");
  int64_t N = static_cast<int64_t>(S.Data.size());
  int64_t I = RawIndex % N;
  if (I < 0)
    I += N;
  return static_cast<uint64_t>(I);
}

int64_t Memory::loadElem(const std::string &Name, int64_t RawIndex) const {
  const MemorySlot &S = slot(Name);
  return S.Data[wrapIndex(Name, RawIndex)];
}

void Memory::storeElem(const std::string &Name, int64_t RawIndex,
                       int64_t Value) {
  MemorySlot &S = slot(Name);
  S.Data[wrapIndex(Name, RawIndex)] = Value;
}

Addr Memory::addrOf(const std::string &Name) const { return slot(Name).Base; }

Addr Memory::addrOfElem(const std::string &Name, int64_t RawIndex) const {
  return slot(Name).Base + wrapIndex(Name, RawIndex) * 8;
}

Label Memory::labelOf(const std::string &Name) const {
  return slot(Name).SecLabel;
}

bool Memory::equivalentUpTo(const Memory &Other, Label L,
                            const SecurityLattice &Lat) const {
  assert(Slots.size() == Other.Slots.size() && "memories with different Γ");
  for (size_t I = 0; I != Slots.size(); ++I) {
    const MemorySlot &A = Slots[I];
    const MemorySlot &B = Other.Slots[I];
    assert(A.Name == B.Name && "memories with different Γ");
    if (Lat.flowsTo(A.SecLabel, L) && A.Data != B.Data)
      return false;
  }
  return true;
}

bool Memory::projectionEquals(const Memory &Other, Label L) const {
  assert(Slots.size() == Other.Slots.size() && "memories with different Γ");
  for (size_t I = 0; I != Slots.size(); ++I)
    if (Slots[I].SecLabel == L && Slots[I].Data != Other.Slots[I].Data)
      return false;
  return true;
}
