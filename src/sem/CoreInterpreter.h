//===- CoreInterpreter.h - The timing-free core semantics -------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core semantics of Fig. 2: a standard while-language evaluator that
/// ignores timing entirely. `sleep` behaves like `skip`; `mitigate (e,ℓ) c`
/// evaluates to `c`. Used as the reference for the adequacy property
/// (Property 1): the full semantics must compute exactly the same memory
/// and event sequence.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_COREINTERPRETER_H
#define ZAM_SEM_COREINTERPRETER_H

#include "lang/Ast.h"
#include "sem/Event.h"
#include "sem/Limits.h"
#include "sem/Memory.h"

namespace zam {

/// Result of a core-semantics run.
struct CoreResult {
  Memory FinalMemory;
  /// Assignment events in program order; Time fields hold the event ordinal
  /// (the core semantics has no clock).
  std::vector<AssignEvent> Events;
  bool HitStepLimit = false;
};

/// Runs \p P to completion under the core semantics.
/// \p InitialMemory overrides the declaration-derived memory when provided.
/// \p StepLimit bounds the number of executed commands so diverging
/// programs terminate the test harness; it defaults to the same safety net
/// as the full-semantics engines so that the adequacy checks never see one
/// semantics bail out of a long (but converging) run before the other.
CoreResult runCore(const Program &P, const Memory *InitialMemory = nullptr,
                   uint64_t StepLimit = kDefaultStepLimit);

} // namespace zam

#endif // ZAM_SEM_COREINTERPRETER_H
