//===- Eval.h - Shared expression evaluation --------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value semantics of expressions, shared by the core semantics and the
/// timing-IR execution core (sem/ExecCore.h): total and deterministic —
/// division/modulo by zero yield 0, shift counts are masked to 6 bits,
/// arithmetic wraps modulo 2^64, and array indices wrap modulo the array
/// size. Timed evaluation (costs + hardware accesses) lives in
/// evalIrExpr over the lowered postfix form; it applies these same
/// operators, so the engines agree with the core semantics by construction.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_EVAL_H
#define ZAM_SEM_EVAL_H

#include "lang/Ast.h"
#include "sem/Memory.h"

#include <cstdint>

namespace zam {

/// Applies a binary operator with the total semantics described above.
/// Inline: this is the ALU of the execution core's micro-op loop.
inline int64_t applyBinOp(BinOpKind Op, int64_t L, int64_t R) {
  // Arithmetic is performed on the unsigned representations so that
  // overflow wraps (deterministic, no UB).
  uint64_t UL = static_cast<uint64_t>(L);
  uint64_t UR = static_cast<uint64_t>(R);
  switch (Op) {
  case BinOpKind::Add:
    return static_cast<int64_t>(UL + UR);
  case BinOpKind::Sub:
    return static_cast<int64_t>(UL - UR);
  case BinOpKind::Mul:
    return static_cast<int64_t>(UL * UR);
  case BinOpKind::Div:
    if (R == 0)
      return 0;
    if (L == INT64_MIN && R == -1)
      return INT64_MIN; // Wraps.
    return L / R;
  case BinOpKind::Mod:
    if (R == 0)
      return 0;
    if (L == INT64_MIN && R == -1)
      return 0;
    return L % R;
  case BinOpKind::Eq:
    return L == R;
  case BinOpKind::Ne:
    return L != R;
  case BinOpKind::Lt:
    return L < R;
  case BinOpKind::Le:
    return L <= R;
  case BinOpKind::Gt:
    return L > R;
  case BinOpKind::Ge:
    return L >= R;
  case BinOpKind::LogicalAnd:
    return (L != 0) && (R != 0);
  case BinOpKind::LogicalOr:
    return (L != 0) || (R != 0);
  case BinOpKind::BitAnd:
    return static_cast<int64_t>(UL & UR);
  case BinOpKind::BitOr:
    return static_cast<int64_t>(UL | UR);
  case BinOpKind::BitXor:
    return static_cast<int64_t>(UL ^ UR);
  case BinOpKind::Shl:
    return static_cast<int64_t>(UL << (UR & 63));
  case BinOpKind::Shr:
    return static_cast<int64_t>(UL >> (UR & 63));
  }
  return 0;
}

/// Applies a unary operator.
inline int64_t applyUnOp(UnOpKind Op, int64_t V) {
  switch (Op) {
  case UnOpKind::Neg:
    return static_cast<int64_t>(-static_cast<uint64_t>(V));
  case UnOpKind::LogicalNot:
    return V == 0;
  case UnOpKind::BitNot:
    return ~V;
  }
  return 0;
}

/// Evaluates \p E in \p M without timing (core semantics).
int64_t evalExprPure(const Expr &E, const Memory &M);

} // namespace zam

#endif // ZAM_SEM_EVAL_H
