//===- Eval.h - Shared expression/step evaluation ---------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression evaluation shared by the core semantics, the literal
/// small-step engine (StepInterpreter) and the fast big-step engine
/// (FullInterpreter). Both timing engines must charge identical costs so
/// that they agree cycle-for-cycle (checked by property tests); funneling
/// evaluation through one implementation makes that true by construction.
///
/// The value semantics is total and deterministic: division/modulo by zero
/// yield 0, shift counts are masked to 6 bits, arithmetic wraps modulo 2^64,
/// and array indices wrap modulo the array size.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_EVAL_H
#define ZAM_SEM_EVAL_H

#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "sem/CostModel.h"
#include "sem/Memory.h"
#include "sem/Provenance.h"

namespace zam {

/// Applies a binary operator with the total semantics described above.
int64_t applyBinOp(BinOpKind Op, int64_t L, int64_t R);

/// Applies a unary operator.
int64_t applyUnOp(UnOpKind Op, int64_t V);

/// Evaluates \p E in \p M without timing (core semantics).
int64_t evalExprPure(const Expr &E, const Memory &M);

/// Evaluates \p E in \p M, charging ALU costs and performing the data
/// accesses through \p Env under timing labels [\p Read, \p Write].
/// Accumulates the cost into \p Cycles and returns the value. When \p Cur
/// is set, narrows Cur->Loc to each sub-expression's own location (when
/// valid) for the duration of that node's accesses, restoring the enclosing
/// location afterwards — the attribution cursor of the source profiler.
int64_t evalExprTimed(const Expr &E, const Memory &M, MachineEnv &Env,
                      Label Read, Label Write, const CostModel &Costs,
                      uint64_t &Cycles, CostCursor *Cur = nullptr);

} // namespace zam

#endif // ZAM_SEM_EVAL_H
