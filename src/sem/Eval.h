//===- Eval.h - Shared expression evaluation --------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value semantics of expressions, shared by the core semantics and the
/// timing-IR execution core (sem/ExecCore.h): total and deterministic —
/// division/modulo by zero yield 0, shift counts are masked to 6 bits,
/// arithmetic wraps modulo 2^64, and array indices wrap modulo the array
/// size. Timed evaluation (costs + hardware accesses) lives in
/// evalIrExpr over the lowered postfix form; it applies these same
/// operators, so the engines agree with the core semantics by construction.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_EVAL_H
#define ZAM_SEM_EVAL_H

#include "lang/Ast.h"
#include "sem/Memory.h"

namespace zam {

/// Applies a binary operator with the total semantics described above.
int64_t applyBinOp(BinOpKind Op, int64_t L, int64_t R);

/// Applies a unary operator.
int64_t applyUnOp(UnOpKind Op, int64_t V);

/// Evaluates \p E in \p M without timing (core semantics).
int64_t evalExprPure(const Expr &E, const Memory &M);

} // namespace zam

#endif // ZAM_SEM_EVAL_H
