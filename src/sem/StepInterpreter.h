//===- StepInterpreter.h - Literal small-step full semantics ----*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct transcription of the paper's small-step rules (Fig. 2 plus the
/// predictive rules of Fig. 6) over configurations ⟨c, m, E, G⟩, with
/// command rewriting:
///
///   c1;c2 steps by stepping c1          (Property 3)
///   while e do c  →  c; while e do c    when e ≠ 0
///   mitigate_η (e,ℓ) c  →  c; MitigateEnd(η, n, ℓ, s_η)   (S-MTGPRED)
///
/// This engine exists so that single transitions are first-class: the
/// dynamic checkers for Properties 1-7 (analysis/PropertyCheckers.h) drive
/// it one step at a time. It charges exactly the same costs as the fast
/// big-step engine; the two are checked for cycle-level agreement.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_STEPINTERPRETER_H
#define ZAM_SEM_STEPINTERPRETER_H

#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "sem/FullInterpreter.h"
#include "sem/Memory.h"
#include "sem/Mitigation.h"
#include "sem/Provenance.h"

#include <unordered_map>
#include <vector>

namespace zam {

/// Small-step engine over a configuration ⟨c, m, E, G⟩. The command
/// component is held as an owned AST that is restructured on each step;
/// `stop` is represented by an empty command.
class StepInterpreter : private HwObserver {
public:
  /// Begins executing \p P (body cloned) on \p Env.
  StepInterpreter(const Program &P, MachineEnv &Env,
                  InterpreterOptions Opts = InterpreterOptions());

  /// Begins executing a bare command \p C under the declarations of \p P.
  /// Used by the property checkers to run single labeled commands.
  StepInterpreter(const Program &P, CmdPtr C, Memory InitialMemory,
                  MachineEnv &Env,
                  InterpreterOptions Opts = InterpreterOptions());

  /// Movable (the property checkers return engines by value): re-binds the
  /// internal mitigation-state reference and takes over the hardware
  /// observer slot when one was registered.
  StepInterpreter(StepInterpreter &&Other);
  StepInterpreter &operator=(StepInterpreter &&) = delete;

  ~StepInterpreter() override;

  /// Whether the configuration has reached ⟨stop, m, E, G⟩.
  bool done() const { return Current == nullptr; }

  /// Performs exactly one transition. No-op when done.
  void step();

  /// Steps until done or the step limit is hit; returns the final trace.
  Trace runToCompletion();

  const Memory &memory() const { return M; }
  Memory &memory() { return M; }
  uint64_t clock() const { return G; }
  const Trace &trace() const { return T; }
  const Cmd *current() const { return Current.get(); }
  const MitigationState &mitigationState() const { return MitState; }

private:
  uint64_t stepBase(const Cmd &C, Label Read, Label Write);
  void record(const std::string &Var, bool IsArray, uint64_t Index,
              int64_t Value);
  /// Charges \p N cycles of kind \p K to the provenance sink (no-op when
  /// none is installed).
  void charge(CycleKind K, uint64_t N);
  /// HwObserver hook (installed only under Opts.Provenance): forwards every
  /// access to the provenance sink tagged with the cursor.
  void onAccess(const HwAccess &Access) override;
  /// One transition of \p C; returns the continuation command (nullptr for
  /// stop).
  CmdPtr stepCmd(CmdPtr C);

  const Program &P;
  MachineEnv &Env;
  InterpreterOptions Opts;
  const MitigationScheme &Scheme;
  Memory M;
  MitigationState OwnMitState;
  MitigationState &MitState;
  std::unordered_map<unsigned, Label> PcLabels;
  CmdPtr Current;
  Trace T;
  uint64_t G = 0;
  /// Attribution cursor plus the stack of open mitigate sites (the η of
  /// every MitigateEnd still pending in the continuation, innermost last).
  CostCursor Cur;
  std::vector<unsigned> SiteStack;
  /// Observer displaced while this engine watches Env (restored by the
  /// destructor); only meaningful under Opts.Provenance.
  HwObserver *PriorObserver = nullptr;
};

} // namespace zam

#endif // ZAM_SEM_STEPINTERPRETER_H
