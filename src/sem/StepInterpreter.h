//===- StepInterpreter.h - Resumable small-step full semantics --*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resumable engine for the full semantics: a program-counter cursor
/// over the same flat timing-IR and shared execution core
/// (sem/ExecCore.h) that the run-to-completion driver uses. One step() is
/// exactly one transition of the paper's small-step rules (Fig. 2 plus the
/// predictive rules of Fig. 6):
///
///   c1;c2 steps into c1's instructions (Seq lowers away entirely)
///   while e do c  →  a loop branch with a back edge      (one step/guard)
///   mitigate_η (e,ℓ) c  →  MitEnter ... body ... MitEnd  (S-MTGPRED)
///
/// This engine exists so that single transitions are first-class: the
/// dynamic checkers for Properties 1-7 (analysis/PropertyCheckers.h) drive
/// it one step at a time. Because both engines execute the same IR through
/// the same core, it charges exactly the same costs as the fast driver;
/// the agreement is additionally checked cycle-for-cycle by the
/// property-based tests.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_STEPINTERPRETER_H
#define ZAM_SEM_STEPINTERPRETER_H

#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "sem/ExecCore.h"
#include "sem/FullInterpreter.h"
#include "sem/Memory.h"
#include "sem/Mitigation.h"

#include <memory>

namespace zam {

/// Small-step engine over a configuration ⟨c, m, E, G⟩. The command
/// component is a program counter into the lowered IR; ⟨stop⟩ is the Halt
/// instruction.
class StepInterpreter {
public:
  /// Begins executing \p P on \p Env.
  StepInterpreter(const Program &P, MachineEnv &Env,
                  InterpreterOptions Opts = InterpreterOptions());

  /// Begins executing a bare command \p C under the declarations of \p P.
  /// Used by the property checkers to run single labeled commands. The
  /// command is lowered at construction (and must therefore carry complete
  /// timing labels) and kept alive for the engine's lifetime.
  StepInterpreter(const Program &P, CmdPtr C, Memory InitialMemory,
                  MachineEnv &Env,
                  InterpreterOptions Opts = InterpreterOptions());

  /// Movable (the property checkers return engines by value). The core —
  /// and with it the hardware-observer registration — lives behind a
  /// stable pointer, so moving the wrapper is just a pointer handover.
  StepInterpreter(StepInterpreter &&Other);
  StepInterpreter &operator=(StepInterpreter &&) = delete;

  ~StepInterpreter();

  /// Whether the configuration has reached ⟨stop, m, E, G⟩.
  bool done() const { return Core->done(); }

  /// Performs exactly one transition. No-op when done.
  void step() { Core->step(); }

  /// Steps until done or the step limit is hit; returns the final trace.
  Trace runToCompletion();

  const Memory &memory() const { return Core->memory(); }
  Memory &memory() { return Core->memory(); }
  uint64_t clock() const { return Core->clock(); }
  const Trace &trace() const { return Core->trace(); }
  /// The source command the next transition executes (nullptr when done).
  /// Seq nodes lower away, so this is always a primitive command, a guard
  /// (if/while), or a mitigate about to enter or settle.
  const Cmd *current() const { return Core->currentCmd(); }
  const MitigationState &mitigationState() const {
    return Core->mitigationState();
  }

private:
  MachineEnv &Env;
  /// Bare-command ctor only: keeps the lowered AST alive (the IR points
  /// into it for provenance).
  CmdPtr Owned;
  /// The lowered tiers; immutable and owned so the core's instruction
  /// pointers stay valid for the engine's lifetime. The LIR borrows the
  /// IR, so declaration order matters.
  std::unique_ptr<IrProgram> IR;
  std::unique_ptr<LirProgram> LIR;
  std::unique_ptr<ExecCore> Core;
  /// Whether this engine registered the core as Env's observer (only under
  /// Opts.Provenance); the displaced observer is restored on destruction.
  bool ObserverInstalled = false;
  HwObserver *PriorObserver = nullptr;
};

} // namespace zam

#endif // ZAM_SEM_STEPINTERPRETER_H
