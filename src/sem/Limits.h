//===- Limits.h - Shared execution safety nets ------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Safety-net bounds shared by every interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_LIMITS_H
#define ZAM_SEM_LIMITS_H

#include <cstdint>

namespace zam {

/// Default bound on primitive evaluation steps, shared by the core
/// interpreter and both full-semantics engines (InterpreterOptions).
///
/// The language is Turing-complete (`while` with arbitrary guards), so a
/// diverging program would otherwise hang every property checker, fuzz
/// driver and leakage enumeration that executes untrusted — often randomly
/// generated — programs. The limit is a safety net, not a semantic bound:
/// it is far above any workload in the repository (the Fig. 8 RSA
/// decryption, the heaviest case study, takes ~42k steps per run), so
/// hitting it means "this program does not terminate in any time we are
/// willing to wait". Runs that hit it are flagged (Trace::HitStepLimit)
/// rather than treated as completed. Callers with a tighter latency budget
/// (e.g. divergence tests) pass an explicit lower limit.
inline constexpr uint64_t kDefaultStepLimit = 500'000'000;

} // namespace zam

#endif // ZAM_SEM_LIMITS_H
