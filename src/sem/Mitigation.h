//===- Mitigation.h - Predictive mitigation policies ------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predictive-mitigation machinery of Sec. 7 (Fig. 6):
///
///   predict(n, ℓ) = max(n,1) · 2^Miss[ℓ]
///
/// generalized into a first-class *mitigation policy*: one object that owns
/// both sides of the public-schedule contract —
///
///   - the prediction schedule predict(n, k), and
///   - its leakage accounting: how many schedule values are attainable by a
///     global time T (the N_i(T) of the Sec. 6 bound), the per-window bits
///     log2 N_i(T), the misprediction-count penalty bits, and the Sec. 7
///     closed-form summary bound.
///
/// The Sec. 6 argument only needs the schedule to be *public and
/// deterministic*; any predictor admits a countable set of distinguishable
/// durations, and the bound math must count exactly that predictor's
/// values. Keeping both halves on one object makes it impossible for the
/// runtime schedule and the accountant to disagree — the latent bug this
/// registry replaced (LinearScheme runs priced with fast-doubling math).
///
/// Registered policies (see mitigationPolicyRegistry / parse):
///   fast-doubling         predict(n,k) = max(n,1)·2^k         (the paper)
///   linear                predict(n,k) = max(n,1)·(k+1)
///   bucketed:q=Q          doubling with Q linear sub-steps per octave
///   seeded:est=N          fast-doubling with the estimate floored at N
///
/// The update rule (MitigationState::settle): on a misprediction (the body
/// consumed at least the predicted time), Miss[ℓ] is incremented until the
/// prediction exceeds the consumed time, and execution idles until the
/// prediction. A mitigated block's padded duration is therefore always a
/// schedule value.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_MITIGATION_H
#define ZAM_SEM_MITIGATION_H

#include "lattice/SecurityLattice.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace zam {

/// A mitigation policy: the prediction schedule plus the leakage-bound
/// arithmetic that prices it. Policies are immutable and stateless (the
/// Miss table lives in MitigationState), so one instance may be shared by
/// any number of concurrent runs.
class MitigationPolicy {
public:
  virtual ~MitigationPolicy();

  /// Saturation ceiling for schedule values: predictions clamp here instead
  /// of wrapping uint64_t (mirrors — and bounds — fast-doubling's shift
  /// cap). Far above any reachable cycle count, so saturation is only ever
  /// observable for adversarially huge estimates or miss counts.
  static constexpr uint64_t kPredictionCap = uint64_t(1) << 62;

  //===--------------------------------------------------------------------===//
  // Schedule side
  //===--------------------------------------------------------------------===//

  /// The prediction for initial estimate \p InitialEstimate after
  /// \p Misses mispredictions. Monotone non-decreasing in \p Misses and
  /// never overflows (values saturate at kPredictionCap).
  virtual uint64_t predict(uint64_t InitialEstimate,
                           unsigned Misses) const = 0;

  //===--------------------------------------------------------------------===//
  // Accounting side (Sec. 6/7, per policy)
  //===--------------------------------------------------------------------===//

  /// N(T) for one window: how many of this policy's schedule values with
  /// initial estimate \p Estimate fit within global time \p ElapsedTime.
  /// Always at least 1 (the window did settle on something).
  virtual uint64_t attainableValues(int64_t Estimate,
                                    uint64_t ElapsedTime) const = 0;

  /// log2 N(T) — the bits one settled window can transmit by time
  /// \p ElapsedTime.
  double windowBoundBits(int64_t Estimate, uint64_t ElapsedTime) const;

  /// The bits revealed by a level's misprediction count itself; for every
  /// registered policy the count is what an observer of any single window
  /// learns, so the default log2(Misses+1) applies across the board.
  virtual double penaltyBits(unsigned Misses) const;

  /// The policy's closed-form analog of the Sec. 7 summary bound for
  /// \p RelevantMitigates windows within elapsed time \p ElapsedTime over
  /// an adversary upward closure of \p UpwardClosureSize levels; zero when
  /// no window ran. The shape is |LeA↑|·log2(K+1)·L(T) with L(T) the
  /// policy's maximum ladder size by time T (each level's observation
  /// distributes the K windows over the L rungs, ≤ (K+1)^L vectors):
  /// fast-doubling's L = 1+log2 T reproduces the paper's
  /// |LeA↑|·log2(K+1)·(1+log2 T) bit for bit; slower-growing schedules
  /// have larger ladders and correspondingly weaker summary guarantees.
  virtual double closedFormBoundBits(unsigned UpwardClosureSize,
                                     uint64_t RelevantMitigates,
                                     uint64_t ElapsedTime) const;

  //===--------------------------------------------------------------------===//
  // Identity
  //===--------------------------------------------------------------------===//

  /// The registry name ("fast-doubling", "linear", "bucketed", "seeded").
  virtual const char *name() const = 0;

  /// The canonical spec string, parseable by parseMitigationPolicy:
  /// the name plus parameters, e.g. "bucketed:q=4". This is what trace and
  /// stats meta record so offline tools reconstruct the exact policy.
  virtual std::string spec() const { return name(); }

protected:
  /// max(Base,1)·2^min(Shift,cap), saturating — the shared doubling core.
  static uint64_t doublingPredict(uint64_t Base, unsigned Misses);
  /// The doubling N(T) loop (also the free attainableScheduleValues()).
  static uint64_t doublingAttainable(int64_t Estimate, uint64_t ElapsedTime);
  /// Base·Mult clamped to kPredictionCap instead of wrapping.
  static uint64_t saturatingMul(uint64_t Base, uint64_t Mult);
};

/// The paper's scheme: predict(n, k) = max(n,1) · 2^k (shift capped so the
/// prediction never overflows). N(T) counts the powers-of-two ladder.
class FastDoublingPolicy final : public MitigationPolicy {
public:
  uint64_t predict(uint64_t InitialEstimate, unsigned Misses) const override;
  uint64_t attainableValues(int64_t Estimate,
                            uint64_t ElapsedTime) const override;
  double closedFormBoundBits(unsigned UpwardClosureSize,
                             uint64_t RelevantMitigates,
                             uint64_t ElapsedTime) const override;
  const char *name() const override { return "fast-doubling"; }
};

/// Ablation alternative: predict(n, k) = max(n,1) · (k+1). Linear schedules
/// waste less time per misprediction but admit ~T/n distinguishable
/// durations by time T, i.e. leak more per unit time.
class LinearPolicy final : public MitigationPolicy {
public:
  uint64_t predict(uint64_t InitialEstimate, unsigned Misses) const override;
  uint64_t attainableValues(int64_t Estimate,
                            uint64_t ElapsedTime) const override;
  double closedFormBoundBits(unsigned UpwardClosureSize,
                             uint64_t RelevantMitigates,
                             uint64_t ElapsedTime) const override;
  const char *name() const override { return "linear"; }
};

/// Quantized doubling: each octave of the fast-doubling ladder is split
/// into Q evenly spaced sub-steps,
///
///   predict(n, k) = max(n,1)·2^(k/Q) + (max(n,1)·2^(k/Q) / Q)·(k mod Q),
///
/// so a misprediction costs a factor (1+1/Q) instead of 2 while the number
/// of attainable values by time T grows only Q-fold — the interior of the
/// doubling/linear Pareto frontier. Q = 1 degenerates to fast-doubling.
class BucketedPolicy final : public MitigationPolicy {
public:
  explicit BucketedPolicy(unsigned Q);
  uint64_t predict(uint64_t InitialEstimate, unsigned Misses) const override;
  uint64_t attainableValues(int64_t Estimate,
                            uint64_t ElapsedTime) const override;
  double closedFormBoundBits(unsigned UpwardClosureSize,
                             uint64_t RelevantMitigates,
                             uint64_t ElapsedTime) const override;
  const char *name() const override { return "bucketed"; }
  std::string spec() const override;
  unsigned quantum() const { return Q; }

private:
  unsigned Q;
};

/// Profile-seeded fast-doubling: the initial estimate is floored at a
/// calibrated value N (e.g. the observed worst-case body time from a
/// profiling run), predict(n, k) = max(n, N, 1)·2^k. Raising the floor
/// trades startup mispredictions (and their doublings) for fixed padding.
class SeededPolicy final : public MitigationPolicy {
public:
  explicit SeededPolicy(uint64_t EstimateFloor);
  uint64_t predict(uint64_t InitialEstimate, unsigned Misses) const override;
  uint64_t attainableValues(int64_t Estimate,
                            uint64_t ElapsedTime) const override;
  double closedFormBoundBits(unsigned UpwardClosureSize,
                             uint64_t RelevantMitigates,
                             uint64_t ElapsedTime) const override;
  const char *name() const override { return "seeded"; }
  std::string spec() const override;
  uint64_t estimateFloor() const { return Floor; }

private:
  uint64_t Floor;
};

/// Shared singletons (parameterless policies).
const MitigationPolicy &fastDoublingPolicy();
const MitigationPolicy &linearPolicy();

/// Owning handle for parsed/parameterized policies. Handles to the
/// parameterless singletons carry a no-op deleter, so every policy can be
/// held uniformly.
using MitigationPolicyPtr = std::shared_ptr<const MitigationPolicy>;

/// Parses a policy spec: `fast-doubling` | `linear` | `bucketed[:q=Q]` |
/// `seeded:est=N`. Returns nullptr on a malformed spec and, when \p Error
/// is non-null, stores a human-readable reason.
MitigationPolicyPtr parseMitigationPolicy(const std::string &Spec,
                                          std::string *Error = nullptr);

/// One registry row, for `zamc policies` and the usage text.
struct MitigationPolicyInfo {
  const char *Name;        ///< Registry name.
  const char *ParamSyntax; ///< Spec syntax, e.g. "bucketed:q=<Q>".
  const char *Summary;     ///< One-line description.
};

/// Every registered policy, in canonical (frontier) order.
const std::vector<MitigationPolicyInfo> &mitigationPolicyRegistry();

/// Which policy governs each mitigate site: a run-wide default plus
/// optional per-site (η-keyed) overrides. Carried by InterpreterOptions
/// into lowering (where every mitigate instruction resolves its policy
/// once) and by the leakage accountant / trace exporter (which must price
/// each window with the policy that actually scheduled it). Pointers are
/// borrowed; callers owning parsed policies keep the MitigationPolicyPtr
/// handles alive for the selection's lifetime.
struct PolicySelection {
  /// Run-wide default; fastDoublingPolicy() when null.
  const MitigationPolicy *Default = nullptr;
  /// Per-site overrides, keyed by mitigate id η. Kept sorted by η so meta
  /// emission is deterministic.
  std::vector<std::pair<unsigned, const MitigationPolicy *>> PerSite;

  const MitigationPolicy &base() const {
    return Default ? *Default : fastDoublingPolicy();
  }
  const MitigationPolicy &forSite(unsigned Eta) const;
  void overrideSite(unsigned Eta, const MitigationPolicy &P);
  /// True when this is the paper's configuration: fast-doubling everywhere.
  /// Telemetry only records policy meta when this is false, keeping
  /// default-run artifacts byte-identical to the pre-registry format.
  bool isDefaultOnly() const;
};

/// How mispredictions penalize future predictions (Sec. 7 cites [38]):
/// PerLevel keeps one Miss counter per security level (the paper's local
/// policy); Global shares a single counter across all levels (coarser, the
/// ablation baseline).
enum class PenaltyPolicy { PerLevel, Global };

/// The runtime Miss table plus the update rule of Fig. 6.
class MitigationState {
public:
  MitigationState(const SecurityLattice &Lat, const MitigationPolicy &Policy,
                  PenaltyPolicy Penalty);

  /// Current prediction for a mitigate with initial estimate \p Estimate at
  /// level \p Level, under the state's default policy or an explicit
  /// per-site one.
  uint64_t predict(int64_t Estimate, Label Level) const;
  uint64_t predict(int64_t Estimate, Label Level,
                   const MitigationPolicy &P) const;

  unsigned misses(Label Level) const;

  struct Outcome {
    uint64_t Duration = 0;     ///< Final prediction = padded duration.
    bool Mispredicted = false; ///< Whether Miss was incremented.
  };

  /// Applies the update rule: increments Miss[\p Level] while the body's
  /// \p Elapsed time has reached the prediction, then returns the final
  /// (padded) duration.
  Outcome settle(int64_t Estimate, Label Level, uint64_t Elapsed);
  Outcome settle(int64_t Estimate, Label Level, uint64_t Elapsed,
                 const MitigationPolicy &P);

  void reset();

  const MitigationPolicy &policy() const { return *Policy; }
  PenaltyPolicy penalty() const { return Penalty; }

private:
  unsigned &missSlot(Label Level);
  unsigned missSlotValue(Label Level) const;

  const SecurityLattice *Lat;
  const MitigationPolicy *Policy;
  PenaltyPolicy Penalty;
  std::vector<unsigned> Miss; ///< One entry per level (or [0] when Global).
};

} // namespace zam

#endif // ZAM_SEM_MITIGATION_H
