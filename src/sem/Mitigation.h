//===- Mitigation.h - Predictive mitigation schemes -------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predictive-mitigation machinery of Sec. 7 (Fig. 6):
///
///   predict(n, ℓ) = max(n,1) · 2^Miss[ℓ]
///
/// with the fast-doubling scheme and the local (per-level) penalty policy.
/// The update rule: on a misprediction (the mitigated body consumed at least
/// the predicted time), Miss[ℓ] is incremented until the prediction exceeds
/// the consumed time, and execution idles until the prediction. A mitigated
/// block's padded duration is therefore always a schedule value, so the set
/// of distinguishable durations after K mispredictions in elapsed time T is
/// at most log-sized — the source of the |LeA↑|·log(K+1)·(1+log T) bound.
///
/// Alternative schemes/policies are pluggable for the ablation benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_MITIGATION_H
#define ZAM_SEM_MITIGATION_H

#include "lattice/SecurityLattice.h"

#include <cstdint>
#include <vector>

namespace zam {

/// A prediction schedule: maps (initial estimate, miss count) to the
/// predicted duration.
class MitigationScheme {
public:
  virtual ~MitigationScheme();

  virtual uint64_t predict(uint64_t InitialEstimate, unsigned Misses) const = 0;
  virtual const char *name() const = 0;
};

/// The paper's scheme: predict(n, k) = max(n,1) · 2^k (shift capped so the
/// prediction never overflows).
class FastDoublingScheme final : public MitigationScheme {
public:
  uint64_t predict(uint64_t InitialEstimate, unsigned Misses) const override;
  const char *name() const override { return "fast-doubling"; }
};

/// Ablation alternative: predict(n, k) = max(n,1) · (k+1). Linear schedules
/// waste less time per misprediction but admit more distinguishable
/// durations, i.e. leak more per unit time.
class LinearScheme final : public MitigationScheme {
public:
  uint64_t predict(uint64_t InitialEstimate, unsigned Misses) const override;
  const char *name() const override { return "linear"; }
};

/// Shared singletons (stateless schemes).
const MitigationScheme &fastDoublingScheme();
const MitigationScheme &linearScheme();

/// How mispredictions penalize future predictions (Sec. 7 cites [38]):
/// PerLevel keeps one Miss counter per security level (the paper's local
/// policy); Global shares a single counter across all levels (coarser, the
/// ablation baseline).
enum class PenaltyPolicy { PerLevel, Global };

/// The runtime Miss table plus the update rule of Fig. 6.
class MitigationState {
public:
  MitigationState(const SecurityLattice &Lat, const MitigationScheme &Scheme,
                  PenaltyPolicy Policy);

  /// Current prediction for a mitigate with initial estimate \p Estimate at
  /// level \p Level.
  uint64_t predict(int64_t Estimate, Label Level) const;

  unsigned misses(Label Level) const;

  struct Outcome {
    uint64_t Duration = 0;     ///< Final prediction = padded duration.
    bool Mispredicted = false; ///< Whether Miss was incremented.
  };

  /// Applies the update rule: increments Miss[\p Level] while the body's
  /// \p Elapsed time has reached the prediction, then returns the final
  /// (padded) duration.
  Outcome settle(int64_t Estimate, Label Level, uint64_t Elapsed);

  void reset();

  const MitigationScheme &scheme() const { return *Scheme; }
  PenaltyPolicy policy() const { return Policy; }

private:
  unsigned &missSlot(Label Level);
  unsigned missSlotValue(Label Level) const;

  const SecurityLattice *Lat;
  const MitigationScheme *Scheme;
  PenaltyPolicy Policy;
  std::vector<unsigned> Miss; ///< One entry per level (or [0] when Global).
};

} // namespace zam

#endif // ZAM_SEM_MITIGATION_H
