//===- Provenance.h - Source-attribution cost provenance --------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter side of the source-attribution profiler: a cursor naming
/// the source construct currently being charged, and an abstract sink that
/// receives every cost event tagged with that cursor. The obs layer's
/// CostLedger implements the sink (sem must not depend on obs, so only the
/// interface lives here — the same layering as
/// InterpreterOptions::OnMitigateWindow).
///
/// Cursor discipline (both engines follow it identically, so their ledgers
/// agree bit for bit):
///   - Seq is transparent (it lowers away entirely); every other command
///     sets Cur.Loc to its own location when its step begins.
///   - Expression evaluation narrows Cur.Loc to the innermost valid
///     sub-expression location for the duration of each load's own accesses
///     (evalIrExpr uses per-operand locations precomputed by the lowering
///     pass and restores the cursor on return, so it is back at the command
///     when the step's cycles are charged).
///   - Cur.Site is the η of the innermost open mitigate window (kNoSite
///     outside any window); body costs charge to the innermost window only
///     (self/exclusive accounting).
///   - Mitigation padding is charged at the mitigate command's own location
///     with Cur.Site = η, right before the window closes.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_PROVENANCE_H
#define ZAM_SEM_PROVENANCE_H

#include "hw/MachineEnv.h"
#include "sem/Event.h"
#include "support/SourceLoc.h"

#include <cstdint>

namespace zam {

/// Names the source construct to which the interpreter is currently
/// charging costs.
struct CostCursor {
  /// Sentinel: not inside any mitigate window.
  static constexpr unsigned kNoSite = ~0u;

  /// Innermost Cmd/Expr location being executed (Line 0 = unknown).
  SourceLoc Loc;
  /// η of the innermost open mitigate window, or kNoSite.
  unsigned Site = kNoSite;
};

/// What a chargeCycles batch paid for.
enum class CycleKind {
  Step,  ///< Base step, fetch, ALU, branch, and data-access latency.
  Sleep, ///< The max(n,0) cycles a sleep command idles.
  Pad,   ///< Mitigation padding (prediction − consumed).
};

/// Receives every cost event of a run, tagged with the current cursor.
/// Implementations must be deterministic; they are invoked on the
/// interpreter's thread.
class CostSink {
public:
  virtual ~CostSink() = default;

  /// \p N cycles of kind \p K elapsed while the cursor was at \p Cur.
  virtual void chargeCycles(const CostCursor &Cur, CycleKind K, uint64_t N) = 0;

  /// One completed hardware access (hit or miss) occurred at \p Cur.
  virtual void chargeAccess(const CostCursor &Cur, const HwAccess &Access) = 0;

  /// The mitigate window \p R settled while the cursor was at its own
  /// mitigate command (Cur.Site == R.Eta). Fires after the window's padding
  /// was charged and after R was appended to the trace.
  virtual void closeWindow(const CostCursor &Cur, const MitigateRecord &R) = 0;
};

struct IrProgram;

/// Receives the execution core's own dispatch stream: one callback per
/// instruction dispatched, plus branch directions and mitigate-window
/// settle outcomes. This is the engine self-profiler's data feed
/// (obs/ExecProfile.h implements it) — the same sem/obs layering as
/// CostSink. Implementations must be deterministic; they are invoked on
/// the interpreter's thread. Halt is never dispatched (the core stops
/// when the program counter lands on it), so it never reaches onDispatch.
class ExecProbe {
public:
  virtual ~ExecProbe() = default;

  /// A core was constructed over \p IR; fires once per run, before any
  /// dispatch. Probes capture per-pc descriptors here (the IR outlives
  /// the run only if the caller keeps it, so copy what you need).
  virtual void onProgram(const IrProgram &IR) = 0;

  /// The instruction at \p Pc is about to execute.
  virtual void onDispatch(uint32_t Pc) = 0;

  /// The Branch at \p Pc resolved; \p Taken is true when control went to
  /// the branch target (guard nonzero), false for fall-through.
  virtual void onBranch(uint32_t Pc, bool Taken) = 0;

  /// The superinstruction headed at \p FirstPc is about to execute as one
  /// fused dispatch covering \p SecondPc as well. Purely additive: the two
  /// constituent onDispatch (and onBranch) callbacks still fire, so the
  /// logical dispatch stream — and every metric derived from it — is
  /// unchanged by fusion. Realized-fusion accounting (the `exec.fused.*`
  /// namespace) hangs off this hook alone; the default ignores it.
  virtual void onFused(uint32_t FirstPc, uint32_t SecondPc) {
    (void)FirstPc;
    (void)SecondPc;
  }

  /// The mitigate window with site \p Eta settled, costing \p Epochs
  /// scheduler misprediction epochs (0 = the prediction held).
  virtual void onSettle(unsigned Eta, unsigned Epochs) = 0;
};

} // namespace zam

#endif // ZAM_SEM_PROVENANCE_H
