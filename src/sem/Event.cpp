//===- Event.cpp ----------------------------------------------------------===//

#include "sem/Event.h"

#include <cinttypes>
#include <cstdio>

using namespace zam;

std::vector<AssignEvent> Trace::observableBy(Label AdversaryLevel,
                                             const SecurityLattice &Lat) const {
  std::vector<AssignEvent> Out;
  for (const AssignEvent &E : Events)
    if (Lat.flowsTo(E.VarLabel, AdversaryLevel))
      Out.push_back(E);
  return Out;
}

std::string Trace::observationKey(Label AdversaryLevel,
                                  const SecurityLattice &Lat) const {
  std::string Key;
  char Buf[96];
  for (const AssignEvent &E : Events) {
    if (!Lat.flowsTo(E.VarLabel, AdversaryLevel))
      continue;
    std::snprintf(Buf, sizeof(Buf), "%s[%" PRIu64 "]=%" PRId64 "@%" PRIu64 ";",
                  E.Var.c_str(), E.IsArrayStore ? E.ElemIndex : 0, E.Value,
                  E.Time);
    Key += Buf;
  }
  return Key;
}
