//===- Event.h - Observable events and execution traces ---------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observable assignment events (x, v, t) of Sec. 6.1 and the per-mitigate
/// records (M_η, t) of Sec. 6.3. A Trace collects both for one execution;
/// analysis/Leakage.h computes adversary projections and the quantitative
/// measures of Definitions 1 and 2 over traces.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_EVENT_H
#define ZAM_SEM_EVENT_H

#include "hw/CacheConfig.h"
#include "lattice/Label.h"
#include "lattice/SecurityLattice.h"

#include <cstdint>
#include <string>
#include <vector>

namespace zam {

/// One observable assignment event (x, v, t). Array stores carry the
/// (wrapped) element index. The adversary at level ℓA observes the event iff
/// Γ(x) ⊑ ℓA; monitoring low memory also reveals t (the coresident threat
/// model of Sec. 3.4).
struct AssignEvent {
  std::string Var;
  Label VarLabel; ///< Γ(x), recorded to avoid re-lookup in analyses.
  bool IsArrayStore = false;
  uint64_t ElemIndex = 0;
  int64_t Value = 0;
  uint64_t Time = 0; ///< Global clock G' at the completing transition.

  bool operator==(const AssignEvent &Other) const = default;
};

/// One executed mitigate command: the (M_η, t) tuples of Sec. 6.3, ordered
/// by completion time in the trace.
struct MitigateRecord {
  unsigned Eta = 0;      ///< Source identifier η.
  Label PcLabel;         ///< pc(M_η): the runtime pc at the occurrence.
  Label Level;           ///< lev(M_η): the declared mitigation level.
  int64_t Estimate = 0;  ///< Evaluated initial estimate n at entry.
  uint64_t Start = 0;    ///< Clock when the mitigated body began.
  uint64_t Duration = 0; ///< Padded duration (equals the final prediction).
  uint64_t BodyTime = 0; ///< Unpadded execution time of the body.
  bool Mispredicted = false;
  /// Miss[lev(M_η)] immediately after this window settled. The leakage
  /// accountant (obs/LeakAudit.h) reads it to price the next window's
  /// schedule without replaying the whole Miss table.
  unsigned MissesAfter = 0;
  /// Source line of the mitigate command (0 when unknown); the profiler
  /// attributes the window's leakage bits and padding to it.
  uint32_t Line = 0;

  bool operator==(const MitigateRecord &Other) const = default;
};

/// Language-level operation counters for one execution — the interpreter
/// side of the telemetry subsystem. Deterministic (derived only from the
/// executed program), so they may appear in byte-stable report JSON. Both
/// engines maintain them identically; the agreement tests compare them.
struct OpCounters {
  uint64_t Assignments = 0;     ///< Variable and array-element stores.
  uint64_t Branches = 0;        ///< if entries plus while guard evaluations.
  uint64_t MitigateEntries = 0; ///< mitigate commands entered.

  bool operator==(const OpCounters &Other) const = default;
};

/// One hardware access that missed somewhere in the hierarchy, recorded by
/// the big-step engine when InterpreterOptions::RecordMisses is set. Time
/// is the global clock at the start of the surrounding evaluation step (the
/// per-access offset within a step is not modeled at the language level).
struct AccessSample {
  Addr A = 0;
  uint64_t Time = 0;   ///< Clock at the start of the enclosing step.
  uint64_t Cycles = 0; ///< Latency charged for the access.
  bool IsData = false;
  bool IsStore = false;
  bool TlbMiss = false;
  bool L1Miss = false;
  bool L2Miss = false;
  /// Source line of the innermost construct performing the access (0 when
  /// unknown); recorded only when a provenance sink is installed.
  uint32_t Line = 0;

  bool operator==(const AccessSample &Other) const = default;
};

/// Everything recorded about one execution.
struct Trace {
  std::vector<AssignEvent> Events;
  std::vector<MitigateRecord> Mitigations;
  OpCounters Ops;
  /// Miss timeline; populated only under InterpreterOptions::RecordMisses
  /// (big-step engine only — never part of trace agreement or observation
  /// keys).
  std::vector<AccessSample> Misses;
  /// Miss[ℓ] for every lattice level at completion (index = label index).
  /// With the Global penalty policy every entry is the shared counter.
  std::vector<unsigned> FinalMissTable;
  uint64_t FinalTime = 0;
  uint64_t Steps = 0;
  bool HitStepLimit = false;

  /// The ℓA-observable subsequence of events (Sec. 6.1): those with
  /// Γ(x) ⊑ ℓA.
  std::vector<AssignEvent> observableBy(Label AdversaryLevel,
                                        const SecurityLattice &Lat) const;

  /// A canonical string encoding of the ℓA-observable event sequence, used
  /// to count distinguishable observations in Definition 1.
  std::string observationKey(Label AdversaryLevel,
                             const SecurityLattice &Lat) const;
};

} // namespace zam

#endif // ZAM_SEM_EVENT_H
