//===- CostModel.h - The language-implementation timing contract *- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed per-step costs of the simulated language implementation. Together
/// with the machine environment these define the full semantics' timing: a
/// single evaluation step costs
///
///   BaseStep + fetch(codeAddr(c)) + Σ data accesses + Σ ALU ops
///              (+ Branch for if/while)
///
/// except sleep, which is a calibrated timer rather than a fetched
/// instruction: it costs only its argument's evaluation plus max(n, 0)
/// cycles, so a literal-argument sleep takes exactly max(n, 0) — the
/// accurate-sleep requirement (Property 4).
///
/// All components are deterministic functions of (c, m, E), which is what
/// makes Property 2 (deterministic execution) hold by construction; the
/// only memory influence on a step's duration is through the variables in
/// vars1(c) (Property 6) and the only machine-environment influence is
/// through state at levels ⊑ er, which the hardware models guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_COSTMODEL_H
#define ZAM_SEM_COSTMODEL_H

#include "hw/CacheConfig.h"

#include <cstdint>

namespace zam {

struct CostModel {
  uint64_t BaseStep = 1; ///< Issue overhead of every evaluation step.
  uint64_t AluOp = 1;    ///< Cost per arithmetic/logic operator node.
  uint64_t Branch = 2;   ///< Extra cost of a conditional/loop step.

  Addr CodeBase = 0x40000000;  ///< Start of the simulated code region.
  uint64_t CodeBytesPerNode = 16; ///< Spacing of per-command code addresses.
  Addr DataBase = 0x10000000;  ///< Start of the simulated data region.

  /// The instruction address fetched when command node \p NodeId steps.
  Addr codeAddr(unsigned NodeId) const {
    return CodeBase + static_cast<Addr>(NodeId) * CodeBytesPerNode;
  }
};

} // namespace zam

#endif // ZAM_SEM_COSTMODEL_H
