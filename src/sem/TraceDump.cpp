//===- TraceDump.cpp ------------------------------------------------------===//

#include "sem/TraceDump.h"

#include <cinttypes>
#include <cstdio>

using namespace zam;

std::string zam::dumpEvents(const Trace &T, const SecurityLattice &Lat,
                            std::optional<Label> Adversary) {
  std::string Out;
  char Buf[160];
  for (const AssignEvent &E : T.Events) {
    if (Adversary && !Lat.flowsTo(E.VarLabel, *Adversary))
      continue;
    if (E.IsArrayStore)
      std::snprintf(Buf, sizeof(Buf),
                    "t=%-10" PRIu64 " %s[%" PRIu64 "] := %" PRId64 "   [%s]\n",
                    E.Time, E.Var.c_str(), E.ElemIndex, E.Value,
                    Lat.name(E.VarLabel).c_str());
    else
      std::snprintf(Buf, sizeof(Buf),
                    "t=%-10" PRIu64 " %s := %" PRId64 "   [%s]\n", E.Time,
                    E.Var.c_str(), E.Value, Lat.name(E.VarLabel).c_str());
    Out += Buf;
  }
  return Out;
}

std::string zam::dumpMitigations(const Trace &T, const SecurityLattice &Lat) {
  std::string Out;
  char Buf[200];
  for (const MitigateRecord &M : T.Mitigations) {
    std::snprintf(Buf, sizeof(Buf),
                  "mitigate #%u [pc %s, lev %s]: body %" PRIu64
                  " cycles, padded to %" PRIu64 "%s\n",
                  M.Eta, Lat.name(M.PcLabel).c_str(),
                  Lat.name(M.Level).c_str(), M.BodyTime, M.Duration,
                  M.Mispredicted ? " (mispredicted)" : "");
    Out += Buf;
  }
  return Out;
}

std::string zam::dumpTrace(const Trace &T, const SecurityLattice &Lat,
                           std::optional<Label> Adversary) {
  std::string Out = dumpEvents(T, Lat, Adversary);
  Out += dumpMitigations(T, Lat);
  char Buf[120];
  std::snprintf(Buf, sizeof(Buf),
                "terminated at G = %" PRIu64 " after %" PRIu64 " steps%s\n",
                T.FinalTime, T.Steps,
                T.HitStepLimit ? " (step limit hit)" : "");
  Out += Buf;
  return Out;
}
