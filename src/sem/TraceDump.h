//===- TraceDump.h - Human-readable trace rendering -------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text rendering of execution traces: the event timeline a coresident
/// adversary would see (optionally restricted to an adversary level) and
/// the mitigate-command summary. Used by the zamc CLI and handy in tests.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_TRACEDUMP_H
#define ZAM_SEM_TRACEDUMP_H

#include "lattice/SecurityLattice.h"
#include "sem/Event.h"

#include <optional>
#include <string>

namespace zam {

/// Renders the assignment-event timeline, one line per event:
/// `t=123        x := 7   [L]`. When \p Adversary is set, only events the
/// adversary observes (Γ(x) ⊑ ℓA) are included — the (x, v, t) sequence of
/// Sec. 6.1.
std::string dumpEvents(const Trace &T, const SecurityLattice &Lat,
                       std::optional<Label> Adversary = std::nullopt);

/// Renders one line per executed mitigate:
/// `mitigate #0 [pc L, lev H]: body 406 cycles, padded to 4096`.
std::string dumpMitigations(const Trace &T, const SecurityLattice &Lat);

/// Full dump: events, mitigations, then the termination summary.
std::string dumpTrace(const Trace &T, const SecurityLattice &Lat,
                      std::optional<Label> Adversary = std::nullopt);

} // namespace zam

#endif // ZAM_SEM_TRACEDUMP_H
