//===- CoreInterpreter.cpp ------------------------------------------------===//

#include "sem/CoreInterpreter.h"

#include "sem/Eval.h"
#include "support/Casting.h"

using namespace zam;

namespace {
class CoreEngine {
public:
  CoreEngine(const Program &P, Memory M, uint64_t StepLimit)
      : P(P), M(std::move(M)), StepLimit(StepLimit) {}

  CoreResult run() {
    exec(P.body());
    CoreResult R;
    R.FinalMemory = std::move(M);
    R.Events = std::move(Events);
    R.HitStepLimit = Stopped;
    return R;
  }

private:
  bool budget() {
    if (Steps++ < StepLimit)
      return !Stopped;
    Stopped = true;
    return false;
  }

  void record(const std::string &Var, bool IsArray, uint64_t Index,
              int64_t Value) {
    AssignEvent E;
    E.Var = Var;
    E.VarLabel = M.labelOf(Var);
    E.IsArrayStore = IsArray;
    E.ElemIndex = Index;
    E.Value = Value;
    E.Time = Events.size(); // Ordinal: the core semantics has no clock.
    Events.push_back(std::move(E));
  }

  void exec(const Cmd &C) {
    if (!budget())
      return;
    switch (C.kind()) {
    case Cmd::Kind::Skip:
      return;
    case Cmd::Kind::Sleep:
      // Core semantics: sleep behaves like skip (the argument is still
      // evaluated, mirroring the big-step premise of the rule).
      evalExprPure(cast<SleepCmd>(C).duration(), M);
      return;
    case Cmd::Kind::Assign: {
      const auto &A = cast<AssignCmd>(C);
      int64_t V = evalExprPure(A.value(), M);
      M.store(A.var(), V);
      record(A.var(), false, 0, V);
      return;
    }
    case Cmd::Kind::ArrayAssign: {
      const auto &A = cast<ArrayAssignCmd>(C);
      int64_t Index = evalExprPure(A.index(), M);
      int64_t V = evalExprPure(A.value(), M);
      uint64_t Wrapped = M.wrapIndex(A.array(), Index);
      M.storeElem(A.array(), Index, V);
      record(A.array(), true, Wrapped, V);
      return;
    }
    case Cmd::Kind::Seq: {
      const auto &S = cast<SeqCmd>(C);
      exec(S.first());
      exec(S.second());
      return;
    }
    case Cmd::Kind::If: {
      const auto &I = cast<IfCmd>(C);
      exec(evalExprPure(I.cond(), M) != 0 ? I.thenCmd() : I.elseCmd());
      return;
    }
    case Cmd::Kind::While: {
      const auto &W = cast<WhileCmd>(C);
      while (evalExprPure(W.cond(), M) != 0) {
        exec(W.body());
        if (Stopped || !budget())
          return;
      }
      return;
    }
    case Cmd::Kind::Mitigate:
      // Identity semantics: mitigate (e,ℓ) c evaluates to c.
      evalExprPure(cast<MitigateCmd>(C).initialEstimate(), M);
      exec(cast<MitigateCmd>(C).body());
      return;
    }
  }

  const Program &P;
  Memory M;
  uint64_t StepLimit;
  uint64_t Steps = 0;
  bool Stopped = false;
  std::vector<AssignEvent> Events;
};
} // namespace

CoreResult zam::runCore(const Program &P, const Memory *InitialMemory,
                        uint64_t StepLimit) {
  Memory M = InitialMemory ? *InitialMemory : Memory::fromProgram(P);
  CoreEngine Engine(P, std::move(M), StepLimit);
  return Engine.run();
}
