//===- ExecCore.h - The shared timing-IR execution core ---------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One execution core for the full semantics (Fig. 2 + Fig. 6), shared by
/// both engines: FullInterpreter is a run-to-completion driver over it and
/// StepInterpreter a resumable program-counter cursor. The core executes
/// the flat timing-IR (ir/Ir.h): one IrInstr per primitive transition,
/// advancing a plain program counter — no command-tree rewriting — and owns
/// everything a transition involves:
///
///   - expression evaluation on a flat value stack (postfix IR ops);
///   - cost charging: BaseStep + I-fetch + data accesses + ALU costs
///     (+ Branch for guards; sleep is a calibrated timer with no fetch);
///   - hardware access through the machine environment under the
///     instruction's precomputed [er, ew] labels;
///   - predictive mitigation windows (Fig. 6): a frame stack of open
///     mitigate sites, settled by MitEnd exactly like the paper's
///     MitigateEnd continuation;
///   - CostSink attribution: the cursor (location + innermost open site)
///     moves exactly as in the tree engines, so ledgers and miss samples
///     are byte-for-byte identical.
///
/// The IR is immutable; the core holds all run state, so engines stay thin
/// wrappers that only decide when to call step() and when to install the
/// hardware observer.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_EXECCORE_H
#define ZAM_SEM_EXECCORE_H

#include "hw/MachineEnv.h"
#include "ir/Ir.h"
#include "sem/Eval.h"
#include "sem/Event.h"
#include "sem/FullInterpreter.h"
#include "sem/Memory.h"
#include "sem/Mitigation.h"
#include "sem/Provenance.h"

#include <vector>

namespace zam {

/// Evaluates one lowered expression against \p M and \p Env under timing
/// labels [\p Read, \p Write], accumulating data-access and ALU costs into
/// \p Cycles. When \p Cur is set, the cursor narrows to each operation's
/// effective location for its hardware access and is restored on return —
/// the same attribution discipline the AST walker used. \p Stack must have
/// at least E.MaxDepth capacity; pass nullptr to use a local buffer
/// (tests/tools).
int64_t evalIrExpr(const IrExpr &E, const Memory &M, MachineEnv &Env,
                   Label Read, Label Write, const CostModel &Costs,
                   uint64_t &Cycles, CostCursor *Cur = nullptr,
                   int64_t *Stack = nullptr);

class ExecCore final : public HwObserver {
public:
  /// Executes \p IR (which must outlive the core) with initial memory
  /// \p InitM on \p Env. \p P provides the lattice and declarations.
  ExecCore(const IrProgram &IR, const Program &P, Memory InitM,
           MachineEnv &Env, const InterpreterOptions &Opts);

  /// Whether the configuration has reached ⟨stop, m, E, G⟩ (or the step
  /// limit).
  bool done() const { return Halted; }

  /// Performs exactly one transition (one instruction). No-op when done.
  void step();

  /// Steps to completion (the big-step driver's tight loop).
  void run();

  Memory &memory() { return M; }
  const Memory &memory() const { return M; }
  uint64_t clock() const { return G; }
  Trace &trace() { return T; }
  const Trace &trace() const { return T; }
  const MitigationState &mitigationState() const { return MitState; }

  /// The source command the next transition executes (nullptr when done).
  const Cmd *currentCmd() const {
    return Halted ? nullptr : Code[PC].Origin;
  }

private:
  /// HwObserver hook (installed by the owning engine): forwards accesses to
  /// the provenance sink and samples misses under RecordMisses.
  void onAccess(const HwAccess &Access) override;

  void execInstr(const IrInstr &I);
  void finalize();
  uint64_t stepBase(const IrInstr &I) {
    return Opts.Costs.BaseStep + Env.fetch(I.CodeAddr, I.Read, I.Write);
  }
  void charge(CycleKind K, uint64_t N) {
    if (Opts.Provenance)
      Opts.Provenance->chargeCycles(Cur, K, N);
  }
  int64_t eval(const IrExpr &E, const IrInstr &I, uint64_t &Cycles) {
    return evalIrExpr(E, M, Env, I.Read, I.Write, Opts.Costs, Cycles,
                      TrackCursor ? &Cur : nullptr, Stack.data());
  }
  void record(const MemorySlot &S, bool IsArray, uint64_t Index,
              int64_t Value);

  /// A mitigate window opened by MitEnter and pending settlement.
  struct MitFrame {
    unsigned Eta = 0;
    int64_t Estimate = 0;
    Label Level;
    Label Pc;
    uint64_t Start = 0; ///< s_η: G at completion of the entry step.
    /// The site's resolved schedule (from the MitEnter instruction; never
    /// null once a frame is open). Settlement prices with exactly this
    /// policy, so per-site overrides stay per-site even when the Miss
    /// table is shared.
    const MitigationPolicy *Policy = nullptr;
  };

  const Program &P;
  MachineEnv &Env;
  InterpreterOptions Opts;
  Memory M;
  MitigationState OwnMitState;
  MitigationState &MitState;
  const IrInstr *Code; ///< The IR instruction array.
  Trace T;
  uint64_t G = 0;
  uint32_t PC = 0;
  bool Halted = false;
  /// Cursor maintenance is skipped when nothing observes it (no sink, no
  /// miss sampling) — the cursor is only visible through those channels.
  bool TrackCursor;
  CostCursor Cur;
  std::vector<MitFrame> Frames;
  std::vector<int64_t> Stack; ///< Expression value stack (MaxEvalDepth).
};

} // namespace zam

#endif // ZAM_SEM_EXECCORE_H
