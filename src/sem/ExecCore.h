//===- ExecCore.h - The shared LIR execution core ---------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One execution core for the full semantics (Fig. 2 + Fig. 6), shared by
/// both engines: FullInterpreter is a run-to-completion driver over it and
/// StepInterpreter a resumable program-counter cursor. The core executes
/// the LIR tier (ir/Lir.h) — the timing-IR flattened into register-slot
/// micro-ops — and owns everything a transition involves:
///
///   - expression evaluation as register-transfer micro-ops (no run-time
///     value stack: operand registers and addresses are precomputed);
///   - cost charging: BaseStep + I-fetch + data accesses + ALU costs
///     (+ Branch for guards; sleep is a calibrated timer with no fetch);
///   - hardware access through the machine environment under the
///     instruction's precomputed [er, ew] labels — the machine env is the
///     security boundary and the LIR tier does not move it;
///   - predictive mitigation windows (Fig. 6): a frame stack of open
///     mitigate sites, settled by MitEnd exactly like the paper's
///     MitigateEnd continuation;
///   - CostSink attribution: the cursor (location + innermost open site)
///     moves exactly as in the tree engines, so ledgers and miss samples
///     are byte-for-byte identical.
///
/// run() executes through one of two dispatch loops — computed-goto
/// threaded code when the build carries it (ZAM_THREADED_DISPATCH), a
/// portable switch loop otherwise — and realizes the program's fusion
/// plan: a pc heading a fused pair dispatches both constituents in one
/// loop iteration. Observability is at *logical* granularity throughout:
/// each constituent still charges, traces and probes individually (plus
/// one additive ExecProbe::onFused per realized pair), and the step-limit
/// check sits between constituents, so every observable is bit-identical
/// across {threaded, switch} × {fusion on, off} × {run, step}.
///
/// step() executes exactly one logical transition through the de-fused
/// instruction table, ignoring the fusion plan — that is what makes the
/// Step engine's cursor resumable at any pc, including the middle of a
/// superinstruction.
///
/// The LIR is immutable; the core holds all run state, so engines stay
/// thin wrappers that only decide when to call step()/run() and when to
/// install the hardware observer.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_SEM_EXECCORE_H
#define ZAM_SEM_EXECCORE_H

#include "hw/MachineEnv.h"
#include "ir/Ir.h"
#include "ir/Lir.h"
#include "sem/Eval.h"
#include "sem/Event.h"
#include "sem/FullInterpreter.h"
#include "sem/Memory.h"
#include "sem/Mitigation.h"
#include "sem/Provenance.h"

#include <memory>
#include <vector>

namespace zam {

/// Evaluates one lowered expression against \p M and \p Env under timing
/// labels [\p Read, \p Write], accumulating data-access and ALU costs into
/// \p Cycles. When \p Cur is set, the cursor narrows to each operation's
/// effective location for its hardware access and is restored on return —
/// the same attribution discipline the AST walker used. \p Stack must have
/// at least E.MaxDepth capacity; pass nullptr to use a local buffer
/// (tests/tools). This is the IR-tier reference evaluator; the execution
/// core itself runs the register-transfer form.
int64_t evalIrExpr(const IrExpr &E, const Memory &M, MachineEnv &Env,
                   Label Read, Label Write, const CostModel &Costs,
                   uint64_t &Cycles, CostCursor *Cur = nullptr,
                   int64_t *Stack = nullptr);

/// Lowers \p IR to the LIR tier and overlays the fusion plan the options
/// select (Opts.Fusion / Opts.FuseProfile). The shared second lowering
/// stage both engines run at construction.
std::unique_ptr<LirProgram> compileLir(const IrProgram &IR,
                                       const InterpreterOptions &Opts);

class ExecCore final : public HwObserver {
public:
  /// Executes \p L (which, with its IR tier, must outlive the core) with
  /// initial memory \p InitM on \p Env. \p P provides the lattice and
  /// declarations.
  ExecCore(const LirProgram &L, const Program &P, Memory InitM,
           MachineEnv &Env, const InterpreterOptions &Opts);

  /// Whether the configuration has reached ⟨stop, m, E, G⟩ (or the step
  /// limit).
  bool done() const { return Halted; }

  /// Performs exactly one logical transition (one instruction) through the
  /// de-fused table. No-op when done.
  void step();

  /// Runs to completion through the fused dispatch loop (the big-step
  /// driver's tight loop). Interleaves with step(): resuming run() from
  /// any pc — including a superinstruction's second constituent — is
  /// sound because fused heads are re-checked per dispatch.
  void run();

  Memory &memory() { return M; }
  const Memory &memory() const { return M; }
  uint64_t clock() const { return G; }
  Trace &trace() { return T; }
  const Trace &trace() const { return T; }
  const MitigationState &mitigationState() const { return MitState; }

  /// The source command the next transition executes (nullptr when done).
  const Cmd *currentCmd() const {
    return Halted ? nullptr : Code[PC].Origin;
  }

private:
  /// HwObserver hook (installed by the owning engine): forwards accesses to
  /// the provenance sink and samples misses under RecordMisses.
  void onAccess(const HwAccess &Access) override;

  /// Per-opcode bodies. Each begins with the shared dispatch head
  /// (cursor + probe) and fully executes one logical transition.
  void execSkip(const LirInst &I);
  void execAssign(const LirInst &I);
  void execStore(const LirInst &I);
  void execBranch(const LirInst &I);
  void execSleep(const LirInst &I);
  void execMitEnter(const LirInst &I);
  void execMitEnd(const LirInst &I);
  /// One logical transition of the instruction at \p I (a switch over the
  /// bodies above). Never called on Halt.
  void execInstr(const LirInst &I);

  /// The two run loops. Identical observable behavior; runThreaded exists
  /// only when the build carries computed-goto dispatch.
  void runSwitch();
  void runThreaded();

  void finalize();
  void head(const LirInst &I) {
    // Attribution: every transition moves the cursor to its instruction's
    // source location before any of its costs (including the I-fetch).
    if (TrackCursor)
      Cur.Loc = I.Loc;
    if (Probe)
      Probe->onDispatch(PC);
  }
  uint64_t stepBase(const LirInst &I) {
    return BaseStepCost + Env.fetch(I.CodeAddr, I.Read, I.Write);
  }
  void charge(CycleKind K, uint64_t N) {
    if (Prov)
      Prov->chargeCycles(Cur, K, N);
  }
  /// Executes the micro-op span [\p U, \p U + \p N) of \p I and returns
  /// its value. Restores the cursor to the instruction's own location, so
  /// costs charged after evaluation attribute to the command.
  int64_t evalSpan(const LirInst &I, uint32_t U, uint32_t N,
                   uint64_t &Cycles);
  void record(const MemorySlot &S, bool IsArray, uint64_t Index,
              int64_t Value);

  /// A mitigate window opened by MitEnter and pending settlement.
  struct MitFrame {
    unsigned Eta = 0;
    int64_t Estimate = 0;
    Label Level;
    Label Pc;
    uint64_t Start = 0; ///< s_η: G at completion of the entry step.
    /// The site's resolved schedule (from the MitEnter instruction; never
    /// null once a frame is open). Settlement prices with exactly this
    /// policy, so per-site overrides stay per-site even when the Miss
    /// table is shared.
    const MitigationPolicy *Policy = nullptr;
  };

  const Program &P;
  MachineEnv &Env;
  InterpreterOptions Opts;
  /// Hot copies of the per-dispatch Opts fields: the dispatch loop reads
  /// these every transition, and pulling them next to the rest of the run
  /// state spares it the walk through the options block.
  ExecProbe *Probe;
  CostSink *Prov;
  uint64_t BaseStepCost;
  uint64_t AluCost;
  uint64_t StepLimit;
  Memory M;
  MitigationState OwnMitState;
  MitigationState &MitState;
  const LirInst *Code;   ///< The logical (de-fused) instruction array.
  const LirUop *Uops;    ///< The shared micro-op pool.
  const uint32_t *Fused; ///< The fusion plan (FusedWith).
  Trace T;
  uint64_t G = 0;
  uint32_t PC = 0;
  bool Halted = false;
  /// Cursor maintenance is skipped when nothing observes it (no sink, no
  /// miss sampling) — the cursor is only visible through those channels.
  bool TrackCursor;
  /// Whether run() uses the threaded loop (build support ∧ Opts.Dispatch).
  bool UseThreaded;
  CostCursor Cur;
  std::vector<MitFrame> Frames;
  std::vector<int64_t> Regs; ///< The micro-op register file (NumRegs).
  /// Per-slot element-0 pointers: the load fast path indexes straight into
  /// slot storage without touching Memory's bookkeeping. Stores still go
  /// through Memory::slotAt (they need the slot metadata for the event
  /// record anyway).
  std::vector<const int64_t *> SlotData;
};

} // namespace zam

#endif // ZAM_SEM_EXECCORE_H
