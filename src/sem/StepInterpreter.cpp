//===- StepInterpreter.cpp ------------------------------------------------===//

#include "sem/StepInterpreter.h"

#include "sem/Eval.h"
#include "sem/StaticLabels.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

using namespace zam;

StepInterpreter::StepInterpreter(const Program &P, MachineEnv &Env,
                                 InterpreterOptions Opts)
    : P(P), Env(Env), Opts(Opts),
      Scheme(Opts.Scheme ? *Opts.Scheme : fastDoublingScheme()),
      M(Memory::fromProgram(P, Opts.Costs.DataBase)),
      OwnMitState(P.lattice(), Scheme, Opts.Penalty),
      MitState(Opts.SharedMitState ? *Opts.SharedMitState : OwnMitState),
      PcLabels(computePcLabels(P)) {
  if (!P.hasBody())
    reportFatalError("program has no body");
  Current = P.body().clone();
  if (Opts.Provenance) {
    PriorObserver = Env.observer();
    Env.setObserver(this);
  }
}

StepInterpreter::StepInterpreter(const Program &P, CmdPtr C,
                                 Memory InitialMemory, MachineEnv &Env,
                                 InterpreterOptions Opts)
    : P(P), Env(Env), Opts(Opts),
      Scheme(Opts.Scheme ? *Opts.Scheme : fastDoublingScheme()),
      M(std::move(InitialMemory)),
      OwnMitState(P.lattice(), Scheme, Opts.Penalty),
      MitState(Opts.SharedMitState ? *Opts.SharedMitState : OwnMitState),
      PcLabels(computePcLabels(P)), Current(std::move(C)) {
  if (Opts.Provenance) {
    PriorObserver = Env.observer();
    Env.setObserver(this);
  }
}

StepInterpreter::StepInterpreter(StepInterpreter &&Other)
    : P(Other.P), Env(Other.Env), Opts(Other.Opts), Scheme(Other.Scheme),
      M(std::move(Other.M)), OwnMitState(std::move(Other.OwnMitState)),
      MitState(&Other.MitState == &Other.OwnMitState ? OwnMitState
                                                     : Other.MitState),
      PcLabels(std::move(Other.PcLabels)), Current(std::move(Other.Current)),
      T(std::move(Other.T)), G(Other.G), Cur(Other.Cur),
      SiteStack(std::move(Other.SiteStack)),
      PriorObserver(Other.PriorObserver) {
  if (Opts.Provenance && Env.observer() == &Other)
    Env.setObserver(this);
  // The source's destructor must neither unhook us nor restore the prior
  // observer a second time.
  Other.Opts.Provenance = nullptr;
}

StepInterpreter::~StepInterpreter() {
  if (Opts.Provenance && Env.observer() == this)
    Env.setObserver(PriorObserver);
}

uint64_t StepInterpreter::stepBase(const Cmd &C, Label Read, Label Write) {
  return Opts.Costs.BaseStep +
         Env.fetch(Opts.Costs.codeAddr(C.nodeId()), Read, Write);
}

void StepInterpreter::charge(CycleKind K, uint64_t N) {
  if (Opts.Provenance)
    Opts.Provenance->chargeCycles(Cur, K, N);
}

void StepInterpreter::onAccess(const HwAccess &Access) {
  if (Opts.Provenance)
    Opts.Provenance->chargeAccess(Cur, Access);
}

void StepInterpreter::record(const std::string &Var, bool IsArray,
                             uint64_t Index, int64_t Value) {
  AssignEvent E;
  E.Var = Var;
  E.VarLabel = M.labelOf(Var);
  E.IsArrayStore = IsArray;
  E.ElemIndex = Index;
  E.Value = Value;
  E.Time = G;
  T.Events.push_back(std::move(E));
}

CmdPtr StepInterpreter::stepCmd(CmdPtr C) {
  // Sequential composition steps its first component (Property 3); no time
  // is charged for the composition itself.
  if (C->kind() == Cmd::Kind::Seq) {
    auto *S = cast<SeqCmd>(C.get());
    CmdPtr First = S->takeFirst();
    CmdPtr Second = S->takeSecond();
    CmdPtr FirstNext = stepCmd(std::move(First));
    if (!FirstNext)
      return Second;
    return std::make_unique<SeqCmd>(std::move(FirstNext), std::move(Second));
  }

  if (!C->labels().complete())
    reportFatalError("command lacks timing labels; run label inference");

  // Attribution: the cursor tracks the stepping command's own location and
  // the innermost open mitigate window (top of the site stack).
  Cur.Loc = C->loc();
  Cur.Site = SiteStack.empty() ? CostCursor::kNoSite : SiteStack.back();

  const Label Er = *C->labels().Read;
  const Label Ew = *C->labels().Write;
  const CostModel &Costs = Opts.Costs;

  switch (C->kind()) {
  case Cmd::Kind::Skip: {
    uint64_t Cycles = stepBase(*C, Er, Ew);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    return nullptr;
  }

  case Cmd::Kind::Assign: {
    auto *A = cast<AssignCmd>(C.get());
    ++T.Ops.Assignments;
    uint64_t Cycles = stepBase(*C, Er, Ew);
    int64_t V = evalExprTimed(A->value(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    Cycles += Env.dataAccess(M.addrOf(A->var()), /*IsStore=*/true, Er, Ew);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    M.store(A->var(), V);
    record(A->var(), false, 0, V);
    return nullptr;
  }

  case Cmd::Kind::ArrayAssign: {
    auto *A = cast<ArrayAssignCmd>(C.get());
    ++T.Ops.Assignments;
    uint64_t Cycles = stepBase(*C, Er, Ew);
    int64_t Index =
        evalExprTimed(A->index(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    int64_t V = evalExprTimed(A->value(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    Cycles += Costs.AluOp; // Address computation.
    Cycles += Env.dataAccess(M.addrOfElem(A->array(), Index), /*IsStore=*/true,
                             Er, Ew);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    uint64_t Wrapped = M.wrapIndex(A->array(), Index);
    M.storeElem(A->array(), Index, V);
    record(A->array(), true, Wrapped, V);
    return nullptr;
  }

  case Cmd::Kind::If: {
    auto *I = cast<IfCmd>(C.get());
    ++T.Ops.Branches;
    uint64_t Cycles = stepBase(*C, Er, Ew) + Costs.Branch;
    int64_t Guard =
        evalExprTimed(I->cond(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    return Guard != 0 ? I->takeThen() : I->takeElse();
  }

  case Cmd::Kind::While: {
    auto *W = cast<WhileCmd>(C.get());
    ++T.Ops.Branches;
    uint64_t Cycles = stepBase(*C, Er, Ew) + Costs.Branch;
    int64_t Guard =
        evalExprTimed(W->cond(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    if (Guard == 0)
      return nullptr;
    // while e do c → c; while e do c. The body is cloned: the loop node
    // retains its pristine copy for later iterations.
    CmdPtr BodyCopy = W->body().clone();
    return std::make_unique<SeqCmd>(std::move(BodyCopy), std::move(C));
  }

  case Cmd::Kind::Sleep: {
    // Calibrated timer semantics: no fetch/issue cost, so a literal sleep
    // takes exactly max(n, 0) cycles (Property 4).
    auto *S = cast<SleepCmd>(C.get());
    uint64_t Cycles = 0;
    int64_t N =
        evalExprTimed(S->duration(), M, Env, Er, Ew, Costs, Cycles, &Cur);
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    if (N > 0) {
      charge(CycleKind::Sleep, static_cast<uint64_t>(N));
      G += static_cast<uint64_t>(N);
    }
    return nullptr;
  }

  case Cmd::Kind::Mitigate: {
    auto *Mit = cast<MitigateCmd>(C.get());
    ++T.Ops.MitigateEntries;
    uint64_t Cycles = stepBase(*C, Er, Ew);
    int64_t N = evalExprTimed(Mit->initialEstimate(), M, Env, Er, Ew, Costs,
                              Cycles, &Cur);
    // The entry step belongs to the enclosing window; the site opens with
    // the rewritten body below.
    charge(CycleKind::Step, Cycles);
    G += Cycles;
    auto PcIt = PcLabels.find(C->nodeId());
    Label Pc = PcIt != PcLabels.end() ? PcIt->second : P.lattice().bottom();
    SiteStack.push_back(Mit->mitigateId());
    // S-MTGPRED: rewrite to body ; MitigateEnd with the start time s_η
    // captured as the completion time of this entry step. The MitigateEnd
    // inherits the mitigate's source location so the window's padding and
    // leakage attribute to the mitigate line.
    auto End = std::make_unique<MitigateEndCmd>(Mit->mitigateId(), N,
                                                Mit->mitLevel(), Pc, G,
                                                P.lattice().bottom(),
                                                Mit->loc());
    return std::make_unique<SeqCmd>(Mit->takeBody(), std::move(End));
  }

  case Cmd::Kind::MitigateEnd: {
    auto *End = cast<MitigateEndCmd>(C.get());
    const uint64_t Elapsed = G - End->startTime();
    MitigationState::Outcome Out =
        MitState.settle(End->estimate(), End->mitLevel(), Elapsed);
    G = End->startTime() + Out.Duration;

    MitigateRecord R;
    R.Eta = End->eta();
    R.PcLabel = End->pcLabel();
    R.Level = End->mitLevel();
    R.Estimate = End->estimate();
    R.Start = End->startTime();
    R.Duration = Out.Duration;
    R.BodyTime = Elapsed;
    R.Mispredicted = Out.Mispredicted;
    R.MissesAfter = MitState.misses(R.Level);
    R.Line = C->loc().Line;
    T.Mitigations.push_back(R);
    if (Opts.OnMitigateWindow)
      Opts.OnMitigateWindow(T.Mitigations.back());
    // Padding attributes to the window's own site at the mitigate line,
    // then the window closes and the site pops.
    Cur.Site = End->eta();
    if (Out.Duration > Elapsed)
      charge(CycleKind::Pad, Out.Duration - Elapsed);
    if (Opts.Provenance)
      Opts.Provenance->closeWindow(Cur, T.Mitigations.back());
    if (!SiteStack.empty() && SiteStack.back() == End->eta())
      SiteStack.pop_back();
    return nullptr;
  }

  case Cmd::Kind::Seq:
    break; // Handled above.
  }
  reportFatalError("unexpected command kind in small-step execution");
}

void StepInterpreter::step() {
  if (done())
    return;
  if (++T.Steps > Opts.StepLimit) {
    T.HitStepLimit = true;
    Current = nullptr;
  } else {
    Current = stepCmd(std::move(Current));
  }
  if (done()) {
    T.FinalTime = G;
    T.FinalMissTable.clear();
    for (Label L : P.lattice().allLabels())
      T.FinalMissTable.push_back(MitState.misses(L));
  }
}

Trace StepInterpreter::runToCompletion() {
  while (!done())
    step();
  return T;
}
