//===- StepInterpreter.cpp - Resumable small-step full semantics ----------===//

#include "sem/StepInterpreter.h"

#include "ir/Lowering.h"

using namespace zam;

StepInterpreter::StepInterpreter(const Program &P, MachineEnv &Env,
                                 InterpreterOptions Opts)
    : Env(Env),
      IR(std::make_unique<IrProgram>(
          lowerProgram(P, Opts.Costs, Opts.Mitigation))),
      LIR(compileLir(*IR, Opts)),
      Core(std::make_unique<ExecCore>(
          *LIR, P, Memory::fromProgram(P, Opts.Costs.DataBase), Env, Opts)) {
  if (Opts.Provenance) {
    PriorObserver = Env.observer();
    Env.setObserver(Core.get());
    ObserverInstalled = true;
  }
}

StepInterpreter::StepInterpreter(const Program &P, CmdPtr C,
                                 Memory InitialMemory, MachineEnv &Env,
                                 InterpreterOptions Opts)
    : Env(Env), Owned(std::move(C)),
      IR(std::make_unique<IrProgram>(
          lowerCommand(P, *Owned, Opts.Costs, Opts.Mitigation))),
      LIR(compileLir(*IR, Opts)),
      Core(std::make_unique<ExecCore>(*LIR, P, std::move(InitialMemory), Env,
                                      Opts)) {
  if (Opts.Provenance) {
    PriorObserver = Env.observer();
    Env.setObserver(Core.get());
    ObserverInstalled = true;
  }
}

StepInterpreter::StepInterpreter(StepInterpreter &&Other)
    : Env(Other.Env), Owned(std::move(Other.Owned)), IR(std::move(Other.IR)),
      LIR(std::move(Other.LIR)), Core(std::move(Other.Core)),
      ObserverInstalled(Other.ObserverInstalled),
      PriorObserver(Other.PriorObserver) {
  // The core (and with it Env's observer registration) moved by pointer;
  // the source must not restore the prior observer a second time.
  Other.ObserverInstalled = false;
}

StepInterpreter::~StepInterpreter() {
  if (ObserverInstalled && Env.observer() == Core.get())
    Env.setObserver(PriorObserver);
}

Trace StepInterpreter::runToCompletion() {
  Core->run();
  return Core->trace();
}
