//===- Cache.cpp ----------------------------------------------------------===//

#include "hw/Cache.h"

#include <algorithm>
#include <cassert>

using namespace zam;

Cache::Cache(const CacheConfig &Config) : Config(Config) {
  assert(Config.NumSets > 0 && Config.Assoc > 0 && Config.BlockBytes > 0 &&
         "degenerate cache configuration");
  Sets.resize(Config.NumSets);
  if (std::has_single_bit(Config.BlockBytes) &&
      std::has_single_bit(Config.NumSets)) {
    BlockShift = static_cast<unsigned>(std::countr_zero(Config.BlockBytes));
    SetMask = Config.NumSets - 1;
    TagShift = BlockShift + static_cast<unsigned>(std::countr_zero(Config.NumSets));
  }
}

/// Finds the line with \p Tag in a (possibly const) set.
static auto findLine(auto &Set, uint64_t Tag) {
  return std::find_if(Set.begin(), Set.end(),
                      [Tag](const auto &L) { return L.Tag == Tag; });
}

bool Cache::lookup(Addr A, bool MarkDirty) {
  std::vector<Line> &Set = Sets[setOf(A)];
  auto It = findLine(Set, tagOf(A));
  if (It == Set.end())
    return false;
  // Promote to MRU.
  Line L = *It;
  L.Dirty |= MarkDirty;
  Set.erase(It);
  Set.insert(Set.begin(), L);
  return true;
}

bool Cache::probe(Addr A) const {
  const std::vector<Line> &Set = Sets[setOf(A)];
  uint64_t Tag = tagOf(A);
  return std::any_of(Set.begin(), Set.end(),
                     [Tag](const Line &L) { return L.Tag == Tag; });
}

void Cache::install(Addr A, bool Dirty) {
  std::vector<Line> &Set = Sets[setOf(A)];
  uint64_t Tag = tagOf(A);
  auto It = findLine(Set, Tag);
  if (It != Set.end()) {
    Dirty |= It->Dirty;
    Set.erase(It);
  } else {
    ++Events.LineFills;
    if (Set.size() == Config.Assoc) {
      // Evict LRU.
      ++Events.Evictions;
      if (Set.back().Dirty)
        ++Events.Writebacks;
      Set.pop_back();
    }
  }
  Set.insert(Set.begin(), Line{Tag, Dirty});
}

void Cache::remove(Addr A) {
  std::vector<Line> &Set = Sets[setOf(A)];
  auto It = findLine(Set, tagOf(A));
  if (It != Set.end()) {
    if (It->Dirty)
      ++Events.Writebacks;
    Set.erase(It);
  }
}

void Cache::reset() {
  for (std::vector<Line> &Set : Sets)
    Set.clear();
}

void Cache::randomize(Rng &R, double FillFraction) {
  reset();
  for (std::vector<Line> &Set : Sets)
    for (unsigned Way = 0; Way != Config.Assoc; ++Way)
      if (R.nextDouble() < FillFraction) {
        uint64_t Tag = R.nextBelow(1u << 16);
        if (findLine(Set, Tag) == Set.end())
          Set.push_back(Line{Tag, false});
      }
}

bool Cache::operator==(const Cache &Other) const {
  if (Config != Other.Config || Sets.size() != Other.Sets.size())
    return false;
  for (size_t S = 0; S != Sets.size(); ++S) {
    const std::vector<Line> &A = Sets[S], &B = Other.Sets[S];
    if (A.size() != B.size())
      return false;
    for (size_t W = 0; W != A.size(); ++W)
      if (A[W].Tag != B[W].Tag)
        return false;
  }
  return true;
}
