//===- Cache.cpp ----------------------------------------------------------===//

#include "hw/Cache.h"

#include <algorithm>
#include <cassert>

using namespace zam;

Cache::Cache(const CacheConfig &Config)
    : Assoc(Config.Assoc), Latency(Config.Latency), Config(Config) {
  assert(Config.NumSets > 0 && Config.Assoc > 0 && Config.BlockBytes > 0 &&
         "degenerate cache configuration");
  Lines.resize(static_cast<size_t>(Config.NumSets) * Config.Assoc);
  Occupancy.assign(Config.NumSets, 0);
  if (std::has_single_bit(Config.BlockBytes) &&
      std::has_single_bit(Config.NumSets)) {
    BlockShift = static_cast<unsigned>(std::countr_zero(Config.BlockBytes));
    SetMask = Config.NumSets - 1;
    TagShift = BlockShift + static_cast<unsigned>(std::countr_zero(Config.NumSets));
  }
}

void Cache::install(Addr A, bool Dirty) {
  const unsigned S = setOf(A);
  const uint64_t Tag = tagOf(A);
  Line *Set = setLines(S);
  uint32_t &N = Occupancy[S];
  uint32_t W = 0;
  while (W != N && Set[W].Tag != Tag)
    ++W;
  if (W != N) {
    // Resident: promote; the dirty bit accumulates (a clean install does
    // not launder a dirty line).
    Dirty = Dirty || Set[W].Dirty;
  } else {
    ++Events.LineFills;
    if (N == Assoc) {
      // Evict LRU.
      ++Events.Evictions;
      if (Set[N - 1].Dirty)
        ++Events.Writebacks;
      W = N - 1;
    } else {
      W = N++;
    }
  }
  for (uint32_t I = W; I != 0; --I)
    Set[I] = Set[I - 1];
  Set[0] = Line{Tag, Dirty};
}

void Cache::remove(Addr A) {
  const unsigned S = setOf(A);
  const uint64_t Tag = tagOf(A);
  Line *Set = setLines(S);
  uint32_t &N = Occupancy[S];
  for (uint32_t W = 0; W != N; ++W) {
    if (Set[W].Tag != Tag)
      continue;
    if (Set[W].Dirty)
      ++Events.Writebacks;
    for (uint32_t I = W; I + 1 != N; ++I)
      Set[I] = Set[I + 1];
    --N;
    return;
  }
}

void Cache::reset() {
  std::fill(Occupancy.begin(), Occupancy.end(), 0);
}

void Cache::randomize(Rng &R, double FillFraction) {
  reset();
  for (unsigned S = 0; S != Config.NumSets; ++S) {
    Line *Set = setLines(S);
    uint32_t &N = Occupancy[S];
    for (unsigned Way = 0; Way != Config.Assoc; ++Way)
      if (R.nextDouble() < FillFraction) {
        uint64_t Tag = R.nextBelow(1u << 16);
        bool Dup = false;
        for (uint32_t W = 0; W != N; ++W)
          Dup = Dup || Set[W].Tag == Tag;
        if (!Dup)
          Set[N++] = Line{Tag, false};
      }
  }
}

bool Cache::operator==(const Cache &Other) const {
  if (Config != Other.Config || Occupancy != Other.Occupancy)
    return false;
  for (unsigned S = 0; S != Config.NumSets; ++S) {
    const Line *A = setLines(S), *B = Other.setLines(S);
    for (uint32_t W = 0; W != Occupancy[S]; ++W)
      if (A[W].Tag != B[W].Tag)
        return false;
  }
  return true;
}
