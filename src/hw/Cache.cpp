//===- Cache.cpp ----------------------------------------------------------===//

#include "hw/Cache.h"

#include <algorithm>
#include <cassert>

using namespace zam;

Cache::Cache(const CacheConfig &Config) : Config(Config) {
  assert(Config.NumSets > 0 && Config.Assoc > 0 && Config.BlockBytes > 0 &&
         "degenerate cache configuration");
  Sets.resize(Config.NumSets);
}

bool Cache::lookup(Addr A) {
  std::vector<uint64_t> &Set = Sets[setOf(A)];
  uint64_t Tag = tagOf(A);
  auto It = std::find(Set.begin(), Set.end(), Tag);
  if (It == Set.end())
    return false;
  // Promote to MRU.
  Set.erase(It);
  Set.insert(Set.begin(), Tag);
  return true;
}

bool Cache::probe(Addr A) const {
  const std::vector<uint64_t> &Set = Sets[setOf(A)];
  uint64_t Tag = tagOf(A);
  return std::find(Set.begin(), Set.end(), Tag) != Set.end();
}

void Cache::install(Addr A) {
  std::vector<uint64_t> &Set = Sets[setOf(A)];
  uint64_t Tag = tagOf(A);
  auto It = std::find(Set.begin(), Set.end(), Tag);
  if (It != Set.end())
    Set.erase(It);
  else if (Set.size() == Config.Assoc)
    Set.pop_back(); // Evict LRU.
  Set.insert(Set.begin(), Tag);
}

void Cache::remove(Addr A) {
  std::vector<uint64_t> &Set = Sets[setOf(A)];
  uint64_t Tag = tagOf(A);
  auto It = std::find(Set.begin(), Set.end(), Tag);
  if (It != Set.end())
    Set.erase(It);
}

void Cache::reset() {
  for (std::vector<uint64_t> &Set : Sets)
    Set.clear();
}

void Cache::randomize(Rng &R, double FillFraction) {
  reset();
  for (std::vector<uint64_t> &Set : Sets)
    for (unsigned Way = 0; Way != Config.Assoc; ++Way)
      if (R.nextDouble() < FillFraction) {
        uint64_t Tag = R.nextBelow(1u << 16);
        if (std::find(Set.begin(), Set.end(), Tag) == Set.end())
          Set.push_back(Tag);
      }
}
