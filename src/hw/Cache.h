//===- Cache.h - Set-associative cache model --------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU cache holding only (tag, valid) pairs — the
/// coarse-grained machine-environment abstraction argued for in Sec. 4.1:
/// data-block contents do not affect access time, so they are deliberately
/// not part of the state. This is what lets confidential values reside in a
/// public cache partition without violating single-step noninterference
/// (Property 7). The same class models TLBs (block size = page size).
///
/// For telemetry each line additionally carries a dirty bit and the cache
/// keeps eviction/writeback/line-fill counters. Both are *observational
/// only*: writebacks add no latency (the timing model is unchanged from the
/// paper's), and neither participates in state equality, so the projected
/// equivalences of Sec. 3.3 — and the noninterference properties built on
/// them — see exactly the (tag, LRU-order) state they always did.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_HW_CACHE_H
#define ZAM_HW_CACHE_H

#include "hw/CacheConfig.h"
#include "support/Rng.h"

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace zam {

/// Telemetry counters maintained by one Cache (see CacheLevelStats for the
/// merged per-structure view).
struct CacheEvents {
  uint64_t Evictions = 0;
  uint64_t Writebacks = 0;
  uint64_t LineFills = 0;

  bool operator==(const CacheEvents &Other) const = default;
};

/// One cache-like structure. State per set is the list of resident lines in
/// LRU order (front = most recently used). Replacement is strict LRU.
class Cache {
public:
  explicit Cache(const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }
  uint64_t latency() const { return Latency; }

  /// Hit test that promotes the line to MRU on a hit; \p MarkDirty
  /// additionally sets the line's dirty bit (stores). \returns true on hit.
  /// Defined inline below: this is the hottest call in the simulator, and
  /// the partition/no-fill walks that drive it live in another TU.
  bool lookup(Addr A, bool MarkDirty = false);

  /// Hit test with no state change at all (used for no-fill accesses and
  /// for hits that may not disturb another partition's LRU state).
  bool probe(Addr A) const;

  /// Installs the block containing \p A as MRU, evicting the LRU way if the
  /// set is full. Installing a resident block just promotes it (the dirty
  /// bit accumulates: a clean install does not launder a dirty line).
  void install(Addr A, bool Dirty = false);

  /// Removes the block containing \p A if resident (consistency moves in
  /// the partitioned design). Counts a writeback if the line was dirty.
  void remove(Addr A);

  /// Flushes all contents (event counters are preserved; resetEvents()
  /// clears those).
  void reset();

  /// Fills the cache with random resident tags; \p FillFraction in [0,1].
  /// Used by property-based tests to explore machine-environment states.
  void randomize(Rng &R, double FillFraction = 0.5);

  const CacheEvents &events() const { return Events; }
  void resetEvents() { Events = CacheEvents(); }

  /// Structural equality of (tags, valid bits, LRU order): the projected
  /// equivalence of Sec. 3.3 at the granularity of one structure. Dirty
  /// bits and event counters are telemetry, not machine state visible to
  /// the timing model, so they deliberately do not participate.
  bool operator==(const Cache &Other) const;

private:
  /// One resident line. Only Tag is machine state; Dirty is telemetry.
  struct Line {
    uint64_t Tag = 0;
    bool Dirty = false;
  };

  uint64_t tagOf(Addr A) const {
    if (TagShift)
      return A >> TagShift;
    return A / Config.BlockBytes / Config.NumSets;
  }
  unsigned setOf(Addr A) const {
    if (TagShift)
      return static_cast<unsigned>((A >> BlockShift) & SetMask);
    return static_cast<unsigned>((A / Config.BlockBytes) % Config.NumSets);
  }
  Line *setLines(unsigned S) {
    return Lines.data() + static_cast<size_t>(S) * Assoc;
  }
  const Line *setLines(unsigned S) const {
    return Lines.data() + static_cast<size_t>(S) * Assoc;
  }

  // Everything lookup() touches sits in the leading fields: the shift/mask
  // geometry, the set stride and latency (copied out of Config so the hit
  // path reads one region), and the two storage vectors.

  /// Shift/mask fast path for power-of-two geometry (all Table 1 shapes).
  /// TagShift == 0 falls back to division — partitioned designs divide sets
  /// among lattice levels, which need not leave a power of two.
  unsigned BlockShift = 0, TagShift = 0;
  uint64_t SetMask = 0;
  unsigned Assoc = 1;   ///< Copy of Config.Assoc (set stride).
  uint64_t Latency = 1; ///< Copy of Config.Latency.
  /// Flat line storage, NumSets × Assoc: set S occupies
  /// [S*Assoc, S*Assoc + Occupancy[S]) in MRU-to-LRU order. One
  /// allocation instead of a vector per set keeps the lookup fast path —
  /// the single hottest loop in the simulator — on one cache line, and a
  /// hit at way 0 (the common case for looping programs) touches nothing
  /// but the dirty bit.
  std::vector<Line> Lines;
  std::vector<uint32_t> Occupancy; ///< Resident lines per set.
  CacheConfig Config;
  CacheEvents Events;
};

inline bool Cache::lookup(Addr A, bool MarkDirty) {
  const unsigned S = setOf(A);
  const uint64_t Tag = tagOf(A);
  Line *Set = setLines(S);
  const uint32_t N = Occupancy[S];
  for (uint32_t W = 0; W != N; ++W) {
    if (Set[W].Tag != Tag)
      continue;
    if (W == 0) {
      // Already MRU: nothing moves (the hot path for looping programs).
      // The dirty bit is written only when it changes, so repeat loads
      // leave the line untouched.
      if (MarkDirty && !Set[0].Dirty)
        Set[0].Dirty = true;
    } else {
      // Promote to MRU: rotate the ways above the hit down one.
      Line L = Set[W];
      L.Dirty = L.Dirty || MarkDirty;
      for (uint32_t I = W; I != 0; --I)
        Set[I] = Set[I - 1];
      Set[0] = L;
    }
    return true;
  }
  return false;
}

inline bool Cache::probe(Addr A) const {
  const unsigned S = setOf(A);
  const uint64_t Tag = tagOf(A);
  const Line *Set = setLines(S);
  const uint32_t N = Occupancy[S];
  for (uint32_t W = 0; W != N; ++W)
    if (Set[W].Tag == Tag)
      return true;
  return false;
}

} // namespace zam

#endif // ZAM_HW_CACHE_H
