//===- Cache.h - Set-associative cache model --------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU cache holding only (tag, valid) pairs — the
/// coarse-grained machine-environment abstraction argued for in Sec. 4.1:
/// data-block contents do not affect access time, so they are deliberately
/// not part of the state. This is what lets confidential values reside in a
/// public cache partition without violating single-step noninterference
/// (Property 7). The same class models TLBs (block size = page size).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_HW_CACHE_H
#define ZAM_HW_CACHE_H

#include "hw/CacheConfig.h"
#include "support/Rng.h"

#include <cstdint>
#include <vector>

namespace zam {

/// One cache-like structure. State per set is the list of resident tags in
/// LRU order (front = most recently used). Replacement is strict LRU.
class Cache {
public:
  explicit Cache(const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }
  uint64_t latency() const { return Config.Latency; }

  /// Hit test that promotes the line to MRU on a hit. \returns true on hit.
  bool lookup(Addr A);

  /// Hit test with no state change at all (used for no-fill accesses and
  /// for hits that may not disturb another partition's LRU state).
  bool probe(Addr A) const;

  /// Installs the block containing \p A as MRU, evicting the LRU way if the
  /// set is full. Installing a resident block just promotes it.
  void install(Addr A);

  /// Removes the block containing \p A if resident (consistency moves in
  /// the partitioned design).
  void remove(Addr A);

  /// Flushes all contents.
  void reset();

  /// Fills the cache with random resident tags; \p FillFraction in [0,1].
  /// Used by property-based tests to explore machine-environment states.
  void randomize(Rng &R, double FillFraction = 0.5);

  /// Structural equality of (tags, valid bits, LRU order): the projected
  /// equivalence of Sec. 3.3 at the granularity of one structure.
  bool operator==(const Cache &Other) const = default;

private:
  uint64_t tagOf(Addr A) const { return A / Config.BlockBytes / Config.NumSets; }
  unsigned setOf(Addr A) const {
    return static_cast<unsigned>((A / Config.BlockBytes) % Config.NumSets);
  }

  CacheConfig Config;
  /// Sets[S] = resident tags of set S in MRU-to-LRU order.
  std::vector<std::vector<uint64_t>> Sets;
};

} // namespace zam

#endif // ZAM_HW_CACHE_H
