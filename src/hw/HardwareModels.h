//===- HardwareModels.h - The three hardware designs ------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three concrete machine environments:
///
///  - NoPartitionHw — commodity hardware that ignores timing labels. This is
///    the paper's "nopar" baseline (Table 2); it deliberately VIOLATES
///    Properties 5 and 7 (high-context accesses disturb low cache state),
///    which is what makes the unmitigated timing attacks work.
///
///  - NoFillHw — the Sec. 4.2 realization on standard hardware: the whole
///    cache hierarchy is labeled ⊥ and commands whose write label is not ⊥
///    run in "no-fill" mode (accesses are served without installing lines or
///    updating LRU state), mirroring the no-fill mode of Intel Pentium/Xeon
///    processors.
///
///  - PartitionedHw — the Sec. 4.3 design: every cache and TLB is statically
///    partitioned per security level (sets divided evenly). An access with
///    labels [er,ew] may derive its timing only from partitions at levels
///    ⊑ er, may promote LRU state only in partitions at levels ⊒ ew, and
///    installs into the ew partition. For consistency a copy resident in a
///    partition above ew is moved (removed + reinstalled at ew) and the
///    access is timed as a miss, exactly as the paper prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_HW_HARDWAREMODELS_H
#define ZAM_HW_HARDWAREMODELS_H

#include "hw/MachineEnv.h"

#include <vector>

namespace zam {

/// Shared implementation for the two designs with a single (unpartitioned)
/// copy of every structure, all of it labeled ⊥.
class UnifiedHwBase : public MachineEnv {
public:
  uint64_t dataAccess(Addr A, bool IsStore, Label Read, Label Write) override;
  uint64_t fetch(Addr A, Label Read, Label Write) override;
  bool projectionEquals(const MachineEnv &Other, Label L) const override;
  void reset() override;
  void randomize(Rng &R) override;
  void perturbAbove(Label L, Rng &R) override;
  HwStats stats() const override;
  void resetStats() override;

protected:
  UnifiedHwBase(HwKind Kind, const SecurityLattice &Lat,
                const MachineEnvConfig &Config, bool NoFillMode);

  /// Whether an access with write label \p Write may modify the (⊥-labeled)
  /// cache state. NoPartition says always; NoFill says only when ew = ⊥.
  /// Data-driven rather than virtual: it runs on every access, and both
  /// operands (the mode flag and the cached ⊥) are fixed at construction.
  bool mayFill(Label Write) const { return !NoFillMode || Write == Bottom; }

  Cache L1D, L2D, L1I, L2I, DTlb, ITlb;

private:
  bool NoFillMode;
  Label Bottom; ///< lattice().bottom(), cached off the access path.
};

/// Commodity hardware ("nopar"): timing labels are ignored.
class NoPartitionHw final : public UnifiedHwBase {
public:
  NoPartitionHw(const SecurityLattice &Lat, const MachineEnvConfig &Config)
      : UnifiedHwBase(HwKind::NoPartition, Lat, Config,
                      /*NoFillMode=*/false) {}

  std::unique_ptr<MachineEnv> clone() const override;
};

/// Standard hardware with a no-fill mode (Sec. 4.2).
class NoFillHw final : public UnifiedHwBase {
public:
  NoFillHw(const SecurityLattice &Lat, const MachineEnvConfig &Config)
      : UnifiedHwBase(HwKind::NoFill, Lat, Config, /*NoFillMode=*/true) {}

  std::unique_ptr<MachineEnv> clone() const override;
};

/// Statically partitioned caches and TLBs (Sec. 4.3), generalized from the
/// paper's two-level design to one partition per lattice level. Each
/// structure's sets are divided evenly among the levels (at least one set
/// per partition).
class PartitionedHw final : public MachineEnv {
public:
  PartitionedHw(const SecurityLattice &Lat, const MachineEnvConfig &Config);

  uint64_t dataAccess(Addr A, bool IsStore, Label Read, Label Write) override;
  uint64_t fetch(Addr A, Label Read, Label Write) override;
  std::unique_ptr<MachineEnv> clone() const override;
  bool projectionEquals(const MachineEnv &Other, Label L) const override;
  void reset() override;
  void randomize(Rng &R) override;
  void perturbAbove(Label L, Rng &R) override;
  HwStats stats() const override;
  void resetStats() override;

  /// The per-partition configuration actually used for \p Full (sets divided
  /// by the number of levels). Exposed for tests.
  CacheConfig partitionConfig(const CacheConfig &Full) const;

  /// Marks a lookup-plan entry whose partition may be probed but not
  /// modified (Property 5). Public for the plan walker in the
  /// implementation file.
  static constexpr uint8_t kProbeOnly = 0x80;

private:
  /// One structure = one Cache per lattice level, indexed by label index.
  using Partitioned = std::vector<Cache>;

  Partitioned makePartitions(const CacheConfig &Full) const;

  /// Searches partitions at levels ⊑ er. On a hit, promotes LRU only when
  /// ew ⊑ level (Property 5); \p MarkDirty marks the line dirty on a
  /// promoting hit (telemetry only). \returns true on hit.
  bool partLookup(Partitioned &P, Addr A, Label Read, Label Write,
                  bool MarkDirty = false);

  /// Moves any copy resident above \p Write down to the \p Write partition
  /// and installs the block there.
  void partInstall(Partitioned &P, Addr A, Label Write, bool Dirty = false);

  uint64_t accessHierarchy(Partitioned &Tlb, Partitioned &L1, Partitioned &L2,
                           Addr A, Label Read, Label Write, bool IsData,
                           bool IsStore);

  /// The observed variant of accessHierarchy: identical walk and charges,
  /// plus per-access event snapshots and the HwObserver notification. Split
  /// out so unobserved runs — the hot case — pay for none of it; the two
  /// bodies must stay mirror images.
  uint64_t accessObserved(Partitioned &Tlb, Partitioned &L1, Partitioned &L2,
                          Addr A, Label Read, Label Write, bool IsData,
                          bool IsStore);

  /// Precomputed lattice order: Flows[i * Levels + j] = (ℓ_i ⊑ ℓ_j). The
  /// partition search consults the order once per partition per access, so
  /// a virtual flowsTo() call there is measurable; the lattice is immutable,
  /// so snapshotting it at construction is safe.
  bool flows(unsigned I, unsigned J) const { return Flows[I * Levels + J]; }

  unsigned Levels = 0;
  std::vector<uint8_t> Flows;

  /// Precomputed partition walks, one per (er, ew) pair: partLookup visits
  /// exactly the partitions at levels ⊑ er in ascending label order, each
  /// entry packing the partition index with a probe-only bit (set when
  /// ew ⋢ level, Property 5). partInstall's stale-copy sweep visits the
  /// partitions I ≠ ew with ew ⊑ I. Both walks are functions of the
  /// immutable lattice alone, so precomputing them at construction removes
  /// every per-access order check from the simulator's hottest loop.
  std::vector<uint8_t> LookupPlan;     ///< Packed entries for all (er,ew).
  std::vector<uint16_t> LookupOff;     ///< Levels²+1 offsets into LookupPlan.
  std::vector<uint8_t> InstallVictims; ///< Packed entries for all ew.
  std::vector<uint16_t> VictimOff;     ///< Levels+1 offsets.

  Partitioned L1D, L2D, L1I, L2I, DTlb, ITlb;
};

} // namespace zam

#endif // ZAM_HW_HARDWAREMODELS_H
