//===- CacheConfig.h - Machine environment parameters -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration structures for the simulated machine environment. The
/// defaults reproduce Table 1 of the paper:
///
///   Name       | sets | assoc | block  | latency
///   L1 D-cache | 128  | 4-way | 32 B   | 1 cycle
///   L2 D-cache | 1024 | 4-way | 64 B   | 6 cycles
///   L1 I-cache | 512  | 1-way | 32 B   | 1 cycle
///   L2 I-cache | 1024 | 4-way | 64 B   | 6 cycles
///   D-TLB      | 16   | 4-way | 4 KB   | 30 cycles (miss penalty)
///   I-TLB      | 32   | 4-way | 4 KB   | 30 cycles (miss penalty)
///
/// The paper does not list the main-memory latency of its SimpleScalar
/// configuration; we use 100 cycles, a conventional value for that era.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_HW_CACHECONFIG_H
#define ZAM_HW_CACHECONFIG_H

#include <cstdint>

namespace zam {

/// A simulated physical address. Data and code live in disjoint regions
/// (see sem/MemoryLayout.h).
using Addr = uint64_t;

/// Geometry and latency of one cache-like structure (cache or TLB).
struct CacheConfig {
  unsigned NumSets = 1;
  unsigned Assoc = 1;
  unsigned BlockBytes = 32; ///< Line size; page size for TLBs.
  uint64_t Latency = 1;     ///< Hit latency (caches) or miss penalty (TLBs).

  /// Number of blocks the structure can hold.
  unsigned capacity() const { return NumSets * Assoc; }

  bool operator==(const CacheConfig &Other) const = default;
};

/// Full machine-environment configuration (Table 1 defaults).
struct MachineEnvConfig {
  CacheConfig L1D{128, 4, 32, 1};
  CacheConfig L2D{1024, 4, 64, 6};
  CacheConfig L1I{512, 1, 32, 1};
  CacheConfig L2I{1024, 4, 64, 6};
  CacheConfig DTlb{16, 4, 4096, 30};
  CacheConfig ITlb{32, 4, 4096, 30};
  uint64_t MemLatency = 100; ///< Penalty beyond L2 on an L2 miss.
};

/// Counters for one cache-like structure; purely observational (never fed
/// back into timing). Hits/Misses are counted at the access sites;
/// Evictions/Writebacks/LineFills are maintained by the Cache itself and
/// merged in by MachineEnv::stats().
struct CacheLevelStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;  ///< LRU replacements of a valid line.
  uint64_t Writebacks = 0; ///< Dirty lines retired (evicted or removed).
  uint64_t LineFills = 0;  ///< Installs of a not-yet-resident block.

  uint64_t accesses() const { return Hits + Misses; }

  bool operator==(const CacheLevelStats &Other) const = default;
};

/// Per-structure counters for one run, consumed by the telemetry layer
/// (obs/Telemetry.h) and the benchmark harnesses.
struct HwStats {
  CacheLevelStats L1D, L2D, L1I, L2I, DTlb, ITlb;

  void reset() { *this = HwStats(); }

  bool operator==(const HwStats &Other) const = default;
};

} // namespace zam

#endif // ZAM_HW_CACHECONFIG_H
