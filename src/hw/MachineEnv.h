//===- MachineEnv.h - The abstract machine environment E --------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine environment E of Sec. 3.3: all hardware state invisible at
/// the language level that is needed to predict timing. The interface is the
/// hardware side of the software/hardware contract: implementations must
/// satisfy Properties 2 (determinism), 5 (write label), 6 (read label) and
/// 7 (single-step machine-environment noninterference); analysis/ provides
/// dynamic checkers, and tests/hw validates each model against them.
///
/// Every access carries the command's timing labels [er, ew]. er is the
/// upper bound on machine state that may influence the access's duration;
/// ew is the lower bound on machine state the access may modify. This pair
/// is the "timing-label register" of the paper's SimpleScalar extension
/// (Sec. 8.1).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_HW_MACHINEENV_H
#define ZAM_HW_MACHINEENV_H

#include "hw/Cache.h"
#include "hw/CacheConfig.h"
#include "lattice/SecurityLattice.h"
#include "support/Rng.h"

#include <memory>
#include <string>

namespace zam {

/// Discriminator for the concrete hardware designs (LLVM-style kind tag;
/// no RTTI).
enum class HwKind {
  NoPartition, ///< Commodity hardware, labels ignored ("nopar", insecure).
  NoFill,      ///< Sec. 4.2: one low cache + no-fill mode in high contexts.
  Partitioned, ///< Sec. 4.3: statically partitioned caches and TLBs.
};

const char *hwKindName(HwKind Kind);

/// Eviction/writeback/line-fill deltas one access caused in one structure
/// (TLB or cache level). Computed from before/after event snapshots, and
/// only while an observer is installed — the snapshot cost is skipped on
/// unobserved runs.
struct HwEventDelta {
  uint32_t Evictions = 0;
  uint32_t Writebacks = 0;
  uint32_t LineFills = 0;
};

/// One completed hardware access, as reported to a HwObserver. Purely
/// observational: produced after the access's latency is fixed.
struct HwAccess {
  Addr A = 0;
  bool IsData = false;  ///< Data access (vs instruction fetch).
  bool IsStore = false; ///< Store (data accesses only).
  bool TlbMiss = false;
  bool L1Miss = false;
  bool L2Miss = false; ///< Implies L1Miss; the access went to memory.
  uint64_t Cycles = 0; ///< Latency charged for this access.
  /// Structure-event deltas (valid only while an observer is installed;
  /// zero otherwise). In the partitioned design each delta sums over the
  /// structure's partitions — an install may displace stale copies from
  /// several of them.
  HwEventDelta TlbEvents;
  HwEventDelta L1Events;
  HwEventDelta L2Events;
};

/// Telemetry hook: receives every hardware access while installed via
/// MachineEnv::setObserver(). Implementations must not mutate the
/// environment. The interpreter installs one to build cache-miss timelines
/// (see obs/TraceSink.h).
class HwObserver {
public:
  virtual ~HwObserver();
  virtual void onAccess(const HwAccess &Access) = 0;
};

/// Abstract machine environment.
class MachineEnv {
public:
  virtual ~MachineEnv();

  HwKind hwKind() const { return Kind; }
  const SecurityLattice &lattice() const { return *Lat; }
  const MachineEnvConfig &config() const { return Config; }

  /// Performs a data access (read or write of one word at \p A) under
  /// timing labels [\p Read, \p Write]. \returns the access latency in
  /// cycles. Updates D-TLB/L1D/L2D state subject to the write label.
  virtual uint64_t dataAccess(Addr A, bool IsStore, Label Read,
                              Label Write) = 0;

  /// Performs an instruction fetch from code address \p A under timing
  /// labels [\p Read, \p Write]. \returns the fetch latency in cycles.
  virtual uint64_t fetch(Addr A, Label Read, Label Write) = 0;

  /// Deep copy, including all cache/TLB state and statistics. Clones share
  /// no mutable state with the source (the lattice is immutable and shared
  /// by pointer), so distinct clones may be driven concurrently from
  /// different threads — the contract the exp/ParallelRunner fan-out relies
  /// on, audited by the CloneAudit tests in tests/exp_test.cpp.
  virtual std::unique_ptr<MachineEnv> clone() const = 0;

  /// Projected equivalence E1 ≈ℓ E2 (Sec. 3.3): equality of exactly the
  /// level-ℓ partition of the state. For unpartitioned designs all state
  /// lives at ⊥, so the projection at any other level is trivially equal.
  /// Both environments must have the same kind and configuration.
  virtual bool projectionEquals(const MachineEnv &Other, Label L) const = 0;

  /// ℓ-equivalence E1 ~ℓ E2: projected equivalence at every level ℓ' ⊑ ℓ.
  bool equivalentUpTo(const MachineEnv &Other, Label L) const;

  /// Full state equality (⊤-equivalence).
  bool stateEquals(const MachineEnv &Other) const {
    return equivalentUpTo(Other, Lat->top());
  }

  /// Flushes all cache/TLB state (cold machine).
  virtual void reset() = 0;

  /// Randomizes all state (property-based testing).
  virtual void randomize(Rng &R) = 0;

  /// Perturbs only state at levels ℓ' with ℓ' ⋢ \p L, preserving
  /// ~L-equivalence with the pre-state. Used by tests to build pairs
  /// E1 ~ℓ E2 that differ above ℓ. A no-op for designs with no such state.
  virtual void perturbAbove(Label L, Rng &R) = 0;

  /// Counters for the run so far: the hit/miss tallies kept at the access
  /// sites merged with the eviction/writeback/line-fill events kept by each
  /// Cache (summed over partitions in the partitioned design). Returned by
  /// value because of that merge.
  virtual HwStats stats() const { return Stats; }

  /// Clears all counters (hit/miss tallies and per-cache events).
  virtual void resetStats() { Stats.reset(); }

  /// Installs \p Observer to receive every subsequent access (nullptr to
  /// detach). Observers are deliberately NOT copied by clone(): clones may
  /// be driven from other threads, and an inherited observer would be a
  /// shared mutable sink.
  void setObserver(HwObserver *Observer) { Obs = Observer; }
  HwObserver *observer() const { return Obs; }

  /// One-line description for logs and bench output.
  std::string describe() const;

protected:
  MachineEnv(HwKind Kind, const SecurityLattice &Lat,
             const MachineEnvConfig &Config)
      : Kind(Kind), Lat(&Lat), Config(Config) {}

  /// Copies all state except the observer (see setObserver()).
  MachineEnv(const MachineEnv &Other)
      : Kind(Other.Kind), Lat(Other.Lat), Config(Other.Config),
        Stats(Other.Stats) {}
  MachineEnv &operator=(const MachineEnv &) = delete;

  void notifyAccess(const HwAccess &Access) {
    if (Obs)
      Obs->onAccess(Access);
  }

  HwKind Kind;
  const SecurityLattice *Lat;
  MachineEnvConfig Config;
  HwStats Stats;
  HwObserver *Obs = nullptr;
};

/// Factory: builds a machine environment of the given design over \p Lat
/// with \p Config (Table 1 defaults).
std::unique_ptr<MachineEnv>
createMachineEnv(HwKind Kind, const SecurityLattice &Lat,
                 const MachineEnvConfig &Config = MachineEnvConfig());

} // namespace zam

#endif // ZAM_HW_MACHINEENV_H
