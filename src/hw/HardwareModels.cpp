//===- HardwareModels.cpp -------------------------------------------------===//

#include "hw/HardwareModels.h"

#include "support/Diagnostics.h"

#include <cassert>

using namespace zam;

const char *zam::hwKindName(HwKind Kind) {
  switch (Kind) {
  case HwKind::NoPartition:
    return "nopar";
  case HwKind::NoFill:
    return "nofill";
  case HwKind::Partitioned:
    return "partitioned";
  }
  return "unknown";
}

MachineEnv::~MachineEnv() = default;

HwObserver::~HwObserver() = default;

bool MachineEnv::equivalentUpTo(const MachineEnv &Other, Label L) const {
  for (Label Lv : Lat->allLabels())
    if (Lat->flowsTo(Lv, L) && !projectionEquals(Other, Lv))
      return false;
  return true;
}

std::string MachineEnv::describe() const {
  std::string Out = hwKindName(Kind);
  Out += " hardware over a ";
  Out += std::to_string(Lat->size());
  Out += "-level lattice";
  return Out;
}

std::unique_ptr<MachineEnv>
zam::createMachineEnv(HwKind Kind, const SecurityLattice &Lat,
                      const MachineEnvConfig &Config) {
  switch (Kind) {
  case HwKind::NoPartition:
    return std::make_unique<NoPartitionHw>(Lat, Config);
  case HwKind::NoFill:
    return std::make_unique<NoFillHw>(Lat, Config);
  case HwKind::Partitioned:
    return std::make_unique<PartitionedHw>(Lat, Config);
  }
  reportFatalError("unknown hardware kind");
}

//===----------------------------------------------------------------------===//
// UnifiedHwBase
//===----------------------------------------------------------------------===//

UnifiedHwBase::UnifiedHwBase(HwKind Kind, const SecurityLattice &Lat,
                             const MachineEnvConfig &Config, bool NoFillMode)
    : MachineEnv(Kind, Lat, Config), L1D(Config.L1D), L2D(Config.L2D),
      L1I(Config.L1I), L2I(Config.L2I), DTlb(Config.DTlb), ITlb(Config.ITlb),
      NoFillMode(NoFillMode), Bottom(Lat.bottom()) {}

namespace {
/// The delta between two event snapshots of one structure.
HwEventDelta eventDelta(const CacheEvents &Before, const CacheEvents &After) {
  HwEventDelta D;
  D.Evictions = static_cast<uint32_t>(After.Evictions - Before.Evictions);
  D.Writebacks = static_cast<uint32_t>(After.Writebacks - Before.Writebacks);
  D.LineFills = static_cast<uint32_t>(After.LineFills - Before.LineFills);
  return D;
}

/// Walks one TLB + two-level cache path. \p Fill selects between normal
/// operation and no-fill probing (no installs, no LRU updates). \p IsStore
/// marks the L1 line dirty (telemetry only; writebacks add no latency).
/// \p Observed selects whether miss flags are reported through \p Acc —
/// the unobserved instantiation is the simulator's hottest path and skips
/// every HwAccess store.
template <bool Observed>
uint64_t unifiedPath(Cache &Tlb, Cache &L1, Cache &L2, Addr A, bool Fill,
                     bool IsStore, uint64_t MemLatency,
                     CacheLevelStats &TlbStats, CacheLevelStats &L1Stats,
                     CacheLevelStats &L2Stats, HwAccess *Acc) {
  uint64_t Cycles = 0;

  bool TlbHit = Fill ? Tlb.lookup(A) : Tlb.probe(A);
  if (TlbHit) {
    ++TlbStats.Hits;
  } else {
    ++TlbStats.Misses;
    if constexpr (Observed)
      Acc->TlbMiss = true;
    Cycles += Tlb.latency();
    if (Fill)
      Tlb.install(A);
  }

  Cycles += L1.latency();
  bool L1Hit = Fill ? L1.lookup(A, IsStore) : L1.probe(A);
  if (L1Hit) {
    ++L1Stats.Hits;
    return Cycles;
  }
  ++L1Stats.Misses;
  if constexpr (Observed)
    Acc->L1Miss = true;

  Cycles += L2.latency();
  bool L2Hit = Fill ? L2.lookup(A) : L2.probe(A);
  if (L2Hit) {
    ++L2Stats.Hits;
  } else {
    ++L2Stats.Misses;
    if constexpr (Observed)
      Acc->L2Miss = true;
    Cycles += MemLatency;
    if (Fill)
      L2.install(A);
  }
  if (Fill)
    L1.install(A, IsStore);
  return Cycles;
}
} // namespace

uint64_t UnifiedHwBase::dataAccess(Addr A, bool IsStore, Label Read,
                                   Label Write) {
  assert(lattice().contains(Read) && lattice().contains(Write) &&
         "labels from another lattice");
  if (observer() == nullptr)
    return unifiedPath<false>(DTlb, L1D, L2D, A, mayFill(Write), IsStore,
                              Config.MemLatency, Stats.DTlb, Stats.L1D,
                              Stats.L2D, nullptr);
  HwAccess Acc;
  Acc.A = A;
  Acc.IsData = true;
  Acc.IsStore = IsStore;
  CacheEvents TlbBefore = DTlb.events();
  CacheEvents L1Before = L1D.events();
  CacheEvents L2Before = L2D.events();
  Acc.Cycles = unifiedPath<true>(DTlb, L1D, L2D, A, mayFill(Write), IsStore,
                                 Config.MemLatency, Stats.DTlb, Stats.L1D,
                                 Stats.L2D, &Acc);
  Acc.TlbEvents = eventDelta(TlbBefore, DTlb.events());
  Acc.L1Events = eventDelta(L1Before, L1D.events());
  Acc.L2Events = eventDelta(L2Before, L2D.events());
  notifyAccess(Acc);
  return Acc.Cycles;
}

uint64_t UnifiedHwBase::fetch(Addr A, Label Read, Label Write) {
  assert(lattice().contains(Read) && lattice().contains(Write) &&
         "labels from another lattice");
  if (observer() == nullptr)
    return unifiedPath<false>(ITlb, L1I, L2I, A, mayFill(Write),
                              /*IsStore=*/false, Config.MemLatency, Stats.ITlb,
                              Stats.L1I, Stats.L2I, nullptr);
  HwAccess Acc;
  Acc.A = A;
  CacheEvents TlbBefore = ITlb.events();
  CacheEvents L1Before = L1I.events();
  CacheEvents L2Before = L2I.events();
  Acc.Cycles = unifiedPath<true>(ITlb, L1I, L2I, A, mayFill(Write),
                                 /*IsStore=*/false, Config.MemLatency,
                                 Stats.ITlb, Stats.L1I, Stats.L2I, &Acc);
  Acc.TlbEvents = eventDelta(TlbBefore, ITlb.events());
  Acc.L1Events = eventDelta(L1Before, L1I.events());
  Acc.L2Events = eventDelta(L2Before, L2I.events());
  notifyAccess(Acc);
  return Acc.Cycles;
}

/// Folds one cache's event counters into the merged per-structure view.
static void mergeEvents(CacheLevelStats &S, const CacheEvents &E) {
  S.Evictions += E.Evictions;
  S.Writebacks += E.Writebacks;
  S.LineFills += E.LineFills;
}

HwStats UnifiedHwBase::stats() const {
  HwStats S = Stats;
  mergeEvents(S.L1D, L1D.events());
  mergeEvents(S.L2D, L2D.events());
  mergeEvents(S.L1I, L1I.events());
  mergeEvents(S.L2I, L2I.events());
  mergeEvents(S.DTlb, DTlb.events());
  mergeEvents(S.ITlb, ITlb.events());
  return S;
}

void UnifiedHwBase::resetStats() {
  Stats.reset();
  for (Cache *C : {&L1D, &L2D, &L1I, &L2I, &DTlb, &ITlb})
    C->resetEvents();
}

bool UnifiedHwBase::projectionEquals(const MachineEnv &Other, Label L) const {
  assert(Other.hwKind() == hwKind() && "comparing different hardware designs");
  // All state lives at ⊥; projections at other levels are empty.
  if (L != lattice().bottom())
    return true;
  const auto &O = static_cast<const UnifiedHwBase &>(Other);
  return L1D == O.L1D && L2D == O.L2D && L1I == O.L1I && L2I == O.L2I &&
         DTlb == O.DTlb && ITlb == O.ITlb;
}

void UnifiedHwBase::reset() {
  L1D.reset();
  L2D.reset();
  L1I.reset();
  L2I.reset();
  DTlb.reset();
  ITlb.reset();
}

void UnifiedHwBase::randomize(Rng &R) {
  L1D.randomize(R);
  L2D.randomize(R);
  L1I.randomize(R);
  L2I.randomize(R);
  DTlb.randomize(R);
  ITlb.randomize(R);
}

void UnifiedHwBase::perturbAbove(Label L, Rng &R) {
  // All state is at ⊥ and ⊥ ⊑ L for every L, so nothing may change.
}

std::unique_ptr<MachineEnv> NoPartitionHw::clone() const {
  return std::make_unique<NoPartitionHw>(*this);
}

std::unique_ptr<MachineEnv> NoFillHw::clone() const {
  return std::make_unique<NoFillHw>(*this);
}

//===----------------------------------------------------------------------===//
// PartitionedHw
//===----------------------------------------------------------------------===//

CacheConfig PartitionedHw::partitionConfig(const CacheConfig &Full) const {
  CacheConfig Part = Full;
  Part.NumSets = std::max(1u, Full.NumSets / lattice().size());
  return Part;
}

PartitionedHw::Partitioned
PartitionedHw::makePartitions(const CacheConfig &Full) const {
  Partitioned P;
  CacheConfig Part = partitionConfig(Full);
  for (unsigned I = 0, E = lattice().size(); I != E; ++I)
    P.emplace_back(Part);
  return P;
}

PartitionedHw::PartitionedHw(const SecurityLattice &Lat,
                             const MachineEnvConfig &Config)
    : MachineEnv(HwKind::Partitioned, Lat, Config) {
  Levels = Lat.size();
  Flows.resize(static_cast<size_t>(Levels) * Levels);
  for (unsigned I = 0; I != Levels; ++I)
    for (unsigned J = 0; J != Levels; ++J)
      Flows[I * Levels + J] =
          Lat.flowsTo(Label::fromIndex(I), Label::fromIndex(J));
  LookupOff.resize(static_cast<size_t>(Levels) * Levels + 1);
  for (unsigned R = 0; R != Levels; ++R)
    for (unsigned W = 0; W != Levels; ++W) {
      LookupOff[R * Levels + W] = static_cast<uint16_t>(LookupPlan.size());
      for (unsigned I = 0; I != Levels; ++I)
        if (flows(I, R))
          LookupPlan.push_back(
              static_cast<uint8_t>(I | (flows(W, I) ? 0 : kProbeOnly)));
    }
  LookupOff.back() = static_cast<uint16_t>(LookupPlan.size());
  VictimOff.resize(Levels + 1);
  for (unsigned W = 0; W != Levels; ++W) {
    VictimOff[W] = static_cast<uint16_t>(InstallVictims.size());
    for (unsigned I = 0; I != Levels; ++I)
      if (I != W && flows(W, I))
        InstallVictims.push_back(static_cast<uint8_t>(I));
  }
  VictimOff.back() = static_cast<uint16_t>(InstallVictims.size());
  L1D = makePartitions(Config.L1D);
  L2D = makePartitions(Config.L2D);
  L1I = makePartitions(Config.L1I);
  L2I = makePartitions(Config.L2I);
  DTlb = makePartitions(Config.DTlb);
  ITlb = makePartitions(Config.ITlb);
}

namespace {
/// Walks one precomputed lookup plan over \p P. Split from partLookup so
/// accessHierarchy can resolve the (er, ew) plan range once per access and
/// reuse it for the TLB, L1 and L2 walks.
inline bool walkPlan(std::vector<Cache> &P, Addr A, const uint8_t *E,
                     const uint8_t *const End, bool MarkDirty) {
  for (; E != End; ++E) {
    if (*E & PartitionedHw::kProbeOnly) {
      if (P[*E & ~PartitionedHw::kProbeOnly].probe(A))
        return true;
    } else if (P[*E].lookup(A, MarkDirty)) {
      return true;
    }
  }
  return false;
}
} // namespace

bool PartitionedHw::partLookup(Partitioned &P, Addr A, Label Read, Label Write,
                               bool MarkDirty) {
  // The plan enumerates the partitions at levels ⊑ er (Property 6); the
  // probe-only bit marks those the access may not modify (Property 5).
  const unsigned PI = Read.index() * Levels + Write.index();
  return walkPlan(P, A, LookupPlan.data() + LookupOff[PI],
                  LookupPlan.data() + LookupOff[PI + 1], MarkDirty);
}

void PartitionedHw::partInstall(Partitioned &P, Addr A, Label Write,
                                bool Dirty) {
  const unsigned W = Write.index();
  // Consistency: keep a single copy. A stale copy may only be removed from
  // levels the write label permits modifying (ew ⊑ level) — the
  // precomputed victim sweep for ew.
  const uint8_t *V = InstallVictims.data() + VictimOff[W];
  const uint8_t *const End = InstallVictims.data() + VictimOff[W + 1];
  for (; V != End; ++V)
    P[*V].remove(A);
  P[W].install(A, Dirty);
}

/// Sums one partitioned structure's event counters over all partitions
/// (an install may displace stale copies from several of them).
static CacheEvents sumPartEvents(const std::vector<Cache> &P) {
  CacheEvents E;
  for (const Cache &C : P) {
    E.Evictions += C.events().Evictions;
    E.Writebacks += C.events().Writebacks;
    E.LineFills += C.events().LineFills;
  }
  return E;
}

uint64_t PartitionedHw::accessHierarchy(Partitioned &Tlb, Partitioned &L1,
                                        Partitioned &L2, Addr A, Label Read,
                                        Label Write, bool IsData,
                                        bool IsStore) {
  if (observer() != nullptr)
    return accessObserved(Tlb, L1, L2, A, Read, Write, IsData, IsStore);

  // Unobserved walk: identical lookups, installs and charges to
  // accessObserved below, with no HwAccess bookkeeping at all. The (er,ew)
  // lookup plan is shared by all three structures, so it is resolved once.
  uint64_t Cycles = 0;
  CacheLevelStats &TlbStats = IsData ? Stats.DTlb : Stats.ITlb;
  CacheLevelStats &L1Stats = IsData ? Stats.L1D : Stats.L1I;
  CacheLevelStats &L2Stats = IsData ? Stats.L2D : Stats.L2I;
  const unsigned PI = Read.index() * Levels + Write.index();
  const uint8_t *const Plan = LookupPlan.data() + LookupOff[PI];
  const uint8_t *const PlanEnd = LookupPlan.data() + LookupOff[PI + 1];

  if (walkPlan(Tlb, A, Plan, PlanEnd, false)) {
    ++TlbStats.Hits;
  } else {
    ++TlbStats.Misses;
    Cycles += Tlb[0].latency();
    partInstall(Tlb, A, Write);
  }

  Cycles += L1[0].latency();
  if (walkPlan(L1, A, Plan, PlanEnd, IsStore)) {
    ++L1Stats.Hits;
    return Cycles;
  }
  ++L1Stats.Misses;

  Cycles += L2[0].latency();
  if (walkPlan(L2, A, Plan, PlanEnd, false)) {
    ++L2Stats.Hits;
  } else {
    ++L2Stats.Misses;
    Cycles += Config.MemLatency;
    partInstall(L2, A, Write);
  }
  partInstall(L1, A, Write, IsStore);
  return Cycles;
}

uint64_t PartitionedHw::accessObserved(Partitioned &Tlb, Partitioned &L1,
                                       Partitioned &L2, Addr A, Label Read,
                                       Label Write, bool IsData,
                                       bool IsStore) {
  uint64_t Cycles = 0;

  CacheLevelStats &TlbStats = IsData ? Stats.DTlb : Stats.ITlb;
  CacheLevelStats &L1Stats = IsData ? Stats.L1D : Stats.L1I;
  CacheLevelStats &L2Stats = IsData ? Stats.L2D : Stats.L2I;

  HwAccess Acc;
  Acc.A = A;
  Acc.IsData = IsData;
  Acc.IsStore = IsStore;

  CacheEvents TlbBefore = sumPartEvents(Tlb);
  CacheEvents L1Before = sumPartEvents(L1);
  CacheEvents L2Before = sumPartEvents(L2);

  if (partLookup(Tlb, A, Read, Write)) {
    ++TlbStats.Hits;
  } else {
    ++TlbStats.Misses;
    Acc.TlbMiss = true;
    Cycles += Tlb[0].latency();
    partInstall(Tlb, A, Write);
  }

  Cycles += L1[0].latency();
  if (partLookup(L1, A, Read, Write, IsStore)) {
    ++L1Stats.Hits;
    Acc.Cycles = Cycles;
    Acc.TlbEvents = eventDelta(TlbBefore, sumPartEvents(Tlb));
    Acc.L1Events = eventDelta(L1Before, sumPartEvents(L1));
    Acc.L2Events = eventDelta(L2Before, sumPartEvents(L2));
    notifyAccess(Acc);
    return Cycles;
  }
  ++L1Stats.Misses;
  Acc.L1Miss = true;

  Cycles += L2[0].latency();
  if (partLookup(L2, A, Read, Write)) {
    ++L2Stats.Hits;
  } else {
    ++L2Stats.Misses;
    Acc.L2Miss = true;
    Cycles += Config.MemLatency;
    partInstall(L2, A, Write);
  }
  partInstall(L1, A, Write, IsStore);
  Acc.Cycles = Cycles;
  Acc.TlbEvents = eventDelta(TlbBefore, sumPartEvents(Tlb));
  Acc.L1Events = eventDelta(L1Before, sumPartEvents(L1));
  Acc.L2Events = eventDelta(L2Before, sumPartEvents(L2));
  notifyAccess(Acc);
  return Cycles;
}

uint64_t PartitionedHw::dataAccess(Addr A, bool IsStore, Label Read,
                                   Label Write) {
  assert(lattice().contains(Read) && lattice().contains(Write) &&
         "labels from another lattice");
  return accessHierarchy(DTlb, L1D, L2D, A, Read, Write, /*IsData=*/true,
                         IsStore);
}

uint64_t PartitionedHw::fetch(Addr A, Label Read, Label Write) {
  assert(lattice().contains(Read) && lattice().contains(Write) &&
         "labels from another lattice");
  return accessHierarchy(ITlb, L1I, L2I, A, Read, Write, /*IsData=*/false,
                         /*IsStore=*/false);
}

std::unique_ptr<MachineEnv> PartitionedHw::clone() const {
  return std::make_unique<PartitionedHw>(*this);
}

bool PartitionedHw::projectionEquals(const MachineEnv &Other, Label L) const {
  assert(Other.hwKind() == hwKind() && "comparing different hardware designs");
  assert(lattice().contains(L) && "label from another lattice");
  const auto &O = static_cast<const PartitionedHw &>(Other);
  unsigned I = L.index();
  return L1D[I] == O.L1D[I] && L2D[I] == O.L2D[I] && L1I[I] == O.L1I[I] &&
         L2I[I] == O.L2I[I] && DTlb[I] == O.DTlb[I] && ITlb[I] == O.ITlb[I];
}

void PartitionedHw::reset() {
  for (Partitioned *P : {&L1D, &L2D, &L1I, &L2I, &DTlb, &ITlb})
    for (Cache &C : *P)
      C.reset();
}

void PartitionedHw::randomize(Rng &R) {
  for (Partitioned *P : {&L1D, &L2D, &L1I, &L2I, &DTlb, &ITlb})
    for (Cache &C : *P)
      C.randomize(R);
}

void PartitionedHw::perturbAbove(Label L, Rng &R) {
  for (Partitioned *P : {&L1D, &L2D, &L1I, &L2I, &DTlb, &ITlb})
    for (unsigned I = 0, E = P->size(); I != E; ++I)
      if (!lattice().flowsTo(Label::fromIndex(I), L))
        (*P)[I].randomize(R);
}

HwStats PartitionedHw::stats() const {
  HwStats S = Stats;
  CacheLevelStats *Levels[] = {&S.L1D, &S.L2D, &S.L1I, &S.L2I, &S.DTlb,
                               &S.ITlb};
  const Partitioned *Parts[] = {&L1D, &L2D, &L1I, &L2I, &DTlb, &ITlb};
  for (unsigned I = 0; I != 6; ++I)
    for (const Cache &C : *Parts[I])
      mergeEvents(*Levels[I], C.events());
  return S;
}

void PartitionedHw::resetStats() {
  Stats.reset();
  for (Partitioned *P : {&L1D, &L2D, &L1I, &L2I, &DTlb, &ITlb})
    for (Cache &C : *P)
      C.resetEvents();
}
