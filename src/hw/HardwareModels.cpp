//===- HardwareModels.cpp -------------------------------------------------===//

#include "hw/HardwareModels.h"

#include "support/Diagnostics.h"

#include <cassert>

using namespace zam;

const char *zam::hwKindName(HwKind Kind) {
  switch (Kind) {
  case HwKind::NoPartition:
    return "nopar";
  case HwKind::NoFill:
    return "nofill";
  case HwKind::Partitioned:
    return "partitioned";
  }
  return "unknown";
}

MachineEnv::~MachineEnv() = default;

bool MachineEnv::equivalentUpTo(const MachineEnv &Other, Label L) const {
  for (Label Lv : Lat->allLabels())
    if (Lat->flowsTo(Lv, L) && !projectionEquals(Other, Lv))
      return false;
  return true;
}

std::string MachineEnv::describe() const {
  std::string Out = hwKindName(Kind);
  Out += " hardware over a ";
  Out += std::to_string(Lat->size());
  Out += "-level lattice";
  return Out;
}

std::unique_ptr<MachineEnv>
zam::createMachineEnv(HwKind Kind, const SecurityLattice &Lat,
                      const MachineEnvConfig &Config) {
  switch (Kind) {
  case HwKind::NoPartition:
    return std::make_unique<NoPartitionHw>(Lat, Config);
  case HwKind::NoFill:
    return std::make_unique<NoFillHw>(Lat, Config);
  case HwKind::Partitioned:
    return std::make_unique<PartitionedHw>(Lat, Config);
  }
  reportFatalError("unknown hardware kind");
}

//===----------------------------------------------------------------------===//
// UnifiedHwBase
//===----------------------------------------------------------------------===//

UnifiedHwBase::UnifiedHwBase(HwKind Kind, const SecurityLattice &Lat,
                             const MachineEnvConfig &Config)
    : MachineEnv(Kind, Lat, Config), L1D(Config.L1D), L2D(Config.L2D),
      L1I(Config.L1I), L2I(Config.L2I), DTlb(Config.DTlb), ITlb(Config.ITlb) {}

namespace {
/// Walks one TLB + two-level cache path. \p Fill selects between normal
/// operation and no-fill probing (no installs, no LRU updates).
uint64_t unifiedPath(Cache &Tlb, Cache &L1, Cache &L2, Addr A, bool Fill,
                     uint64_t MemLatency, uint64_t &TlbHits,
                     uint64_t &TlbMisses, uint64_t &L1Hits, uint64_t &L1Misses,
                     uint64_t &L2Hits, uint64_t &L2Misses) {
  uint64_t Cycles = 0;

  bool TlbHit = Fill ? Tlb.lookup(A) : Tlb.probe(A);
  if (TlbHit) {
    ++TlbHits;
  } else {
    ++TlbMisses;
    Cycles += Tlb.latency();
    if (Fill)
      Tlb.install(A);
  }

  Cycles += L1.latency();
  bool L1Hit = Fill ? L1.lookup(A) : L1.probe(A);
  if (L1Hit) {
    ++L1Hits;
    return Cycles;
  }
  ++L1Misses;

  Cycles += L2.latency();
  bool L2Hit = Fill ? L2.lookup(A) : L2.probe(A);
  if (L2Hit) {
    ++L2Hits;
  } else {
    ++L2Misses;
    Cycles += MemLatency;
    if (Fill)
      L2.install(A);
  }
  if (Fill)
    L1.install(A);
  return Cycles;
}
} // namespace

uint64_t UnifiedHwBase::dataAccess(Addr A, bool IsStore, Label Read,
                                   Label Write) {
  assert(lattice().contains(Read) && lattice().contains(Write) &&
         "labels from another lattice");
  return unifiedPath(DTlb, L1D, L2D, A, mayFill(Write), Config.MemLatency,
                     Stats.DTlbHit, Stats.DTlbMiss, Stats.L1DHit,
                     Stats.L1DMiss, Stats.L2DHit, Stats.L2DMiss);
}

uint64_t UnifiedHwBase::fetch(Addr A, Label Read, Label Write) {
  assert(lattice().contains(Read) && lattice().contains(Write) &&
         "labels from another lattice");
  return unifiedPath(ITlb, L1I, L2I, A, mayFill(Write), Config.MemLatency,
                     Stats.ITlbHit, Stats.ITlbMiss, Stats.L1IHit,
                     Stats.L1IMiss, Stats.L2IHit, Stats.L2IMiss);
}

bool UnifiedHwBase::projectionEquals(const MachineEnv &Other, Label L) const {
  assert(Other.hwKind() == hwKind() && "comparing different hardware designs");
  // All state lives at ⊥; projections at other levels are empty.
  if (L != lattice().bottom())
    return true;
  const auto &O = static_cast<const UnifiedHwBase &>(Other);
  return L1D == O.L1D && L2D == O.L2D && L1I == O.L1I && L2I == O.L2I &&
         DTlb == O.DTlb && ITlb == O.ITlb;
}

void UnifiedHwBase::reset() {
  L1D.reset();
  L2D.reset();
  L1I.reset();
  L2I.reset();
  DTlb.reset();
  ITlb.reset();
}

void UnifiedHwBase::randomize(Rng &R) {
  L1D.randomize(R);
  L2D.randomize(R);
  L1I.randomize(R);
  L2I.randomize(R);
  DTlb.randomize(R);
  ITlb.randomize(R);
}

void UnifiedHwBase::perturbAbove(Label L, Rng &R) {
  // All state is at ⊥ and ⊥ ⊑ L for every L, so nothing may change.
}

std::unique_ptr<MachineEnv> NoPartitionHw::clone() const {
  return std::make_unique<NoPartitionHw>(*this);
}

std::unique_ptr<MachineEnv> NoFillHw::clone() const {
  return std::make_unique<NoFillHw>(*this);
}

//===----------------------------------------------------------------------===//
// PartitionedHw
//===----------------------------------------------------------------------===//

CacheConfig PartitionedHw::partitionConfig(const CacheConfig &Full) const {
  CacheConfig Part = Full;
  Part.NumSets = std::max(1u, Full.NumSets / lattice().size());
  return Part;
}

PartitionedHw::Partitioned
PartitionedHw::makePartitions(const CacheConfig &Full) const {
  Partitioned P;
  CacheConfig Part = partitionConfig(Full);
  for (unsigned I = 0, E = lattice().size(); I != E; ++I)
    P.emplace_back(Part);
  return P;
}

PartitionedHw::PartitionedHw(const SecurityLattice &Lat,
                             const MachineEnvConfig &Config)
    : MachineEnv(HwKind::Partitioned, Lat, Config) {
  L1D = makePartitions(Config.L1D);
  L2D = makePartitions(Config.L2D);
  L1I = makePartitions(Config.L1I);
  L2I = makePartitions(Config.L2I);
  DTlb = makePartitions(Config.DTlb);
  ITlb = makePartitions(Config.ITlb);
}

bool PartitionedHw::partLookup(Partitioned &P, Addr A, Label Read,
                               Label Write) {
  const SecurityLattice &Lat = lattice();
  for (unsigned I = 0, E = P.size(); I != E; ++I) {
    Label Level = Label::fromIndex(I);
    // Only partitions at levels ⊑ er may influence timing (Property 6).
    if (!Lat.flowsTo(Level, Read))
      continue;
    // A hit may promote LRU state only when ew ⊑ level (Property 5);
    // otherwise the partition is probed without modification.
    if (Lat.flowsTo(Write, Level)) {
      if (P[I].lookup(A))
        return true;
    } else if (P[I].probe(A)) {
      return true;
    }
  }
  return false;
}

void PartitionedHw::partInstall(Partitioned &P, Addr A, Label Write) {
  const SecurityLattice &Lat = lattice();
  // Consistency: keep a single copy. A stale copy may only be removed from
  // levels the write label permits modifying (ew ⊑ level).
  for (unsigned I = 0, E = P.size(); I != E; ++I) {
    Label Level = Label::fromIndex(I);
    if (Level != Write && Lat.flowsTo(Write, Level))
      P[I].remove(A);
  }
  P[Write.index()].install(A);
}

uint64_t PartitionedHw::accessHierarchy(Partitioned &Tlb, Partitioned &L1,
                                        Partitioned &L2, Addr A, Label Read,
                                        Label Write, bool IsData) {
  uint64_t Cycles = 0;

  uint64_t &TlbHit = IsData ? Stats.DTlbHit : Stats.ITlbHit;
  uint64_t &TlbMiss = IsData ? Stats.DTlbMiss : Stats.ITlbMiss;
  uint64_t &L1Hit = IsData ? Stats.L1DHit : Stats.L1IHit;
  uint64_t &L1Miss = IsData ? Stats.L1DMiss : Stats.L1IMiss;
  uint64_t &L2Hit = IsData ? Stats.L2DHit : Stats.L2IHit;
  uint64_t &L2Miss = IsData ? Stats.L2DMiss : Stats.L2IMiss;

  if (partLookup(Tlb, A, Read, Write)) {
    ++TlbHit;
  } else {
    ++TlbMiss;
    Cycles += Tlb[0].latency();
    partInstall(Tlb, A, Write);
  }

  Cycles += L1[0].latency();
  if (partLookup(L1, A, Read, Write)) {
    ++L1Hit;
    return Cycles;
  }
  ++L1Miss;

  Cycles += L2[0].latency();
  if (partLookup(L2, A, Read, Write)) {
    ++L2Hit;
  } else {
    ++L2Miss;
    Cycles += Config.MemLatency;
    partInstall(L2, A, Write);
  }
  partInstall(L1, A, Write);
  return Cycles;
}

uint64_t PartitionedHw::dataAccess(Addr A, bool IsStore, Label Read,
                                   Label Write) {
  assert(lattice().contains(Read) && lattice().contains(Write) &&
         "labels from another lattice");
  return accessHierarchy(DTlb, L1D, L2D, A, Read, Write, /*IsData=*/true);
}

uint64_t PartitionedHw::fetch(Addr A, Label Read, Label Write) {
  assert(lattice().contains(Read) && lattice().contains(Write) &&
         "labels from another lattice");
  return accessHierarchy(ITlb, L1I, L2I, A, Read, Write, /*IsData=*/false);
}

std::unique_ptr<MachineEnv> PartitionedHw::clone() const {
  return std::make_unique<PartitionedHw>(*this);
}

bool PartitionedHw::projectionEquals(const MachineEnv &Other, Label L) const {
  assert(Other.hwKind() == hwKind() && "comparing different hardware designs");
  assert(lattice().contains(L) && "label from another lattice");
  const auto &O = static_cast<const PartitionedHw &>(Other);
  unsigned I = L.index();
  return L1D[I] == O.L1D[I] && L2D[I] == O.L2D[I] && L1I[I] == O.L1I[I] &&
         L2I[I] == O.L2I[I] && DTlb[I] == O.DTlb[I] && ITlb[I] == O.ITlb[I];
}

void PartitionedHw::reset() {
  for (Partitioned *P : {&L1D, &L2D, &L1I, &L2I, &DTlb, &ITlb})
    for (Cache &C : *P)
      C.reset();
}

void PartitionedHw::randomize(Rng &R) {
  for (Partitioned *P : {&L1D, &L2D, &L1I, &L2I, &DTlb, &ITlb})
    for (Cache &C : *P)
      C.randomize(R);
}

void PartitionedHw::perturbAbove(Label L, Rng &R) {
  for (Partitioned *P : {&L1D, &L2D, &L1I, &L2I, &DTlb, &ITlb})
    for (unsigned I = 0, E = P->size(); I != E; ++I)
      if (!lattice().flowsTo(Label::fromIndex(I), L))
        (*P)[I].randomize(R);
}
