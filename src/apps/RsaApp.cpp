//===- RsaApp.cpp ---------------------------------------------------------===//

#include "apps/RsaApp.h"

#include "lang/ProgramBuilder.h"
#include "support/Diagnostics.h"
#include "types/LabelInference.h"

using namespace zam;

namespace {
/// Emits `Dst := (A * B) mod nmod` as in-language shift-and-add using the
/// shared temporaries r/xx/yy. The modulus is public and below 2^61, so
/// the intermediate sums fit in the language's 64-bit integers.
CmdPtr emitMulMod(ProgramBuilder &B, const std::string &Dst,
                  const std::string &A, const std::string &BVar) {
  return B.seq(
      B.assign("r", B.lit(0)),
      B.assign("xx", B.v(A)),
      B.assign("yy", B.v(BVar)),
      B.whilec(B.bin(BinOpKind::Gt, B.v("yy"), B.lit(0)),
               B.seq(
                   B.ifc(B.band(B.v("yy"), B.lit(1)),
                         B.assign("r", B.mod(B.add(B.v("r"), B.v("xx")),
                                             B.v("nmod"))),
                         B.skip()),
                   B.assign("xx",
                            B.mod(B.add(B.v("xx"), B.v("xx")), B.v("nmod"))),
                   B.assign("yy", B.shr(B.v("yy"), B.lit(1))))),
      B.assign(Dst, B.v("r")));
}
} // namespace

Program zam::buildRsaProgram(const SecurityLattice &Lat, const RsaKey &Key,
                             const RsaProgramConfig &Config) {
  const Label L = Lat.bottom();
  const Label H = Lat.top();

  ProgramBuilder B(Lat);
  B.array("cblocks", L, Config.MaxBlocks);
  B.array("plain", H, Config.MaxBlocks);
  B.var("nblocks", L, 0);
  B.var("nmod", L, static_cast<int64_t>(Key.N));
  B.var("d", H, static_cast<int64_t>(Key.D)); // The secret.
  B.var("b", L, 0);
  B.var("prog", L, 0);
  B.var("done", L, 0);
  B.var("c", H, 0);
  B.var("result", H, 0);
  B.var("basev", H, 0);
  B.var("ev", H, 0);
  B.var("r", H, 0);
  B.var("xx", H, 0);
  B.var("yy", H, 0);

  // The confidential section: load the block, square-and-multiply
  // (result := c^d mod nmod), store the plaintext. Every assignment here
  // targets a high variable, so T-ASGN leaves the timing end-label high —
  // which is why the whole section sits inside the per-block mitigate.
  CmdPtr HighSection = B.seq(
      B.assign("c", B.idx("cblocks", B.v("b"))),
      B.assign("result", B.lit(1)),
      B.assign("basev", B.mod(B.v("c"), B.v("nmod"))),
      B.assign("ev", B.v("d")),
      B.whilec(B.bin(BinOpKind::Gt, B.v("ev"), B.lit(0)),
               B.seq(
                   B.ifc(B.band(B.v("ev"), B.lit(1)),
                         emitMulMod(B, "result", "result", "basev"), B.skip()),
                   emitMulMod(B, "basev", "basev", "basev"),
                   B.assign("ev", B.shr(B.v("ev"), B.lit(1))))),
      B.arrAssign("plain", B.v("b"), B.v("result")));

  if (Config.Mode == RsaMitigationMode::PerBlock)
    HighSection = B.mitigate(B.lit(Config.Estimate), H, std::move(HighSection));

  CmdPtr Body = B.seq(
      B.assign("b", B.lit(0)),
      B.whilec(B.lt(B.v("b"), B.v("nblocks")),
               B.seq(
                   B.assign("prog", B.v("b")), // Preprocess (low event).
                   std::move(HighSection),
                   B.assign("done", B.add(B.v("b"), B.lit(1))), // Postprocess.
                   B.assign("b", B.add(B.v("b"), B.lit(1))))));

  if (Config.Mode == RsaMitigationMode::WholeRun)
    Body = B.mitigate(B.lit(Config.Estimate), H, std::move(Body));

  B.body(std::move(Body));
  Program P = B.take();
  inferTimingLabels(P);
  return P;
}

void zam::setRsaMessage(Memory &M, const std::vector<uint64_t> &CipherBlocks) {
  MemorySlot &Blocks = M.slot("cblocks");
  if (CipherBlocks.size() > Blocks.Data.size())
    reportFatalError("message longer than the program's block buffer");
  for (size_t I = 0; I != CipherBlocks.size(); ++I)
    Blocks.Data[I] = static_cast<int64_t>(CipherBlocks[I]);
  M.store("nblocks", static_cast<int64_t>(CipherBlocks.size()));
}

RsaSession::RsaSession(const SecurityLattice &Lat, const RsaKey &Key,
                       const RsaProgramConfig &Config, MachineEnv &Env,
                       InterpreterOptions Opts)
    : P(buildRsaProgram(Lat, Key, Config)), Env(Env), Opts(Opts),
      MitState(Lat, Opts.Mitigation.base(), Opts.Penalty) {
  this->Opts.SharedMitState = &MitState;
}

RsaDecryptResult RsaSession::decrypt(const std::vector<uint64_t> &CipherBlocks) {
  FullInterpreter Interp(P, Env, Opts);
  setRsaMessage(Interp.memory(), CipherBlocks);
  RunResult R = Interp.run();

  RsaDecryptResult Out;
  Out.Cycles = R.T.FinalTime;
  const MemorySlot &Plain = R.FinalMemory.slot("plain");
  for (size_t I = 0; I != CipherBlocks.size(); ++I)
    Out.Plain.push_back(static_cast<uint64_t>(Plain.Data[I]));
  Out.T = std::move(R.T);
  return Out;
}

int64_t zam::calibrateRsaEstimate(const SecurityLattice &Lat,
                                  const RsaKey &Key,
                                  const MachineEnv &EnvTemplate,
                                  unsigned Samples, Rng &R,
                                  unsigned MaxBlocks) {
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::PerBlock;
  Config.Estimate = 1;
  Config.MaxBlocks = MaxBlocks;

  std::unique_ptr<MachineEnv> Env = EnvTemplate.clone();
  RsaSession Session(Lat, Key, Config, *Env);

  uint64_t Sum = 0, Count = 0;
  for (unsigned I = 0; I != Samples; ++I) {
    uint64_t Block = R.nextBelow(Key.N);
    RsaDecryptResult Res = Session.decrypt({rsaEncryptBlock(Key, Block)});
    for (const MitigateRecord &Rec : Res.T.Mitigations) {
      Sum += Rec.BodyTime;
      ++Count;
    }
  }
  if (Count == 0)
    return 1;
  return static_cast<int64_t>(Sum * 11 / (Count * 10));
}
