//===- CacheAttackApp.h - Prime+probe on a secret table lookup --*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating *indirect* timing dependency (Sec. 2.1): a victim
/// performs one AES-style secret-indexed table lookup, and a coresident
/// adversary recovers the accessed cache set with a classic prime+probe —
/// all within one object-language program:
///
///   1. PRIME  (low):  walk a probe array that fills every L1D set;
///   2. VICTIM (high): mitigate (e, H) { yv := sbox[(x ^ key) & 63] };
///   3. PROBE  (low):  re-walk the probe array set by set, emitting a public
///                     event after each set — the adversary reads the event
///                     timestamps and calls the slowest set the victim's.
///
/// The program is *well-typed*: the victim runs with [H,H] labels inside a
/// mitigate, so the type system accepts it. Whether the attack works is
/// decided entirely by the hardware side of the contract:
///
///   - on commodity (nopar) hardware the victim's line is installed in the
///     shared cache, evicting primed lines — the probe recovers the set and
///     hence bits of the key (Property 5 violated);
///   - on partitioned hardware the victim touches only the H partition and
///     the probe sees uniform timing — nothing leaks.
///
/// This is the paper's core thesis in one experiment: language-level typing
/// and hardware-level guarantees are only sound together.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_APPS_CACHEATTACKAPP_H
#define ZAM_APPS_CACHEATTACKAPP_H

#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "sem/FullInterpreter.h"

#include <cstdint>
#include <vector>

namespace zam {

/// Geometry of the attack, tied to the L1 D-cache configuration.
struct CacheAttackConfig {
  unsigned Sets = 128;      ///< L1D sets (nopar geometry).
  unsigned Ways = 4;        ///< L1D associativity.
  unsigned LineBytes = 32;  ///< L1D line size.
  unsigned SboxEntries = 64; ///< Secret table entries (16 lines of 4 words).

  unsigned wordsPerLine() const { return LineBytes / 8; }
  unsigned probeLines() const { return Sets * Ways; }
  unsigned probeEntries() const { return probeLines() * wordsPerLine(); }
};

/// Builds the prime+victim+probe program. `key` is the only H scalar; the
/// attacker-chosen input x and the probe machinery are public.
Program buildCacheAttackProgram(const SecurityLattice &Lat,
                                const CacheAttackConfig &Config,
                                int64_t MitigateEstimate = 4096);

/// Result of one prime+probe round.
struct ProbeResult {
  /// Per-set probe duration (cycles), index = cache set.
  std::vector<uint64_t> SetCycles;
  /// The set the adversary calls the victim's (argmax of SetCycles).
  unsigned RecoveredSet = 0;
  /// Ground truth: the L1 set (in nopar geometry) of the victim's line.
  unsigned TrueSet = 0;
  /// The secret's table line index, for key-recovery arithmetic.
  unsigned TrueLine = 0;
};

/// Runs one round with the given secret key and public input x on \p Env.
/// The program's alignment inputs are derived from the memory layout so the
/// probe array covers every set.
ProbeResult runPrimeProbe(const Program &P, MachineEnv &Env, int64_t Key,
                          int64_t X,
                          const CacheAttackConfig &Config = CacheAttackConfig());

/// Convenience: fraction of \p Rounds (with random x) in which the
/// adversary's recovered set equals the truth. ≈1 on leaky hardware,
/// ≈1/Sets on hardware honoring the contract.
double primeProbeHitRate(const SecurityLattice &Lat, HwKind Hw, int64_t Key,
                         unsigned Rounds, Rng &R,
                         const CacheAttackConfig &Config = CacheAttackConfig());

} // namespace zam

#endif // ZAM_APPS_CACHEATTACKAPP_H
