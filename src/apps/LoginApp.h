//===- LoginApp.h - The Sec. 8.3 web-login case study -----------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The web-application login of Sec. 8.3, written in the object language.
/// The secret is the hashmap m of MD5 digests of valid usernames with their
/// password digests, plus the login state; the request inputs (username and
/// password digests) and the constant `response := 1` are public. The
/// timing channel of Bortz & Boneh arises because valid usernames walk a
/// probe chain and verify a 4-word password digest while invalid ones stop
/// at an empty slot — valid attempts are measurably slower. Two mitigate
/// commands around the lookup and the password check close the channel,
/// exactly where the type system forces them.
///
/// As in the paper's pseudo-code, the request digests are computed *inside*
/// the mitigated regions (line 1 hashes the username, lines 5-10 hash the
/// password): a 64-round mixing loop stands in for MD5. That constant-work
/// hashing dominates both mitigated bodies, which is what makes the
/// mitigation overhead modest (Table 2).
///
/// Program shape (labels after inference; table size N, probe window 8):
///
///   response := 0;
///   mitigate (E1, H) {                   // lookup: m.contains(md5(user))
///     hv := u;  t := 0;
///     while (t < 64) { hv := mix(hv) + t; t := t + 1 }   // "md5(user)"
///     found := 0; idx := 0; probe := 0; jj := hv % N;
///     while (probe < 8 && found == 0 && muser[jj] != 0) {   // H guard
///       if (muser[jj] == hv) { found := 1; idx := jj } else { skip };
///       jj := (jj + 1) % N;  probe := probe + 1
///     }
///   };
///   mitigate (E2, H) {                   // check: hash == md5(pass)
///     ok := 0;
///     if (found == 1) {
///       pv := pq[0];  tk := 0;
///       while (tk < 64) { pv := mix(pv) + pq[tk & 3] + tk; tk := tk + 1 }
///       if (pv == mpass[idx]) { ok := 1 } else { skip };
///       state := state + ok
///     } else { skip }
///   };
///   response := 1                        // always 1: no storage channel
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_APPS_LOGINAPP_H
#define ZAM_APPS_LOGINAPP_H

#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "sem/FullInterpreter.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace zam {

/// The secret side of the workload: the credential hashmap. Open addressing
/// with linear probing; slot 0-digest means empty.
struct LoginTable {
  unsigned Size = 100;              ///< Table slots N.
  std::vector<int64_t> UserDigests; ///< muser[i]; 0 when the slot is empty.
  std::vector<int64_t> PassDigests; ///< mpass[i]: folded password digest.
  std::vector<std::string> ValidUsernames; ///< The usernames present.
};

/// C++ replica of the object-language 64-round username mix: the table
/// builder must hash exactly like the program does.
int64_t loginUserHash(int64_t WireDigest);

/// C++ replica of the object-language password fold over the four wire
/// words pq[0..3].
int64_t loginPassHash(const int64_t Words[4]);

/// Builds a table holding \p NumValid valid accounts "user0".."userV-1"
/// (password "pass<i>"), hashed into \p TableSize slots by digest modulo
/// with linear probing.
LoginTable makeLoginTable(unsigned TableSize, unsigned NumValid, Rng &R);

struct LoginProgramConfig {
  bool Mitigated = true;
  int64_t Estimate1 = 1; ///< Initial prediction of the lookup mitigate.
  int64_t Estimate2 = 1; ///< Initial prediction of the check mitigate.
};

/// Builds the (type-checked when mitigated) login program over the
/// two-point lattice \p Lat, with the table baked into the initial memory.
Program buildLoginProgram(const SecurityLattice &Lat, const LoginTable &Table,
                          const LoginProgramConfig &Config);

/// Writes one request's public inputs (username digest u and the four
/// password digest words pq[0..3]) into \p M.
void setLoginRequest(Memory &M, const std::string &Username,
                     const std::string &Password);

/// Result of one simulated login attempt.
struct LoginAttemptResult {
  uint64_t Cycles = 0;   ///< Attempt latency (final clock of the run).
  bool Accepted = false; ///< Whether the credentials matched (secret!).
};

/// A login session: runs attempts against one machine environment and a
/// persistent mitigation Miss table, as a server would.
class LoginSession {
public:
  LoginSession(const SecurityLattice &Lat, const LoginTable &Table,
               const LoginProgramConfig &Config, MachineEnv &Env,
               InterpreterOptions Opts = InterpreterOptions());

  /// Runs one attempt; the machine environment and Miss table persist.
  LoginAttemptResult attempt(const std::string &Username,
                             const std::string &Password);

  /// Clears the prediction schedule (fresh Miss table), keeping the
  /// machine environment.
  void resetMitigation() { MitState.reset(); }

  /// The session's live prediction schedule.
  const MitigationState &mitigationState() const { return MitState; }

  const Program &program() const { return P; }

private:
  Program P;
  MachineEnv &Env;
  InterpreterOptions Opts;
  MitigationState MitState;
};

/// Samples mitigated-body times over \p Samples random usernames (half the
/// candidate names valid) on a clone of \p EnvTemplate and returns initial
/// predictions at 110% of the largest observed body (the Sec. 8.2
/// calibration, using the per-request maximum so that steady-state
/// execution stays on the initial schedule).
std::pair<int64_t, int64_t> calibrateLoginEstimates(const SecurityLattice &Lat,
                                                    const LoginTable &Table,
                                                    const MachineEnv &EnvTemplate,
                                                    unsigned Samples, Rng &R);

} // namespace zam

#endif // ZAM_APPS_LOGINAPP_H
