//===- CacheAttackApp.cpp -------------------------------------------------===//

#include "apps/CacheAttackApp.h"

#include "lang/ProgramBuilder.h"
#include "support/Diagnostics.h"
#include "types/LabelInference.h"

#include <algorithm>

using namespace zam;

Program zam::buildCacheAttackProgram(const SecurityLattice &Lat,
                                     const CacheAttackConfig &Config,
                                     int64_t MitigateEstimate) {
  const Label L = Lat.bottom();
  const Label H = Lat.top();
  const int64_t Sets = Config.Sets;
  const int64_t Ways = Config.Ways;
  const int64_t Wpl = Config.wordsPerLine();
  const int64_t ProbeLines = Config.probeLines();

  ProgramBuilder B(Lat);
  // The S-box contents are public (as in AES); only the index is secret.
  std::vector<int64_t> SboxInit;
  for (unsigned I = 0; I != Config.SboxEntries; ++I)
    SboxInit.push_back(static_cast<int64_t>((I * 167 + 13) & 255));
  B.array("sbox", L, Config.SboxEntries, SboxInit);
  B.array("probe", L, Config.probeEntries());
  B.var("key", H, 0);
  B.var("x", L, 0);
  B.var("yv", H, 0);
  B.var("offs", L, 0); // Probe-array alignment, set by the driver.
  B.var("i", L, 0);
  B.var("s", L, 0);
  B.var("w", L, 0);
  B.var("m", L, 0);
  B.var("tmp", L, 0);
  B.var("mark", L, 0);

  // 1. PRIME: touch every probe line, filling all Ways of every set.
  CmdPtr Prime = B.seq(
      B.assign("i", B.lit(0)),
      B.whilec(B.lt(B.v("i"), B.lit(ProbeLines)),
               B.seq(B.assign("tmp",
                              B.add(B.v("tmp"),
                                    B.idx("probe", B.mul(B.v("i"), B.lit(Wpl))))),
                     B.assign("i", B.add(B.v("i"), B.lit(1))))));

  // 2. VICTIM: one secret-indexed lookup, mitigated so the program is
  // well-typed; the cache *state* it leaves behind is the channel.
  CmdPtr Victim = B.mitigate(
      B.lit(MitigateEstimate), H,
      B.assign("yv",
               B.idx("sbox", B.band(B.bin(BinOpKind::BitXor, B.v("x"),
                                          B.v("key")),
                                    B.lit(Config.SboxEntries - 1)))));

  // 3. PROBE: re-walk each set's Ways lines; the public `mark` event after
  // each set timestamps it for the adversary.
  CmdPtr Probe = B.seq(
      B.assign("s", B.lit(0)),
      B.whilec(
          B.lt(B.v("s"), B.lit(Sets)),
          B.seq(
              B.assign("w", B.lit(0)),
              B.whilec(
                  B.lt(B.v("w"), B.lit(Ways)),
                  B.seq(
                      B.assign("m",
                               B.add(B.mod(B.add(B.v("s"), B.v("offs")),
                                           B.lit(Sets)),
                                     B.mul(B.v("w"), B.lit(Sets)))),
                      B.assign("tmp",
                               B.add(B.v("tmp"),
                                     B.idx("probe",
                                           B.mul(B.v("m"), B.lit(Wpl))))),
                      B.assign("w", B.add(B.v("w"), B.lit(1))))),
              B.assign("mark", B.v("s")),
              B.assign("s", B.add(B.v("s"), B.lit(1))))));

  B.body(B.seq(std::move(Prime), std::move(Victim), std::move(Probe)));
  Program P = B.take();
  inferTimingLabels(P);
  return P;
}

ProbeResult zam::runPrimeProbe(const Program &P, MachineEnv &Env, int64_t Key,
                               int64_t X, const CacheAttackConfig &Config) {
  FullInterpreter Interp(P, Env);
  Memory &M = Interp.memory();
  M.store("key", Key);
  M.store("x", X);

  // Alignment: probe line m sits at L1 set (ProbeBase/Line + m) % Sets (in
  // the unpartitioned geometry); offs makes the program's "set s" walk the
  // physical set s.
  const Addr ProbeBase = M.addrOf("probe");
  const int64_t Align =
      static_cast<int64_t>((ProbeBase / Config.LineBytes) % Config.Sets);
  M.store("offs", (static_cast<int64_t>(Config.Sets) - Align) % Config.Sets);

  // Ground truth for the adversary's verdict.
  const Addr SboxBase = M.addrOf("sbox");
  const unsigned Index =
      static_cast<unsigned>((static_cast<uint64_t>(X) ^
                             static_cast<uint64_t>(Key)) &
                            (Config.SboxEntries - 1));
  const Addr VictimAddr = SboxBase + Index * 8;

  RunResult R = Interp.run();

  ProbeResult Out;
  Out.TrueLine = Index / Config.wordsPerLine();
  Out.TrueSet = static_cast<unsigned>((VictimAddr / Config.LineBytes) %
                                      Config.Sets);

  // Reconstruct per-set probe durations from the public `mark` events —
  // exactly what the coresident adversary of Sec. 3.4 observes.
  std::vector<uint64_t> MarkTimes;
  uint64_t ProbeStart = 0;
  for (const AssignEvent &E : R.T.Events) {
    if (E.Var == "s" && E.Value == 0 && MarkTimes.empty())
      ProbeStart = E.Time; // The probe loop's initialization.
    if (E.Var == "mark")
      MarkTimes.push_back(E.Time);
  }
  if (MarkTimes.size() != Config.Sets)
    reportFatalError("prime+probe trace missing mark events");

  uint64_t Prev = ProbeStart;
  for (uint64_t T : MarkTimes) {
    Out.SetCycles.push_back(T - Prev);
    Prev = T;
  }
  Out.RecoveredSet = static_cast<unsigned>(
      std::max_element(Out.SetCycles.begin(), Out.SetCycles.end()) -
      Out.SetCycles.begin());
  return Out;
}

double zam::primeProbeHitRate(const SecurityLattice &Lat, HwKind Hw,
                              int64_t Key, unsigned Rounds, Rng &R,
                              const CacheAttackConfig &Config) {
  Program P = buildCacheAttackProgram(Lat, Config);
  auto Env = createMachineEnv(Hw, Lat);
  // Warm-up round (cold I-cache/TLB would otherwise pollute round one),
  // then a baseline round: the probe loop's own scalars pollute a few sets
  // deterministically, so the adversary measures *differentially* against
  // the baseline, as real prime+probe attacks do.
  runPrimeProbe(P, *Env, Key, 0, Config);
  ProbeResult Baseline = runPrimeProbe(P, *Env, Key, 0, Config);

  unsigned Hits = 0;
  for (unsigned I = 0; I != Rounds; ++I) {
    int64_t X = static_cast<int64_t>(R.nextBelow(Config.SboxEntries));
    ProbeResult Res = runPrimeProbe(P, *Env, Key, X, Config);
    // Differential decode: the set whose probe time grew the most relative
    // to the baseline round.
    int64_t Best = INT64_MIN;
    unsigned BestSet = 0;
    for (unsigned S = 0; S != Res.SetCycles.size(); ++S) {
      int64_t Diff = static_cast<int64_t>(Res.SetCycles[S]) -
                     static_cast<int64_t>(Baseline.SetCycles[S]);
      if (Diff > Best) {
        Best = Diff;
        BestSet = S;
      }
    }
    if (BestSet == Res.TrueSet)
      ++Hits;
  }
  return static_cast<double>(Hits) / Rounds;
}
