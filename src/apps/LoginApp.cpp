//===- LoginApp.cpp -------------------------------------------------------===//

#include "apps/LoginApp.h"

#include "crypto/Md5.h"
#include "lang/ProgramBuilder.h"
#include "support/Diagnostics.h"
#include "types/LabelInference.h"

using namespace zam;

/// Probe window of the linear-probing lookup.
static constexpr int64_t ProbeLimit = 8;
/// Rounds of the in-language request-hashing loops ("md5" stand-in).
static constexpr int64_t HashRounds = 64;
/// Multiplier of the mixing rounds (FNV-1a prime; fits in int64).
static constexpr int64_t HashMul = 1099511628211;

/// One round of the object-language mix, replicated with the language's
/// exact total semantics (wrapping multiply, logical shift).
static int64_t mixRound(int64_t Hv) {
  uint64_t U = static_cast<uint64_t>(Hv);
  uint64_t Mixed = (U * static_cast<uint64_t>(HashMul)) ^ (U >> 29);
  return static_cast<int64_t>(Mixed);
}

int64_t zam::loginUserHash(int64_t WireDigest) {
  int64_t Hv = WireDigest;
  for (int64_t T = 0; T != HashRounds; ++T)
    Hv = static_cast<int64_t>(static_cast<uint64_t>(mixRound(Hv)) +
                              static_cast<uint64_t>(T));
  return Hv;
}

int64_t zam::loginPassHash(const int64_t Words[4]) {
  int64_t Pv = Words[0];
  for (int64_t T = 0; T != HashRounds; ++T)
    Pv = static_cast<int64_t>(static_cast<uint64_t>(mixRound(Pv)) +
                              static_cast<uint64_t>(Words[T & 3]) +
                              static_cast<uint64_t>(T));
  return Pv;
}

static void passwordWords(const std::string &Password, int64_t Words[4]) {
  Md5Digest D1 = md5(Password);
  Md5Digest D2 = md5(Password + "#zam");
  Words[0] = D1.word(0);
  Words[1] = D1.word(1);
  Words[2] = D2.word(0);
  Words[3] = D2.word(1);
}

LoginTable zam::makeLoginTable(unsigned TableSize, unsigned NumValid, Rng &R) {
  if (NumValid > TableSize)
    reportFatalError("more valid accounts than table slots");
  LoginTable Table;
  Table.Size = TableSize;
  Table.UserDigests.assign(TableSize, 0); // 0 = empty slot.
  Table.PassDigests.assign(TableSize, 0);
  for (unsigned I = 0; I != NumValid; ++I) {
    std::string User = "user" + std::to_string(I);
    std::string Pass = "pass" + std::to_string(I);
    int64_t Digest = loginUserHash(md5(User).low64());
    if (Digest == 0)
      Digest = 1; // Keep 0 reserved for "empty".
    // Linear probing from the home slot, using the object language's signed
    // modulo (wrapped), so the lookup program probes the same chain.
    int64_t Home = Digest % static_cast<int64_t>(TableSize);
    if (Home < 0)
      Home += TableSize;
    uint64_t Slot = static_cast<uint64_t>(Home);
    while (Table.UserDigests[Slot] != 0)
      Slot = (Slot + 1) % TableSize;
    Table.UserDigests[Slot] = Digest;
    int64_t Words[4];
    passwordWords(Pass, Words);
    Table.PassDigests[Slot] = loginPassHash(Words);
    Table.ValidUsernames.push_back(std::move(User));
  }
  return Table;
}

Program zam::buildLoginProgram(const SecurityLattice &Lat,
                               const LoginTable &Table,
                               const LoginProgramConfig &Config) {
  const Label L = Lat.bottom();
  const Label H = Lat.top();
  const int64_t N = Table.Size;

  ProgramBuilder B(Lat);
  B.array("muser", H, Table.Size, Table.UserDigests);
  B.array("mpass", H, Table.Size, Table.PassDigests);
  B.var("state", H, 0);
  B.var("u", L, 0);
  B.array("pq", L, 4);
  // Request-parsing workspace: the hash loop streams through it, modeling
  // the low-context buffer traffic of a real request handler. It stays
  // all-zero, so the C++ digest replicas are unaffected.
  B.array("buf", L, 64);
  B.var("response", L, 0);
  B.var("hv", L, 0);  // Username hash (public input, public hash).
  B.var("t", L, 0);   // Hash-loop counter (low context).
  B.var("found", H, 0);
  B.var("idx", H, 0);
  B.var("probe", H, 0);
  B.var("jj", H, 0);
  B.var("pv", H, 0);  // Password hash (computed under a high pc).
  B.var("tk", H, 0);  // Check-phase loop counter (high context).
  B.var("ok", H, 0);

  // One round of the request "digest": hv := ((hv * M) ^ (hv >> 29)) + t.
  auto MixInto = [&](const char *Var, ExprPtr Salt) {
    return B.assign(
        Var, B.add(B.bin(BinOpKind::BitXor,
                         B.mul(B.v(Var), B.lit(HashMul)),
                         B.shr(B.v(Var), B.lit(29))),
                   std::move(Salt)));
  };

  // --- Lookup: hash the username, then probe the chain from its home slot.
  // Invalid usernames usually stop at an empty slot; valid ones walk to
  // their slot — the residual timing difference Fig. 7 measures. The
  // 64-round hash dominates and is secret-independent.
  CmdPtr Lookup = B.seq(
      B.assign("hv", B.v("u")),
      B.assign("t", B.lit(0)),
      B.whilec(B.lt(B.v("t"), B.lit(HashRounds)),
               B.seq(MixInto("hv", B.add(B.v("t"), B.idx("buf", B.v("t")))),
                     B.assign("t", B.add(B.v("t"), B.lit(1))))),
      B.assign("found", B.lit(0)),
      B.assign("idx", B.lit(0)),
      B.assign("probe", B.lit(0)),
      B.assign("jj", B.mod(B.v("hv"), B.lit(N))),
      B.whilec(
          B.land(B.land(B.lt(B.v("probe"), B.lit(ProbeLimit)),
                        B.eq(B.v("found"), B.lit(0))),
                 B.ne(B.idx("muser", B.v("jj")), B.lit(0))),
          B.seq(
              B.ifc(B.eq(B.idx("muser", B.v("jj")), B.v("hv")),
                    B.seq(B.assign("found", B.lit(1)),
                          B.assign("idx", B.v("jj"))),
                    B.skip()),
              B.assign("jj", B.mod(B.add(B.v("jj"), B.lit(1)), B.lit(N))),
              B.assign("probe", B.add(B.v("probe"), B.lit(1))))));

  // --- Check: hash the password and compare to the stored digest. All of
  // this runs under the high `found` branch, so every variable written here
  // is high.
  CmdPtr Check = B.seq(
      B.assign("ok", B.lit(0)),
      B.ifc(
          B.eq(B.v("found"), B.lit(1)),
          B.seq(
              B.assign("pv", B.idx("pq", B.lit(0))),
              B.assign("tk", B.lit(0)),
              B.whilec(B.lt(B.v("tk"), B.lit(HashRounds)),
                       B.seq(MixInto("pv",
                                     B.add(B.idx("pq",
                                                 B.band(B.v("tk"), B.lit(3))),
                                           B.v("tk"))),
                             B.assign("tk", B.add(B.v("tk"), B.lit(1))))),
              B.ifc(B.eq(B.v("pv"), B.idx("mpass", B.v("idx"))),
                    B.assign("ok", B.lit(1)), B.skip()),
              B.assign("state", B.add(B.v("state"), B.v("ok")))),
          B.skip()));

  if (Config.Mitigated) {
    Lookup = B.mitigate(B.lit(Config.Estimate1), H, std::move(Lookup));
    Check = B.mitigate(B.lit(Config.Estimate2), H, std::move(Check));
  }

  B.body(B.seq(
      B.assign("response", B.lit(0)),
      std::move(Lookup),
      std::move(Check),
      // Always 1, so the response value carries nothing; only its timing
      // could (and mitigation bounds that).
      B.assign("response", B.lit(1))));

  Program P = B.take();
  inferTimingLabels(P);
  return P;
}

void zam::setLoginRequest(Memory &M, const std::string &Username,
                          const std::string &Password) {
  int64_t Digest = md5(Username).low64();
  // The program hashes this wire value itself; keep the hashed digest
  // nonzero so it can never match the empty-slot sentinel.
  if (loginUserHash(Digest) == 0)
    Digest ^= 1;
  M.store("u", Digest);
  int64_t Words[4];
  passwordWords(Password, Words);
  for (unsigned W = 0; W != 4; ++W)
    M.storeElem("pq", W, Words[W]);
}

LoginSession::LoginSession(const SecurityLattice &Lat, const LoginTable &Table,
                           const LoginProgramConfig &Config, MachineEnv &Env,
                           InterpreterOptions Opts)
    : P(buildLoginProgram(Lat, Table, Config)), Env(Env), Opts(Opts),
      MitState(Lat, Opts.Mitigation.base(), Opts.Penalty) {
  this->Opts.SharedMitState = &MitState;
}

LoginAttemptResult LoginSession::attempt(const std::string &Username,
                                         const std::string &Password) {
  FullInterpreter Interp(P, Env, Opts);
  setLoginRequest(Interp.memory(), Username, Password);
  RunResult R = Interp.run();
  LoginAttemptResult Out;
  Out.Cycles = R.T.FinalTime;
  Out.Accepted = R.FinalMemory.load("ok") == 1;
  return Out;
}

std::pair<int64_t, int64_t>
zam::calibrateLoginEstimates(const SecurityLattice &Lat,
                             const LoginTable &Table,
                             const MachineEnv &EnvTemplate, unsigned Samples,
                             Rng &R) {
  LoginProgramConfig Config;
  Config.Mitigated = true;
  Config.Estimate1 = 1;
  Config.Estimate2 = 1;

  std::unique_ptr<MachineEnv> Env = EnvTemplate.clone();
  Program P = buildLoginProgram(Lat, Table, Config);

  // Sample both code paths: valid usernames (when the table has any) and
  // invalid ones. Track the per-mitigate maximum over the *warm* samples
  // (skip the first, cold-cache one).
  uint64_t Max1 = 0, Max2 = 0;
  for (unsigned I = 0; I != Samples; ++I) {
    std::string User;
    if (I % 2 == 0 && !Table.ValidUsernames.empty())
      User = Table.ValidUsernames[R.nextBelow(Table.ValidUsernames.size())];
    else
      User = "ghost" + std::to_string(R.nextBelow(1000));
    InterpreterOptions Opts;
    MitigationState St(Lat, fastDoublingPolicy(), Opts.Penalty);
    Opts.SharedMitState = &St;
    FullInterpreter Interp(P, *Env, Opts);
    setLoginRequest(Interp.memory(), User, "pass" + std::to_string(I));
    RunResult Res = Interp.run();
    if (I == 0)
      continue; // Cold-cache outlier.
    for (const MitigateRecord &Rec : Res.T.Mitigations) {
      if (Rec.Eta == 0)
        Max1 = std::max(Max1, Rec.BodyTime);
      else
        Max2 = std::max(Max2, Rec.BodyTime);
    }
  }
  return {static_cast<int64_t>(std::max<uint64_t>(Max1 * 11 / 10, 1)),
          static_cast<int64_t>(std::max<uint64_t>(Max2 * 11 / 10, 1))};
}
