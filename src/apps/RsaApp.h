//===- RsaApp.h - The Sec. 8.4 RSA decryption case study --------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-block RSA decryption in the object language. Only the modular
/// exponentiation uses the confidential private exponent d, so only that
/// section is labeled high and wrapped in a mitigate; the per-block
/// preprocess/postprocess steps perform public assignments whose timing the
/// adversary observes. Decryption time depends on d through the
/// square-and-multiply branch (the classic Kocher channel), which the
/// per-block mitigate closes.
///
/// Program shape (per-block mitigation mode):
///
///   b := 0;
///   while (b < nblocks) {             // nblocks is public
///     prog := b;                      // preprocess: observable low event
///     c := cblocks[b];
///     mitigate (E, H) {               // modexp: result := c^d mod nmod
///       result := 1; basev := c % nmod; ev := d;
///       while (ev > 0) {              // H guard: key-dependent trip/branch
///         if (ev & 1) { result := result*basev mod nmod };  // peasant mul
///         basev := basev*basev mod nmod;
///         ev := ev >> 1
///       }
///     };
///     plain[b] := result;
///     done := b + 1;                  // postprocess: observable low event
///     b := b + 1
///   }
///
/// Modular multiplication is expanded in-language as shift-and-add (the
/// modulus is below 2^61, so sums never overflow).
///
/// Three modes reproduce the evaluation:
///   Unmitigated — the timing attack of Fig. 8 (fails type checking);
///   PerBlock    — the paper's language-level mitigation (type-checks);
///   WholeRun    — system-level predictive mitigation [5] simulated by one
///                 mitigate around the entire body (Fig. 9 baseline; also
///                 fails type checking, as external mitigation provides no
///                 language-level guarantee).
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_APPS_RSAAPP_H
#define ZAM_APPS_RSAAPP_H

#include "crypto/ToyRsa.h"
#include "hw/MachineEnv.h"
#include "lang/Ast.h"
#include "sem/FullInterpreter.h"

#include <vector>

namespace zam {

enum class RsaMitigationMode { Unmitigated, PerBlock, WholeRun };

struct RsaProgramConfig {
  RsaMitigationMode Mode = RsaMitigationMode::PerBlock;
  int64_t Estimate = 1;    ///< Initial prediction for each mitigate.
  unsigned MaxBlocks = 16; ///< Capacity of the block buffers.
};

/// Builds the decryption program with \p Key's modulus (public) and private
/// exponent (secret) baked into the declarations.
Program buildRsaProgram(const SecurityLattice &Lat, const RsaKey &Key,
                        const RsaProgramConfig &Config);

/// Writes a ciphertext (≤ MaxBlocks blocks) into \p M.
void setRsaMessage(Memory &M, const std::vector<uint64_t> &CipherBlocks);

struct RsaDecryptResult {
  uint64_t Cycles = 0;
  std::vector<uint64_t> Plain; ///< Decrypted blocks (from secret memory).
  Trace T;
};

/// A decryption session over one machine environment and persistent
/// mitigation state.
class RsaSession {
public:
  RsaSession(const SecurityLattice &Lat, const RsaKey &Key,
             const RsaProgramConfig &Config, MachineEnv &Env,
             InterpreterOptions Opts = InterpreterOptions());

  RsaDecryptResult decrypt(const std::vector<uint64_t> &CipherBlocks);

  const Program &program() const { return P; }

private:
  Program P;
  MachineEnv &Env;
  InterpreterOptions Opts;
  MitigationState MitState;
};

/// Samples per-block modexp body times over \p Samples random one-block
/// messages and returns 110% of the average (the Sec. 8.2 calibration).
int64_t calibrateRsaEstimate(const SecurityLattice &Lat, const RsaKey &Key,
                             const MachineEnv &EnvTemplate, unsigned Samples,
                             Rng &R, unsigned MaxBlocks = 16);

} // namespace zam

#endif // ZAM_APPS_RSAAPP_H
