//===- ToyRsa.cpp ---------------------------------------------------------===//

#include "crypto/ToyRsa.h"

#include "crypto/ModMath.h"
#include "support/Diagnostics.h"

#include <algorithm>

using namespace zam;

unsigned RsaKey::privateExponentBits() const {
  unsigned Bits = 0;
  uint64_t V = D;
  while (V != 0) {
    ++Bits;
    V >>= 1;
  }
  return Bits;
}

static uint64_t randomPrime(Rng &R, unsigned Bits) {
  const uint64_t Lo = 1ull << (Bits - 1);
  const uint64_t Hi = (1ull << Bits) - 1;
  for (unsigned Attempt = 0; Attempt != 100000; ++Attempt) {
    uint64_t Candidate = Lo + R.nextBelow(Hi - Lo + 1);
    Candidate |= 1; // Odd.
    if (isPrime(Candidate))
      return Candidate;
  }
  reportFatalError("prime sampling failed");
}

RsaKey zam::generateRsaKey(Rng &R, unsigned ModulusBits) {
  ModulusBits = std::clamp(ModulusBits, 16u, 61u);
  const unsigned PrimeBits = ModulusBits / 2;
  for (;;) {
    uint64_t P = randomPrime(R, PrimeBits);
    uint64_t Q = randomPrime(R, ModulusBits - PrimeBits);
    if (P == Q)
      continue;
    uint64_t N = P * Q;
    uint64_t Phi = (P - 1) * (Q - 1);
    uint64_t E = 65537;
    uint64_t D = invmod(E, Phi);
    if (D == 0)
      continue; // gcd(e, φ) ≠ 1; resample.
    return RsaKey{N, E, D};
  }
}

uint64_t zam::rsaEncryptBlock(const RsaKey &Key, uint64_t Plain) {
  return powmod(Plain % Key.N, Key.E, Key.N);
}

uint64_t zam::rsaDecryptBlock(const RsaKey &Key, uint64_t Cipher) {
  return powmod(Cipher % Key.N, Key.D, Key.N);
}

std::vector<uint64_t>
zam::rsaEncryptMessage(const RsaKey &Key, const std::vector<uint8_t> &Message) {
  // Pack 6 bytes per block (48 bits < any ≥49-bit modulus we generate).
  std::vector<uint64_t> Blocks;
  for (size_t I = 0; I < Message.size(); I += 6) {
    uint64_t Block = 0;
    for (size_t J = 0; J != 6 && I + J < Message.size(); ++J)
      Block |= static_cast<uint64_t>(Message[I + J]) << (8 * J);
    Blocks.push_back(rsaEncryptBlock(Key, Block % Key.N));
  }
  return Blocks;
}

std::vector<uint64_t>
zam::rsaDecryptBlocks(const RsaKey &Key, const std::vector<uint64_t> &Blocks) {
  std::vector<uint64_t> Out;
  Out.reserve(Blocks.size());
  for (uint64_t B : Blocks)
    Out.push_back(rsaDecryptBlock(Key, B));
  return Out;
}
