//===- Md5.cpp - RFC 1321 implementation -----------------------------------===//

#include "crypto/Md5.h"

#include <cstring>
#include <vector>

using namespace zam;

namespace {

constexpr uint32_t K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr unsigned Shift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

uint32_t rotl32(uint32_t X, unsigned C) { return (X << C) | (X >> (32 - C)); }

void processBlock(const uint8_t *Block, uint32_t State[4]) {
  uint32_t M[16];
  for (unsigned I = 0; I != 16; ++I)
    M[I] = static_cast<uint32_t>(Block[I * 4]) |
           (static_cast<uint32_t>(Block[I * 4 + 1]) << 8) |
           (static_cast<uint32_t>(Block[I * 4 + 2]) << 16) |
           (static_cast<uint32_t>(Block[I * 4 + 3]) << 24);

  uint32_t A = State[0], B = State[1], C = State[2], D = State[3];
  for (unsigned I = 0; I != 64; ++I) {
    uint32_t F;
    unsigned G;
    if (I < 16) {
      F = (B & C) | (~B & D);
      G = I;
    } else if (I < 32) {
      F = (D & B) | (~D & C);
      G = (5 * I + 1) % 16;
    } else if (I < 48) {
      F = B ^ C ^ D;
      G = (3 * I + 5) % 16;
    } else {
      F = C ^ (B | ~D);
      G = (7 * I) % 16;
    }
    uint32_t Tmp = D;
    D = C;
    C = B;
    B = B + rotl32(A + F + K[I] + M[G], Shift[I]);
    A = Tmp;
  }
  State[0] += A;
  State[1] += B;
  State[2] += C;
  State[3] += D;
}

} // namespace

Md5Digest zam::md5(const void *Data, size_t Len) {
  uint32_t State[4] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476};

  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  size_t Full = Len / 64;
  for (size_t I = 0; I != Full; ++I)
    processBlock(Bytes + I * 64, State);

  // Padding: 0x80, zeros, then the bit length as a 64-bit little-endian word.
  std::vector<uint8_t> Tail(Bytes + Full * 64, Bytes + Len);
  Tail.push_back(0x80);
  while (Tail.size() % 64 != 56)
    Tail.push_back(0);
  uint64_t BitLen = static_cast<uint64_t>(Len) * 8;
  for (unsigned I = 0; I != 8; ++I)
    Tail.push_back(static_cast<uint8_t>(BitLen >> (8 * I)));
  for (size_t I = 0; I != Tail.size(); I += 64)
    processBlock(Tail.data() + I, State);

  Md5Digest Out;
  for (unsigned W = 0; W != 4; ++W)
    for (unsigned B = 0; B != 4; ++B)
      Out.Bytes[W * 4 + B] = static_cast<uint8_t>(State[W] >> (8 * B));
  return Out;
}

Md5Digest zam::md5(const std::string &Text) {
  return md5(Text.data(), Text.size());
}

std::string Md5Digest::hex() const {
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(32);
  for (uint8_t B : Bytes) {
    Out += Digits[B >> 4];
    Out += Digits[B & 0xf];
  }
  return Out;
}

int64_t Md5Digest::low64() const { return word(0); }

int64_t Md5Digest::word(unsigned Index) const {
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(Bytes[Index * 8 + I]) << (8 * I);
  return static_cast<int64_t>(V);
}
