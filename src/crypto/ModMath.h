//===- ModMath.h - 64-bit modular arithmetic --------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Modular arithmetic helpers (128-bit intermediate products) used by the
/// toy RSA substrate and as the C++ reference against which the
/// object-language square-and-multiply implementation is validated.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_CRYPTO_MODMATH_H
#define ZAM_CRYPTO_MODMATH_H

#include <cstdint>

namespace zam {

/// (A * B) mod M without overflow; M must be nonzero.
uint64_t mulmod(uint64_t A, uint64_t B, uint64_t M);

/// (Base ^ Exp) mod M by square-and-multiply; M must be nonzero.
uint64_t powmod(uint64_t Base, uint64_t Exp, uint64_t M);

/// Extended-Euclid modular inverse; returns 0 when gcd(A, M) != 1.
uint64_t invmod(uint64_t A, uint64_t M);

/// Deterministic Miller-Rabin, exact for all 64-bit inputs.
bool isPrime(uint64_t N);

} // namespace zam

#endif // ZAM_CRYPTO_MODMATH_H
