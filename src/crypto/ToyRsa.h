//===- ToyRsa.h - Small-modulus RSA for the Sec. 8.4 case study -*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textbook RSA over ≤61-bit moduli. The paper used the 1024-bit RSA
/// reference implementation on SimpleScalar; the timing channel it
/// mitigates is the private-exponent-dependent control flow of
/// square-and-multiply modular exponentiation, which is equally present at
/// 61 bits (DESIGN.md §1 documents the substitution). The C++ routines here
/// generate keys and ciphertext blocks; decryption is performed *in the
/// object language* (apps/RsaApp.h) so that its timing flows through the
/// simulated machine environment.
///
/// Toy parameters; not secure cryptography.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_CRYPTO_TOYRSA_H
#define ZAM_CRYPTO_TOYRSA_H

#include "support/Rng.h"

#include <cstdint>
#include <vector>

namespace zam {

/// An RSA key pair over a small modulus.
struct RsaKey {
  uint64_t N = 0; ///< Modulus p·q.
  uint64_t E = 0; ///< Public exponent.
  uint64_t D = 0; ///< Private exponent (the secret of the case study).

  /// Number of significant bits in D (the square-and-multiply trip count).
  unsigned privateExponentBits() const;
};

/// Generates a key pair whose modulus has roughly \p ModulusBits bits
/// (clamped to [16, 61]). Primes are sampled deterministically from \p R.
RsaKey generateRsaKey(Rng &R, unsigned ModulusBits = 61);

/// Encrypts/decrypts one block (block values must be < N).
uint64_t rsaEncryptBlock(const RsaKey &Key, uint64_t Plain);
uint64_t rsaDecryptBlock(const RsaKey &Key, uint64_t Cipher);

/// Splits a byte message into sub-modulus blocks and encrypts them.
std::vector<uint64_t> rsaEncryptMessage(const RsaKey &Key,
                                        const std::vector<uint8_t> &Message);

/// Decrypts a block sequence (C++ reference; the experiment decrypts in the
/// object language and validates against this).
std::vector<uint64_t> rsaDecryptBlocks(const RsaKey &Key,
                                       const std::vector<uint64_t> &Blocks);

} // namespace zam

#endif // ZAM_CRYPTO_TOYRSA_H
