//===- ModMath.cpp --------------------------------------------------------===//

#include "crypto/ModMath.h"

#include <initializer_list>

using namespace zam;

uint64_t zam::mulmod(uint64_t A, uint64_t B, uint64_t M) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(A) * B) % M);
}

uint64_t zam::powmod(uint64_t Base, uint64_t Exp, uint64_t M) {
  if (M == 1)
    return 0;
  uint64_t Result = 1;
  Base %= M;
  while (Exp != 0) {
    if (Exp & 1)
      Result = mulmod(Result, Base, M);
    Base = mulmod(Base, Base, M);
    Exp >>= 1;
  }
  return Result;
}

uint64_t zam::invmod(uint64_t A, uint64_t M) {
  // Extended Euclid over signed 128-bit accumulators.
  __int128 T = 0, NewT = 1;
  __int128 R = M, NewR = A % M;
  while (NewR != 0) {
    __int128 Q = R / NewR;
    __int128 Tmp = T - Q * NewT;
    T = NewT;
    NewT = Tmp;
    Tmp = R - Q * NewR;
    R = NewR;
    NewR = Tmp;
  }
  if (R != 1)
    return 0; // Not invertible.
  if (T < 0)
    T += M;
  return static_cast<uint64_t>(T);
}

bool zam::isPrime(uint64_t N) {
  if (N < 2)
    return false;
  for (uint64_t P : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    if (N % P == 0)
      return N == P;
  }
  uint64_t D = N - 1;
  unsigned S = 0;
  while ((D & 1) == 0) {
    D >>= 1;
    ++S;
  }
  // This witness set is deterministic for all 64-bit integers.
  for (uint64_t A : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    uint64_t X = powmod(A % N, D, N);
    if (X == 1 || X == N - 1)
      continue;
    bool Composite = true;
    for (unsigned I = 1; I < S; ++I) {
      X = mulmod(X, X, N);
      if (X == N - 1) {
        Composite = false;
        break;
      }
    }
    if (Composite)
      return false;
  }
  return true;
}
