//===- Md5.h - MD5 message digest (RFC 1321) --------------------*- C++ -*-===//
//
// Part of the zam project: a reproduction of "Language-Based Control and
// Mitigation of Timing Channels" (Zhang, Askarov, Myers; PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch MD5 implementation. The Sec. 8.3 web-login case study
/// stores MD5 digests of valid usernames and passwords in its hashmap; this
/// module generates that workload data. It is a substrate for reproducing
/// the paper's experiments, not audited cryptography.
///
//===----------------------------------------------------------------------===//

#ifndef ZAM_CRYPTO_MD5_H
#define ZAM_CRYPTO_MD5_H

#include <array>
#include <cstdint>
#include <string>

namespace zam {

/// A 128-bit MD5 digest.
struct Md5Digest {
  std::array<uint8_t, 16> Bytes{};

  /// Lowercase hex rendering (32 characters).
  std::string hex() const;

  /// The first 8 bytes as a little-endian 64-bit word — the compact digest
  /// the case-study programs store in object-language arrays.
  int64_t low64() const;

  /// 64-bit word \p Index (0 or 1) of the digest, little-endian.
  int64_t word(unsigned Index) const;

  bool operator==(const Md5Digest &Other) const = default;
};

/// Computes MD5 over \p Data (\p Len bytes).
Md5Digest md5(const void *Data, size_t Len);

/// Computes MD5 over a string.
Md5Digest md5(const std::string &Text);

} // namespace zam

#endif // ZAM_CRYPTO_MD5_H
