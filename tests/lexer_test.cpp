//===- lexer_test.cpp - Tokenizer tests ------------------------------------===//

#include "lang/Lexer.h"

#include "gtest/gtest.h"

using namespace zam;

static std::vector<Token> lex(const std::string &Source,
                              DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

static std::vector<TokKind> kinds(const std::string &Source) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks = lex(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  std::vector<TokKind> Out;
  for (const Token &T : Toks)
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("skip if then else while do mitigate sleep var"),
            (std::vector<TokKind>{TokKind::KwSkip, TokKind::KwIf,
                                  TokKind::KwThen, TokKind::KwElse,
                                  TokKind::KwWhile, TokKind::KwDo,
                                  TokKind::KwMitigate, TokKind::KwSleep,
                                  TokKind::KwVar, TokKind::Eof}));
}

TEST(Lexer, IdentifiersAndLiterals) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks = lex("foo _bar x1 42 0x2a", Diags);
  ASSERT_EQ(Toks.size(), 6u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[0].Text, "foo");
  EXPECT_EQ(Toks[1].Text, "_bar");
  EXPECT_EQ(Toks[2].Text, "x1");
  EXPECT_EQ(Toks[3].Kind, TokKind::IntLit);
  EXPECT_EQ(Toks[3].IntValue, 42);
  EXPECT_EQ(Toks[4].Kind, TokKind::IntLit);
  EXPECT_EQ(Toks[4].IntValue, 42);
}

TEST(Lexer, OperatorsMaximalMunch) {
  EXPECT_EQ(kinds(":= == = != <= < << >= > >> && & || | ^ ! ~"),
            (std::vector<TokKind>{
                TokKind::Assign, TokKind::EqEq, TokKind::EqAssign,
                TokKind::NotEq, TokKind::LessEq, TokKind::Less, TokKind::Shl,
                TokKind::GreaterEq, TokKind::Greater, TokKind::Shr,
                TokKind::AmpAmp, TokKind::Amp, TokKind::PipePipe,
                TokKind::Pipe, TokKind::Caret, TokKind::Bang, TokKind::Tilde,
                TokKind::Eof}));
}

TEST(Lexer, AnnotationMarker) {
  EXPECT_EQ(kinds("@[L,H]"),
            (std::vector<TokKind>{TokKind::AtBracket, TokKind::Ident,
                                  TokKind::Comma, TokKind::Ident,
                                  TokKind::RBracket, TokKind::Eof}));
}

TEST(Lexer, BracketsAreDistinctFromAnnotation) {
  EXPECT_EQ(kinds("a[1]"),
            (std::vector<TokKind>{TokKind::Ident, TokKind::LBracket,
                                  TokKind::IntLit, TokKind::RBracket,
                                  TokKind::Eof}));
}

TEST(Lexer, LineComments) {
  EXPECT_EQ(kinds("x // the rest is ignored\ny"),
            (std::vector<TokKind>{TokKind::Ident, TokKind::Ident,
                                  TokKind::Eof}));
}

TEST(Lexer, BlockComments) {
  EXPECT_EQ(kinds("x /* multi\nline */ y"),
            (std::vector<TokKind>{TokKind::Ident, TokKind::Ident,
                                  TokKind::Eof}));
}

TEST(Lexer, UnterminatedBlockCommentIsAnError) {
  DiagnosticEngine Diags;
  lex("x /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnexpectedCharacterIsReportedAndSkipped) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks = lex("x $ y", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Toks.size(), 3u); // x, y, eof — '$' skipped.
  EXPECT_EQ(Toks[1].Text, "y");
}

TEST(Lexer, BareAtIsAnError) {
  DiagnosticEngine Diags;
  lex("x @ y", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks = lex("x\n  y", Diags);
  ASSERT_GE(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Col, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(Lexer, EmptyInputYieldsEof) {
  DiagnosticEngine Diags;
  std::vector<Token> Toks = lex("", Diags);
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_EQ(Toks[0].Kind, TokKind::Eof);
}
