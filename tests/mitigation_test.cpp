//===- mitigation_test.cpp - Predictive mitigation (Sec. 7, Fig. 6) --------===//

#include "sem/Mitigation.h"

#include "hw/HardwareModels.h"
#include "sem/FullInterpreter.h"
#include "types/LabelInference.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <cmath>
#include <set>

using namespace zam;
using namespace zam::test;

TEST(FastDoubling, Schedule) {
  FastDoublingScheme S;
  EXPECT_EQ(S.predict(10, 0), 10u);
  EXPECT_EQ(S.predict(10, 1), 20u);
  EXPECT_EQ(S.predict(10, 5), 320u);
  // predict(n,ℓ) = max(n,1)·2^Miss: a zero estimate behaves as 1.
  EXPECT_EQ(S.predict(0, 3), 8u);
}

TEST(FastDoubling, ShiftIsCapped) {
  FastDoublingScheme S;
  EXPECT_EQ(S.predict(1, 40), 1ull << 40);
  EXPECT_EQ(S.predict(1, 100), 1ull << 40); // No overflow.
}

TEST(LinearScheme, Schedule) {
  LinearScheme S;
  EXPECT_EQ(S.predict(10, 0), 10u);
  EXPECT_EQ(S.predict(10, 3), 40u);
}

TEST(MitigationState, NoMispredictionLeavesMissUntouched) {
  MitigationState St(lh(), fastDoublingScheme(), PenaltyPolicy::PerLevel);
  auto Out = St.settle(100, high(), 60);
  EXPECT_FALSE(Out.Mispredicted);
  EXPECT_EQ(Out.Duration, 100u);
  EXPECT_EQ(St.misses(high()), 0u);
}

TEST(MitigationState, MispredictionDoublesUntilCovered) {
  MitigationState St(lh(), fastDoublingScheme(), PenaltyPolicy::PerLevel);
  // Elapsed 900 with estimate 100: 100→200→400→800→1600.
  auto Out = St.settle(100, high(), 900);
  EXPECT_TRUE(Out.Mispredicted);
  EXPECT_EQ(Out.Duration, 1600u);
  EXPECT_EQ(St.misses(high()), 4u);
}

TEST(MitigationState, ExactBoundaryCountsAsMiss) {
  // Fig. 6 loop condition: while (elapsed >= predict) Miss++.
  MitigationState St(lh(), fastDoublingScheme(), PenaltyPolicy::PerLevel);
  auto Out = St.settle(100, high(), 100);
  EXPECT_TRUE(Out.Mispredicted);
  EXPECT_EQ(Out.Duration, 200u);
}

TEST(MitigationState, PerLevelPolicyIsolatesLevels) {
  const TotalOrderLattice &Lat = lmh();
  Label M = *Lat.byName("M"), H = *Lat.byName("H");
  MitigationState St(Lat, fastDoublingScheme(), PenaltyPolicy::PerLevel);
  St.settle(10, H, 500);
  EXPECT_GT(St.misses(H), 0u);
  EXPECT_EQ(St.misses(M), 0u); // Local penalty policy: no cross-charging.
  EXPECT_EQ(St.predict(10, M), 10u);
}

TEST(MitigationState, GlobalPolicySharesPenalty) {
  const TotalOrderLattice &Lat = lmh();
  Label M = *Lat.byName("M"), H = *Lat.byName("H");
  MitigationState St(Lat, fastDoublingScheme(), PenaltyPolicy::Global);
  St.settle(10, H, 500);
  EXPECT_EQ(St.misses(M), St.misses(H)); // One shared counter.
  EXPECT_GT(St.predict(10, M), 10u);
}

TEST(MitigationState, ResetClearsMisses) {
  MitigationState St(lh(), fastDoublingScheme(), PenaltyPolicy::PerLevel);
  St.settle(1, high(), 1000);
  St.reset();
  EXPECT_EQ(St.misses(high()), 0u);
  EXPECT_EQ(St.predict(1, high()), 1u);
}

TEST(MitigationState, DurationAlwaysExceedsElapsed) {
  MitigationState St(lh(), fastDoublingScheme(), PenaltyPolicy::PerLevel);
  Rng R(9);
  for (int I = 0; I != 200; ++I) {
    uint64_t Elapsed = R.nextBelow(1 << 20);
    int64_t Estimate = static_cast<int64_t>(R.nextBelow(1 << 10));
    auto Out = St.settle(Estimate, high(), Elapsed);
    EXPECT_GT(Out.Duration, Elapsed);
  }
}

//===----------------------------------------------------------------------===//
// End-to-end: mitigated durations are schedule-valued
//===----------------------------------------------------------------------===//

TEST(Mitigation, PaddedDurationsComeFromTheSchedule) {
  // Run sleep(h) under mitigate(1,H) for many h; the mitigate duration must
  // always be a power of two (the fast-doubling schedule with estimate 1),
  // exactly the "powers of 2" behavior described in Sec. 2.3.
  for (int64_t H : {0, 1, 3, 10, 100, 500, 1000}) {
    Program P = parseOrDie("var h : H = " + std::to_string(H) + ";\n"
                           "mitigate (1, H) { sleep(h) @[H,H] }");
    inferTimingLabels(P);
    auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
    RunResult R = runFull(P, *Env);
    ASSERT_EQ(R.T.Mitigations.size(), 1u);
    uint64_t D = R.T.Mitigations[0].Duration;
    EXPECT_EQ(D & (D - 1), 0u) << "duration " << D << " for h=" << H;
    EXPECT_GT(D, static_cast<uint64_t>(H));
  }
}

TEST(Mitigation, DistinctDurationsAreLogarithmicInRange) {
  // Over secrets in [0, 1000], the number of distinct mitigated durations
  // is at most log2(max duration) + 1 — the quantitative heart of the
  // leakage bound.
  std::set<uint64_t> Durations;
  uint64_t MaxDuration = 0;
  for (int64_t H = 0; H <= 1000; H += 13) {
    Program P = parseOrDie("var h : H = " + std::to_string(H) + ";\n"
                           "mitigate (1, H) { sleep(h) @[H,H] }");
    inferTimingLabels(P);
    auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
    RunResult R = runFull(P, *Env);
    Durations.insert(R.T.Mitigations[0].Duration);
    MaxDuration = std::max(MaxDuration, R.T.Mitigations[0].Duration);
  }
  double Bound = std::log2(static_cast<double>(MaxDuration)) + 1;
  EXPECT_LE(Durations.size(), static_cast<size_t>(Bound));
}

TEST(Mitigation, EstimateExpressionIsEvaluated) {
  Program P = parseOrDie("var n : L = 512;\nvar h : H = 3;\n"
                         "mitigate (n * 2, H) { sleep(h) @[H,H] }");
  inferTimingLabels(P);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  RunResult R = runFull(P, *Env);
  EXPECT_EQ(R.T.Mitigations[0].Duration, 1024u);
}

TEST(Mitigation, LinearSchemeProducesLinearPadding) {
  Program P = parseOrDie("var h : H = 350;\n"
                         "mitigate (100, H) { sleep(h) @[H,H] }");
  inferTimingLabels(P);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  InterpreterOptions Opts;
  Opts.Scheme = &linearScheme();
  RunResult R = runFull(P, *Env, Opts);
  // Body takes ≥350; linear schedule 100,200,300,400,...
  EXPECT_EQ(R.T.Mitigations[0].Duration % 100, 0u);
  EXPECT_TRUE(R.T.Mitigations[0].Mispredicted);
}

TEST(Mitigation, WellPredictedBlockAddsOnlySlack) {
  // With an accurate initial estimate, the mitigated time is the estimate
  // itself: mitigation costs only the gap between estimate and actual.
  // The body is sleep(h)=100 plus the cold-cache cost of reading h
  // (~137 cycles); an estimate of 400 covers it.
  Program P = parseOrDie("var h : H = 100;\n"
                         "mitigate (400, H) { sleep(h) @[H,H] }");
  inferTimingLabels(P);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  RunResult R = runFull(P, *Env);
  EXPECT_FALSE(R.T.Mitigations[0].Mispredicted);
  EXPECT_EQ(R.T.Mitigations[0].Duration, 400u);
}
