//===- mitigation_test.cpp - Predictive mitigation (Sec. 7, Fig. 6) --------===//

#include "sem/Mitigation.h"

#include "hw/HardwareModels.h"
#include "obs/LeakAudit.h"
#include "sem/FullInterpreter.h"
#include "types/LabelInference.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <cmath>
#include <set>

using namespace zam;
using namespace zam::test;

TEST(FastDoubling, Schedule) {
  FastDoublingPolicy S;
  EXPECT_EQ(S.predict(10, 0), 10u);
  EXPECT_EQ(S.predict(10, 1), 20u);
  EXPECT_EQ(S.predict(10, 5), 320u);
  // predict(n,ℓ) = max(n,1)·2^Miss: a zero estimate behaves as 1.
  EXPECT_EQ(S.predict(0, 3), 8u);
}

TEST(FastDoubling, ShiftIsCapped) {
  FastDoublingPolicy S;
  EXPECT_EQ(S.predict(1, 40), 1ull << 40);
  EXPECT_EQ(S.predict(1, 100), 1ull << 40); // No overflow.
}

TEST(LinearPolicy, Schedule) {
  LinearPolicy S;
  EXPECT_EQ(S.predict(10, 0), 10u);
  EXPECT_EQ(S.predict(10, 3), 40u);
}

TEST(LinearPolicy, PredictSaturatesInsteadOfWrapping) {
  // Regression: max(n,1)·(k+1) used to wrap uint64_t for huge estimates or
  // miss counts, producing a *smaller* (schedule-violating) prediction.
  LinearPolicy S;
  const uint64_t Huge = uint64_t(1) << 60;
  EXPECT_EQ(S.predict(Huge, 1000), MitigationPolicy::kPredictionCap);
  EXPECT_EQ(S.predict(uint64_t(1) << 40, 0xFFFFFFFFu),
            MitigationPolicy::kPredictionCap);
  // Below the cap the product is exact even for huge miss counts.
  EXPECT_EQ(S.predict(3, 0xFFFFFFFFu), 3 * (uint64_t(0xFFFFFFFF) + 1));
  // Monotone non-decreasing across the saturation boundary.
  uint64_t Prev = 0;
  for (unsigned K = 0; K < 80; ++K) {
    uint64_t V = S.predict(Huge / 8, K);
    EXPECT_GE(V, Prev) << "k=" << K;
    Prev = V;
  }
}

TEST(FastDoubling, PredictSaturatesForHugeEstimates) {
  FastDoublingPolicy S;
  // Base ≥ cap >> shift would have shifted into the sign bit and wrapped.
  const uint64_t Huge = uint64_t(1) << 60;
  EXPECT_EQ(S.predict(Huge, 40), MitigationPolicy::kPredictionCap);
  EXPECT_EQ(S.predict(Huge, 100), MitigationPolicy::kPredictionCap);
}

TEST(BucketedPolicy, InterpolatesBetweenOctaves) {
  // q=4: predict walks 100, 125, 150, 175, 200, 250, ... — a factor
  // (1+1/q) per miss instead of 2.
  BucketedPolicy S(4);
  EXPECT_EQ(S.predict(100, 0), 100u);
  EXPECT_EQ(S.predict(100, 1), 125u);
  EXPECT_EQ(S.predict(100, 2), 150u);
  EXPECT_EQ(S.predict(100, 3), 175u);
  EXPECT_EQ(S.predict(100, 4), 200u);
  EXPECT_EQ(S.predict(100, 5), 250u);
}

TEST(BucketedPolicy, QuantumOneIsFastDoubling) {
  BucketedPolicy B(1);
  FastDoublingPolicy D;
  for (unsigned K = 0; K != 50; ++K) {
    EXPECT_EQ(B.predict(7, K), D.predict(7, K)) << "k=" << K;
    EXPECT_EQ(B.attainableValues(7, 1 << 20), D.attainableValues(7, 1 << 20));
  }
}

TEST(BucketedPolicy, PredictSaturatesInsteadOfWrapping) {
  BucketedPolicy S(8);
  const uint64_t Huge = uint64_t(1) << 61;
  EXPECT_EQ(S.predict(Huge, 4000), MitigationPolicy::kPredictionCap);
  uint64_t Prev = 0;
  for (unsigned K = 0; K < 400; ++K) {
    uint64_t V = S.predict(Huge / 4, K);
    EXPECT_GE(V, Prev) << "k=" << K;
    Prev = V;
  }
}

TEST(SeededPolicy, FloorsTheEstimate) {
  SeededPolicy S(1000);
  EXPECT_EQ(S.predict(10, 0), 1000u);   // Floored.
  EXPECT_EQ(S.predict(4000, 0), 4000u); // Estimate already above the floor.
  EXPECT_EQ(S.predict(10, 2), 4000u);   // Doubling from the floor.
}

//===----------------------------------------------------------------------===//
// Policy-owned accounting: attainableValues counts the policy's own ladder
//===----------------------------------------------------------------------===//

TEST(PolicyAccounting, AttainableCountsMatchBruteForce) {
  // For each registered policy shape, N(T) must equal the number of
  // *distinct* schedule values predict(n, k) ≤ T — the set the Sec. 6
  // argument counts. predict is monotone non-decreasing in k for every
  // policy, so walking k and counting value changes enumerates the ladder.
  FastDoublingPolicy Doubling;
  LinearPolicy Linear;
  BucketedPolicy Bucketed3(3);
  BucketedPolicy Bucketed7(7);
  SeededPolicy Seeded(64);
  const MitigationPolicy *Policies[] = {&Doubling, &Linear, &Bucketed3,
                                        &Bucketed7, &Seeded};
  for (const MitigationPolicy *P : Policies) {
    for (int64_t Est : {0, 1, 5, 64, 1000}) {
      for (uint64_t T :
           {0ull, 1ull, 5ull, 63ull, 64ull, 65ull, 1000ull, 100000ull}) {
        uint64_t Count = 0, Prev = 0;
        for (unsigned K = 0;; ++K) {
          uint64_t V =
              P->predict(Est > 0 ? static_cast<uint64_t>(Est) : 1, K);
          if (V > T)
            break; // Monotone: no later value can re-enter [0, T].
          if (Count == 0 || V != Prev)
            ++Count;
          Prev = V;
        }
        uint64_t Want = std::max<uint64_t>(Count, 1);
        EXPECT_EQ(P->attainableValues(Est, T), Want)
            << P->spec() << " est=" << Est << " T=" << T;
      }
    }
  }
}

TEST(PolicyAccounting, WindowBitsAreLogOfAttainable) {
  BucketedPolicy S(4);
  EXPECT_DOUBLE_EQ(S.windowBoundBits(100, 100000),
                   std::log2(static_cast<double>(
                       S.attainableValues(100, 100000))));
}

TEST(PolicyAccounting, ClosedFormDefaultsMatchPaperBound) {
  // Fast-doubling's closed form must reproduce the free-function bound
  // bit for bit (the analysis layer depends on this equivalence).
  FastDoublingPolicy S;
  for (uint64_t K : {0ull, 1ull, 7ull, 100ull})
    for (uint64_t T : {0ull, 1ull, 1000ull, 123456789ull})
      EXPECT_EQ(S.closedFormBoundBits(3, K, T), leakageBoundBits(3, K, T));
  // Linear admits more values per window, so its summary bound dominates
  // doubling's for any nontrivial horizon.
  LinearPolicy L;
  EXPECT_GT(L.closedFormBoundBits(3, 7, 100000),
            S.closedFormBoundBits(3, 7, 100000));
}

//===----------------------------------------------------------------------===//
// Registry, parsing, and per-site selection
//===----------------------------------------------------------------------===//

TEST(PolicyRegistry, ParsesEveryRegisteredSpec) {
  for (const MitigationPolicyInfo &Info : mitigationPolicyRegistry()) {
    std::string Spec = Info.ParamSyntax;
    // Instantiate the syntax with a concrete parameter value.
    size_t Lt = Spec.find('<');
    if (Lt != std::string::npos)
      Spec = Spec.substr(0, Lt) + "8";
    std::string Err;
    MitigationPolicyPtr P = parseMitigationPolicy(Spec, &Err);
    ASSERT_NE(P, nullptr) << Spec << ": " << Err;
    EXPECT_EQ(P->name(), std::string(Info.Name));
    // The canonical spec round-trips.
    MitigationPolicyPtr Q = parseMitigationPolicy(P->spec(), &Err);
    ASSERT_NE(Q, nullptr);
    EXPECT_EQ(Q->spec(), P->spec());
  }
}

TEST(PolicyRegistry, RejectsMalformedSpecs) {
  std::string Err;
  EXPECT_EQ(parseMitigationPolicy("quadratic", &Err), nullptr);
  EXPECT_NE(Err.find("unknown"), std::string::npos);
  EXPECT_EQ(parseMitigationPolicy("bucketed:q=0", &Err), nullptr);
  EXPECT_EQ(parseMitigationPolicy("bucketed:q=nope", &Err), nullptr);
  EXPECT_EQ(parseMitigationPolicy("seeded", &Err), nullptr);
  EXPECT_EQ(parseMitigationPolicy("seeded:est=0", &Err), nullptr);
  EXPECT_EQ(parseMitigationPolicy("fast-doubling:q=2", &Err), nullptr);
}

TEST(PolicySelection, PerSiteOverridesResolveByEta) {
  PolicySelection Sel;
  EXPECT_TRUE(Sel.isDefaultOnly());
  EXPECT_EQ(&Sel.forSite(3), &fastDoublingPolicy());
  Sel.overrideSite(3, linearPolicy());
  EXPECT_FALSE(Sel.isDefaultOnly());
  EXPECT_EQ(&Sel.forSite(3), &linearPolicy());
  EXPECT_EQ(&Sel.forSite(0), &fastDoublingPolicy());
  Sel.overrideSite(3, fastDoublingPolicy()); // Replace, not duplicate.
  EXPECT_EQ(Sel.PerSite.size(), 1u);
}

TEST(MitigationState, NoMispredictionLeavesMissUntouched) {
  MitigationState St(lh(), fastDoublingPolicy(), PenaltyPolicy::PerLevel);
  auto Out = St.settle(100, high(), 60);
  EXPECT_FALSE(Out.Mispredicted);
  EXPECT_EQ(Out.Duration, 100u);
  EXPECT_EQ(St.misses(high()), 0u);
}

TEST(MitigationState, MispredictionDoublesUntilCovered) {
  MitigationState St(lh(), fastDoublingPolicy(), PenaltyPolicy::PerLevel);
  // Elapsed 900 with estimate 100: 100→200→400→800→1600.
  auto Out = St.settle(100, high(), 900);
  EXPECT_TRUE(Out.Mispredicted);
  EXPECT_EQ(Out.Duration, 1600u);
  EXPECT_EQ(St.misses(high()), 4u);
}

TEST(MitigationState, ExactBoundaryCountsAsMiss) {
  // Fig. 6 loop condition: while (elapsed >= predict) Miss++.
  MitigationState St(lh(), fastDoublingPolicy(), PenaltyPolicy::PerLevel);
  auto Out = St.settle(100, high(), 100);
  EXPECT_TRUE(Out.Mispredicted);
  EXPECT_EQ(Out.Duration, 200u);
}

TEST(MitigationState, PerLevelPolicyIsolatesLevels) {
  const TotalOrderLattice &Lat = lmh();
  Label M = *Lat.byName("M"), H = *Lat.byName("H");
  MitigationState St(Lat, fastDoublingPolicy(), PenaltyPolicy::PerLevel);
  St.settle(10, H, 500);
  EXPECT_GT(St.misses(H), 0u);
  EXPECT_EQ(St.misses(M), 0u); // Local penalty policy: no cross-charging.
  EXPECT_EQ(St.predict(10, M), 10u);
}

TEST(MitigationState, GlobalPolicySharesPenalty) {
  const TotalOrderLattice &Lat = lmh();
  Label M = *Lat.byName("M"), H = *Lat.byName("H");
  MitigationState St(Lat, fastDoublingPolicy(), PenaltyPolicy::Global);
  St.settle(10, H, 500);
  EXPECT_EQ(St.misses(M), St.misses(H)); // One shared counter.
  EXPECT_GT(St.predict(10, M), 10u);
}

TEST(MitigationState, ResetClearsMisses) {
  MitigationState St(lh(), fastDoublingPolicy(), PenaltyPolicy::PerLevel);
  St.settle(1, high(), 1000);
  St.reset();
  EXPECT_EQ(St.misses(high()), 0u);
  EXPECT_EQ(St.predict(1, high()), 1u);
}

TEST(MitigationState, DurationAlwaysExceedsElapsed) {
  MitigationState St(lh(), fastDoublingPolicy(), PenaltyPolicy::PerLevel);
  Rng R(9);
  for (int I = 0; I != 200; ++I) {
    uint64_t Elapsed = R.nextBelow(1 << 20);
    int64_t Estimate = static_cast<int64_t>(R.nextBelow(1 << 10));
    auto Out = St.settle(Estimate, high(), Elapsed);
    EXPECT_GT(Out.Duration, Elapsed);
  }
}

//===----------------------------------------------------------------------===//
// End-to-end: mitigated durations are schedule-valued
//===----------------------------------------------------------------------===//

TEST(Mitigation, PaddedDurationsComeFromTheSchedule) {
  // Run sleep(h) under mitigate(1,H) for many h; the mitigate duration must
  // always be a power of two (the fast-doubling schedule with estimate 1),
  // exactly the "powers of 2" behavior described in Sec. 2.3.
  for (int64_t H : {0, 1, 3, 10, 100, 500, 1000}) {
    Program P = parseOrDie("var h : H = " + std::to_string(H) + ";\n"
                           "mitigate (1, H) { sleep(h) @[H,H] }");
    inferTimingLabels(P);
    auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
    RunResult R = runFull(P, *Env);
    ASSERT_EQ(R.T.Mitigations.size(), 1u);
    uint64_t D = R.T.Mitigations[0].Duration;
    EXPECT_EQ(D & (D - 1), 0u) << "duration " << D << " for h=" << H;
    EXPECT_GT(D, static_cast<uint64_t>(H));
  }
}

TEST(Mitigation, DistinctDurationsAreLogarithmicInRange) {
  // Over secrets in [0, 1000], the number of distinct mitigated durations
  // is at most log2(max duration) + 1 — the quantitative heart of the
  // leakage bound.
  std::set<uint64_t> Durations;
  uint64_t MaxDuration = 0;
  for (int64_t H = 0; H <= 1000; H += 13) {
    Program P = parseOrDie("var h : H = " + std::to_string(H) + ";\n"
                           "mitigate (1, H) { sleep(h) @[H,H] }");
    inferTimingLabels(P);
    auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
    RunResult R = runFull(P, *Env);
    Durations.insert(R.T.Mitigations[0].Duration);
    MaxDuration = std::max(MaxDuration, R.T.Mitigations[0].Duration);
  }
  double Bound = std::log2(static_cast<double>(MaxDuration)) + 1;
  EXPECT_LE(Durations.size(), static_cast<size_t>(Bound));
}

TEST(Mitigation, EstimateExpressionIsEvaluated) {
  Program P = parseOrDie("var n : L = 512;\nvar h : H = 3;\n"
                         "mitigate (n * 2, H) { sleep(h) @[H,H] }");
  inferTimingLabels(P);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  RunResult R = runFull(P, *Env);
  EXPECT_EQ(R.T.Mitigations[0].Duration, 1024u);
}

TEST(Mitigation, LinearSchemeProducesLinearPadding) {
  Program P = parseOrDie("var h : H = 350;\n"
                         "mitigate (100, H) { sleep(h) @[H,H] }");
  inferTimingLabels(P);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  InterpreterOptions Opts;
  Opts.Mitigation.Default = &linearPolicy();
  RunResult R = runFull(P, *Env, Opts);
  // Body takes ≥350; linear schedule 100,200,300,400,...
  EXPECT_EQ(R.T.Mitigations[0].Duration % 100, 0u);
  EXPECT_TRUE(R.T.Mitigations[0].Mispredicted);
}

TEST(Mitigation, WellPredictedBlockAddsOnlySlack) {
  // With an accurate initial estimate, the mitigated time is the estimate
  // itself: mitigation costs only the gap between estimate and actual.
  // The body is sleep(h)=100 plus the cold-cache cost of reading h
  // (~137 cycles); an estimate of 400 covers it.
  Program P = parseOrDie("var h : H = 100;\n"
                         "mitigate (400, H) { sleep(h) @[H,H] }");
  inferTimingLabels(P);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  RunResult R = runFull(P, *Env);
  EXPECT_FALSE(R.T.Mitigations[0].Mispredicted);
  EXPECT_EQ(R.T.Mitigations[0].Duration, 400u);
}
