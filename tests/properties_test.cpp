//===- properties_test.cpp - Properties 1-7 of the contract ----------------===//
//
// Property-based validation of the software/hardware contract (Sec. 3.5 and
// 3.6) for every hardware design, driven by random labeled commands,
// memories, and machine-environment states. The commodity design
// (NoPartition) is asserted to VIOLATE the security properties — that
// violation is the attack surface the paper's designs close.
//
//===----------------------------------------------------------------------===//

#include "analysis/PropertyCheckers.h"
#include "analysis/RandomProgram.h"
#include "hw/HardwareModels.h"
#include "lang/ProgramBuilder.h"
#include "sem/StepInterpreter.h"
#include "types/LabelInference.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace zam;
using namespace zam::test;

namespace {
/// A program supplying declarations for random commands.
Program declsOnly(const SecurityLattice &Lat, Rng &R,
                  const RandomProgramOptions &O) {
  Program P(Lat);
  addRandomDeclarations(P, R, O);
  P.setBody(std::make_unique<SkipCmd>());
  P.number();
  return P;
}

Memory randomMemory(const Program &P, Rng &R) {
  Memory M = Memory::fromProgram(P, CostModel().DataBase);
  randomizeMemoryValues(M, R);
  return M;
}
} // namespace

//===----------------------------------------------------------------------===//
// Faithfulness properties (1-4): all designs
//===----------------------------------------------------------------------===//

class Faithfulness : public ::testing::TestWithParam<HwKind> {};

TEST_P(Faithfulness, Property1AdequacyOnRandomPrograms) {
  Rng R(101 + static_cast<uint64_t>(GetParam()));
  auto Env = createMachineEnv(GetParam(), lh(), MachineEnvConfig());
  unsigned Checked = 0;
  for (unsigned Trial = 0; Trial != 40 && Checked < 10; ++Trial) {
    std::optional<Program> P = randomWellTypedProgram(lh(), R);
    if (!P)
      continue;
    ++Checked;
    PropertyReport Rep = checkAdequacy(*P, *Env);
    EXPECT_TRUE(Rep.Holds) << Rep.Detail;
  }
  EXPECT_GE(Checked, 5u);
}

TEST_P(Faithfulness, Property2DeterminismOnRandomPrograms) {
  Rng R(202 + static_cast<uint64_t>(GetParam()));
  auto Env = createMachineEnv(GetParam(), lh(), MachineEnvConfig());
  Env->randomize(R); // Determinism must hold from any starting state.
  unsigned Checked = 0;
  for (unsigned Trial = 0; Trial != 40 && Checked < 10; ++Trial) {
    std::optional<Program> P = randomWellTypedProgram(lh(), R);
    if (!P)
      continue;
    ++Checked;
    PropertyReport Rep = checkDeterminism(*P, *Env);
    EXPECT_TRUE(Rep.Holds) << Rep.Detail;
  }
  EXPECT_GE(Checked, 5u);
}

TEST_P(Faithfulness, Property3SequentialComposition) {
  Rng R(303 + static_cast<uint64_t>(GetParam()));
  RandomProgramOptions O;
  O.MaxDepth = 3;
  Program Decls = declsOnly(lh(), R, O);
  auto Env = createMachineEnv(GetParam(), lh(), MachineEnvConfig());
  for (unsigned Trial = 0; Trial != 15; ++Trial) {
    CmdPtr C1 = randomCommand(Decls, R, O);
    CmdPtr C2 = randomCommand(Decls, R, O);
    Memory M = randomMemory(Decls, R);
    auto EnvT = Env->clone();
    EnvT->randomize(R);
    PropertyReport Rep =
        checkSequentialComposition(Decls, *C1, *C2, M, *EnvT);
    EXPECT_TRUE(Rep.Holds) << Rep.Detail;
  }
}

TEST_P(Faithfulness, Property4SleepDuration) {
  Rng R(404);
  RandomProgramOptions O;
  Program Decls = declsOnly(lh(), R, O);
  auto Env = createMachineEnv(GetParam(), lh(), MachineEnvConfig());
  Env->randomize(R);
  for (int64_t N : {-10ll, -1ll, 0ll, 1ll, 7ll, 1000ll, 1000000ll})
    for (Label Read : lh().allLabels())
      for (Label Write : lh().allLabels()) {
        PropertyReport Rep = checkSleepDuration(Decls, N, Read, Write, *Env);
        EXPECT_TRUE(Rep.Holds) << Rep.Detail;
      }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, Faithfulness,
                         ::testing::ValuesIn(allHwKinds()),
                         [](const auto &Info) {
                           return std::string(hwKindName(Info.param));
                         });

//===----------------------------------------------------------------------===//
// Security properties (5-7): the secure designs
//===----------------------------------------------------------------------===//

namespace {
struct SecurityCase {
  HwKind Kind;
  const SecurityLattice *Lat;
  const char *Name;
};

std::vector<SecurityCase> securityCases() {
  return {
      {HwKind::NoFill, &lh(), "nofill_2level"},
      {HwKind::Partitioned, &lh(), "partitioned_2level"},
      {HwKind::Partitioned, &lmh(), "partitioned_3level"},
      {HwKind::NoFill, &lmh(), "nofill_3level"},
  };
}
} // namespace

class SecurityProperties : public ::testing::TestWithParam<SecurityCase> {};

TEST_P(SecurityProperties, Property5WriteLabel) {
  const SecurityCase &Case = GetParam();
  Rng R(505);
  RandomProgramOptions O;
  O.MaxDepth = 2;
  O.EqualTimingLabels = false; // Exercise er ≠ ew too.
  Program Decls = declsOnly(*Case.Lat, R, O);
  auto Env = createMachineEnv(Case.Kind, *Case.Lat, MachineEnvConfig());
  for (unsigned Trial = 0; Trial != 120; ++Trial) {
    CmdPtr C = randomCommand(Decls, R, O);
    Memory M = randomMemory(Decls, R);
    auto EnvT = Env->clone();
    EnvT->randomize(R);
    PropertyReport Rep = checkWriteLabel(Decls, *C, M, *EnvT);
    EXPECT_TRUE(Rep.Holds) << Rep.Detail;
  }
}

TEST_P(SecurityProperties, Property6ReadLabel) {
  const SecurityCase &Case = GetParam();
  Rng R(606);
  RandomProgramOptions O;
  O.MaxDepth = 2;
  Program Decls = declsOnly(*Case.Lat, R, O);
  auto Env = createMachineEnv(Case.Kind, *Case.Lat, MachineEnvConfig());
  unsigned Checked = 0;
  for (unsigned Trial = 0; Trial != 120; ++Trial) {
    CmdPtr C = randomCommand(Decls, R, O);
    Label Er = *activeCommand(*C).labels().Read;
    // Premise: memories agree on vars1(C); everything else may differ.
    Memory M1 = randomMemory(Decls, R);
    Memory M2 = randomMemory(Decls, R);
    for (const std::string &V : vars1(*C))
      M2.slot(V).Data = M1.slot(V).Data;
    // Premise: E1 ~er E2 — perturb only state above er.
    auto E1 = Env->clone();
    E1->randomize(R);
    auto E2 = E1->clone();
    E2->perturbAbove(Er, R);
    ++Checked;
    PropertyReport Rep = checkReadLabel(Decls, *C, M1, M2, *E1, *E2);
    EXPECT_TRUE(Rep.Holds) << Rep.Detail;
  }
  EXPECT_GT(Checked, 0u);
}

TEST_P(SecurityProperties, Property7SingleStepNoninterference) {
  const SecurityCase &Case = GetParam();
  const SecurityLattice &Lat = *Case.Lat;
  Rng R(707);
  RandomProgramOptions O;
  O.MaxDepth = 2;
  Program Decls = declsOnly(Lat, R, O);
  auto Env = createMachineEnv(Case.Kind, Lat, MachineEnvConfig());
  for (unsigned Trial = 0; Trial != 80; ++Trial) {
    CmdPtr C = randomCommand(Decls, R, O);
    for (Label Level : Lat.allLabels()) {
      // Premise: m1 ~ℓ m2 and E1 ~ℓ E2.
      Memory M1 = randomMemory(Decls, R);
      Memory M2 = M1;
      for (const MemorySlot &S : M1.slots())
        if (!Lat.flowsTo(S.SecLabel, Level))
          for (int64_t &V : M2.slot(S.Name).Data)
            V = R.nextInRange(-64, 64);
      auto E1 = Env->clone();
      E1->randomize(R);
      auto E2 = E1->clone();
      E2->perturbAbove(Level, R);
      PropertyReport Rep =
          checkSingleStepNI(Decls, *C, M1, M2, *E1, *E2, Level);
      EXPECT_TRUE(Rep.Holds)
          << Rep.Detail << " at level " << Lat.name(Level);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SecureDesigns, SecurityProperties,
                         ::testing::ValuesIn(securityCases()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

//===----------------------------------------------------------------------===//
// The commodity design violates the security properties
//===----------------------------------------------------------------------===//

TEST(CommodityHardware, ViolatesProperty5) {
  // A high-write-label access on nopar hardware modifies the shared
  // (⊥-labeled) cache: the contract is broken, enabling the Sec. 2.1
  // indirect-dependency attack.
  Rng R(808);
  RandomProgramOptions O;
  Program Decls = declsOnly(lh(), R, O);
  auto Env = createMachineEnv(HwKind::NoPartition, lh(), MachineEnvConfig());

  ProgramBuilder B(lh());
  CmdPtr C = B.assign("v0", B.v("v1"), high(), high());
  Memory M = randomMemory(Decls, R);
  PropertyReport Rep = checkWriteLabel(Decls, *C, M, *Env);
  EXPECT_FALSE(Rep.Holds); // The violation is the finding.
}

TEST(CommodityHardware, ViolatesProperty6) {
  // With a cold vs warm shared cache (difference only in "high" state —
  // which nopar does not separate), a low-read-label access times
  // differently: the read label's guarantee fails.
  Rng R(909);
  RandomProgramOptions O;
  Program Decls = declsOnly(lh(), R, O);

  auto E1 = createMachineEnv(HwKind::NoPartition, lh(), MachineEnvConfig());
  auto E2 = E1->clone();
  // Warm v0's line in E2 via a high-context access. On partitioned
  // hardware this would land in the H partition and keep E1 ~L E2; on
  // nopar it lands in the single shared cache. To build the premise pair
  // we must compare against hardware where the state difference is
  // invisible at L — nopar cannot represent that, so we emulate the
  // adversary's setup directly and observe the timing difference.
  Memory M = Memory::fromProgram(Decls, CostModel().DataBase);
  E2->dataAccess(M.addrOf("v0"), false, high(), high());

  ProgramBuilder B(lh());
  CmdPtr C = B.assign("v1", B.v("v0"), low(), low());
  auto Run = [&](MachineEnv &Env) {
    auto EnvC = Env.clone();
    StepInterpreter S(Decls, C->clone(), M, *EnvC);
    S.step();
    return S.clock();
  };
  EXPECT_NE(Run(*E1), Run(*E2)); // Timing depends on "high" history.
}

//===----------------------------------------------------------------------===//
// Checker self-tests: premise violations are reported, not crashes
//===----------------------------------------------------------------------===//

TEST(PropertyCheckers, ReadLabelRejectsBadPremises) {
  Rng R(111);
  RandomProgramOptions O;
  Program Decls = declsOnly(lh(), R, O);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  ProgramBuilder B(lh());
  CmdPtr C = B.assign("v0", B.v("v1"), low(), low());
  Memory M1 = Memory::fromProgram(Decls, CostModel().DataBase);
  Memory M2 = M1;
  M2.slot("v1").Data[0] = 999; // vars1 disagreement.
  PropertyReport Rep = checkReadLabel(Decls, *C, M1, M2, *Env, *Env);
  EXPECT_FALSE(Rep.Holds);
  EXPECT_NE(Rep.Detail.find("premise"), std::string::npos);
}

TEST(PropertyCheckers, SequentialCompositionWithMitigates) {
  // Property 3 must hold through predictive-mitigation bookkeeping too.
  Rng R(222);
  RandomProgramOptions O;
  Program Decls = declsOnly(lh(), R, O);
  Program P(lh());
  for (const VarDecl &D : Decls.vars())
    P.addVar(D);
  P.setBody(std::make_unique<SkipCmd>());
  P.number();

  ProgramBuilder B(lh());
  CmdPtr C1 = B.mitigate(B.lit(4), high(),
                         B.sleep(B.v("v0"), high(), high()), low(), low());
  CmdPtr C2 = B.assign("v1", B.lit(3), low(), low());
  Memory M = Memory::fromProgram(P, CostModel().DataBase);
  M.store("v0", 37);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  PropertyReport Rep = checkSequentialComposition(P, *C1, *C2, M, *Env);
  EXPECT_TRUE(Rep.Holds) << Rep.Detail;
}
