//===- eval_test.cpp - Expression evaluation and static labels -------------===//

#include "sem/Eval.h"
#include "lang/StaticLabels.h"

#include "hw/HardwareModels.h"
#include "ir/Lowering.h"
#include "sem/ExecCore.h"
#include "lang/Parser.h"
#include "lang/ProgramBuilder.h"
#include "support/Casting.h"
#include "TestUtil.h"
#include "gtest/gtest.h"

#include <limits>

using namespace zam;
using namespace zam::test;

//===----------------------------------------------------------------------===//
// Operator semantics (total, deterministic, no UB)
//===----------------------------------------------------------------------===//

TEST(ApplyBinOp, Arithmetic) {
  EXPECT_EQ(applyBinOp(BinOpKind::Add, 2, 3), 5);
  EXPECT_EQ(applyBinOp(BinOpKind::Sub, 2, 3), -1);
  EXPECT_EQ(applyBinOp(BinOpKind::Mul, -4, 3), -12);
  EXPECT_EQ(applyBinOp(BinOpKind::Div, 7, 2), 3);
  EXPECT_EQ(applyBinOp(BinOpKind::Mod, 7, 2), 1);
}

TEST(ApplyBinOp, DivisionByZeroYieldsZero) {
  EXPECT_EQ(applyBinOp(BinOpKind::Div, 5, 0), 0);
  EXPECT_EQ(applyBinOp(BinOpKind::Mod, 5, 0), 0);
}

TEST(ApplyBinOp, Int64MinOverflowCases) {
  int64_t Min = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(applyBinOp(BinOpKind::Div, Min, -1), Min); // Wraps, no trap.
  EXPECT_EQ(applyBinOp(BinOpKind::Mod, Min, -1), 0);
}

TEST(ApplyBinOp, AdditionWrapsModulo2To64) {
  int64_t Max = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(applyBinOp(BinOpKind::Add, Max, 1),
            std::numeric_limits<int64_t>::min());
}

TEST(ApplyBinOp, ShiftsMaskTheCount) {
  EXPECT_EQ(applyBinOp(BinOpKind::Shl, 1, 64), 1);  // 64 & 63 == 0.
  EXPECT_EQ(applyBinOp(BinOpKind::Shl, 1, 65), 2);  // 65 & 63 == 1.
  EXPECT_EQ(applyBinOp(BinOpKind::Shr, -1, 1),
            std::numeric_limits<int64_t>::max()); // Logical shift.
}

TEST(ApplyBinOp, ComparisonsAndLogic) {
  EXPECT_EQ(applyBinOp(BinOpKind::Lt, 1, 2), 1);
  EXPECT_EQ(applyBinOp(BinOpKind::Ge, 1, 2), 0);
  EXPECT_EQ(applyBinOp(BinOpKind::LogicalAnd, 5, 0), 0);
  EXPECT_EQ(applyBinOp(BinOpKind::LogicalAnd, 5, -1), 1);
  EXPECT_EQ(applyBinOp(BinOpKind::LogicalOr, 0, 0), 0);
  EXPECT_EQ(applyBinOp(BinOpKind::BitXor, 0b1100, 0b1010), 0b0110);
}

TEST(ApplyUnOp, AllOperators) {
  EXPECT_EQ(applyUnOp(UnOpKind::Neg, 5), -5);
  EXPECT_EQ(applyUnOp(UnOpKind::Neg, std::numeric_limits<int64_t>::min()),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(applyUnOp(UnOpKind::LogicalNot, 0), 1);
  EXPECT_EQ(applyUnOp(UnOpKind::LogicalNot, 7), 0);
  EXPECT_EQ(applyUnOp(UnOpKind::BitNot, 0), -1);
}

//===----------------------------------------------------------------------===//
// Pure evaluation
//===----------------------------------------------------------------------===//

namespace {
Program exprProgram() {
  ProgramBuilder B(lh());
  B.var("x", low(), 10);
  B.var("h", high(), 3);
  B.array("a", low(), 4, {10, 20, 30, 40});
  B.body(B.skip());
  return B.take();
}
} // namespace

TEST(EvalPure, VariablesAndArrays) {
  Program P = exprProgram();
  Memory M = Memory::fromProgram(P);
  ProgramBuilder B(lh());
  EXPECT_EQ(evalExprPure(*B.v("x"), M), 10);
  EXPECT_EQ(evalExprPure(*B.idx("a", B.lit(2)), M), 30);
  EXPECT_EQ(evalExprPure(*B.idx("a", B.lit(6)), M), 30); // Wraps.
  EXPECT_EQ(evalExprPure(*B.add(B.v("x"), B.mul(B.v("h"), B.lit(4))), M), 22);
}

TEST(EvalPure, NoShortCircuit) {
  // Logical operators evaluate both sides: timing must not depend on
  // operand values beyond vars1.
  Program P = exprProgram();
  Memory M = Memory::fromProgram(P);
  ProgramBuilder B(lh());
  // 0 && (a[h] read) — the array read still happens; with a wrapping index
  // this is observable only through timing, which is the point.
  EXPECT_EQ(evalExprPure(
                *B.land(B.lit(0), B.idx("a", B.v("h"))), M),
            0);
}

//===----------------------------------------------------------------------===//
// Timed evaluation (lowered postfix form)
//===----------------------------------------------------------------------===//

TEST(EvalTimed, ChargesAluAndMemoryCosts) {
  Program P = exprProgram();
  Memory M = Memory::fromProgram(P, CostModel().DataBase);
  auto Env = createMachineEnv(HwKind::NoPartition, lh(), MachineEnvConfig());
  CostModel Costs;

  // Literal: free.
  uint64_t Cycles = 0;
  ProgramBuilder B(lh());
  IrExpr Lit = lowerExpr(*B.lit(5), P, Costs);
  evalIrExpr(Lit, M, *Env, low(), low(), Costs, Cycles);
  EXPECT_EQ(Cycles, 0u);

  // Variable: one (cold) data access.
  IrExpr X = lowerExpr(*B.v("x"), P, Costs);
  Cycles = 0;
  evalIrExpr(X, M, *Env, low(), low(), Costs, Cycles);
  EXPECT_GT(Cycles, Costs.AluOp);

  // Warm variable: L1 hit.
  Cycles = 0;
  evalIrExpr(X, M, *Env, low(), low(), Costs, Cycles);
  EXPECT_EQ(Cycles, MachineEnvConfig().L1D.Latency);

  // x + x (both warm): two hits + one ALU op.
  IrExpr Sum = lowerExpr(*B.add(B.v("x"), B.v("x")), P, Costs);
  Cycles = 0;
  evalIrExpr(Sum, M, *Env, low(), low(), Costs, Cycles);
  EXPECT_EQ(Cycles, 2 * MachineEnvConfig().L1D.Latency + Costs.AluOp);
}

TEST(EvalTimed, AgreesWithPureOnValues) {
  Program P = exprProgram();
  Memory M = Memory::fromProgram(P, CostModel().DataBase);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  DiagnosticEngine Diags;
  Parser Pr("(x + a[1]) * 3 - (a[x] & h)", lh(), Diags);
  ExprPtr E = Pr.parseExprOnly();
  ASSERT_TRUE(E) << Diags.str();
  IrExpr L = lowerExpr(*E, P, CostModel());
  uint64_t Cycles = 0;
  EXPECT_EQ(evalIrExpr(L, M, *Env, low(), low(), CostModel(), Cycles),
            evalExprPure(*E, M));
}

//===----------------------------------------------------------------------===//
// Static expression labels
//===----------------------------------------------------------------------===//

TEST(StaticLabels, ExpressionLabels) {
  Program P = exprProgram();
  ProgramBuilder B(lh());
  EXPECT_EQ(exprLabel(*B.lit(1), P), low());
  EXPECT_EQ(exprLabel(*B.v("x"), P), low());
  EXPECT_EQ(exprLabel(*B.v("h"), P), high());
  EXPECT_EQ(exprLabel(*B.add(B.v("x"), B.v("h")), P), high());
  // Array read joins the element label with the index label.
  EXPECT_EQ(exprLabel(*B.idx("a", B.lit(0)), P), low());
  EXPECT_EQ(exprLabel(*B.idx("a", B.v("h")), P), high());
}

TEST(StaticLabels, PcLabels) {
  Program P = parseOrDie("var h : H;\nvar l : L;\n"
                         "l := 1;\n"
                         "if h then { h := 2 } else { skip };\n"
                         "while l do { l := 0 };\n"
                         "mitigate (1, H) { h := 3 }");
  auto Pc = computePcLabels(P);
  // Walk the body to find specific nodes.
  const auto &S1 = cast<SeqCmd>(P.body());
  const auto &Assign = S1.first(); // l := 1 at pc L.
  EXPECT_EQ(Pc.at(Assign.nodeId()), low());
  const auto &S2 = cast<SeqCmd>(S1.second());
  const auto &If = cast<IfCmd>(S2.first());
  EXPECT_EQ(Pc.at(If.nodeId()), low());
  EXPECT_EQ(Pc.at(If.thenCmd().nodeId()), high()); // High guard.
  const auto &S3 = cast<SeqCmd>(S2.second());
  const auto &While = cast<WhileCmd>(S3.first());
  EXPECT_EQ(Pc.at(While.body().nodeId()), low()); // Low guard.
  const auto &Mit = cast<MitigateCmd>(S3.second());
  // Mitigate does not raise pc (T-MTG types the body under the same pc).
  EXPECT_EQ(Pc.at(Mit.body().nodeId()), low());
}
