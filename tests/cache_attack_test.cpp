//===- cache_attack_test.cpp - Prime+probe case study ----------------------===//

#include "apps/CacheAttackApp.h"

#include "hw/HardwareModels.h"
#include "types/TypeChecker.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace zam;
using namespace zam::test;

TEST(CacheAttack, ProgramTypeChecks) {
  // The victim's secret-indexed lookup is mitigated and labeled [H,H]:
  // the program is well-typed. The leak (on bad hardware) is entirely a
  // contract violation, not a typing hole.
  Program P = buildCacheAttackProgram(lh(), CacheAttackConfig());
  DiagnosticEngine Diags;
  TypeCheckOptions Opts;
  Opts.RequireEqualTimingLabels = true;
  EXPECT_TRUE(typeCheck(P, Diags, Opts)) << Diags.str();
}

TEST(CacheAttack, GroundTruthGeometry) {
  CacheAttackConfig Config;
  Program P = buildCacheAttackProgram(lh(), Config);
  auto Env = createMachineEnv(HwKind::NoPartition, lh());
  ProbeResult R = runPrimeProbe(P, *Env, /*Key=*/0x2b, /*X=*/5, Config);
  EXPECT_EQ(R.SetCycles.size(), Config.Sets);
  // idx = (5 ^ 0x2b) & 63 = 0x2e = 46; line = 46/4 = 11.
  EXPECT_EQ(R.TrueLine, 11u);
  EXPECT_LT(R.TrueSet, Config.Sets);
}

TEST(CacheAttack, CommodityHardwareLeaksTheSet) {
  Rng R(1);
  double Rate =
      primeProbeHitRate(lh(), HwKind::NoPartition, 0x2b, 25, R);
  EXPECT_GT(Rate, 0.8);
}

TEST(CacheAttack, PartitionedHardwareDefeatsTheProbe) {
  Rng R(2);
  double Rate =
      primeProbeHitRate(lh(), HwKind::Partitioned, 0x2b, 25, R);
  EXPECT_LT(Rate, 0.2);
}

TEST(CacheAttack, NoFillHardwareDefeatsTheProbe) {
  // The Sec. 4.2 realization also honors Property 5: the high-context
  // victim access does not fill, so it leaves no footprint at all.
  Rng R(3);
  double Rate = primeProbeHitRate(lh(), HwKind::NoFill, 0x2b, 25, R);
  EXPECT_LT(Rate, 0.2);
}

TEST(CacheAttack, PartitionedProbeIsExactlyUniform) {
  CacheAttackConfig Config;
  Program P = buildCacheAttackProgram(lh(), Config);
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  runPrimeProbe(P, *Env, 0x2b, 0, Config); // Warm-up.
  ProbeResult Baseline = runPrimeProbe(P, *Env, 0x2b, 0, Config);
  // A different secret and input: every per-set probe time is identical to
  // the baseline — the low-observable part of the machine is untouched by
  // the high access (Property 5 at work, not just statistically).
  ProbeResult Round = runPrimeProbe(P, *Env, 0x51, 30, Config);
  EXPECT_EQ(Round.SetCycles, Baseline.SetCycles);
}

TEST(CacheAttack, NoparSignalSitsOnTheVictimSet) {
  CacheAttackConfig Config;
  Program P = buildCacheAttackProgram(lh(), Config);
  auto Env = createMachineEnv(HwKind::NoPartition, lh());
  runPrimeProbe(P, *Env, 0x2b, 0, Config);
  ProbeResult Baseline = runPrimeProbe(P, *Env, 0x2b, 0, Config);
  ProbeResult Round = runPrimeProbe(P, *Env, 0x2b, 9, Config);
  // The positive delta is on the victim's set.
  int64_t BestDelta = 0;
  unsigned BestSet = 0;
  for (unsigned S = 0; S != Round.SetCycles.size(); ++S) {
    int64_t D = static_cast<int64_t>(Round.SetCycles[S]) -
                static_cast<int64_t>(Baseline.SetCycles[S]);
    if (D > BestDelta) {
      BestDelta = D;
      BestSet = S;
    }
  }
  EXPECT_EQ(BestSet, Round.TrueSet);
  EXPECT_GT(BestDelta, 0);
}

TEST(CacheAttack, DifferentKeysYieldDifferentFootprints) {
  CacheAttackConfig Config;
  Program P = buildCacheAttackProgram(lh(), Config);
  auto Env1 = createMachineEnv(HwKind::NoPartition, lh());
  auto Env2 = createMachineEnv(HwKind::NoPartition, lh());
  runPrimeProbe(P, *Env1, 0x00, 0, Config);
  runPrimeProbe(P, *Env2, 0x3f, 0, Config);
  ProbeResult A = runPrimeProbe(P, *Env1, 0x00, 0, Config);
  ProbeResult B = runPrimeProbe(P, *Env2, 0x3f, 0, Config);
  EXPECT_NE(A.TrueSet, B.TrueSet);
  EXPECT_NE(A.SetCycles, B.SetCycles); // The footprint moves with the key.
}
