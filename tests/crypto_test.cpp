//===- crypto_test.cpp - MD5, modular math, toy RSA ------------------------===//

#include "crypto/Md5.h"
#include "crypto/ModMath.h"
#include "crypto/ToyRsa.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

using namespace zam;

//===----------------------------------------------------------------------===//
// MD5 (RFC 1321 appendix A.5 test suite)
//===----------------------------------------------------------------------===//

TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(md5("").hex(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5("a").hex(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5("abc").hex(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5("message digest").hex(), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5("abcdefghijklmnopqrstuvwxyz").hex(),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      md5("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")
          .hex(),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5("1234567890123456789012345678901234567890123456789012345678"
                "9012345678901234567890")
                .hex(),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, BlockBoundaryLengths) {
  // Lengths around the 55/56/64-byte padding boundaries.
  for (size_t Len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string Input(Len, 'x');
    Md5Digest D = md5(Input);
    // Self-consistency: same input, same digest; flip one byte, different.
    EXPECT_EQ(md5(Input), D);
    Input[0] = 'y';
    EXPECT_FALSE(md5(Input) == D);
  }
}

TEST(Md5, Low64IsLittleEndianPrefix) {
  Md5Digest D = md5("abc");
  // hex 900150983cd24fb0... → low64 little-endian of first 8 bytes.
  EXPECT_EQ(static_cast<uint64_t>(D.low64()), 0xb04fd23c98500190ull);
}

//===----------------------------------------------------------------------===//
// Modular arithmetic
//===----------------------------------------------------------------------===//

TEST(ModMath, MulmodMatchesSmallCases) {
  EXPECT_EQ(mulmod(7, 9, 10), 3u);
  EXPECT_EQ(mulmod(0, 9, 10), 0u);
  EXPECT_EQ(mulmod(123456789, 987654321, 1000000007), 259106859u);
}

TEST(ModMath, MulmodNoOverflowAt64Bits) {
  uint64_t Big = 0xFFFFFFFFFFFFFFC5ull; // Largest 64-bit prime.
  EXPECT_EQ(mulmod(Big - 1, Big - 1, Big), 1u); // (-1)² ≡ 1.
}

TEST(ModMath, Powmod) {
  EXPECT_EQ(powmod(2, 10, 1000000007), 1024u);
  EXPECT_EQ(powmod(2, 0, 97), 1u);
  EXPECT_EQ(powmod(5, 96, 97), 1u); // Fermat.
  EXPECT_EQ(powmod(123, 456, 1), 0u);
}

TEST(ModMath, Invmod) {
  EXPECT_EQ(invmod(3, 11), 4u); // 3·4 = 12 ≡ 1 (mod 11).
  EXPECT_EQ(invmod(65537, 1000003 - 1), mulmod(1, invmod(65537, 1000002), 1000002));
  EXPECT_EQ(invmod(4, 8), 0u); // Not invertible.
  // Round trip on random values.
  Rng R(31337);
  for (int I = 0; I != 100; ++I) {
    uint64_t M = R.nextBelow(1ull << 40) | 1;
    uint64_t A = 1 + R.nextBelow(M - 1);
    uint64_t Inv = invmod(A, M);
    if (Inv != 0) {
      EXPECT_EQ(mulmod(A, Inv, M), 1u);
    }
  }
}

TEST(ModMath, IsPrime) {
  EXPECT_FALSE(isPrime(0));
  EXPECT_FALSE(isPrime(1));
  EXPECT_TRUE(isPrime(2));
  EXPECT_TRUE(isPrime(3));
  EXPECT_FALSE(isPrime(4));
  EXPECT_TRUE(isPrime(97));
  EXPECT_FALSE(isPrime(561));        // Carmichael.
  EXPECT_FALSE(isPrime(3215031751)); // Strong pseudoprime to 2,3,5,7.
  EXPECT_TRUE(isPrime(2305843009213693951ull)); // 2^61 - 1 (Mersenne).
  EXPECT_FALSE(isPrime(2305843009213693953ull));
}

//===----------------------------------------------------------------------===//
// Toy RSA
//===----------------------------------------------------------------------===//

TEST(ToyRsa, KeyGeneration) {
  Rng R(2254078);
  RsaKey Key = generateRsaKey(R, 61);
  EXPECT_GT(Key.N, 1ull << 55);
  EXPECT_LT(Key.N, 1ull << 62);
  EXPECT_EQ(Key.E, 65537u);
  EXPECT_GT(Key.privateExponentBits(), 40u);
}

TEST(ToyRsa, EncryptDecryptRoundTrip) {
  Rng R(7);
  RsaKey Key = generateRsaKey(R, 61);
  for (int I = 0; I != 50; ++I) {
    uint64_t Plain = R.nextBelow(Key.N);
    uint64_t Cipher = rsaEncryptBlock(Key, Plain);
    EXPECT_EQ(rsaDecryptBlock(Key, Cipher), Plain);
  }
}

TEST(ToyRsa, MessageBlocking) {
  Rng R(8);
  RsaKey Key = generateRsaKey(R, 61);
  std::vector<uint8_t> Message;
  for (char C : std::string("attack at dawn, bring snacks"))
    Message.push_back(static_cast<uint8_t>(C));
  std::vector<uint64_t> Cipher = rsaEncryptMessage(Key, Message);
  EXPECT_EQ(Cipher.size(), (Message.size() + 5) / 6);
  std::vector<uint64_t> Plain = rsaDecryptBlocks(Key, Cipher);
  // Reassemble and compare.
  std::vector<uint8_t> Out;
  for (uint64_t Block : Plain)
    for (unsigned J = 0; J != 6 && Out.size() < Message.size(); ++J)
      Out.push_back(static_cast<uint8_t>(Block >> (8 * J)));
  EXPECT_EQ(Out, Message);
}

TEST(ToyRsa, DifferentSeedsDifferentKeys) {
  Rng R1(1), R2(2);
  RsaKey K1 = generateRsaKey(R1, 61);
  RsaKey K2 = generateRsaKey(R2, 61);
  EXPECT_NE(K1.N, K2.N);
  EXPECT_NE(K1.D, K2.D);
}

TEST(ToyRsa, SmallModulusStillRoundTrips) {
  Rng R(3);
  RsaKey Key = generateRsaKey(R, 20);
  for (uint64_t Plain : {0ull, 1ull, 255ull}) {
    if (Plain >= Key.N)
      continue;
    EXPECT_EQ(rsaDecryptBlock(Key, rsaEncryptBlock(Key, Plain)), Plain);
  }
}
