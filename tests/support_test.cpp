//===- support_test.cpp - Support utilities ---------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/SourceLoc.h"

#include "lang/Ast.h"
#include "gtest/gtest.h"

#include <set>

using namespace zam;

//===----------------------------------------------------------------------===//
// SourceLoc
//===----------------------------------------------------------------------===//

TEST(SourceLoc, DefaultIsUnknown) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLoc, Formatting) {
  SourceLoc Loc(12, 34);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "12:34");
}

TEST(SourceLoc, Equality) {
  EXPECT_EQ(SourceLoc(1, 2), SourceLoc(1, 2));
  EXPECT_FALSE(SourceLoc(1, 2) == SourceLoc(1, 3));
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CountsOnlyErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 1), "just so you know");
  Diags.note(SourceLoc(), "context");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 5), "this is bad");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, Rendering) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(3, 7), "flow violation");
  Diags.warning(SourceLoc(), "no location here");
  std::string S = Diags.str();
  EXPECT_NE(S.find("error: 3:7: flow violation"), std::string::npos);
  EXPECT_NE(S.find("warning: no location here"), std::string::npos);
}

TEST(Diagnostics, Clear) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(), "x");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.empty());
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I != 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  Rng A2(42), C2(43);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40})
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
}

TEST(Rng, NextInRangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I != 500; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u); // All five values appear.
}

TEST(Rng, ChanceExtremes) {
  Rng R(11);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(R.chance(0));
    EXPECT_TRUE(R.chance(100));
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng R(13);
  double Sum = 0;
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
    Sum += D;
  }
  EXPECT_NEAR(Sum / 1000, 0.5, 0.05); // Rough uniformity.
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng R(5);
  uint64_t First = R.next();
  R.next();
  R.reseed(5);
  EXPECT_EQ(R.next(), First);
}

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

TEST(Casting, IsaAndCast) {
  ExprPtr E = std::make_unique<IntLitExpr>(5);
  Expr *Raw = E.get();
  EXPECT_TRUE(isa<IntLitExpr>(Raw));
  EXPECT_FALSE(isa<VarExpr>(Raw));
  EXPECT_EQ(cast<IntLitExpr>(Raw)->value(), 5);
  EXPECT_EQ(cast<IntLitExpr>(*Raw).value(), 5);
}

TEST(Casting, DynCast) {
  ExprPtr E = std::make_unique<VarExpr>("x");
  Expr *Raw = E.get();
  EXPECT_EQ(dyn_cast<IntLitExpr>(Raw), nullptr);
  const VarExpr *V = dyn_cast<VarExpr>(Raw);
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->name(), "x");
}
