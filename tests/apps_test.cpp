//===- apps_test.cpp - The Sec. 8 case-study applications -------------------===//

#include "apps/LoginApp.h"
#include "apps/RsaApp.h"

#include "analysis/PropertyCheckers.h"
#include "crypto/ToyRsa.h"
#include "hw/HardwareModels.h"
#include "types/TypeChecker.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <set>

using namespace zam;
using namespace zam::test;

namespace {
TypeCheckOptions commodity() {
  TypeCheckOptions Opts;
  Opts.RequireEqualTimingLabels = true;
  return Opts;
}
} // namespace

//===----------------------------------------------------------------------===//
// Login (Sec. 8.3)
//===----------------------------------------------------------------------===//

TEST(LoginApp, TableConstruction) {
  Rng R(1);
  LoginTable T = makeLoginTable(100, 10, R);
  EXPECT_EQ(T.UserDigests.size(), 100u);
  EXPECT_EQ(T.PassDigests.size(), 100u);
  EXPECT_EQ(T.ValidUsernames.size(), 10u);
  // Exactly ten occupied slots, with distinct digests.
  std::set<int64_t> Occupied;
  unsigned Empty = 0;
  for (int64_t D : T.UserDigests) {
    if (D == 0)
      ++Empty;
    else
      Occupied.insert(D);
  }
  EXPECT_EQ(Empty, 90u);
  EXPECT_EQ(Occupied.size(), 10u);
}

TEST(LoginApp, FullTableStillConstructs) {
  Rng R(1);
  LoginTable T = makeLoginTable(20, 20, R);
  for (int64_t D : T.UserDigests)
    EXPECT_NE(D, 0);
}

TEST(LoginApp, MitigatedProgramTypeChecks) {
  Rng R(2);
  LoginTable T = makeLoginTable(20, 5, R);
  LoginProgramConfig Config;
  Config.Mitigated = true;
  Config.Estimate1 = 100;
  Config.Estimate2 = 100;
  Program P = buildLoginProgram(lh(), T, Config);
  DiagnosticEngine Diags;
  EXPECT_TRUE(typeCheck(P, Diags, commodity())) << Diags.str();
  EXPECT_EQ(P.numMitigates(), 2u);
}

TEST(LoginApp, UnmitigatedProgramIsRejectedByTheTypeSystem) {
  // "Without a mitigate command, type checking fails at line 11" — the
  // public response assignment after high-timing code.
  Rng R(3);
  LoginTable T = makeLoginTable(20, 5, R);
  LoginProgramConfig Config;
  Config.Mitigated = false;
  Program P = buildLoginProgram(lh(), T, Config);
  DiagnosticEngine Diags;
  EXPECT_FALSE(typeCheck(P, Diags, commodity()));
  EXPECT_NE(Diags.str().find("response"), std::string::npos);
}

TEST(LoginApp, AcceptsValidRejectsInvalidCredentials) {
  Rng R(4);
  LoginTable T = makeLoginTable(20, 5, R);
  LoginProgramConfig Config;
  Config.Mitigated = true;
  Config.Estimate1 = 1;
  Config.Estimate2 = 1;
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  LoginSession S(lh(), T, Config, *Env);
  EXPECT_TRUE(S.attempt("user0", "pass0").Accepted);
  EXPECT_TRUE(S.attempt("user4", "pass4").Accepted);
  EXPECT_FALSE(S.attempt("user0", "wrong").Accepted);  // Bad password.
  EXPECT_FALSE(S.attempt("user7", "pass7").Accepted);  // Not in table.
  EXPECT_FALSE(S.attempt("nobody", "x").Accepted);
}

TEST(LoginApp, UnmitigatedTimingSeparatesValidFromInvalid) {
  // The Bortz-Boneh probe: on unmitigated hardware+software, valid
  // usernames answer in measurably different time than invalid ones.
  Rng R(5);
  LoginTable T = makeLoginTable(50, 10, R);
  LoginProgramConfig Config;
  Config.Mitigated = false;
  auto Env = createMachineEnv(HwKind::NoPartition, lh(), MachineEnvConfig());
  LoginSession S(lh(), T, Config, *Env);
  // Warm up, then measure. A valid username walks its probe chain and
  // verifies the 4-word password digest; an invalid one stops at the first
  // empty slot — so valid attempts are slower (Table 2's shape).
  S.attempt("user1", "p");
  S.attempt("user49x", "p");
  uint64_t Valid = S.attempt("user1", "p").Cycles;
  uint64_t Invalid = S.attempt("user49x", "p").Cycles;
  EXPECT_GT(Valid, Invalid);
}

TEST(LoginApp, MitigatedTimingIsSecretIndependent) {
  // With mitigation on secure hardware, attempt latency does not depend on
  // whether the username is valid (Fig. 7 bottom: curves coincide).
  Rng R(6);
  LoginTable T = makeLoginTable(50, 10, R);
  auto EnvTemplate =
      createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  auto [E1, E2] = calibrateLoginEstimates(lh(), T, *EnvTemplate, 20, R);
  LoginProgramConfig Config;
  Config.Mitigated = true;
  Config.Estimate1 = E1;
  Config.Estimate2 = E2;

  // One server session, as in Fig. 7: after the prediction schedule
  // stabilizes (a warm-up covering both a valid and an invalid attempt),
  // every attempt takes identical time regardless of the secret table.
  auto Env = EnvTemplate->clone();
  LoginSession S(lh(), T, Config, *Env);
  S.attempt("user2", "pass2");      // Warm-up: valid path.
  S.attempt("no_such_user", "p");   // Warm-up: invalid path.
  uint64_t Valid = S.attempt("user3", "pass3").Cycles;
  uint64_t Invalid = S.attempt("another_ghost", "p").Cycles;
  uint64_t Valid2 = S.attempt("user7", "x").Cycles; // Valid user, bad pass.
  EXPECT_EQ(Valid, Invalid);
  EXPECT_EQ(Valid, Valid2);
}

TEST(LoginApp, CalibrationProducesUsefulEstimates) {
  Rng R(7);
  LoginTable T = makeLoginTable(50, 10, R);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  auto [E1, E2] = calibrateLoginEstimates(lh(), T, *Env, 10, R);
  EXPECT_GT(E1, 10); // Covers the probe-chain walk.
  EXPECT_GT(E2, 10); // Covers the 4-word password verification.
  EXPECT_LT(E1, 10'000'000);
  EXPECT_LT(E2, 10'000'000);
}

//===----------------------------------------------------------------------===//
// RSA (Sec. 8.4)
//===----------------------------------------------------------------------===//

namespace {
RsaKey testKey(uint64_t Seed = 11) {
  Rng R(Seed);
  return generateRsaKey(R, 53); // Smaller modulus keeps tests fast.
}
} // namespace

TEST(RsaApp, PerBlockProgramTypeChecks) {
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::PerBlock;
  Config.Estimate = 1000;
  Program P = buildRsaProgram(lh(), testKey(), Config);
  DiagnosticEngine Diags;
  EXPECT_TRUE(typeCheck(P, Diags, commodity())) << Diags.str();
  EXPECT_EQ(P.numMitigates(), 1u);
}

TEST(RsaApp, UnmitigatedProgramIsRejected) {
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::Unmitigated;
  Program P = buildRsaProgram(lh(), testKey(), Config);
  DiagnosticEngine Diags;
  EXPECT_FALSE(typeCheck(P, Diags, commodity()));
}

TEST(RsaApp, WholeRunSystemMitigationIsRejected) {
  // External/system-level mitigation wraps everything in one mitigate; the
  // low per-block progress assignments inside then violate T-ASGN, which is
  // exactly why the language-level mechanism is needed.
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::WholeRun;
  Program P = buildRsaProgram(lh(), testKey(), Config);
  DiagnosticEngine Diags;
  EXPECT_FALSE(typeCheck(P, Diags, commodity()));
}

TEST(RsaApp, InLanguageDecryptionMatchesReference) {
  RsaKey Key = testKey();
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::PerBlock;
  Config.Estimate = 1;
  Config.MaxBlocks = 8;
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  RsaSession S(lh(), Key, Config, *Env);

  Rng R(12);
  std::vector<uint64_t> Cipher;
  std::vector<uint64_t> Plain;
  for (int I = 0; I != 3; ++I) {
    uint64_t Block = R.nextBelow(Key.N);
    Plain.push_back(Block);
    Cipher.push_back(rsaEncryptBlock(Key, Block));
  }
  RsaDecryptResult Res = S.decrypt(Cipher);
  EXPECT_EQ(Res.Plain, Plain);
  EXPECT_EQ(Res.Plain, rsaDecryptBlocks(Key, Cipher));
  EXPECT_EQ(Res.T.Mitigations.size(), 3u); // One mitigate per block.
}

TEST(RsaApp, UnmitigatedTimingDependsOnKey) {
  // Two keys with different Hamming weight / bit length take different
  // time to decrypt the same ciphertext (Fig. 8 top).
  RsaKey K1 = testKey(21);
  RsaKey K2 = testKey(22);
  ASSERT_NE(K1.D, K2.D);
  auto TimeWith = [&](const RsaKey &Key) {
    RsaProgramConfig Config;
    Config.Mode = RsaMitigationMode::Unmitigated;
    Config.MaxBlocks = 4;
    auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
    RsaSession S(lh(), Key, Config, *Env);
    S.decrypt({12345}); // Warm-up run.
    return S.decrypt({12345}).Cycles;
  };
  EXPECT_NE(TimeWith(K1), TimeWith(K2));
}

TEST(RsaApp, MitigatedTimingIsKeyIndependent) {
  // Fig. 8 bottom: mitigated decryption time is a constant independent of
  // the private key. Calibrate once with the larger estimate so both keys
  // land on the same schedule value.
  RsaKey K1 = testKey(21);
  RsaKey K2 = testKey(22);
  auto EnvT = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  Rng R(13);
  int64_t Est = std::max(calibrateRsaEstimate(lh(), K1, *EnvT, 4, R),
                         calibrateRsaEstimate(lh(), K2, *EnvT, 4, R));
  auto TimeWith = [&](const RsaKey &Key) {
    RsaProgramConfig Config;
    Config.Mode = RsaMitigationMode::PerBlock;
    Config.Estimate = Est;
    Config.MaxBlocks = 4;
    auto Env = EnvT->clone();
    RsaSession S(lh(), Key, Config, *Env);
    S.decrypt({999, 1000});
    return S.decrypt({999, 1000}).Cycles;
  };
  EXPECT_EQ(TimeWith(K1), TimeWith(K2));
}

TEST(RsaApp, WholeRunRunsAndDecrypts) {
  // The system-level baseline still computes correctly (it is only
  // rejected by the type system, not broken).
  RsaKey Key = testKey();
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::WholeRun;
  Config.Estimate = 1;
  Config.MaxBlocks = 4;
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  RsaSession S(lh(), Key, Config, *Env);
  uint64_t Block = 424242 % Key.N;
  RsaDecryptResult Res = S.decrypt({rsaEncryptBlock(Key, Block)});
  EXPECT_EQ(Res.Plain[0], Block);
  EXPECT_EQ(Res.T.Mitigations.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Faithfulness of the case-study programs themselves
//===----------------------------------------------------------------------===//

TEST(AppsFaithfulness, LoginProgramSatisfiesAdequacyAndDeterminism) {
  Rng R(99);
  LoginTable T = makeLoginTable(30, 10, R);
  LoginProgramConfig Config;
  Config.Mitigated = true;
  Config.Estimate1 = 2000;
  Config.Estimate2 = 2000;
  Program P = buildLoginProgram(lh(), T, Config);
  // Bake a concrete request into the initial memory via declarations: use
  // the checker API directly on a fresh interpreter pair instead.
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  PropertyReport Adequacy = checkAdequacy(P, *Env);
  EXPECT_TRUE(Adequacy.Holds) << Adequacy.Detail;
  PropertyReport Det = checkDeterminism(P, *Env);
  EXPECT_TRUE(Det.Holds) << Det.Detail;
}

TEST(AppsFaithfulness, RsaProgramSatisfiesAdequacyAndDeterminism) {
  RsaKey Key = testKey();
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::PerBlock;
  Config.Estimate = 1000;
  Config.MaxBlocks = 2;
  Program P = buildRsaProgram(lh(), Key, Config);
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  PropertyReport Adequacy = checkAdequacy(P, *Env);
  EXPECT_TRUE(Adequacy.Holds) << Adequacy.Detail;
  PropertyReport Det = checkDeterminism(P, *Env);
  EXPECT_TRUE(Det.Holds) << Det.Detail;
}

TEST(RsaApp, EmptyMessageDecryptsToNothing) {
  RsaKey Key = testKey();
  RsaProgramConfig Config;
  Config.Mode = RsaMitigationMode::PerBlock;
  Config.MaxBlocks = 4;
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  RsaSession S(lh(), Key, Config, *Env);
  RsaDecryptResult Res = S.decrypt({});
  EXPECT_TRUE(Res.Plain.empty());
  EXPECT_TRUE(Res.T.Mitigations.empty()); // The block loop never entered.
  EXPECT_GT(Res.Cycles, 0u);
}

TEST(LoginApp, SessionAcceptanceIsDeterministic) {
  Rng R(7);
  LoginTable T = makeLoginTable(20, 5, R);
  LoginProgramConfig Config;
  Config.Mitigated = true;
  Config.Estimate1 = 1;
  Config.Estimate2 = 1;
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  LoginSession S(lh(), T, Config, *Env);
  for (int I = 0; I != 3; ++I) {
    EXPECT_TRUE(S.attempt("user3", "pass3").Accepted);
    EXPECT_FALSE(S.attempt("user3", "pass4").Accepted);
  }
}

TEST(LoginApp, HashReplicasMatchTheObjectLanguage) {
  // loginUserHash must track the in-language mix exactly, otherwise lookups
  // would silently miss (this guards the C++/object-language contract).
  Rng R(11);
  LoginTable T = makeLoginTable(16, 16, R);
  LoginProgramConfig Config;
  Config.Mitigated = false;
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  LoginSession S(lh(), T, Config, *Env);
  for (unsigned I = 0; I != 16; ++I)
    EXPECT_TRUE(S.attempt("user" + std::to_string(I),
                          "pass" + std::to_string(I))
                    .Accepted)
        << "user" << I;
}
