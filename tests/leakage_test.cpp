//===- leakage_test.cpp - Quantitative leakage machinery (Secs. 6-7) -------===//

#include "analysis/Leakage.h"

#include "hw/HardwareModels.h"
#include "types/LabelInference.h"
#include "types/TypeChecker.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

#include <cmath>

using namespace zam;
using namespace zam::test;

namespace {
Program wellTyped(const std::string &Source,
                  const SecurityLattice &Lat = lh()) {
  Program P = parseOrDie(Source, Lat);
  inferTimingLabels(P);
  DiagnosticEngine Diags;
  EXPECT_TRUE(typeCheck(P, Diags)) << Diags.str();
  return P;
}

LeakageSpec highSecretSweep(std::initializer_list<int64_t> Values) {
  LeakageSpec Spec;
  Spec.SourceLevels = LabelSet(lh(), {high()});
  Spec.Adversary = low();
  for (int64_t V : Values)
    Spec.Variations.push_back(SecretAssignment{{{"h", V}}, {}});
  return Spec;
}
} // namespace

TEST(LeakageBound, ClosedForm) {
  // |LeA↑| · log2(K+1) · (1 + log2 T).
  EXPECT_DOUBLE_EQ(leakageBoundBits(1, 0, 1000), 0.0); // K = 0 ⇒ no leak.
  EXPECT_DOUBLE_EQ(leakageBoundBits(1, 1, 1024), 1.0 * 1.0 * 11.0);
  EXPECT_DOUBLE_EQ(leakageBoundBits(2, 3, 1024), 2.0 * 2.0 * 11.0);
  // Polylogarithmic in T: doubling T adds one bit per (level × log(K+1)).
  double B1 = leakageBoundBits(1, 1, 1 << 20);
  double B2 = leakageBoundBits(1, 1, 1 << 21);
  EXPECT_DOUBLE_EQ(B2 - B1, 1.0);
}

TEST(Leakage, UnmitigatedSleepLeaksEverything) {
  // Without mitigation the adversary distinguishes every secret value via
  // the final low assignment's timestamp. (The program is deliberately
  // ill-typed — no mitigate — so we bypass the checker.)
  Program P = parseOrDie("var h : H;\nvar l : L;\nsleep(h); l := 1");
  inferTimingLabels(P);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  LeakageResult R =
      measureLeakage(P, *Env, highSecretSweep({0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(R.DistinctObservations, 8u);
  EXPECT_DOUBLE_EQ(R.QBits, 3.0);
}

TEST(Leakage, MitigatedSleepLeaksAtMostScheduleBits) {
  Program P = wellTyped("var h : H;\nvar l : L;\n"
                        "mitigate (1, H) { sleep(h) @[H,H] };\nl := 1");
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  LeakageResult R =
      measureLeakage(P, *Env, highSecretSweep({0, 1, 2, 3, 4, 5, 6, 7}));
  // Secrets 0..7 after the entry overhead collapse onto very few
  // power-of-two durations.
  EXPECT_LT(R.DistinctObservations, 8u);
  EXPECT_TRUE(R.TheoremTwoHolds);
  EXPECT_EQ(R.RelevantMitigates, 1u);
}

TEST(Leakage, NoSecretsNoObservations) {
  Program P = wellTyped("var h : H;\nvar l : L;\nl := 3");
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  LeakageResult R = measureLeakage(P, *Env, highSecretSweep({1, 2, 3}));
  EXPECT_EQ(R.DistinctObservations, 1u);
  EXPECT_DOUBLE_EQ(R.QBits, 0.0);
  EXPECT_EQ(R.RelevantMitigates, 0u);
  EXPECT_DOUBLE_EQ(R.ClosedFormBoundBits, 0.0);
}

TEST(Leakage, HighMitigatesAreExcludedFromTheProjection) {
  // A mitigate whose pc is high (inside if h) is not part of the
  // Definition 2 projection; only the outer low-context one counts.
  Program P = wellTyped(
      "var h : H;\nvar l : L;\n"
      "mitigate (1, H) {\n"
      "  if h then { mitigate (1, H) { h := h + 1 } } else { skip }\n"
      "};\nl := 1");
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  LeakageResult R = measureLeakage(P, *Env, highSecretSweep({0, 1}));
  EXPECT_EQ(R.RelevantMitigates, 1u);
  EXPECT_TRUE(R.MitigatesLowDeterministic);
}

TEST(Leakage, TimingVectorKeyProjection) {
  Trace T;
  MitigateRecord LowCtx;
  LowCtx.Eta = 0;
  LowCtx.PcLabel = low();
  LowCtx.Level = high();
  LowCtx.Duration = 64;
  MitigateRecord HighCtx = LowCtx;
  HighCtx.Eta = 1;
  HighCtx.PcLabel = high();
  HighCtx.Duration = 32;
  MitigateRecord LowLevel = LowCtx;
  LowLevel.Eta = 2;
  LowLevel.Level = low();
  LowLevel.Duration = 16;
  T.Mitigations = {LowCtx, HighCtx, LowLevel};

  LabelSet Up = unobservableUpwardClosure(
      lh(), LabelSet(lh(), {high()}), low()); // = {H}.
  std::string Key = timingVectorKey(T, lh(), Up);
  // Only LowCtx (pc ∉ {H}, lev ∈ {H}) contributes.
  EXPECT_EQ(Key, "64;");

  std::vector<unsigned> Ids = mitigateIdentityProjection(T, Up);
  EXPECT_EQ(Ids, (std::vector<unsigned>{0, 2}));
}

TEST(Leakage, SecretVariationOutsideUpwardSetAborts) {
  Program P = wellTyped("var h : H;\nvar l : L;\nl := 1");
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  LeakageSpec Spec;
  Spec.SourceLevels = LabelSet(lh(), {high()});
  Spec.Adversary = low();
  // Varying the *low* variable is outside LeA↑ — the analysis must refuse.
  Spec.Variations.push_back(SecretAssignment{{{"l", 5}}, {}});
  EXPECT_DEATH(measureLeakage(P, *Env, Spec), "outside LeA");
}

TEST(Leakage, ArraySecretsSupported) {
  Program P = wellTyped("var a : H[4];\nvar h : H;\nvar l : L;\n"
                        "mitigate (8, H) { h := a[0] + a[1] @[H,H] };\n"
                        "l := 1");
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  LeakageSpec Spec;
  Spec.SourceLevels = LabelSet(lh(), {high()});
  Spec.Adversary = low();
  Spec.Variations.push_back(
      SecretAssignment{{}, {{"a", {1, 2, 3, 4}}}});
  Spec.Variations.push_back(
      SecretAssignment{{}, {{"a", {4, 3, 2, 1}}}});
  LeakageResult R = measureLeakage(P, *Env, Spec);
  EXPECT_TRUE(R.TheoremTwoHolds);
}

TEST(Leakage, MisdeliveredAdversarySeesEverythingAtTop) {
  // An adversary at ⊤ observes all assignments, but then no level counts
  // as secret (LeA = ∅): Q measures flows from nothing, hence 0.
  // (The low assignment precedes the high one: T-ASGN raises τ to Γ(x).)
  Program P = wellTyped("var h : H;\nvar l : L;\nl := 2; h := 1");
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  LeakageSpec Spec;
  Spec.SourceLevels = LabelSet(lh(), {high()});
  Spec.Adversary = high();
  Spec.Variations.push_back(SecretAssignment{});
  LeakageResult R = measureLeakage(P, *Env, Spec);
  EXPECT_EQ(R.DistinctObservations, 1u);
}

//===----------------------------------------------------------------------===//
// Entropy-based measures (Definition 1 bounds them)
//===----------------------------------------------------------------------===//

TEST(Leakage, ShannonIsBoundedByQAndMinEntropyEqualsQ) {
  // Deterministic channel, uniform prior: I(S;O) = H(O) ≤ log2 |O| = Q,
  // and min-entropy leakage equals Q exactly — the Sec. 6.2 remark that the
  // counting measure "bounds those of Shannon entropy and min-entropy".
  Program P = parseOrDie("var h : H;\nvar l : L;\nsleep(h & 3); l := 1");
  inferTimingLabels(P);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  // Eight secrets folding onto four timing classes (h & 3), non-uniformly
  // keyed so H(O) < log2 |O| would only happen with unequal classes; here
  // classes are equal-sized, so H(O) = Q.
  LeakageResult R = measureLeakage(P, *Env,
                                   highSecretSweep({0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(R.DistinctObservations, 4u);
  EXPECT_DOUBLE_EQ(R.QBits, 2.0);
  EXPECT_DOUBLE_EQ(R.MinEntropyBits, R.QBits);
  EXPECT_LE(R.ShannonBits, R.QBits + 1e-12);
  EXPECT_DOUBLE_EQ(R.ShannonBits, 2.0); // Equal-sized classes.
}

TEST(Leakage, ShannonStrictlyBelowQForSkewedClasses) {
  Program P = parseOrDie("var h : H;\nvar l : L;\nsleep(h / 7); l := 1");
  inferTimingLabels(P);
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  // Secrets 0..6 collapse to one class; 7 forms its own: skewed 7:1 split.
  LeakageResult R = measureLeakage(P, *Env,
                                   highSecretSweep({0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(R.DistinctObservations, 2u);
  EXPECT_DOUBLE_EQ(R.QBits, 1.0);
  EXPECT_LT(R.ShannonBits, R.QBits); // H(7/8, 1/8) ≈ 0.54 bits.
  EXPECT_NEAR(R.ShannonBits, 0.5436, 1e-3);
}
