//===- interp_agreement_test.cpp - Big-step vs small-step engines ----------===//
//
// The fast big-step FullInterpreter and the literal small-step
// StepInterpreter implement the same full semantics; these tests check
// cycle-level agreement on hand-written and random programs across all
// three hardware designs, plus the basic timing behaviors of the full
// semantics themselves.
//
//===----------------------------------------------------------------------===//

#include "analysis/RandomProgram.h"
#include "hw/HardwareModels.h"
#include "sem/FullInterpreter.h"
#include "sem/StepInterpreter.h"
#include "types/LabelInference.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace zam;
using namespace zam::test;

namespace {
Program inferred(std::string Source) {
  Program P = parseOrDie(Source);
  inferTimingLabels(P);
  return P;
}

void expectEnginesAgree(const Program &P, HwKind Kind) {
  auto Env1 = createMachineEnv(Kind, P.lattice(), MachineEnvConfig());
  auto Env2 = Env1->clone();

  RunResult Fast = runFull(P, *Env1);

  StepInterpreter Slow(P, *Env2);
  Trace SlowTrace = Slow.runToCompletion();

  EXPECT_EQ(Fast.T.FinalTime, SlowTrace.FinalTime) << hwKindName(Kind);
  EXPECT_EQ(Fast.T.Steps, SlowTrace.Steps);
  EXPECT_TRUE(Fast.FinalMemory == Slow.memory());
  EXPECT_TRUE(Env1->stateEquals(*Env2));
  ASSERT_EQ(Fast.T.Events.size(), SlowTrace.Events.size());
  for (size_t I = 0; I != Fast.T.Events.size(); ++I)
    EXPECT_TRUE(Fast.T.Events[I] == SlowTrace.Events[I]) << "event " << I;
  ASSERT_EQ(Fast.T.Mitigations.size(), SlowTrace.Mitigations.size());
  for (size_t I = 0; I != Fast.T.Mitigations.size(); ++I)
    EXPECT_TRUE(Fast.T.Mitigations[I] == SlowTrace.Mitigations[I])
        << "mitigation " << I;
}
} // namespace

class EngineAgreement : public ::testing::TestWithParam<HwKind> {};

TEST_P(EngineAgreement, StraightLine) {
  expectEnginesAgree(inferred("var x : L;\nvar y : L;\n"
                              "x := 1; y := x + 2; x := y * y"),
                     GetParam());
}

TEST_P(EngineAgreement, BranchesAndLoops) {
  expectEnginesAgree(inferred("var h : H = 3;\nvar l : L;\n"
                              "l := 0;\n"
                              "while l < 5 do { l := l + 1 };\n"
                              "if h then { h := h * 2 } else { skip }"),
                     GetParam());
}

TEST_P(EngineAgreement, SleepAndArrays) {
  expectEnginesAgree(inferred("var a : L[8];\nvar i : L;\n"
                              "i := 0;\n"
                              "while i < 8 do { a[i] := i; i := i + 1 };\n"
                              "sleep(a[3])"),
                     GetParam());
}

TEST_P(EngineAgreement, MitigatedHighLoop) {
  expectEnginesAgree(inferred("var h : H = 5;\nvar l : L;\n"
                              "mitigate (10, H) {\n"
                              "  while h > 0 do { h := h - 1 }\n"
                              "};\n"
                              "l := 1"),
                     GetParam());
}

TEST_P(EngineAgreement, NestedMitigates) {
  expectEnginesAgree(
      inferred("var h : H = 2;\n"
               "mitigate (200, H) {\n"
               "  mitigate (5, H) { sleep(h) @[H,H] };\n"
               "  mitigate (5, H) { sleep(h + h) @[H,H] }\n"
               "}"),
      GetParam());
}

TEST_P(EngineAgreement, RandomPrograms) {
  Rng R(0xA11CE + static_cast<uint64_t>(GetParam()));
  unsigned Found = 0;
  for (unsigned Trial = 0; Trial != 60 && Found < 12; ++Trial) {
    RandomProgramOptions O;
    O.MaxDepth = 3;
    std::optional<Program> P = randomWellTypedProgram(lh(), R, O);
    if (!P)
      continue;
    ++Found;
    expectEnginesAgree(*P, GetParam());
  }
  EXPECT_GE(Found, 6u) << "random generator produced too few programs";
}

TEST_P(EngineAgreement, RandomProgramsThreeLevel) {
  Rng R(0xB0B + static_cast<uint64_t>(GetParam()));
  unsigned Found = 0;
  for (unsigned Trial = 0; Trial != 60 && Found < 8; ++Trial) {
    RandomProgramOptions O;
    O.MaxDepth = 3;
    std::optional<Program> P = randomWellTypedProgram(lmh(), R, O);
    if (!P)
      continue;
    ++Found;
    expectEnginesAgree(*P, GetParam());
  }
  EXPECT_GE(Found, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, EngineAgreement,
                         ::testing::ValuesIn(allHwKinds()),
                         [](const auto &Info) {
                           return std::string(hwKindName(Info.param));
                         });

//===----------------------------------------------------------------------===//
// Full-semantics timing behaviors
//===----------------------------------------------------------------------===//

TEST(FullSemantics, SleepLiteralTakesExactTime) {
  // Property 4: (sleep n) consumes exactly max(n, 0).
  for (int64_t N : {0ll, 1ll, 100ll, -7ll}) {
    Program P = inferred("sleep(" + std::to_string(N > 0 ? N : 0) + ")");
    auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
    RunResult R = runFull(P, *Env);
    EXPECT_EQ(R.T.FinalTime, static_cast<uint64_t>(N > 0 ? N : 0));
  }
}

TEST(FullSemantics, PaperBranchExampleLeaksThroughTime) {
  // Sec. 2.1: if (h) sleep(1) else sleep(10) — one bit of h leaks.
  auto TimeFor = [&](int64_t H) {
    Program P = inferred("var h : H = " + std::to_string(H) + ";\n"
                         "if h then { sleep(1) } else { sleep(10) }");
    auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
    return runFull(P, *Env).T.FinalTime;
  };
  EXPECT_NE(TimeFor(0), TimeFor(1));
}

TEST(FullSemantics, InstructionFetchWarmsUp) {
  // The second iteration of a loop re-fetches the same code addresses and
  // hits the I-cache: per-iteration time drops after iteration one.
  Program P = inferred("var i : L;\nvar a : L[1];\n"
                       "i := 0;\n"
                       "while i < 2 do { a[0] := i; i := i + 1 }");
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  RunResult R = runFull(P, *Env);
  ASSERT_EQ(R.T.Events.size(), 5u); // i:=0, then (a[0], i) twice.
  uint64_t Iter1 = R.T.Events[2].Time - R.T.Events[0].Time;
  uint64_t Iter2 = R.T.Events[4].Time - R.T.Events[2].Time;
  EXPECT_LT(Iter2, Iter1);
}

TEST(FullSemantics, StepLimitTruncatesDivergence) {
  Program P = inferred("var x : L;\nwhile 1 do { x := x + 1 }");
  auto Env = createMachineEnv(HwKind::NoPartition, lh(), MachineEnvConfig());
  InterpreterOptions Opts;
  Opts.StepLimit = 500;
  RunResult R = runFull(P, *Env, Opts);
  EXPECT_TRUE(R.T.HitStepLimit);
  EXPECT_LE(R.T.Steps, 501u);
}

TEST(FullSemantics, MitigateRecordsCarryPcAndLevel) {
  Program P = inferred("var h : H = 1;\n"
                       "mitigate (100, H) {\n"
                       "  if h then { mitigate (5, H) { h := h + 1 } }\n"
                       "  else { skip }\n"
                       "}");
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  RunResult R = runFull(P, *Env);
  ASSERT_EQ(R.T.Mitigations.size(), 2u);
  // Completion order: the inner mitigate (η=1, high pc) finishes first.
  EXPECT_EQ(R.T.Mitigations[0].Eta, 1u);
  EXPECT_EQ(R.T.Mitigations[0].PcLabel, high());
  EXPECT_EQ(R.T.Mitigations[1].Eta, 0u);
  EXPECT_EQ(R.T.Mitigations[1].PcLabel, low());
  EXPECT_EQ(R.T.Mitigations[1].Level, high());
  // Nesting: the outer duration spans the inner one.
  EXPECT_GE(R.T.Mitigations[1].Duration, R.T.Mitigations[0].Duration);
}

TEST(FullSemantics, SharedMitigationStatePersists) {
  Program P = inferred("var h : H = 40;\n"
                       "mitigate (1, H) { sleep(h) @[H,H] }");
  auto Env = createMachineEnv(HwKind::Partitioned, lh(), MachineEnvConfig());
  InterpreterOptions Opts;
  MitigationState Shared(lh(), fastDoublingPolicy(), PenaltyPolicy::PerLevel);
  Opts.SharedMitState = &Shared;

  RunResult First = runFull(P, *Env, Opts);
  EXPECT_TRUE(First.T.Mitigations[0].Mispredicted);
  unsigned MissesAfterFirst = Shared.misses(high());
  EXPECT_GT(MissesAfterFirst, 0u);

  // Second run starts from the penalized schedule: no new misprediction.
  RunResult Second = runFull(P, *Env, Opts);
  EXPECT_FALSE(Second.T.Mitigations[0].Mispredicted);
  EXPECT_EQ(Shared.misses(high()), MissesAfterFirst);
}
