//===- roundtrip_test.cpp - Printer/parser round-trip fuzzing ---------------===//
//
// For random generated programs: printProgram → parse → printProgram must be
// a fixpoint, and the reparsed program must behave identically (same core
// semantics result, same full-semantics timing).
//
//===----------------------------------------------------------------------===//

#include "analysis/RandomProgram.h"
#include "hw/HardwareModels.h"
#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "sem/CoreInterpreter.h"
#include "sem/FullInterpreter.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace zam;
using namespace zam::test;

namespace {

/// Builds a random fully-labeled program over \p Lat.
Program randomLabeledProgram(const SecurityLattice &Lat, Rng &R,
                             const RandomProgramOptions &O) {
  Program P(Lat);
  addRandomDeclarations(P, R, O);
  P.setBody(randomCommand(P, R, O));
  P.number();
  return P;
}

} // namespace

class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, PrintParsePrintIsAFixpoint) {
  Rng R(1000 + GetParam());
  RandomProgramOptions O;
  O.MaxDepth = 3;
  Program P = randomLabeledProgram(lh(), R, O);

  std::string Printed1 = printProgram(P);
  DiagnosticEngine Diags;
  std::optional<Program> Reparsed = parseProgram(Printed1, lh(), Diags);
  ASSERT_TRUE(Reparsed.has_value()) << Diags.str() << "\n" << Printed1;
  std::string Printed2 = printProgram(*Reparsed);
  EXPECT_EQ(Printed1, Printed2);
}

TEST_P(RoundTrip, ReparsedProgramComputesTheSameResult) {
  Rng R(2000 + GetParam());
  RandomProgramOptions O;
  O.MaxDepth = 3;
  Program P = randomLabeledProgram(lh(), R, O);

  DiagnosticEngine Diags;
  std::optional<Program> Reparsed =
      parseProgram(printProgram(P), lh(), Diags);
  ASSERT_TRUE(Reparsed.has_value()) << Diags.str();

  CoreResult A = runCore(P);
  CoreResult B = runCore(*Reparsed);
  ASSERT_EQ(A.HitStepLimit, B.HitStepLimit);
  if (!A.HitStepLimit) {
    EXPECT_TRUE(A.FinalMemory == B.FinalMemory);
  }
}

TEST_P(RoundTrip, ReparsedProgramHasIdenticalTiming) {
  Rng R(3000 + GetParam());
  RandomProgramOptions O;
  O.MaxDepth = 3;
  std::optional<Program> P = randomWellTypedProgram(lh(), R, O);
  if (!P)
    GTEST_SKIP() << "generator produced no well-typed program for this seed";

  DiagnosticEngine Diags;
  std::optional<Program> Reparsed =
      parseProgram(printProgram(*P), lh(), Diags);
  ASSERT_TRUE(Reparsed.has_value()) << Diags.str();

  auto E1 = createMachineEnv(HwKind::Partitioned, lh());
  auto E2 = createMachineEnv(HwKind::Partitioned, lh());
  RunResult R1 = runFull(*P, *E1);
  RunResult R2 = runFull(*Reparsed, *E2);
  EXPECT_EQ(R1.T.FinalTime, R2.T.FinalTime);
  EXPECT_TRUE(R1.FinalMemory == R2.FinalMemory);
}

TEST_P(RoundTrip, ThreeLevelLattice) {
  Rng R(4000 + GetParam());
  RandomProgramOptions O;
  O.MaxDepth = 2;
  Program P = randomLabeledProgram(lmh(), R, O);
  std::string Printed1 = printProgram(P);
  DiagnosticEngine Diags;
  std::optional<Program> Reparsed = parseProgram(Printed1, lmh(), Diags);
  ASSERT_TRUE(Reparsed.has_value()) << Diags.str() << "\n" << Printed1;
  EXPECT_EQ(Printed1, printProgram(*Reparsed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range(0, 25));
