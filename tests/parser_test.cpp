//===- parser_test.cpp - Parser and pretty-printer round trips -------------===//

#include "lang/Parser.h"
#include "lang/PrettyPrinter.h"
#include "support/Casting.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace zam;
using namespace zam::test;

TEST(Parser, MinimalProgram) {
  Program P = parseOrDie("var x : L;\nx := 1 @[L,L]");
  ASSERT_TRUE(P.hasBody());
  ASSERT_EQ(P.vars().size(), 1u);
  EXPECT_EQ(P.vars()[0].Name, "x");
  EXPECT_EQ(P.vars()[0].SecLabel, low());
  const auto &A = cast<AssignCmd>(P.body());
  EXPECT_EQ(A.var(), "x");
  EXPECT_EQ(*A.labels().Read, low());
  EXPECT_EQ(*A.labels().Write, low());
}

TEST(Parser, DeclarationsWithInitializers) {
  Program P = parseOrDie("var h : H = 7;\n"
                         "var a : H[4] = {1, 2, 3};\n"
                         "var n : L = -5;\n"
                         "skip");
  const VarDecl *H = P.findVar("h");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Init, std::vector<int64_t>{7});
  const VarDecl *A = P.findVar("a");
  ASSERT_NE(A, nullptr);
  EXPECT_TRUE(A->IsArray);
  EXPECT_EQ(A->Size, 4u);
  EXPECT_EQ(A->Init, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(P.findVar("n")->Init, std::vector<int64_t>{-5});
}

TEST(Parser, SequenceIsRightNested) {
  Program P = parseOrDie("var x : L;\nx := 1; x := 2; x := 3");
  const auto &S = cast<SeqCmd>(P.body());
  EXPECT_TRUE(isa<AssignCmd>(S.first()));
  const auto &Rest = cast<SeqCmd>(S.second());
  EXPECT_TRUE(isa<AssignCmd>(Rest.first()));
  EXPECT_TRUE(isa<AssignCmd>(Rest.second()));
}

TEST(Parser, TrailingSemicolonAllowed) {
  Program P = parseOrDie("var x : L;\nx := 1;");
  EXPECT_TRUE(isa<AssignCmd>(P.body()));
}

TEST(Parser, PaperBranchExample) {
  // The Sec. 2.1 direct-dependency example.
  Program P = parseOrDie("var h : H;\n"
                         "if h then { sleep(1) @[L,L] } else { sleep(10) @[L,L] } @[L,L];\n"
                         "sleep(h) @[H,H]");
  const auto &S = cast<SeqCmd>(P.body());
  const auto &If = cast<IfCmd>(S.first());
  EXPECT_TRUE(isa<SleepCmd>(If.thenCmd()));
  EXPECT_TRUE(isa<SleepCmd>(If.elseCmd()));
  const auto &Sl = cast<SleepCmd>(S.second());
  EXPECT_EQ(*Sl.labels().Read, high());
  EXPECT_EQ(*Sl.labels().Write, high());
}

TEST(Parser, MitigateSyntax) {
  Program P = parseOrDie("var h : H;\n"
                         "mitigate (1, H) { sleep(h) @[H,H] } @[L,L]");
  const auto &M = cast<MitigateCmd>(P.body());
  EXPECT_EQ(M.mitLevel(), high());
  EXPECT_TRUE(isa<IntLitExpr>(M.initialEstimate()));
  EXPECT_TRUE(isa<SleepCmd>(M.body()));
}

TEST(Parser, WhileAndArrays) {
  Program P = parseOrDie("var a : L[8];\nvar i : L;\n"
                         "i := 0;\n"
                         "while i < 8 do { a[i] := i * 2; i := i + 1 }");
  const auto &S = cast<SeqCmd>(P.body());
  const auto &W = cast<WhileCmd>(S.second());
  const auto &Body = cast<SeqCmd>(W.body());
  EXPECT_TRUE(isa<ArrayAssignCmd>(Body.first()));
}

TEST(Parser, MissingAnnotationLeavesLabelsUnset) {
  Program P = parseOrDie("var x : L;\nx := 1");
  EXPECT_FALSE(P.body().labels().Read.has_value());
  EXPECT_FALSE(P.body().labels().Write.has_value());
}

TEST(Parser, ExpressionPrecedence) {
  Program P = parseOrDie("var x : L;\nx := 1 + 2 * 3");
  const auto &A = cast<AssignCmd>(P.body());
  const auto &Add = cast<BinOpExpr>(A.value());
  EXPECT_EQ(Add.op(), BinOpKind::Add);
  EXPECT_EQ(cast<BinOpExpr>(Add.rhs()).op(), BinOpKind::Mul);
}

TEST(Parser, ComparisonBindsTighterThanLogical) {
  Program P = parseOrDie("var x : L;\nx := 1 < 2 && 3 == 3");
  const auto &A = cast<AssignCmd>(P.body());
  EXPECT_EQ(cast<BinOpExpr>(A.value()).op(), BinOpKind::LogicalAnd);
}

TEST(Parser, UnknownLabelIsAnError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseProgram("var x : M;\nskip", lh(), Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, RedeclarationIsAnError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      parseProgram("var x : L;\nvar x : H;\nskip", lh(), Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, MissingElseIsAnError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(
      parseProgram("var x : L;\nif x then { skip }", lh(), Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, TrailingGarbageIsAnError) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseProgram("var x : L;\nskip skip", lh(), Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, ThreeLevelLatticeLabels) {
  Program P = parseOrDie("var m : M;\nm := 1 @[M,M]", lmh());
  EXPECT_EQ(*P.body().labels().Read, *lmh().byName("M"));
}

TEST(Parser, NumbersMitigates) {
  Program P = parseOrDie("var h : H;\n"
                         "mitigate (1, H) { skip };\n"
                         "mitigate (2, H) { skip }");
  EXPECT_EQ(P.numMitigates(), 2u);
  const auto &S = cast<SeqCmd>(P.body());
  EXPECT_EQ(cast<MitigateCmd>(S.first()).mitigateId(), 0u);
  EXPECT_EQ(cast<MitigateCmd>(S.second()).mitigateId(), 1u);
}

//===----------------------------------------------------------------------===//
// Print/parse round trips
//===----------------------------------------------------------------------===//

static void expectRoundTrip(const std::string &Source,
                            const SecurityLattice &Lat = lh()) {
  Program P1 = parseOrDie(Source, Lat);
  std::string Printed1 = printProgram(P1);
  Program P2 = parseOrDie(Printed1, Lat);
  std::string Printed2 = printProgram(P2);
  EXPECT_EQ(Printed1, Printed2) << "original source:\n" << Source;
}

TEST(PrettyPrinter, RoundTripSimple) {
  expectRoundTrip("var x : L;\nx := 1 + 2 @[L,L]");
}

TEST(PrettyPrinter, RoundTripNested) {
  expectRoundTrip("var h : H;\nvar l : L;\n"
                  "l := 0 @[L,L];\n"
                  "if h then { h := h + 1 @[H,H] } else { skip @[H,H] } @[L,L];\n"
                  "while l < 4 do { l := l + 1 @[L,L] } @[L,L]");
}

TEST(PrettyPrinter, RoundTripMitigateAndArrays) {
  expectRoundTrip("var a : H[4] = {9, 8};\nvar h : H;\n"
                  "mitigate (16, H) { h := a[h & 3] @[H,H] } @[L,L];\n"
                  "sleep(3) @[L,L]");
}

TEST(PrettyPrinter, RoundTripUnlabeled) {
  expectRoundTrip("var x : L;\nx := 5; skip");
}

TEST(PrettyPrinter, ExpressionForms) {
  Program P = parseOrDie("var x : L;\nx := -(1) + ~(2) * !(0)");
  std::string S = printExpr(cast<AssignCmd>(P.body()).value());
  EXPECT_NE(S.find("-(1)"), std::string::npos);
  EXPECT_NE(S.find("~(2)"), std::string::npos);
}
