//===- typechecker_test.cpp - The Fig. 4 type system -----------------------===//

#include "types/TypeChecker.h"
#include "types/LabelInference.h"

#include "support/Casting.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace zam;
using namespace zam::test;

namespace {
/// Parses, optionally infers missing labels, and type-checks.
bool checks(const std::string &Source, const SecurityLattice &Lat = lh(),
            TypeCheckOptions Opts = TypeCheckOptions()) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(Source, Lat, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  if (!P)
    return false;
  inferTimingLabels(*P);
  return typeCheck(*P, Diags, Opts);
}

std::string diagsFor(const std::string &Source) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(Source, lh(), Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  if (!P)
    return "";
  inferTimingLabels(*P);
  typeCheck(*P, Diags);
  return Diags.str();
}
} // namespace

//===----------------------------------------------------------------------===//
// Explicit flows (T-ASGN)
//===----------------------------------------------------------------------===//

TEST(TypeChecker, DirectFlowLowToHighOk) {
  EXPECT_TRUE(checks("var h : H;\nvar l : L;\nh := l"));
}

TEST(TypeChecker, DirectFlowHighToLowRejected) {
  EXPECT_FALSE(checks("var h : H;\nvar l : L;\nl := h"));
  EXPECT_NE(diagsFor("var h : H;\nvar l : L;\nl := h").find("leaks"),
            std::string::npos);
}

TEST(TypeChecker, ImplicitFlowRejected) {
  EXPECT_FALSE(checks("var h : H;\nvar l : L;\n"
                      "if h then { l := 1 } else { l := 0 }"));
}

TEST(TypeChecker, HighBranchWritingHighOk) {
  EXPECT_TRUE(checks("var h : H;\n"
                     "if h then { h := 1 } else { h := 0 }"));
}

//===----------------------------------------------------------------------===//
// Timing flows (τ threading)
//===----------------------------------------------------------------------===//

TEST(TypeChecker, TimingTaintBlocksLaterLowAssignment) {
  // After a high-guarded branch, the timing end-label is H; a later low
  // assignment would leak through the *time* of the update (T-ASGN's
  // τ ⊑ Γ(x) premise).
  EXPECT_FALSE(checks("var h : H;\nvar l : L;\n"
                      "if h then { h := 1 } else { skip };\n"
                      "l := 0"));
}

TEST(TypeChecker, MitigateResetsTimingTaint) {
  // T-MTG: the body's timing end-label does not propagate; the same program
  // becomes typable once the high-timing region is mitigated.
  EXPECT_TRUE(checks("var h : H;\nvar l : L;\n"
                     "mitigate (8, H) { if h then { h := 1 } else { skip } };\n"
                     "l := 0"));
}

TEST(TypeChecker, MitigationLevelMustCoverBodyTiming) {
  // lev(M) = L cannot bound an H-timing body (τ″ ⊑ ℓ′ premise).
  EXPECT_FALSE(checks("var h : H;\n"
                      "mitigate (8, L) { if h then { h := 1 } else { skip } }"));
}

TEST(TypeChecker, SleepOnHighTaintsTiming) {
  EXPECT_FALSE(checks("var h : H;\nvar l : L;\nsleep(h); l := 1"));
  EXPECT_TRUE(checks("var h : H;\nvar l : L;\nl := 1; sleep(h)"));
  EXPECT_TRUE(checks("var h : H;\nvar l : L;\n"
                     "mitigate (4, H) { sleep(h) };\nl := 1"));
}

TEST(TypeChecker, HighGuardedLoopTaintsTiming) {
  // Loops with high guards are *permitted* (unlike Agat-style
  // transformation systems) — they only taint the timing end-label.
  EXPECT_TRUE(checks("var h : H;\nwhile h > 0 do { h := h - 1 }"));
  EXPECT_FALSE(checks("var h : H;\nvar l : L;\n"
                      "while h > 0 do { h := h - 1 };\nl := 1"));
  EXPECT_TRUE(checks("var h : H;\nvar l : L;\n"
                     "mitigate (16, H) { while h > 0 do { h := h - 1 } };\n"
                     "l := 1"));
}

TEST(TypeChecker, WhileFixpointStabilizes) {
  // The loop body raises the timing label via a high sleep: the τ′
  // fixpoint must converge and make the loop's end label high.
  EXPECT_FALSE(checks("var h : H;\nvar l : L;\nvar i : L;\n"
                      "i := 2;\n"
                      "while i > 0 do { sleep(h); i := i - 1 };\n"
                      "l := 1"));
}

TEST(TypeChecker, LoopCounterUpdateAfterHighTimingInBodyRejected) {
  // Inside the body, τ is already high after sleep(h), so the update of the
  // low counter is rejected (this is why the login scan uses a high
  // counter).
  EXPECT_FALSE(checks("var h : H;\nvar i : L;\n"
                      "i := 2;\n"
                      "while i > 0 do { sleep(h); i := i - 1 }"));
}

//===----------------------------------------------------------------------===//
// Labels on commands (pc ⊑ ew, er/ew interface)
//===----------------------------------------------------------------------===//

TEST(TypeChecker, ExplicitWriteLabelBelowPcRejected) {
  // The Sec. 2.2 example: branches of a high guard annotated [L,L] leak
  // through low machine-environment state.
  EXPECT_FALSE(checks("var h1 : H;\nvar h2 : H;\nvar l1 : L;\n"
                      "if h1 then { h2 := l1 @[L,L] }\n"
                      "else { h2 := l1 + 1 @[L,L] } @[L,L]"));
}

TEST(TypeChecker, HighWriteLabelInHighContextOk) {
  EXPECT_TRUE(checks("var h1 : H;\nvar h2 : H;\nvar l1 : L;\n"
                     "if h1 then { h2 := l1 @[H,H] }\n"
                     "else { h2 := l1 + 1 @[H,H] } @[L,L]"));
}

TEST(TypeChecker, LowWriteOnHighVariableOk) {
  // ew is independent of Γ(x): a low-context assignment to a high variable
  // may use the low cache (Sec. 5.1 discussion).
  EXPECT_TRUE(checks("var h : H;\nvar l : L;\nh := l @[L,L]"));
}

TEST(TypeChecker, HighReadLabelTaintsTiming) {
  // er = H on an early command taints τ, blocking later low assignments.
  EXPECT_FALSE(checks("var l : L;\nskip @[H,H];\nl := 1 @[L,L]",
                      lh(),
                      TypeCheckOptions{/*RequireEqualTimingLabels=*/true}));
}

TEST(TypeChecker, EqualTimingLabelSideCondition) {
  TypeCheckOptions Opts;
  Opts.RequireEqualTimingLabels = true;
  EXPECT_FALSE(checks("var l : L;\nl := 1 @[L,H]", lh(), Opts));
  EXPECT_TRUE(checks("var l : L;\nl := 1 @[L,L]", lh(), Opts));
  // Without the commodity-hardware condition, er ≠ ew is fine when secure.
  EXPECT_TRUE(checks("var l : L;\nl := 1 @[L,H]"));
}

TEST(TypeChecker, MissingLabelsAreReportedWithoutInference) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram("var l : L;\nl := 1", lh(), Diags);
  ASSERT_TRUE(P.has_value());
  EXPECT_FALSE(typeCheck(*P, Diags));
  EXPECT_NE(Diags.str().find("timing labels"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Arrays (the address-dependence extension)
//===----------------------------------------------------------------------===//

TEST(TypeChecker, HighIndexNeedsHighWriteLabel) {
  // Reading a[h] makes the accessed address secret; with ew = L the
  // hardware would install a secret-dependent address into low state.
  EXPECT_FALSE(checks("var a : H[8];\nvar h : H;\nh := a[h] @[L,L]"));
  EXPECT_TRUE(checks("var a : H[8];\nvar h : H;\nh := a[h] @[H,H]"));
}

TEST(TypeChecker, HighIndexStoreRejectedAtLow) {
  EXPECT_FALSE(checks("var a : H[8];\nvar h : H;\na[h] := 1 @[L,L]"));
  EXPECT_TRUE(checks("var a : H[8];\nvar h : H;\na[h] := 1 @[H,H]"));
}

TEST(TypeChecker, LowIndexIntoSecretArrayOk) {
  // Public index into a secret array: the address is public even though
  // the contents are not (the Sec. 4.1 coarse-abstraction insight).
  EXPECT_TRUE(checks("var a : H[8];\nvar h : H;\nvar i : L;\nh := a[i]"));
}

TEST(TypeChecker, IndexLabelJoinsIntoStoreValueBound) {
  // Storing at a secret index into a *low* array leaks the index.
  EXPECT_FALSE(checks("var a : L[8];\nvar h : H;\na[h] := 0 @[H,H]"));
}

//===----------------------------------------------------------------------===//
// Shape errors and diagnostics
//===----------------------------------------------------------------------===//

TEST(TypeChecker, UndeclaredVariable) {
  EXPECT_FALSE(checks("var l : L;\nl := ghost"));
}

TEST(TypeChecker, ArrayUsedAsScalar) {
  EXPECT_FALSE(checks("var a : L[4];\nvar l : L;\nl := a"));
  EXPECT_FALSE(checks("var a : L[4];\na := 1"));
}

TEST(TypeChecker, ScalarUsedAsArray) {
  EXPECT_FALSE(checks("var x : L;\nvar l : L;\nl := x[0]"));
  EXPECT_FALSE(checks("var x : L;\nx[0] := 1"));
}

TEST(TypeChecker, MultipleErrorsAllReported) {
  DiagnosticEngine Diags;
  std::optional<Program> P =
      parseProgram("var h : H;\nvar l : L;\nl := h; l := h + 1", lh(), Diags);
  ASSERT_TRUE(P.has_value());
  inferTimingLabels(*P);
  typeCheck(*P, Diags);
  EXPECT_GE(Diags.errorCount(), 2u);
}

//===----------------------------------------------------------------------===//
// Multilevel lattices
//===----------------------------------------------------------------------===//

TEST(TypeChecker, ThreeLevelFlows) {
  EXPECT_TRUE(checks("var l : L;\nvar m : M;\nvar h : H;\n"
                     "m := l; h := m",
                     lmh()));
  EXPECT_FALSE(checks("var m : M;\nvar h : H;\nm := h", lmh()));
}

TEST(TypeChecker, ThreeLevelMitigationLevels) {
  // A mitigate at level M bounds M-timing but not H-timing.
  EXPECT_TRUE(checks("var m : M;\nvar l : L;\n"
                     "mitigate (4, M) { sleep(m) };\nl := 1",
                     lmh()));
  EXPECT_FALSE(checks("var h : H;\nvar l : L;\n"
                      "mitigate (4, M) { sleep(h) };\nl := 1",
                      lmh()));
}

TEST(TypeChecker, PowersetIncomparableLevels) {
  PowersetLattice Lat({"A", "B"});
  // Secrets of A may not flow to B's variables.
  EXPECT_FALSE(checks("var a : {A};\nvar b : {B};\nb := a", Lat));
  EXPECT_TRUE(checks("var a : {A};\nvar t : {A,B};\nt := a", Lat));
}

//===----------------------------------------------------------------------===//
// Inference
//===----------------------------------------------------------------------===//

TEST(LabelInference, FillsErEqualsEwEqualsPc) {
  Program P = parseOrDie("var h : H;\nvar l : L;\n"
                         "l := 1;\n"
                         "if h then { h := 2 } else { skip }");
  inferTimingLabels(P);
  const auto &S = cast<SeqCmd>(P.body());
  EXPECT_EQ(*S.first().labels().Read, low());
  EXPECT_EQ(*S.first().labels().Write, low());
  const auto &If = cast<IfCmd>(S.second());
  EXPECT_EQ(*If.labels().Write, low()); // The if itself is at pc L.
  EXPECT_EQ(*If.thenCmd().labels().Write, high()); // Branch at pc H.
  EXPECT_EQ(*If.thenCmd().labels().Read, high());
}

TEST(LabelInference, PreservesExplicitAnnotations) {
  Program P = parseOrDie("var l : L;\nl := 1 @[H,H]");
  inferTimingLabels(P);
  EXPECT_EQ(*P.body().labels().Read, high());
}

TEST(LabelInference, InferredProgramsPassEqualLabelOption) {
  Program P = parseOrDie("var h : H;\nvar l : L;\n"
                         "mitigate (4, H) { sleep(h) };\nl := 1");
  inferTimingLabels(P);
  DiagnosticEngine Diags;
  TypeCheckOptions Opts;
  Opts.RequireEqualTimingLabels = true;
  EXPECT_TRUE(typeCheck(P, Diags, Opts)) << Diags.str();
}

TEST(TypeChecker, EndLabelBookkeeping) {
  Program P = parseOrDie("var h : H;\nvar l : L;\nl := 1; sleep(h)");
  inferTimingLabels(P);
  DiagnosticEngine Diags;
  TypeChecker Checker(P, Diags);
  ASSERT_TRUE(Checker.check()) << Diags.str();
  ASSERT_TRUE(Checker.programEndLabel().has_value());
  EXPECT_EQ(*Checker.programEndLabel(), high()); // sleep(h) taints τ.
}

//===----------------------------------------------------------------------===//
// Additional rule-by-rule coverage
//===----------------------------------------------------------------------===//

TEST(TypeChecker, MitigateEstimateLabelFlowsIntoEndLabel) {
  // T-MTG: τ′ = ℓe ⊔ τ ⊔ er — a secret initial estimate taints the time at
  // which the mitigate completes, blocking later low assignments.
  EXPECT_FALSE(checks("var h : H;\nvar l : L;\n"
                      "mitigate (h, H) { skip };\nl := 1"));
  EXPECT_TRUE(checks("var h : H;\nvar l : L;\n"
                     "mitigate (4, H) { skip };\nl := 1"));
}

TEST(TypeChecker, HighReadLabelOnAssignBlocksLowTarget) {
  // T-ASGN premise er ⊑ Γ(x): timing read from high machine state may not
  // influence when a low location changes.
  EXPECT_FALSE(checks("var l : L;\nl := 1 @[H,H]"));
}

TEST(TypeChecker, SkipPropagatesReadLabelIntoTiming) {
  // T-SKIP: τ′ = τ ⊔ er.
  EXPECT_FALSE(checks("var l : L;\nskip @[H,H]; l := 1"));
  EXPECT_TRUE(checks("var l : L;\nskip @[L,L]; l := 1"));
}

TEST(TypeChecker, BranchGuardLabelRaisesBranchTiming) {
  // T-IF: branches start at ℓe ⊔ τ ⊔ er even when they only write high.
  // The branch assignment itself is fine; the *join* taints what follows.
  EXPECT_TRUE(checks("var h : H;\nvar h2 : H;\n"
                     "if h then { h2 := 1 } else { h2 := 2 };\nh2 := 3"));
  EXPECT_FALSE(checks("var h : H;\nvar h2 : H;\nvar l : L;\n"
                      "if h then { h2 := 1 } else { h2 := 2 };\nl := 3"));
}

TEST(TypeChecker, NestedMitigatesTypeCheck) {
  EXPECT_TRUE(checks("var h : H;\nvar l : L;\n"
                     "mitigate (8, H) {\n"
                     "  if h then { mitigate (2, H) { h := h + 1 } }\n"
                     "  else { skip }\n"
                     "};\n"
                     "l := 1"));
}

TEST(TypeChecker, MitigateInHighContextNeedsHighWriteLabel) {
  // A mitigate occurring under a high guard is itself a command in a high
  // context: pc ⊑ ew applies to it like any other command.
  EXPECT_FALSE(checks("var h : H;\n"
                      "if h then { mitigate (2, H) { h := 1 } @[L,L] }\n"
                      "else { skip }"));
  EXPECT_TRUE(checks("var h : H;\n"
                     "if h then { mitigate (2, H) { h := 1 } @[H,H] }\n"
                     "else { skip }"));
}

TEST(TypeChecker, WhileGuardReadLabelFeedsFixpoint) {
  // T-WHILE: er joins into τ′; a high-read-label loop taints what follows.
  EXPECT_FALSE(checks("var l : L;\nvar i : L;\n"
                      "i := 1;\n"
                      "while i > 0 do { i := i - 1 } @[H,H];\n"
                      "l := 1"));
}

TEST(TypeChecker, SequencedMitigatesEachResetTiming) {
  EXPECT_TRUE(checks("var h : H;\nvar l : L;\nvar l2 : L;\n"
                     "mitigate (4, H) { sleep(h) };\n"
                     "l := 1;\n"
                     "mitigate (4, H) { sleep(h + 1) };\n"
                     "l2 := 2"));
}

TEST(TypeChecker, SleepTimingDependsOnArgumentLabel) {
  // T-SLEEP: τ′ = τ ⊔ ℓe ⊔ er; a three-level mid-secret sleep taints at M.
  EXPECT_TRUE(checks("var m : M;\nvar h : H;\nsleep(m); h := 1", lmh()));
  EXPECT_FALSE(checks("var m : M;\nvar l : L;\nsleep(m); l := 1", lmh()));
}

TEST(TypeChecker, ProgramEndLabelResetByMitigate) {
  Program P = parseOrDie("var h : H;\nvar l : L;\n"
                         "mitigate (4, H) { sleep(h) };\nl := 1");
  inferTimingLabels(P);
  DiagnosticEngine Diags;
  TypeChecker Checker(P, Diags);
  ASSERT_TRUE(Checker.check()) << Diags.str();
  EXPECT_EQ(*Checker.programEndLabel(), low());
}
