//===- adv_test.cpp - The statistical adversary subsystem -----------------===//
//
// Part of the zam project test suite: src/adv. The special functions
// against known values, the detector over synthetic bags (separated,
// identical, degenerate), the Miller–Madow correction and its entropy
// clamp, the collector's thread-count byte-identity, mitigated vs
// unmitigated end-to-end detection, and the LeakAudit adversary-projection
// edge cases (adversary at lattice top / bottom, zero-window runs).
//
//===----------------------------------------------------------------------===//

#include "adv/Adversary.h"
#include "adv/LeakDetector.h"
#include "obs/LeakAudit.h"
#include "obs/Telemetry.h"
#include "obs/TraceSink.h"
#include "types/LabelInference.h"

#include "TestUtil.h"

#include <cmath>

using namespace zam;
using namespace zam::test;

namespace {

// --- Special functions ---------------------------------------------------

TEST(AdvMath, LgammaKnownValues) {
  // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = sqrt(pi).
  EXPECT_NEAR(advLgamma(1.0), 0.0, 1e-13);
  EXPECT_NEAR(advLgamma(2.0), 0.0, 1e-13);
  EXPECT_NEAR(advLgamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(advLgamma(0.5), 0.5 * std::log(M_PI), 1e-13);
  EXPECT_NEAR(advLgamma(10.5), std::lgamma(10.5), 1e-10);
}

TEST(AdvMath, IncompleteBetaEndpointsAndSymmetry) {
  // I_x(a,b): I_0 = 0 (log10 -> very negative), I_1 = 1 (log10 -> 0).
  EXPECT_NEAR(regularizedIncompleteBetaLog10(2.0, 3.0, 1.0), 0.0, 1e-12);
  // I_1/2(a,a) = 1/2 for any a.
  EXPECT_NEAR(regularizedIncompleteBetaLog10(4.0, 4.0, 0.5),
              std::log10(0.5), 1e-12);
}

TEST(AdvMath, WelchPValueTable) {
  // t = 0: p = 1, log10 = 0.
  EXPECT_NEAR(welchPValueLog10(0.0, 10.0), 0.0, 1e-12);
  // Student t table: df=10, two-sided p = 0.05 at t = 2.228.
  EXPECT_NEAR(welchPValueLog10(2.228, 10.0), std::log10(0.05), 2e-3);
  // df=30, p = 0.01 at t = 2.750.
  EXPECT_NEAR(welchPValueLog10(2.750, 30.0), std::log10(0.01), 2e-3);
  // Far tail stays finite and clamps at the sentinel.
  EXPECT_GE(welchPValueLog10(1e6, 30.0), kDegeneratePValueLog10);
  EXPECT_EQ(welchPValueLog10(1e300, 5.0), kDegeneratePValueLog10);
}

// --- Detector over synthetic observation bags ----------------------------

std::vector<Observation> bagOf(const std::vector<uint64_t> &A,
                               const std::vector<uint64_t> &B) {
  std::vector<Observation> Obs;
  for (uint64_t T : A)
    Obs.push_back({0, T, {}, 0.0});
  for (uint64_t T : B)
    Obs.push_back({1, T, {}, 0.0});
  return Obs;
}

TEST(LeakDetector, SeparatedClassesDetected) {
  auto Obs = bagOf({100, 101, 102, 103, 100, 101, 102, 103},
                   {200, 201, 202, 203, 200, 201, 202, 203});
  DetectorResult D = detectLeak(Obs, {"a", "b"});
  EXPECT_TRUE(D.LeakDetected);
  EXPECT_LT(D.TStat, 0.0); // Mean(a) < mean(b); t = a - b side.
  EXPECT_LE(D.PValueLog10, kDetectPValueLog10);
  // Full separation: MI = H(class) = 1 bit.
  EXPECT_NEAR(D.MiBits, 1.0, 1e-12);
  EXPECT_EQ(D.DistinctTimings, 8u);
}

TEST(LeakDetector, IdenticalClassesNotDetected) {
  auto Obs = bagOf({100, 101, 102, 103}, {100, 101, 102, 103});
  DetectorResult D = detectLeak(Obs, {"a", "b"});
  EXPECT_FALSE(D.LeakDetected);
  EXPECT_NEAR(D.TStat, 0.0, 1e-12);
  EXPECT_NEAR(D.PValueLog10, 0.0, 1e-12);
  EXPECT_NEAR(D.MiBits, 0.0, 1e-12);
}

TEST(LeakDetector, DegenerateConstantClassesUseSentinels) {
  // Two disjoint constants: zero variance, different means.
  auto Obs = bagOf({500, 500, 500, 500}, {900, 900, 900, 900});
  DetectorResult D = detectLeak(Obs, {"a", "b"});
  EXPECT_TRUE(D.LeakDetected);
  EXPECT_EQ(std::abs(D.TStat), kDegenerateTStat);
  EXPECT_EQ(D.PValueLog10, kDegeneratePValueLog10);
  EXPECT_NEAR(D.MiBits, 1.0, 1e-12);

  // Equal constants: no evidence at all.
  auto Same = bagOf({500, 500, 500}, {500, 500, 500});
  DetectorResult S = detectLeak(Same, {"a", "b"});
  EXPECT_FALSE(S.LeakDetected);
  EXPECT_EQ(S.TStat, 0.0);
  EXPECT_EQ(S.PValueLog10, 0.0);
}

TEST(LeakDetector, MillerMadowClampsToClassEntropy) {
  // Every sample a distinct timing: the plug-in estimate saturates at
  // H(class) = 1 bit and the corrected value must stay in [0, 1].
  auto Obs = bagOf({1, 2, 3, 4}, {5, 6, 7, 8});
  DetectorResult D = detectLeak(Obs, {"a", "b"});
  EXPECT_NEAR(D.MiPluginBits, 1.0, 1e-12);
  EXPECT_LE(D.MiBits, 1.0 + 1e-12);
  EXPECT_GE(D.MiBits, 0.0);
}

TEST(LeakDetector, MaxPairSelectedDeterministically) {
  // Three classes; the separated pair (0, 2) must be chosen.
  std::vector<Observation> Obs;
  for (uint64_t T : {100, 101, 102, 103})
    Obs.push_back({0, T, {}, 0.0});
  for (uint64_t T : {104, 105, 106, 107})
    Obs.push_back({1, T, {}, 0.0});
  for (uint64_t T : {400, 401, 402, 403})
    Obs.push_back({2, T, {}, 0.0});
  DetectorResult D = detectLeak(Obs, {"a", "b", "c"});
  EXPECT_EQ(D.PairA, 0u);
  EXPECT_EQ(D.PairB, 2u);
}

TEST(LeakDetector, AnalyticBoundIsMaxOverObservations) {
  std::vector<Observation> Obs = bagOf({10, 11}, {12, 13});
  Obs[1].BoundBits = 2.5;
  Obs[3].BoundBits = 1.25;
  DetectorResult D = detectLeak(Obs, {"a", "b"});
  EXPECT_EQ(D.AnalyticBoundBits, 2.5);
}

TEST(LeakDetector, MetricsExportShape) {
  auto Obs = bagOf({100, 101, 102, 103}, {200, 201, 202, 203});
  DetectorResult D = detectLeak(Obs, {"a", "b"});
  MetricsRegistry Reg;
  exportDetectorMetrics(Reg, D, "x.");
  EXPECT_EQ(Reg.counterValue("x.adv.samples"), 8u);
  EXPECT_EQ(Reg.counterValue("x.adv.classes"), 2u);
  EXPECT_EQ(Reg.gaugeValue("x.adv.verdict"), 1.0);
  EXPECT_EQ(Reg.gaugeValue("x.adv.mi_bits"), D.MiBits);
  EXPECT_EQ(Reg.gaugeValue("x.adv.p_value_log10"), D.PValueLog10);
}

// --- Collector: determinism and end-to-end detection ---------------------

const char *kSweepSource = R"(
var h : H;
var l : L;
mitigate (64, H) {
  sleep(h) @[H, H]
};
l := 1
)";

const char *kUnmitSource = R"(
var h : H;
var l : L;
sleep(h) @[H, H];
l := 1
)";

/// Parses and label-infers a runnable program (attack deliberately skips
/// type checking: attackers measure insecure programs too).
Program parsed(const std::string &Source) {
  Program P = parseOrDie(Source);
  inferTimingLabels(P);
  return P;
}

std::vector<SecretClassSpec> twoRangeClasses() {
  std::vector<SecretClassSpec> Classes(2);
  Classes[0].Name = "small";
  Classes[0].Ranges = {{"h", 1, 40}};
  Classes[1].Name = "large";
  Classes[1].Ranges = {{"h", 600, 700}};
  return Classes;
}

TEST(Collector, ByteIdenticalAcrossThreadCounts) {
  Program P = parsed(kSweepSource);
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  AttackOptions Opts;
  Opts.Samples = 24;
  Opts.Seed = 1234;
  std::vector<std::vector<Observation>> Bags;
  for (unsigned Threads : {1u, 2u, 8u}) {
    ParallelRunner Runner(Threads);
    Bags.push_back(collectObservations(P, *Env, twoRangeClasses(), Opts,
                                       InterpreterOptions(), Runner));
  }
  for (size_t I = 1; I < Bags.size(); ++I) {
    ASSERT_EQ(Bags[0].size(), Bags[I].size());
    for (size_t J = 0; J < Bags[0].size(); ++J) {
      EXPECT_EQ(Bags[0][J].ClassIndex, Bags[I][J].ClassIndex);
      EXPECT_EQ(Bags[0][J].EndToEnd, Bags[I][J].EndToEnd);
      EXPECT_EQ(Bags[0][J].Windows, Bags[I][J].Windows);
      EXPECT_EQ(Bags[0][J].BoundBits, Bags[I][J].BoundBits);
    }
  }
  // And the serialized trace bytes agree too.
  std::string Dumps[2];
  for (unsigned I = 0; I != 2; ++I) {
    std::unique_ptr<TraceSink> Sink = makeTraceSink(TraceFormat::Jsonl);
    Sink->header({});
    exportObservations(*Sink, Bags[I], {"small", "large"});
    Dumps[I] = Sink->finish();
  }
  EXPECT_EQ(Dumps[0], Dumps[1]);
}

TEST(Collector, SampleSeedMixesIndices) {
  EXPECT_NE(sampleSeed(7, 0), sampleSeed(7, 1));
  EXPECT_NE(sampleSeed(7, 0), sampleSeed(8, 0));
}

TEST(Collector, UnmitigatedLeakDetectedMitigatedBounded) {
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  ParallelRunner Runner(1);
  AttackOptions Opts;
  Opts.Samples = 32;
  Opts.Seed = 99;

  Program Unmit = parsed(kUnmitSource);
  auto UnmitObs = collectObservations(Unmit, *Env, twoRangeClasses(), Opts,
                                      InterpreterOptions(), Runner);
  DetectorResult DU = detectLeak(UnmitObs, {"small", "large"});
  EXPECT_TRUE(DU.LeakDetected);
  EXPECT_EQ(DU.AnalyticBoundBits, 0.0); // No mitigate windows at all.
  EXPECT_GT(DU.MiBits, 0.5);

  Program Mit = parsed(kSweepSource);
  auto MitObs = collectObservations(Mit, *Env, twoRangeClasses(), Opts,
                                    InterpreterOptions(), Runner);
  DetectorResult DM = detectLeak(MitObs, {"small", "large"});
  // The mitigated run may still be distinguishable (fast-doubling leaks a
  // bounded number of bits), but the empirical estimate must respect the
  // analytic account.
  EXPECT_GT(DM.AnalyticBoundBits, 0.0);
  EXPECT_LE(DM.MiBits, DM.AnalyticBoundBits);
}

// --- LeakAudit adversary-projection edge cases (online == ingest) --------

/// Runs kSweepSource once and audits it at \p Adversary, both by replaying
/// the finished trace and through the online onWindow hook; the two
/// accounts must agree bit-for-bit.
std::pair<double, size_t> auditAt(std::optional<Label> Adversary) {
  Program P = parsed(kSweepSource);
  auto Env = createMachineEnv(HwKind::Partitioned, lh());

  LeakAudit Online(lh(), Adversary);
  InterpreterOptions Opts;
  Opts.OnMitigateWindow = [&](const MitigateRecord &R) {
    Online.onWindow(R);
  };
  RunResult RR =
      runFull(P, *Env, [](Memory &M) { M.store("h", 700); }, Opts);

  LeakAudit Replay(lh(), Adversary);
  Replay.ingest(RR.T);
  EXPECT_EQ(Online.totalBitsBound(), Replay.totalBitsBound());
  EXPECT_EQ(Online.windows().size(), Replay.windows().size());
  return {Replay.totalBitsBound(), Replay.windows().size()};
}

TEST(AdvProjection, AdversaryAtTopSeesNoWindows) {
  // lev(M) = H ⊑ H = ℓA: the window carries nothing the top adversary
  // does not already know. Zero windows, zero bound.
  auto [Bits, Windows] = auditAt(high());
  EXPECT_EQ(Windows, 0u);
  EXPECT_EQ(Bits, 0.0);
}

TEST(AdvProjection, AdversaryAtBottomCountsAll) {
  // pc = L ⊑ L and lev = H ⋢ L: counted. Must equal the conservative
  // any-observer account on this single-window program.
  auto [BotBits, BotWindows] = auditAt(low());
  auto [AnyBits, AnyWindows] = auditAt(std::nullopt);
  EXPECT_EQ(BotWindows, 1u);
  EXPECT_GT(BotBits, 0.0);
  EXPECT_EQ(BotBits, AnyBits);
  EXPECT_EQ(BotWindows, AnyWindows);
}

TEST(AdvProjection, ZeroWindowRunHasZeroBound) {
  Program P = parsed("var l : L;\nl := 41;\nl := l + 1");
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  RunResult RR = runFull(P, *Env);
  for (std::optional<Label> Adv :
       {std::optional<Label>(), std::optional<Label>(low()),
        std::optional<Label>(high())}) {
    LeakAudit Audit(lh(), Adv);
    Audit.ingest(RR.T);
    EXPECT_EQ(Audit.windows().size(), 0u);
    EXPECT_EQ(Audit.totalBitsBound(), 0.0);
  }
}

TEST(AdvProjection, CollectorHonoursAdversaryLevel) {
  // The same bag collected at adversary H must carry no windows and a
  // zero bound in every observation, while the bottom/conservative runs
  // carry the mitigate window.
  Program P = parsed(kSweepSource);
  auto Env = createMachineEnv(HwKind::Partitioned, lh());
  ParallelRunner Runner(1);
  AttackOptions Opts;
  Opts.Samples = 8;
  Opts.Seed = 5;
  Opts.Adversary = high();
  auto Top = collectObservations(P, *Env, twoRangeClasses(), Opts,
                                 InterpreterOptions(), Runner);
  for (const Observation &O : Top) {
    EXPECT_TRUE(O.Windows.empty());
    EXPECT_EQ(O.BoundBits, 0.0);
  }
  Opts.Adversary = low();
  auto Bot = collectObservations(P, *Env, twoRangeClasses(), Opts,
                                 InterpreterOptions(), Runner);
  for (const Observation &O : Bot) {
    EXPECT_EQ(O.Windows.size(), 1u);
    EXPECT_GT(O.BoundBits, 0.0);
  }
}

} // namespace
