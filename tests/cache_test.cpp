//===- cache_test.cpp - Set-associative cache model -------------------------===//

#include "hw/Cache.h"

#include "gtest/gtest.h"

using namespace zam;

namespace {
CacheConfig smallConfig() {
  CacheConfig C;
  C.NumSets = 4;
  C.Assoc = 2;
  C.BlockBytes = 32;
  C.Latency = 1;
  return C;
}

/// Address that maps to \p Set with tag \p Tag under smallConfig().
Addr addrFor(unsigned Set, uint64_t Tag) {
  return (Tag * 4 + Set) * 32;
}
} // namespace

TEST(Cache, MissThenHit) {
  Cache C(smallConfig());
  Addr A = addrFor(0, 1);
  EXPECT_FALSE(C.lookup(A));
  C.install(A);
  EXPECT_TRUE(C.lookup(A));
}

TEST(Cache, SameBlockSharesLine) {
  Cache C(smallConfig());
  C.install(addrFor(0, 1));
  // Any address within the same 32-byte block hits.
  EXPECT_TRUE(C.lookup(addrFor(0, 1) + 31));
  EXPECT_FALSE(C.lookup(addrFor(0, 1) + 32)); // Next block, next set.
}

TEST(Cache, SetsAreIndependent) {
  Cache C(smallConfig());
  C.install(addrFor(0, 1));
  EXPECT_FALSE(C.probe(addrFor(1, 1)));
  EXPECT_TRUE(C.probe(addrFor(0, 1)));
}

TEST(Cache, LruEviction) {
  Cache C(smallConfig()); // 2-way.
  Addr A = addrFor(2, 1), B = addrFor(2, 2), D = addrFor(2, 3);
  C.install(A);
  C.install(B);
  C.install(D); // Evicts A (LRU).
  EXPECT_FALSE(C.probe(A));
  EXPECT_TRUE(C.probe(B));
  EXPECT_TRUE(C.probe(D));
}

TEST(Cache, LookupPromotesToMru) {
  Cache C(smallConfig());
  Addr A = addrFor(2, 1), B = addrFor(2, 2), D = addrFor(2, 3);
  C.install(A);
  C.install(B);
  EXPECT_TRUE(C.lookup(A)); // A becomes MRU; B is now LRU.
  C.install(D);             // Evicts B.
  EXPECT_TRUE(C.probe(A));
  EXPECT_FALSE(C.probe(B));
}

TEST(Cache, ProbeDoesNotDisturbLru) {
  Cache C(smallConfig());
  Addr A = addrFor(2, 1), B = addrFor(2, 2), D = addrFor(2, 3);
  C.install(A);
  C.install(B);
  EXPECT_TRUE(C.probe(A)); // No promotion: A stays LRU.
  C.install(D);            // Evicts A.
  EXPECT_FALSE(C.probe(A));
  EXPECT_TRUE(C.probe(B));
}

TEST(Cache, InstallExistingPromotes) {
  Cache C(smallConfig());
  Addr A = addrFor(2, 1), B = addrFor(2, 2), D = addrFor(2, 3);
  C.install(A);
  C.install(B);
  C.install(A); // Re-install promotes, must not duplicate.
  C.install(D); // Evicts B.
  EXPECT_TRUE(C.probe(A));
  EXPECT_FALSE(C.probe(B));
  EXPECT_TRUE(C.probe(D));
}

TEST(Cache, RemoveInvalidates) {
  Cache C(smallConfig());
  Addr A = addrFor(1, 5);
  C.install(A);
  C.remove(A);
  EXPECT_FALSE(C.probe(A));
  C.remove(A); // Removing an absent block is a no-op.
  EXPECT_FALSE(C.probe(A));
}

TEST(Cache, ResetFlushes) {
  Cache C(smallConfig());
  C.install(addrFor(0, 1));
  C.install(addrFor(3, 7));
  C.reset();
  EXPECT_FALSE(C.probe(addrFor(0, 1)));
  EXPECT_FALSE(C.probe(addrFor(3, 7)));
}

TEST(Cache, EqualityIncludesLruOrder) {
  Cache C1(smallConfig()), C2(smallConfig());
  Addr A = addrFor(2, 1), B = addrFor(2, 2);
  C1.install(A);
  C1.install(B);
  C2.install(B);
  C2.install(A);
  // Same contents, different LRU order: not equal (LRU order affects
  // future timing, so it is part of the machine-environment state).
  EXPECT_FALSE(C1 == C2);
  EXPECT_TRUE(C2.lookup(B)); // Promote B: orders now match.
  EXPECT_TRUE(C1 == C2);
}

TEST(Cache, RandomizeIsDeterministicPerSeed) {
  Cache C1(smallConfig()), C2(smallConfig());
  Rng R1(42), R2(42);
  C1.randomize(R1);
  C2.randomize(R2);
  EXPECT_TRUE(C1 == C2);
  Rng R3(43);
  Cache C3(smallConfig());
  C3.randomize(R3);
  EXPECT_FALSE(C1 == C3); // Overwhelmingly likely.
}

TEST(Cache, TlbGeometry) {
  // A TLB is a cache with page-sized blocks.
  CacheConfig TlbCfg;
  TlbCfg.NumSets = 16;
  TlbCfg.Assoc = 4;
  TlbCfg.BlockBytes = 4096;
  TlbCfg.Latency = 30;
  Cache Tlb(TlbCfg);
  Tlb.install(0x10000000);
  EXPECT_TRUE(Tlb.probe(0x10000000 + 4095)); // Same page.
  EXPECT_FALSE(Tlb.probe(0x10000000 + 4096)); // Next page.
  EXPECT_EQ(Tlb.latency(), 30u);
}

TEST(Cache, ThrashingPatternCountsEvictions) {
  Cache C(smallConfig()); // 2-way.
  // Thrash one set with three conflicting blocks, round-robin: after the
  // first two installs every install evicts the LRU way.
  Addr A = addrFor(2, 1), B = addrFor(2, 2), D = addrFor(2, 3);
  const Addr Pattern[] = {A, B, D, A, B, D};
  for (Addr X : Pattern)
    if (!C.lookup(X))
      C.install(X);
  // 6 installs into a 2-way set: 6 line fills, 4 evictions (every install
  // after the set filled), no lookup ever hit.
  EXPECT_EQ(C.events().LineFills, 6u);
  EXPECT_EQ(C.events().Evictions, 4u);
  EXPECT_EQ(C.events().Writebacks, 0u); // All lines clean.
  C.resetEvents();
  EXPECT_EQ(C.events(), CacheEvents());
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  Cache C(smallConfig()); // 2-way.
  Addr A = addrFor(2, 1), B = addrFor(2, 2), D = addrFor(2, 3),
       E = addrFor(2, 4);
  C.install(A, /*Dirty=*/true);
  C.install(B);
  C.install(D); // Evicts dirty A: writeback.
  EXPECT_EQ(C.events().Evictions, 1u);
  EXPECT_EQ(C.events().Writebacks, 1u);
  C.install(E); // Evicts clean B: no writeback.
  EXPECT_EQ(C.events().Evictions, 2u);
  EXPECT_EQ(C.events().Writebacks, 1u);
}

TEST(Cache, StoreHitMarksLineDirty) {
  Cache C(smallConfig()); // 2-way.
  Addr A = addrFor(2, 1), B = addrFor(2, 2), D = addrFor(2, 3);
  C.install(A); // Clean install.
  C.install(B); // MRU→LRU: [B, A].
  EXPECT_TRUE(C.lookup(A, /*MarkDirty=*/true)); // Store hit: [A*, B].
  C.install(D); // Evicts clean B: [D, A*].
  EXPECT_EQ(C.events().Writebacks, 0u);
  C.install(addrFor(2, 5)); // Evicts A, dirtied by the store above.
  EXPECT_EQ(C.events().Writebacks, 1u);
}

TEST(Cache, RemoveDirtyLineCountsWriteback) {
  Cache C(smallConfig());
  Addr A = addrFor(1, 5);
  C.install(A, /*Dirty=*/true);
  C.remove(A); // Consistency move of a dirty line: data must be written out.
  EXPECT_EQ(C.events().Writebacks, 1u);
  C.install(A);
  C.remove(A); // Clean copy: no writeback.
  EXPECT_EQ(C.events().Writebacks, 1u);
}

TEST(Cache, EventCountersDoNotAffectEquality) {
  Cache C1(smallConfig()), C2(smallConfig());
  Addr A = addrFor(2, 1), B = addrFor(2, 2), D = addrFor(2, 3);
  // C1 reaches {D, B} (MRU first) via thrashing; C2 directly. Event
  // counters and dirty bits differ, but the machine state — the thing the
  // noninterference properties quantify over — is identical.
  C1.install(A, /*Dirty=*/true);
  C1.install(B);
  C1.install(D); // Evicts A.
  C2.install(B, /*Dirty=*/true);
  C2.install(D);
  EXPECT_NE(C1.events(), C2.events());
  EXPECT_TRUE(C1 == C2);
}

TEST(Cache, DirectMappedConflicts) {
  CacheConfig Cfg = smallConfig();
  Cfg.Assoc = 1;
  Cache C(Cfg);
  Addr A = addrFor(0, 1), B = addrFor(0, 2);
  C.install(A);
  C.install(B); // Conflict miss evicts A immediately.
  EXPECT_FALSE(C.probe(A));
  EXPECT_TRUE(C.probe(B));
}
