//===- exec_profile_test.cpp - The execution observatory (obs/ExecProfile) --===//
//
// Covers the deterministic ExecCore self-profiler: conservation equations
// on real runs, bit-identical exec.* exports across the Full and Step
// engines and every hardware design, thread-partitioned merge equivalence,
// the lowering invariants the per-pc table depends on (dense pc slots,
// trailing never-dispatched Halt), the fixed export shape for degenerate
// zero-mitigate-site programs, and the fusion-ranking / collapsed-stack
// exports.
//
//===----------------------------------------------------------------------===//

#include "hw/HardwareModels.h"
#include "ir/Lowering.h"
#include "obs/ExecProfile.h"
#include "obs/Metrics.h"
#include "sem/FullInterpreter.h"
#include "sem/StepInterpreter.h"
#include "types/LabelInference.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace zam;
using namespace zam::test;

namespace {

/// A loop + array-store + mitigated-sleep program: every dispatchable
/// opcode except Skip shows up, and the single mitigate site settles once
/// per run.
Program mitigatedLoop() {
  Program P = parseOrDie("var h : H;\nvar l : L;\nvar a : L[8];\n"
                         "var i : L;\n"
                         "i := 0;\n"
                         "while i < 8 do { a[i] := i; i := i + 1 };\n"
                         "mitigate (16, H) { sleep(h) @[H,H] };\n"
                         "l := i",
                         lh());
  inferTimingLabels(P);
  return P;
}

/// The degenerate program every tool must handle: public, straight-line,
/// no mitigate commands.
Program straightline() {
  Program P = parseOrDie("var a : L;\nvar b : L;\nvar total : L;\n"
                         "a := 3;\nb := 4;\n"
                         "total := a * a + b * b;\n"
                         "total := total + 1",
                         lh());
  inferTimingLabels(P);
  return P;
}

/// The profile's deterministic exec.* export as a canonical JSON string.
std::string execJson(const ExecProfile &Prof) {
  MetricsRegistry Reg;
  Prof.exportMetrics(Reg);
  return Reg.toJson().dump();
}

/// The export restricted to hardware-independent content: everything but
/// the exec.site.* settle histograms (those legitimately depend on body
/// cycles and hence the hardware design).
std::string execJsonSansSites(const ExecProfile &Prof) {
  MetricsRegistry Reg;
  Prof.exportMetrics(Reg);
  MetricsRegistry Filtered;
  for (const MetricsRegistry::Entry &E : Reg.entries())
    if (E.Name.rfind("exec.site.", 0) != 0)
      Filtered.setCounter(E.Name, E.Counter);
  return Filtered.toJson().dump();
}

/// Runs \p P once on fresh \p Kind hardware with \p Prof attached,
/// poking h = \p H (negative: the program declares no secret, poke
/// nothing).
void runOnceInto(const Program &P, HwKind Kind, int64_t H,
                 ExecProfile &Prof) {
  auto Env = createMachineEnv(Kind, P.lattice());
  InterpreterOptions Opts;
  Opts.Probe = &Prof;
  RunResult R = runFull(
      P, *Env,
      [H](Memory &M) {
        if (H >= 0)
          M.store("h", H);
      },
      Opts);
  ASSERT_FALSE(R.T.HitStepLimit);
}

} // namespace

TEST(ExecProfile, ConservationHoldsOnMitigatedLoop) {
  Program P = mitigatedLoop();
  ExecProfile Prof;
  runOnceInto(P, HwKind::Partitioned, 5, Prof);

  std::string Err;
  EXPECT_TRUE(Prof.selfCheck(Err)) << Err;
  EXPECT_EQ(Prof.runs(), 1u);
  EXPECT_EQ(Prof.heads(), 1u); // One run: exactly one head dispatch.
  EXPECT_GT(Prof.dispatches(), 0u);
  EXPECT_EQ(Prof.opCount(IrInstr::Op::Halt), 0u);
  // The while loop: 8 taken iterations plus the final fall-through.
  EXPECT_EQ(Prof.branchTaken(), 8u);
  EXPECT_EQ(Prof.branchNotTaken(), 1u);
  EXPECT_EQ(Prof.opCount(IrInstr::Op::MitEnter), 1u);
  EXPECT_EQ(Prof.opCount(IrInstr::Op::MitEnd), 1u);
  ASSERT_EQ(Prof.sites().size(), 1u);
  EXPECT_EQ(Prof.sites()[0].SettleEpochs.total(), 1u);
}

TEST(ExecProfile, FullAndStepEnginesExportIdenticallyOnEveryDesign) {
  Program P = mitigatedLoop();
  std::string FirstSansSites;
  for (HwKind Kind : allHwKinds()) {
    ExecProfile FullProf, StepProf;
    runOnceInto(P, Kind, 7, FullProf);

    auto Env = createMachineEnv(Kind, P.lattice());
    InterpreterOptions Opts;
    Opts.Probe = &StepProf;
    StepInterpreter Step(P, *Env, Opts);
    Step.memory().store("h", static_cast<int64_t>(7));
    Trace T = Step.runToCompletion();
    ASSERT_FALSE(T.HitStepLimit);

    std::string Err;
    EXPECT_TRUE(FullProf.selfCheck(Err)) << Err;
    EXPECT_TRUE(StepProf.selfCheck(Err)) << Err;
    // Engine unification extends to the observatory: byte-identical
    // exec.* content, settle histograms included.
    EXPECT_EQ(execJson(FullProf), execJson(StepProf)) << hwKindName(Kind);
    // Across hardware designs only the settle histograms may move; the
    // pc/opcode/digram/branch books are pure control flow.
    if (FirstSansSites.empty())
      FirstSansSites = execJsonSansSites(FullProf);
    else
      EXPECT_EQ(execJsonSansSites(FullProf), FirstSansSites)
          << hwKindName(Kind);
  }
}

TEST(ExecProfile, MergedPartitionsMatchTheSerialProfile) {
  Program P = mitigatedLoop();
  constexpr unsigned NumRuns = 8;

  // Serial: one profile observes all eight runs back to back.
  ExecProfile Serial;
  for (unsigned I = 0; I != NumRuns; ++I)
    runOnceInto(P, HwKind::Partitioned, 1 + 3 * I, Serial);

  // Two-way partition: runs 0-3 and 4-7 profiled independently, merged.
  ExecProfile HalfA, HalfB;
  for (unsigned I = 0; I != NumRuns; ++I)
    runOnceInto(P, HwKind::Partitioned, 1 + 3 * I,
                I < NumRuns / 2 ? HalfA : HalfB);
  ExecProfile TwoWay;
  TwoWay.merge(HalfA);
  TwoWay.merge(HalfB);

  // Eight-way partition: one single-run profile per worker, all merged.
  ExecProfile EightWay;
  for (unsigned I = 0; I != NumRuns; ++I) {
    ExecProfile One;
    runOnceInto(P, HwKind::Partitioned, 1 + 3 * I, One);
    EightWay.merge(One);
  }

  std::string Err;
  EXPECT_TRUE(Serial.selfCheck(Err)) << Err;
  EXPECT_TRUE(TwoWay.selfCheck(Err)) << Err;
  EXPECT_TRUE(EightWay.selfCheck(Err)) << Err;
  EXPECT_EQ(Serial.runs(), NumRuns);
  EXPECT_EQ(Serial.heads(), NumRuns); // Each run restarts the digram chain.
  EXPECT_EQ(execJson(Serial), execJson(TwoWay));
  EXPECT_EQ(execJson(Serial), execJson(EightWay));
}

TEST(ExecProfile, LoweringGivesEveryInstrAPcSlotAndHaltNeverCounts) {
  for (bool Mitigated : {true, false}) {
    Program P = Mitigated ? mitigatedLoop() : straightline();
    IrProgram IR = lowerProgram(P);
    ExecProfile Prof;
    runOnceInto(P, HwKind::Partitioned, Mitigated ? 2 : -1, Prof);
    // Lowering is deterministic, so an independently lowered copy has the
    // same shape the probe captured: one dense pc slot per instruction,
    // the Halt terminator last and never dispatched.
    ASSERT_EQ(Prof.pcs().size(), IR.Instrs.size());
    ASSERT_FALSE(IR.Instrs.empty());
    EXPECT_EQ(IR.haltIndex(), IR.Instrs.size() - 1);
    EXPECT_EQ(static_cast<int>(IR.Instrs[IR.haltIndex()].K),
              static_cast<int>(IrInstr::Op::Halt));
    EXPECT_EQ(Prof.pcs()[IR.haltIndex()].Count, 0u);
    for (uint32_t I = 0; I != Prof.pcs().size(); ++I)
      EXPECT_EQ(static_cast<int>(Prof.pcs()[I].K),
                static_cast<int>(IR.Instrs[I].K))
          << "pc " << I;
  }
}

TEST(ExecProfile, StraightlineProgramHasFixedShapeAndNoSites) {
  Program P = straightline();
  ExecProfile Prof;
  runOnceInto(P, HwKind::Partitioned, -1, Prof);

  std::string Err;
  EXPECT_TRUE(Prof.selfCheck(Err)) << Err;
  // Straight-line and loop-free: every non-Halt pc dispatched exactly once.
  for (uint32_t I = 0; I != Prof.pcs().size(); ++I) {
    const ExecProfile::PcStat &S = Prof.pcs()[I];
    EXPECT_EQ(S.Count, S.K == IrInstr::Op::Halt ? 0u : 1u) << "pc " << I;
  }

  MetricsRegistry Reg;
  Prof.exportMetrics(Reg);
  // The export shape is fixed even for the degenerate program: all eight
  // per-opcode counters are present (zeros included) and the site count
  // is an explicit zero with no site histograms trailing it.
  for (const char *Op : {"skip", "assign", "store", "branch", "sleep",
                         "mitenter", "mitend", "halt"}) {
    bool Present = false;
    for (const MetricsRegistry::Entry &E : Reg.entries())
      Present |= E.Name == std::string("exec.op.") + Op;
    EXPECT_TRUE(Present) << Op;
  }
  EXPECT_EQ(Reg.counterValue("exec.sites"), 0u);
  for (const MetricsRegistry::Entry &E : Reg.entries())
    EXPECT_NE(E.Name.rfind("exec.site.", 0), 0u) << E.Name;
  EXPECT_EQ(Reg.counterValue("exec.op.branch"), 0u);
  EXPECT_EQ(Reg.counterValue("exec.op.mitenter"), 0u);
}

TEST(ExecProfile, RankedDigramsAndFoldedStacksAreConsistent) {
  Program P = mitigatedLoop();
  ExecProfile Prof;
  runOnceInto(P, HwKind::Partitioned, 5, Prof);

  // Ranking: descending counts, and the table conserves against the
  // dispatch total minus the single run head.
  uint64_t Ranked = 0;
  uint64_t Prev = UINT64_MAX;
  for (const ExecProfile::DigramRank &D : Prof.rankedDigrams()) {
    EXPECT_LE(D.Count, Prev);
    Prev = D.Count;
    Ranked += D.Count;
  }
  EXPECT_EQ(Ranked + Prof.heads(), Prof.dispatches());

  // Collapsed stacks: every line is "root;line L;op N" and the counts sum
  // to the dispatch total (every dispatched pc folds somewhere).
  const std::string Folded = Prof.foldedStacks("loop.zam");
  uint64_t FoldedSum = 0;
  size_t Begin = 0;
  while (Begin < Folded.size()) {
    const size_t End = Folded.find('\n', Begin);
    ASSERT_NE(End, std::string::npos);
    const std::string Line = Folded.substr(Begin, End - Begin);
    EXPECT_EQ(Line.rfind("loop.zam;line ", 0), 0u) << Line;
    const size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos);
    FoldedSum += std::stoull(Line.substr(Space + 1));
    Begin = End + 1;
  }
  EXPECT_EQ(FoldedSum, Prof.dispatches());
}
