//===- lattice_test.cpp - Security lattices and label sets ----------------===//

#include "lattice/LabelSet.h"
#include "lattice/SecurityLattice.h"

#include "TestUtil.h"
#include "gtest/gtest.h"

using namespace zam;
using namespace zam::test;

TEST(TwoPointLattice, Ordering) {
  const TwoPointLattice &Lat = lh();
  EXPECT_TRUE(Lat.flowsTo(low(), high()));
  EXPECT_FALSE(Lat.flowsTo(high(), low()));
  EXPECT_TRUE(Lat.flowsTo(low(), low()));
  EXPECT_TRUE(Lat.flowsTo(high(), high()));
}

TEST(TwoPointLattice, JoinMeet) {
  const TwoPointLattice &Lat = lh();
  EXPECT_EQ(Lat.join(low(), high()), high());
  EXPECT_EQ(Lat.join(low(), low()), low());
  EXPECT_EQ(Lat.meet(low(), high()), low());
  EXPECT_EQ(Lat.meet(high(), high()), high());
  EXPECT_EQ(Lat.bottom(), low());
  EXPECT_EQ(Lat.top(), high());
}

TEST(TwoPointLattice, Names) {
  const TwoPointLattice &Lat = lh();
  EXPECT_EQ(Lat.name(low()), "L");
  EXPECT_EQ(Lat.name(high()), "H");
  EXPECT_EQ(Lat.byName("L"), low());
  EXPECT_EQ(Lat.byName("H"), high());
  EXPECT_FALSE(Lat.byName("M").has_value());
}

TEST(TwoPointLattice, SatisfiesAxioms) { EXPECT_TRUE(lh().verify()); }

TEST(TotalOrderLattice, ThreeLevels) {
  const TotalOrderLattice &Lat = lmh();
  ASSERT_EQ(Lat.size(), 3u);
  Label L = *Lat.byName("L");
  Label M = *Lat.byName("M");
  Label H = *Lat.byName("H");
  EXPECT_TRUE(Lat.flowsTo(L, M));
  EXPECT_TRUE(Lat.flowsTo(M, H));
  EXPECT_TRUE(Lat.flowsTo(L, H));
  EXPECT_FALSE(Lat.flowsTo(H, M));
  EXPECT_EQ(Lat.join(L, M), M);
  EXPECT_EQ(Lat.meet(M, H), M);
  EXPECT_TRUE(Lat.verify());
}

TEST(TotalOrderLattice, FiveLevelsSatisfyAxioms) {
  TotalOrderLattice Lat({"P0", "P1", "P2", "P3", "P4"});
  EXPECT_TRUE(Lat.verify());
  EXPECT_EQ(Lat.name(Lat.top()), "P4");
}

TEST(PowersetLattice, SubsetOrdering) {
  PowersetLattice Lat({"Alice", "Bob"});
  ASSERT_EQ(Lat.size(), 4u);
  Label A = Lat.singleton(0);
  Label B = Lat.singleton(1);
  EXPECT_TRUE(Lat.incomparable(A, B));
  EXPECT_EQ(Lat.join(A, B), Lat.top());
  EXPECT_EQ(Lat.meet(A, B), Lat.bottom());
  EXPECT_TRUE(Lat.flowsTo(A, Lat.top()));
  EXPECT_TRUE(Lat.flowsTo(Lat.bottom(), B));
  EXPECT_EQ(Lat.name(Lat.bottom()), "{}");
  EXPECT_EQ(Lat.name(Lat.top()), "{Alice,Bob}");
}

TEST(PowersetLattice, ThreePrincipalsSatisfyAxioms) {
  PowersetLattice Lat({"A", "B", "C"});
  EXPECT_EQ(Lat.size(), 8u);
  EXPECT_TRUE(Lat.verify());
}

TEST(LabelSet, BasicOperations) {
  const TwoPointLattice &Lat = lh();
  LabelSet S(Lat);
  EXPECT_TRUE(S.empty());
  S.insert(high());
  EXPECT_TRUE(S.contains(high()));
  EXPECT_FALSE(S.contains(low()));
  EXPECT_EQ(S.count(), 1u);
  S.erase(high());
  EXPECT_TRUE(S.empty());
}

TEST(LabelSet, Printing) {
  const TotalOrderLattice &Lat = lmh();
  LabelSet S(Lat, {*Lat.byName("L"), *Lat.byName("H")});
  EXPECT_EQ(S.str(Lat), "{L, H}");
}

TEST(LabelSet, ExcludeObservable) {
  // Sec. 6.2 example: L ⊑ M ⊑ H, adversary at M, L = {M, H} → LeA = {H}.
  const TotalOrderLattice &Lat = lmh();
  Label M = *Lat.byName("M");
  Label H = *Lat.byName("H");
  LabelSet L(Lat, {M, H});
  LabelSet LeA = excludeObservable(Lat, L, M);
  EXPECT_EQ(LeA.count(), 1u);
  EXPECT_TRUE(LeA.contains(H));
}

TEST(LabelSet, UpwardClosure) {
  // Sec. 6.3 example: L = {M}, ℓA = L → LeA = {M}, LeA↑ = {M, H}.
  const TotalOrderLattice &Lat = lmh();
  Label L = *Lat.byName("L");
  Label M = *Lat.byName("M");
  Label H = *Lat.byName("H");
  LabelSet Set(Lat, {M});
  LabelSet LeA = excludeObservable(Lat, Set, L);
  EXPECT_TRUE(LeA.contains(M));
  LabelSet Up = upwardClosure(Lat, LeA);
  EXPECT_EQ(Up.count(), 2u);
  EXPECT_TRUE(Up.contains(M));
  EXPECT_TRUE(Up.contains(H));
  EXPECT_FALSE(Up.contains(L));

  LabelSet Combined = unobservableUpwardClosure(Lat, Set, L);
  EXPECT_EQ(Combined, Up);
}

TEST(LabelSet, UpwardClosureInPowerset) {
  PowersetLattice Lat({"A", "B"});
  Label A = Lat.singleton(0);
  LabelSet S(Lat, {A});
  LabelSet Up = upwardClosure(Lat, S);
  // {A}↑ = {{A}, {A,B}}.
  EXPECT_EQ(Up.count(), 2u);
  EXPECT_TRUE(Up.contains(A));
  EXPECT_TRUE(Up.contains(Lat.top()));
  EXPECT_FALSE(Up.contains(Lat.singleton(1)));
}

TEST(LabelSet, AdversaryAboveSecretsSeesNothing) {
  // When every source level flows to the adversary, LeA is empty.
  const TwoPointLattice &Lat = lh();
  LabelSet S(Lat, {low(), high()});
  LabelSet LeA = excludeObservable(Lat, S, high());
  EXPECT_TRUE(LeA.empty());
  EXPECT_TRUE(upwardClosure(Lat, LeA).empty());
}

// Property sweep: upward closure is idempotent and extensive on random sets.
class UpwardClosureProperty : public ::testing::TestWithParam<int> {};

TEST_P(UpwardClosureProperty, IdempotentAndExtensive) {
  PowersetLattice Lat({"A", "B", "C"});
  unsigned Mask = static_cast<unsigned>(GetParam());
  LabelSet S(Lat);
  for (unsigned I = 0; I != Lat.size(); ++I)
    if (Mask & (1u << I))
      S.insert(Label::fromIndex(I));
  LabelSet Up = upwardClosure(Lat, S);
  // Extensive: S ⊆ S↑.
  for (Label L : S.members())
    EXPECT_TRUE(Up.contains(L));
  // Idempotent: (S↑)↑ = S↑.
  EXPECT_EQ(upwardClosure(Lat, Up), Up);
  // Upward closed: any level above a member is a member.
  for (Label Member : Up.members())
    for (Label Candidate : Lat.allLabels())
      if (Lat.flowsTo(Member, Candidate)) {
        EXPECT_TRUE(Up.contains(Candidate));
      }
}

INSTANTIATE_TEST_SUITE_P(RandomSets, UpwardClosureProperty,
                         ::testing::Range(0, 256, 37));
